/**
 * @file
 * Figure 7: program bytes removed by compression, attributed to the
 * instruction length of the dictionary entry; ijpeg, entries up to 8
 * instructions, baseline scheme, across dictionary budgets.
 *
 * Paper shape: 1-instruction entries contribute 48-60% of the savings,
 * and the short-entry share grows with dictionary size. This is the
 * capability Liao's scheme lacks (its codewords are a full instruction
 * word, so single instructions can never compress).
 */

#include "analysis/analysis.hh"
#include "compress/compressor.hh"
#include "common.hh"

using namespace codecomp;
using namespace codecomp::bench;

int
main()
{
    banner("Figure 7",
           "bytes saved by dictionary entry length (ijpeg, <= 8 "
           "insns/entry)");
    Program program = workloads::buildBenchmark("ijpeg");
    const unsigned budgets[] = {32, 128, 512, 2048, 8192};

    std::printf("%-10s %10s", "dict size", "saved(B)");
    for (unsigned len = 1; len <= 8; ++len)
        std::printf("  len%u", len);
    std::printf("   (%% of savings)\n");

    for (unsigned budget : budgets) {
        compress::CompressorConfig config;
        config.scheme = compress::Scheme::Baseline;
        config.maxEntries = budget;
        config.maxEntryLen = 8;
        compress::CompressedImage image =
            compress::compressProgram(program, config);
        analysis::DictionaryUsage usage =
            analysis::analyzeDictionaryUsage(image);
        std::printf("%-10u %10lld", budget,
                    static_cast<long long>(usage.totalBytesSaved));
        for (unsigned len = 1; len <= 8; ++len) {
            auto it = usage.bytesSavedByLength.find(len);
            double frac =
                it == usage.bytesSavedByLength.end()
                    ? 0.0
                    : static_cast<double>(it->second) /
                          static_cast<double>(usage.totalBytesSaved);
            std::printf(" %5.1f", frac * 100);
        }
        std::printf("\n");
    }
    std::printf("paper shape: 1-instruction entries give 48-60%% of the "
                "savings; share grows with dictionary size\n");
    return 0;
}
