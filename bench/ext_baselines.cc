/**
 * @file
 * Extension: quantify the related-work comparisons the paper makes
 * qualitatively (sections 2.3 and 2.4) -- CCRP (per-line Huffman + LAT)
 * and Liao's call-dictionary (1- and 2-word codewords) and
 * mini-subroutine methods, against this paper's baseline and nibble
 * schemes, on identical programs.
 *
 * Expected ordering: Liao's methods trail because their codewords are
 * full instruction words (single instructions never compress); the
 * nibble scheme leads; CCRP sits between (entropy coding, but byte-
 * rounded lines + LAT overhead).
 */

#include "baselines/ccrp.hh"
#include "baselines/liao.hh"
#include "compress/compressor.hh"
#include "common.hh"

using namespace codecomp;
using namespace codecomp::bench;

int
main()
{
    banner("Extension", "comparators on identical programs");
    std::printf("%-9s %9s %9s %9s %9s %9s %9s\n", "bench", "baseline",
                "nibble", "ccrp", "liao-1w", "liao-2w", "liao-sw");
    for (const auto &[name, program] : buildSuite()) {
        compress::CompressorConfig base;
        base.scheme = compress::Scheme::Baseline;
        compress::CompressorConfig nib;
        nib.scheme = compress::Scheme::Nibble;
        nib.maxEntries = 4680;

        baselines::LiaoConfig liao1;
        baselines::LiaoConfig liao2;
        liao2.codewordWords = 2;
        baselines::LiaoConfig liaosw;
        liaosw.softwareMethod = true;

        std::printf(
            "%-9s %9s %9s %9s %9s %9s %9s\n", name.c_str(),
            pct(compress::compressProgram(program, base)
                    .compressionRatio())
                .c_str(),
            pct(compress::compressProgram(program, nib)
                    .compressionRatio())
                .c_str(),
            pct(baselines::ccrpCompress(program).compressionRatio())
                .c_str(),
            pct(baselines::liaoCompress(program, liao1)
                    .compressionRatio())
                .c_str(),
            pct(baselines::liaoCompress(program, liao2)
                    .compressionRatio())
                .c_str(),
            pct(baselines::liaoCompress(program, liaosw)
                    .compressionRatio())
                .c_str());
    }
    std::printf("expected ordering: nibble < baseline; liao-2w worst of "
                "liao's (cannot compress short sequences)\n");
    return 0;
}
