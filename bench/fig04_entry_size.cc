/**
 * @file
 * Figure 4: effect of the maximum dictionary entry length on the
 * compression ratio, baseline scheme (2-byte codewords, up to 8192).
 *
 * Paper shape: ratio improves from 1 to 4 instructions per entry, then
 * flattens or slightly worsens at 8 (the greedy algorithm consumes
 * small repeats inside large entries).
 */

#include "compress/compressor.hh"
#include "common.hh"

using namespace codecomp;
using namespace codecomp::bench;

int
main(int argc, char **argv)
{
    initJobs(argc, argv);
    banner("Figure 4", "compression ratio vs max dictionary entry length "
                       "(baseline, 8192 codewords)");
    const std::vector<unsigned> lengths = {1, 2, 3, 4, 6, 8};
    std::printf("%-9s", "bench");
    for (unsigned len : lengths)
        std::printf("   len=%u ", len);
    std::printf("\n");
    auto suite = buildSuite();
    auto ratios = parallelGrid<double>(
        suite.size(), lengths.size(), [&](size_t row, size_t col) {
            compress::CompressorConfig config;
            config.scheme = compress::Scheme::Baseline;
            config.maxEntries = 8192;
            config.maxEntryLen = lengths[col];
            return compress::compressProgram(suite[row].second, config)
                .compressionRatio();
        });
    for (size_t row = 0; row < suite.size(); ++row) {
        std::printf("%-9s", suite[row].first.c_str());
        for (double ratio : ratios[row])
            std::printf("  %s", pct(ratio).c_str());
        std::printf("\n");
    }
    std::printf("paper shape: improvement 1->2->4, little or no gain "
                "beyond 4 instructions/entry\n");
    return 0;
}
