/**
 * @file
 * Table 3: static prologue and epilogue instructions as a percentage of
 * each program -- the paper's motivation for a compiler that
 * standardizes prologues so they compress to single codewords.
 *
 * Paper: prologue 3.7-8.1%, epilogue 4.3-9.9%, together ~12% typical.
 */

#include "analysis/analysis.hh"
#include "common.hh"

using namespace codecomp;
using namespace codecomp::bench;

int
main()
{
    banner("Table 3", "prologue and epilogue code in benchmarks");
    std::printf("%-9s %8s %10s %10s %10s\n", "bench", "insns",
                "prologue", "epilogue", "combined");
    double avg = 0;
    auto suite = buildSuite();
    for (const auto &[name, program] : suite) {
        analysis::PrologueEpilogue stats =
            analysis::analyzePrologueEpilogue(program);
        double combined =
            stats.prologueFraction() + stats.epilogueFraction();
        std::printf("%-9s %8u %10s %10s %10s\n", name.c_str(),
                    stats.totalInsns, pct(stats.prologueFraction()).c_str(),
                    pct(stats.epilogueFraction()).c_str(),
                    pct(combined).c_str());
        avg += combined;
    }
    std::printf("average combined: %s  (paper: ~12%%)\n",
                pct(avg / suite.size()).c_str());
    return 0;
}
