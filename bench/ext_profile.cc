/**
 * @file
 * Extension: profile-guided dictionary selection.
 *
 * The paper optimizes static size; its introduction also motivates
 * compression through fetch bandwidth (the Perl96 SQL-server anecdote).
 * Those two objectives pick different dictionaries: a rarely executed
 * but often *repeated* sequence earns a codeword under the static
 * objective, while a hot loop body earns one under the traffic
 * objective. This harness builds both dictionaries for the same
 * program and budget, then measures what each optimizes:
 *
 *   static bytes   -- compressed program + dictionary size
 *   fetched bytes  -- bytes moved by the fetch unit over a full run
 *
 * The traffic-weighted selection itself lives in the library
 * (compress::selectByTraffic, scored by execution counts from
 * timing::profileExecutionCounts); bench/ext_timing reuses the same
 * machinery to place the traffic dictionary on the size-vs-cycles
 * plane.
 */

#include "compress/compressor.hh"
#include "compress/strategy.hh"
#include "decompress/compressed_cpu.hh"
#include "decompress/cpu.hh"
#include "timing/timing.hh"
#include "common.hh"

using namespace codecomp;
using namespace codecomp::bench;
using namespace codecomp::compress;

namespace {

/** Bytes moved by the compressed fetch unit over a full run. */
uint64_t
fetchedBytes(const CompressedImage &image)
{
    CompressedCpu cpu(image);
    cpu.run(1ull << 27);
    return cpu.fetchStats().fetchedBytes;
}

} // namespace

int
main()
{
    banner("Extension: profile-guided selection",
           "static-optimal vs traffic-optimal dictionaries (nibble, 64 "
           "entries, <= 4 insns)");
    std::printf("%-9s | %9s %9s | %11s %11s | %9s\n", "bench",
                "size-s(B)", "size-t(B)", "fetch-s(B)", "fetch-t(B)",
                "traffic");
    for (const auto &[name, program] : buildSuite()) {
        std::vector<uint64_t> profile =
            timing::profileExecutionCounts(program, 1ull << 27);

        CompressorConfig config;
        config.scheme = Scheme::Nibble;
        config.maxEntries = 64;
        config.maxEntryLen = 4;
        CompressedImage by_size = compressProgram(program, config);

        SchemeParams params = schemeParams(Scheme::Nibble);
        GreedyConfig greedy;
        greedy.maxEntries = config.maxEntries;
        greedy.maxEntryLen = config.maxEntryLen;
        greedy.insnNibbles = params.insnNibbles;
        greedy.codewordNibbles = params.defaultAssumedCodewordNibbles;
        SelectionResult traffic_sel =
            selectByTraffic(program, profile, greedy);
        CompressedImage by_traffic =
            compressWithSelection(program, config, std::move(traffic_sel));

        uint64_t fetch_s = fetchedBytes(by_size);
        uint64_t fetch_t = fetchedBytes(by_traffic);
        std::printf("%-9s | %9zu %9zu | %11llu %11llu | %+7.1f%%\n",
                    name.c_str(), by_size.totalBytes(),
                    by_traffic.totalBytes(),
                    static_cast<unsigned long long>(fetch_s),
                    static_cast<unsigned long long>(fetch_t),
                    100.0 * (static_cast<double>(fetch_t) -
                             static_cast<double>(fetch_s)) /
                        static_cast<double>(fetch_s));
    }
    std::printf("(s = size-optimal, t = traffic-optimal; the traffic "
                "dictionary moves fewer bytes but compresses worse "
                "statically)\n");
    return 0;
}
