/**
 * @file
 * Extension: profile-guided dictionary selection.
 *
 * The paper optimizes static size; its introduction also motivates
 * compression through fetch bandwidth (the Perl96 SQL-server anecdote).
 * Those two objectives pick different dictionaries: a rarely executed
 * but often *repeated* sequence earns a codeword under the static
 * objective, while a hot loop body earns one under the traffic
 * objective. This harness builds both dictionaries for the same
 * program and budget, then measures what each optimizes:
 *
 *   static bytes   -- compressed program + dictionary size
 *   fetched bytes  -- bytes moved by the fetch unit over a full run
 *
 * Selection reuses the candidate machinery; the traffic-weighted
 * variant scores candidates by execution counts gathered from a
 * profiling run on the plain processor.
 */

#include <algorithm>

#include "compress/compressor.hh"
#include "compress/greedy.hh"
#include "decompress/compressed_cpu.hh"
#include "decompress/cpu.hh"
#include "common.hh"

using namespace codecomp;
using namespace codecomp::bench;
using namespace codecomp::compress;

namespace {

/** Execution count per instruction index, from a profiling run. */
std::vector<uint64_t>
profileProgram(const Program &program)
{
    std::vector<uint64_t> counts(program.text.size(), 0);
    Cpu cpu(program);
    cpu.setFetchHook([&counts, &program](uint32_t addr, uint32_t) {
        ++counts[program.indexOfAddr(addr)];
    });
    cpu.run(1ull << 27);
    return counts;
}

/** Greedy selection maximizing dynamic fetch-bytes saved. */
SelectionResult
selectByTraffic(const Program &program,
                const std::vector<uint64_t> &exec_count,
                uint32_t max_entries, uint32_t max_len,
                unsigned cw_nibbles, unsigned insn_nibbles)
{
    Cfg cfg = Cfg::build(program);
    std::vector<Candidate> candidates =
        enumerateCandidates(program, cfg, 1, max_len);

    // Dynamic nibbles saved by replacing one occurrence at position p:
    // the whole sequence executes together (single basic block), so its
    // execution count is the count of its first instruction.
    auto traffic_savings = [&](const Candidate &cand,
                               const std::vector<bool> &consumed) {
        uint32_t length = static_cast<uint32_t>(cand.seq.size());
        int64_t per_exec =
            static_cast<int64_t>(insn_nibbles) * length - cw_nibbles;
        int64_t total = 0;
        uint64_t next_free = 0;
        for (uint32_t pos : cand.positions) {
            if (pos < next_free)
                continue;
            bool blocked = false;
            for (uint32_t i = pos; i < pos + length; ++i)
                if (consumed[i])
                    blocked = true;
            if (blocked)
                continue;
            total += per_exec * static_cast<int64_t>(exec_count[pos]);
            next_free = static_cast<uint64_t>(pos) + length;
        }
        return total;
    };

    SelectionResult result;
    std::vector<bool> consumed(program.text.size(), false);
    while (result.dict.entries.size() < max_entries) {
        int64_t best = 0;
        uint32_t best_id = UINT32_MAX;
        for (uint32_t id = 0; id < candidates.size(); ++id) {
            int64_t savings = traffic_savings(candidates[id], consumed);
            if (savings > best) {
                best = savings;
                best_id = id;
            }
        }
        if (best_id == UINT32_MAX)
            break;
        const Candidate &cand = candidates[best_id];
        uint32_t length = static_cast<uint32_t>(cand.seq.size());
        uint32_t entry_id =
            static_cast<uint32_t>(result.dict.entries.size());
        uint32_t uses = 0;
        uint64_t next_free = 0;
        for (uint32_t pos : cand.positions) {
            if (pos < next_free)
                continue;
            bool blocked = false;
            for (uint32_t i = pos; i < pos + length; ++i)
                if (consumed[i])
                    blocked = true;
            if (blocked)
                continue;
            for (uint32_t i = pos; i < pos + length; ++i)
                consumed[i] = true;
            result.placements.push_back({pos, length, entry_id});
            ++uses;
            next_free = static_cast<uint64_t>(pos) + length;
        }
        result.dict.entries.push_back(cand.seq);
        result.useCount.push_back(uses);
    }
    std::sort(result.placements.begin(), result.placements.end(),
              [](const Placement &a, const Placement &b) {
                  return a.start < b.start;
              });
    return result;
}

/** Bytes moved by the compressed fetch unit over a full run. */
uint64_t
fetchedBytes(const CompressedImage &image)
{
    uint64_t bytes = 0;
    CompressedCpu cpu(image);
    cpu.setFetchHook(
        [&bytes](uint32_t, uint32_t n) { bytes += n; });
    cpu.run(1ull << 27);
    return bytes;
}

} // namespace

int
main()
{
    banner("Extension: profile-guided selection",
           "static-optimal vs traffic-optimal dictionaries (nibble, 64 "
           "entries, <= 4 insns)");
    std::printf("%-9s | %9s %9s | %11s %11s | %9s\n", "bench",
                "size-s(B)", "size-t(B)", "fetch-s(B)", "fetch-t(B)",
                "traffic");
    for (const auto &[name, program] : buildSuite()) {
        std::vector<uint64_t> profile = profileProgram(program);

        CompressorConfig config;
        config.scheme = Scheme::Nibble;
        config.maxEntries = 64;
        config.maxEntryLen = 4;
        CompressedImage by_size = compressProgram(program, config);

        SchemeParams params = schemeParams(Scheme::Nibble);
        SelectionResult traffic_sel = selectByTraffic(
            program, profile, 64, 4,
            params.defaultAssumedCodewordNibbles, params.insnNibbles);
        CompressedImage by_traffic =
            compressWithSelection(program, config, std::move(traffic_sel));

        uint64_t fetch_s = fetchedBytes(by_size);
        uint64_t fetch_t = fetchedBytes(by_traffic);
        std::printf("%-9s | %9zu %9zu | %11llu %11llu | %+7.1f%%\n",
                    name.c_str(), by_size.totalBytes(),
                    by_traffic.totalBytes(),
                    static_cast<unsigned long long>(fetch_s),
                    static_cast<unsigned long long>(fetch_t),
                    100.0 * (static_cast<double>(fetch_t) -
                             static_cast<double>(fetch_s)) /
                        static_cast<double>(fetch_s));
    }
    std::printf("(s = size-optimal, t = traffic-optimal; the traffic "
                "dictionary moves fewer bytes but compresses worse "
                "statically)\n");
    return 0;
}
