/**
 * @file
 * Table 2: maximum number of codewords actually used by the baseline
 * compression (entry length <= 4, full 8192-codeword budget) -- the
 * point past which only once-used encodings remain.
 *
 * Paper: compress 647, gcc 7927, go 3123, ijpeg 2107, li 1104,
 * m88ksim 1729, perl 2970, vortex 3545. Our programs are ~5-10x smaller
 * in static instructions, so counts scale down, but the ordering
 * (gcc most, compress fewest) must hold.
 */

#include "compress/compressor.hh"
#include "common.hh"

using namespace codecomp;
using namespace codecomp::bench;

int
main(int argc, char **argv)
{
    initJobs(argc, argv);
    banner("Table 2",
           "maximum number of codewords used (baseline, 4 insns/entry)");
    std::printf("%-9s %8s %12s %8s\n", "bench", "insns", "max codewords",
                "paper");
    const unsigned paper[] = {647, 7927, 3123, 2107, 1104, 1729, 2970,
                              3545};
    auto suite = buildSuite();
    std::vector<size_t> codewords = parallelMap<size_t>(
        suite.size(), [&suite](size_t row) {
            compress::CompressorConfig config;
            config.scheme = compress::Scheme::Baseline;
            config.maxEntries = 8192;
            config.maxEntryLen = 4;
            return compress::compressProgram(suite[row].second, config)
                .entriesByRank.size();
        });
    for (size_t row = 0; row < suite.size(); ++row)
        std::printf("%-9s %8zu %12zu %8u\n", suite[row].first.c_str(),
                    suite[row].second.text.size(), codewords[row],
                    paper[row]);
    return 0;
}
