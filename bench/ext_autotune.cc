/**
 * @file
 * Extension: the memory-budget autotuner over the full suite.
 *
 * ext_timing prices a handful of fixed full-dictionary configurations
 * against two cache geometries. This harness hands the same machine
 * model to src/autotune and asks the complete question: for a given
 * on-chip byte budget (I-cache capacity + dictionary ROM), which
 * scheme x strategy x dictionary-share x layout x geometry point is
 * fastest? The candidate set embeds ext_timing's fixed points (the
 * huge dictionary cap clips to each scheme's codeword budget, and the
 * 1024:32:1 / 4096:32:2 geometries are in the pool), so the frontier
 * can only improve on them; the harness checks, per workload, whether
 * some tuned point strictly dominates the best fixed one (fewer cycles
 * at no more on-chip bytes).
 *
 * Emits one PERF_JSON line per (workload, budget) winner and writes
 * the full AutotuneResult -- every point, frontier, winner table -- as
 * BENCH_10.json (--out to relocate). The artifact is byte-identical
 * for any --jobs value.
 */

#include <cstring>
#include <string>
#include <vector>

#include "autotune/autotune.hh"
#include "compress/codec.hh"
#include "support/json.hh"
#include "support/serialize.hh"
#include "common.hh"

using namespace codecomp;
using namespace codecomp::bench;

namespace {

/** ext_timing's fixed configurations live at full dictionary, linear
 *  layout, one of its two geometries. */
bool
isFixedExtTimingPoint(const autotune::CandidatePoint &point)
{
    if (point.native || point.layout != "linear")
        return false;
    auto scheme = compress::parseSchemeName(point.scheme);
    if (!scheme ||
        point.dictEntries != compress::schemeParams(*scheme).maxCodewords)
        return false;
    const cache::CacheConfig &g = point.geometry;
    bool limited = g.capacityBytes == 1024 && g.lineBytes == 32 && g.ways == 1;
    bool roomy = g.capacityBytes == 4096 && g.lineBytes == 32 && g.ways == 2;
    return limited || roomy;
}

std::string
winnerJson(const autotune::WorkloadResult &wr,
           const autotune::BudgetWinner &winner)
{
    JsonWriter json;
    json.beginObject()
        .member("bench", "autotune")
        .member("workload", wr.workload)
        .member("budget", winner.budget);
    if (winner.point >= 0) {
        const autotune::CandidatePoint &point =
            wr.points[static_cast<size_t>(winner.point)];
        json.member("winner", point.id)
            .member("on_chip_bytes", point.onChipBytes)
            .member("cycles", point.cycles());
    }
    json.endObject();
    return json.str();
}

} // namespace

int
main(int argc, char **argv)
{
    initJobs(argc, argv);
    std::string outPath = "BENCH_10.json";
    for (int i = 1; i + 1 < argc; ++i)
        if (std::string(argv[i]) == "--out")
            outPath = argv[i + 1];

    banner("Extension: autotune",
           "profile-guided memory-budget search (scheme x strategy x "
           "dict share x layout x geometry)");

    autotune::BudgetSpec spec;
    spec.budgets = {2048, 4096, 8192, 16384, 65536};
    spec.cacheGeometries = {
        {1024, 32, 1}, {2048, 32, 1}, {4096, 32, 2}, {8192, 32, 2}};
    // The huge cap clips to each scheme's codeword budget, planting
    // ext_timing's full-dictionary configs inside the candidate set.
    spec.dictCaps = {16, 64, 256, 1024, 4096, 1u << 20};
    spec.model.frontendWidth = 1;
    spec.model.missPenaltyCycles = 10;
    spec.model.memoryCyclesPerWord = 1;
    spec.model.expansionCyclesPerWord = 1;
    spec.model.redirectPenaltyCycles = 2;
    spec.maxSteps = 1ull << 27;

    autotune::AutotuneResult result =
        autotune::autotune(workloads::benchmarkNames(), spec);

    std::printf("search: %llu candidate configs (%llu pruned), "
                "%llu failed jobs\n",
                static_cast<unsigned long long>(result.enumerated),
                static_cast<unsigned long long>(result.pruned),
                static_cast<unsigned long long>(result.failedJobs));

    size_t dominatedWorkloads = 0;
    for (const autotune::WorkloadResult &wr : result.workloads) {
        std::printf("\n== %s ==\n", wr.workload.c_str());
        std::printf("  %-10s %-40s %10s %12s\n", "budget", "winner",
                    "bytes", "cycles");
        for (const autotune::BudgetWinner &winner : wr.winners) {
            if (winner.point < 0) {
                std::printf("  %-10llu (nothing fits)\n",
                            static_cast<unsigned long long>(winner.budget));
                continue;
            }
            const autotune::CandidatePoint &point =
                wr.points[static_cast<size_t>(winner.point)];
            std::printf("  %-10llu %-40s %10llu %12llu\n",
                        static_cast<unsigned long long>(winner.budget),
                        point.id.c_str(),
                        static_cast<unsigned long long>(point.onChipBytes),
                        static_cast<unsigned long long>(point.cycles()));
        }

        // Does some tuned point strictly dominate the best fixed
        // ext_timing configuration for this workload?
        const autotune::CandidatePoint *bestFixed = nullptr;
        for (const autotune::CandidatePoint &point : wr.points)
            if (isFixedExtTimingPoint(point) &&
                (!bestFixed || point.cycles() < bestFixed->cycles()))
                bestFixed = &point;
        const autotune::CandidatePoint *dominator = nullptr;
        if (bestFixed) {
            for (const autotune::CandidatePoint &point : wr.points)
                if (!isFixedExtTimingPoint(point) &&
                    point.cycles() < bestFixed->cycles() &&
                    point.onChipBytes <= bestFixed->onChipBytes &&
                    (!dominator || point.cycles() < dominator->cycles()))
                    dominator = &point;
        }
        if (dominator) {
            ++dominatedWorkloads;
            std::printf("  dominates fixed sweep: %s (%llu bytes, %llu "
                        "cycles) beats %s (%llu bytes, %llu cycles)\n",
                        dominator->id.c_str(),
                        static_cast<unsigned long long>(
                            dominator->onChipBytes),
                        static_cast<unsigned long long>(dominator->cycles()),
                        bestFixed->id.c_str(),
                        static_cast<unsigned long long>(
                            bestFixed->onChipBytes),
                        static_cast<unsigned long long>(bestFixed->cycles()));
        } else {
            std::printf("  dominates fixed sweep: no\n");
        }
    }
    std::printf("\n%zu of %zu workloads have a tuned point strictly "
                "dominating the best fixed ext_timing config\n",
                dominatedWorkloads, result.workloads.size());

    for (const autotune::WorkloadResult &wr : result.workloads)
        for (const autotune::BudgetWinner &winner : wr.winners)
            std::printf("PERF_JSON: %s\n",
                        winnerJson(wr, winner).c_str());

    std::string artifact = result.toJson() + "\n";
    writeFile(outPath,
              std::vector<uint8_t>(artifact.begin(), artifact.end()));
    std::printf("trajectory artifact: %s\n", outPath.c_str());
    return 0;
}
