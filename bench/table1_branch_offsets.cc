/**
 * @file
 * Table 1: usage of bits in branch offset fields -- how many static
 * PC-relative branches lack the spare offset bits needed to address
 * targets at 2-byte, 1-byte, and 4-bit granularity.
 *
 * Paper: the affected share is small and grows with finer granularity
 * (e.g. gcc: 56k branches; 0.1% lack 2-byte, 0.4% lack 1-byte, 1.8%
 * lack 4-bit resolution -- magnitudes vary per benchmark).
 */

#include "analysis/analysis.hh"
#include "common.hh"

using namespace codecomp;
using namespace codecomp::bench;

int
main()
{
    banner("Table 1", "usage of bits in branch offset field");
    std::printf("%-9s %10s | %8s %7s | %8s %7s | %8s %7s\n", "bench",
                "pc-rel br", "no-2B", "%", "no-1B", "%", "no-4bit", "%");
    for (const auto &[name, program] : buildSuite()) {
        analysis::BranchOffsetUsage usage =
            analysis::analyzeBranchOffsets(program);
        double n = usage.pcRelativeBranches;
        std::printf("%-9s %10u | %8u %7s | %8u %7s | %8u %7s\n",
                    name.c_str(), usage.pcRelativeBranches, usage.lack2Byte,
                    pct(usage.lack2Byte / n).c_str(), usage.lack1Byte,
                    pct(usage.lack1Byte / n).c_str(), usage.lack4Bit,
                    pct(usage.lack4Bit / n).c_str());
    }
    std::printf("shape check: no-2B <= no-1B <= no-4bit, all small "
                "minorities (paper: 0-10%% range)\n");
    return 0;
}
