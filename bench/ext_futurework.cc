/**
 * @file
 * Extension: the paper's section-5 future-work items, implemented and
 * measured.
 *
 * F1  Standardized prologues/epilogues: compile every benchmark with
 *     uniform frames that save the full callee-saved register set, so
 *     all prologues/epilogues share one byte sequence and compress to
 *     single codewords. The paper predicts a significant size win at
 *     some execution-time cost; we report both sides.
 *
 * F2  On-chip memory partitioning: for a fixed memory budget holding
 *     compressed program + dictionary, sweep the dictionary share and
 *     report the best split (the paper's closing question).
 */

#include "codegen/codegen.hh"
#include "compress/compressor.hh"
#include "decompress/compressed_cpu.hh"
#include "decompress/cpu.hh"
#include "common.hh"

using namespace codecomp;
using namespace codecomp::bench;
using namespace codecomp::compress;

int
main()
{
    banner("Future work F1",
           "standardized prologues/epilogues (paper section 5)");
    std::printf("%-9s | %7s %7s | %7s %7s | %7s %7s | %8s %8s\n", "bench",
                "insns", "insns*", "len4", "len4*", "len24", "len24*",
                "dyn", "dyn*");
    std::printf("(compressed bytes, nibble scheme, entry length 4 vs 24)\n");
    for (const std::string &name : workloads::benchmarkNames()) {
        std::string source = workloads::benchmarkSource(name);
        codegen::CompileOptions plain;
        codegen::CompileOptions uniform;
        uniform.standardizedFrames = true;

        Program a = codegen::compile(source, plain);
        Program b = codegen::compile(source, uniform);
        ExecResult ra = runProgram(a, 1ull << 27);
        ExecResult rb = runProgram(b, 1ull << 27);

        CompressorConfig config;
        config.scheme = Scheme::Nibble;
        config.maxEntries = 4680;
        config.maxEntryLen = 4;
        CompressedImage ia4 = compressProgram(a, config);
        CompressedImage ib4 = compressProgram(b, config);
        // The standardized 22-instruction prologue only collapses to a
        // couple of codewords when entries may span it.
        config.maxEntryLen = 24;
        CompressedImage ib24 = compressProgram(b, config);
        CompressedImage ia24 = compressProgram(a, config);

        std::printf("%-9s | %7zu %7zu | %7zu %7zu | %7zu %7zu | %8llu %8llu\n",
                    name.c_str(), a.text.size(), b.text.size(),
                    ia4.totalBytes(), ib4.totalBytes(),
                    ia24.totalBytes(), ib24.totalBytes(),
                    static_cast<unsigned long long>(ra.instCount),
                    static_cast<unsigned long long>(rb.instCount));
    }
    std::printf("(* = standardized frames)\n"
                "finding: with 4-instruction entries the idea LOSES (the "
                "22-insn template spans 6 codewords);\nwith 24-instruction "
                "entries whole prologues/epilogues become single codewords "
                "and the idea pays.\n");

    banner("Future work F2",
           "on-chip memory partitioning: program vs dictionary (gcc, "
           "nibble)");
    Program gcc_prog = workloads::buildBenchmark("gcc");
    std::printf("%-10s %10s %10s %12s\n", "entries", "text(B)", "dict(B)",
                "total(B)");
    size_t best_total = SIZE_MAX;
    uint32_t best_entries = 0;
    for (uint32_t entries : {8u, 32u, 72u, 128u, 256u, 584u, 1024u, 2048u,
                             4680u}) {
        CompressorConfig config;
        config.scheme = Scheme::Nibble;
        config.maxEntries = entries;
        CompressedImage image = compressProgram(gcc_prog, config);
        std::printf("%-10u %10zu %10zu %12zu\n", entries,
                    image.compressedTextBytes(), image.dictionaryBytes(),
                    image.totalBytes());
        if (image.totalBytes() < best_total) {
            best_total = image.totalBytes();
            best_entries = entries;
        }
    }
    std::printf("best split: %u dictionary entries -> %zu bytes total "
                "(%.1f%% of the uncompressed program)\n",
                best_entries, best_total,
                100.0 * best_total / gcc_prog.textBytes());
    return 0;
}
