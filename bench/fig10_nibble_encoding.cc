/**
 * @file
 * Figure 10: the nibble-aligned encoding itself (a design figure).
 * Prints the codeword classes and validates the class arithmetic by
 * encoding one codeword of each class and dumping its nibbles, plus
 * the realized class usage on one benchmark.
 */

#include "compress/compressor.hh"
#include "common.hh"

using namespace codecomp;
using namespace codecomp::bench;

int
main()
{
    banner("Figure 10", "nibble-aligned encoding (4/8/12/16-bit codewords)");
    std::printf("first nibble 0-7  : 4-bit codeword   (8 codewords)\n");
    std::printf("first nibble 8-11 : 8-bit codeword   (64 codewords)\n");
    std::printf("first nibble 12-13: 12-bit codeword  (512 codewords)\n");
    std::printf("first nibble 14   : 16-bit codeword  (4096 codewords)\n");
    std::printf("first nibble 15   : escape + 32-bit uncompressed insn\n");
    std::printf("total codewords: 4680\n\n");

    for (uint32_t rank : {0u, 7u, 8u, 71u, 72u, 583u, 584u, 4679u}) {
        NibbleWriter writer;
        compress::emitCodeword(writer, compress::Scheme::Nibble, rank);
        std::printf("rank %4u -> %u nibbles:", rank,
                    static_cast<unsigned>(writer.nibbleCount()));
        NibbleReader reader(writer.bytes().data(), writer.nibbleCount());
        while (!reader.atEnd())
            std::printf(" %x", reader.getNibble());
        // Round-trip through the decoder.
        NibbleReader check(writer.bytes().data(), writer.nibbleCount());
        auto decoded =
            compress::decodeCodeword(check, compress::Scheme::Nibble);
        std::printf("  (decodes to rank %u)\n", *decoded);
    }

    Program program = workloads::buildBenchmark("ijpeg");
    compress::CompressorConfig config;
    config.scheme = compress::Scheme::Nibble;
    config.maxEntries = 4680;
    config.maxEntryLen = 4;
    compress::CompressedImage image =
        compress::compressProgram(program, config);
    unsigned by_class[4] = {0, 0, 0, 0};
    for (uint32_t rank = 0; rank < image.entriesByRank.size(); ++rank)
        ++by_class[compress::codewordNibbles(compress::Scheme::Nibble,
                                             rank) - 1];
    std::printf("\nijpeg realized dictionary: %zu entries -> 4-bit:%u "
                "8-bit:%u 12-bit:%u 16-bit:%u\n",
                image.entriesByRank.size(), by_class[0], by_class[1],
                by_class[2], by_class[3]);
    return 0;
}
