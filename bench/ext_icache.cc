/**
 * @file
 * Extension: instruction-cache impact of compressed code.
 *
 * The paper motivates compression partly by the memory system (section
 * 1: "Reducing program size is one way to reduce instruction cache
 * misses", citing the companion study [Chen97a/b]). Here both
 * processors run each benchmark through the same I-cache model: the
 * plain Cpu fetches 4-byte instructions from the uncompressed image;
 * the CompressedCpu fetches variable-size items from the compressed
 * image, so more useful instructions fit per line.
 *
 * Expected shape (per [Chen97a]): compressed code has the lower miss
 * rate in the capacity-limited region, with the largest relative gain
 * where the native working set just exceeds the cache. Direct-mapped
 * conflict placement can flip isolated points; associativity smooths
 * them. The eviction table tells the two miss flavours apart: cold
 * fills never evict, capacity/conflict fills do (cache::CacheStats).
 */

#include <array>
#include <iterator>

#include "cache/icache.hh"
#include "compress/compressor.hh"
#include "decompress/compressed_cpu.hh"
#include "common.hh"

using namespace codecomp;
using namespace codecomp::bench;

namespace {

constexpr uint32_t sizes[] = {512, 1024, 2048, 4096, 8192};
constexpr size_t numSizes = std::size(sizes);

cache::CacheStats
runThroughCache(const cache::CacheConfig &config, auto &&cpu)
{
    cache::ICache cache(config);
    cpu.setFetchHook([&cache](const FetchEvent &event) {
        cache.access(event.addr, event.bytes);
    });
    cpu.run(1ull << 27);
    return cache.stats();
}

} // namespace

int
main()
{
    banner("Extension: I-cache",
           "miss rates, native vs compressed fetch (32B lines, "
           "direct-mapped)");

    std::vector<std::string> names;
    std::vector<std::array<cache::CacheStats, numSizes>> native_stats;
    std::vector<std::array<cache::CacheStats, numSizes>> compressed_stats;
    for (const auto &[name, program] : buildSuite()) {
        compress::CompressorConfig config;
        config.scheme = compress::Scheme::Nibble;
        config.maxEntries = 4680;
        compress::CompressedImage image =
            compress::compressProgram(program, config);

        std::array<cache::CacheStats, numSizes> native, compressed;
        for (size_t i = 0; i < numSizes; ++i) {
            cache::CacheConfig cache_config{sizes[i], 32, 1};
            Cpu cpu(program);
            native[i] = runThroughCache(cache_config, cpu);
            CompressedCpu ccpu(image);
            compressed[i] = runThroughCache(cache_config, ccpu);
        }
        names.push_back(name);
        native_stats.push_back(native);
        compressed_stats.push_back(compressed);
    }

    std::printf("%-9s", "bench");
    for (uint32_t size : sizes)
        std::printf("     %4uB (n/c)", size);
    std::printf("\n");
    for (size_t b = 0; b < names.size(); ++b) {
        std::printf("%-9s", names[b].c_str());
        for (size_t i = 0; i < numSizes; ++i)
            std::printf("  %5.2f%%/%5.2f%%",
                        native_stats[b][i].missRate() * 100,
                        compressed_stats[b][i].missRate() * 100);
        std::printf("\n");
    }

    std::printf("\nevictions (native/compressed):\n%-9s", "bench");
    for (uint32_t size : sizes)
        std::printf("    %4uB (n/c)", size);
    std::printf("\n");
    for (size_t b = 0; b < names.size(); ++b) {
        std::printf("%-9s", names[b].c_str());
        for (size_t i = 0; i < numSizes; ++i)
            std::printf("  %6llu/%6llu",
                        static_cast<unsigned long long>(
                            native_stats[b][i].evictions),
                        static_cast<unsigned long long>(
                            compressed_stats[b][i].evictions));
        std::printf("\n");
    }

    std::printf("shape: compressed code misses less in the capacity-"
                "limited region (largest gap where the native working set "
                "just misses fitting);\nisolated direct-mapped conflict "
                "points can flip (e.g. a hot loop straddling a set) -- "
                "add a way to smooth them.\nevictions follow the same "
                "shape minus the cold fills (every miss beyond the first "
                "touch of a line is an eviction).\n");
    return 0;
}
