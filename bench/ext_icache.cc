/**
 * @file
 * Extension: instruction-cache impact of compressed code.
 *
 * The paper motivates compression partly by the memory system (section
 * 1: "Reducing program size is one way to reduce instruction cache
 * misses", citing the companion study [Chen97a/b]). Here both
 * processors run each benchmark through the same I-cache model: the
 * plain Cpu fetches 4-byte instructions from the uncompressed image;
 * the CompressedCpu fetches variable-size items from the compressed
 * image, so more useful instructions fit per line.
 *
 * Expected shape (per [Chen97a]): compressed code has the lower miss
 * rate in the capacity-limited region, with the largest relative gain
 * where the native working set just exceeds the cache. Direct-mapped
 * conflict placement can flip isolated points; associativity smooths
 * them.
 */

#include "cache/icache.hh"
#include "compress/compressor.hh"
#include "decompress/compressed_cpu.hh"
#include "common.hh"

using namespace codecomp;
using namespace codecomp::bench;

int
main()
{
    banner("Extension: I-cache",
           "miss rates, native vs compressed fetch (32B lines, "
           "direct-mapped)");
    const uint32_t sizes[] = {512, 1024, 2048, 4096, 8192};
    std::printf("%-9s", "bench");
    for (uint32_t size : sizes)
        std::printf("     %4uB (n/c)", size);
    std::printf("\n");

    for (const auto &[name, program] : buildSuite()) {
        compress::CompressorConfig config;
        config.scheme = compress::Scheme::Nibble;
        config.maxEntries = 4680;
        compress::CompressedImage image =
            compress::compressProgram(program, config);

        std::printf("%-9s", name.c_str());
        for (uint32_t size : sizes) {
            cache::CacheConfig cache_config;
            cache_config.capacityBytes = size;
            cache_config.lineBytes = 32;
            cache_config.ways = 1;

            cache::ICache native(cache_config);
            Cpu cpu(program);
            cpu.setFetchHook([&native](uint32_t addr, uint32_t bytes) {
                native.access(addr, bytes);
            });
            cpu.run(1ull << 27);

            cache::ICache compressed(cache_config);
            CompressedCpu ccpu(image);
            ccpu.setFetchHook(
                [&compressed](uint32_t addr, uint32_t bytes) {
                    compressed.access(addr, bytes);
                });
            ccpu.run(1ull << 27);

            std::printf("  %5.2f%%/%5.2f%%",
                        native.stats().missRate() * 100,
                        compressed.stats().missRate() * 100);
        }
        std::printf("\n");
    }
    std::printf("shape: compressed code misses less in the capacity-"
                "limited region (largest gap where the native working set "
                "just misses fitting);\nisolated direct-mapped conflict "
                "points can flip (e.g. a hot loop straddling a set) -- "
                "add a way to smooth them.\n");
    return 0;
}
