/**
 * @file
 * Figure 6: composition of the dictionary by entry length (number of
 * instructions) as the dictionary budget grows; ijpeg, entries up to 8
 * instructions, baseline scheme.
 *
 * Paper shape: single-instruction entries are 48-80% of the dictionary,
 * and their share grows with dictionary size.
 */

#include "analysis/analysis.hh"
#include "compress/compressor.hh"
#include "common.hh"

using namespace codecomp;
using namespace codecomp::bench;

int
main()
{
    banner("Figure 6",
           "dictionary composition by entry length (ijpeg, <= 8 "
           "insns/entry)");
    Program program = workloads::buildBenchmark("ijpeg");
    const unsigned budgets[] = {32, 128, 512, 2048, 8192};

    std::printf("%-10s %8s", "dict size", "entries");
    for (unsigned len = 1; len <= 8; ++len)
        std::printf("  len%u", len);
    std::printf("   (%% of entries)\n");

    double first_single = -1, last_single = -1;
    for (unsigned budget : budgets) {
        compress::CompressorConfig config;
        config.scheme = compress::Scheme::Baseline;
        config.maxEntries = budget;
        config.maxEntryLen = 8;
        compress::CompressedImage image =
            compress::compressProgram(program, config);
        analysis::DictionaryUsage usage =
            analysis::analyzeDictionaryUsage(image);
        std::printf("%-10u %8u", budget, usage.totalEntries);
        for (unsigned len = 1; len <= 8; ++len) {
            auto it = usage.entriesByLength.find(len);
            double frac = it == usage.entriesByLength.end()
                              ? 0.0
                              : static_cast<double>(it->second) /
                                    usage.totalEntries;
            std::printf(" %5.1f", frac * 100);
        }
        std::printf("\n");
        double single = usage.entriesByLength.count(1)
                            ? static_cast<double>(
                                  usage.entriesByLength.at(1)) /
                                  usage.totalEntries
                            : 0;
        if (first_single < 0)
            first_single = single;
        last_single = single;
    }
    std::printf("paper shape: 1-instruction entries are 48-80%% of the "
                "dictionary, share grows with size "
                "(ours: %.0f%% -> %.0f%%)\n",
                first_single * 100, last_single * 100);
    return 0;
}
