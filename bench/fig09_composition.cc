/**
 * @file
 * Figure 9: composition of the compressed program under the baseline
 * scheme with the full 8192-codeword budget and 4-instruction entries:
 * uncompressed instructions, codeword index bytes, codeword escape
 * bytes, and the dictionary.
 *
 * Paper: ~40% of the compressed program is codeword bytes, half of
 * which (20% of the total) is pure escape-byte overhead -- the
 * motivation for the nibble-aligned encoding.
 */

#include "compress/compressor.hh"
#include "common.hh"

using namespace codecomp;
using namespace codecomp::bench;

int
main()
{
    banner("Figure 9",
           "composition of compressed program (baseline, 8192 codewords, "
           "4 insns/entry)");
    std::printf("%-9s %12s %12s %12s %12s\n", "bench", "uncompr.insn",
                "index bytes", "escape bytes", "dictionary");
    double avg_escape = 0;
    auto suite = buildSuite();
    for (const auto &[name, program] : suite) {
        compress::CompressorConfig config;
        config.scheme = compress::Scheme::Baseline;
        config.maxEntries = 8192;
        config.maxEntryLen = 4;
        compress::CompressedImage image =
            compress::compressProgram(program, config);
        const compress::Composition &comp = image.composition;
        double total = static_cast<double>(comp.totalNibbles());
        std::printf("%-9s %12s %12s %12s %12s\n", name.c_str(),
                    pct(comp.insnNibbles / total).c_str(),
                    pct(comp.codewordNibbles / total).c_str(),
                    pct(comp.escapeNibbles / total).c_str(),
                    pct(comp.dictNibbles / total).c_str());
        avg_escape += comp.escapeNibbles / total;
    }
    std::printf("average escape-byte share: %s  (paper: ~20%% of the "
                "compressed program)\n",
                pct(avg_escape / suite.size()).c_str());
    return 0;
}
