/**
 * @file
 * Shared helpers for the per-figure/table reproduction harnesses.
 *
 * Each binary under bench/ regenerates one table or figure from the
 * paper and prints it in a comparable layout, along with the paper's
 * reported values where they exist (see EXPERIMENTS.md for the
 * side-by-side record).
 *
 * Every sweep point is an independent compress, so the harnesses fan
 * out over the global thread pool: initJobs() reads a --jobs N flag
 * (falling back to CODECOMP_JOBS, then hardware_concurrency), the
 * suite is built concurrently, and parallelGrid() evaluates a
 * bench x config matrix with results collected in index order. The
 * compressor is bit-deterministic for any job count, so figures are
 * reproduced exactly regardless of parallelism.
 */

#ifndef CODECOMP_BENCH_COMMON_HH
#define CODECOMP_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "decompress/cpu.hh"
#include "program/program.hh"
#include "support/thread_pool.hh"
#include "workloads/workloads.hh"

namespace codecomp::bench {

/** Handle the common bench flags: --jobs N caps the worker count. */
inline void
initJobs(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--jobs") {
            int jobs = std::atoi(argv[i + 1]);
            if (jobs >= 1)
                setGlobalJobs(static_cast<unsigned>(jobs));
        }
    }
}

/** Print a banner naming the experiment. */
inline void
banner(const char *id, const char *title)
{
    std::printf("==============================================================\n");
    std::printf("%s: %s\n", id, title);
    std::printf("==============================================================\n");
}

/** Build every benchmark concurrently; returns (name, program) pairs
 *  in the paper's order. */
inline std::vector<std::pair<std::string, Program>>
buildSuite()
{
    const std::vector<std::string> &names = workloads::benchmarkNames();
    std::vector<Program> programs = parallelMap<Program>(
        names.size(),
        [&names](size_t i) { return workloads::buildBenchmark(names[i]); });
    std::vector<std::pair<std::string, Program>> suite;
    suite.reserve(names.size());
    for (size_t i = 0; i < names.size(); ++i)
        suite.emplace_back(names[i], std::move(programs[i]));
    return suite;
}

/**
 * Evaluate fn(row, col) for every point of a rows x cols sweep on the
 * global pool; results come back as [row][col], so printing stays in
 * table order no matter how the points were scheduled.
 */
template <typename R>
std::vector<std::vector<R>>
parallelGrid(size_t rows, size_t cols,
             const std::function<R(size_t, size_t)> &fn)
{
    std::vector<R> flat = parallelMap<R>(
        rows * cols,
        [cols, &fn](size_t i) { return fn(i / cols, i % cols); });
    std::vector<std::vector<R>> grid(rows);
    for (size_t r = 0; r < rows; ++r)
        grid[r].assign(std::make_move_iterator(flat.begin() + r * cols),
                       std::make_move_iterator(flat.begin() + (r + 1) * cols));
    return grid;
}

/** Format a ratio as a percentage string. */
inline std::string
pct(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%5.1f%%", value * 100.0);
    return buf;
}

} // namespace codecomp::bench

#endif // CODECOMP_BENCH_COMMON_HH
