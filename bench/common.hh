/**
 * @file
 * Shared helpers for the per-figure/table reproduction harnesses.
 *
 * Each binary under bench/ regenerates one table or figure from the
 * paper and prints it in a comparable layout, along with the paper's
 * reported values where they exist (see EXPERIMENTS.md for the
 * side-by-side record).
 */

#ifndef CODECOMP_BENCH_COMMON_HH
#define CODECOMP_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "decompress/cpu.hh"
#include "program/program.hh"
#include "workloads/workloads.hh"

namespace codecomp::bench {

/** Print a banner naming the experiment. */
inline void
banner(const char *id, const char *title)
{
    std::printf("==============================================================\n");
    std::printf("%s: %s\n", id, title);
    std::printf("==============================================================\n");
}

/** Build every benchmark once; returns (name, program) pairs. */
inline std::vector<std::pair<std::string, Program>>
buildSuite()
{
    std::vector<std::pair<std::string, Program>> suite;
    for (const std::string &name : workloads::benchmarkNames())
        suite.emplace_back(name, workloads::buildBenchmark(name));
    return suite;
}

/** Format a ratio as a percentage string. */
inline std::string
pct(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%5.1f%%", value * 100.0);
    return buf;
}

} // namespace codecomp::bench

#endif // CODECOMP_BENCH_COMMON_HH
