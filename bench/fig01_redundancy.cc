/**
 * @file
 * Figure 1: distinct instruction encodings as a percentage of the
 * entire program -- how much of each benchmark consists of encodings
 * used exactly once vs encodings that repeat.
 *
 * Paper: on average < 20% of instructions have once-used encodings; for
 * go, 1% of the most frequent distinct words cover 30% of the program
 * and 10% cover 66%.
 */

#include "analysis/analysis.hh"
#include "common.hh"

using namespace codecomp;
using namespace codecomp::bench;

int
main()
{
    banner("Figure 1", "distinct instruction encodings per program");
    std::printf("%-9s %8s %9s %12s %12s %10s %10s\n", "bench", "insns",
                "distinct", "once-used", "repeated", "top1%cov",
                "top10%cov");
    double avg_single = 0;
    auto suite = buildSuite();
    for (const auto &[name, program] : suite) {
        analysis::RedundancyProfile profile =
            analysis::profileRedundancy(program);
        std::printf("%-9s %8u %9u %12s %12s %10s %10s\n", name.c_str(),
                    profile.totalInsns, profile.distinctEncodings,
                    pct(profile.fractionSingleUse()).c_str(),
                    pct(profile.fractionRepeated()).c_str(),
                    pct(profile.topEncodingCoverage(1)).c_str(),
                    pct(profile.topEncodingCoverage(10)).c_str());
        avg_single += profile.fractionSingleUse();
    }
    std::printf("average once-used fraction: %s   (paper: < 20%%)\n",
                pct(avg_single / suite.size()).c_str());
    std::printf("paper (go): top 1%% of words cover 30%%, top 10%% cover "
                "66%% of the program\n");
    return 0;
}
