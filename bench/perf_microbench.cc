/**
 * @file
 * google-benchmark microbenchmarks for the decode-efficiency discussion
 * (paper section 2.1): dictionary decompression is a table lookup while
 * entropy coding pays per-bit work. Measures compressor throughput,
 * stream decode (item scan), and compressed vs native execution rates.
 *
 * After the registered benchmarks, main() times one end-to-end
 * compression of the whole eight-workload suite serially and with the
 * worker pool, and emits a single machine-readable JSON line
 * (prefixed "PERF_JSON: ") so the bench trajectory can track the
 * parallel speedup over time. CODECOMP_JOBS / --jobs control the
 * parallel leg's worker count.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <unordered_map>

#include <unistd.h>

#include "baselines/huffman.hh"
#include "baselines/lzw.hh"
#include "compress/candidates.hh"
#include "compress/compressor.hh"
#include "compress/pipeline.hh"
#include "decompress/compressed_cpu.hh"
#include "decompress/cpu.hh"
#include "farm/farm.hh"
#include "support/thread_pool.hh"
#include "workloads/workloads.hh"

using namespace codecomp;
using namespace codecomp::compress;

namespace {

const Program &
ijpeg()
{
    static Program program = workloads::buildBenchmark("ijpeg");
    return program;
}

std::vector<uint8_t>
ijpegBytes()
{
    std::vector<uint8_t> bytes;
    for (isa::Word word : ijpeg().text) {
        bytes.push_back(static_cast<uint8_t>(word >> 24));
        bytes.push_back(static_cast<uint8_t>(word >> 16));
        bytes.push_back(static_cast<uint8_t>(word >> 8));
        bytes.push_back(static_cast<uint8_t>(word));
    }
    return bytes;
}

void
BM_CompressProgram(benchmark::State &state)
{
    CompressorConfig config;
    config.scheme = static_cast<Scheme>(state.range(0));
    config.maxEntries = 8192;
    for (auto _ : state) {
        CompressedImage image = compressProgram(ijpeg(), config);
        benchmark::DoNotOptimize(image.textNibbles);
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            ijpeg().textBytes());
}
BENCHMARK(BM_CompressProgram)->Arg(0)->Arg(1)->Arg(2);

void
BM_StreamDecode(benchmark::State &state)
{
    // The decompression engine's sequential scan: the per-item decode
    // rule a hardware fetch stage applies. Arg(1) selects the decode
    // path: 0 = fast table-driven window scan, 1 = reference
    // nibble-at-a-time decoder.
    CompressorConfig config;
    config.scheme = static_cast<Scheme>(state.range(0));
    config.maxEntries = 8192;
    DecodePath path = state.range(1) == 0 ? DecodePath::Fast
                                          : DecodePath::Reference;
    CompressedImage image = compressProgram(ijpeg(), config);
    for (auto _ : state) {
        DecompressionEngine engine(image, path);
        benchmark::DoNotOptimize(engine.items().size());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(
                                image.compressedTextBytes()));
}
BENCHMARK(BM_StreamDecode)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({2, 1});

void
BM_FetchExpand(benchmark::State &state)
{
    // Steady-state decode-stage work: random-access item lookup plus
    // dictionary expansion -- the per-fetch cost a compressed-code
    // processor pays (a table lookup, per paper section 2.1).
    CompressorConfig config;
    config.scheme = static_cast<Scheme>(state.range(0));
    config.maxEntries = 8192;
    CompressedImage image = compressProgram(ijpeg(), config);
    DecompressionEngine engine(image);
    std::vector<uint32_t> addrs;
    for (const DecodedItem &item : engine.items())
        addrs.push_back(item.nibbleAddr);
    size_t insns = 0;
    for (auto _ : state) {
        uint64_t sink = 0;
        insns = 0;
        for (uint32_t addr : addrs) {
            const DecodedItem &item = engine.itemAt(addr);
            if (item.isCodeword) {
                for (isa::Word word : engine.entry(item.rank)) {
                    sink += word;
                    ++insns;
                }
            } else {
                sink += item.word;
                ++insns;
            }
        }
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(insns));
}
BENCHMARK(BM_FetchExpand)->Arg(0)->Arg(1)->Arg(2);

/** Item start addresses in a deterministically shuffled (branchy) order. */
std::vector<uint32_t>
shuffledItemAddrs(const DecompressionEngine &engine)
{
    std::vector<uint32_t> addrs;
    for (const DecodedItem &item : engine.items())
        addrs.push_back(item.nibbleAddr);
    uint64_t lcg = 88172645463325252ull;
    for (size_t i = addrs.size(); i > 1; --i) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        std::swap(addrs[i - 1], addrs[(lcg >> 33) % i]);
    }
    return addrs;
}

void
BM_ItemLookupDense(benchmark::State &state)
{
    // The engine's dense nibble->index table: the per-fetch lookup on
    // the compressed processor's hottest path.
    CompressorConfig config;
    config.scheme = Scheme::Nibble;
    config.maxEntries = 8192;
    CompressedImage image = compressProgram(ijpeg(), config);
    DecompressionEngine engine(image);
    std::vector<uint32_t> addrs = shuffledItemAddrs(engine);
    for (auto _ : state) {
        uint64_t sink = 0;
        for (uint32_t addr : addrs)
            sink += engine.itemIndexAt(addr);
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(addrs.size()));
}
BENCHMARK(BM_ItemLookupDense);

void
BM_ItemLookupHashMap(benchmark::State &state)
{
    // Reference point: the unordered_map the engine used before the
    // dense table, rebuilt here so the two structures answer the same
    // queries over the same stream.
    CompressorConfig config;
    config.scheme = Scheme::Nibble;
    config.maxEntries = 8192;
    CompressedImage image = compressProgram(ijpeg(), config);
    DecompressionEngine engine(image);
    std::unordered_map<uint32_t, uint32_t> by_addr;
    const std::vector<DecodedItem> &items = engine.items();
    for (uint32_t i = 0; i < items.size(); ++i)
        by_addr.emplace(items[i].nibbleAddr, i);
    std::vector<uint32_t> addrs = shuffledItemAddrs(engine);
    for (auto _ : state) {
        uint64_t sink = 0;
        for (uint32_t addr : addrs)
            sink += by_addr.at(addr);
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(addrs.size()));
}
BENCHMARK(BM_ItemLookupHashMap);

void
BM_HuffmanDecodeSameText(benchmark::State &state)
{
    // The CCRP-style comparison point: per-bit entropy decoding.
    std::vector<uint8_t> bytes = ijpegBytes();
    auto code =
        baselines::HuffmanCode::build(baselines::byteFrequencies(bytes));
    BitWriter writer;
    for (uint8_t byte : bytes)
        code.encode(writer, byte);
    for (auto _ : state) {
        BitReader reader(writer.bytes().data(), writer.bitCount());
        uint32_t sink = 0;
        for (size_t i = 0; i < bytes.size(); ++i)
            sink += code.decode(reader);
        benchmark::DoNotOptimize(sink);
    }
    // Items = instructions decoded (4 bytes each), comparable with
    // BM_FetchExpand's items_per_second.
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(bytes.size() / 4));
}
BENCHMARK(BM_HuffmanDecodeSameText);

void
BM_LzwRoundTrip(benchmark::State &state)
{
    std::vector<uint8_t> bytes = ijpegBytes();
    for (auto _ : state) {
        auto compressed = baselines::lzwCompress(bytes);
        benchmark::DoNotOptimize(compressed.size());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_LzwRoundTrip);

void
BM_NativeExecution(benchmark::State &state)
{
    for (auto _ : state) {
        ExecResult result = runProgram(ijpeg());
        benchmark::DoNotOptimize(result.instCount);
    }
}
BENCHMARK(BM_NativeExecution);

void
BM_CompressedExecution(benchmark::State &state)
{
    CompressorConfig config;
    config.scheme = static_cast<Scheme>(state.range(0));
    config.maxEntries = 8192;
    CompressedImage image = compressProgram(ijpeg(), config);
    for (auto _ : state) {
        ExecResult result = runCompressed(image);
        benchmark::DoNotOptimize(result.instCount);
    }
}
BENCHMARK(BM_CompressedExecution)->Arg(0)->Arg(1)->Arg(2);

void
BM_EnumerateSharded(benchmark::State &state)
{
    // Candidate enumeration -- the dictionary-building hot loop --
    // sharded across the worker pool at the given job count.
    setGlobalJobs(static_cast<unsigned>(state.range(0)));
    const Program &program = ijpeg();
    Cfg cfg = Cfg::build(program);
    for (auto _ : state) {
        auto candidates = enumerateCandidates(program, cfg, 1, 4);
        benchmark::DoNotOptimize(candidates.size());
    }
    setGlobalJobs(0);
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            ijpeg().textBytes());
}
BENCHMARK(BM_EnumerateSharded)->Arg(1)->Arg(2)->Arg(4);

/** Wall time in ms to compress every suite program at @p jobs. */
double
suiteCompressMs(const std::vector<std::pair<std::string, Program>> &suite,
                unsigned jobs)
{
    setGlobalJobs(jobs);
    auto start = std::chrono::steady_clock::now();
    std::vector<size_t> sizes = parallelMap<size_t>(
        suite.size(), [&suite](size_t i) {
            CompressorConfig config;
            config.scheme = Scheme::Nibble;
            config.maxEntries = 4680;
            return compressProgram(suite[i].second, config).totalBytes();
        });
    auto end = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(sizes.data());
    setGlobalJobs(0);
    return std::chrono::duration<double, std::milli>(end - start)
        .count();
}

void
reportSuiteSpeedup()
{
    std::vector<std::pair<std::string, Program>> suite;
    for (const std::string &name : workloads::benchmarkNames())
        suite.emplace_back(name, workloads::buildBenchmark(name));

    unsigned jobs = globalJobs();
    suiteCompressMs(suite, 1); // warm caches so both legs are steady
    double serial_ms = suiteCompressMs(suite, 1);
    double parallel_ms = suiteCompressMs(suite, jobs);
    std::printf("suite compress (8 workloads, nibble): serial %.1f ms, "
                "%u jobs %.1f ms, speedup %.2fx\n",
                serial_ms, jobs, parallel_ms, serial_ms / parallel_ms);
    std::printf("PERF_JSON: {\"bench\":\"suite_compress_wall\","
                "\"workloads\":%zu,\"scheme\":\"nibble\","
                "\"serial_ms\":%.2f,\"parallel_ms\":%.2f,\"jobs\":%u,"
                "\"speedup\":%.3f}\n",
                suite.size(), serial_ms, parallel_ms, jobs,
                serial_ms / parallel_ms);
}

void
reportItemLookup()
{
    // One PERF_JSON line pinning the itemAt fast path: dense
    // nibble->index table vs the hash map it replaced, same shuffled
    // query stream.
    CompressorConfig config;
    config.scheme = Scheme::Nibble;
    config.maxEntries = 8192;
    CompressedImage image = compressProgram(ijpeg(), config);
    DecompressionEngine engine(image);
    std::unordered_map<uint32_t, uint32_t> by_addr;
    const std::vector<DecodedItem> &items = engine.items();
    for (uint32_t i = 0; i < items.size(); ++i)
        by_addr.emplace(items[i].nibbleAddr, i);
    std::vector<uint32_t> addrs = shuffledItemAddrs(engine);

    constexpr int rounds = 200;
    auto time_ns_per_lookup = [&addrs](auto &&lookup) {
        uint64_t sink = 0;
        for (uint32_t addr : addrs) // warm
            sink += lookup(addr);
        auto start = std::chrono::steady_clock::now();
        for (int r = 0; r < rounds; ++r)
            for (uint32_t addr : addrs)
                sink += lookup(addr);
        auto end = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(sink);
        return std::chrono::duration<double, std::nano>(end - start)
                   .count() /
               (static_cast<double>(rounds) * addrs.size());
    };
    double dense_ns = time_ns_per_lookup(
        [&engine](uint32_t addr) { return engine.itemIndexAt(addr); });
    double hash_ns = time_ns_per_lookup(
        [&by_addr](uint32_t addr) { return by_addr.at(addr); });
    std::printf("item lookup (%zu items, shuffled): dense %.2f ns, "
                "hash map %.2f ns, speedup %.2fx\n",
                addrs.size(), dense_ns, hash_ns, hash_ns / dense_ns);
    std::printf("PERF_JSON: {\"bench\":\"item_lookup\","
                "\"items\":%zu,\"dense_ns\":%.3f,\"hash_ns\":%.3f,"
                "\"speedup\":%.3f}\n",
                addrs.size(), dense_ns, hash_ns, hash_ns / dense_ns);
}

void
reportDecodeScan()
{
    // PERF_JSON line pinning the tentpole: the table-driven window
    // scan vs the reference nibble-at-a-time decoder, same image (the
    // golden-checksum suite proves they produce identical items).
    CompressorConfig config;
    config.scheme = Scheme::Nibble;
    config.maxEntries = 8192;
    CompressedImage image = compressProgram(ijpeg(), config);

    constexpr int rounds = 50;
    auto time_ms_per_scan = [&image](DecodePath path) {
        DecompressionEngine warm(image, path); // warm allocator/caches
        benchmark::DoNotOptimize(warm.items().size());
        auto start = std::chrono::steady_clock::now();
        size_t items = 0;
        for (int r = 0; r < rounds; ++r) {
            DecompressionEngine engine(image, path);
            items = engine.items().size();
            benchmark::DoNotOptimize(items);
        }
        auto end = std::chrono::steady_clock::now();
        return std::chrono::duration<double, std::milli>(end - start)
                   .count() /
               rounds;
    };
    double fast_ms = time_ms_per_scan(DecodePath::Fast);
    double reference_ms = time_ms_per_scan(DecodePath::Reference);
    size_t items = DecompressionEngine(image).items().size();
    std::printf("stream decode scan (ijpeg nibble, %zu items): "
                "fast %.3f ms, reference %.3f ms, speedup %.2fx\n",
                items, fast_ms, reference_ms, reference_ms / fast_ms);
    std::printf("PERF_JSON: {\"bench\":\"decode_scan\","
                "\"scheme\":\"nibble\",\"items\":%zu,"
                "\"fast_ms\":%.4f,\"reference_ms\":%.4f,"
                "\"speedup\":%.3f}\n",
                items, fast_ms, reference_ms, reference_ms / fast_ms);
}

void
reportExpandCache()
{
    // PERF_JSON line for the pre-decoded entry cache: expanding every
    // codeword in the stream through decodedEntry() (a cache walk) vs
    // re-running isa::decode per slot (what step() used to do).
    CompressorConfig config;
    config.scheme = Scheme::Nibble;
    config.maxEntries = 8192;
    CompressedImage image = compressProgram(ijpeg(), config);
    DecompressionEngine engine(image);
    std::vector<uint32_t> ranks;
    for (const DecodedItem &item : engine.items())
        if (item.isCodeword)
            ranks.push_back(item.rank);

    constexpr int rounds = 200;
    size_t insns = 0;
    auto time_ns_per_inst = [&](auto &&expand) {
        uint64_t sink = 0;
        insns = 0;
        for (uint32_t rank : ranks) // warm, and count the slots
            insns += expand(rank, sink);
        auto start = std::chrono::steady_clock::now();
        for (int r = 0; r < rounds; ++r)
            for (uint32_t rank : ranks)
                expand(rank, sink);
        auto end = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(sink);
        return std::chrono::duration<double, std::nano>(end - start)
                   .count() /
               (static_cast<double>(rounds) * insns);
    };
    double cached_ns =
        time_ns_per_inst([&engine](uint32_t rank, uint64_t &sink) {
            DecodedEntry entry = engine.decodedEntry(rank);
            for (const isa::Inst &inst : entry)
                sink += static_cast<uint64_t>(inst.op);
            return entry.size();
        });
    double decode_ns =
        time_ns_per_inst([&engine](uint32_t rank, uint64_t &sink) {
            const std::vector<isa::Word> &entry = engine.entry(rank);
            for (isa::Word word : entry)
                sink += static_cast<uint64_t>(isa::decode(word).op);
            return entry.size();
        });
    std::printf("codeword expansion (%zu codewords, %zu insts): "
                "cached %.2f ns/inst, isa::decode %.2f ns/inst, "
                "speedup %.2fx\n",
                ranks.size(), insns, cached_ns, decode_ns,
                decode_ns / cached_ns);
    std::printf("PERF_JSON: {\"bench\":\"expand_cache\","
                "\"codewords\":%zu,\"insts\":%zu,"
                "\"cached_ns\":%.3f,\"decode_ns\":%.3f,"
                "\"speedup\":%.3f}\n",
                ranks.size(), insns, cached_ns, decode_ns,
                decode_ns / cached_ns);
}

void
reportPassTimings()
{
    // Per-pass wall time through the pipeline: where a compression run
    // actually spends its milliseconds (ijpeg, nibble, greedy). One
    // warm run first so allocator and page-cache effects settle.
    CompressorConfig config;
    config.scheme = Scheme::Nibble;
    config.maxEntries = 4680;
    compressProgram(ijpeg(), config);
    compress::PipelineStats stats;
    compressProgram(ijpeg(), config, &stats);
    std::printf("pipeline passes (ijpeg, nibble): total %.2f ms\n",
                stats.totalMillis());
    for (const compress::PassStats &pass : stats.passes)
        std::printf("  %-12s %8.3f ms\n", pass.name.c_str(), pass.millis);
    std::printf("PERF_JSON: {\"bench\":\"pipeline_pass_wall\","
                "\"workload\":\"ijpeg\",\"pipeline\":%s}\n",
                stats.toJson().c_str());
}

void
reportFarmThroughput()
{
    // Farm throughput over the starter corpus (8 workloads x 3 schemes
    // x 2 strategies) and what the enumeration/selection cache buys: a
    // cached run vs an uncached run of the same queue, same pool.
    std::vector<farm::FarmJob> corpus = farm::starterCorpus();
    farm::FarmOptions options;
    options.keepImages = false;

    options.cache = false;
    farm::runFarm(corpus, options); // warm
    farm::FarmReport uncached = farm::runFarm(corpus, options);
    options.cache = true;
    farm::FarmReport cached = farm::runFarm(corpus, options);

    double uncached_jps =
        1000.0 * static_cast<double>(corpus.size()) /
        uncached.compressMillis;
    double cached_jps = 1000.0 * static_cast<double>(corpus.size()) /
                        cached.compressMillis;
    std::printf("farm throughput (%zu jobs, %u workers): uncached "
                "%.1f ms (%.1f jobs/s), cached %.1f ms (%.1f jobs/s), "
                "speedup %.2fx\n",
                corpus.size(), cached.poolJobs, uncached.compressMillis,
                uncached_jps, cached.compressMillis, cached_jps,
                uncached.compressMillis / cached.compressMillis);
    std::printf("PERF_JSON: {\"bench\":\"farm_throughput\","
                "\"jobs\":%zu,\"workers\":%u,\"uncached_ms\":%.2f,"
                "\"cached_ms\":%.2f,\"jobs_per_second\":%.2f,"
                "\"speedup\":%.3f}\n",
                corpus.size(), cached.poolJobs, uncached.compressMillis,
                cached.compressMillis, cached_jps,
                uncached.compressMillis / cached.compressMillis);
    const PipelineCache::Stats &cs = cached.cacheStats;
    double lookups = static_cast<double>(
        cs.enumHits + cs.enumMisses + cs.selectHits + cs.selectMisses);
    std::printf("PERF_JSON: {\"bench\":\"farm_cache_hit\","
                "\"enum_hits\":%llu,\"enum_misses\":%llu,"
                "\"select_hits\":%llu,\"select_misses\":%llu,"
                "\"hit_rate\":%.3f}\n",
                static_cast<unsigned long long>(cs.enumHits),
                static_cast<unsigned long long>(cs.enumMisses),
                static_cast<unsigned long long>(cs.selectHits),
                static_cast<unsigned long long>(cs.selectMisses),
                lookups > 0.0
                    ? static_cast<double>(cs.enumHits + cs.selectHits) /
                          lookups
                    : 0.0);
}

void
reportFarmFaultTolerance()
{
    // The persistent store: a cold run (computing and writing every
    // entry) vs a warm run of the same queue in a fresh cache (every
    // Select stage served from disk). The warm/cold ratio is the
    // price of recomputation the store saves across processes.
    std::vector<farm::FarmJob> corpus = farm::starterCorpus();
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("ccbench-persist-" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir);

    farm::FarmOptions options;
    options.keepImages = false;
    options.cacheDir = dir.string();
    farm::FarmReport cold = farm::runFarm(corpus, options);
    farm::FarmReport warm = farm::runFarm(corpus, options);
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);

    std::printf("farm persistent store (%zu jobs): cold %.1f ms "
                "(%llu stored), warm %.1f ms (%llu disk hits), "
                "speedup %.2fx\n",
                corpus.size(), cold.compressMillis,
                static_cast<unsigned long long>(
                    cold.cacheStats.persistStores),
                warm.compressMillis,
                static_cast<unsigned long long>(
                    warm.cacheStats.persistHits),
                warm.compressMillis > 0.0
                    ? cold.compressMillis / warm.compressMillis
                    : 0.0);
    std::printf("PERF_JSON: {\"bench\":\"farm_persist_hit\","
                "\"jobs\":%zu,\"cold_ms\":%.2f,\"warm_ms\":%.2f,"
                "\"stores\":%llu,\"disk_hits\":%llu,\"corrupt\":%llu,"
                "\"speedup\":%.3f}\n",
                corpus.size(), cold.compressMillis, warm.compressMillis,
                static_cast<unsigned long long>(
                    cold.cacheStats.persistStores),
                static_cast<unsigned long long>(
                    warm.cacheStats.persistHits),
                static_cast<unsigned long long>(
                    warm.cacheStats.persistCorrupt),
                warm.compressMillis > 0.0
                    ? cold.compressMillis / warm.compressMillis
                    : 0.0);

    // LRU eviction under a tight entry cap: the cache keeps working
    // (results identical -- asserted by tests; here we track cost).
    farm::FarmOptions capped;
    capped.keepImages = false;
    capped.cacheMaxEntries = 4;
    farm::FarmReport evicting = farm::runFarm(corpus, capped);
    std::printf("PERF_JSON: {\"bench\":\"farm_cache_evict\","
                "\"jobs\":%zu,\"cap_entries\":4,\"wall_ms\":%.2f,"
                "\"evictions\":%llu,\"enum_hits\":%llu,"
                "\"select_hits\":%llu}\n",
                corpus.size(), evicting.compressMillis,
                static_cast<unsigned long long>(
                    evicting.cacheStats.evictions),
                static_cast<unsigned long long>(
                    evicting.cacheStats.enumHits),
                static_cast<unsigned long long>(
                    evicting.cacheStats.selectHits));
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0) {
            int jobs = std::atoi(argv[i + 1]);
            if (jobs >= 1)
                setGlobalJobs(static_cast<unsigned>(jobs));
        }
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    reportItemLookup();
    reportDecodeScan();
    reportExpandCache();
    reportPassTimings();
    reportSuiteSpeedup();
    reportFarmThroughput();
    reportFarmFaultTolerance();
    return 0;
}
