/**
 * @file
 * Figure 8: compression with small dictionaries -- 1-byte codewords
 * (pure escape bytes built from the illegal opcodes), dictionaries of
 * 8, 16, and 32 entries (128/256/512-byte dictionaries), entries up to
 * 4 instructions.
 *
 * Paper: a 512-byte dictionary already yields ~15% average code
 * reduction. Our SDTS output is more template-concentrated than GCC
 * -O2, so our small-dictionary reductions run deeper (see
 * EXPERIMENTS.md, deviation D2); the shape -- 8 -> 16 -> 32 entries
 * keeps helping, and even tiny dictionaries pay off -- is what is
 * reproduced here.
 */

#include "compress/compressor.hh"
#include "common.hh"

using namespace codecomp;
using namespace codecomp::bench;

int
main()
{
    banner("Figure 8",
           "compression ratio, 1-byte codewords, <= 4 insns/entry");
    const unsigned budgets[] = {8, 16, 32};
    std::printf("%-9s", "bench");
    for (unsigned budget : budgets)
        std::printf("  %2u entries (%3uB dict)", budget, budget * 16);
    std::printf("\n");
    for (const auto &[name, program] : buildSuite()) {
        std::printf("%-9s", name.c_str());
        for (unsigned budget : budgets) {
            compress::CompressorConfig config;
            config.scheme = compress::Scheme::OneByte;
            config.maxEntries = budget;
            config.maxEntryLen = 4;
            compress::CompressedImage image =
                compress::compressProgram(program, config);
            std::printf("          %s   ",
                        pct(image.compressionRatio()).c_str());
        }
        std::printf("\n");
    }
    std::printf("paper: 512-byte dictionary -> ~15%% average reduction; "
                "shape: more entries always help\n");
    return 0;
}
