/**
 * @file
 * Figure 8: compression with small dictionaries -- 1-byte codewords
 * (pure escape bytes built from the illegal opcodes), dictionaries of
 * 8, 16, and 32 entries (128/256/512-byte dictionaries), entries up to
 * 4 instructions.
 *
 * Paper: a 512-byte dictionary already yields ~15% average code
 * reduction. Our SDTS output is more template-concentrated than GCC
 * -O2, so our small-dictionary reductions run deeper (see
 * EXPERIMENTS.md, deviation D2); the shape -- 8 -> 16 -> 32 entries
 * keeps helping, and even tiny dictionaries pay off -- is what is
 * reproduced here.
 */

#include "compress/compressor.hh"
#include "common.hh"

using namespace codecomp;
using namespace codecomp::bench;

int
main(int argc, char **argv)
{
    initJobs(argc, argv);
    banner("Figure 8",
           "compression ratio, 1-byte codewords, <= 4 insns/entry");
    const std::vector<unsigned> budgets = {8, 16, 32};
    std::printf("%-9s", "bench");
    for (unsigned budget : budgets)
        std::printf("  %2u entries (%3uB dict)", budget, budget * 16);
    std::printf("\n");
    auto suite = buildSuite();
    auto ratios = parallelGrid<double>(
        suite.size(), budgets.size(), [&](size_t row, size_t col) {
            compress::CompressorConfig config;
            config.scheme = compress::Scheme::OneByte;
            config.maxEntries = budgets[col];
            config.maxEntryLen = 4;
            return compress::compressProgram(suite[row].second, config)
                .compressionRatio();
        });
    for (size_t row = 0; row < suite.size(); ++row) {
        std::printf("%-9s", suite[row].first.c_str());
        for (double ratio : ratios[row])
            std::printf("          %s   ", pct(ratio).c_str());
        std::printf("\n");
    }
    std::printf("paper: 512-byte dictionary -> ~15%% average reduction; "
                "shape: more entries always help\n");
    return 0;
}
