/**
 * @file
 * Figure 11: the headline result -- nibble-aligned compression vs Unix
 * Compress (LZW) on every benchmark.
 *
 * Paper: the nibble scheme achieves 30-50% code reduction (ratio
 * 0.5-0.7) and comes within ~5 percentage points of Compress, which is
 * adaptive and therefore usually better, but cannot be executed in
 * place the way the dictionary scheme can.
 */

#include "baselines/lzw.hh"
#include "compress/compressor.hh"
#include "common.hh"

using namespace codecomp;
using namespace codecomp::bench;

namespace {

std::vector<uint8_t>
textBytes(const Program &program)
{
    std::vector<uint8_t> bytes;
    for (isa::Word word : program.text) {
        bytes.push_back(static_cast<uint8_t>(word >> 24));
        bytes.push_back(static_cast<uint8_t>(word >> 16));
        bytes.push_back(static_cast<uint8_t>(word >> 8));
        bytes.push_back(static_cast<uint8_t>(word));
    }
    return bytes;
}

} // namespace

namespace {

struct Comparison
{
    size_t origBytes = 0;
    double nibbleRatio = 0;
    double lzwRatio = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    initJobs(argc, argv);
    banner("Figure 11",
           "nibble-aligned compression vs Unix Compress (LZW)");
    std::printf("%-9s %10s %12s %12s %8s\n", "bench", "orig(B)",
                "nibble", "compress(1)", "delta");
    auto suite = buildSuite();
    std::vector<Comparison> rows = parallelMap<Comparison>(
        suite.size(), [&suite](size_t i) {
            const Program &program = suite[i].second;
            compress::CompressorConfig config;
            config.scheme = compress::Scheme::Nibble;
            config.maxEntries = 4680;
            config.maxEntryLen = 4;
            compress::CompressedImage image =
                compress::compressProgram(program, config);
            std::vector<uint8_t> bytes = textBytes(program);
            std::vector<uint8_t> lzw = baselines::lzwCompress(bytes);
            return Comparison{
                bytes.size(), image.compressionRatio(),
                static_cast<double>(lzw.size()) / bytes.size()};
        });
    double worst_delta = 0;
    for (size_t i = 0; i < suite.size(); ++i) {
        const Comparison &row = rows[i];
        double delta = row.nibbleRatio - row.lzwRatio;
        worst_delta = std::max(worst_delta, delta);
        std::printf("%-9s %10zu %12s %12s %+7.1f%%\n",
                    suite[i].first.c_str(), row.origBytes,
                    pct(row.nibbleRatio).c_str(),
                    pct(row.lzwRatio).c_str(), delta * 100);
    }
    std::printf("paper: nibble ratio 0.5-0.7 (30-50%% reduction), within "
                "~5 points of Compress; worst delta here: %.1f points\n",
                worst_delta * 100);
    return 0;
}
