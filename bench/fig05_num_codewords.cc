/**
 * @file
 * Figure 5: effect of the number of codewords (dictionary entries) on
 * the compression ratio, baseline scheme, entries up to 4 instructions.
 *
 * Paper shape: monotone improvement that flattens once all profitable
 * sequences have codewords (a few thousand suffice for CINT95).
 */

#include "compress/compressor.hh"
#include "common.hh"

using namespace codecomp;
using namespace codecomp::bench;

int
main(int argc, char **argv)
{
    initJobs(argc, argv);
    banner("Figure 5",
           "compression ratio vs number of codewords (baseline, 4 "
           "insns/entry)");
    const std::vector<unsigned> budgets = {16,   64,   256, 1024,
                                           2048, 4096, 8192};
    std::printf("%-9s", "bench");
    for (unsigned budget : budgets)
        std::printf(" %7u", budget);
    std::printf("\n");
    auto suite = buildSuite();
    auto ratios = parallelGrid<double>(
        suite.size(), budgets.size(), [&](size_t row, size_t col) {
            compress::CompressorConfig config;
            config.scheme = compress::Scheme::Baseline;
            config.maxEntries = budgets[col];
            config.maxEntryLen = 4;
            return compress::compressProgram(suite[row].second, config)
                .compressionRatio();
        });
    for (size_t row = 0; row < suite.size(); ++row) {
        std::printf("%-9s", suite[row].first.c_str());
        for (double ratio : ratios[row])
            std::printf(" %s", pct(ratio).c_str());
        std::printf("\n");
    }
    std::printf("paper shape: monotone improvement, flattening in the "
                "low thousands of codewords\n");
    return 0;
}
