/**
 * @file
 * Figure 5: effect of the number of codewords (dictionary entries) on
 * the compression ratio, baseline scheme, entries up to 4 instructions.
 *
 * Paper shape: monotone improvement that flattens once all profitable
 * sequences have codewords (a few thousand suffice for CINT95).
 *
 * The sweep runs as one farm batch (farm/farm.hh): candidate
 * enumeration does not depend on the entry budget, so the shared
 * PipelineCache enumerates each workload once and the remaining
 * budgets hit the cache. The realized hit rate goes out as a
 * PERF_JSON record.
 */

#include "compress/compressor.hh"
#include "farm/farm.hh"
#include "common.hh"

using namespace codecomp;
using namespace codecomp::bench;

int
main(int argc, char **argv)
{
    initJobs(argc, argv);
    banner("Figure 5",
           "compression ratio vs number of codewords (baseline, 4 "
           "insns/entry)");
    const std::vector<unsigned> budgets = {16,   64,   256, 1024,
                                           2048, 4096, 8192};
    const std::vector<std::string> names = workloads::benchmarkNames();

    // One job per (workload, budget), workload-major so the report
    // rows come back in print order.
    std::vector<farm::FarmJob> jobs;
    for (const std::string &name : names) {
        for (unsigned budget : budgets) {
            farm::FarmJob job;
            job.id = name + "/" + std::to_string(budget);
            job.workload = name;
            job.config.scheme = compress::Scheme::Baseline;
            job.config.maxEntries = budget;
            job.config.maxEntryLen = 4;
            jobs.push_back(std::move(job));
        }
    }
    farm::FarmOptions options;
    options.keepImages = false;
    farm::FarmReport report = farm::runFarm(jobs, options);

    std::printf("%-9s", "bench");
    for (unsigned budget : budgets)
        std::printf(" %7u", budget);
    std::printf("\n");
    for (size_t row = 0; row < names.size(); ++row) {
        std::printf("%-9s", names[row].c_str());
        for (size_t col = 0; col < budgets.size(); ++col) {
            const farm::FarmJobResult &result =
                report.results[row * budgets.size() + col];
            if (!result.ok()) {
                std::fprintf(stderr, "fig05: %s: %s\n",
                             result.id.c_str(), result.error.c_str());
                return 1;
            }
            std::printf(" %s", pct(result.ratio).c_str());
        }
        std::printf("\n");
    }
    std::printf("paper shape: monotone improvement, flattening in the "
                "low thousands of codewords\n");

    const compress::PipelineCache::Stats &cache = report.cacheStats;
    uint64_t enumTotal = cache.enumHits + cache.enumMisses;
    std::printf("PERF_JSON: {\"bench\":\"fig05_num_codewords\","
                "\"jobs\":%zu,\"enum_hits\":%llu,\"enum_misses\":%llu,"
                "\"enum_hit_rate\":%.4f,\"select_hits\":%llu,"
                "\"select_misses\":%llu,\"compress_millis\":%.1f}\n",
                jobs.size(),
                static_cast<unsigned long long>(cache.enumHits),
                static_cast<unsigned long long>(cache.enumMisses),
                enumTotal ? static_cast<double>(cache.enumHits) /
                                static_cast<double>(enumTotal)
                          : 0.0,
                static_cast<unsigned long long>(cache.selectHits),
                static_cast<unsigned long long>(cache.selectMisses),
                report.compressMillis);
    return 0;
}
