/**
 * @file
 * Figure 5: effect of the number of codewords (dictionary entries) on
 * the compression ratio, baseline scheme, entries up to 4 instructions.
 *
 * Paper shape: monotone improvement that flattens once all profitable
 * sequences have codewords (a few thousand suffice for CINT95).
 */

#include "compress/compressor.hh"
#include "common.hh"

using namespace codecomp;
using namespace codecomp::bench;

int
main()
{
    banner("Figure 5",
           "compression ratio vs number of codewords (baseline, 4 "
           "insns/entry)");
    const unsigned budgets[] = {16, 64, 256, 1024, 2048, 4096, 8192};
    std::printf("%-9s", "bench");
    for (unsigned budget : budgets)
        std::printf(" %7u", budget);
    std::printf("\n");
    for (const auto &[name, program] : buildSuite()) {
        std::printf("%-9s", name.c_str());
        for (unsigned budget : budgets) {
            compress::CompressorConfig config;
            config.scheme = compress::Scheme::Baseline;
            config.maxEntries = budget;
            config.maxEntryLen = 4;
            compress::CompressedImage image =
                compress::compressProgram(program, config);
            std::printf(" %s", pct(image.compressionRatio()).c_str());
        }
        std::printf("\n");
    }
    std::printf("paper shape: monotone improvement, flattening in the "
                "low thousands of codewords\n");
    return 0;
}
