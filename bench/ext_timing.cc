/**
 * @file
 * Extension: the size-vs-speed Pareto sweep.
 *
 * The paper measures static size and motivates the rest through the
 * memory system ("Reducing program size is one way to reduce
 * instruction cache misses and achieve higher performance [Chen97b]").
 * This harness closes the loop with the cycle-approximate timing model
 * (src/timing): every workload runs natively and under each scheme x
 * selection strategy, through at least two I-cache geometries, and each
 * point lands on the size-vs-cycles plane.
 *
 * Expected shape: in the capacity-limited geometry compressed code
 * trades expansion stalls for line fills and wins where the native
 * working set exceeds the cache; in the roomy geometry the native code
 * keeps its zero-expansion advantage. The traffic-weighted dictionary
 * (compress::selectByTraffic over a profiling run) is the
 * speed-greediest point: worse static size, fewest fetched bytes.
 *
 * Emits one PERF_JSON line per (workload, variant) and writes the whole
 * sweep as a BENCH_5.json trajectory artifact (--out to relocate) so
 * future PRs can track speed as well as size.
 */

#include <iterator>
#include <string>
#include <vector>

#include "compress/compressor.hh"
#include "compress/strategy.hh"
#include "decompress/compressed_cpu.hh"
#include "decompress/cpu.hh"
#include "support/json.hh"
#include "support/serialize.hh"
#include "timing/timing.hh"
#include "common.hh"

using namespace codecomp;
using namespace codecomp::bench;
using namespace codecomp::timing;

namespace {

constexpr uint64_t maxSteps = 1ull << 27;

/** The two geometries: capacity-limited and roomy. */
const cache::CacheConfig cacheConfigs[] = {{1024, 32, 1}, {4096, 32, 2}};
constexpr size_t numCaches = std::size(cacheConfigs);

TimingConfig
modelFor(const cache::CacheConfig &icache)
{
    TimingConfig config;
    config.frontendWidth = 1;
    config.icache = icache;
    config.missPenaltyCycles = 10;
    config.memoryCyclesPerWord = 1;
    config.expansionCyclesPerWord = 1;
    config.redirectPenaltyCycles = 2;
    return config;
}

struct Variant
{
    std::string label;    //!< "nibble/greedy"
    std::string scheme;
    std::string strategy;
    size_t totalBytes;
    double ratio;
    TimingReport report[numCaches];
};

struct WorkloadResult
{
    std::string name;
    uint32_t nativeBytes;
    TimingReport native[numCaches];
    std::vector<Variant> variants;
};

/** Run @p image once, feeding one timer per cache geometry. */
void
timeCompressed(const compress::CompressedImage &image,
               TimingReport (&out)[numCaches])
{
    std::vector<FetchTimer> timers;
    for (const cache::CacheConfig &cache : cacheConfigs)
        timers.emplace_back(modelFor(cache));
    CompressedCpu cpu(image);
    cpu.setFetchHook([&timers](const FetchEvent &event) {
        for (FetchTimer &timer : timers)
            timer.onFetch(event);
    });
    cpu.run(maxSteps);
    for (size_t i = 0; i < numCaches; ++i)
        out[i] = timers[i].report();
}

WorkloadResult
sweepWorkload(const std::string &name, const Program &program)
{
    WorkloadResult result;
    result.name = name;
    result.nativeBytes = program.textBytes();

    // One native run feeds every cache geometry and the execution-count
    // profile for the traffic-weighted dictionary.
    std::vector<FetchTimer> timers;
    for (const cache::CacheConfig &cache : cacheConfigs)
        timers.emplace_back(modelFor(cache));
    std::vector<uint64_t> profile(program.text.size(), 0);
    {
        Cpu cpu(program);
        cpu.setFetchHook([&](const FetchEvent &event) {
            for (FetchTimer &timer : timers)
                timer.onFetch(event);
            ++profile[program.indexOfAddr(event.addr)];
        });
        cpu.run(maxSteps);
    }
    for (size_t i = 0; i < numCaches; ++i)
        result.native[i] = timers[i].report();

    const compress::StrategyKind strategies[] = {
        compress::StrategyKind::Greedy,
        compress::StrategyKind::IterativeRefit};
    for (compress::Scheme scheme : compress::allSchemes()) {
        for (compress::StrategyKind strategy : strategies) {
            compress::CompressorConfig config;
            config.scheme = scheme;
            config.maxEntries = compress::schemeParams(scheme).maxCodewords;
            config.strategy = strategy;
            compress::CompressedImage image =
                compress::compressProgram(program, config);
            Variant variant;
            variant.scheme = compress::schemeName(scheme);
            variant.strategy = compress::strategyName(strategy);
            variant.label = variant.scheme + "/" + variant.strategy;
            variant.totalBytes = image.totalBytes();
            variant.ratio = image.compressionRatio();
            timeCompressed(image, variant.report);
            result.variants.push_back(std::move(variant));
        }
    }

    // The traffic-weighted point: a small dictionary picked to minimize
    // dynamic fetch traffic (ext_profile's objective, library-ized).
    {
        compress::CompressorConfig config;
        config.scheme = compress::Scheme::Nibble;
        config.maxEntries = 64;
        config.maxEntryLen = 4;
        compress::SchemeParams params =
            compress::schemeParams(config.scheme);
        compress::GreedyConfig greedy;
        greedy.maxEntries = config.maxEntries;
        greedy.maxEntryLen = config.maxEntryLen;
        greedy.insnNibbles = params.insnNibbles;
        greedy.codewordNibbles = params.defaultAssumedCodewordNibbles;
        compress::SelectionResult selection =
            compress::selectByTraffic(program, profile, greedy);
        compress::CompressedImage image = compress::compressWithSelection(
            program, config, std::move(selection));
        Variant variant;
        variant.scheme = "nibble";
        variant.strategy = "traffic64";
        variant.label = "nibble/traffic64";
        variant.totalBytes = image.totalBytes();
        variant.ratio = image.compressionRatio();
        timeCompressed(image, variant.report);
        result.variants.push_back(std::move(variant));
    }
    return result;
}

std::string
cacheName(const cache::CacheConfig &config)
{
    return std::to_string(config.capacityBytes) + ":" +
           std::to_string(config.lineBytes) + ":" +
           std::to_string(config.ways);
}

/** One PERF_JSON / BENCH_5.json record. */
std::string
recordJson(const WorkloadResult &work, const Variant &variant)
{
    JsonWriter json;
    json.beginObject()
        .member("bench", "timing")
        .member("workload", work.name)
        .member("scheme", variant.scheme)
        .member("strategy", variant.strategy)
        .member("total_bytes", static_cast<uint64_t>(variant.totalBytes))
        .member("ratio", variant.ratio);
    json.key("caches").beginArray();
    for (size_t i = 0; i < numCaches; ++i) {
        const TimingReport &native = work.native[i];
        const TimingReport &compressed = variant.report[i];
        json.beginObject()
            .member("cache", cacheName(cacheConfigs[i]))
            .member("native_cycles", native.cycles())
            .member("compressed_cycles", compressed.cycles())
            .member("native_cpi", native.cpi())
            .member("compressed_cpi", compressed.cpi())
            .member("cycle_ratio",
                    native.cycles() == 0
                        ? 0.0
                        : static_cast<double>(compressed.cycles()) /
                              static_cast<double>(native.cycles()))
            .member("stall_icache_miss", compressed.stallIcacheMiss)
            .member("stall_expansion", compressed.stallExpansion)
            .member("stall_redirect", compressed.stallRedirect)
            .endObject();
    }
    json.endArray().endObject();
    return json.str();
}

} // namespace

int
main(int argc, char **argv)
{
    initJobs(argc, argv);
    std::string outPath = "BENCH_5.json";
    for (int i = 1; i + 1 < argc; ++i)
        if (std::string(argv[i]) == "--out")
            outPath = argv[i + 1];

    banner("Extension: timing",
           "size-vs-speed Pareto sweep (cycle-approximate model, "
           "width 1, fill 18 cycles)");

    auto suite = buildSuite();
    std::vector<WorkloadResult> results =
        parallelMap<WorkloadResult>(suite.size(), [&suite](size_t i) {
            return sweepWorkload(suite[i].first, suite[i].second);
        });

    for (const WorkloadResult &work : results) {
        std::printf("\n== %s (native text %uB) ==\n", work.name.c_str(),
                    work.nativeBytes);
        std::printf("%-18s %8s %7s", "variant", "bytes", "ratio");
        for (const cache::CacheConfig &cache : cacheConfigs)
            std::printf("  %12s %6s", ("cyc@" + cacheName(cache)).c_str(),
                        "vs-nat");
        std::printf("\n");
        std::printf("%-18s %8u %7s", "native", work.nativeBytes, "100.0%");
        for (size_t i = 0; i < numCaches; ++i)
            std::printf("  %12llu %6s",
                        static_cast<unsigned long long>(
                            work.native[i].cycles()),
                        "1.000");
        std::printf("\n");
        for (const Variant &variant : work.variants) {
            std::printf("%-18s %8zu %6.1f%%", variant.label.c_str(),
                        variant.totalBytes, variant.ratio * 100);
            for (size_t i = 0; i < numCaches; ++i) {
                double vs =
                    work.native[i].cycles() == 0
                        ? 0.0
                        : static_cast<double>(variant.report[i].cycles()) /
                              static_cast<double>(
                                  work.native[i].cycles());
                std::printf("  %12llu %6.3f",
                            static_cast<unsigned long long>(
                                variant.report[i].cycles()),
                            vs);
            }
            std::printf("\n");
        }
    }
    std::printf("\n(vs-nat < 1: the compressed processor finishes first; "
                "the gap opens in the capacity-limited geometry and "
                "closes when the cache fits the native working set)\n");

    std::string artifact = "[";
    for (const WorkloadResult &work : results) {
        for (const Variant &variant : work.variants) {
            std::string record = recordJson(work, variant);
            std::printf("PERF_JSON: %s\n", record.c_str());
            if (artifact.size() > 1)
                artifact += ",";
            artifact += record;
        }
    }
    artifact += "]\n";
    writeFile(outPath,
              std::vector<uint8_t>(artifact.begin(), artifact.end()));
    std::printf("trajectory artifact: %s\n", outPath.c_str());
    return 0;
}
