/**
 * @file
 * Extension: ablations of the design choices called out in DESIGN.md.
 *
 * A1  Greedy-by-savings vs rank-by-static-count selection. The paper
 *     chooses greedy; the ablation quantifies what a single-pass
 *     frequency ranking (no recounting after replacements) loses.
 * A2  The assumed codeword cost used during nibble-scheme selection
 *     (true costs are rank-dependent and unknowable during selection).
 * A3  Far-branch stub pressure: how many branches lose offset range at
 *     each scheme's codeword granularity and need the stub rewrite.
 * A4  Selection strategy sweep: greedy vs rank-aware iterative refit
 *     under the nibble scheme, with per-pass pipeline timing emitted as
 *     PERF_JSON lines for the bench trajectory.
 *
 * A3 and A4 run as one farm batch (farm::runFarm): the shared
 * PipelineCache enumerates each workload once for the whole sweep --
 * enumeration keys are scheme-independent -- and the A4 greedy point
 * is a select-cache hit off A3's full-cap nibble job.
 */

#include <algorithm>

#include "compress/compressor.hh"
#include "compress/greedy.hh"
#include "compress/pipeline.hh"
#include "farm/farm.hh"
#include "common.hh"

using namespace codecomp;
using namespace codecomp::bench;
using namespace codecomp::compress;

namespace {

/** A1 alternative: rank candidates once by initial savings, accept in
 *  order while occurrences remain, never re-rank. */
SelectionResult
selectByStaticRank(const Program &program, const GreedyConfig &config)
{
    Cfg cfg = Cfg::build(program);
    std::vector<Candidate> candidates = enumerateCandidates(
        program, cfg, config.minEntryLen, config.maxEntryLen);
    std::vector<std::pair<int64_t, uint32_t>> ranked;
    for (uint32_t id = 0; id < candidates.size(); ++id) {
        uint32_t length =
            static_cast<uint32_t>(candidates[id].seq.size());
        uint32_t occ =
            countNonOverlapping(candidates[id].positions, length, {});
        int64_t savings = savingsNibbles(config, length, occ);
        if (savings > 0)
            ranked.emplace_back(-savings, id);
    }
    std::sort(ranked.begin(), ranked.end());

    SelectionResult result;
    std::vector<bool> consumed(program.text.size(), false);
    for (const auto &[neg, id] : ranked) {
        if (result.dict.entries.size() >= config.maxEntries)
            break;
        const Candidate &cand = candidates[id];
        uint32_t length = static_cast<uint32_t>(cand.seq.size());
        uint32_t occ =
            countNonOverlapping(cand.positions, length, consumed);
        if (savingsNibbles(config, length, occ) <= 0)
            continue;
        uint32_t entry_id =
            static_cast<uint32_t>(result.dict.entries.size());
        uint32_t count = 0;
        uint64_t next_free = 0;
        for (uint32_t pos : cand.positions) {
            if (pos < next_free)
                continue;
            bool blocked = false;
            for (uint32_t i = pos; i < pos + length; ++i)
                if (consumed[i])
                    blocked = true;
            if (blocked)
                continue;
            for (uint32_t i = pos; i < pos + length; ++i)
                consumed[i] = true;
            result.placements.push_back({pos, length, entry_id});
            ++count;
            next_free = static_cast<uint64_t>(pos) + length;
        }
        result.dict.entries.push_back(cand.seq);
        result.useCount.push_back(count);
    }
    std::sort(result.placements.begin(), result.placements.end(),
              [](const Placement &a, const Placement &b) {
                  return a.start < b.start;
              });
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    initJobs(argc, argv);
    banner("Ablation A1", "greedy vs static-rank selection (baseline, "
                          "8192 codewords)");
    std::printf("%-9s %10s %12s\n", "bench", "greedy", "static-rank");
    for (const auto &[name, program] : buildSuite()) {
        CompressorConfig config;
        config.scheme = Scheme::Baseline;
        CompressedImage greedy = compressProgram(program, config);

        GreedyConfig gcfg;
        gcfg.maxEntries = 8192;
        gcfg.maxEntryLen = 4;
        CompressedImage ranked = compressWithSelection(
            program, config, selectByStaticRank(program, gcfg));
        std::printf("%-9s %10s %12s\n", name.c_str(),
                    pct(greedy.compressionRatio()).c_str(),
                    pct(ranked.compressionRatio()).c_str());
    }

    banner("Ablation A2",
           "assumed codeword cost during nibble selection (gcc)");
    Program gcc_prog = workloads::buildBenchmark("gcc");
    std::printf("%-14s %10s\n", "assumed cost", "ratio");
    for (unsigned nibbles : {1u, 2u, 3u, 4u}) {
        CompressorConfig config;
        config.scheme = Scheme::Nibble;
        config.maxEntries = 4680;
        config.assumedCodewordNibbles = nibbles;
        CompressedImage image = compressProgram(gcc_prog, config);
        std::printf("%u nibbles      %10s%s\n", nibbles,
                    pct(image.compressionRatio()).c_str(),
                    nibbles == 2 ? "   (default)" : "");
    }

    // A3 + A4 as one farm batch: queue A3's workload x scheme grid
    // (full dictionary, greedy) and A4's workload x strategy pairs
    // (nibble, 4680), then read both tables out of one report.
    const std::vector<std::string> &names = workloads::benchmarkNames();
    const std::vector<const SchemeCodec *> &codecs = allCodecs();
    const StrategyKind sweepStrategies[] = {StrategyKind::Greedy,
                                            StrategyKind::IterativeRefit};
    std::vector<farm::FarmJob> jobs;
    for (const std::string &name : names) {
        for (const SchemeCodec *codec : codecs) {
            farm::FarmJob job;
            job.id = "a3/" + name + "/" +
                     std::string(codec->cliName());
            job.workload = name;
            job.config.scheme = codec->id();
            job.config.maxEntries = codec->params().maxCodewords;
            jobs.push_back(std::move(job));
        }
    }
    size_t a4Base = jobs.size();
    for (const std::string &name : names) {
        for (StrategyKind strategy : sweepStrategies) {
            farm::FarmJob job;
            job.id = "a4/" + name + "/" + strategyName(strategy);
            job.workload = name;
            job.config.scheme = Scheme::Nibble;
            job.config.maxEntries = 4680;
            job.config.strategy = strategy;
            jobs.push_back(std::move(job));
        }
    }
    farm::FarmOptions options;
    options.keepImages = false; // only sizes and stats are read back
    farm::FarmReport report = farm::runFarm(jobs, options);

    banner("Ablation A3", "far-branch stub rewrites per scheme");
    std::printf("%-9s", "bench");
    for (const SchemeCodec *codec : codecs)
        std::printf(" %10s", std::string(codec->cliName()).c_str());
    std::printf("\n");
    for (size_t w = 0; w < names.size(); ++w) {
        std::printf("%-9s", names[w].c_str());
        for (size_t c = 0; c < codecs.size(); ++c)
            std::printf(" %10u",
                        report.results[w * codecs.size() + c]
                            .farBranchExpansions);
        std::printf("\n");
    }
    std::printf("note: 0 everywhere means every branch kept offset range "
                "at finer granularity (programs well under the 14-bit "
                "field's reach)\n");

    banner("Ablation A4",
           "selection strategy sweep: greedy vs iterative refit (nibble)");
    std::printf("%-9s %10s %10s %8s %7s\n", "bench", "greedy", "refit",
                "delta", "rounds");
    for (size_t w = 0; w < names.size(); ++w) {
        const farm::FarmJobResult *pair[2];
        for (size_t s = 0; s < 2; ++s) {
            pair[s] = &report.results[a4Base + w * 2 + s];
            std::printf("PERF_JSON: {\"bench\":\"strategy_sweep\","
                        "\"workload\":\"%s\",\"total_bytes\":%llu,"
                        "\"pipeline\":%s}\n",
                        names[w].c_str(),
                        static_cast<unsigned long long>(
                            pair[s]->totalBytes),
                        pair[s]->stats.toJson().c_str());
        }
        std::printf("%-9s %10llu %10llu %8lld %7u\n", names[w].c_str(),
                    static_cast<unsigned long long>(pair[0]->totalBytes),
                    static_cast<unsigned long long>(pair[1]->totalBytes),
                    static_cast<long long>(pair[1]->totalBytes) -
                        static_cast<long long>(pair[0]->totalBytes),
                    pair[1]->stats.selectionRounds);
    }
    std::printf("note: refit re-runs greedy selection under corrected "
                "codeword costs; delta < 0 means the refit image is "
                "smaller; the whole A3+A4 grid ran as one farm batch "
                "(%llu enum hits, %llu select hits)\n",
                static_cast<unsigned long long>(
                    report.cacheStats.enumHits),
                static_cast<unsigned long long>(
                    report.cacheStats.selectHits));
    return 0;
}
