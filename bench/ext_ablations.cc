/**
 * @file
 * Extension: ablations of the design choices called out in DESIGN.md.
 *
 * A1  Greedy-by-savings vs rank-by-static-count selection. The paper
 *     chooses greedy; the ablation quantifies what a single-pass
 *     frequency ranking (no recounting after replacements) loses.
 * A2  The assumed codeword cost used during nibble-scheme selection
 *     (true costs are rank-dependent and unknowable during selection).
 * A3  Far-branch stub pressure: how many branches lose offset range at
 *     each scheme's codeword granularity and need the stub rewrite.
 * A4  Selection strategy sweep: greedy vs rank-aware iterative refit
 *     under the nibble scheme, with per-pass pipeline timing emitted as
 *     PERF_JSON lines for the bench trajectory.
 */

#include <algorithm>

#include "compress/compressor.hh"
#include "compress/greedy.hh"
#include "compress/pipeline.hh"
#include "common.hh"

using namespace codecomp;
using namespace codecomp::bench;
using namespace codecomp::compress;

namespace {

/** A1 alternative: rank candidates once by initial savings, accept in
 *  order while occurrences remain, never re-rank. */
SelectionResult
selectByStaticRank(const Program &program, const GreedyConfig &config)
{
    Cfg cfg = Cfg::build(program);
    std::vector<Candidate> candidates = enumerateCandidates(
        program, cfg, config.minEntryLen, config.maxEntryLen);
    std::vector<std::pair<int64_t, uint32_t>> ranked;
    for (uint32_t id = 0; id < candidates.size(); ++id) {
        uint32_t length =
            static_cast<uint32_t>(candidates[id].seq.size());
        uint32_t occ =
            countNonOverlapping(candidates[id].positions, length, {});
        int64_t savings = savingsNibbles(config, length, occ);
        if (savings > 0)
            ranked.emplace_back(-savings, id);
    }
    std::sort(ranked.begin(), ranked.end());

    SelectionResult result;
    std::vector<bool> consumed(program.text.size(), false);
    for (const auto &[neg, id] : ranked) {
        if (result.dict.entries.size() >= config.maxEntries)
            break;
        const Candidate &cand = candidates[id];
        uint32_t length = static_cast<uint32_t>(cand.seq.size());
        uint32_t occ =
            countNonOverlapping(cand.positions, length, consumed);
        if (savingsNibbles(config, length, occ) <= 0)
            continue;
        uint32_t entry_id =
            static_cast<uint32_t>(result.dict.entries.size());
        uint32_t count = 0;
        uint64_t next_free = 0;
        for (uint32_t pos : cand.positions) {
            if (pos < next_free)
                continue;
            bool blocked = false;
            for (uint32_t i = pos; i < pos + length; ++i)
                if (consumed[i])
                    blocked = true;
            if (blocked)
                continue;
            for (uint32_t i = pos; i < pos + length; ++i)
                consumed[i] = true;
            result.placements.push_back({pos, length, entry_id});
            ++count;
            next_free = static_cast<uint64_t>(pos) + length;
        }
        result.dict.entries.push_back(cand.seq);
        result.useCount.push_back(count);
    }
    std::sort(result.placements.begin(), result.placements.end(),
              [](const Placement &a, const Placement &b) {
                  return a.start < b.start;
              });
    return result;
}

} // namespace

int
main()
{
    banner("Ablation A1", "greedy vs static-rank selection (baseline, "
                          "8192 codewords)");
    std::printf("%-9s %10s %12s\n", "bench", "greedy", "static-rank");
    for (const auto &[name, program] : buildSuite()) {
        CompressorConfig config;
        config.scheme = Scheme::Baseline;
        CompressedImage greedy = compressProgram(program, config);

        GreedyConfig gcfg;
        gcfg.maxEntries = 8192;
        gcfg.maxEntryLen = 4;
        CompressedImage ranked = compressWithSelection(
            program, config, selectByStaticRank(program, gcfg));
        std::printf("%-9s %10s %12s\n", name.c_str(),
                    pct(greedy.compressionRatio()).c_str(),
                    pct(ranked.compressionRatio()).c_str());
    }

    banner("Ablation A2",
           "assumed codeword cost during nibble selection (gcc)");
    Program gcc_prog = workloads::buildBenchmark("gcc");
    std::printf("%-14s %10s\n", "assumed cost", "ratio");
    for (unsigned nibbles : {1u, 2u, 3u, 4u}) {
        CompressorConfig config;
        config.scheme = Scheme::Nibble;
        config.maxEntries = 4680;
        config.assumedCodewordNibbles = nibbles;
        CompressedImage image = compressProgram(gcc_prog, config);
        std::printf("%u nibbles      %10s%s\n", nibbles,
                    pct(image.compressionRatio()).c_str(),
                    nibbles == 2 ? "   (default)" : "");
    }

    banner("Ablation A3", "far-branch stub rewrites per scheme");
    std::printf("%-9s", "bench");
    for (const SchemeCodec *codec : allCodecs())
        std::printf(" %10s", std::string(codec->cliName()).c_str());
    std::printf("\n");
    for (const auto &[name, program] : buildSuite()) {
        std::printf("%-9s", name.c_str());
        for (const SchemeCodec *codec : allCodecs()) {
            CompressorConfig config;
            config.scheme = codec->id();
            config.maxEntries = codec->params().maxCodewords;
            std::printf(" %10u",
                        compressProgram(program, config)
                            .farBranchExpansions);
        }
        std::printf("\n");
    }
    std::printf("note: 0 everywhere means every branch kept offset range "
                "at finer granularity (programs well under the 14-bit "
                "field's reach)\n");

    banner("Ablation A4",
           "selection strategy sweep: greedy vs iterative refit (nibble)");
    std::printf("%-9s %10s %10s %8s %7s\n", "bench", "greedy", "refit",
                "delta", "rounds");
    for (const auto &[name, program] : buildSuite()) {
        size_t bytes[2];
        PipelineStats stats[2];
        int i = 0;
        for (StrategyKind strategy :
             {StrategyKind::Greedy, StrategyKind::IterativeRefit}) {
            CompressorConfig config;
            config.scheme = Scheme::Nibble;
            config.maxEntries = 4680;
            config.strategy = strategy;
            bytes[i] = compressProgram(program, config, &stats[i])
                           .totalBytes();
            std::printf("PERF_JSON: {\"bench\":\"strategy_sweep\","
                        "\"workload\":\"%s\",\"total_bytes\":%zu,"
                        "\"pipeline\":%s}\n",
                        name.c_str(), bytes[i],
                        stats[i].toJson().c_str());
            ++i;
        }
        std::printf("%-9s %10zu %10zu %8lld %7u\n", name.c_str(),
                    bytes[0], bytes[1],
                    static_cast<long long>(bytes[1]) -
                        static_cast<long long>(bytes[0]),
                    stats[1].selectionRounds);
    }
    std::printf("note: refit re-runs greedy selection under corrected "
                "codeword costs; delta < 0 means the refit image is "
                "smaller\n");
    return 0;
}
