/**
 * @file
 * Extension: bridging deviation D2 (EXPERIMENTS.md).
 *
 * Our benchmarks are ~5-10x smaller than SPEC CINT95, which is why
 * Table 2's measured codeword counts sit well below the paper's. This
 * harness scales the gcc generator up and shows both statistics
 * converging toward the paper's regime as the program grows: the
 * maximum number of codewords used climbs toward the thousands, and
 * the baseline compression ratio keeps improving because a larger
 * program amortizes its dictionary better.
 */

#include "compress/compressor.hh"
#include "common.hh"

using namespace codecomp;
using namespace codecomp::bench;

namespace {

struct ScalePoint
{
    size_t insns = 0;
    size_t codewords = 0;
    double ratio = 0;
    size_t dictBytes = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    initJobs(argc, argv);
    banner("Extension: program scale",
           "gcc generator at growing scale (baseline, 8192 codewords, "
           "4 insns/entry)");
    std::printf("%-7s %9s %12s %10s %10s\n", "scale", "insns",
                "codewords", "ratio", "dict(B)");
    const std::vector<int> scales = {1, 2, 3};
    std::vector<ScalePoint> points = parallelMap<ScalePoint>(
        scales.size(), [&scales](size_t i) {
            Program program =
                workloads::buildBenchmark("gcc", scales[i]);
            compress::CompressorConfig config;
            config.scheme = compress::Scheme::Baseline;
            config.maxEntries = 8192;
            config.maxEntryLen = 4;
            compress::CompressedImage image =
                compress::compressProgram(program, config);
            return ScalePoint{program.text.size(),
                              image.entriesByRank.size(),
                              image.compressionRatio(),
                              image.dictionaryBytes()};
        });
    for (size_t i = 0; i < scales.size(); ++i)
        std::printf("%-7d %9zu %12zu %10s %10zu\n", scales[i],
                    points[i].insns, points[i].codewords,
                    pct(points[i].ratio).c_str(), points[i].dictBytes);
    std::printf("paper (real gcc, ~350k insns): 7927 codewords; the "
                "trend toward thousands of codewords\nand improving "
                "ratio with size is what closes deviation D2.\n");
    return 0;
}
