/**
 * @file
 * Extension: bridging deviation D2 (EXPERIMENTS.md).
 *
 * Our benchmarks are ~5-10x smaller than SPEC CINT95, which is why
 * Table 2's measured codeword counts sit well below the paper's. This
 * harness scales the gcc generator up and shows both statistics
 * converging toward the paper's regime as the program grows: the
 * maximum number of codewords used climbs toward the thousands, and
 * the baseline compression ratio keeps improving because a larger
 * program amortizes its dictionary better.
 */

#include "compress/compressor.hh"
#include "common.hh"

using namespace codecomp;
using namespace codecomp::bench;

int
main()
{
    banner("Extension: program scale",
           "gcc generator at growing scale (baseline, 8192 codewords, "
           "4 insns/entry)");
    std::printf("%-7s %9s %12s %10s %10s\n", "scale", "insns",
                "codewords", "ratio", "dict(B)");
    for (int scale : {1, 2, 3}) {
        Program program = workloads::buildBenchmark("gcc", scale);
        compress::CompressorConfig config;
        config.scheme = compress::Scheme::Baseline;
        config.maxEntries = 8192;
        config.maxEntryLen = 4;
        compress::CompressedImage image =
            compress::compressProgram(program, config);
        std::printf("%-7d %9zu %12zu %10s %10zu\n", scale,
                    program.text.size(), image.entriesByRank.size(),
                    pct(image.compressionRatio()).c_str(),
                    image.dictionaryBytes());
    }
    std::printf("paper (real gcc, ~350k insns): 7927 codewords; the "
                "trend toward thousands of codewords\nand improving "
                "ratio with size is what closes deviation D2.\n");
    return 0;
}
