/**
 * @file
 * Tests for the farm's fault tolerance: the subprocess helper, the
 * worker result protocol (round-trip and corruption rejection), the
 * failure-classification table, deterministic fault injection and
 * backoff, the crash-safe persistent pipeline cache (damage is
 * detected, quarantined, and never changes results), LRU capacity
 * eviction, and -- when the ccfarm binary is available -- end-to-end
 * process isolation with deadlines and retries.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include <unistd.h>

#include "compress/cache.hh"
#include "compress/compressor.hh"
#include "compress/encoding.hh"
#include "compress/strategy.hh"
#include "farm/farm.hh"
#include "farm/worker.hh"
#include "support/serialize.hh"
#include "support/subprocess.hh"
#include "support/thread_pool.hh"

using namespace codecomp;

namespace {

// ---------------- helpers ----------------

farm::FarmJob
makeJob(const std::string &workload, compress::Scheme scheme,
        compress::StrategyKind strategy)
{
    farm::FarmJob job;
    job.workload = workload;
    job.config.scheme = scheme;
    job.config.strategy = strategy;
    job.config.maxEntries = 4680;
    job.id = workload + "/" + compress::schemeCliName(scheme) + "/" +
             compress::strategyName(strategy);
    return job;
}

std::vector<farm::FarmJob>
tinyCorpus()
{
    return {
        makeJob("compress", compress::Scheme::Nibble,
                compress::StrategyKind::Greedy),
        makeJob("compress", compress::Scheme::OneByte,
                compress::StrategyKind::Greedy),
        makeJob("li", compress::Scheme::Nibble,
                compress::StrategyKind::Greedy),
    };
}

/** A fresh per-test scratch directory, removed on destruction. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &tag)
        : path_(std::filesystem::temp_directory_path() /
                ("cc-farmfault-" + tag + "-" +
                 std::to_string(::getpid())))
    {
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }
    ~ScratchDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path_, ec);
    }
    std::string str() const { return path_.string(); }
    const std::filesystem::path &path() const { return path_; }

  private:
    std::filesystem::path path_;
};

std::vector<std::filesystem::path>
storeEntries(const std::filesystem::path &dir, const char *extension)
{
    std::vector<std::filesystem::path> files;
    for (const auto &entry : std::filesystem::directory_iterator(dir))
        if (entry.path().extension() == extension)
            files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    return files;
}

// ---------------- subprocess helper ----------------

TEST(Subprocess, CleanExitAndExitCode)
{
    SubprocessResult ok = runSubprocess({"/bin/sh", "-c", "exit 0"});
    EXPECT_EQ(ok.outcome, SubprocessResult::Outcome::Exited);
    EXPECT_EQ(ok.exitCode, 0);
    EXPECT_TRUE(ok.ok());

    SubprocessResult seven = runSubprocess({"/bin/sh", "-c", "exit 7"});
    EXPECT_EQ(seven.outcome, SubprocessResult::Outcome::Exited);
    EXPECT_EQ(seven.exitCode, 7);
    EXPECT_FALSE(seven.ok());
}

TEST(Subprocess, SignaledDeathIsReported)
{
    SubprocessResult result =
        runSubprocess({"/bin/sh", "-c", "kill -9 $$"});
    EXPECT_EQ(result.outcome, SubprocessResult::Outcome::Signaled);
    EXPECT_EQ(result.signal, 9);
    EXPECT_FALSE(result.ok());
}

TEST(Subprocess, DeadlineKillsAHungChild)
{
    SubprocessOptions options;
    options.timeoutMs = 200;
    // Invoke sleep directly: a shell could leave an orphaned child
    // holding this process's output pipes open long after the kill.
    SubprocessResult result = runSubprocess({"/bin/sleep", "30"}, options);
    EXPECT_EQ(result.outcome, SubprocessResult::Outcome::TimedOut);
    EXPECT_FALSE(result.ok());
    // Killed near the deadline, not after the full sleep.
    EXPECT_LT(result.millis, 10000.0);
}

TEST(Subprocess, MissingBinaryExits127)
{
    SubprocessResult result =
        runSubprocess({"/nonexistent/definitely-not-a-binary"});
    EXPECT_EQ(result.outcome, SubprocessResult::Outcome::Exited);
    EXPECT_EQ(result.exitCode, 127);
}

TEST(Subprocess, StderrRedirectCapturesOutput)
{
    ScratchDir dir("stderr");
    std::string path = (dir.path() / "err.txt").string();
    SubprocessOptions options;
    options.stderrPath = path;
    SubprocessResult result = runSubprocess(
        {"/bin/sh", "-c", "echo diagnostic-line >&2"}, options);
    ASSERT_TRUE(result.ok());
    Result<std::vector<uint8_t>> bytes = tryReadFile(path);
    ASSERT_TRUE(bytes.ok());
    std::string text(bytes.value().begin(), bytes.value().end());
    EXPECT_NE(text.find("diagnostic-line"), std::string::npos);
}

TEST(Subprocess, SelfExecutablePathResolves)
{
    std::string self = selfExecutablePath();
    ASSERT_FALSE(self.empty());
    EXPECT_TRUE(std::filesystem::exists(self));
}

// ---------------- injection & backoff determinism ----------------

TEST(FarmFaultUnit, InjectionIsDeterministicAndJobLevel)
{
    farm::FaultPlan plan;
    plan.kind = farm::InjectKind::Crash;
    plan.seed = 42;
    for (size_t job = 0; job < 64; ++job) {
        bool first = farm::shouldInject(plan, job, 0);
        // Same (seed, job) on any attempt and any later call: same
        // answer -- the injected subset is a pure function of the
        // plan, so reports reproduce across runs and pool widths.
        EXPECT_EQ(farm::shouldInject(plan, job, 0), first);
        EXPECT_EQ(farm::shouldInject(plan, job, 3), first);
    }
    // ~1/3 default rate: a 64-job queue has both kinds.
    size_t injected = 0;
    for (size_t job = 0; job < 64; ++job)
        injected += farm::shouldInject(plan, job, 0) ? 1 : 0;
    EXPECT_GT(injected, 0u);
    EXPECT_LT(injected, 64u);
}

TEST(FarmFaultUnit, FirstAttemptOnlyInjectionStopsAfterRetry)
{
    farm::FaultPlan plan;
    plan.kind = farm::InjectKind::Hang;
    plan.seed = 7;
    plan.rateNum = 1;
    plan.rateDen = 1; // inject every job
    plan.firstAttemptOnly = true;
    EXPECT_TRUE(farm::shouldInject(plan, 0, 0));
    EXPECT_FALSE(farm::shouldInject(plan, 0, 1));
    EXPECT_FALSE(farm::shouldInject(plan, 0, 2));
}

TEST(FarmFaultUnit, NoneAndCorruptCachePlansNeverInject)
{
    farm::FaultPlan none;
    EXPECT_FALSE(farm::shouldInject(none, 0, 0));
    farm::FaultPlan corrupt;
    corrupt.kind = farm::InjectKind::CorruptCache;
    corrupt.rateNum = 1;
    corrupt.rateDen = 1;
    EXPECT_FALSE(farm::shouldInject(corrupt, 0, 0));
}

TEST(FarmFaultUnit, BackoffGrowsIsCappedAndJittersDeterministically)
{
    // Deterministic in (seed, job, attempt).
    EXPECT_EQ(farm::backoffMillis(1, 50, 2000, 9, 4),
              farm::backoffMillis(1, 50, 2000, 9, 4));
    // Jitter keeps every delay within [50%, 150%] of the exponential
    // schedule, and the cap bounds late attempts.
    for (uint32_t attempt = 1; attempt <= 8; ++attempt) {
        uint64_t nominal = std::min<uint64_t>(
            50ull << (attempt - 1), 2000);
        uint64_t delay = farm::backoffMillis(attempt, 50, 2000, 1, 0);
        EXPECT_GE(delay, nominal / 2) << attempt;
        EXPECT_LE(delay, nominal + nominal / 2) << attempt;
    }
    // Different jobs see different jitter (no retry stampede).
    std::set<uint64_t> delays;
    for (size_t job = 0; job < 16; ++job)
        delays.insert(farm::backoffMillis(3, 50, 2000, 1, job));
    EXPECT_GT(delays.size(), 1u);
}

TEST(FarmFaultUnit, FailureKindNamesAreStable)
{
    EXPECT_STREQ(farm::failureKindName(farm::FailureKind::None), "none");
    EXPECT_STREQ(farm::failureKindName(farm::FailureKind::Crash),
                 "crash");
    EXPECT_STREQ(farm::failureKindName(farm::FailureKind::Timeout),
                 "timeout");
    EXPECT_STREQ(farm::failureKindName(farm::FailureKind::LoadError),
                 "load_error");
    EXPECT_STREQ(farm::failureKindName(farm::FailureKind::MachineCheck),
                 "machine_check");
    EXPECT_STREQ(farm::failureKindName(farm::FailureKind::SpecError),
                 "spec_error");
}

// ---------------- worker outcome classification ----------------

farm::WorkerResult
inBandFailure(farm::FailureKind kind, const std::string &error)
{
    farm::WorkerResult worker;
    worker.result.error = error;
    worker.result.failureKind = kind;
    return worker;
}

TEST(FarmFaultUnit, ClassifiesEverySubprocessOutcome)
{
    SubprocessResult spawn;
    farm::WorkerResult clean;

    spawn.outcome = SubprocessResult::Outcome::TimedOut;
    EXPECT_EQ(farm::classifyWorkerOutcome(spawn, false, clean),
              farm::FailureKind::Timeout);

    spawn.outcome = SubprocessResult::Outcome::Signaled;
    spawn.signal = 11;
    EXPECT_EQ(farm::classifyWorkerOutcome(spawn, false, clean),
              farm::FailureKind::Crash);

    spawn.outcome = SubprocessResult::Outcome::SpawnFailed;
    EXPECT_EQ(farm::classifyWorkerOutcome(spawn, false, clean),
              farm::FailureKind::LoadError);

    spawn.outcome = SubprocessResult::Outcome::Exited;
    spawn.exitCode = 0;
    // Exit 0 with an unreadable/corrupt result file: LoadError.
    EXPECT_EQ(farm::classifyWorkerOutcome(spawn, false, clean),
              farm::FailureKind::LoadError);
    // Exit 0 with a clean parsed result: success.
    EXPECT_EQ(farm::classifyWorkerOutcome(spawn, true, clean),
              farm::FailureKind::None);
    // Exit 0 with an in-band failure: the worker's own kind wins.
    EXPECT_EQ(farm::classifyWorkerOutcome(
                  spawn, true,
                  inBandFailure(farm::FailureKind::MachineCheck, "mc")),
              farm::FailureKind::MachineCheck);
    EXPECT_EQ(farm::classifyWorkerOutcome(
                  spawn, true,
                  inBandFailure(farm::FailureKind::None, "plain error")),
              farm::FailureKind::SpecError);

    // Tool exit contract: 2 = machine check, 1/127 = load-level, 3 or
    // anything else abrupt = crash.
    spawn.exitCode = 2;
    EXPECT_EQ(farm::classifyWorkerOutcome(spawn, false, clean),
              farm::FailureKind::MachineCheck);
    spawn.exitCode = 1;
    EXPECT_EQ(farm::classifyWorkerOutcome(spawn, false, clean),
              farm::FailureKind::LoadError);
    spawn.exitCode = 127;
    EXPECT_EQ(farm::classifyWorkerOutcome(spawn, false, clean),
              farm::FailureKind::LoadError);
    spawn.exitCode = 3;
    EXPECT_EQ(farm::classifyWorkerOutcome(spawn, false, clean),
              farm::FailureKind::Crash);
}

// ---------------- worker result protocol ----------------

farm::WorkerResult
sampleWorkerResult()
{
    farm::WorkerResult worker;
    farm::FarmJobResult &r = worker.result;
    r.id = "compress/nibble/greedy";
    r.workload = "compress";
    r.scheme = "nibble";
    r.strategy = "greedy";
    r.imageBytes = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x42};
    r.imageFnv64 = fnv1a64(r.imageBytes);
    r.totalBytes = 5371;
    r.textBytes = 4000;
    r.dictBytes = 900;
    r.ratio = 0.54215;
    r.farBranchExpansions = 3;
    r.millis = 12.75;
    r.attempts = 2;
    compress::PassStats pass;
    pass.name = "enumerate";
    pass.millis = 3.5;
    pass.counters = {{"candidates", 1234}, {"kept", 99}};
    r.stats.strategy = "greedy";
    r.stats.scheme = "nibble";
    r.stats.selectionRounds = 1;
    r.stats.passes = {pass};
    worker.cacheStats.enumHits = 1;
    worker.cacheStats.selectMisses = 2;
    worker.cacheStats.persistStores = 3;
    return worker;
}

TEST(WorkerProtocol, RoundTripsEveryField)
{
    farm::WorkerResult original = sampleWorkerResult();
    std::vector<uint8_t> bytes = farm::serializeWorkerResult(original);
    Result<farm::WorkerResult> parsed = farm::parseWorkerResult(bytes);
    ASSERT_TRUE(parsed.ok()) << parsed.error().message();
    const farm::FarmJobResult &r = parsed.value().result;
    const farm::FarmJobResult &o = original.result;
    EXPECT_EQ(r.id, o.id);
    EXPECT_EQ(r.workload, o.workload);
    EXPECT_EQ(r.scheme, o.scheme);
    EXPECT_EQ(r.strategy, o.strategy);
    EXPECT_EQ(r.imageBytes, o.imageBytes);
    EXPECT_EQ(r.imageFnv64, o.imageFnv64);
    EXPECT_EQ(r.totalBytes, o.totalBytes);
    EXPECT_EQ(r.textBytes, o.textBytes);
    EXPECT_EQ(r.dictBytes, o.dictBytes);
    // Doubles cross the boundary as raw bits: exact equality holds.
    EXPECT_EQ(r.ratio, o.ratio);
    EXPECT_EQ(r.millis, o.millis);
    EXPECT_EQ(r.farBranchExpansions, o.farBranchExpansions);
    EXPECT_EQ(r.attempts, o.attempts);
    EXPECT_EQ(r.failureKind, o.failureKind);
    ASSERT_EQ(r.stats.passes.size(), 1u);
    EXPECT_EQ(r.stats.passes[0].name, "enumerate");
    EXPECT_EQ(r.stats.passes[0].millis, 3.5);
    EXPECT_EQ(r.stats.passes[0].counters, o.stats.passes[0].counters);
    EXPECT_EQ(parsed.value().cacheStats.enumHits, 1u);
    EXPECT_EQ(parsed.value().cacheStats.selectMisses, 2u);
    EXPECT_EQ(parsed.value().cacheStats.persistStores, 3u);
}

TEST(WorkerProtocol, RejectsDamageAnywhere)
{
    std::vector<uint8_t> good =
        farm::serializeWorkerResult(sampleWorkerResult());
    ASSERT_TRUE(farm::parseWorkerResult(good).ok());

    // A bit flip at any position must be rejected -- header bytes trip
    // magic/version, payload bytes trip the checksum, checksum bytes
    // trip themselves. (Every 7th position keeps the sweep fast.)
    for (size_t pos = 0; pos < good.size(); pos += 7) {
        std::vector<uint8_t> bad = good;
        bad[pos] ^= 0x01;
        EXPECT_FALSE(farm::parseWorkerResult(bad).ok()) << pos;
    }
    // Truncation at any length must be rejected.
    for (size_t len : {size_t{0}, size_t{3}, size_t{10},
                       good.size() / 2, good.size() - 1}) {
        std::vector<uint8_t> bad(good.begin(),
                                 good.begin() +
                                     static_cast<ptrdiff_t>(len));
        EXPECT_FALSE(farm::parseWorkerResult(bad).ok()) << len;
    }
    // Trailing garbage must be rejected.
    std::vector<uint8_t> trailing = good;
    trailing.push_back(0x00);
    EXPECT_FALSE(farm::parseWorkerResult(trailing).ok());
    // An out-of-range failure kind must be rejected even though the
    // checksum would need recomputing to reach it honestly; damage
    // the kind byte and expect the checksum gate to hold.
    std::vector<uint8_t> skewed = good;
    skewed[5] ^= 0xff; // version word
    EXPECT_FALSE(farm::parseWorkerResult(skewed).ok());
}

// ---------------- crash-safe persistent cache ----------------

TEST(FarmFaultCache, PersistentStoreRoundTripsAcrossRuns)
{
    ScratchDir dir("persist");
    std::vector<farm::FarmJob> jobs = tinyCorpus();
    farm::FarmOptions options;
    options.cacheDir = dir.str();

    setGlobalJobs(1);
    farm::FarmReport cold = farm::runFarm(jobs, options);
    farm::FarmReport warm = farm::runFarm(jobs, options);
    setGlobalJobs(0);

    ASSERT_EQ(cold.failures(), 0u);
    ASSERT_EQ(warm.failures(), 0u);
    EXPECT_GT(cold.cacheStats.persistStores, 0u);
    EXPECT_GT(warm.cacheStats.persistHits, 0u);
    EXPECT_EQ(warm.cacheStats.persistCorrupt, 0u);
    // Disk-served results are bit-identical to computed ones.
    EXPECT_EQ(cold.resultsJson(), warm.resultsJson());
    for (size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(cold.results[i].imageBytes, warm.results[i].imageBytes)
            << jobs[i].id;
    EXPECT_FALSE(storeEntries(dir.path(), ".cce").empty());
}

TEST(FarmFaultCache, DamagedEntriesAreQuarantinedAndRecomputed)
{
    ScratchDir dir("corrupt");
    std::vector<farm::FarmJob> jobs = tinyCorpus();
    farm::FarmOptions options;
    options.cacheDir = dir.str();

    setGlobalJobs(1);
    farm::FarmReport cold = farm::runFarm(jobs, options);
    ASSERT_EQ(cold.failures(), 0u);

    // Damage every entry file: a bit flip, a truncation, and a
    // version skew, cycling -- one pass exercises every detector.
    std::vector<std::filesystem::path> files =
        storeEntries(dir.path(), ".cce");
    ASSERT_FALSE(files.empty());
    for (size_t i = 0; i < files.size(); ++i) {
        std::vector<uint8_t> bytes = readFile(files[i].string());
        switch (i % 3) {
          case 0:
            bytes[bytes.size() / 2] ^= 0x40;
            break;
          case 1:
            bytes.resize(bytes.size() / 2);
            break;
          case 2:
            bytes[5] ^= 0xff; // the version word
            break;
        }
        writeFile(files[i].string(), bytes);
    }

    farm::FarmReport warm = farm::runFarm(jobs, options);
    setGlobalJobs(0);
    ASSERT_EQ(warm.failures(), 0u);
    // Every damaged entry was detected; none changed a result.
    EXPECT_GT(warm.cacheStats.persistCorrupt, 0u);
    EXPECT_EQ(cold.resultsJson(), warm.resultsJson());
    for (size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(cold.results[i].imageBytes, warm.results[i].imageBytes)
            << jobs[i].id;
    // Damaged files were moved aside, and the recomputation re-stored
    // clean replacements.
    EXPECT_FALSE(storeEntries(dir.path(), ".quarantined").empty());
    EXPECT_GT(warm.cacheStats.persistStores, 0u);
}

TEST(FarmFaultCache, ForeignFilesInTheStoreAreLeftAlone)
{
    // A store directory shared with other artifacts: the cache only
    // ever touches its own entry paths, so foreign files survive a
    // full cold run untouched.
    ScratchDir dir("foreign");
    std::string readme = (dir.path() / "README.txt").string();
    writeFile(readme, std::vector<uint8_t>{'h', 'i'});

    farm::FarmOptions options;
    options.cacheDir = dir.str();
    farm::FarmReport report = farm::runFarm(
        {makeJob("compress", compress::Scheme::Nibble,
                 compress::StrategyKind::Greedy)},
        options);
    EXPECT_EQ(report.failures(), 0u);
    EXPECT_EQ(readFile(readme), (std::vector<uint8_t>{'h', 'i'}));
}

TEST(FarmFaultCache, UnusableStoreDirectoryDegradesGracefully)
{
    // A store rooted inside a file (not a directory) cannot be
    // created; the cache must disable persistence, not fail the run.
    ScratchDir dir("unusable");
    std::string filePath = (dir.path() / "plainfile").string();
    writeFile(filePath, std::vector<uint8_t>{1, 2, 3});
    compress::PipelineCache cache;
    EXPECT_FALSE(cache.setDiskStore(filePath + "/sub"));

    farm::FarmOptions options;
    options.cacheDir = filePath + "/sub";
    farm::FarmReport report = farm::runFarm(
        {makeJob("compress", compress::Scheme::Nibble,
                 compress::StrategyKind::Greedy)},
        options);
    EXPECT_EQ(report.failures(), 0u);
}

TEST(FarmFaultCache, CapacityCapEvictsLruButNeverChangesResults)
{
    std::vector<farm::FarmJob> jobs = tinyCorpus();
    farm::FarmOptions uncapped;
    farm::FarmOptions capped;
    capped.cacheMaxEntries = 1;

    setGlobalJobs(1);
    farm::FarmReport a = farm::runFarm(jobs, uncapped);
    farm::FarmReport b = farm::runFarm(jobs, capped);
    setGlobalJobs(0);

    ASSERT_EQ(a.failures(), 0u);
    ASSERT_EQ(b.failures(), 0u);
    EXPECT_EQ(a.cacheStats.evictions, 0u);
    EXPECT_GT(b.cacheStats.evictions, 0u);
    EXPECT_EQ(a.resultsJson(), b.resultsJson());
    for (size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(a.results[i].imageBytes, b.results[i].imageBytes);
}

TEST(FarmFaultCache, ByteCapAlsoEvicts)
{
    std::vector<farm::FarmJob> jobs = tinyCorpus();
    farm::FarmOptions options;
    options.cacheMaxBytes = 1024; // far below one candidate list
    setGlobalJobs(1);
    farm::FarmReport report = farm::runFarm(jobs, options);
    setGlobalJobs(0);
    ASSERT_EQ(report.failures(), 0u);
    EXPECT_GT(report.cacheStats.evictions, 0u);
}

// ---------------- empty queue ----------------

TEST(FarmFaultUnit, EmptyQueueYieldsAValidEmptyReport)
{
    farm::FarmReport report = farm::runFarm({});
    EXPECT_TRUE(report.results.empty());
    EXPECT_EQ(report.failures(), 0u);
    EXPECT_EQ(report.resultsJson(), "[]");
    // The full report is well-formed JSON with zero totals.
    std::string json = report.toJson();
    EXPECT_NE(json.find("\"jobs\":0"), std::string::npos);
    EXPECT_NE(json.find("\"results\":[]"), std::string::npos);

    // Isolated flavor too: no scratch traffic, same shape.
    farm::FarmOptions isolated;
    isolated.isolate = true;
    isolated.workerBinary = selfExecutablePath();
    farm::FarmReport report2 = farm::runFarm({}, isolated);
    EXPECT_TRUE(report2.results.empty());
    EXPECT_EQ(report2.resultsJson(), "[]");
}

// ---------------- end-to-end isolation ----------------

/** The ccfarm binary under test, baked in by CMake; isolation tests
 *  skip if it has not been built yet. */
std::string
ccfarmBinary()
{
#ifdef CC_TESTS_CCFARM_PATH
    if (std::filesystem::exists(CC_TESTS_CCFARM_PATH))
        return CC_TESTS_CCFARM_PATH;
#endif
    return "";
}

TEST(FarmFaultIsolate, IsolatedRunMatchesInlineBitForBit)
{
    std::string worker = ccfarmBinary();
    if (worker.empty())
        GTEST_SKIP() << "ccfarm binary not built";
    std::vector<farm::FarmJob> jobs = tinyCorpus();

    setGlobalJobs(2);
    farm::FarmReport inline_ = farm::runFarm(jobs);
    farm::FarmOptions options;
    options.isolate = true;
    options.workerBinary = worker;
    farm::FarmReport isolated = farm::runFarm(jobs, options);
    setGlobalJobs(0);

    ASSERT_EQ(isolated.failures(), 0u);
    EXPECT_TRUE(isolated.isolated);
    EXPECT_EQ(inline_.resultsJson(), isolated.resultsJson());
    for (size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(inline_.results[i].imageBytes,
                  isolated.results[i].imageBytes)
            << jobs[i].id;
        EXPECT_EQ(isolated.results[i].attempts, 1u);
    }
}

TEST(FarmFaultIsolate, InjectedCrashIsAttributedAndContained)
{
    std::string worker = ccfarmBinary();
    if (worker.empty())
        GTEST_SKIP() << "ccfarm binary not built";
    std::vector<farm::FarmJob> jobs = tinyCorpus();

    farm::FarmOptions options;
    options.isolate = true;
    options.workerBinary = worker;
    options.inject.kind = farm::InjectKind::Crash;
    options.inject.rateNum = 1;
    options.inject.rateDen = 1; // crash every worker
    options.retries = 1;
    options.backoffBaseMs = 1;

    setGlobalJobs(2);
    farm::FarmReport report = farm::runFarm(jobs, options);
    setGlobalJobs(0);
    ASSERT_EQ(report.results.size(), jobs.size());
    EXPECT_EQ(report.failures(), jobs.size());
    EXPECT_EQ(report.failuresOfKind(farm::FailureKind::Crash),
              jobs.size());
    for (const farm::FarmJobResult &result : report.results) {
        EXPECT_EQ(result.attempts, 2u) << result.id; // retry burned
        EXPECT_FALSE(result.error.empty());
    }
}

TEST(FarmFaultIsolate, TransientCrashRecoversViaRetry)
{
    std::string worker = ccfarmBinary();
    if (worker.empty())
        GTEST_SKIP() << "ccfarm binary not built";
    std::vector<farm::FarmJob> jobs = {
        makeJob("compress", compress::Scheme::Nibble,
                compress::StrategyKind::Greedy)};

    farm::FarmReport reference = farm::runFarm(jobs);

    farm::FarmOptions options;
    options.isolate = true;
    options.workerBinary = worker;
    options.inject.kind = farm::InjectKind::Crash;
    options.inject.rateNum = 1;
    options.inject.rateDen = 1;
    options.inject.firstAttemptOnly = true; // transient fault
    options.retries = 2;
    options.backoffBaseMs = 1;

    farm::FarmReport report = farm::runFarm(jobs, options);
    ASSERT_EQ(report.failures(), 0u);
    EXPECT_EQ(report.results[0].attempts, 2u);
    EXPECT_EQ(report.results[0].imageBytes,
              reference.results[0].imageBytes);
}

TEST(FarmFaultIsolate, HungWorkerIsKilledAtTheDeadline)
{
    std::string worker = ccfarmBinary();
    if (worker.empty())
        GTEST_SKIP() << "ccfarm binary not built";
    std::vector<farm::FarmJob> jobs = {
        makeJob("compress", compress::Scheme::Nibble,
                compress::StrategyKind::Greedy)};

    farm::FarmOptions options;
    options.isolate = true;
    options.workerBinary = worker;
    options.inject.kind = farm::InjectKind::Hang;
    options.inject.rateNum = 1;
    options.inject.rateDen = 1;
    options.jobTimeoutMs = 500;

    farm::FarmReport report = farm::runFarm(jobs, options);
    ASSERT_EQ(report.failures(), 1u);
    EXPECT_EQ(report.results[0].failureKind, farm::FailureKind::Timeout);
    EXPECT_NE(report.results[0].error.find("deadline"),
              std::string::npos);
}

TEST(FarmFaultIsolate, PerJobTimeoutOverridesTheFarmDefault)
{
    std::string worker = ccfarmBinary();
    if (worker.empty())
        GTEST_SKIP() << "ccfarm binary not built";
    // The farm default would never fire; the per-job deadline does.
    std::vector<farm::FarmJob> jobs = {
        makeJob("compress", compress::Scheme::Nibble,
                compress::StrategyKind::Greedy)};
    jobs[0].timeoutMs = 400;

    farm::FarmOptions options;
    options.isolate = true;
    options.workerBinary = worker;
    options.inject.kind = farm::InjectKind::Hang;
    options.inject.rateNum = 1;
    options.inject.rateDen = 1;
    options.jobTimeoutMs = 0; // no farm-wide deadline

    farm::FarmReport report = farm::runFarm(jobs, options);
    ASSERT_EQ(report.failures(), 1u);
    EXPECT_EQ(report.results[0].failureKind, farm::FailureKind::Timeout);
}

TEST(FarmFaultIsolate, SpecErrorIsNotRetried)
{
    std::string worker = ccfarmBinary();
    if (worker.empty())
        GTEST_SKIP() << "ccfarm binary not built";
    std::vector<farm::FarmJob> jobs = {
        makeJob("compress", compress::Scheme::Nibble,
                compress::StrategyKind::Greedy)};
    jobs[0].config.maxEntryLen = 0; // deterministic config error

    farm::FarmOptions options;
    options.isolate = true;
    options.workerBinary = worker;
    options.retries = 3;
    options.backoffBaseMs = 1;

    farm::FarmReport report = farm::runFarm(jobs, options);
    ASSERT_EQ(report.failures(), 1u);
    EXPECT_EQ(report.results[0].failureKind,
              farm::FailureKind::SpecError);
    EXPECT_EQ(report.results[0].attempts, 1u); // no retries burned
}

TEST(FarmFaultIsolate, DuplicateJobsUnderRepeatStayIdentical)
{
    std::string worker = ccfarmBinary();
    if (worker.empty())
        GTEST_SKIP() << "ccfarm binary not built";
    // Duplicated (program, config) pairs -- what the spec "repeat" key
    // expands to -- must come back bit-identical under isolation.
    std::vector<farm::FarmJob> jobs = {
        makeJob("compress", compress::Scheme::Nibble,
                compress::StrategyKind::Greedy),
        makeJob("compress", compress::Scheme::Nibble,
                compress::StrategyKind::Greedy),
        makeJob("compress", compress::Scheme::Nibble,
                compress::StrategyKind::Greedy),
    };
    jobs[1].id += "#1";
    jobs[2].id += "#2";

    farm::FarmOptions options;
    options.isolate = true;
    options.workerBinary = worker;
    setGlobalJobs(3);
    farm::FarmReport report = farm::runFarm(jobs, options);
    setGlobalJobs(0);
    ASSERT_EQ(report.failures(), 0u);
    EXPECT_EQ(report.results[0].imageBytes, report.results[1].imageBytes);
    EXPECT_EQ(report.results[0].imageBytes, report.results[2].imageBytes);
    EXPECT_EQ(report.results[0].imageFnv64, report.results[2].imageFnv64);
}

TEST(FarmFaultIsolate, WorkersShareThePersistentStore)
{
    std::string worker = ccfarmBinary();
    if (worker.empty())
        GTEST_SKIP() << "ccfarm binary not built";
    ScratchDir dir("shared");
    std::vector<farm::FarmJob> jobs = {
        makeJob("compress", compress::Scheme::Nibble,
                compress::StrategyKind::Greedy)};

    // Cold inline run populates the store; an isolated worker then
    // serves the whole Select stage from disk.
    farm::FarmOptions cold;
    cold.cacheDir = dir.str();
    farm::FarmReport coldReport = farm::runFarm(jobs, cold);
    ASSERT_EQ(coldReport.failures(), 0u);
    ASSERT_GT(coldReport.cacheStats.persistStores, 0u);

    farm::FarmOptions warm;
    warm.cacheDir = dir.str();
    warm.isolate = true;
    warm.workerBinary = worker;
    farm::FarmReport warmReport = farm::runFarm(jobs, warm);
    ASSERT_EQ(warmReport.failures(), 0u);
    EXPECT_GT(warmReport.cacheStats.persistHits, 0u);
    EXPECT_EQ(coldReport.results[0].imageBytes,
              warmReport.results[0].imageBytes);
}

} // namespace
