/**
 * @file
 * Parameterized property sweeps over the compressor: for every
 * (benchmark, scheme, budget, entry-length) combination checked, the
 * compressed stream must be well-formed, the address map unit-aligned,
 * the ratio accounting self-consistent, and the compressed program must
 * execute identically to the original.
 */

#include <gtest/gtest.h>

#include "compress/compressor.hh"
#include "decompress/compressed_cpu.hh"
#include "decompress/cpu.hh"
#include "isa/isa.hh"
#include "workloads/workloads.hh"

using namespace codecomp;
using namespace codecomp::compress;

namespace {

struct SweepPoint
{
    const char *bench;
    Scheme scheme;
    uint32_t maxEntries;
    uint32_t maxEntryLen;
};

std::string
pointName(const ::testing::TestParamInfo<SweepPoint> &info)
{
    const SweepPoint &pt = info.param;
    std::string scheme = schemeName(pt.scheme);
    for (char &c : scheme)
        if (c == '-')
            c = '_';
    return std::string(pt.bench) + "_" + scheme + "_e" +
           std::to_string(pt.maxEntries) + "_l" +
           std::to_string(pt.maxEntryLen);
}

class CompressorSweep : public ::testing::TestWithParam<SweepPoint>
{
  protected:
    static Program &
    benchProgram(const std::string &name)
    {
        static std::map<std::string, Program> cache;
        auto it = cache.find(name);
        if (it == cache.end())
            it = cache.emplace(name, workloads::buildBenchmark(name))
                     .first;
        return it->second;
    }
};

TEST_P(CompressorSweep, StreamWellFormed)
{
    const SweepPoint &pt = GetParam();
    Program &program = benchProgram(pt.bench);
    CompressorConfig config;
    config.scheme = pt.scheme;
    config.maxEntries = pt.maxEntries;
    config.maxEntryLen = pt.maxEntryLen;
    CompressedImage image = compressProgram(program, config);
    SchemeParams params = schemeParams(pt.scheme);

    // Ratio sanity and double-entry accounting.
    EXPECT_GT(image.compressionRatio(), 0.15);
    EXPECT_LT(image.compressionRatio(), 1.0);
    EXPECT_EQ(image.composition.totalNibbles(),
              image.textNibbles + image.dictionaryBytes() * 2);

    // Entry budget and lengths respected.
    EXPECT_LE(image.entriesByRank.size(),
              std::min(pt.maxEntries, params.maxCodewords));
    for (const auto &entry : image.entriesByRank) {
        EXPECT_GE(entry.size(), 1u);
        EXPECT_LE(entry.size(), pt.maxEntryLen);
        // No relative branches inside entries; no illegal words.
        for (isa::Word word : entry) {
            isa::Inst inst = isa::decode(word);
            EXPECT_FALSE(inst.isRelativeBranch());
            EXPECT_NE(inst.op, isa::Op::Illegal);
        }
    }

    // Address map: unit alignment, entry point present.
    for (const auto &[orig, nib] : image.addrMap)
        EXPECT_EQ(nib % params.unitNibbles, 0u) << orig;
    EXPECT_TRUE(image.addrMap.count(program.entryIndex));

    // The rank permutation is a bijection.
    std::vector<bool> hit(image.rankOfEntry.size(), false);
    for (uint32_t rank : image.rankOfEntry) {
        ASSERT_LT(rank, hit.size());
        EXPECT_FALSE(hit[rank]);
        hit[rank] = true;
    }

    // Frequency ranking: use counts are non-increasing along ranks.
    std::vector<uint32_t> uses_by_rank(image.entriesByRank.size(), 0);
    for (uint32_t id = 0; id < image.rankOfEntry.size(); ++id)
        uses_by_rank[image.rankOfEntry[id]] = image.selection.useCount[id];
    for (size_t r = 1; r < uses_by_rank.size(); ++r)
        EXPECT_LE(uses_by_rank[r], uses_by_rank[r - 1]) << "rank " << r;
}

TEST_P(CompressorSweep, ExecutesIdentically)
{
    const SweepPoint &pt = GetParam();
    Program &program = benchProgram(pt.bench);
    ExecResult reference = runProgram(program, 1ull << 27);

    CompressorConfig config;
    config.scheme = pt.scheme;
    config.maxEntries = pt.maxEntries;
    config.maxEntryLen = pt.maxEntryLen;
    CompressedImage image = compressProgram(program, config);

    ExecResult run = runCompressed(image, 1ull << 27);
    EXPECT_EQ(run.output, reference.output);
    EXPECT_EQ(run.exitCode, reference.exitCode);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CompressorSweep,
    ::testing::Values(
        SweepPoint{"compress", Scheme::Baseline, 16, 1},
        SweepPoint{"compress", Scheme::Baseline, 8192, 8},
        SweepPoint{"compress", Scheme::OneByte, 8, 4},
        SweepPoint{"compress", Scheme::Nibble, 64, 2},
        SweepPoint{"li", Scheme::Baseline, 256, 4},
        SweepPoint{"li", Scheme::OneByte, 32, 2},
        SweepPoint{"li", Scheme::Nibble, 4680, 4},
        SweepPoint{"m88ksim", Scheme::Baseline, 1024, 4},
        SweepPoint{"m88ksim", Scheme::Nibble, 512, 6},
        SweepPoint{"perl", Scheme::Nibble, 4680, 4},
        SweepPoint{"vortex", Scheme::Baseline, 8192, 4},
        SweepPoint{"gcc", Scheme::Nibble, 4680, 4}),
    pointName);

TEST(CompressorEdge, EmptyBudgetMeansNoCompression)
{
    Program program = workloads::buildBenchmark("compress");
    CompressorConfig config;
    config.maxEntries = 0;
    CompressedImage image = compressProgram(program, config);
    EXPECT_TRUE(image.entriesByRank.empty());
    // Pure pass-through: text is 8 nibbles per instruction.
    EXPECT_EQ(image.textNibbles, program.text.size() * 8);
    EXPECT_EQ(runCompressed(image).exitCode, runProgram(program).exitCode);
}

TEST(CompressorEdge, EntryLengthOneStillExecutes)
{
    Program program = workloads::buildBenchmark("ijpeg");
    CompressorConfig config;
    config.scheme = Scheme::Nibble;
    config.maxEntryLen = 1;
    CompressedImage image = compressProgram(program, config);
    for (const auto &entry : image.entriesByRank)
        EXPECT_EQ(entry.size(), 1u);
    EXPECT_EQ(runCompressed(image).output, runProgram(program).output);
}

TEST(CompressorEdge, BaselineStreamBytesNeverAliasEscapes)
{
    // Scan the emitted stream: the first byte of every uncompressed
    // instruction must be a *legal* opcode and the first byte of every
    // codeword an illegal one -- the property that lets a baseline
    // processor run original programs unmodified (paper section 4.1).
    Program program = workloads::buildBenchmark("li");
    CompressorConfig config;
    config.scheme = Scheme::Baseline;
    CompressedImage image = compressProgram(program, config);

    NibbleReader reader(image.text.data(), image.textNibbles);
    while (!reader.atEnd()) {
        size_t start = reader.pos();
        auto rank = decodeCodeword(reader, Scheme::Baseline);
        if (rank) {
            reader.seek(start);
            uint8_t first = static_cast<uint8_t>(reader.getNibbles(2));
            EXPECT_TRUE(isa::isIllegalPrimOp(first >> 2));
            reader.seek(start + 4);
        } else {
            uint32_t word = reader.getWord();
            EXPECT_FALSE(isa::isIllegalPrimOp(isa::primOpOf(word)));
        }
    }
}

} // namespace
