/**
 * @file
 * Unit and property tests for the ppclite ISA: encode/decode round
 * trips, field ranges, branch classification, and the illegal-opcode
 * space the baseline compression scheme depends on.
 */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "isa/disasm.hh"
#include "isa/isa.hh"
#include "support/rng.hh"

namespace isa = codecomp::isa;
using codecomp::Rng;

namespace {

void
expectRoundTrip(const isa::Inst &inst)
{
    isa::Word word = isa::encode(inst);
    isa::Inst back = isa::decode(word);
    EXPECT_EQ(back, inst) << isa::disassemble(inst) << " vs "
                          << isa::disassemble(back);
    // And the re-encoding is bit-identical.
    EXPECT_EQ(isa::encode(back), word);
}

TEST(IsaEncode, DFormRoundTrip)
{
    expectRoundTrip(isa::addi(3, 4, -32768));
    expectRoundTrip(isa::addi(3, 4, 32767));
    expectRoundTrip(isa::addis(31, 0, -1));
    expectRoundTrip(isa::mulli(7, 8, 1234));
    expectRoundTrip(isa::ori(0, 0, 0));
    expectRoundTrip(isa::ori(12, 13, 0xffff));
    expectRoundTrip(isa::oris(1, 2, 0x8000));
    expectRoundTrip(isa::xori(5, 6, 0x1234));
    expectRoundTrip(isa::andi(9, 10, 0xff));
    expectRoundTrip(isa::lwz(3, -4, 1));
    expectRoundTrip(isa::lbz(9, 0, 28));
    expectRoundTrip(isa::lhz(4, 22, 5));
    expectRoundTrip(isa::stw(18, 0, 28));
    expectRoundTrip(isa::stb(18, 127, 28));
    expectRoundTrip(isa::sth(2, -2, 3));
}

TEST(IsaEncode, CompareRoundTrip)
{
    expectRoundTrip(isa::cmpi(1, 0, 8));
    expectRoundTrip(isa::cmpi(7, 31, -1));
    expectRoundTrip(isa::cmpli(1, 11, 7));
    expectRoundTrip(isa::cmpli(0, 4, 0xffff));
    expectRoundTrip(isa::cmp(0, 3, 4));
    expectRoundTrip(isa::cmpl(6, 30, 29));
}

TEST(IsaEncode, BranchRoundTrip)
{
    expectRoundTrip(isa::b(0));
    expectRoundTrip(isa::b(-(1 << 23)));
    expectRoundTrip(isa::b((1 << 23) - 1));
    expectRoundTrip(isa::bl(42));
    expectRoundTrip(isa::bc(isa::Bo::IfTrue, 5, -8192));
    expectRoundTrip(isa::bc(isa::Bo::IfFalse, 6, 8191));
    expectRoundTrip(isa::bc(isa::Bo::DecNz, 0, -1));
    expectRoundTrip(isa::blr());
    expectRoundTrip(isa::bctr());
    expectRoundTrip(isa::bctrl());
    expectRoundTrip(isa::bclr(isa::Bo::IfTrue, 2));
}

TEST(IsaEncode, XFormRoundTrip)
{
    expectRoundTrip(isa::add(3, 4, 5));
    expectRoundTrip(isa::subf(0, 31, 1));
    expectRoundTrip(isa::neg(7, 7));
    expectRoundTrip(isa::mullw(10, 11, 12));
    expectRoundTrip(isa::divw(1, 2, 3));
    expectRoundTrip(isa::and_(4, 5, 6));
    expectRoundTrip(isa::or_(7, 8, 9));
    expectRoundTrip(isa::mr(7, 8));
    expectRoundTrip(isa::xor_(10, 11, 12));
    expectRoundTrip(isa::slw(13, 14, 15));
    expectRoundTrip(isa::srw(16, 17, 18));
    expectRoundTrip(isa::sraw(19, 20, 21));
    expectRoundTrip(isa::lwzx(22, 23, 24));
}

TEST(IsaEncode, MiscRoundTrip)
{
    expectRoundTrip(isa::rlwinm(9, 11, 0, 24, 31));
    expectRoundTrip(isa::slwi(3, 4, 2));
    expectRoundTrip(isa::srwi(5, 6, 31));
    expectRoundTrip(isa::clrlwi(11, 9, 24));
    expectRoundTrip(isa::mtlr(0));
    expectRoundTrip(isa::mflr(31));
    expectRoundTrip(isa::mtctr(13));
    expectRoundTrip(isa::mfctr(2));
    expectRoundTrip(isa::sc());
    expectRoundTrip(isa::nop());
}

TEST(IsaDecode, IllegalOpcodesDecodeAsIllegal)
{
    for (uint8_t primop : isa::illegalPrimOps) {
        isa::Word word = static_cast<uint32_t>(primop) << 26 | 0x12345u;
        isa::Inst inst = isa::decode(word);
        EXPECT_EQ(inst.op, isa::Op::Illegal);
        EXPECT_EQ(inst.raw, word);
        // Illegal instructions re-encode to the identical word.
        EXPECT_EQ(isa::encode(inst), word);
    }
}

TEST(IsaDecode, ExactlyEightIllegalPrimOps)
{
    // The baseline scheme needs exactly 8 illegal opcodes -> 32 escape
    // bytes -> up to 8192 2-byte codewords (paper section 4.1).
    EXPECT_EQ(isa::illegalPrimOps.size(), 8u);
    int count = 0;
    for (unsigned op = 0; op < 64; ++op)
        if (isa::isIllegalPrimOp(static_cast<uint8_t>(op)))
            ++count;
    EXPECT_EQ(count, 8);
}

TEST(IsaDecode, PrimOpOfExtractsHighSixBits)
{
    EXPECT_EQ(isa::primOpOf(0xfc000000u), 63u);
    EXPECT_EQ(isa::primOpOf(0x00000000u), 0u);
    EXPECT_EQ(isa::primOpOf(isa::encode(isa::addi(1, 2, 3))), 14u);
}

TEST(IsaClassify, BranchPredicates)
{
    EXPECT_TRUE(isa::b(4).isRelativeBranch());
    EXPECT_TRUE(isa::bc(isa::Bo::IfTrue, 0, 4).isRelativeBranch());
    EXPECT_FALSE(isa::blr().isRelativeBranch());
    EXPECT_TRUE(isa::blr().isIndirectBranch());
    EXPECT_TRUE(isa::bctr().isIndirectBranch());
    EXPECT_TRUE(isa::bl(4).isCall());
    EXPECT_TRUE(isa::bctrl().isCall());
    EXPECT_FALSE(isa::bctr().isCall());
    EXPECT_FALSE(isa::addi(1, 1, 1).isBranch());
}

TEST(IsaHelpers, SignExtendAndFits)
{
    EXPECT_EQ(isa::signExtend(0xffff, 16), -1);
    EXPECT_EQ(isa::signExtend(0x7fff, 16), 32767);
    EXPECT_EQ(isa::signExtend(0x8000, 16), -32768);
    EXPECT_TRUE(isa::fitsSigned(-8192, 14));
    EXPECT_FALSE(isa::fitsSigned(8192, 14));
    EXPECT_TRUE(isa::fitsSigned(8191, 14));
}

/** Property sweep: decode(encode(random legal inst)) == inst. */
class IsaRoundTripProperty : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(IsaRoundTripProperty, RandomInstructions)
{
    Rng rng(GetParam());
    for (int iter = 0; iter < 2000; ++iter) {
        uint8_t rt = static_cast<uint8_t>(rng.below(32));
        uint8_t ra = static_cast<uint8_t>(rng.below(32));
        uint8_t rb = static_cast<uint8_t>(rng.below(32));
        int32_t simm = static_cast<int32_t>(rng.range(-32768, 32767));
        int32_t uimm = static_cast<int32_t>(rng.below(65536));
        switch (rng.below(12)) {
          case 0:
            expectRoundTrip(isa::addi(rt, ra, simm));
            break;
          case 1:
            expectRoundTrip(isa::ori(rt, ra, uimm));
            break;
          case 2:
            expectRoundTrip(isa::lwz(rt, simm, ra));
            break;
          case 3:
            expectRoundTrip(isa::stw(rt, simm, ra));
            break;
          case 4:
            expectRoundTrip(isa::add(rt, ra, rb));
            break;
          case 5:
            expectRoundTrip(isa::cmpi(static_cast<uint8_t>(rng.below(8)),
                                      ra, simm));
            break;
          case 6:
            expectRoundTrip(
                isa::b(static_cast<int32_t>(rng.range(-(1 << 23),
                                                      (1 << 23) - 1))));
            break;
          case 7:
            expectRoundTrip(
                isa::bc(isa::Bo::IfTrue,
                        static_cast<uint8_t>(rng.below(32)),
                        static_cast<int32_t>(rng.range(-8192, 8191))));
            break;
          case 8:
            expectRoundTrip(isa::rlwinm(
                ra, rt, static_cast<uint8_t>(rng.below(32)),
                static_cast<uint8_t>(rng.below(32)),
                static_cast<uint8_t>(rng.below(32))));
            break;
          case 9:
            expectRoundTrip(isa::mullw(rt, ra, rb));
            break;
          case 10:
            expectRoundTrip(isa::cmpl(static_cast<uint8_t>(rng.below(8)),
                                      ra, rb));
            break;
          default:
            expectRoundTrip(isa::lwzx(rt, ra, rb));
            break;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsaRoundTripProperty,
                         ::testing::Values(1, 2, 3, 42, 0xdeadbeef));

TEST(IsaDisasm, KnownForms)
{
    EXPECT_EQ(isa::disassemble(isa::li(9, 5)), "li r9,5");
    EXPECT_EQ(isa::disassemble(isa::addi(0, 11, 1)), "addi r0,r11,1");
    EXPECT_EQ(isa::disassemble(isa::lbz(9, 0, 28)), "lbz r9,0(r28)");
    EXPECT_EQ(isa::disassemble(isa::clrlwi(11, 9, 24)), "clrlwi r11,r9,24");
    EXPECT_EQ(isa::disassemble(isa::cmpli(1, 0, 8)), "cmplwi cr1,r0,8");
    EXPECT_EQ(isa::disassemble(isa::blr()), "blr");
    EXPECT_EQ(isa::disassemble(isa::sc()), "sc");
    EXPECT_EQ(isa::disassemble(isa::nop()), "nop");
    EXPECT_EQ(isa::disassemble(isa::mr(3, 5)), "mr r3,r5");
    // A branch with a pc renders an absolute target.
    EXPECT_EQ(isa::disassemble(isa::b(4), 0x10000), "b 0x00010010");
    EXPECT_EQ(isa::disassemble(isa::bc(isa::Bo::IfTrue, 6, -4), 0x10020),
              "beq cr1,0x00010010");
}

} // namespace
