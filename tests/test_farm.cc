/**
 * @file
 * Tests for the compression farm: bit-identity of batched output
 * against the serial single-program path at any pool width and cache
 * setting, cache hit/miss accounting on corpora with shared programs
 * and duplicated jobs, error capture, and the job-spec JSON parser.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "compress/compressor.hh"
#include "compress/encoding.hh"
#include "compress/strategy.hh"
#include "compress/objfile.hh"
#include "farm/farm.hh"
#include "farm/jobspec.hh"
#include "support/serialize.hh"
#include "support/thread_pool.hh"
#include "workloads/workloads.hh"

using namespace codecomp;

namespace {

farm::FarmJob
makeJob(const std::string &workload, compress::Scheme scheme,
        compress::StrategyKind strategy)
{
    farm::FarmJob job;
    job.workload = workload;
    job.config.scheme = scheme;
    job.config.strategy = strategy;
    job.config.maxEntries = 4680;
    job.id = workload + "/" + compress::schemeCliName(scheme) + "/" +
             compress::strategyName(strategy);
    return job;
}

/** A small mixed queue: one workload swept across schemes (shares an
 *  enumeration), a second workload, and a refit job. */
std::vector<farm::FarmJob>
smallCorpus()
{
    return {
        makeJob("compress", compress::Scheme::Nibble,
                compress::StrategyKind::Greedy),
        makeJob("compress", compress::Scheme::OneByte,
                compress::StrategyKind::Greedy),
        makeJob("compress", compress::Scheme::Baseline,
                compress::StrategyKind::Greedy),
        makeJob("li", compress::Scheme::Nibble,
                compress::StrategyKind::Greedy),
        makeJob("compress", compress::Scheme::Nibble,
                compress::StrategyKind::IterativeRefit),
    };
}

TEST(Farm, MatchesSerialCompressorBitForBit)
{
    std::vector<farm::FarmJob> jobs = smallCorpus();
    setGlobalJobs(4);
    farm::FarmReport report = farm::runFarm(jobs);
    setGlobalJobs(0);
    ASSERT_EQ(report.results.size(), jobs.size());
    ASSERT_EQ(report.failures(), 0u);

    // The reference path: serial compressProgram, no farm, no cache.
    for (size_t i = 0; i < jobs.size(); ++i) {
        Program program =
            workloads::buildBenchmark(jobs[i].workload, jobs[i].scale);
        compress::CompressedImage image =
            compress::compressProgram(program, jobs[i].config);
        std::vector<uint8_t> expected = saveImage(image);
        EXPECT_EQ(report.results[i].imageBytes, expected)
            << jobs[i].id;
        EXPECT_EQ(report.results[i].imageFnv64, fnv1a64(expected));
        EXPECT_EQ(report.results[i].totalBytes, image.totalBytes());
    }
}

TEST(Farm, DeterministicAcrossPoolWidthsAndCache)
{
    std::vector<farm::FarmJob> jobs = smallCorpus();

    setGlobalJobs(1);
    farm::FarmOptions noCache;
    noCache.cache = false;
    farm::FarmReport serial = farm::runFarm(jobs, noCache);

    setGlobalJobs(4);
    farm::FarmReport wide = farm::runFarm(jobs);

    setGlobalJobs(3);
    farm::FarmReport odd = farm::runFarm(jobs);
    setGlobalJobs(0);

    // The deterministic report half is byte-identical; the images are
    // bit-identical job for job.
    EXPECT_EQ(serial.resultsJson(), wide.resultsJson());
    EXPECT_EQ(serial.resultsJson(), odd.resultsJson());
    for (size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(serial.results[i].imageBytes,
                  wide.results[i].imageBytes)
            << jobs[i].id;
        EXPECT_EQ(serial.results[i].imageBytes,
                  odd.results[i].imageBytes)
            << jobs[i].id;
    }
}

TEST(Farm, CacheCountersOnDuplicatesAndSchemeSweeps)
{
    // Queue: nibble/greedy twice (exact duplicate), onebyte/greedy and
    // baseline/greedy on the same program. Serially: the first job
    // misses everything; the duplicate hits the whole selection; the
    // two other schemes miss selection but share the enumeration.
    std::vector<farm::FarmJob> jobs = {
        makeJob("compress", compress::Scheme::Nibble,
                compress::StrategyKind::Greedy),
        makeJob("compress", compress::Scheme::Nibble,
                compress::StrategyKind::Greedy),
        makeJob("compress", compress::Scheme::OneByte,
                compress::StrategyKind::Greedy),
        makeJob("compress", compress::Scheme::Baseline,
                compress::StrategyKind::Greedy),
    };
    jobs[1].id += "#dup";

    setGlobalJobs(1);
    farm::FarmReport report = farm::runFarm(jobs);
    setGlobalJobs(0);

    ASSERT_EQ(report.failures(), 0u);
    EXPECT_EQ(report.cacheStats.selectHits, 1u);
    EXPECT_EQ(report.cacheStats.selectMisses, 3u);
    EXPECT_EQ(report.cacheStats.enumHits, 2u);
    EXPECT_EQ(report.cacheStats.enumMisses, 1u);

    // The duplicate's image is byte-identical to the original's.
    EXPECT_EQ(report.results[0].imageBytes, report.results[1].imageBytes);
}

TEST(Farm, CacheOffRecordsNoActivity)
{
    farm::FarmOptions options;
    options.cache = false;
    setGlobalJobs(2);
    farm::FarmReport report = farm::runFarm(
        {makeJob("compress", compress::Scheme::Nibble,
                 compress::StrategyKind::Greedy),
         makeJob("compress", compress::Scheme::Nibble,
                 compress::StrategyKind::Greedy)},
        options);
    setGlobalJobs(0);
    EXPECT_EQ(report.failures(), 0u);
    EXPECT_EQ(report.cacheStats.enumHits, 0u);
    EXPECT_EQ(report.cacheStats.enumMisses, 0u);
    EXPECT_EQ(report.cacheStats.selectHits, 0u);
    EXPECT_EQ(report.cacheStats.selectMisses, 0u);
}

TEST(Farm, UnknownWorkloadIsCatchableFatal)
{
    farm::FarmJob job = makeJob("compress", compress::Scheme::Nibble,
                                compress::StrategyKind::Greedy);
    job.workload = "nonesuch";
    EXPECT_THROW(farm::runFarm({job}), std::runtime_error);

    farm::FarmJob badScale = makeJob(
        "compress", compress::Scheme::Nibble,
        compress::StrategyKind::Greedy);
    badScale.scale = 0;
    EXPECT_THROW(farm::runFarm({badScale}), std::runtime_error);
}

TEST(Farm, JobFailureIsCapturedNotFatal)
{
    // An invalid config (entry length 0) fails its own job; the rest
    // of the queue still completes.
    std::vector<farm::FarmJob> jobs = {
        makeJob("compress", compress::Scheme::Nibble,
                compress::StrategyKind::Greedy),
        makeJob("compress", compress::Scheme::Nibble,
                compress::StrategyKind::Greedy),
    };
    jobs[1].config.maxEntryLen = 0;
    jobs[1].id = "bad-config";

    farm::FarmReport report = farm::runFarm(jobs);
    ASSERT_EQ(report.results.size(), 2u);
    EXPECT_TRUE(report.results[0].ok());
    EXPECT_FALSE(report.results[1].ok());
    EXPECT_FALSE(report.results[1].error.empty());
    EXPECT_EQ(report.failures(), 1u);

    // The failed job appears in the JSON with its error, not sizes.
    EXPECT_NE(report.resultsJson().find("\"error\""), std::string::npos);
}

TEST(Farm, StarterCorpusCoversTheSweep)
{
    std::vector<farm::FarmJob> corpus = farm::starterCorpus();
    EXPECT_EQ(corpus.size(), workloads::benchmarkNames().size() *
                                 compress::allCodecs().size() * 2);
    // Ids are unique.
    std::vector<std::string> ids;
    for (const farm::FarmJob &job : corpus)
        ids.push_back(job.id);
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
}

// ---------------- job-spec parsing ----------------

TEST(JobSpec, MinimalJobGetsCcompressDefaults)
{
    std::vector<farm::FarmJob> jobs =
        farm::parseJobSpec(R"({"jobs":[{"workload":"gcc"}]})");
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_EQ(jobs[0].workload, "gcc");
    EXPECT_EQ(jobs[0].scale, 1);
    EXPECT_EQ(jobs[0].config.scheme, compress::Scheme::Nibble);
    EXPECT_EQ(jobs[0].config.strategy, compress::StrategyKind::Greedy);
    EXPECT_EQ(jobs[0].config.maxEntries, 4680u);
    EXPECT_EQ(jobs[0].config.maxEntryLen, 4u);
    EXPECT_EQ(jobs[0].id, "gcc/nibble/greedy");
}

TEST(JobSpec, FullJobAndRepeatExpansion)
{
    std::vector<farm::FarmJob> jobs = farm::parseJobSpec(R"({
      "jobs": [
        { "workload": "li", "scale": 2, "scheme": "onebyte",
          "strategy": "refit", "max_entries": 20, "max_len": 3,
          "refit_max_rounds": 2, "repeat": 3 },
        { "workload": "perl", "id": "custom-name" }
      ]
    })");
    ASSERT_EQ(jobs.size(), 4u);
    EXPECT_EQ(jobs[0].id, "li/onebyte/refit#0");
    EXPECT_EQ(jobs[1].id, "li/onebyte/refit#1");
    EXPECT_EQ(jobs[2].id, "li/onebyte/refit#2");
    EXPECT_EQ(jobs[0].scale, 2);
    EXPECT_EQ(jobs[0].config.scheme, compress::Scheme::OneByte);
    EXPECT_EQ(jobs[0].config.strategy,
              compress::StrategyKind::IterativeRefit);
    EXPECT_EQ(jobs[0].config.maxEntries, 20u);
    EXPECT_EQ(jobs[0].config.maxEntryLen, 3u);
    EXPECT_EQ(jobs[0].config.refitMaxRounds, 2u);
    EXPECT_EQ(jobs[3].id, "custom-name");
}

TEST(JobSpec, RejectsStructuralErrors)
{
    // Malformed JSON.
    EXPECT_THROW(farm::parseJobSpec("{"), std::runtime_error);
    EXPECT_THROW(farm::parseJobSpec(R"({"jobs":[{}]} trailing)"),
                 std::runtime_error);
    EXPECT_THROW(farm::parseJobSpec(R"({"jobs":[{"workload":"gcc)"),
                 std::runtime_error);
    // Wrong shapes.
    EXPECT_THROW(farm::parseJobSpec("[]"), std::runtime_error);
    EXPECT_THROW(farm::parseJobSpec("{}"), std::runtime_error);
    EXPECT_THROW(farm::parseJobSpec(R"({"jobs":[]})"),
                 std::runtime_error);
    EXPECT_THROW(farm::parseJobSpec(R"({"jobs":[42]})"),
                 std::runtime_error);
}

TEST(JobSpec, RejectsBadFieldValues)
{
    // Missing workload.
    EXPECT_THROW(farm::parseJobSpec(R"({"jobs":[{"scale":1}]})"),
                 std::runtime_error);
    // Unknown scheme / strategy names.
    EXPECT_THROW(farm::parseJobSpec(
                     R"({"jobs":[{"workload":"gcc","scheme":"huffman"}]})"),
                 std::runtime_error);
    EXPECT_THROW(
        farm::parseJobSpec(
            R"({"jobs":[{"workload":"gcc","strategy":"optimal"}]})"),
        std::runtime_error);
    // Non-integer and out-of-range numbers.
    EXPECT_THROW(farm::parseJobSpec(
                     R"({"jobs":[{"workload":"gcc","scale":1.5}]})"),
                 std::runtime_error);
    EXPECT_THROW(farm::parseJobSpec(
                     R"({"jobs":[{"workload":"gcc","max_len":0}]})"),
                 std::runtime_error);
    // max_entries is validated against the scheme's codeword ceiling
    // (32 for the one-byte scheme), like the ccompress CLI.
    EXPECT_THROW(
        farm::parseJobSpec(
            R"({"jobs":[{"workload":"gcc","scheme":"onebyte",)"
            R"("max_entries":200}]})"),
        std::runtime_error);
    // A typo'd key must not silently become a default.
    EXPECT_THROW(farm::parseJobSpec(
                     R"({"jobs":[{"workload":"gcc","shceme":"nibble"}]})"),
                 std::runtime_error);
}

TEST(JobSpec, TimeoutAndRetriesFields)
{
    // Absent: both defer to the farm defaults (-1).
    std::vector<farm::FarmJob> defaults =
        farm::parseJobSpec(R"({"jobs":[{"workload":"gcc"}]})");
    EXPECT_EQ(defaults[0].timeoutMs, -1);
    EXPECT_EQ(defaults[0].retries, -1);

    // Present: carried through, including the explicit zeros ("no
    // deadline" / "no retries").
    std::vector<farm::FarmJob> set = farm::parseJobSpec(
        R"({"jobs":[{"workload":"gcc","timeout_ms":2500,"retries":3},)"
        R"({"workload":"li","timeout_ms":0,"retries":0}]})");
    EXPECT_EQ(set[0].timeoutMs, 2500);
    EXPECT_EQ(set[0].retries, 3);
    EXPECT_EQ(set[1].timeoutMs, 0);
    EXPECT_EQ(set[1].retries, 0);

    // Out-of-range and non-integer values are rejected.
    EXPECT_THROW(farm::parseJobSpec(
                     R"({"jobs":[{"workload":"gcc","timeout_ms":-2}]})"),
                 std::runtime_error);
    EXPECT_THROW(
        farm::parseJobSpec(
            R"({"jobs":[{"workload":"gcc","timeout_ms":86400001}]})"),
        std::runtime_error);
    EXPECT_THROW(farm::parseJobSpec(
                     R"({"jobs":[{"workload":"gcc","retries":101}]})"),
                 std::runtime_error);
    EXPECT_THROW(farm::parseJobSpec(
                     R"({"jobs":[{"workload":"gcc","retries":1.5}]})"),
                 std::runtime_error);
}

TEST(JobSpec, WriteJobSpecRoundTripsTheQueue)
{
    std::vector<farm::FarmJob> jobs = farm::parseJobSpec(R"({
      "jobs": [
        { "workload": "li", "scale": 2, "scheme": "onebyte",
          "strategy": "refit", "max_entries": 20, "max_len": 3,
          "refit_max_rounds": 2, "timeout_ms": 1000, "retries": 2,
          "repeat": 2 },
        { "workload": "perl", "id": "custom-name" }
      ]
    })");
    std::vector<farm::FarmJob> again =
        farm::parseJobSpec(farm::writeJobSpec(jobs));
    ASSERT_EQ(again.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(again[i].id, jobs[i].id);
        EXPECT_EQ(again[i].workload, jobs[i].workload);
        EXPECT_EQ(again[i].scale, jobs[i].scale);
        EXPECT_EQ(again[i].timeoutMs, jobs[i].timeoutMs);
        EXPECT_EQ(again[i].retries, jobs[i].retries);
        EXPECT_EQ(again[i].config.scheme, jobs[i].config.scheme);
        EXPECT_EQ(again[i].config.strategy, jobs[i].config.strategy);
        EXPECT_EQ(again[i].config.maxEntries, jobs[i].config.maxEntries);
        EXPECT_EQ(again[i].config.maxEntryLen,
                  jobs[i].config.maxEntryLen);
        EXPECT_EQ(again[i].config.refitMaxRounds,
                  jobs[i].config.refitMaxRounds);
    }

    // The starter corpus round-trips too, even where its maxEntries
    // exceeds a scheme's codeword budget (the writer emits the value
    // the pipeline would clip to).
    std::vector<farm::FarmJob> corpus = farm::starterCorpus();
    std::vector<farm::FarmJob> corpusAgain =
        farm::parseJobSpec(farm::writeJobSpec(corpus));
    ASSERT_EQ(corpusAgain.size(), corpus.size());
    for (size_t i = 0; i < corpus.size(); ++i)
        EXPECT_EQ(corpusAgain[i].id, corpus[i].id);
}

} // namespace
