/**
 * @file
 * Tests for the cycle-approximate timing model (src/timing): config
 * validation, exact stall arithmetic over synthetic fetch streams,
 * bit-identical determinism across repeated runs and across
 * differently-parallelized builds of the same image, golden cycle
 * counts on two workloads, and the directed density property (a denser
 * image never misses more in the capacity-limited geometry).
 *
 * Every test name carries the Timing prefix: the `timing` ctest label
 * (tests/CMakeLists.txt) and test preset select on it.
 */

#include <gtest/gtest.h>

#include "compress/compressor.hh"
#include "decompress/compressed_cpu.hh"
#include "decompress/cpu.hh"
#include "support/thread_pool.hh"
#include "timing/timing.hh"
#include "workloads/workloads.hh"

using namespace codecomp;
using namespace codecomp::timing;

namespace {

TimingConfig
testModel()
{
    TimingConfig config;
    config.frontendWidth = 1;
    config.icache = {2048, 32, 1};
    config.missPenaltyCycles = 10;
    config.memoryCyclesPerWord = 1;  // fill = 10 + 32/4 = 18 cycles
    config.expansionCyclesPerWord = 1;
    config.redirectPenaltyCycles = 2;
    return config;
}

TEST(TimingConfig, ValidationRejectsBadModels)
{
    TimingConfig config = testModel();
    EXPECT_EQ(timingConfigError(config), "");

    config.frontendWidth = 0;
    EXPECT_NE(timingConfigError(config), "");
    EXPECT_THROW(FetchTimer{config}, std::runtime_error);

    config = testModel();
    config.frontendWidth = 17;
    EXPECT_THROW(FetchTimer{config}, std::runtime_error);

    // Cache errors surface through the timing validator, prefixed.
    config = testModel();
    config.icache = {100, 32, 1};
    EXPECT_NE(timingConfigError(config).find("icache:"),
              std::string::npos);
    EXPECT_THROW(FetchTimer{config}, std::runtime_error);

    config = testModel();
    config.missPenaltyCycles = 100000;
    EXPECT_THROW(FetchTimer{config}, std::runtime_error);
}

TEST(TimingFetchTimer, ChargesExactCycles)
{
    TimingConfig config = testModel();
    config.frontendWidth = 2;
    FetchTimer timer(config);

    // Cold 4-byte fetch: one line fill (18 cycles), one instruction.
    timer.onFetch({0, 4, 1, false, false});
    // Hit in the same line: no stall.
    timer.onFetch({4, 4, 1, false, false});
    // Straddling codeword expanding 3 instructions, taken branch at the
    // end: second line is cold (one more fill), expansion charges
    // 2 extra words, redirect charges 2.
    timer.onFetch({30, 4, 3, true, true});

    TimingReport report = timer.report();
    EXPECT_EQ(report.instructions, 5u);
    EXPECT_EQ(report.items, 3u);
    EXPECT_EQ(report.fetchedBytes, 12u);
    EXPECT_EQ(report.baseCycles, 3u); // ceil(5 / width 2)
    EXPECT_EQ(report.stallIcacheMiss, 2u * 18u);
    EXPECT_EQ(report.stallExpansion, 2u);
    EXPECT_EQ(report.stallRedirect, 2u);
    EXPECT_EQ(report.cycles(), 3u + 36u + 2u + 2u);
    EXPECT_EQ(report.icache.accesses, 4u); // straddle counts twice
    EXPECT_EQ(report.icache.misses, 2u);
    EXPECT_DOUBLE_EQ(report.cpi(), static_cast<double>(43) / 5);

    // reset() forgets cache contents too: the same stream recharges.
    timer.reset();
    timer.onFetch({0, 4, 1, false, false});
    EXPECT_EQ(timer.report().stallIcacheMiss, 18u);
}

TEST(TimingReport, JsonCarriesEveryField)
{
    FetchTimer timer(testModel());
    timer.onFetch({0, 4, 1, false, false});
    std::string json = timer.report().toJson();
    for (const char *field :
         {"\"instructions\"", "\"items\"", "\"fetched_bytes\"",
          "\"cycles\"", "\"cpi\"", "\"base_cycles\"",
          "\"stall_icache_miss\"", "\"stall_l2_miss\"",
          "\"stall_expansion\"", "\"stall_redirect\"", "\"accesses\"",
          "\"misses\"", "\"line_fills\"", "\"evictions\"",
          "\"miss_rate\"", "\"l2\""})
        EXPECT_NE(json.find(field), std::string::npos) << field;
}

/** Time one full run of @p image under the test model. */
TimingReport
timeImage(const compress::CompressedImage &image)
{
    FetchTimer timer(testModel());
    CompressedCpu cpu(image);
    cpu.setFetchHook(timer.hook());
    cpu.run();
    return timer.report();
}

TimingReport
timeNative(const Program &program)
{
    FetchTimer timer(testModel());
    Cpu cpu(program);
    cpu.setFetchHook(timer.hook());
    cpu.run();
    return timer.report();
}

TEST(TimingDeterminism, RepeatedRunsAndJobCountsAgree)
{
    Program p = workloads::buildBenchmark("compress");
    compress::CompressorConfig config;
    config.scheme = compress::Scheme::Nibble;

    setGlobalJobs(1);
    compress::CompressedImage serial = compress::compressProgram(p, config);
    setGlobalJobs(4);
    compress::CompressedImage parallel =
        compress::compressProgram(p, config);

    TimingReport first = timeImage(serial);
    TimingReport again = timeImage(serial);
    TimingReport acrossJobs = timeImage(parallel);

    // Bit-identical across repeated runs and across --jobs-built
    // images, as both the report and its serialization.
    EXPECT_EQ(first, again);
    EXPECT_EQ(first, acrossJobs);
    EXPECT_EQ(first.toJson(), acrossJobs.toJson());

    TimingReport native = timeNative(p);
    EXPECT_EQ(native, timeNative(p));
    // Same architectural work on both processors (lockstep invariant).
    EXPECT_EQ(native.instructions, first.instructions);
}

/**
 * Golden cycle counts. These pin the whole chain -- workload codegen,
 * compression, execution, and the timing arithmetic -- to exact values
 * under the fixed test model; any drift is a deliberate change to one
 * of those layers and must update the goldens with it (DESIGN.md
 * section 9.4).
 */
TEST(TimingGolden, CompressWorkloadCycleCounts)
{
    Program p = workloads::buildBenchmark("compress");
    compress::CompressorConfig config;
    config.scheme = compress::Scheme::Nibble;
    TimingReport native = timeNative(p);
    TimingReport compressed = timeImage(compress::compressProgram(p, config));
    EXPECT_EQ(native.cycles(), 451332u);
    EXPECT_EQ(compressed.cycles(), 449633u);
}

TEST(TimingGolden, LiWorkloadCycleCounts)
{
    Program p = workloads::buildBenchmark("li");
    compress::CompressorConfig config;
    config.scheme = compress::Scheme::Nibble;
    TimingReport native = timeNative(p);
    TimingReport compressed = timeImage(compress::compressProgram(p, config));
    // Here the instrument reads the other way: li's native working set
    // fits the 2KB cache, so expansion and redirect stalls are not paid
    // back by miss savings. Density helps exactly when capacity binds.
    EXPECT_EQ(native.cycles(), 495147u);
    EXPECT_EQ(compressed.cycles(), 576385u);
}

TEST(TimingDensity, DenserImageMissesNoMoreWhenCapacityLimited)
{
    // The directed form of the paper's motivation: in the
    // capacity-limited geometry, the denser image's fetch stream can
    // not miss more than the native one.
    Program p = workloads::buildBenchmark("go");
    compress::CompressorConfig config;
    config.scheme = compress::Scheme::Nibble;
    config.maxEntries = 4680;
    compress::CompressedImage image = compress::compressProgram(p, config);

    TimingReport native = timeNative(p);
    TimingReport compressed = timeImage(image);
    EXPECT_LE(compressed.icache.misses, native.icache.misses);
    EXPECT_LT(compressed.fetchedBytes, native.fetchedBytes);
}

/** The test model with a unified L2 behind the 2KB L1: an L2 hit
 *  refills the L1 line in 4 + 32/4 = 12 cycles instead of 18. */
TimingConfig
testModelL2()
{
    TimingConfig config = testModel();
    config.l2 = {8192, 32, 2};
    config.l2HitPenaltyCycles = 4;
    config.l2CyclesPerWord = 1;
    return config;
}

TEST(TimingL2Config, ValidationRejectsBadHierarchies)
{
    EXPECT_EQ(timingConfigError(testModelL2()), "");

    // L2 geometry errors surface through the validator, prefixed.
    TimingConfig config = testModelL2();
    config.l2 = {3072, 32, 1}; // 96 sets: not a power of two
    EXPECT_NE(timingConfigError(config).find("l2:"), std::string::npos);
    EXPECT_THROW(FetchTimer{config}, std::runtime_error);

    // The hierarchy is inclusive: an L2 below the L1 capacity can
    // never hold the L1's contents.
    config = testModelL2();
    config.l2 = {1024, 32, 1};
    EXPECT_NE(timingConfigError(config).find("at least the L1 capacity"),
              std::string::npos);
    EXPECT_THROW(FetchTimer{config}, std::runtime_error);

    config = testModelL2();
    config.l2 = {8192, 16, 2}; // L2 line below the L1 line
    EXPECT_NE(timingConfigError(config).find("at least the L1 line"),
              std::string::npos);

    // An L2 hit must be cheaper than going to memory, or the "L2" is
    // not a cache at all.
    config = testModelL2();
    config.l2HitPenaltyCycles = 50;
    EXPECT_NE(timingConfigError(config).find("memory fill"),
              std::string::npos);
    EXPECT_THROW(FetchTimer{config}, std::runtime_error);

    config = testModelL2();
    config.l2CyclesPerWord = 20000;
    EXPECT_NE(timingConfigError(config), "");

    // Zero capacity is the disabled sentinel, not an error.
    config = testModelL2();
    config.l2 = {0, 32, 1};
    EXPECT_FALSE(config.hasL2());
    EXPECT_EQ(timingConfigError(config), "");
}

TEST(TimingL2Hierarchy, ChargesExactStallsPerLevel)
{
    FetchTimer timer(testModelL2());

    // Cold fetch: misses both levels; memory refills both (18 cycles,
    // attributed to the L2 miss).
    timer.onFetch({0, 4, 1, false, false});
    // Same line: L1 hit, no L2 access.
    timer.onFetch({4, 4, 1, false, false});
    // 2048 maps to L1 set 0 (64 sets x 32B, direct-mapped): evicts
    // line 0 from the L1. Cold in the L2 too: another 18.
    timer.onFetch({2048, 4, 1, false, false});
    // Line 0 again: L1 miss (just evicted), but the inclusive L2
    // still holds it -- refill from L2 for 12 cycles.
    timer.onFetch({0, 4, 1, false, false});

    TimingReport report = timer.report();
    EXPECT_EQ(report.baseCycles, 4u);
    EXPECT_EQ(report.stallL2Miss, 2u * 18u);
    EXPECT_EQ(report.stallIcacheMiss, 12u);
    EXPECT_EQ(report.cycles(), 4u + 36u + 12u);
    EXPECT_EQ(report.icache.misses, 3u);
    EXPECT_EQ(report.l2.accesses, 3u); // only L1 misses reach the L2
    EXPECT_EQ(report.l2.misses, 2u);

    // reset() forgets both levels.
    timer.reset();
    timer.onFetch({0, 4, 1, false, false});
    EXPECT_EQ(timer.report().stallL2Miss, 18u);
    EXPECT_EQ(timer.report().stallIcacheMiss, 0u);
}

/** Run @p cpu once, feeding a single-level and a two-level timer the
 *  same fetch stream; returns (without L2, with L2). */
template <typename AnyCpu>
std::pair<TimingReport, TimingReport>
timeBothModels(AnyCpu &cpu)
{
    FetchTimer flat(testModel());
    FetchTimer two(testModelL2());
    cpu.setFetchHook([&](const FetchEvent &event) {
        flat.onFetch(event);
        two.onFetch(event);
    });
    cpu.run();
    return {flat.report(), two.report()};
}

TEST(TimingL2Hierarchy, AddingL2NeverIncreasesCycles)
{
    // Exactly provable, not just expected: the L1 miss pattern is
    // independent of the L2, and every miss costs l2FillCycles() <=
    // lineFillCycles() when it hits the L2, lineFillCycles() when it
    // does not. Directed check over every workload, both processors.
    for (const std::string &name : workloads::benchmarkNames()) {
        Program program = workloads::buildBenchmark(name);
        {
            Cpu cpu(program);
            auto [flat, two] = timeBothModels(cpu);
            EXPECT_LE(two.cycles(), flat.cycles()) << name;
            // Same L1 behavior in both models; stalls only rebalance
            // between the icache-miss and l2-miss buckets.
            EXPECT_EQ(two.icache, flat.icache) << name;
            EXPECT_EQ(two.stallIcacheMiss + two.stallL2Miss <=
                          flat.stallIcacheMiss,
                      true)
                << name;
        }
        compress::CompressorConfig config;
        config.scheme = compress::Scheme::Nibble;
        compress::CompressedImage image =
            compress::compressProgram(program, config);
        CompressedCpu cpu(image);
        auto [flat, two] = timeBothModels(cpu);
        EXPECT_LE(two.cycles(), flat.cycles()) << name;
        EXPECT_EQ(two.icache, flat.icache) << name;
        EXPECT_EQ(two.stallExpansion, flat.stallExpansion) << name;
        EXPECT_EQ(two.stallRedirect, flat.stallRedirect) << name;
    }
}

} // namespace
