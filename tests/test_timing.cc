/**
 * @file
 * Tests for the cycle-approximate timing model (src/timing): config
 * validation, exact stall arithmetic over synthetic fetch streams,
 * bit-identical determinism across repeated runs and across
 * differently-parallelized builds of the same image, golden cycle
 * counts on two workloads, and the directed density property (a denser
 * image never misses more in the capacity-limited geometry).
 *
 * Every test name carries the Timing prefix: the `timing` ctest label
 * (tests/CMakeLists.txt) and test preset select on it.
 */

#include <gtest/gtest.h>

#include "compress/compressor.hh"
#include "decompress/compressed_cpu.hh"
#include "decompress/cpu.hh"
#include "support/thread_pool.hh"
#include "timing/timing.hh"
#include "workloads/workloads.hh"

using namespace codecomp;
using namespace codecomp::timing;

namespace {

TimingConfig
testModel()
{
    TimingConfig config;
    config.frontendWidth = 1;
    config.icache = {2048, 32, 1};
    config.missPenaltyCycles = 10;
    config.memoryCyclesPerWord = 1;  // fill = 10 + 32/4 = 18 cycles
    config.expansionCyclesPerWord = 1;
    config.redirectPenaltyCycles = 2;
    return config;
}

TEST(TimingConfig, ValidationRejectsBadModels)
{
    TimingConfig config = testModel();
    EXPECT_EQ(timingConfigError(config), "");

    config.frontendWidth = 0;
    EXPECT_NE(timingConfigError(config), "");
    EXPECT_THROW(FetchTimer{config}, std::runtime_error);

    config = testModel();
    config.frontendWidth = 17;
    EXPECT_THROW(FetchTimer{config}, std::runtime_error);

    // Cache errors surface through the timing validator, prefixed.
    config = testModel();
    config.icache = {100, 32, 1};
    EXPECT_NE(timingConfigError(config).find("icache:"),
              std::string::npos);
    EXPECT_THROW(FetchTimer{config}, std::runtime_error);

    config = testModel();
    config.missPenaltyCycles = 100000;
    EXPECT_THROW(FetchTimer{config}, std::runtime_error);
}

TEST(TimingFetchTimer, ChargesExactCycles)
{
    TimingConfig config = testModel();
    config.frontendWidth = 2;
    FetchTimer timer(config);

    // Cold 4-byte fetch: one line fill (18 cycles), one instruction.
    timer.onFetch({0, 4, 1, false, false});
    // Hit in the same line: no stall.
    timer.onFetch({4, 4, 1, false, false});
    // Straddling codeword expanding 3 instructions, taken branch at the
    // end: second line is cold (one more fill), expansion charges
    // 2 extra words, redirect charges 2.
    timer.onFetch({30, 4, 3, true, true});

    TimingReport report = timer.report();
    EXPECT_EQ(report.instructions, 5u);
    EXPECT_EQ(report.items, 3u);
    EXPECT_EQ(report.fetchedBytes, 12u);
    EXPECT_EQ(report.baseCycles, 3u); // ceil(5 / width 2)
    EXPECT_EQ(report.stallIcacheMiss, 2u * 18u);
    EXPECT_EQ(report.stallExpansion, 2u);
    EXPECT_EQ(report.stallRedirect, 2u);
    EXPECT_EQ(report.cycles(), 3u + 36u + 2u + 2u);
    EXPECT_EQ(report.icache.accesses, 4u); // straddle counts twice
    EXPECT_EQ(report.icache.misses, 2u);
    EXPECT_DOUBLE_EQ(report.cpi(), static_cast<double>(43) / 5);

    // reset() forgets cache contents too: the same stream recharges.
    timer.reset();
    timer.onFetch({0, 4, 1, false, false});
    EXPECT_EQ(timer.report().stallIcacheMiss, 18u);
}

TEST(TimingReport, JsonCarriesEveryField)
{
    FetchTimer timer(testModel());
    timer.onFetch({0, 4, 1, false, false});
    std::string json = timer.report().toJson();
    for (const char *field :
         {"\"instructions\"", "\"items\"", "\"fetched_bytes\"",
          "\"cycles\"", "\"cpi\"", "\"base_cycles\"",
          "\"stall_icache_miss\"", "\"stall_expansion\"",
          "\"stall_redirect\"", "\"accesses\"", "\"misses\"",
          "\"line_fills\"", "\"evictions\"", "\"miss_rate\""})
        EXPECT_NE(json.find(field), std::string::npos) << field;
}

/** Time one full run of @p image under the test model. */
TimingReport
timeImage(const compress::CompressedImage &image)
{
    FetchTimer timer(testModel());
    CompressedCpu cpu(image);
    cpu.setFetchHook(timer.hook());
    cpu.run();
    return timer.report();
}

TimingReport
timeNative(const Program &program)
{
    FetchTimer timer(testModel());
    Cpu cpu(program);
    cpu.setFetchHook(timer.hook());
    cpu.run();
    return timer.report();
}

TEST(TimingDeterminism, RepeatedRunsAndJobCountsAgree)
{
    Program p = workloads::buildBenchmark("compress");
    compress::CompressorConfig config;
    config.scheme = compress::Scheme::Nibble;

    setGlobalJobs(1);
    compress::CompressedImage serial = compress::compressProgram(p, config);
    setGlobalJobs(4);
    compress::CompressedImage parallel =
        compress::compressProgram(p, config);

    TimingReport first = timeImage(serial);
    TimingReport again = timeImage(serial);
    TimingReport acrossJobs = timeImage(parallel);

    // Bit-identical across repeated runs and across --jobs-built
    // images, as both the report and its serialization.
    EXPECT_EQ(first, again);
    EXPECT_EQ(first, acrossJobs);
    EXPECT_EQ(first.toJson(), acrossJobs.toJson());

    TimingReport native = timeNative(p);
    EXPECT_EQ(native, timeNative(p));
    // Same architectural work on both processors (lockstep invariant).
    EXPECT_EQ(native.instructions, first.instructions);
}

/**
 * Golden cycle counts. These pin the whole chain -- workload codegen,
 * compression, execution, and the timing arithmetic -- to exact values
 * under the fixed test model; any drift is a deliberate change to one
 * of those layers and must update the goldens with it (DESIGN.md
 * section 9.4).
 */
TEST(TimingGolden, CompressWorkloadCycleCounts)
{
    Program p = workloads::buildBenchmark("compress");
    compress::CompressorConfig config;
    config.scheme = compress::Scheme::Nibble;
    TimingReport native = timeNative(p);
    TimingReport compressed = timeImage(compress::compressProgram(p, config));
    EXPECT_EQ(native.cycles(), 451332u);
    EXPECT_EQ(compressed.cycles(), 449633u);
}

TEST(TimingGolden, LiWorkloadCycleCounts)
{
    Program p = workloads::buildBenchmark("li");
    compress::CompressorConfig config;
    config.scheme = compress::Scheme::Nibble;
    TimingReport native = timeNative(p);
    TimingReport compressed = timeImage(compress::compressProgram(p, config));
    // Here the instrument reads the other way: li's native working set
    // fits the 2KB cache, so expansion and redirect stalls are not paid
    // back by miss savings. Density helps exactly when capacity binds.
    EXPECT_EQ(native.cycles(), 495147u);
    EXPECT_EQ(compressed.cycles(), 576385u);
}

TEST(TimingDensity, DenserImageMissesNoMoreWhenCapacityLimited)
{
    // The directed form of the paper's motivation: in the
    // capacity-limited geometry, the denser image's fetch stream can
    // not miss more than the native one.
    Program p = workloads::buildBenchmark("go");
    compress::CompressorConfig config;
    config.scheme = compress::Scheme::Nibble;
    config.maxEntries = 4680;
    compress::CompressedImage image = compress::compressProgram(p, config);

    TimingReport native = timeNative(p);
    TimingReport compressed = timeImage(image);
    EXPECT_LE(compressed.icache.misses, native.icache.misses);
    EXPECT_LT(compressed.fetchedBytes, native.fetchedBytes);
}

} // namespace
