/**
 * @file
 * Differential fuzzing: randomly generated MiniC programs are compiled
 * and executed natively, then compressed under every scheme with
 * randomized parameters and executed again. Any divergence in output,
 * exit code, or (absent far-branch stubs) dynamic instruction count is
 * a compressor or processor bug.
 *
 * The generator reuses the workload filler machinery, so each seed
 * yields a structurally different program: different function pools,
 * switch shapes, array sizes, frame layouts, and call graphs.
 */

#include <gtest/gtest.h>

#include "codegen/codegen.hh"
#include "compress/compressor.hh"
#include "decompress/compressed_cpu.hh"
#include "decompress/cpu.hh"
#include "support/rng.hh"
#include "workloads/generator.hh"

using namespace codecomp;
using namespace codecomp::compress;

namespace {

std::string
randomProgram(uint64_t seed)
{
    Rng rng(seed);
    workloads::GenSpec spec;
    spec.seed = seed * 77 + 5;
    spec.leafFuncs = 2 + static_cast<int>(rng.below(8));
    spec.midFuncs = 2 + static_cast<int>(rng.below(8));
    spec.dispatchFuncs = 1 + static_cast<int>(rng.below(3));
    spec.switchCases = 3 + static_cast<int>(rng.below(10));
    spec.arrays = 1 + static_cast<int>(rng.below(4));
    spec.arraySize = 16 + static_cast<int>(rng.below(4)) * 16;
    spec.loopTrip = 8 + static_cast<int>(rng.below(3)) * 4;
    spec.stmtsPerLeaf = 2 + static_cast<int>(rng.below(6));
    spec.stmtsPerMid = 2 + static_cast<int>(rng.below(5));
    workloads::FillerCode filler =
        workloads::generateFiller(spec, "fz", 4 + (seed % 5));

    std::string src = filler.definitions;
    src += "int main() {\n    int acc = 1;\n    int fz_it;\n";
    src += filler.mainStmts;
    src += "    puti(acc);\n    return acc & 127;\n}\n";
    return src;
}

class DifferentialFuzz : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(DifferentialFuzz, AllSchemesExecuteIdentically)
{
    uint64_t seed = GetParam();
    Rng rng(seed ^ 0xf00d);
    Program program = codegen::compile(randomProgram(seed));
    ExecResult reference = runProgram(program, 1ull << 26);

    for (Scheme scheme :
         {Scheme::Baseline, Scheme::OneByte, Scheme::Nibble}) {
        CompressorConfig config;
        config.scheme = scheme;
        // Randomize the knobs per scheme draw.
        const uint32_t budgets[] = {4, 16, 64, 256, 1024, 8192};
        config.maxEntries = budgets[rng.below(6)];
        config.maxEntryLen = 1 + static_cast<uint32_t>(rng.below(8));
        CompressedImage image = compressProgram(program, config);

        ExecResult run = runCompressed(image, 1ull << 26);
        EXPECT_EQ(run.output, reference.output)
            << "seed " << seed << " scheme " << schemeName(scheme)
            << " entries " << config.maxEntries << " len "
            << config.maxEntryLen;
        EXPECT_EQ(run.exitCode, reference.exitCode);
        if (image.farBranchExpansions == 0) {
            EXPECT_EQ(run.instCount, reference.instCount);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz,
                         ::testing::Range<uint64_t>(1, 25));

/** The compressor itself must be bit-deterministic. */
TEST(DifferentialFuzz, CompressionIsDeterministic)
{
    Program program = codegen::compile(randomProgram(99));
    for (Scheme scheme :
         {Scheme::Baseline, Scheme::OneByte, Scheme::Nibble}) {
        CompressorConfig config;
        config.scheme = scheme;
        CompressedImage a = compressProgram(program, config);
        CompressedImage b = compressProgram(program, config);
        EXPECT_EQ(a.text, b.text) << schemeName(scheme);
        EXPECT_EQ(a.entriesByRank, b.entriesByRank);
        EXPECT_EQ(a.data, b.data);
        EXPECT_EQ(a.textNibbles, b.textNibbles);
    }
}

} // namespace
