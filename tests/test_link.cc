/**
 * @file
 * Tests for separate compilation and the static linker: multi-module
 * symbol resolution, data rebasing, jump-table relocation across
 * modules, error paths, .cco round trips, and equivalence between
 * single-unit and multi-module builds.
 */

#include <gtest/gtest.h>

#include "codegen/codegen.hh"
#include "compress/compressor.hh"
#include "decompress/compressed_cpu.hh"
#include "decompress/cpu.hh"
#include "link/linker.hh"
#include "workloads/workloads.hh"

using namespace codecomp;
using namespace codecomp::link;

namespace {

const char *mathModule = R"(
    int math_state = 100;
    int math_scale(int x) { return x * 3; }
    int math_accumulate(int x) {
        math_state = math_state + x;
        return math_state;
    }
)";

const char *appModule = R"(
    int app_log[4];
    int helper(int x) { return math_scale(x) + 1; }
    int main() {
        int i;
        for (i = 0; i < 4; i = i + 1)
            app_log[i] = helper(i);
        int total = 0;
        for (i = 0; i < 4; i = i + 1)
            total = total + app_log[i];
        return math_accumulate(total);
    }
)";

TEST(Linker, TwoModulesResolveAndRun)
{
    std::vector<ObjectModule> modules;
    modules.push_back(codegen::compileModule(appModule, "app"));
    modules.push_back(codegen::compileModule(mathModule, "math"));
    Program program = linkModules(modules);

    // helper(i) = 3i+1 for i=0..3 -> 1,4,7,10; total 22; state 122.
    EXPECT_EQ(runProgram(program).exitCode, 122);
    EXPECT_EQ(program.entryIndex, 0u);
    EXPECT_EQ(program.functions.front().name, "_start");
}

TEST(Linker, ModuleOrderDoesNotChangeBehaviour)
{
    std::vector<ObjectModule> ab;
    ab.push_back(codegen::compileModule(appModule, "app"));
    ab.push_back(codegen::compileModule(mathModule, "math"));
    std::vector<ObjectModule> ba;
    ba.push_back(codegen::compileModule(mathModule, "math"));
    ba.push_back(codegen::compileModule(appModule, "app"));
    EXPECT_EQ(runProgram(linkModules(ab)).exitCode,
              runProgram(linkModules(ba)).exitCode);
}

TEST(Linker, UnresolvedSymbolIsAnError)
{
    std::vector<ObjectModule> modules;
    modules.push_back(codegen::compileModule(
        "int main() { return ghost(1); }", "app"));
    EXPECT_THROW(linkModules(modules), std::runtime_error);
}

TEST(Linker, DuplicateSymbolIsAnError)
{
    std::vector<ObjectModule> modules;
    modules.push_back(
        codegen::compileModule("int f() { return 1; }", "a"));
    modules.push_back(codegen::compileModule(
        "int f() { return 2; } int main() { return f(); }", "b"));
    EXPECT_THROW(linkModules(modules), std::runtime_error);
}

TEST(Linker, MissingMainIsAnError)
{
    std::vector<ObjectModule> modules;
    modules.push_back(
        codegen::compileModule("int f() { return 1; }", "a"));
    EXPECT_THROW(linkModules(modules), std::runtime_error);
}

TEST(Linker, ModulePrivateGlobalsDoNotCollide)
{
    // Both modules define a global named `counter`; each sees its own.
    std::vector<ObjectModule> modules;
    modules.push_back(codegen::compileModule(R"(
        int counter = 10;
        int bump_a() { counter = counter + 1; return counter; }
    )", "a"));
    modules.push_back(codegen::compileModule(R"(
        int counter = 20;
        int bump_b() { counter = counter + 1; return counter; }
        int main() { return bump_a() * 100 + bump_b(); }
    )", "b"));
    EXPECT_EQ(runProgram(linkModules(modules)).exitCode, 1121);
}

TEST(Linker, JumpTablesRelocateAcrossModules)
{
    // The switch (jump table) lives in the second module, whose text
    // and data are both rebased by the first module's sizes.
    std::vector<ObjectModule> modules;
    modules.push_back(codegen::compileModule(R"(
        int pad0(int x) { return x + 1; }
        int pad1(int x) { return x + 2; }
        int pad2(int x) { return pad0(x) + pad1(x); }
    )", "padding"));
    modules.push_back(codegen::compileModule(R"(
        int pick(int x) {
            switch (x) {
              case 0: return 10;
              case 1: return 11;
              case 2: return 12;
              case 3: return 13;
              case 4: return 14;
              default: return -1;
            }
        }
        int main() {
            return pick(0) + pick(2) + pick(4) + pick(7) + pad2(0);
        }
    )", "app"));
    Program program = linkModules(modules);
    EXPECT_FALSE(program.codeRelocs.empty());
    EXPECT_EQ(runProgram(program).exitCode, 10 + 12 + 14 - 1 + 3);
}

TEST(Linker, SingleUnitAndMultiModuleBuildsBehaveIdentically)
{
    // The li benchmark compiled the normal way (app + runtime linked)
    // vs. explicitly compiled as two modules.
    std::string source = workloads::benchmarkSource("li");
    Program normal = codegen::compile(source);

    std::vector<ObjectModule> modules;
    codegen::CompileOptions options;
    modules.push_back(codegen::compileModule(source, "li"));
    modules.push_back(codegen::runtimeModule());
    Program manual = linkModules(modules);

    EXPECT_EQ(normal.text, manual.text);
    EXPECT_EQ(normal.data, manual.data);
    EXPECT_EQ(runProgram(normal), runProgram(manual));
}

TEST(Linker, LinkedProgramsCompressAndExecute)
{
    std::vector<ObjectModule> modules;
    modules.push_back(codegen::compileModule(appModule, "app"));
    modules.push_back(codegen::compileModule(mathModule, "math"));
    Program program = linkModules(modules);
    ExecResult reference = runProgram(program);

    compress::CompressorConfig config;
    config.scheme = compress::Scheme::Nibble;
    compress::CompressedImage image =
        compress::compressProgram(program, config);
    EXPECT_EQ(runCompressed(image).exitCode, reference.exitCode);
}

TEST(ObjectFile, ModuleRoundTrip)
{
    ObjectModule module = codegen::compileModule(appModule, "app");
    ObjectModule loaded = loadModule(saveModule(module));
    EXPECT_EQ(loaded.name, module.name);
    EXPECT_EQ(loaded.text, module.text);
    EXPECT_EQ(loaded.data, module.data);
    ASSERT_EQ(loaded.calls.size(), module.calls.size());
    for (size_t i = 0; i < loaded.calls.size(); ++i) {
        EXPECT_EQ(loaded.calls[i].textIndex, module.calls[i].textIndex);
        EXPECT_EQ(loaded.calls[i].callee, module.calls[i].callee);
    }
    EXPECT_EQ(loaded.dataRefs.size(), module.dataRefs.size());
    EXPECT_EQ(loaded.tables.size(), module.tables.size());
    EXPECT_EQ(loaded.functions.size(), module.functions.size());

    // Linking the round-tripped module behaves identically.
    std::vector<ObjectModule> a = {module,
                                   codegen::compileModule(mathModule,
                                                          "math")};
    std::vector<ObjectModule> b = {loaded, a[1]};
    EXPECT_EQ(runProgram(linkModules(a)), runProgram(linkModules(b)));
}

TEST(ObjectFile, RejectsWrongMagic)
{
    ObjectModule module = codegen::compileModule(mathModule, "math");
    std::vector<uint8_t> bytes = saveModule(module);
    bytes[3] ^= 0xff;
    EXPECT_THROW(loadModule(bytes), std::runtime_error);
}

} // namespace
