/**
 * @file
 * Disassembler coverage: every ppclite operation renders with its
 * expected mnemonic and operand format, including the simplified
 * mnemonics (li/lis/mr/nop/slwi/srwi/clrlwi) and branch targets.
 */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "isa/disasm.hh"

namespace isa = codecomp::isa;

namespace {

TEST(Disasm, ImmediateForms)
{
    EXPECT_EQ(isa::disassemble(isa::addi(1, 2, -3)), "addi r1,r2,-3");
    EXPECT_EQ(isa::disassemble(isa::li(31, -32768)), "li r31,-32768");
    EXPECT_EQ(isa::disassemble(isa::lis(4, 100)), "lis r4,100");
    EXPECT_EQ(isa::disassemble(isa::addis(4, 5, 100)), "addis r4,r5,100");
    EXPECT_EQ(isa::disassemble(isa::mulli(6, 7, 12)), "mulli r6,r7,12");
    EXPECT_EQ(isa::disassemble(isa::ori(8, 9, 255)), "ori r8,r9,255");
    EXPECT_EQ(isa::disassemble(isa::oris(8, 9, 255)), "oris r8,r9,255");
    EXPECT_EQ(isa::disassemble(isa::xori(1, 1, 1)), "xori r1,r1,1");
    EXPECT_EQ(isa::disassemble(isa::andi(2, 3, 15)), "andi. r2,r3,15");
}

TEST(Disasm, MemoryForms)
{
    EXPECT_EQ(isa::disassemble(isa::lwz(3, -8, 1)), "lwz r3,-8(r1)");
    EXPECT_EQ(isa::disassemble(isa::lhz(4, 2, 5)), "lhz r4,2(r5)");
    EXPECT_EQ(isa::disassemble(isa::stw(6, 0, 7)), "stw r6,0(r7)");
    EXPECT_EQ(isa::disassemble(isa::sth(8, 4, 9)), "sth r8,4(r9)");
    EXPECT_EQ(isa::disassemble(isa::stb(10, 6, 11)), "stb r10,6(r11)");
    EXPECT_EQ(isa::disassemble(isa::lwzx(1, 2, 3)), "lwzx r1,r2,r3");
}

TEST(Disasm, RegisterForms)
{
    EXPECT_EQ(isa::disassemble(isa::add(1, 2, 3)), "add r1,r2,r3");
    EXPECT_EQ(isa::disassemble(isa::subf(4, 5, 6)), "subf r4,r5,r6");
    EXPECT_EQ(isa::disassemble(isa::neg(7, 8)), "neg r7,r8");
    EXPECT_EQ(isa::disassemble(isa::mullw(9, 10, 11)), "mullw r9,r10,r11");
    EXPECT_EQ(isa::disassemble(isa::divw(1, 2, 3)), "divw r1,r2,r3");
    EXPECT_EQ(isa::disassemble(isa::and_(1, 2, 3)), "and r1,r2,r3");
    EXPECT_EQ(isa::disassemble(isa::or_(1, 2, 3)), "or r1,r2,r3");
    EXPECT_EQ(isa::disassemble(isa::xor_(1, 2, 3)), "xor r1,r2,r3");
    EXPECT_EQ(isa::disassemble(isa::slw(1, 2, 3)), "slw r1,r2,r3");
    EXPECT_EQ(isa::disassemble(isa::srw(1, 2, 3)), "srw r1,r2,r3");
    EXPECT_EQ(isa::disassemble(isa::sraw(1, 2, 3)), "sraw r1,r2,r3");
    EXPECT_EQ(isa::disassemble(isa::srawi(4, 5, 6)), "srawi r4,r5,6");
}

TEST(Disasm, Compares)
{
    EXPECT_EQ(isa::disassemble(isa::cmp(0, 1, 2)), "cmpw cr0,r1,r2");
    EXPECT_EQ(isa::disassemble(isa::cmpl(5, 6, 7)), "cmplw cr5,r6,r7");
    EXPECT_EQ(isa::disassemble(isa::cmpi(2, 3, -4)), "cmpwi cr2,r3,-4");
    EXPECT_EQ(isa::disassemble(isa::cmpli(3, 4, 5)), "cmplwi cr3,r4,5");
}

TEST(Disasm, SimplifiedRotates)
{
    EXPECT_EQ(isa::disassemble(isa::slwi(1, 2, 3)), "slwi r1,r2,3");
    EXPECT_EQ(isa::disassemble(isa::srwi(4, 5, 6)), "srwi r4,r5,6");
    EXPECT_EQ(isa::disassemble(isa::clrlwi(7, 8, 9)), "clrlwi r7,r8,9");
    EXPECT_EQ(isa::disassemble(isa::rlwinm(1, 2, 3, 4, 5)),
              "rlwinm r1,r2,3,4,5");
}

TEST(Disasm, BranchesWithoutPc)
{
    EXPECT_EQ(isa::disassemble(isa::b(3)), "b .+12");
    EXPECT_EQ(isa::disassemble(isa::b(-3)), "b .-12");
    EXPECT_EQ(isa::disassemble(isa::bl(1)), "bl .+4");
    EXPECT_EQ(isa::disassemble(
                  isa::bc(isa::Bo::IfTrue, isa::crBit(2, isa::CrBit::Lt),
                          5)),
              "blt cr2,.+20");
    EXPECT_EQ(isa::disassemble(
                  isa::bc(isa::Bo::IfFalse, isa::crBit(0, isa::CrBit::Eq),
                          -1)),
              "bne cr0,.-4");
    EXPECT_EQ(isa::disassemble(isa::bc(isa::Bo::DecNz, 0, 2)),
              "bdnz .+8");
}

TEST(Disasm, ConditionSuffixes)
{
    using isa::Bo;
    using isa::CrBit;
    auto render = [](Bo bo, CrBit bit) {
        return isa::disassemble(isa::bc(bo, isa::crBit(1, bit), 1));
    };
    EXPECT_EQ(render(Bo::IfTrue, CrBit::Lt), "blt cr1,.+4");
    EXPECT_EQ(render(Bo::IfFalse, CrBit::Lt), "bge cr1,.+4");
    EXPECT_EQ(render(Bo::IfTrue, CrBit::Gt), "bgt cr1,.+4");
    EXPECT_EQ(render(Bo::IfFalse, CrBit::Gt), "ble cr1,.+4");
    EXPECT_EQ(render(Bo::IfTrue, CrBit::Eq), "beq cr1,.+4");
    EXPECT_EQ(render(Bo::IfFalse, CrBit::Eq), "bne cr1,.+4");
}

TEST(Disasm, IndirectBranches)
{
    EXPECT_EQ(isa::disassemble(isa::blr()), "blr");
    EXPECT_EQ(isa::disassemble(isa::bctr()), "bctr");
    EXPECT_EQ(isa::disassemble(isa::bctrl()), "bctrl");
    EXPECT_EQ(isa::disassemble(
                  isa::bclr(isa::Bo::IfTrue,
                            isa::crBit(2, isa::CrBit::Eq))),
              "beqlr cr2");
}

TEST(Disasm, SprMovesAndMisc)
{
    EXPECT_EQ(isa::disassemble(isa::mtlr(0)), "mtlr r0");
    EXPECT_EQ(isa::disassemble(isa::mflr(31)), "mflr r31");
    EXPECT_EQ(isa::disassemble(isa::mtctr(5)), "mtctr r5");
    EXPECT_EQ(isa::disassemble(isa::mfctr(6)), "mfctr r6");
    EXPECT_EQ(isa::disassemble(isa::sc()), "sc");
    EXPECT_EQ(isa::disassemble(isa::nop()), "nop");
    EXPECT_EQ(isa::disassemble(isa::mr(1, 2)), "mr r1,r2");
}

TEST(Disasm, IllegalWordsRenderAsData)
{
    isa::Inst inst = isa::decode(0x00000000);
    EXPECT_EQ(isa::disassemble(inst), ".word 0x00000000");
    EXPECT_EQ(isa::disassembleWord(0x0badf00d), ".word 0x0badf00d");
}

TEST(Disasm, EveryLegalOpHasDistinctText)
{
    // A weak injectivity check: distinct operations never render to the
    // same string for the same operands.
    std::vector<std::string> seen;
    for (isa::Inst inst :
         {isa::add(1, 2, 3), isa::subf(1, 2, 3), isa::mullw(1, 2, 3),
          isa::divw(1, 2, 3), isa::and_(1, 2, 3), isa::xor_(1, 2, 3),
          isa::slw(1, 2, 3), isa::srw(1, 2, 3), isa::sraw(1, 2, 3),
          isa::lwzx(1, 2, 3)}) {
        std::string text = isa::disassemble(inst);
        EXPECT_EQ(std::count(seen.begin(), seen.end(), text), 0) << text;
        seen.push_back(text);
    }
}

} // namespace
