/**
 * @file
 * Exhaustive codeword-encoding tests: every rank of every scheme must
 * round-trip through emitCodeword/decodeCodeword, codeword sizes must
 * match codewordNibbles, and odd-nibble-count streams must end cleanly
 * at their declared nibble count -- the pad nibble of the final byte
 * is dead, not a phantom rank-0 codeword.
 */

#include <gtest/gtest.h>

#include "compress/encoding.hh"
#include "isa/builder.hh"
#include "isa/isa.hh"
#include "support/bitstream.hh"

using namespace codecomp;
using namespace codecomp::compress;

namespace {

class ExhaustiveRoundTrip : public ::testing::TestWithParam<Scheme>
{};

TEST_P(ExhaustiveRoundTrip, EveryRankRoundTripsAlone)
{
    Scheme scheme = GetParam();
    SchemeParams params = schemeParams(scheme);
    for (uint32_t rank = 0; rank < params.maxCodewords; ++rank) {
        NibbleWriter writer;
        emitCodeword(writer, scheme, rank);
        ASSERT_EQ(writer.nibbleCount(), codewordNibbles(scheme, rank))
            << "rank " << rank;

        NibbleReader reader(writer.bytes().data(), writer.nibbleCount());
        auto decoded = decodeCodeword(reader, scheme);
        ASSERT_TRUE(decoded.has_value()) << "rank " << rank;
        ASSERT_EQ(*decoded, rank);
        ASSERT_TRUE(reader.atEnd()) << "rank " << rank;
    }
}

TEST_P(ExhaustiveRoundTrip, EveryRankRoundTripsInOneStream)
{
    // All ranks concatenated: each decode must consume exactly its
    // codeword, never bleeding into the next.
    Scheme scheme = GetParam();
    SchemeParams params = schemeParams(scheme);
    NibbleWriter writer;
    for (uint32_t rank = 0; rank < params.maxCodewords; ++rank)
        emitCodeword(writer, scheme, rank);

    NibbleReader reader(writer.bytes().data(), writer.nibbleCount());
    for (uint32_t rank = 0; rank < params.maxCodewords; ++rank) {
        auto decoded = decodeCodeword(reader, scheme);
        ASSERT_TRUE(decoded.has_value()) << "rank " << rank;
        ASSERT_EQ(*decoded, rank);
    }
    EXPECT_TRUE(reader.atEnd());
}

INSTANTIATE_TEST_SUITE_P(Schemes, ExhaustiveRoundTrip,
                         ::testing::ValuesIn(allSchemes()),
                         [](const auto &info) {
                             return schemeTestName(info.param);
                         });

TEST(OddNibblePadding, DeclaredCountEndsTheStream)
{
    // A single 4-bit codeword occupies one nibble; the backing byte
    // stream still has two. With the explicit count the reader is at
    // end -- the pad nibble never reaches the decoder.
    NibbleWriter writer;
    emitCodeword(writer, Scheme::Nibble, 3);
    ASSERT_EQ(writer.nibbleCount(), 1u);
    ASSERT_EQ(writer.sizeBytes(), 1u);

    NibbleReader reader(writer.bytes().data(), writer.nibbleCount());
    auto decoded = decodeCodeword(reader, Scheme::Nibble);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, 3u);
    EXPECT_TRUE(reader.atEnd());
}

TEST(OddNibblePadding, PhantomPadNibbleWouldDecodeAsRankZero)
{
    // The hazard the explicit-count API closes: byte-rounding the
    // count (as a byte-vector constructor must) turns the zero pad
    // nibble into a valid rank-0 codeword under Scheme::Nibble.
    NibbleWriter writer;
    emitCodeword(writer, Scheme::Nibble, 3);
    NibbleReader rounded(writer.bytes().data(),
                         writer.bytes().size() * 2);
    EXPECT_EQ(*decodeCodeword(rounded, Scheme::Nibble), 3u);
    EXPECT_FALSE(rounded.atEnd());
    auto phantom = decodeCodeword(rounded, Scheme::Nibble);
    ASSERT_TRUE(phantom.has_value());
    EXPECT_EQ(*phantom, 0u); // exactly why rounding is unacceptable
}

TEST(OddNibblePadding, OddMixedStreamConsumesExactCount)
{
    // Codeword sizes 1 and 3 keep the running count odd; an escaped
    // instruction (9 nibbles) keeps it odd again. The decode loop must
    // land exactly on the declared count.
    NibbleWriter writer;
    std::vector<uint32_t> ranks = {5, 100, 7, 2000, 1};
    emitCodeword(writer, Scheme::Nibble, ranks[0]);
    emitCodeword(writer, Scheme::Nibble, ranks[1]);
    isa::Word word = isa::encode(isa::addi(3, 4, 17));
    emitInstruction(writer, Scheme::Nibble, word);
    emitCodeword(writer, Scheme::Nibble, ranks[2]);
    emitCodeword(writer, Scheme::Nibble, ranks[3]);
    emitCodeword(writer, Scheme::Nibble, ranks[4]);
    ASSERT_EQ(writer.nibbleCount() % 2, 1u);

    NibbleReader reader(writer.bytes().data(), writer.nibbleCount());
    EXPECT_EQ(*decodeCodeword(reader, Scheme::Nibble), ranks[0]);
    EXPECT_EQ(*decodeCodeword(reader, Scheme::Nibble), ranks[1]);
    EXPECT_FALSE(decodeCodeword(reader, Scheme::Nibble).has_value());
    EXPECT_EQ(reader.getWord(), word);
    EXPECT_EQ(*decodeCodeword(reader, Scheme::Nibble), ranks[2]);
    EXPECT_EQ(*decodeCodeword(reader, Scheme::Nibble), ranks[3]);
    EXPECT_EQ(*decodeCodeword(reader, Scheme::Nibble), ranks[4]);
    EXPECT_TRUE(reader.atEnd());
}

TEST(EscapeBytes, EveryByteClassifiedConsistently)
{
    // The 256-entry inverse table must agree with first principles:
    // a byte is an escape iff its high six bits are an illegal primary
    // opcode, and distinct escape bytes decode to distinct codewords.
    for (unsigned value = 0; value < 256; ++value) {
        uint8_t byte = static_cast<uint8_t>(value);
        NibbleWriter writer;
        writer.putNibbles(byte, 2);
        writer.putNibbles(0, 2); // index byte for the baseline decode
        NibbleReader reader(writer.bytes().data(), 4);
        auto decoded = decodeCodeword(reader, Scheme::Baseline);
        EXPECT_EQ(decoded.has_value(), isa::isIllegalPrimOp(byte >> 2))
            << "byte " << value;
        if (decoded) {
            EXPECT_EQ(*decoded % 256, 0u); // index byte was zero
        }
    }

    // Distinctness across all 32 escape bytes x 256 indices is covered
    // by the exhaustive rank round-trip above; here just pin the group
    // arithmetic at the boundaries.
    NibbleWriter writer;
    emitCodeword(writer, Scheme::Baseline, 8191);
    NibbleReader reader(writer.bytes().data(), writer.nibbleCount());
    EXPECT_EQ(*decodeCodeword(reader, Scheme::Baseline), 8191u);
}

} // namespace
