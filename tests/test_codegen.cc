/**
 * @file
 * Tests for the MiniC front end and SDTS code generator: programs are
 * compiled and *executed* on the reference Cpu, and their output is
 * checked against independently computed expectations.
 */

#include <gtest/gtest.h>

#include "codegen/codegen.hh"
#include "codegen/parser.hh"
#include "decompress/cpu.hh"
#include "program/cfg.hh"

using namespace codecomp;

namespace {

ExecResult
compileAndRun(const std::string &source)
{
    Program program = codegen::compile(source);
    return runProgram(program, 1ull << 26);
}

TEST(MiniCParser, ParsesDeclarationsAndFunctions)
{
    auto unit = codegen::parse(R"(
        int g;
        int table[4] = {1, 2, -3, 4};
        int scalar = -7;
        int main() { return 0; }
    )");
    ASSERT_EQ(unit.globals.size(), 3u);
    EXPECT_EQ(unit.globals[0].name, "g");
    EXPECT_EQ(unit.globals[1].arraySize, 4);
    EXPECT_EQ(unit.globals[1].init[2], -3);
    EXPECT_EQ(unit.globals[2].init[0], -7);
    ASSERT_EQ(unit.functions.size(), 1u);
    EXPECT_EQ(unit.functions[0].name, "main");
}

TEST(MiniCParser, RejectsSyntaxErrors)
{
    EXPECT_THROW(codegen::parse("int main( { return 0; }"),
                 std::runtime_error);
    EXPECT_THROW(codegen::parse("int x = ;"), std::runtime_error);
    EXPECT_THROW(codegen::parse("banana"), std::runtime_error);
}

TEST(Codegen, ReturnsExitCode)
{
    EXPECT_EQ(compileAndRun("int main() { return 42; }").exitCode, 42);
    EXPECT_EQ(compileAndRun("int main() { return 0; }").exitCode, 0);
    EXPECT_EQ(compileAndRun("int main() { return -5; }").exitCode, -5);
}

TEST(Codegen, ArithmeticOperators)
{
    EXPECT_EQ(compileAndRun(
        "int main() { return (7 + 3) * 2 - 5; }").exitCode, 15);
    EXPECT_EQ(compileAndRun(
        "int main() { return 17 / 5; }").exitCode, 3);
    EXPECT_EQ(compileAndRun(
        "int main() { return 17 % 5; }").exitCode, 2);
    EXPECT_EQ(compileAndRun(
        "int main() { return -17 / 5; }").exitCode, -3);
    EXPECT_EQ(compileAndRun(
        "int main() { return (6 & 3) | (8 ^ 1); }").exitCode, 11);
    EXPECT_EQ(compileAndRun(
        "int main() { return 1 << 10; }").exitCode, 1024);
    EXPECT_EQ(compileAndRun(
        "int main() { return -64 >> 3; }").exitCode, -8);
    EXPECT_EQ(compileAndRun(
        "int main() { return -(3 * 4); }").exitCode, -12);
}

TEST(Codegen, LargeConstants)
{
    EXPECT_EQ(compileAndRun(
        "int main() { return 1000000 + 234567; }").exitCode, 1234567);
    EXPECT_EQ(compileAndRun(
        "int main() { return 0x12345678 & 0xff; }").exitCode, 0x78);
}

TEST(Codegen, ComparisonsProduceBooleans)
{
    EXPECT_EQ(compileAndRun(
        "int main() { return (3 < 5) + (5 <= 5) + (7 > 2) + (2 >= 3); }")
                  .exitCode,
              3);
    EXPECT_EQ(compileAndRun(
        "int main() { return (4 == 4) + (4 != 4); }").exitCode, 1);
    EXPECT_EQ(compileAndRun(
        "int main() { return (-1 < 1); }").exitCode, 1);
}

TEST(Codegen, LogicalOperatorsShortCircuit)
{
    // The right operand would trap (divide used as side-effect guard);
    // our divw is total, so instead use a global side effect to detect
    // evaluation.
    const char *source = R"(
        int hits = 0;
        int bump() { hits = hits + 1; return 1; }
        int main() {
            int a = 0 && bump();
            int b = 1 || bump();
            if (hits != 0) return 100;
            int c = 1 && bump();
            int d = 0 || bump();
            if (hits != 2) return 200;
            return a * 1000 + b * 100 + c * 10 + d;
        }
    )";
    EXPECT_EQ(compileAndRun(source).exitCode, 111);
}

TEST(Codegen, NotOperator)
{
    EXPECT_EQ(compileAndRun(
        "int main() { return !0 + !7 * 10; }").exitCode, 1);
}

TEST(Codegen, IfElseChains)
{
    const char *source = R"(
        int classify(int x) {
            if (x < 0) return -1;
            else if (x == 0) return 0;
            else if (x < 10) return 1;
            else return 2;
        }
        int main() {
            return classify(-5) * 1000 + classify(0) * 100 +
                   classify(3) * 10 + classify(99);
        }
    )";
    EXPECT_EQ(compileAndRun(source).exitCode, -1000 + 0 + 10 + 2);
}

TEST(Codegen, WhileAndForLoops)
{
    EXPECT_EQ(compileAndRun(R"(
        int main() {
            int sum = 0;
            int i = 1;
            while (i <= 10) { sum = sum + i; i = i + 1; }
            return sum;
        }
    )").exitCode, 55);
    EXPECT_EQ(compileAndRun(R"(
        int main() {
            int sum = 0;
            int i;
            for (i = 0; i < 100; i = i + 2) sum = sum + 1;
            return sum;
        }
    )").exitCode, 50);
}

TEST(Codegen, DoWhileRunsAtLeastOnce)
{
    EXPECT_EQ(compileAndRun(R"(
        int main() {
            int n = 0;
            do { n = n + 1; } while (0);
            return n;
        }
    )").exitCode, 1);
}

TEST(Codegen, BreakAndContinue)
{
    EXPECT_EQ(compileAndRun(R"(
        int main() {
            int sum = 0;
            int i;
            for (i = 0; i < 100; i = i + 1) {
                if (i == 10) break;
                if (i % 2 == 0) continue;
                sum = sum + i;
            }
            return sum;
        }
    )").exitCode, 1 + 3 + 5 + 7 + 9);
}

TEST(Codegen, GlobalsAndArrays)
{
    EXPECT_EQ(compileAndRun(R"(
        int g = 5;
        int arr[8];
        int main() {
            int i;
            for (i = 0; i < 8; i = i + 1) arr[i] = i * i;
            g = g + arr[3] + arr[7];
            return g;
        }
    )").exitCode, 5 + 9 + 49);
}

TEST(Codegen, GlobalInitializers)
{
    EXPECT_EQ(compileAndRun(R"(
        int tbl[5] = {10, 20, 30};
        int main() { return tbl[0] + tbl[1] + tbl[2] + tbl[3] + tbl[4]; }
    )").exitCode, 60);
}

TEST(Codegen, LocalArraysOnStack)
{
    EXPECT_EQ(compileAndRun(R"(
        int main() {
            int buf[16];
            int i;
            for (i = 0; i < 16; i = i + 1) buf[i] = i;
            int sum = 0;
            for (i = 0; i < 16; i = i + 1) sum = sum + buf[i];
            return sum;
        }
    )").exitCode, 120);
}

TEST(Codegen, FunctionCallsAndRecursion)
{
    EXPECT_EQ(compileAndRun(R"(
        int fact(int n) {
            if (n <= 1) return 1;
            return n * fact(n - 1);
        }
        int main() { return fact(6); }
    )").exitCode, 720);
    EXPECT_EQ(compileAndRun(R"(
        int fib(int n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        int main() { return fib(12); }
    )").exitCode, 144);
}

TEST(Codegen, ManyArguments)
{
    EXPECT_EQ(compileAndRun(R"(
        int sum8(int a, int b, int c, int d, int e, int f, int g, int h) {
            return a + b + c + d + e + f + g + h;
        }
        int main() { return sum8(1, 2, 3, 4, 5, 6, 7, 8); }
    )").exitCode, 36);
}

TEST(Codegen, NestedCallsPreserveEvalStack)
{
    EXPECT_EQ(compileAndRun(R"(
        int add(int a, int b) { return a + b; }
        int main() {
            return add(add(1, 2), add(3, add(4, 5))) + 10 * add(6, 7);
        }
    )").exitCode, 15 + 130);
}

TEST(Codegen, SwitchDenseUsesJumpTable)
{
    const char *source = R"(
        int pick(int x) {
            switch (x) {
              case 0: return 100;
              case 1: return 101;
              case 2: return 102;
              case 3: return 103;
              case 4: return 104;
              case 5: return 105;
              default: return -1;
            }
        }
        int main() {
            return pick(0) + pick(3) + pick(5) + pick(9) + pick(-2);
        }
    )";
    // Verify a jump table was actually emitted.
    Program program = codegen::compile(source);
    EXPECT_FALSE(program.codeRelocs.empty());
    EXPECT_EQ(runProgram(program).exitCode, 100 + 103 + 105 - 1 - 1);
}

TEST(Codegen, SwitchSparseUsesCompareChain)
{
    const char *source = R"(
        int pick(int x) {
            switch (x) {
              case 1: return 7;
              case 1000: return 8;
              default: return 9;
            }
        }
        int main() { return pick(1) * 100 + pick(1000) * 10 + pick(3); }
    )";
    Program program = codegen::compile(source);
    EXPECT_TRUE(program.codeRelocs.empty());
    EXPECT_EQ(runProgram(program).exitCode, 789);
}

TEST(Codegen, SwitchFallthrough)
{
    EXPECT_EQ(compileAndRun(R"(
        int main() {
            int acc = 0;
            switch (2) {
              case 1: acc = acc + 1;
              case 2: acc = acc + 10;
              case 3: acc = acc + 100;
              case 4: acc = acc + 1000;
                break;
              case 5: acc = acc + 10000;
            }
            return acc;
        }
    )").exitCode, 1110);
}

TEST(Codegen, SwitchBreakInsideLoopContinue)
{
    EXPECT_EQ(compileAndRun(R"(
        int main() {
            int acc = 0;
            int i;
            for (i = 0; i < 6; i = i + 1) {
                switch (i % 3) {
                  case 0: acc = acc + 1; break;
                  case 1: continue;
                  default: acc = acc + 100; break;
                }
                acc = acc + 1000;
            }
            return acc;
        }
    )").exitCode, 2 + 200 + 4000);
}

TEST(Codegen, OutputSyscalls)
{
    ExecResult result = compileAndRun(R"(
        int main() {
            putc('h'); putc('i'); putc('\n');
            puti(123);
            puti(-45);
            return 0;
        }
    )");
    EXPECT_EQ(result.output, "hi\n123\n-45\n");
}

TEST(Codegen, ExitBuiltinStopsExecution)
{
    ExecResult result = compileAndRun(R"(
        int main() {
            puti(1);
            exit(77);
            puti(2);
            return 0;
        }
    )");
    EXPECT_EQ(result.exitCode, 77);
    EXPECT_EQ(result.output, "1\n");
}

TEST(Codegen, RuntimeLibrary)
{
    EXPECT_EQ(compileAndRun(R"(
        int main() {
            if (rt_abs(-9) != 9) return 1;
            if (rt_min(3, -2) != -2) return 2;
            if (rt_max(3, -2) != 3) return 3;
            if (rt_gcd(12, 18) != 6) return 4;
            if (rt_ilog2(1024) != 10) return 5;
            if (rt_popcount(0xff) != 8) return 6;
            if (rt_isqrt(289) != 17) return 7;
            if (rt_pow(3, 5) != 243) return 8;
            if (rt_fib(10) != 55) return 9;
            if (rt_sign(-3) != -1) return 10;
            if (rt_clamp(15, 0, 10) != 10) return 11;
            return 0;
        }
    )").exitCode, 0);
}

TEST(Codegen, DeterministicRandLcg)
{
    ExecResult a = compileAndRun(R"(
        int main() {
            rt_srand(99);
            int x = rt_rand();
            int y = rt_rand();
            puti(x); puti(y);
            return 0;
        }
    )");
    ExecResult b = compileAndRun(R"(
        int main() {
            rt_srand(99);
            int x = rt_rand();
            int y = rt_rand();
            puti(x); puti(y);
            return 0;
        }
    )");
    EXPECT_EQ(a.output, b.output);
    EXPECT_NE(a.output, "0\n0\n");
}

TEST(Codegen, SemanticErrors)
{
    EXPECT_THROW(compileAndRun("int main() { return zzz; }"),
                 std::runtime_error);
    EXPECT_THROW(compileAndRun("int main() { return nosuch(1); }"),
                 std::runtime_error);
    EXPECT_THROW(compileAndRun("int a[3]; int main() { return a; }"),
                 std::runtime_error);
    EXPECT_THROW(compileAndRun("int x; int main() { return x[0]; }"),
                 std::runtime_error);
    EXPECT_THROW(compileAndRun("int f() { return 0; } int f() { return 1; }"
                               " int main() { return 0; }"),
                 std::runtime_error);
}

TEST(Codegen, ProgramStructureIsWellFormed)
{
    Program program = codegen::compile(R"(
        int helper(int x) { return x + 1; }
        int main() { return helper(1); }
    )");
    // _start + 2 user functions + runtime library.
    ASSERT_GE(program.functions.size(), 3u);
    EXPECT_EQ(program.functions[0].name, "_start");
    EXPECT_EQ(program.entryIndex, 0u);
    EXPECT_GT(program.dataBase, Program::textBase + program.textBytes());

    // Functions tile .text contiguously.
    uint32_t expected = 0;
    for (const FunctionSymbol &fn : program.functions) {
        EXPECT_EQ(fn.body.first, expected);
        expected += fn.body.count;
    }
    EXPECT_EQ(expected, program.text.size());

    // Every non-_start function has a prologue and >= 1 epilogue.
    for (size_t i = 1; i < program.functions.size(); ++i) {
        EXPECT_GT(program.functions[i].prologue.count, 0u)
            << program.functions[i].name;
        EXPECT_FALSE(program.functions[i].epilogues.empty());
    }

    // The CFG builder accepts it.
    Cfg cfg = Cfg::build(program);
    EXPECT_GT(cfg.blocks().size(), 4u);
    uint32_t covered = 0;
    for (const InstRange &blk : cfg.blocks()) {
        EXPECT_EQ(blk.first, covered);
        covered += blk.count;
    }
    EXPECT_EQ(covered, program.text.size());
}

TEST(Codegen, StressManyLocalsSpillToStack)
{
    // 24 named scalars exceed the 18 callee-saved registers.
    std::string source = "int main() {\n";
    for (int i = 0; i < 24; ++i)
        source += "int v" + std::to_string(i) + " = " + std::to_string(i) +
                  ";\n";
    source += "int sum = 0;\n";
    for (int i = 0; i < 24; ++i)
        source += "sum = sum + v" + std::to_string(i) + ";\n";
    source += "return sum; }\n";
    EXPECT_EQ(compileAndRun(source).exitCode, 23 * 24 / 2);
}


TEST(Codegen, MixedSimpleAndComplexArgumentsStageCorrectly)
{
    // Stresses the parallel-move argument staging: simple arguments
    // (literals, register-resident locals) are materialized directly
    // into argument registers while complex ones come off the
    // expression stack -- in an order that must never clobber a
    // pending source.
    const char *source = R"(
        int probe8(int a, int b, int c, int d, int e, int f, int g,
                   int h) {
            return a + b * 10 + c * 100 + d * 1000 + e * 10000 +
                   f * 100000 + g * 1000000 + h * 10000000;
        }
        int id(int x) { return x; }
        int main() {
            int p = 1;
            int q = 4;
            int r = 7;
            // args: complex, simple, complex, simple-lit, complex,
            //       simple, complex, simple-lit
            return probe8(id(p), q, id(p + 1), 3, id(q + 1), r,
                          id(r + 1), 9) - 98754321 + 12345678;
        }
    )";
    // probe8(1,4,2,3,5,7,8,9) = 1 + 40 + 200 + 3000 + 50000 + 700000
    //                         + 8000000 + 90000000 = 98753241
    EXPECT_EQ(compileAndRun(source).exitCode,
              98753241 - 98754321 + 12345678);
}

TEST(Codegen, AllComplexArgumentsInOrder)
{
    const char *source = R"(
        int f4(int a, int b, int c, int d) {
            return a * 1000 + b * 100 + c * 10 + d;
        }
        int inc(int x) { return x + 1; }
        int main() {
            return f4(inc(0), inc(1), inc(2), inc(3));
        }
    )";
    EXPECT_EQ(compileAndRun(source).exitCode, 1234);
}

TEST(Codegen, ArgumentEvaluationOrderIsLeftToRight)
{
    const char *source = R"(
        int log = 0;
        int tick(int v) { log = log * 10 + v; return v; }
        int sink(int a, int b, int c) { return a + b + c; }
        int main() {
            sink(tick(1), tick(2), tick(3));
            return log;
        }
    )";
    EXPECT_EQ(compileAndRun(source).exitCode, 123);
}

TEST(Codegen, CallArgumentsUsingGlobalsAndArrays)
{
    const char *source = R"(
        int tab[4] = {10, 20, 30, 40};
        int g = 5;
        int f3(int a, int b, int c) { return a * 100 + b * 10 + c; }
        int main() {
            int i = 2;
            return f3(tab[i], g, tab[i + 1] / 10) - f3(0, 0, 0);
        }
    )";
    EXPECT_EQ(compileAndRun(source).exitCode, 3054);
}


TEST(MiniCParser, LexerErrorDiagnostics)
{
    EXPECT_THROW(codegen::parse("int main() { return 1 @ 2; }"),
                 std::runtime_error);
    EXPECT_THROW(codegen::parse("int main() { return 'ab'; }"),
                 std::runtime_error);
    EXPECT_THROW(codegen::parse("int main() { /* never closed"),
                 std::runtime_error);
    EXPECT_THROW(codegen::parse("int main() { return '\\q'; }"),
                 std::runtime_error);
}

TEST(MiniCParser, ArraySizeMustBePositive)
{
    EXPECT_THROW(codegen::parse("int a[0]; int main() { return 0; }"),
                 std::runtime_error);
}

} // namespace
