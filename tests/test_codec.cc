/**
 * @file
 * Invariants of the scheme-codec registry (compress/codec.hh): every
 * registered codec round-trips emit -> decode over its full rank range
 * on both decode paths, its CLI name parses back to itself, its decode
 * tables agree with the reference peek for every prefix value, and its
 * dictionary serialization inverts exactly. Plus the operand-factored
 * backend's own algebra: factor/fuse bijection, canonical-form
 * enforcement, and rejection of malformed factored payloads.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "compress/codec.hh"
#include "compress/compressor.hh"
#include "compress/objfile.hh"
#include "compress/opfac.hh"
#include "isa/builder.hh"
#include "isa/inst.hh"
#include "support/bitstream.hh"
#include "support/rng.hh"
#include "support/serialize.hh"
#include "workloads/workloads.hh"

using namespace codecomp;
using namespace codecomp::compress;

namespace {

// ---------------- registry shape ----------------

TEST(CodecRegistry, EnumOrderUniqueIdsAndLookup)
{
    const std::vector<const SchemeCodec *> &codecs = allCodecs();
    ASSERT_FALSE(codecs.empty());
    std::set<uint8_t> ids;
    for (size_t i = 0; i < codecs.size(); ++i) {
        // Registry order mirrors the enum, with no gaps or duplicates.
        EXPECT_EQ(static_cast<size_t>(codecs[i]->id()), i);
        EXPECT_TRUE(ids.insert(static_cast<uint8_t>(codecs[i]->id())).second);
        EXPECT_EQ(&schemeCodec(codecs[i]->id()), codecs[i]);
        EXPECT_EQ(findSchemeCodec(static_cast<uint8_t>(codecs[i]->id())),
                  codecs[i]);
    }
    EXPECT_EQ(findSchemeCodec(static_cast<uint8_t>(codecs.size())),
              nullptr);
    EXPECT_EQ(findSchemeCodec(0xff), nullptr);
    EXPECT_EQ(allSchemes().size(), codecs.size());
}

TEST(CodecRegistry, CliNameParseIsABijection)
{
    std::set<std::string> names;
    for (const SchemeCodec *codec : allCodecs()) {
        std::string name = codec->cliName();
        EXPECT_TRUE(names.insert(name).second) << name << " duplicated";
        auto parsed = parseSchemeName(name);
        ASSERT_TRUE(parsed.has_value()) << name;
        EXPECT_EQ(*parsed, codec->id());
        EXPECT_EQ(schemeCliName(codec->id()), std::string(name));
        // Test labels must be gtest identifiers.
        std::string label = schemeTestName(codec->id());
        EXPECT_FALSE(label.empty());
        for (char c : label)
            EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)))
                << label;
    }
    EXPECT_FALSE(parseSchemeName("no-such-scheme").has_value());
    EXPECT_FALSE(parseSchemeName("").has_value());
    // The joined list mentions every name once.
    std::string joined = schemeCliNames(",");
    for (const std::string &name : names)
        EXPECT_NE(joined.find(name), std::string::npos) << name;
}

// ---------------- per-codec invariants ----------------

class CodecInvariants : public ::testing::TestWithParam<Scheme>
{
  protected:
    const SchemeCodec &codec() const { return schemeCodec(GetParam()); }
};

TEST_P(CodecInvariants, EveryRankRoundTripsOnBothDecodePaths)
{
    const SchemeCodec &c = codec();
    SchemeParams params = c.params();
    NibbleWriter writer;
    for (uint32_t rank = 0; rank < params.maxCodewords; ++rank) {
        size_t before = writer.nibbleCount();
        c.emitCodeword(writer, rank);
        ASSERT_EQ(writer.nibbleCount() - before, c.codewordNibbles(rank))
            << "rank " << rank;
    }

    NibbleReader table(writer.bytes().data(), writer.nibbleCount());
    NibbleReader reference(writer.bytes().data(), writer.nibbleCount());
    for (uint32_t rank = 0; rank < params.maxCodewords; ++rank) {
        auto peek = c.peekItemNibbles(table);
        auto refPeek = c.referencePeekItemNibbles(reference);
        ASSERT_TRUE(peek.has_value());
        ASSERT_TRUE(refPeek.has_value());
        EXPECT_EQ(*peek, *refPeek) << "rank " << rank;
        EXPECT_EQ(*peek, c.codewordNibbles(rank)) << "rank " << rank;

        auto decoded = c.decodeCodeword(table);
        auto refDecoded = c.referenceDecodeCodeword(reference);
        ASSERT_TRUE(decoded.has_value()) << "rank " << rank;
        ASSERT_TRUE(refDecoded.has_value()) << "rank " << rank;
        EXPECT_EQ(*decoded, rank);
        EXPECT_EQ(*refDecoded, rank);
        ASSERT_EQ(table.pos(), reference.pos());
    }
    EXPECT_TRUE(table.atEnd());
}

TEST_P(CodecInvariants, InstructionsSurviveBothDecodePaths)
{
    const SchemeCodec &c = codec();
    const isa::Word words[] = {
        isa::encode(isa::li(3, 1)),     isa::encode(isa::addi(3, 3, 1)),
        isa::encode(isa::lis(4, -2)),   isa::encode(isa::ori(4, 4, 6)),
        isa::encode(isa::mtlr(4)),      isa::encode(isa::sc()),
    };
    NibbleWriter writer;
    for (isa::Word word : words)
        c.emitInstruction(writer, word);

    NibbleReader table(writer.bytes().data(), writer.nibbleCount());
    NibbleReader reference(writer.bytes().data(), writer.nibbleCount());
    for (isa::Word word : words) {
        EXPECT_FALSE(c.decodeCodeword(table).has_value());
        EXPECT_FALSE(c.referenceDecodeCodeword(reference).has_value());
        EXPECT_EQ(table.getWord(), word);
        EXPECT_EQ(reference.getWord(), word);
        ASSERT_EQ(table.pos(), reference.pos());
    }
    EXPECT_TRUE(table.atEnd());
}

TEST_P(CodecInvariants, TablesAgreeWithReferencePeekForEveryPrefix)
{
    // Feed both classifiers every possible value of the prefix nibbles
    // followed by a fixed pattern: the table-driven peek must match the
    // cascaded-branch reference exactly, for every prefix value and
    // for truncated streams.
    const SchemeCodec &c = codec();
    const DecodeTables &tables = c.tables();
    unsigned prefixValues = 1u << (4 * tables.prefixNibbles);
    for (unsigned value = 0; value < prefixValues; ++value) {
        NibbleWriter writer;
        for (unsigned n = tables.prefixNibbles; n > 0; --n)
            writer.putNibble((value >> (4 * (n - 1))) & 0xf);
        for (unsigned pad = 0; pad < 12; ++pad)
            writer.putNibble((pad * 5 + 3) & 0xf);

        NibbleReader full(writer.bytes().data(), writer.nibbleCount());
        auto peek = c.peekItemNibbles(full);
        auto refPeek = c.referencePeekItemNibbles(full);
        ASSERT_EQ(peek.has_value(), refPeek.has_value())
            << "prefix " << value;
        if (peek) {
            EXPECT_EQ(*peek, *refPeek) << "prefix " << value;
            EXPECT_EQ(*peek, tables.classes[value].nibbles)
                << "prefix " << value;
        }

        // Every truncation point: the two classifiers must agree that
        // the item does or does not fit.
        for (unsigned len = 0; len < writer.nibbleCount(); ++len) {
            NibbleReader cut(writer.bytes().data(), len);
            auto a = c.peekItemNibbles(cut);
            auto b = c.referencePeekItemNibbles(cut);
            ASSERT_EQ(a.has_value(), b.has_value())
                << "prefix " << value << " len " << len;
            if (a) {
                EXPECT_EQ(*a, *b) << "prefix " << value << " len " << len;
            }
        }
    }
}

TEST_P(CodecInvariants, AccountingSumsMatchItemWidths)
{
    const SchemeCodec &c = codec();
    EmitAccounting insn = c.instructionAccounting();
    EXPECT_EQ(insn.insnNibbles + insn.escapeNibbles + insn.codewordNibbles,
              c.params().insnNibbles);
    for (uint32_t rank : {0u, 1u, c.params().maxCodewords - 1}) {
        EmitAccounting cw = c.codewordAccounting(rank);
        EXPECT_EQ(cw.insnNibbles + cw.escapeNibbles + cw.codewordNibbles,
                  c.codewordNibbles(rank))
            << "rank " << rank;
    }
}

TEST_P(CodecInvariants, DictionarySerializationInverts)
{
    const SchemeCodec &c = codec();
    std::vector<DictEntry> entries = {
        {isa::encode(isa::li(3, 0))},
        {isa::encode(isa::addi(1, 1, -16)), isa::encode(isa::stw(0, 20, 1))},
        {isa::encode(isa::mtlr(0)), isa::encode(isa::ori(9, 9, 0xff)),
         isa::encode(isa::lwz(0, 20, 1))},
        {isa::encode(isa::cmpi(0, 3, 7))},
    };
    ByteSink sink;
    c.putDictionary(sink, entries);
    // dictionaryBytes prices the dictionary's ROM payload; the
    // serialized form may add structural framing (entry boundaries,
    // table counts) on top, but never less than the ROM cost.
    EXPECT_LE(c.dictionaryBytes(entries), sink.bytes().size());

    std::vector<uint8_t> bytes = sink.take();
    ByteSource source(bytes);
    std::vector<DictEntry> loaded;
    auto error = c.getDictionary(
        source, static_cast<uint32_t>(entries.size()), 64, loaded);
    ASSERT_FALSE(error.has_value()) << *error;
    EXPECT_EQ(loaded, entries);
    EXPECT_EQ(source.remaining(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Registry, CodecInvariants,
                         ::testing::ValuesIn(allSchemes()),
                         [](const auto &info) {
                             return schemeTestName(info.param);
                         });

// ---------------- operand factoring algebra ----------------

TEST(OperandFactoredAlgebra, FactorFuseIsABijectionOverRandomWords)
{
    // Structured words covering every field geometry, then a random
    // sweep (including illegal opcodes, which factor as all-skeleton).
    std::vector<isa::Word> words = {
        isa::encode(isa::addi(31, 1, -32768)),
        isa::encode(isa::lis(0, 32767)),
        isa::encode(isa::lwz(12, 4, 31)),
        isa::encode(isa::stb(5, -1, 6)),
        isa::encode(isa::rlwinm(7, 8, 31, 0, 31)),
        isa::encode(isa::add(3, 4, 5)),
        isa::encode(isa::mtlr(9)),
        isa::encode(isa::blr()),
        isa::encode(isa::sc()),
        isa::encode(isa::b(-4)),
        0x00000000u,
        0xffffffffu,
    };
    Rng rng(0x0f5eedu);
    for (int i = 0; i < 5000; ++i)
        words.push_back(static_cast<isa::Word>(rng.next()));

    for (isa::Word word : words) {
        FactoredWord factored = factorWord(word);
        EXPECT_EQ(fuseWord(factored), word) << std::hex << word;
        EXPECT_TRUE(isCanonicalFactoring(factored)) << std::hex << word;
        // The three streams partition the word: no operand bits remain
        // in the skeleton.
        OperandFields fields = operandFields(isa::primOpOf(word));
        EXPECT_EQ(factored.skeleton &
                      (fields.regMask() | fields.immMask()),
                  0u)
            << std::hex << word;
    }
}

TEST(OperandFactoredAlgebra, NonCanonicalTriplesAreRejected)
{
    // Skeleton carrying operand bits.
    FactoredWord bad = factorWord(isa::encode(isa::addi(3, 4, 5)));
    bad.skeleton |= 1u << 21; // an rt bit
    EXPECT_FALSE(isCanonicalFactoring(bad));

    // Register tuple wider than the format's block.
    FactoredWord wideRegs = factorWord(isa::encode(isa::addi(3, 4, 5)));
    wideRegs.regs = 1u << 10; // D-forms have a 10-bit block
    EXPECT_FALSE(isCanonicalFactoring(wideRegs));

    // Immediate wider than the field.
    FactoredWord wideImm = factorWord(isa::encode(isa::addi(3, 4, 5)));
    wideImm.imm = 1u << 16;
    EXPECT_FALSE(isCanonicalFactoring(wideImm));
}

// ---------------- factored dictionary hardening ----------------

/** Serialize entries with the operand-factored codec, then hand the
 *  mutated bytes back to getDictionary. */
std::optional<std::string>
loadFactored(std::vector<uint8_t> bytes, uint32_t entryCount)
{
    ByteSource source(bytes);
    std::vector<DictEntry> loaded;
    return operandFactoredCodec().getDictionary(source, entryCount, 64,
                                                loaded);
}

TEST(OperandFactoredDictionary, MalformedPayloadsAreRejected)
{
    std::vector<DictEntry> entries = {
        {isa::encode(isa::addi(1, 1, -16)), isa::encode(isa::stw(0, 20, 1))},
        {isa::encode(isa::add(3, 4, 5))},
    };
    ByteSink sink;
    operandFactoredCodec().putDictionary(sink, entries);
    std::vector<uint8_t> good = sink.take();
    {
        // Sanity: the untouched payload loads.
        EXPECT_FALSE(loadFactored(good, 2).has_value());
    }
    {
        // Skeleton 0 with an operand bit set is not canonical. The
        // first skeleton word (addi's) starts at byte 4, after the u32
        // table count; its rt field occupies bits 21..25.
        std::vector<uint8_t> bad = good;
        bad[4] |= 0x02; // bit 25 of the first skeleton word
        EXPECT_TRUE(loadFactored(bad, 2).has_value());
    }
    {
        // A duplicated skeleton table entry is not canonical.
        ByteSink craft;
        craft.put32(2);
        craft.put32(isa::encode(isa::sc()));
        craft.put32(isa::encode(isa::sc()));
        craft.put8(1);
        EXPECT_TRUE(loadFactored(craft.take(), 1).has_value());
    }
    {
        // A zero entry length is outside 1..maxEntryWords.
        ByteSink craft;
        craft.put32(0); // skeletons
        craft.put8(0);  // entry length 0
        EXPECT_TRUE(loadFactored(craft.take(), 1).has_value());
    }
    {
        // Words but no skeleton table to index.
        ByteSink craft;
        craft.put32(0);
        craft.put8(1);
        EXPECT_TRUE(loadFactored(craft.take(), 1).has_value());
    }
    {
        // Skeleton index beyond the declared table: three skeletons
        // need 2 index bits, so index 3 is representable but invalid.
        ByteSink craft;
        craft.put32(3);
        craft.put32(isa::encode(isa::sc()));         // all-skeleton
        craft.put32(isa::encode(isa::add(0, 0, 0))); // Op31, regs zero
        craft.put32(isa::encode(isa::b(0)));         // B, disp zero
        craft.put8(1);  // one 1-word entry
        craft.put8(0xc0); // bit-packed skeleton index 3
        EXPECT_TRUE(loadFactored(craft.take(), 1).has_value());
    }
    {
        // Nonzero pad bits after the word stream: a single Op31
        // skeleton makes the index 0 bits wide, so one word is 15 raw
        // register bits and the 16th bit is pad -- which must be zero.
        ByteSink craft;
        craft.put32(1);
        craft.put32(isa::encode(isa::add(0, 0, 0)));
        craft.put8(1);
        craft.put8(0xff);
        craft.put8(0xff); // low bit = nonzero pad
        EXPECT_TRUE(loadFactored(craft.take(), 1).has_value());

        ByteSink ok;
        ok.put32(1);
        ok.put32(isa::encode(isa::add(0, 0, 0)));
        ok.put8(1);
        ok.put8(0xff);
        ok.put8(0xfe); // same word, zero pad: loads
        EXPECT_FALSE(loadFactored(ok.take(), 1).has_value());
    }
    {
        // Declared skeleton count that overruns the payload.
        ByteSink craft;
        craft.put32(0x40000000);
        EXPECT_TRUE(loadFactored(craft.take(), 1).has_value());
    }
}

TEST(OperandFactoredDictionary, FactoredFormIsSmallerOnRealSelections)
{
    // The point of the backend: on a real workload's dictionary the
    // factored serialization undercuts the flat 4-bytes-per-word form.
    Program program = workloads::buildBenchmark("compress");
    CompressorConfig config;
    config.scheme = Scheme::OperandFactored;
    CompressedImage image = compressProgram(program, config);
    ASSERT_FALSE(image.entriesByRank.empty());

    size_t words = 0;
    for (const DictEntry &entry : image.entriesByRank)
        words += entry.size();
    size_t flat = words * isa::instBytes;
    EXPECT_LT(image.dictionaryBytes(), flat)
        << "factored dictionary should beat the flat layout";

    // The ROM price is the serialized form minus structural metadata
    // (the u32 skeleton count and one length byte per entry) -- exact
    // by construction, not a parallel formula.
    ByteSink sink;
    operandFactoredCodec().putDictionary(sink, image.entriesByRank);
    EXPECT_EQ(image.dictionaryBytes(),
              sink.bytes().size() - 4 - image.entriesByRank.size());

    // And the serialized image must survive a save/load round trip
    // bit-exactly (the container re-serializes the dictionary).
    std::vector<uint8_t> bytes = saveImage(image);
    Result<CompressedImage> loaded = tryLoadImage(bytes);
    ASSERT_TRUE(loaded.ok()) << loaded.error().message();
    EXPECT_EQ(loaded.value().entriesByRank, image.entriesByRank);
    EXPECT_EQ(saveImage(loaded.value()), bytes);
}

} // namespace
