/**
 * @file
 * Tests for the I-cache model and the fetch-hook plumbing of both
 * processors.
 */

#include <gtest/gtest.h>

#include "cache/icache.hh"
#include "compress/compressor.hh"
#include "decompress/compressed_cpu.hh"
#include "decompress/cpu.hh"
#include "workloads/workloads.hh"

using namespace codecomp;
using namespace codecomp::cache;

namespace {

TEST(ICache, ColdMissesThenHits)
{
    ICache cache({256, 32, 1});
    cache.access(0, 4);
    cache.access(4, 4);
    cache.access(28, 4);
    EXPECT_EQ(cache.stats().accesses, 3u);
    EXPECT_EQ(cache.stats().misses, 1u); // one line, one cold miss
    cache.access(32, 4);                 // next line
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(ICache, DirectMappedConflict)
{
    // 256B direct-mapped, 32B lines -> 8 sets; addresses 0 and 256
    // collide.
    ICache cache({256, 32, 1});
    cache.access(0, 4);
    cache.access(256, 4);
    cache.access(0, 4);
    EXPECT_EQ(cache.stats().misses, 3u); // ping-pong
}

TEST(ICache, TwoWayAssociativityAbsorbsConflict)
{
    ICache cache({256, 32, 2});
    cache.access(0, 4);
    cache.access(256, 4);
    cache.access(0, 4);
    cache.access(256, 4);
    EXPECT_EQ(cache.stats().misses, 2u); // both fit in the set
}

TEST(ICache, LruEvictsOldest)
{
    // 2-way, 1 set per way pair at these addresses: fill both ways,
    // then a third line evicts the least recently used.
    ICache cache({64, 32, 2}); // 1 set, 2 ways
    cache.access(0, 4);    // miss, way0
    cache.access(32, 4);   // miss, way1
    cache.access(0, 4);    // hit (refreshes 0)
    cache.access(64, 4);   // miss, evicts 32
    cache.access(0, 4);    // hit
    cache.access(32, 4);   // miss again
    EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(ICache, StraddlingAccessTouchesBothLines)
{
    ICache cache({256, 32, 1});
    cache.access(30, 4); // spans lines 0 and 1
    EXPECT_EQ(cache.stats().accesses, 2u);
    EXPECT_EQ(cache.stats().misses, 2u);
    cache.access(30, 4);
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(ICache, NeverUsedWaysFillBeforeAnyEviction)
{
    // Single 4-way set. The victim scan is index-ordered over the ways,
    // so among never-used ways (all lastUse 0) the lowest index wins
    // deterministically, and no resident line is evicted while an
    // untouched way remains.
    ICache cache({128, 32, 4});
    cache.access(0, 4);   // miss -> way 0
    cache.access(32, 4);  // miss -> way 1
    cache.access(0, 4);   // hit
    cache.access(32, 4);  // hit
    cache.access(64, 4);  // miss -> way 2 (never used), not an eviction
    cache.access(96, 4);  // miss -> way 3
    cache.access(0, 4);   // still resident
    cache.access(32, 4);  // still resident
    EXPECT_EQ(cache.stats().misses, 4u);

    cache.access(128, 4); // set full: evicts the true LRU, line 64
    cache.access(96, 4);  // hit: not the victim
    cache.access(0, 4);   // hit
    cache.access(32, 4);  // hit
    cache.access(64, 4);  // miss: it was the one evicted
    EXPECT_EQ(cache.stats().misses, 6u);
}

TEST(ICache, ResetClearsEverything)
{
    ICache cache({256, 32, 1});
    cache.access(0, 4);
    cache.reset();
    EXPECT_EQ(cache.stats().accesses, 0u);
    cache.access(0, 4);
    EXPECT_EQ(cache.stats().misses, 1u); // cold again
}

TEST(ICache, FillAndEvictionCounters)
{
    // Direct-mapped ping-pong: every miss fills a line; every fill
    // after the set's first displaces a resident line.
    ICache cache({256, 32, 1});
    cache.access(0, 4);   // cold fill, no eviction
    cache.access(256, 4); // fills over line 0: eviction
    cache.access(0, 4);   // and back: eviction
    EXPECT_EQ(cache.stats().misses, 3u);
    EXPECT_EQ(cache.stats().lineFills, 3u);
    EXPECT_EQ(cache.stats().evictions, 2u);

    cache.reset();
    EXPECT_EQ(cache.stats(), CacheStats{});
}

TEST(ICache, AccessReportsMissedLineCount)
{
    ICache cache({256, 32, 1});
    EXPECT_EQ(cache.access(30, 4), 2u); // straddle, both lines cold
    EXPECT_EQ(cache.access(30, 4), 0u); // both resident now
    EXPECT_EQ(cache.access(64, 4), 1u);
    EXPECT_TRUE(cache.touch(64));
    EXPECT_FALSE(cache.touch(96));
}

// Bad geometries are rejected as catchable fatals (CC_FATAL throws), so
// tools can report them as usage errors instead of aborting.
TEST(ICache, RejectsBadGeometry)
{
    // capacity not a whole number of sets: numSets() would truncate
    // 100/32 down to 3 sets and silently model a 96-byte cache.
    EXPECT_THROW(ICache({100, 32, 1}), std::runtime_error);
    EXPECT_THROW(ICache({256, 24, 1}), std::runtime_error); // line !pow2
    EXPECT_THROW(ICache({256, 2, 1}), std::runtime_error);  // line < 4
    EXPECT_THROW(ICache({256, 32, 0}), std::runtime_error); // no ways
    EXPECT_THROW(ICache({16, 32, 1}), std::runtime_error); // 0 sets
    EXPECT_THROW(ICache({96, 32, 1}), std::runtime_error); // 3 sets !pow2
    EXPECT_NE(cacheConfigError({100, 32, 1}).find("whole number"),
              std::string::npos);
    EXPECT_EQ(cacheConfigError({1024, 32, 2}), "");
}

TEST(FetchHooks, NativeFetchCountMatchesInstCount)
{
    Program p = workloads::buildBenchmark("compress");
    uint64_t fetches = 0;
    Cpu cpu(p);
    cpu.setFetchHook([&fetches](const FetchEvent &event) {
        EXPECT_EQ(event.bytes, 4u);
        EXPECT_EQ(event.retired, 1u);
        EXPECT_FALSE(event.isCodeword);
        ++fetches;
    });
    ExecResult r = cpu.run();
    EXPECT_EQ(fetches, r.instCount);
    // The built-in accumulator agrees with the hook's view.
    EXPECT_EQ(cpu.fetchStats().itemFetches, r.instCount);
    EXPECT_EQ(cpu.fetchStats().fetchedBytes, r.instCount * 4);
}

TEST(FetchHooks, CompressedFetchesAreSmallerAndFewerBytes)
{
    Program p = workloads::buildBenchmark("compress");
    compress::CompressorConfig config;
    config.scheme = compress::Scheme::Nibble;
    config.maxEntries = 4680;
    compress::CompressedImage image = compress::compressProgram(p, config);

    uint64_t native_bytes = 0;
    Cpu cpu(p);
    cpu.setFetchHook([&native_bytes](const FetchEvent &event) {
        native_bytes += event.bytes;
    });
    cpu.run();

    uint64_t compressed_bytes = 0;
    CompressedCpu ccpu(image);
    ccpu.setFetchHook([&compressed_bytes](const FetchEvent &event) {
        compressed_bytes += event.bytes;
    });
    ccpu.run();

    // The compressed fetch stream moves strictly fewer bytes for the
    // same execution (the bandwidth argument of the paper's intro).
    EXPECT_LT(compressed_bytes, native_bytes);
}

TEST(FetchHooks, StraddlingCompressedFetchTouchesExactlyTwoLines)
{
    // Variable-size compressed items land at arbitrary byte offsets, so
    // some fetches straddle a cache-line boundary. Each such fetch must
    // count as exactly two line touches -- no more, no less -- and the
    // cache's access count must equal the sum of per-fetch line spans.
    Program p = workloads::buildBenchmark("compress");
    compress::CompressorConfig config;
    config.scheme = compress::Scheme::Nibble;
    compress::CompressedImage image = compress::compressProgram(p, config);

    constexpr uint32_t line = 32;
    ICache cache({2048, line, 2});
    uint64_t expected_touches = 0;
    uint64_t straddles = 0;
    CompressedCpu cpu(image);
    cpu.setFetchHook([&](const FetchEvent &event) {
        ASSERT_GE(event.bytes, 1u);
        ASSERT_LE(event.bytes, line); // an item never covers three lines
        uint32_t lines = (event.addr + event.bytes - 1) / line -
                         event.addr / line + 1;
        ASSERT_LE(lines, 2u);
        straddles += lines == 2;
        expected_touches += lines;
        cache.access(event.addr, event.bytes);
    });
    cpu.run();
    EXPECT_GT(straddles, 0u);
    EXPECT_EQ(cache.stats().accesses, expected_touches);
}

TEST(FetchHooks, CompressedCodeMissesLessInSmallCache)
{
    Program p = workloads::buildBenchmark("go");
    compress::CompressorConfig config;
    config.scheme = compress::Scheme::Nibble;
    config.maxEntries = 4680;
    compress::CompressedImage image = compress::compressProgram(p, config);

    CacheConfig geometry{2048, 32, 1};
    ICache native(geometry);
    Cpu cpu(p);
    cpu.setFetchHook([&native](const FetchEvent &event) {
        native.access(event.addr, event.bytes);
    });
    cpu.run();

    ICache compressed(geometry);
    CompressedCpu ccpu(image);
    ccpu.setFetchHook([&compressed](const FetchEvent &event) {
        compressed.access(event.addr, event.bytes);
    });
    ccpu.run();

    EXPECT_LT(compressed.stats().missRate(), native.stats().missRate());
}

} // namespace
