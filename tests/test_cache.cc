/**
 * @file
 * Tests for the I-cache model and the fetch-hook plumbing of both
 * processors.
 */

#include <gtest/gtest.h>

#include "cache/icache.hh"
#include "compress/compressor.hh"
#include "decompress/compressed_cpu.hh"
#include "decompress/cpu.hh"
#include "workloads/workloads.hh"

using namespace codecomp;
using namespace codecomp::cache;

namespace {

TEST(ICache, ColdMissesThenHits)
{
    ICache cache({256, 32, 1});
    cache.access(0, 4);
    cache.access(4, 4);
    cache.access(28, 4);
    EXPECT_EQ(cache.stats().accesses, 3u);
    EXPECT_EQ(cache.stats().misses, 1u); // one line, one cold miss
    cache.access(32, 4);                 // next line
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(ICache, DirectMappedConflict)
{
    // 256B direct-mapped, 32B lines -> 8 sets; addresses 0 and 256
    // collide.
    ICache cache({256, 32, 1});
    cache.access(0, 4);
    cache.access(256, 4);
    cache.access(0, 4);
    EXPECT_EQ(cache.stats().misses, 3u); // ping-pong
}

TEST(ICache, TwoWayAssociativityAbsorbsConflict)
{
    ICache cache({256, 32, 2});
    cache.access(0, 4);
    cache.access(256, 4);
    cache.access(0, 4);
    cache.access(256, 4);
    EXPECT_EQ(cache.stats().misses, 2u); // both fit in the set
}

TEST(ICache, LruEvictsOldest)
{
    // 2-way, 1 set per way pair at these addresses: fill both ways,
    // then a third line evicts the least recently used.
    ICache cache({64, 32, 2}); // 1 set, 2 ways
    cache.access(0, 4);    // miss, way0
    cache.access(32, 4);   // miss, way1
    cache.access(0, 4);    // hit (refreshes 0)
    cache.access(64, 4);   // miss, evicts 32
    cache.access(0, 4);    // hit
    cache.access(32, 4);   // miss again
    EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(ICache, StraddlingAccessTouchesBothLines)
{
    ICache cache({256, 32, 1});
    cache.access(30, 4); // spans lines 0 and 1
    EXPECT_EQ(cache.stats().accesses, 2u);
    EXPECT_EQ(cache.stats().misses, 2u);
    cache.access(30, 4);
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(ICache, NeverUsedWaysFillBeforeAnyEviction)
{
    // Single 4-way set. The victim scan is index-ordered over the ways,
    // so among never-used ways (all lastUse 0) the lowest index wins
    // deterministically, and no resident line is evicted while an
    // untouched way remains.
    ICache cache({128, 32, 4});
    cache.access(0, 4);   // miss -> way 0
    cache.access(32, 4);  // miss -> way 1
    cache.access(0, 4);   // hit
    cache.access(32, 4);  // hit
    cache.access(64, 4);  // miss -> way 2 (never used), not an eviction
    cache.access(96, 4);  // miss -> way 3
    cache.access(0, 4);   // still resident
    cache.access(32, 4);  // still resident
    EXPECT_EQ(cache.stats().misses, 4u);

    cache.access(128, 4); // set full: evicts the true LRU, line 64
    cache.access(96, 4);  // hit: not the victim
    cache.access(0, 4);   // hit
    cache.access(32, 4);  // hit
    cache.access(64, 4);  // miss: it was the one evicted
    EXPECT_EQ(cache.stats().misses, 6u);
}

TEST(ICache, ResetClearsEverything)
{
    ICache cache({256, 32, 1});
    cache.access(0, 4);
    cache.reset();
    EXPECT_EQ(cache.stats().accesses, 0u);
    cache.access(0, 4);
    EXPECT_EQ(cache.stats().misses, 1u); // cold again
}

TEST(ICache, RejectsBadGeometry)
{
    EXPECT_DEATH(ICache({100, 32, 1}), "sets");
    EXPECT_DEATH(ICache({256, 24, 1}), "power of two");
}

TEST(FetchHooks, NativeFetchCountMatchesInstCount)
{
    Program p = workloads::buildBenchmark("compress");
    uint64_t fetches = 0;
    Cpu cpu(p);
    cpu.setFetchHook([&fetches](uint32_t, uint32_t bytes) {
        EXPECT_EQ(bytes, 4u);
        ++fetches;
    });
    ExecResult r = cpu.run();
    EXPECT_EQ(fetches, r.instCount);
}

TEST(FetchHooks, CompressedFetchesAreSmallerAndFewerBytes)
{
    Program p = workloads::buildBenchmark("compress");
    compress::CompressorConfig config;
    config.scheme = compress::Scheme::Nibble;
    config.maxEntries = 4680;
    compress::CompressedImage image = compress::compressProgram(p, config);

    uint64_t native_bytes = 0;
    Cpu cpu(p);
    cpu.setFetchHook([&native_bytes](uint32_t, uint32_t bytes) {
        native_bytes += bytes;
    });
    cpu.run();

    uint64_t compressed_bytes = 0;
    CompressedCpu ccpu(image);
    ccpu.setFetchHook([&compressed_bytes](uint32_t, uint32_t bytes) {
        compressed_bytes += bytes;
    });
    ccpu.run();

    // The compressed fetch stream moves strictly fewer bytes for the
    // same execution (the bandwidth argument of the paper's intro).
    EXPECT_LT(compressed_bytes, native_bytes);
}

TEST(FetchHooks, StraddlingCompressedFetchTouchesExactlyTwoLines)
{
    // Variable-size compressed items land at arbitrary byte offsets, so
    // some fetches straddle a cache-line boundary. Each such fetch must
    // count as exactly two line touches -- no more, no less -- and the
    // cache's access count must equal the sum of per-fetch line spans.
    Program p = workloads::buildBenchmark("compress");
    compress::CompressorConfig config;
    config.scheme = compress::Scheme::Nibble;
    compress::CompressedImage image = compress::compressProgram(p, config);

    constexpr uint32_t line = 32;
    ICache cache({2048, line, 2});
    uint64_t expected_touches = 0;
    uint64_t straddles = 0;
    CompressedCpu cpu(image);
    cpu.setFetchHook([&](uint32_t addr, uint32_t bytes) {
        ASSERT_GE(bytes, 1u);
        ASSERT_LE(bytes, line); // an item never covers three lines
        uint32_t lines = (addr + bytes - 1) / line - addr / line + 1;
        ASSERT_LE(lines, 2u);
        straddles += lines == 2;
        expected_touches += lines;
        cache.access(addr, bytes);
    });
    cpu.run();
    EXPECT_GT(straddles, 0u);
    EXPECT_EQ(cache.stats().accesses, expected_touches);
}

TEST(FetchHooks, CompressedCodeMissesLessInSmallCache)
{
    Program p = workloads::buildBenchmark("go");
    compress::CompressorConfig config;
    config.scheme = compress::Scheme::Nibble;
    config.maxEntries = 4680;
    compress::CompressedImage image = compress::compressProgram(p, config);

    CacheConfig geometry{2048, 32, 1};
    ICache native(geometry);
    Cpu cpu(p);
    cpu.setFetchHook([&native](uint32_t addr, uint32_t bytes) {
        native.access(addr, bytes);
    });
    cpu.run();

    ICache compressed(geometry);
    CompressedCpu ccpu(image);
    ccpu.setFetchHook([&compressed](uint32_t addr, uint32_t bytes) {
        compressed.access(addr, bytes);
    });
    ccpu.run();

    EXPECT_LT(compressed.stats().missRate(), native.stats().missRate());
}

} // namespace
