/**
 * @file
 * Corruption-hardening tests: any damaged compressed image must be
 * rejected at load with a typed error or trapped by a machine check
 * during execution -- never abort the process, never silently diverge.
 *
 * The small-image suites are exhaustive (every truncation boundary,
 * every bit position); the benchmark suites sample mutants from the
 * seeded generator that also powers `ccverify --corrupt`.
 */

#include <gtest/gtest.h>

#include "codegen/codegen.hh"
#include "compress/compressor.hh"
#include "compress/objfile.hh"
#include "decompress/compressed_cpu.hh"
#include "decompress/cpu.hh"
#include "support/rng.hh"
#include "support/serialize.hh"
#include "verify/fault.hh"
#include "workloads/workloads.hh"

using namespace codecomp;
using namespace codecomp::compress;

namespace {

constexpr uint64_t kMaxSteps = 1ull << 24;

const std::vector<Scheme> kSchemes = allSchemes();

/** A few dozen instructions plus the runtime; keeps exhaustive sweeps
 *  over every byte/bit of the serialized image cheap. */
Program
smallProgram()
{
    return codegen::compile(R"(
        int table[8];
        int fill(int n) {
            int i;
            for (i = 0; i < 8; i = i + 1) table[i] = i * n + 1;
            return table[n & 7];
        }
        int main() {
            int r = fill(3) + fill(6);
            puti(r);
            return r & 127;
        }
    )");
}

CompressedImage
makeImage(const Program &program, Scheme scheme)
{
    CompressorConfig config;
    config.scheme = scheme;
    return compressProgram(program, config);
}

// ---------------- typed loader errors ----------------

TEST(CorruptionLoader, HeaderDamageYieldsTypedStatuses)
{
    Program program = smallProgram();
    std::vector<uint8_t> good = saveImage(makeImage(program, Scheme::Nibble));
    ASSERT_TRUE(tryLoadImage(good).ok());

    std::vector<uint8_t> bad = good;
    bad[0] ^= 0xff; // magic
    Result<CompressedImage> r = tryLoadImage(bad);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().status, LoadStatus::BadMagic);
    EXPECT_EQ(r.error().offset, 0u);

    bad = good;
    bad[7] ^= 0x40; // version word
    r = tryLoadImage(bad);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().status, LoadStatus::BadVersion);
    EXPECT_EQ(r.error().offset, 4u);

    bad = good;
    bad[good.size() / 2] ^= 0x01; // payload byte
    r = tryLoadImage(bad);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().status, LoadStatus::BadChecksum);

    bad = good;
    bad[12] ^= 0x01; // the stored checksum itself
    r = tryLoadImage(bad);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().status, LoadStatus::BadChecksum);

    bad = good;
    bad.push_back(0);
    r = tryLoadImage(bad);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().status, LoadStatus::TrailingBytes);

    bad.assign(good.begin(), good.begin() + 3);
    r = tryLoadImage(bad);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().status, LoadStatus::Truncated);

    r = tryLoadImage(std::vector<uint8_t>{});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().status, LoadStatus::Truncated);

    // A .ccp is not a .cci and vice versa, with a typed magic error.
    std::vector<uint8_t> prog_bytes = saveProgram(program);
    r = tryLoadImage(prog_bytes);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().status, LoadStatus::BadMagic);
    Result<Program> p = tryLoadProgram(good);
    ASSERT_FALSE(p.ok());
    EXPECT_EQ(p.error().status, LoadStatus::BadMagic);

    // The throwing wrapper carries the same typed error.
    bad = good;
    bad[0] ^= 0xff;
    try {
        loadImage(bad);
        FAIL() << "loadImage accepted a bad magic";
    } catch (const LoadFailure &failure) {
        EXPECT_EQ(failure.error().status, LoadStatus::BadMagic);
        EXPECT_NE(std::string(failure.what()).find("magic"),
                  std::string::npos);
    }
}

TEST(CorruptionLoader, ValidatorEnforcesEntryAndRankCeilings)
{
    Program program = smallProgram();
    for (Scheme scheme : kSchemes) {
        CompressedImage image = makeImage(program, scheme);
        ASSERT_FALSE(validateImage(image).has_value());
        ASSERT_FALSE(image.entriesByRank.empty());
        isa::Word legal = image.entriesByRank[0][0];

        // An entry longer than the format ceiling.
        CompressedImage mutant = image;
        mutant.entriesByRank[0].assign(maxImageEntryWords + 1, legal);
        std::optional<LoadError> error = validateImage(mutant);
        ASSERT_TRUE(error.has_value()) << schemeName(scheme);
        EXPECT_EQ(error->status, LoadStatus::BadValue);

        // An empty entry.
        mutant = image;
        mutant.entriesByRank[0].clear();
        error = validateImage(mutant);
        ASSERT_TRUE(error.has_value()) << schemeName(scheme);
        EXPECT_EQ(error->status, LoadStatus::BadValue);

        // More dictionary entries than the scheme has codewords.
        mutant = image;
        mutant.entriesByRank.resize(schemeParams(scheme).maxCodewords + 1,
                                    {legal});
        error = validateImage(mutant);
        ASSERT_TRUE(error.has_value()) << schemeName(scheme);
        EXPECT_EQ(error->status, LoadStatus::BadValue);

        // Stream codewords naming ranks past the end of the dictionary.
        mutant = image;
        mutant.entriesByRank.clear();
        error = validateImage(mutant);
        ASSERT_TRUE(error.has_value()) << schemeName(scheme);
        EXPECT_EQ(error->status, LoadStatus::BadValue);

        // An illegal instruction inside an entry.
        mutant = image;
        mutant.entriesByRank[0][0] = 0;
        error = validateImage(mutant);
        ASSERT_TRUE(error.has_value()) << schemeName(scheme);
        EXPECT_EQ(error->status, LoadStatus::BadValue);

        // The serialized loader applies the same validation.
        mutant = image;
        mutant.entriesByRank[0][0] = 0;
        Result<CompressedImage> loaded = tryLoadImage(saveImage(mutant));
        ASSERT_FALSE(loaded.ok()) << schemeName(scheme);
        EXPECT_EQ(loaded.error().status, LoadStatus::BadValue);
    }
}

// ---------------- exhaustive byte-level sweeps ----------------

TEST(CorruptionTruncation, EveryPrefixOfSmallImageIsRejected)
{
    Program program = smallProgram();
    for (Scheme scheme : kSchemes) {
        std::vector<uint8_t> good = saveImage(makeImage(program, scheme));
        ASSERT_TRUE(tryLoadImage(good).ok());
        for (size_t len = 0; len < good.size(); ++len) {
            std::vector<uint8_t> prefix(good.begin(),
                                        good.begin() +
                                            static_cast<long>(len));
            Result<CompressedImage> r = tryLoadImage(prefix);
            ASSERT_FALSE(r.ok()) << schemeName(scheme) << " truncated to "
                                 << len << " of " << good.size()
                                 << " bytes was accepted";
        }
    }
}

TEST(CorruptionBitFlip, EveryBitOfSmallImageIsRejected)
{
    // A single flipped bit always leaves the file distinguishable from
    // the original, so every one of these mutants must be refused at
    // load -- trapping later would already be too lenient.
    Program program = smallProgram();
    for (Scheme scheme : kSchemes) {
        std::vector<uint8_t> good = saveImage(makeImage(program, scheme));
        for (size_t byte = 0; byte < good.size(); ++byte) {
            for (int bit = 0; bit < 8; ++bit) {
                std::vector<uint8_t> mutant = good;
                mutant[byte] ^= static_cast<uint8_t>(1u << bit);
                Result<CompressedImage> r = tryLoadImage(mutant);
                ASSERT_FALSE(r.ok())
                    << schemeName(scheme) << " accepted a flip of byte "
                    << byte << " bit " << bit;
            }
        }
    }
}

// ---------------- seeded sampling on a large workload ----------------

TEST(CorruptionSampled, SeededByteMutantsOnGccAreContained)
{
    Program program = workloads::buildBenchmark("gcc");
    CompressedImage image = makeImage(program, Scheme::Nibble);
    std::vector<uint8_t> bytes = saveImage(image);
    ExecResult expected = runCompressed(image, kMaxSteps);

    Rng rng(0x5eed2026);
    constexpr verify::CorruptionKind kinds[] = {
        verify::CorruptionKind::BitFlip, verify::CorruptionKind::Truncate,
        verify::CorruptionKind::Splice, verify::CorruptionKind::LengthLie};
    for (int i = 0; i < 240; ++i) {
        std::string description;
        std::vector<uint8_t> mutant =
            verify::corruptBytes(bytes, kinds[i % 4], rng, description);
        verify::MutantReport report = verify::classifyMutantBytes(
            mutant, expected, kMaxSteps, description);
        EXPECT_TRUE(report.acceptable())
            << report.description << ": "
            << verify::mutantOutcomeName(report.outcome) << "\n"
            << report.detail;
    }
}

// ---------------- structural mutants ----------------

TEST(CorruptionStructural, MutantsRejectOrTrap)
{
    // The compress benchmark carries jump tables, so the mutant set
    // includes redirected code pointers that pass validation and must
    // machine-check at run time.
    Program program = workloads::buildBenchmark("compress");
    for (Scheme scheme : kSchemes) {
        CompressedImage image = makeImage(program, scheme);
        ExecResult expected = runCompressed(image, kMaxSteps);
        std::vector<verify::StructuralMutant> mutants =
            verify::structuralMutants(program, image);
        ASSERT_GT(mutants.size(), 4u) << schemeName(scheme);

        size_t rejected = 0, trapped = 0;
        for (const verify::StructuralMutant &mutant : mutants) {
            verify::MutantReport report = verify::classifyMutantImage(
                mutant.image, expected, kMaxSteps, mutant.description);
            EXPECT_TRUE(report.acceptable())
                << schemeName(scheme) << ": " << report.description
                << ": " << verify::mutantOutcomeName(report.outcome)
                << "\n" << report.detail;
            rejected += report.outcome == verify::MutantOutcome::LoadRejected;
            trapped += report.outcome == verify::MutantOutcome::Trapped;
        }
        // Both defense layers are exercised: the validator refuses the
        // structurally-invalid images, and the redirected jump tables
        // get through to a machine check.
        EXPECT_GT(rejected, 0u) << schemeName(scheme);
        EXPECT_GT(trapped, 0u) << schemeName(scheme);
    }
}

// ---------------- whole-campaign behavior ----------------

TEST(CorruptionCampaign, SmokeAcrossSchemes)
{
    Program program = workloads::buildBenchmark("compress");
    for (Scheme scheme : kSchemes) {
        CompressedImage image = makeImage(program, scheme);
        verify::CorruptionCampaign campaign =
            verify::runCorruptionCampaign(program, image, 60, 2026,
                                          kMaxSteps);
        EXPECT_TRUE(campaign.ok()) << schemeName(scheme) << ": "
                                   << campaign.failures.size()
                                   << " failures";
        EXPECT_GE(campaign.total, 60u);
        EXPECT_GT(campaign.loadRejected, 0u);
        EXPECT_EQ(campaign.total, campaign.loadRejected +
                                      campaign.trapped +
                                      campaign.ranIdentical +
                                      campaign.failures.size());
    }
}

TEST(CorruptionCampaign, DeterministicInSeed)
{
    Program program = smallProgram();
    CompressedImage image = makeImage(program, Scheme::Nibble);
    verify::CorruptionCampaign first =
        verify::runCorruptionCampaign(program, image, 40, 7, kMaxSteps);
    verify::CorruptionCampaign second =
        verify::runCorruptionCampaign(program, image, 40, 7, kMaxSteps);
    EXPECT_TRUE(first.ok());
    EXPECT_EQ(first.total, second.total);
    EXPECT_EQ(first.loadRejected, second.loadRejected);
    EXPECT_EQ(first.trapped, second.trapped);
    EXPECT_EQ(first.ranIdentical, second.ranIdentical);
    EXPECT_EQ(first.failures.size(), second.failures.size());
}

} // namespace
