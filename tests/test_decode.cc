/**
 * @file
 * Golden-checksum cross-decoder suite (DESIGN.md section 10): the
 * table-driven fast scan must be bit-for-bit interchangeable with the
 * reference nibble-at-a-time decoder. Three layers of proof:
 *
 *  - DecodeTable: every codeword rank and instruction word round-trips
 *    through both decodeCodeword implementations with identical results
 *    and cursor positions; peekItemNibbles agrees on every truncation.
 *  - DecodeGolden: every workload x scheme x strategy builds two
 *    engines (Fast, Reference) whose item tables compare equal and
 *    whose expanded-instruction-stream FNV-1a64 digests match.
 *  - DecodeCache: the pre-decoded dictionary entries equal a fresh
 *    isa::decode of the raw entry words, rank for rank.
 *
 * These tests carry the `decode` ctest label; ccverify --checksum runs
 * the same engine-vs-engine comparison as an end-to-end tool check.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "compress/compressor.hh"
#include "compress/encoding.hh"
#include "decompress/engine.hh"
#include "decompress/fault.hh"
#include "isa/builder.hh"
#include "isa/inst.hh"
#include "workloads/workloads.hh"

using namespace codecomp;
using namespace codecomp::compress;

namespace {

const std::vector<Scheme> testedSchemes = allSchemes();

/** A handful of real (legal-opcode) instruction words, so the escape
 *  rule genuinely distinguishes them from codewords. */
std::vector<isa::Word>
sampleWords()
{
    return {
        isa::encode(isa::li(3, 1)),
        isa::encode(isa::addi(3, 3, 1)),
        isa::encode(isa::lis(4, 1)),
        isa::encode(isa::ori(4, 4, 6)),
        isa::encode(isa::mtlr(4)),
        isa::encode(isa::sc()),
    };
}

// ---------------- table vs reference, exhaustively ----------------

TEST(DecodeTableCodewords, EveryRankMatchesReferenceDecoder)
{
    for (Scheme scheme : testedSchemes) {
        unsigned max = schemeParams(scheme).maxCodewords;
        for (uint32_t rank = 0; rank < max; ++rank) {
            NibbleWriter writer;
            emitCodeword(writer, scheme, rank);
            ASSERT_EQ(writer.nibbleCount(),
                      codewordNibbles(scheme, rank));

            NibbleReader fast(writer.bytes().data(),
                              writer.nibbleCount());
            NibbleReader reference(writer.bytes().data(),
                                   writer.nibbleCount());
            auto fast_rank = decodeCodeword(fast, scheme);
            auto reference_rank =
                referenceDecodeCodeword(reference, scheme);
            ASSERT_TRUE(fast_rank.has_value())
                << schemeCliName(scheme) << " rank " << rank;
            ASSERT_TRUE(reference_rank.has_value());
            ASSERT_EQ(*fast_rank, rank);
            ASSERT_EQ(*fast_rank, *reference_rank);
            ASSERT_EQ(fast.pos(), reference.pos());
            ASSERT_TRUE(fast.atEnd());
        }
    }
}

TEST(DecodeTableInstructions, RawWordsMatchReferenceDecoder)
{
    for (Scheme scheme : testedSchemes) {
        for (isa::Word word : sampleWords()) {
            NibbleWriter writer;
            emitInstruction(writer, scheme, word);

            NibbleReader fast(writer.bytes().data(),
                              writer.nibbleCount());
            NibbleReader reference(writer.bytes().data(),
                                   writer.nibbleCount());
            auto fast_rank = decodeCodeword(fast, scheme);
            auto reference_rank =
                referenceDecodeCodeword(reference, scheme);
            ASSERT_FALSE(fast_rank.has_value())
                << schemeCliName(scheme) << " word " << std::hex << word;
            ASSERT_FALSE(reference_rank.has_value());
            // Both decoders leave the cursor at the start of the word
            // (past any escape), so getWord() recovers it.
            ASSERT_EQ(fast.pos(), reference.pos());
            ASSERT_EQ(fast.getWord(), word);
        }
    }
}

TEST(DecodeTablePeek, AgreesWithReferenceOnEveryTruncation)
{
    // A stream holding one of everything, then every truncated prefix
    // of it: peek must classify identically to the reference,
    // including the "stream cannot hold the whole item" nullopt.
    for (Scheme scheme : testedSchemes) {
        NibbleWriter writer;
        unsigned max = schemeParams(scheme).maxCodewords;
        for (uint32_t rank : {0u, 1u, 7u, 31u, max - 1})
            emitCodeword(writer, scheme, rank % max);
        for (isa::Word word : sampleWords())
            emitInstruction(writer, scheme, word);

        for (size_t len = 0; len <= writer.nibbleCount(); ++len) {
            NibbleReader fast(writer.bytes().data(), len);
            NibbleReader reference(writer.bytes().data(), len);
            auto fast_peek = peekItemNibbles(fast, scheme);
            auto reference_peek =
                referencePeekItemNibbles(reference, scheme);
            ASSERT_EQ(fast_peek, reference_peek)
                << schemeCliName(scheme) << " truncated to " << len
                << " nibbles";
        }
    }
}

TEST(DecodeTableShape, TablesCoverEveryPrefixConsistently)
{
    for (Scheme scheme : testedSchemes) {
        const DecodeTables &tables = decodeTables(scheme);
        unsigned prefix_values = 1u << (4 * tables.prefixNibbles);
        ASSERT_LE(prefix_values, tables.classes.size());
        for (unsigned prefix = 0; prefix < prefix_values; ++prefix) {
            const ItemClass &cls = tables.classes[prefix];
            // An item is never shorter than its prefix, and the fast
            // scan's 64-bit window must always hold it.
            EXPECT_GE(cls.nibbles, tables.prefixNibbles);
            EXPECT_LE(cls.nibbles, 9u);
            EXPECT_LE(tables.prefixNibbles + cls.indexNibbles,
                      cls.nibbles);
            if (cls.isCodeword) {
                EXPECT_EQ(cls.rewindNibbles, 0u);
                // The class's rank range stays inside the scheme.
                uint32_t top = cls.rankBase +
                               (1u << (4 * cls.indexNibbles)) - 1;
                EXPECT_LT(top, schemeParams(scheme).maxCodewords);
            } else {
                EXPECT_EQ(cls.indexNibbles, 0u);
                EXPECT_LE(cls.rewindNibbles, tables.prefixNibbles);
            }
        }
    }
}

// ---------------- golden checksums over the full suite ----------------

class DecodeGolden
    : public ::testing::TestWithParam<
          std::tuple<std::string, Scheme, StrategyKind>>
{};

TEST_P(DecodeGolden, FastAndReferenceEnginesAgree)
{
    const auto &[name, scheme, strategy] = GetParam();
    Program p = workloads::buildBenchmark(name);
    CompressorConfig config;
    config.scheme = scheme;
    config.strategy = strategy;
    CompressedImage image = compressProgram(p, config);

    DecompressionEngine fast(image, DecodePath::Fast);
    DecompressionEngine reference(image, DecodePath::Reference);
    ASSERT_EQ(fast.path(), DecodePath::Fast);
    ASSERT_EQ(reference.path(), DecodePath::Reference);

    ASSERT_EQ(fast.items().size(), reference.items().size());
    EXPECT_EQ(fast.items(), reference.items());
    EXPECT_EQ(fast.expandedStreamDigest(),
              reference.expandedStreamDigest());
    // The digest covers the whole expanded program: one word per
    // retired slot, so it must differ from the empty-stream offset.
    EXPECT_NE(fast.expandedStreamDigest(), 14695981039346656037ull);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, DecodeGolden,
    ::testing::Combine(
        ::testing::ValuesIn(workloads::benchmarkNames()),
        ::testing::ValuesIn(allSchemes()),
        ::testing::Values(StrategyKind::Greedy,
                          StrategyKind::IterativeRefit)),
    [](const auto &info) {
        return std::get<0>(info.param) + "_" +
               schemeCliName(std::get<1>(info.param)) +
               (std::get<2>(info.param) == StrategyKind::Greedy
                    ? "_greedy"
                    : "_refit");
    });

// ---------------- both paths fault identically ----------------

/** Outcome of an engine construction: the item count and digest, or
 *  the machine-check's kind/address/message. */
std::string
scanOutcome(const CompressedImage &image, DecodePath path)
{
    try {
        DecompressionEngine engine(image, path);
        return "ok items=" + std::to_string(engine.items().size()) +
               " digest=" +
               std::to_string(engine.expandedStreamDigest());
    } catch (const MachineCheckError &error) {
        return std::string("fault ") + std::to_string(
                   static_cast<int>(error.fault())) +
               " @" + std::to_string(error.addr()) + ": " +
               error.what();
    }
}

TEST(DecodeTableFaults, TruncatedStreamsFaultIdenticallyOnBothPaths)
{
    // Shave trailing nibbles off a real image: whatever each
    // truncation does (clean scan when it lands on an item boundary,
    // BadCodeword mid-item), both paths must do it bit-for-bit.
    Program p = workloads::buildBenchmark("compress");
    for (Scheme scheme : testedSchemes) {
        CompressorConfig config;
        config.scheme = scheme;
        CompressedImage image = compressProgram(p, config);
        for (size_t cut = 1; cut <= 9 && cut < image.textNibbles;
             ++cut) {
            CompressedImage mutant = image;
            mutant.textNibbles -= cut;
            EXPECT_EQ(scanOutcome(mutant, DecodePath::Fast),
                      scanOutcome(mutant, DecodePath::Reference))
                << schemeCliName(scheme) << " cut " << cut;
        }
    }
}

TEST(DecodeTableFaults, OutOfRangeRankFaultsIdenticallyOnBothPaths)
{
    // Shrink the dictionary under a valid stream so some codeword's
    // rank dangles; both scans must report the same DictIndexOutOfRange.
    Program p = workloads::buildBenchmark("li");
    for (Scheme scheme : testedSchemes) {
        CompressorConfig config;
        config.scheme = scheme;
        CompressedImage image = compressProgram(p, config);
        ASSERT_GT(image.entriesByRank.size(), 1u);
        CompressedImage mutant = image;
        mutant.entriesByRank.resize(1);
        std::string fast = scanOutcome(mutant, DecodePath::Fast);
        EXPECT_EQ(fast, scanOutcome(mutant, DecodePath::Reference));
        EXPECT_NE(fast.find("beyond dictionary"), std::string::npos)
            << schemeCliName(scheme) << ": " << fast;
    }
}

// ---------------- pre-decoded entry cache ----------------

TEST(DecodeCache, PredecodedEntriesMatchFreshDecode)
{
    Program p = workloads::buildBenchmark("go");
    for (Scheme scheme : testedSchemes) {
        CompressorConfig config;
        config.scheme = scheme;
        CompressedImage image = compressProgram(p, config);
        DecompressionEngine engine(image);
        ASSERT_FALSE(image.entriesByRank.empty());
        for (uint32_t rank = 0; rank < image.entriesByRank.size();
             ++rank) {
            const std::vector<isa::Word> &words =
                image.entriesByRank[rank];
            DecodedEntry cached = engine.decodedEntry(rank);
            ASSERT_EQ(cached.size(), words.size());
            for (size_t slot = 0; slot < words.size(); ++slot)
                EXPECT_EQ(cached[slot], isa::decode(words[slot]))
                    << schemeCliName(scheme) << " rank " << rank
                    << " slot " << slot;
        }
    }
}

TEST(DecodeCache, BothPathsBuildTheSameCache)
{
    Program p = workloads::buildBenchmark("gcc");
    CompressorConfig config;
    config.scheme = Scheme::Nibble;
    CompressedImage image = compressProgram(p, config);
    DecompressionEngine fast(image, DecodePath::Fast);
    DecompressionEngine reference(image, DecodePath::Reference);
    for (uint32_t rank = 0; rank < image.entriesByRank.size(); ++rank)
        ASSERT_EQ(fast.decodedEntry(rank), reference.decodedEntry(rank));
}

} // namespace
