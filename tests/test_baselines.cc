/**
 * @file
 * Tests for the comparator implementations: Huffman coding, LZW
 * (compress(1)-style), CCRP, and Liao's call-dictionary methods.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/ccrp.hh"
#include "baselines/huffman.hh"
#include "baselines/liao.hh"
#include "baselines/lzw.hh"
#include "support/rng.hh"
#include "workloads/workloads.hh"

using namespace codecomp;
using namespace codecomp::baselines;

namespace {

std::vector<uint8_t>
randomBytes(uint64_t seed, size_t n, unsigned alphabet)
{
    Rng rng(seed);
    std::vector<uint8_t> bytes(n);
    for (auto &byte : bytes)
        byte = static_cast<uint8_t>(rng.below(alphabet));
    return bytes;
}

// ---------------- Huffman ----------------

TEST(Huffman, RoundTripSkewedAlphabet)
{
    std::vector<uint8_t> data = randomBytes(5, 4096, 16);
    HuffmanCode code = HuffmanCode::build(byteFrequencies(data));

    BitWriter writer;
    for (uint8_t byte : data)
        code.encode(writer, byte);
    EXPECT_EQ(writer.bitCount(), code.measure(data));

    BitReader reader(writer.bytes().data(), writer.bitCount());
    for (uint8_t byte : data)
        ASSERT_EQ(code.decode(reader), byte);
}

TEST(Huffman, SingleSymbolDegenerate)
{
    std::array<uint64_t, 256> freq{};
    freq['x'] = 100;
    HuffmanCode code = HuffmanCode::build(freq);
    EXPECT_EQ(code.length('x'), 1u);
    BitWriter writer;
    code.encode(writer, 'x');
    code.encode(writer, 'x');
    BitReader reader(writer.bytes().data(), writer.bitCount());
    EXPECT_EQ(code.decode(reader), 'x');
    EXPECT_EQ(code.decode(reader), 'x');
}

TEST(Huffman, FrequentSymbolsGetShorterCodes)
{
    std::array<uint64_t, 256> freq{};
    freq[0] = 1000;
    freq[1] = 100;
    freq[2] = 10;
    freq[3] = 1;
    HuffmanCode code = HuffmanCode::build(freq);
    EXPECT_LE(code.length(0), code.length(1));
    EXPECT_LE(code.length(1), code.length(2));
    EXPECT_LE(code.length(2), code.length(3));
}

TEST(Huffman, KraftInequalityHolds)
{
    std::vector<uint8_t> data = randomBytes(11, 20000, 256);
    HuffmanCode code = HuffmanCode::build(byteFrequencies(data));
    double kraft = 0;
    for (unsigned s = 0; s < 256; ++s)
        if (code.length(static_cast<uint8_t>(s)) > 0)
            kraft += std::pow(
                2.0, -double(code.length(static_cast<uint8_t>(s))));
    EXPECT_NEAR(kraft, 1.0, 1e-9); // complete code
}

/** Property sweep: Huffman never beats entropy, never exceeds 8n. */
class HuffmanProperty : public ::testing::TestWithParam<unsigned>
{};

TEST_P(HuffmanProperty, BoundsAndRoundTrip)
{
    std::vector<uint8_t> data = randomBytes(GetParam(), 4096,
                                            2 + GetParam() * 17 % 254);
    HuffmanCode code = HuffmanCode::build(byteFrequencies(data));
    auto freq = byteFrequencies(data);
    double entropy_bits = 0;
    for (unsigned s = 0; s < 256; ++s) {
        if (freq[s] == 0)
            continue;
        double p = static_cast<double>(freq[s]) / data.size();
        entropy_bits += freq[s] * -std::log2(p);
    }
    uint64_t coded = code.measure(data);
    EXPECT_GE(static_cast<double>(coded), entropy_bits - 1e-6);
    EXPECT_LE(coded, data.size() * 8 + 256);

    BitWriter writer;
    for (uint8_t byte : data)
        code.encode(writer, byte);
    BitReader reader(writer.bytes().data(), writer.bitCount());
    for (uint8_t byte : data)
        ASSERT_EQ(code.decode(reader), byte);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HuffmanProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ---------------- LZW ----------------

TEST(Lzw, RoundTripEmpty)
{
    std::vector<uint8_t> empty;
    EXPECT_EQ(lzwDecompress(lzwCompress(empty)), empty);
}

TEST(Lzw, RoundTripTiny)
{
    std::vector<uint8_t> one = {42};
    EXPECT_EQ(lzwDecompress(lzwCompress(one)), one);
    std::vector<uint8_t> two = {1, 1};
    EXPECT_EQ(lzwDecompress(lzwCompress(two)), two);
}

TEST(Lzw, RoundTripKwKwK)
{
    // The classic corner case: aaaa... forces the code-defined-but-
    // not-yet-materialized path.
    std::vector<uint8_t> data(100, 'a');
    EXPECT_EQ(lzwDecompress(lzwCompress(data)), data);
}

TEST(Lzw, CompressesRepetitiveData)
{
    std::vector<uint8_t> data;
    for (int i = 0; i < 1000; ++i)
        for (uint8_t byte : {1, 2, 3, 4, 5, 6, 7, 8})
            data.push_back(byte);
    std::vector<uint8_t> compressed = lzwCompress(data);
    EXPECT_LT(compressed.size(), data.size() / 4);
    EXPECT_EQ(lzwDecompress(compressed), data);
}

class LzwProperty : public ::testing::TestWithParam<unsigned>
{};

TEST_P(LzwProperty, RoundTripRandom)
{
    // Vary alphabet size and length; crossing the 9->10->11 bit
    // width boundaries matters (4096+ entries needs length >> 4096).
    std::vector<uint8_t> data = randomBytes(
        GetParam(), 2000 + GetParam() * 7919, 2 + (GetParam() * 31) % 254);
    EXPECT_EQ(lzwDecompress(lzwCompress(data)), data);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LzwProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Lzw, RoundTripFuzzAtWidthWideningBoundary)
{
    // With a full byte alphabet nearly every input byte inserts a
    // dictionary entry, so the 256th insertion -- where the code width
    // widens from 9 to 10 bits -- lands around byte 257. Lengths on
    // both sides of that point put the final emitted code (written
    // after the loop, at whatever width the last insertion left) just
    // before, exactly at, and just after the widening.
    for (uint64_t seed = 1; seed <= 8; ++seed)
        for (size_t n = 248; n <= 268; n += 2) {
            std::vector<uint8_t> data =
                randomBytes(seed * 977 + n, n, 256);
            ASSERT_EQ(lzwDecompress(lzwCompress(data)), data)
                << "seed " << seed << " length " << n;
        }
}

TEST(Lzw, RoundTripFuzzAtTableFreezeBoundary)
{
    // The table freezes at 2^16 codes; for uniform random bytes that
    // happens near byte 89k (insertions slow as matches lengthen).
    // These lengths end the input just before the freeze, around it,
    // and well after -- in the frozen regime the decoder must stop
    // allocating pending entries in the same step the encoder does,
    // or every later code is off by the number of missed stalls.
    for (uint64_t seed = 1; seed <= 2; ++seed)
        for (size_t n : {87000u, 89500u, 92000u, 120000u}) {
            std::vector<uint8_t> data = randomBytes(seed, n, 256);
            ASSERT_EQ(lzwDecompress(lzwCompress(data)), data)
                << "seed " << seed << " length " << n;
        }
}

TEST(Lzw, RoundTripRealProgram)
{
    Program p = workloads::buildBenchmark("compress");
    std::vector<uint8_t> bytes;
    for (isa::Word w : p.text) {
        bytes.push_back(static_cast<uint8_t>(w >> 24));
        bytes.push_back(static_cast<uint8_t>(w >> 16));
        bytes.push_back(static_cast<uint8_t>(w >> 8));
        bytes.push_back(static_cast<uint8_t>(w));
    }
    std::vector<uint8_t> compressed = lzwCompress(bytes);
    EXPECT_LT(compressed.size(), bytes.size());
    EXPECT_EQ(lzwDecompress(compressed), bytes);
}

// ---------------- CCRP ----------------

TEST(Ccrp, CompressesAndAccountsOverheads)
{
    Program p = workloads::buildBenchmark("ijpeg");
    CcrpResult result = ccrpCompress(p);
    EXPECT_EQ(result.originalBytes, p.textBytes());
    EXPECT_LT(result.compressionRatio(), 1.0);
    EXPECT_GT(result.compressedLineBytes, 0u);
    size_t lines = (result.originalBytes + 31) / 32;
    EXPECT_EQ(result.latBytes, lines * 4);
    EXPECT_EQ(result.tableBytes, 256u);
}

TEST(Ccrp, LargerLinesCompressBetter)
{
    // Byte-rounding overhead amortizes over longer lines.
    Program p = workloads::buildBenchmark("li");
    CcrpResult small = ccrpCompress(p, 16);
    CcrpResult big = ccrpCompress(p, 64);
    EXPECT_LT(big.compressionRatio(), small.compressionRatio());
}

// ---------------- Liao ----------------

TEST(Liao, HardwareMethodCompresses)
{
    Program p = workloads::buildBenchmark("li");
    LiaoConfig config;
    LiaoResult result = liaoCompress(p, config);
    EXPECT_LT(result.compressionRatio(), 1.0);
    EXPECT_GT(result.entries, 0u);
    EXPECT_GT(result.replacements, result.entries);
}

TEST(Liao, TwoWordCodewordsRequireLongerEntries)
{
    Program p = workloads::buildBenchmark("li");
    LiaoConfig one;
    LiaoConfig two;
    two.codewordWords = 2;
    LiaoResult r1 = liaoCompress(p, one);
    LiaoResult r2 = liaoCompress(p, two);
    // Wider codewords compress strictly worse here: they exclude the
    // short sequences that dominate (the paper's criticism of Liao).
    EXPECT_LT(r1.compressionRatio(), r2.compressionRatio());
}

TEST(Liao, SoftwareMethodHasCallOverhead)
{
    Program p = workloads::buildBenchmark("li");
    LiaoConfig hw;
    LiaoConfig sw;
    sw.softwareMethod = true;
    LiaoResult rh = liaoCompress(p, hw);
    LiaoResult rs = liaoCompress(p, sw);
    EXPECT_LT(rs.compressionRatio(), 1.0);
    // The software method pays an extra return instruction per entry;
    // with the same codeword size it cannot beat call-dictionary.
    EXPECT_LE(rh.compressionRatio(), rs.compressionRatio());
}

} // namespace
