/**
 * @file
 * Instruction-semantics unit tests for the Machine data path and the
 * plain Cpu fetch loop: arithmetic, logic, shifts, rotates, memory
 * byte order, condition register behaviour, branches, calls, and
 * syscalls -- each checked against hand-computed values.
 */

#include <gtest/gtest.h>

#include <optional>

#include "decompress/cpu.hh"
#include "decompress/fault.hh"
#include "decompress/machine.hh"
#include "isa/builder.hh"

using namespace codecomp;
namespace isa = codecomp::isa;

namespace {

/** Fault kind raised by @p fn, or nullopt if it completes. */
template <typename Fn>
std::optional<MachineFault>
faultKind(Fn &&fn)
{
    try {
        fn();
    } catch (const MachineCheckError &error) {
        return error.fault();
    }
    return std::nullopt;
}

/** Run instructions on a bare machine (no branches allowed). */
Machine
exec(std::initializer_list<isa::Inst> insns)
{
    Machine machine;
    for (const isa::Inst &inst : insns)
        machine.execute(inst);
    return machine;
}

TEST(MachineAlu, AddSubNeg)
{
    Machine m = exec({isa::li(3, 7), isa::li(4, -9), isa::add(5, 3, 4),
                      isa::subf(6, 4, 3), isa::neg(7, 3)});
    EXPECT_EQ(m.gpr(5), static_cast<uint32_t>(-2));
    EXPECT_EQ(m.gpr(6), 16u); // 7 - (-9)
    EXPECT_EQ(m.gpr(7), static_cast<uint32_t>(-7));
}

TEST(MachineAlu, AddiWithR0ReadsZero)
{
    Machine m = exec({isa::li(0, 123), isa::li(3, 0), isa::addi(4, 0, 5)});
    // addi with ra=0 ignores r0's contents.
    EXPECT_EQ(m.gpr(4), 5u);
}

TEST(MachineAlu, AddisAndOris)
{
    Machine m = exec({isa::lis(3, 0x1234), isa::ori(3, 3, 0x5678),
                      isa::lis(4, -1), isa::oris(5, 3, 0xff00)});
    EXPECT_EQ(m.gpr(3), 0x12345678u);
    EXPECT_EQ(m.gpr(4), 0xffff0000u);
    EXPECT_EQ(m.gpr(5), 0xff345678u);
}

TEST(MachineAlu, MulDivMod)
{
    Machine m = exec({isa::li(3, -6), isa::li(4, 4), isa::mullw(5, 3, 4),
                      isa::divw(6, 3, 4), isa::mulli(7, 3, -3)});
    EXPECT_EQ(static_cast<int32_t>(m.gpr(5)), -24);
    EXPECT_EQ(static_cast<int32_t>(m.gpr(6)), -1); // trunc toward zero
    EXPECT_EQ(static_cast<int32_t>(m.gpr(7)), 18);
}

TEST(MachineAlu, DivisionEdgeCasesPinned)
{
    Machine m = exec({isa::li(3, 5), isa::li(4, 0), isa::divw(5, 3, 4),
                      isa::lis(6, -32768), isa::li(7, -1),
                      isa::divw(8, 6, 7)});
    EXPECT_EQ(m.gpr(5), 0u); // x/0 == 0 by definition here
    EXPECT_EQ(m.gpr(8), 0u); // INT_MIN / -1 == 0 by definition here
}

TEST(MachineAlu, LogicOps)
{
    Machine m = exec({isa::li(3, 0b1100), isa::li(4, 0b1010),
                      isa::and_(5, 3, 4), isa::or_(6, 3, 4),
                      isa::xor_(7, 3, 4), isa::andi(8, 3, 0b0110),
                      isa::xori(9, 3, 0xff)});
    EXPECT_EQ(m.gpr(5), 0b1000u);
    EXPECT_EQ(m.gpr(6), 0b1110u);
    EXPECT_EQ(m.gpr(7), 0b0110u);
    EXPECT_EQ(m.gpr(8), 0b0100u);
    EXPECT_EQ(m.gpr(9), 0xf3u);
}

TEST(MachineAlu, ShiftsIncludingOverwideAmounts)
{
    Machine m = exec({isa::li(3, -16), isa::li(4, 2), isa::slw(5, 3, 4),
                      isa::srw(6, 3, 4), isa::sraw(7, 3, 4),
                      isa::li(8, 40), isa::slw(9, 3, 8),
                      isa::sraw(10, 3, 8), isa::srawi(11, 3, 3)});
    EXPECT_EQ(static_cast<int32_t>(m.gpr(5)), -64);
    EXPECT_EQ(m.gpr(6), 0xfffffff0u >> 2);
    EXPECT_EQ(static_cast<int32_t>(m.gpr(7)), -4);
    EXPECT_EQ(m.gpr(9), 0u);  // shift >= 32 -> 0
    EXPECT_EQ(m.gpr(10), 0xffffffffu); // arithmetic >= 32 -> sign
    EXPECT_EQ(static_cast<int32_t>(m.gpr(11)), -2);
}

TEST(MachineAlu, RlwinmMasksAndRotates)
{
    // clrlwi 24: keep low 8 bits.
    Machine m = exec({isa::lis(3, 0x1234), isa::ori(3, 3, 0x56f8),
                      isa::clrlwi(4, 3, 24), isa::slwi(5, 3, 4),
                      isa::srwi(6, 3, 8),
                      isa::rlwinm(7, 3, 8, 24, 31)});
    EXPECT_EQ(m.gpr(4), 0xf8u);
    EXPECT_EQ(m.gpr(5), 0x23456f80u);
    EXPECT_EQ(m.gpr(6), 0x00123456u);
    EXPECT_EQ(m.gpr(7), 0x12u); // rotate left 8, keep low byte
}

TEST(MachineMemory, BigEndianWordHalfByte)
{
    Machine m;
    m.setGpr(3, 0x11223344);
    m.setGpr(4, 0x1000);
    m.execute(isa::stw(3, 0, 4));
    EXPECT_EQ(m.loadByte(0x1000), 0x11u);
    EXPECT_EQ(m.loadByte(0x1003), 0x44u);
    EXPECT_EQ(m.loadHalf(0x1000), 0x1122u);
    EXPECT_EQ(m.loadHalf(0x1002), 0x3344u);
    EXPECT_EQ(m.loadWord(0x1000), 0x11223344u);

    m.execute(isa::lbz(5, 1, 4));
    EXPECT_EQ(m.gpr(5), 0x22u);
    m.execute(isa::lhz(6, 2, 4));
    EXPECT_EQ(m.gpr(6), 0x3344u);
    m.execute(isa::stb(3, 8, 4));
    EXPECT_EQ(m.loadByte(0x1008), 0x44u);
    m.execute(isa::sth(3, 12, 4));
    EXPECT_EQ(m.loadHalf(0x100c), 0x3344u);
}

TEST(MachineMemory, IndexedLoadAndNegativeDisplacement)
{
    Machine m;
    m.storeWord(0x2000, 0xabcd0123);
    m.setGpr(3, 0x1f00);
    m.setGpr(4, 0x100);
    m.execute(isa::lwzx(5, 3, 4));
    EXPECT_EQ(m.gpr(5), 0xabcd0123u);
    m.setGpr(6, 0x2004);
    m.execute(isa::lwz(7, -4, 6));
    EXPECT_EQ(m.gpr(7), 0xabcd0123u);
}

TEST(MachineCr, CompareFieldsIndependent)
{
    Machine m = exec({isa::li(3, 5), isa::li(4, 9), isa::cmp(0, 3, 4),
                      isa::cmp(3, 4, 3), isa::cmpi(7, 3, 5)});
    // cr0: 5 < 9 -> LT
    EXPECT_TRUE(m.evalCond(static_cast<uint8_t>(isa::Bo::IfTrue),
                           isa::crBit(0, isa::CrBit::Lt)));
    // cr3: 9 > 5 -> GT
    EXPECT_TRUE(m.evalCond(static_cast<uint8_t>(isa::Bo::IfTrue),
                           isa::crBit(3, isa::CrBit::Gt)));
    // cr7: 5 == 5 -> EQ
    EXPECT_TRUE(m.evalCond(static_cast<uint8_t>(isa::Bo::IfTrue),
                           isa::crBit(7, isa::CrBit::Eq)));
    EXPECT_FALSE(m.evalCond(static_cast<uint8_t>(isa::Bo::IfTrue),
                            isa::crBit(7, isa::CrBit::Lt)));
}

TEST(MachineCr, SignedVsUnsignedCompare)
{
    Machine m = exec({isa::li(3, -1), isa::li(4, 1), isa::cmp(0, 3, 4),
                      isa::cmpl(1, 3, 4)});
    // Signed: -1 < 1.
    EXPECT_TRUE(m.evalCond(static_cast<uint8_t>(isa::Bo::IfTrue),
                           isa::crBit(0, isa::CrBit::Lt)));
    // Unsigned: 0xffffffff > 1.
    EXPECT_TRUE(m.evalCond(static_cast<uint8_t>(isa::Bo::IfTrue),
                           isa::crBit(1, isa::CrBit::Gt)));
}

TEST(MachineCr, DecNzDecrementsCtr)
{
    Machine m;
    m.setCtr(2);
    EXPECT_TRUE(m.evalCond(static_cast<uint8_t>(isa::Bo::DecNz), 0));
    EXPECT_EQ(m.ctr(), 1u);
    EXPECT_FALSE(m.evalCond(static_cast<uint8_t>(isa::Bo::DecNz), 0));
    EXPECT_EQ(m.ctr(), 0u);
}

TEST(MachineSpr, LrCtrMoves)
{
    Machine m = exec({isa::li(3, 0x4444), isa::mtlr(3), isa::mflr(4),
                      isa::li(5, 9), isa::mtctr(5), isa::mfctr(6)});
    EXPECT_EQ(m.lr(), 0x4444u);
    EXPECT_EQ(m.gpr(4), 0x4444u);
    EXPECT_EQ(m.ctr(), 9u);
    EXPECT_EQ(m.gpr(6), 9u);
}

TEST(MachineSyscall, OutputAndExit)
{
    Machine m;
    m.setGpr(0, static_cast<uint32_t>(isa::Syscall::PutChar));
    m.setGpr(3, 'A');
    m.execute(isa::sc());
    m.setGpr(0, static_cast<uint32_t>(isa::Syscall::PutInt));
    m.setGpr(3, static_cast<uint32_t>(-12));
    m.execute(isa::sc());
    EXPECT_EQ(m.output(), "A-12\n");
    EXPECT_FALSE(m.halted());
    m.setGpr(0, static_cast<uint32_t>(isa::Syscall::Exit));
    m.setGpr(3, 3);
    m.execute(isa::sc());
    EXPECT_TRUE(m.halted());
    EXPECT_EQ(m.exitCode(), 3);
}

TEST(MachineState, HashChangesWithState)
{
    Machine a, b;
    EXPECT_EQ(a.stateHash(), b.stateHash());
    b.setGpr(17, 1);
    EXPECT_NE(a.stateHash(), b.stateHash());
}

TEST(MachineState, MemHashCoversOnlyTheRequestedRange)
{
    Machine a, b;
    b.storeWord(0x1000, 0xdeadbeef);
    EXPECT_NE(a.memHash(0x1000, 0x1004), b.memHash(0x1000, 0x1004));
    // Outside the dirtied word the ranges still hash equal.
    EXPECT_EQ(a.memHash(0, 0x1000), b.memHash(0, 0x1000));
    EXPECT_EQ(a.memHash(0x1004, 0x2000), b.memHash(0x1004, 0x2000));
    // An empty range hashes equal regardless of contents.
    EXPECT_EQ(a.memHash(0x1000, 0x1000), b.memHash(0x1000, 0x1000));
}

TEST(MachineState, StoreHookSeesEveryArchitecturalStore)
{
    Machine m;
    struct Store
    {
        uint32_t addr;
        unsigned bytes;
        uint32_t value;
    };
    std::vector<Store> seen;
    m.setStoreHook([&seen](uint32_t addr, unsigned bytes, uint32_t value) {
        seen.push_back({addr, bytes, value});
    });

    m.setGpr(5, 0x2000);
    m.setGpr(6, 0x00c0ffee);
    m.execute(isa::stw(6, 0, 5));
    m.execute(isa::sth(6, 8, 5));
    m.execute(isa::stb(6, 12, 5));
    // Loads must not fire the hook.
    m.execute(isa::lwz(7, 0, 5));

    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0].addr, 0x2000u);
    EXPECT_EQ(seen[0].bytes, 4u);
    EXPECT_EQ(seen[0].value, 0x00c0ffeeu);
    EXPECT_EQ(seen[1].addr, 0x2008u);
    EXPECT_EQ(seen[1].bytes, 2u);
    EXPECT_EQ(seen[1].value, 0xffeeu);
    EXPECT_EQ(seen[2].addr, 0x200cu);
    EXPECT_EQ(seen[2].bytes, 1u);
    EXPECT_EQ(seen[2].value, 0xeeu);
    // The bytes landed before the hook observed them.
    EXPECT_EQ(m.loadWord(0x2000), 0x00c0ffeeu);
    EXPECT_EQ(m.gpr(7), 0x00c0ffeeu);
}

TEST(MachineMemory, AccessNearAddressSpaceTopDoesNotWrapAround)
{
    // addr + 4 overflows uint32_t here; the bounds check must reject
    // the access rather than wrap to a small in-range address.
    Machine m;
    EXPECT_EQ(faultKind([&] { m.loadWord(0xfffffffe); }),
              MachineFault::MemoryOutOfRange);
    EXPECT_EQ(faultKind([&] { m.storeWord(0xfffffffe, 1); }),
              MachineFault::MemoryOutOfRange);
    EXPECT_EQ(faultKind([&] { m.loadHalf(0xffffffff); }),
              MachineFault::MemoryOutOfRange);
}

// ---------------- Cpu fetch loop ----------------

/** Build a raw program from instructions and run it. */
ExecResult
runRaw(const std::vector<isa::Inst> &insns)
{
    Program p;
    for (const isa::Inst &inst : insns)
        p.text.push_back(isa::encode(inst));
    p.entryIndex = 0;
    p.finalize();
    return runProgram(p, 1 << 20);
}

TEST(CpuFetch, StraightLineAndExit)
{
    ExecResult r = runRaw({isa::li(3, 9),
                           isa::li(0, 0), // Syscall::Exit
                           isa::sc()});
    EXPECT_EQ(r.exitCode, 9);
    EXPECT_EQ(r.instCount, 3u);
}

TEST(CpuFetch, ForwardAndBackwardBranches)
{
    // r3 counts down from 3 with a backward bc loop.
    ExecResult r = runRaw({
        isa::li(3, 3),            // 0
        isa::addi(3, 3, -1),      // 1: loop body
        isa::cmpi(0, 3, 0),       // 2
        isa::bc(isa::Bo::IfFalse, isa::crBit(0, isa::CrBit::Eq), -2), // 3
        isa::li(0, 0),            // 4
        isa::sc(),                // 5
    });
    EXPECT_EQ(r.exitCode, 0);
    // 1 + 3*3 + 2 = 12 dynamic instructions.
    EXPECT_EQ(r.instCount, 12u);
}

TEST(CpuFetch, CallAndReturnViaLr)
{
    ExecResult r = runRaw({
        isa::bl(3),        // 0: call the +3 "function"
        isa::li(0, 0),     // 1
        isa::sc(),         // 2
        isa::li(3, 77),    // 3: function body
        isa::blr(),        // 4
    });
    EXPECT_EQ(r.exitCode, 77);
}

TEST(CpuFetch, IndirectBranchThroughCtr)
{
    ExecResult r = runRaw({
        isa::lis(4, 1),            // 0: r4 = 0x10000 (textBase)
        isa::addi(4, 4, 5 * 4),    // 1: address of index 5
        isa::mtctr(4),             // 2
        isa::bctr(),               // 3
        isa::li(3, 1),             // 4: skipped
        isa::li(3, 42),            // 5: target
        isa::li(0, 0),             // 6
        isa::sc(),                 // 7
    });
    EXPECT_EQ(r.exitCode, 42);
}

TEST(CpuFetch, UntakenConditionalFallsThrough)
{
    ExecResult r = runRaw({
        isa::li(3, 1),
        isa::cmpi(0, 3, 1),
        isa::bc(isa::Bo::IfFalse, isa::crBit(0, isa::CrBit::Eq), 2),
        isa::li(3, 10), // executed: branch not taken (1 == 1)
        isa::li(0, 0),
        isa::sc(),
    });
    EXPECT_EQ(r.exitCode, 10);
}

TEST(CpuFetch, StepBudgetEnforced)
{
    Program p;
    p.text.push_back(isa::encode(isa::b(0))); // tight self-loop
    p.entryIndex = 0;
    p.finalize();
    Cpu cpu(p);
    EXPECT_THROW(cpu.run(1000), std::runtime_error);
}


TEST(CpuFetch, BclSetsLinkEvenWhenNotTaken)
{
    // PowerPC semantics: LK=1 writes LR regardless of the outcome.
    ExecResult r = runRaw({
        isa::li(3, 1),                                            // 0
        isa::cmpi(0, 3, 0),                                       // 1
        isa::bc(isa::Bo::IfTrue, isa::crBit(0, isa::CrBit::Eq), 3,
                true),                                            // 2
        isa::mflr(4),          // 3: LR = addr of index 3
        isa::lis(5, 1),        // 4: 0x10000
        isa::addi(5, 5, 12),   // 5: expected LR value
        isa::subf(3, 5, 4),    // 6: r3 = LR - expected = 0
        isa::li(0, 0),         // 7
        isa::sc(),             // 8
    });
    EXPECT_EQ(r.exitCode, 0);
}

TEST(CpuFetch, BdnzLoopCountsWithCtr)
{
    ExecResult r = runRaw({
        isa::li(3, 0),                        // 0
        isa::li(4, 5),                        // 1
        isa::mtctr(4),                        // 2
        isa::addi(3, 3, 1),                   // 3: loop body
        isa::bc(isa::Bo::DecNz, 0, -1),       // 4: bdnz -> 3
        isa::li(0, 0),                        // 5
        isa::sc(),                            // 6
    });
    EXPECT_EQ(r.exitCode, 5);
}

TEST(CpuFetch, ConditionalReturn)
{
    // beqlr: return only when the condition holds.
    ExecResult r = runRaw({
        isa::bl(4),                                              // 0
        isa::li(0, 0),                                           // 1
        isa::sc(),                                               // 2
        isa::nop(),                                              // 3
        isa::li(3, 1),                                           // 4 callee
        isa::cmpi(0, 3, 2),                                      // 5
        isa::bclr(isa::Bo::IfTrue, isa::crBit(0, isa::CrBit::Eq)), // 6
        isa::li(3, 77),                                          // 7
        isa::blr(),                                              // 8
    });
    EXPECT_EQ(r.exitCode, 77); // 1 != 2, fall through to 77
}


TEST(MachineMemory, OutOfRangeAccessFaults)
{
    Machine m;
    EXPECT_EQ(faultKind([&] { m.loadWord(Machine::memBytes - 2); }),
              MachineFault::MemoryOutOfRange);
    EXPECT_EQ(faultKind([&] { m.storeWord(Machine::memBytes, 1); }),
              MachineFault::MemoryOutOfRange);
    EXPECT_EQ(faultKind([&] { m.loadByte(Machine::memBytes); }),
              MachineFault::MemoryOutOfRange);
}

TEST(MachineCr, UnsupportedBoFaults)
{
    Machine m;
    EXPECT_EQ(faultKind([&] { m.evalCond(31, 0); }),
              MachineFault::BadCondition);
}

TEST(MachineSpr, UnknownSprFaults)
{
    Machine m;
    isa::Inst bad = isa::mtspr(isa::Spr::LR, 3);
    bad.spr = 123;
    EXPECT_EQ(faultKind([&] { m.execute(bad); }), MachineFault::BadSpr);
}

} // namespace
