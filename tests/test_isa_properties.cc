/**
 * @file
 * ISA totality and idempotence properties over random 32-bit words:
 * decode never faults, re-encoding a decoded word reproduces the
 * decoded form (decode-encode idempotence), and legality is stable.
 */

#include <gtest/gtest.h>

#include "isa/disasm.hh"
#include "isa/inst.hh"
#include "support/rng.hh"

namespace isa = codecomp::isa;
using codecomp::Rng;

namespace {

class IsaTotality : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(IsaTotality, DecodeIsTotalAndIdempotent)
{
    Rng rng(GetParam());
    for (int iter = 0; iter < 20000; ++iter) {
        isa::Word word = static_cast<isa::Word>(rng.next());
        isa::Inst first = isa::decode(word); // must never fault
        // Encoding what we decoded, then decoding again, is a fixpoint:
        // non-canonical reserved bits may be dropped once, never twice.
        isa::Word reencoded = isa::encode(first);
        isa::Inst second = isa::decode(reencoded);
        EXPECT_EQ(second, first) << "word 0x" << std::hex << word;
        EXPECT_EQ(isa::encode(second), reencoded);
        // Illegal words must round-trip bit-exactly.
        if (first.op == isa::Op::Illegal) {
            EXPECT_EQ(reencoded, word);
        }
        // Disassembly is total as well.
        EXPECT_FALSE(isa::disassemble(first).empty());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsaTotality,
                         ::testing::Values(11, 22, 33, 44));

TEST(IsaTotality, AllPrimaryOpcodesClassified)
{
    // Every 6-bit primary opcode decodes to something; the eight
    // illegal ones always produce Op::Illegal regardless of low bits.
    Rng rng(5);
    for (unsigned primop = 0; primop < 64; ++primop) {
        for (int trial = 0; trial < 50; ++trial) {
            isa::Word word =
                (static_cast<isa::Word>(primop) << 26) |
                (static_cast<isa::Word>(rng.next()) & 0x03ffffff);
            isa::Inst inst = isa::decode(word);
            if (isa::isIllegalPrimOp(static_cast<uint8_t>(primop))) {
                EXPECT_EQ(inst.op, isa::Op::Illegal);
            }
        }
    }
}

TEST(IsaTotality, LegalGeneratedCodeNeverUsesEscapeSpace)
{
    // The compile-time invariant behind the baseline scheme: nothing
    // the emitter can produce starts with an illegal primary opcode.
    // (Checked over every encode() path via random decoded forms.)
    Rng rng(6);
    int checked = 0;
    for (int iter = 0; iter < 20000; ++iter) {
        isa::Word word = static_cast<isa::Word>(rng.next());
        isa::Inst inst = isa::decode(word);
        if (inst.op == isa::Op::Illegal)
            continue;
        ++checked;
        EXPECT_FALSE(
            isa::isIllegalPrimOp(isa::primOpOf(isa::encode(inst))));
    }
    EXPECT_GT(checked, 1000);
}

} // namespace
