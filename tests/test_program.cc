/**
 * @file
 * Tests for the Program model and the basic-block (Cfg) analysis.
 */

#include <gtest/gtest.h>

#include "codegen/codegen.hh"
#include "isa/builder.hh"
#include "program/cfg.hh"
#include "program/program.hh"
#include "workloads/workloads.hh"

using namespace codecomp;
namespace isa = codecomp::isa;

namespace {

TEST(ProgramModel, AddressIndexRoundTrip)
{
    Program p;
    for (int i = 0; i < 10; ++i)
        p.text.push_back(isa::encode(isa::nop()));
    p.entryIndex = 0;
    p.finalize();
    EXPECT_EQ(p.textBytes(), 40u);
    for (uint32_t i = 0; i < 10; ++i)
        EXPECT_EQ(p.indexOfAddr(p.addrOfIndex(i)), i);
    EXPECT_EQ(p.addrOfIndex(0), Program::textBase);
}

TEST(ProgramModel, DataBaseAlignedAboveText)
{
    Program p;
    p.text.assign(1000, isa::encode(isa::nop()));
    p.entryIndex = 0;
    p.finalize();
    EXPECT_GE(p.dataBase, Program::textBase + p.textBytes());
    EXPECT_EQ(p.dataBase % Program::dataAlign, 0u);
}

TEST(ProgramModel, BranchTargetIndex)
{
    Program p;
    p.text.push_back(isa::encode(isa::b(2)));    // 0 -> 2
    p.text.push_back(isa::encode(isa::nop()));   // 1
    p.text.push_back(isa::encode(isa::bc(isa::Bo::Always, 0, -2))); // 2->0
    p.entryIndex = 0;
    p.finalize();
    EXPECT_EQ(p.branchTargetIndex(0), 2u);
    EXPECT_EQ(p.branchTargetIndex(2), 0u);
}

TEST(ProgramModel, FinalizeRejectsBadPrograms)
{
    {
        Program p; // branch off the end
        p.text.push_back(isa::encode(isa::b(5)));
        p.entryIndex = 0;
        EXPECT_DEATH(p.finalize(), "branch target");
    }
    {
        Program p; // entry out of range
        p.text.push_back(isa::encode(isa::nop()));
        p.entryIndex = 3;
        EXPECT_DEATH(p.finalize(), "entry point");
    }
    {
        Program p; // code reloc outside .text
        p.text.push_back(isa::encode(isa::nop()));
        p.data.assign(8, 0);
        p.codeRelocs.push_back({0, 9});
        p.entryIndex = 0;
        EXPECT_DEATH(p.finalize(), "reloc");
    }
}

TEST(Cfg, LeadersAtBranchesTargetsAndEntries)
{
    Program p;
    p.text.push_back(isa::encode(isa::li(3, 1)));                    // 0
    p.text.push_back(isa::encode(isa::cmpi(0, 3, 0)));               // 1
    p.text.push_back(isa::encode(
        isa::bc(isa::Bo::IfTrue, isa::crBit(0, isa::CrBit::Eq), 2))); // 2->4
    p.text.push_back(isa::encode(isa::li(3, 2)));                    // 3
    p.text.push_back(isa::encode(isa::blr()));                       // 4
    p.entryIndex = 0;
    p.finalize();

    Cfg cfg = Cfg::build(p);
    EXPECT_TRUE(cfg.isLeader(0));  // entry
    EXPECT_FALSE(cfg.isLeader(1));
    EXPECT_FALSE(cfg.isLeader(2));
    EXPECT_TRUE(cfg.isLeader(3));  // after branch
    EXPECT_TRUE(cfg.isLeader(4));  // branch target
    ASSERT_EQ(cfg.blocks().size(), 3u);
    EXPECT_EQ(cfg.blocks()[0].count, 3u);
    EXPECT_EQ(cfg.blocks()[1].count, 1u);
    EXPECT_EQ(cfg.blocks()[2].count, 1u);
}

TEST(Cfg, JumpTableTargetsAreLeaders)
{
    Program p = codegen::compile(R"(
        int pick(int x) {
            switch (x) {
              case 0: return 1;
              case 1: return 2;
              case 2: return 3;
              case 3: return 4;
              case 4: return 5;
              default: return 0;
            }
        }
        int main() { return pick(2); }
    )");
    ASSERT_FALSE(p.codeRelocs.empty());
    Cfg cfg = Cfg::build(p);
    for (const CodeReloc &reloc : p.codeRelocs)
        EXPECT_TRUE(cfg.isLeader(reloc.targetIndex));
}

/** Structural invariants over the whole suite. */
class CfgInvariants : public ::testing::TestWithParam<std::string>
{};

TEST_P(CfgInvariants, BlocksPartitionAndBranchesTerminate)
{
    Program p = workloads::buildBenchmark(GetParam());
    Cfg cfg = Cfg::build(p);

    uint32_t covered = 0;
    for (const InstRange &block : cfg.blocks()) {
        EXPECT_EQ(block.first, covered);
        EXPECT_GT(block.count, 0u);
        covered += block.count;
        // A branch may only be the last instruction of its block.
        for (uint32_t i = block.first; i + 1 < block.first + block.count;
             ++i)
            EXPECT_FALSE(isa::decode(p.text[i]).isBranch())
                << "branch mid-block at " << i;
    }
    EXPECT_EQ(covered, p.text.size());

    // blockOf agrees with the ranges.
    for (uint32_t b = 0; b < cfg.blocks().size(); ++b) {
        const InstRange &block = cfg.blocks()[b];
        EXPECT_EQ(cfg.blockOf(block.first), b);
        EXPECT_EQ(cfg.blockOf(block.first + block.count - 1), b);
    }

    // Every branch target is a leader.
    for (uint32_t i = 0; i < p.text.size(); ++i) {
        if (isa::decode(p.text[i]).isRelativeBranch()) {
            EXPECT_TRUE(cfg.isLeader(p.branchTargetIndex(i)));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Suite, CfgInvariants,
                         ::testing::Values("compress", "gcc", "go", "ijpeg",
                                           "li", "m88ksim", "perl",
                                           "vortex"));

} // namespace
