/**
 * @file
 * Tests for the decompression engine and CompressedCpu specifics:
 * stream scanning vs the compressor's address map, fetch statistics,
 * far-branch stub execution, and jump-table re-patching.
 */

#include <gtest/gtest.h>

#include "codegen/codegen.hh"
#include "compress/compressor.hh"
#include "decompress/compressed_cpu.hh"
#include "decompress/cpu.hh"
#include "decompress/fault.hh"
#include "workloads/generator.hh"
#include "workloads/workloads.hh"

using namespace codecomp;
using namespace codecomp::compress;

namespace {

TEST(Engine, StreamScanAgreesWithAddressMap)
{
    Program p = workloads::buildBenchmark("li");
    for (Scheme scheme : allSchemes()) {
        CompressorConfig config;
        config.scheme = scheme;
        CompressedImage image = compressProgram(p, config);
        DecompressionEngine engine(image);

        // Every address-map entry is an item boundary of the scan, and
        // the item kinds match what the compressor placed there.
        size_t codewords = 0;
        for (const DecodedItem &item : engine.items())
            codewords += item.isCodeword;
        EXPECT_EQ(codewords, image.selection.placements.size());

        for (const auto &[orig, nib] : image.addrMap) {
            const DecodedItem &item = engine.itemAt(nib);
            EXPECT_EQ(item.nibbleAddr, nib);
        }

        // Items tile the stream exactly.
        uint32_t pos = 0;
        for (const DecodedItem &item : engine.items()) {
            EXPECT_EQ(item.nibbleAddr, pos);
            pos += item.nibbles;
        }
        EXPECT_EQ(pos, image.textNibbles);
    }
}

TEST(Engine, ExpandedEntriesMatchOriginalText)
{
    Program p = workloads::buildBenchmark("compress");
    CompressorConfig config;
    CompressedImage image = compressProgram(p, config);
    DecompressionEngine engine(image);

    // Walking the stream and expanding codewords must reproduce the
    // original instruction sequence exactly (modulo patched branch
    // displacement fields, which we re-check structurally).
    std::vector<isa::Word> rebuilt;
    for (const DecodedItem &item : engine.items()) {
        if (item.isCodeword) {
            for (isa::Word word : engine.entry(item.rank))
                rebuilt.push_back(word);
        } else {
            rebuilt.push_back(item.word);
        }
    }
    ASSERT_EQ(rebuilt.size(), p.text.size());
    size_t exact = 0;
    for (size_t i = 0; i < rebuilt.size(); ++i) {
        isa::Inst orig = isa::decode(p.text[i]);
        isa::Inst got = isa::decode(rebuilt[i]);
        if (orig.isRelativeBranch()) {
            // Displacement is re-encoded at codeword granularity; all
            // other fields are untouched.
            got.disp = orig.disp;
            got.aa = orig.aa;
        }
        EXPECT_EQ(isa::encode(got), p.text[i]) << "index " << i;
        exact += rebuilt[i] == p.text[i];
    }
    EXPECT_GT(exact, rebuilt.size() / 2);
}

TEST(Engine, FetchStatisticsAreConsistent)
{
    Program p = workloads::buildBenchmark("compress");
    CompressorConfig config;
    CompressedImage image = compressProgram(p, config);

    CompressedCpu cpu(image);
    ExecResult r = cpu.run();
    const FetchStats &stats = cpu.fetchStats();
    EXPECT_GT(stats.itemFetches, 0u);
    EXPECT_GT(stats.codewordFetches, 0u);
    EXPECT_LT(stats.codewordFetches, stats.itemFetches);
    // Every architectural instruction came from a plain fetch or an
    // expansion.
    EXPECT_EQ(r.instCount,
              (stats.itemFetches - stats.codewordFetches) +
                  stats.expandedInsts);
}

TEST(Engine, FarBranchStubExecutesCorrectly)
{
    // A conditional branch spanning a > 4 KiB loop body loses offset
    // range at nibble granularity and must run through the stub.
    std::string src =
        workloads::bigLoopFunction("huge", 3000, 7) +
        "int main() { puti(huge(5)); return 0; }\n";
    Program p = codegen::compile(src);
    ExecResult reference = runProgram(p, 1 << 24);

    CompressorConfig config;
    config.scheme = Scheme::Nibble;
    config.maxEntries = 4680;
    CompressedImage image = compressProgram(p, config);
    ASSERT_GE(image.farBranchExpansions, 1u)
        << "test needs at least one stub to be meaningful";

    ExecResult compressed = runCompressed(image, 1 << 24);
    EXPECT_EQ(compressed.output, reference.output);
    EXPECT_EQ(compressed.exitCode, reference.exitCode);
    // The stub adds instructions, so the dynamic count grows.
    EXPECT_GT(compressed.instCount, reference.instCount);
}

TEST(Engine, JumpTablesRepatchedToCompressedSpace)
{
    Program p = codegen::compile(R"(
        int pick(int x) {
            switch (x) {
              case 0: return 10;
              case 1: return 11;
              case 2: return 12;
              case 3: return 13;
              case 4: return 14;
              case 5: return 15;
              default: return -1;
            }
        }
        int main() {
            int i;
            int acc = 0;
            for (i = -1; i < 8; i = i + 1) acc = acc + pick(i);
            return acc;
        }
    )");
    ASSERT_FALSE(p.codeRelocs.empty());
    ExecResult reference = runProgram(p);

    for (Scheme scheme : allSchemes()) {
        CompressorConfig config;
        config.scheme = scheme;
        CompressedImage image = compressProgram(p, config);

        // The patched slots hold valid compressed-space pointers.
        for (const CodeReloc &reloc : p.codeRelocs) {
            uint32_t pointer =
                (static_cast<uint32_t>(image.data[reloc.dataOffset])
                 << 24) |
                (static_cast<uint32_t>(image.data[reloc.dataOffset + 1])
                 << 16) |
                (static_cast<uint32_t>(image.data[reloc.dataOffset + 2])
                 << 8) |
                static_cast<uint32_t>(image.data[reloc.dataOffset + 3]);
            EXPECT_EQ(pointer, image.codePointer(reloc.targetIndex));
        }
        EXPECT_EQ(runCompressed(image).exitCode, reference.exitCode)
            << schemeName(scheme);
    }
}

TEST(Engine, EntryPointMapsToFirstInstruction)
{
    Program p = workloads::buildBenchmark("compress");
    CompressorConfig config;
    CompressedImage image = compressProgram(p, config);
    EXPECT_EQ(image.entryPointNibble, image.addrMap.at(p.entryIndex));
    // _start is instruction 0, so the entry sits at stream offset 0.
    EXPECT_EQ(image.entryPointNibble, 0u);
}


TEST(Engine, MidItemFetchFaults)
{
    Program p = workloads::buildBenchmark("compress");
    CompressorConfig config;
    CompressedImage image = compressProgram(p, config);
    DecompressionEngine engine(image);
    // Nibble offset 1 is inside the first item for every scheme here.
    try {
        engine.itemAt(1);
        FAIL() << "mid-item fetch went unnoticed";
    } catch (const MachineCheckError &error) {
        EXPECT_EQ(error.fault(), MachineFault::MisalignedPc);
        EXPECT_EQ(error.addr(), 1u);
    }
}

TEST(Engine, FetchBeyondTextFaults)
{
    // The dense lookup table covers exactly textNibbles entries; a PC
    // one past the end of the stream must trap, not read out of bounds.
    Program p = workloads::buildBenchmark("compress");
    CompressorConfig config;
    CompressedImage image = compressProgram(p, config);
    DecompressionEngine engine(image);
    try {
        engine.itemAt(static_cast<uint32_t>(image.textNibbles));
        FAIL() << "fetch beyond compressed text went unnoticed";
    } catch (const MachineCheckError &error) {
        EXPECT_EQ(error.fault(), MachineFault::FetchOutOfText);
    }
}

TEST(Engine, DenseIndexAgreesWithStreamScan)
{
    // itemIndexAt answers from a dense nibble->index table instead of a
    // hash map; walking the stream item by item must agree with it at
    // every item head, under every scheme.
    Program p = workloads::buildBenchmark("ijpeg");
    for (Scheme scheme : allSchemes()) {
        CompressorConfig config;
        config.scheme = scheme;
        CompressedImage image = compressProgram(p, config);
        DecompressionEngine engine(image);
        uint32_t index = 0;
        uint32_t nib = 0;
        while (nib < image.textNibbles) {
            ASSERT_EQ(engine.itemIndexAt(nib), index);
            nib += engine.itemAt(nib).nibbles;
            ++index;
        }
    }
}

} // namespace
