/**
 * @file
 * Tests for the pass pipeline and the pluggable selection strategies:
 * pass ordering and stats, config validation, greedy/reference
 * equivalence over every workload, cross-strategy determinism across
 * job counts, and the IterativeRefit size guarantee.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <stdexcept>

#include "compress/compressor.hh"
#include "compress/greedy.hh"
#include "compress/objfile.hh"
#include "compress/pipeline.hh"
#include "compress/strategy.hh"
#include "support/thread_pool.hh"
#include "workloads/workloads.hh"

using namespace codecomp;
using namespace codecomp::compress;

namespace {

const char *const kPassOrder[] = {"Enumerate",   "Select", "RankAssign",
                                  "Layout",      "BranchPatch", "Emit"};

CompressedImage
compressWith(const Program &program, Scheme scheme, StrategyKind strategy)
{
    CompressorConfig config;
    config.scheme = scheme;
    config.strategy = strategy;
    return compressProgram(program, config);
}

} // namespace

// ---------------- pipeline structure and stats ----------------

TEST(Pipeline, StandardRunsSixPassesInOrder)
{
    Program program = workloads::buildBenchmark("compress");
    CompressorConfig config;
    config.scheme = Scheme::Nibble;
    PipelineStats stats;
    CompressedImage image = compressProgram(program, config, &stats);

    ASSERT_EQ(stats.passes.size(), std::size(kPassOrder));
    for (size_t i = 0; i < std::size(kPassOrder); ++i) {
        EXPECT_EQ(stats.passes[i].name, kPassOrder[i]);
        EXPECT_GE(stats.passes[i].millis, 0.0);
    }
    EXPECT_EQ(stats.strategy, "greedy");
    EXPECT_EQ(stats.scheme, schemeName(Scheme::Nibble));
    EXPECT_EQ(stats.selectionRounds, 1u);
    EXPECT_GT(stats.totalMillis(), 0.0);

    // Pass counters reflect what the image shows.
    const PassStats *select = stats.pass("Select");
    ASSERT_NE(select, nullptr);
    EXPECT_EQ(select->counter("entries"), image.entriesByRank.size());
    EXPECT_EQ(select->counter("placements"),
              image.selection.placements.size());
    const PassStats *enumerate = stats.pass("Enumerate");
    ASSERT_NE(enumerate, nullptr);
    EXPECT_GT(enumerate->counter("candidates"), 0u);
    const PassStats *patch = stats.pass("BranchPatch");
    ASSERT_NE(patch, nullptr);
    EXPECT_EQ(patch->counter("far_branch_expansions"),
              image.farBranchExpansions);
    EXPECT_EQ(stats.pass("NoSuchPass"), nullptr);
}

TEST(Pipeline, WrapperEqualsManualPassSequence)
{
    Program program = workloads::buildBenchmark("li");
    CompressorConfig config;
    config.scheme = Scheme::Nibble;
    CompressedImage wrapped = compressProgram(program, config);

    PipelineContext ctx(program, config);
    passEnumerate(ctx);
    passSelect(ctx);
    passRankAssign(ctx);
    passLayout(ctx);
    passBranchPatch(ctx);
    passEmit(ctx);

    EXPECT_EQ(ctx.image.text, wrapped.text);
    EXPECT_EQ(ctx.image.textNibbles, wrapped.textNibbles);
    EXPECT_EQ(ctx.image.entriesByRank, wrapped.entriesByRank);
    EXPECT_EQ(ctx.image.data, wrapped.data);
    EXPECT_EQ(ctx.image.entryPointNibble, wrapped.entryPointNibble);
}

TEST(Pipeline, FromSelectionMatchesStandardForGreedy)
{
    // compressWithSelection over selectGreedy's result must be the
    // same image the full pipeline produces with the Greedy strategy.
    Program program = workloads::buildBenchmark("m88ksim");
    CompressorConfig config;
    config.scheme = Scheme::Nibble;
    CompressedImage standard = compressProgram(program, config);

    SchemeParams params = schemeParams(config.scheme);
    GreedyConfig greedy;
    greedy.maxEntries = std::min(config.maxEntries, params.maxCodewords);
    greedy.maxEntryLen = config.maxEntryLen;
    greedy.insnNibbles = params.insnNibbles;
    greedy.codewordNibbles = params.defaultAssumedCodewordNibbles;
    CompressedImage seeded = compressWithSelection(
        program, config, selectGreedy(program, greedy));

    EXPECT_EQ(seeded.text, standard.text);
    EXPECT_EQ(seeded.entriesByRank, standard.entriesByRank);
    EXPECT_EQ(saveImage(seeded), saveImage(standard));
}

TEST(Pipeline, StatsSerializeToJson)
{
    Program program = workloads::buildBenchmark("compress");
    CompressorConfig config;
    config.scheme = Scheme::Nibble;
    config.strategy = StrategyKind::IterativeRefit;
    PipelineStats stats;
    compressProgram(program, config, &stats);

    std::string json = stats.toJson();
    EXPECT_NE(json.find("\"strategy\":\"refit\""), std::string::npos);
    EXPECT_NE(json.find("\"passes\":["), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"Enumerate\""), std::string::npos);
    EXPECT_NE(json.find("\"selection_rounds\":"), std::string::npos);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
    EXPECT_GT(stats.selectionRounds, 1u);
}

// ---------------- config validation ----------------

TEST(PipelineConfig, GreedyConfigErrorMessages)
{
    GreedyConfig good;
    EXPECT_EQ(greedyConfigError(good), "");

    GreedyConfig zero_len;
    zero_len.maxEntryLen = 0;
    EXPECT_NE(greedyConfigError(zero_len), "");

    GreedyConfig zero_min;
    zero_min.minEntryLen = 0;
    EXPECT_NE(greedyConfigError(zero_min), "");

    GreedyConfig inverted;
    inverted.minEntryLen = 5;
    inverted.maxEntryLen = 3;
    std::string error = greedyConfigError(inverted);
    EXPECT_NE(error.find("5"), std::string::npos) << error;
    EXPECT_NE(error.find("3"), std::string::npos) << error;

    // An empty entry budget is pass-through, not an error.
    GreedyConfig no_budget;
    no_budget.maxEntries = 0;
    EXPECT_EQ(greedyConfigError(no_budget), "");
}

TEST(PipelineConfig, InvalidConfigIsFatal)
{
    Program program = workloads::buildBenchmark("compress");
    CompressorConfig config;
    config.maxEntryLen = 0;
    EXPECT_THROW(compressProgram(program, config), std::runtime_error);

    GreedyConfig inverted;
    inverted.minEntryLen = 9;
    inverted.maxEntryLen = 2;
    EXPECT_THROW(selectGreedy(program, inverted), std::runtime_error);
    EXPECT_THROW(selectGreedyReference(program, inverted),
                 std::runtime_error);
}

// ---------------- strategies ----------------

TEST(Strategy, NamesRoundTrip)
{
    for (StrategyKind kind :
         {StrategyKind::Greedy, StrategyKind::GreedyReference,
          StrategyKind::IterativeRefit})
        EXPECT_EQ(parseStrategyName(strategyName(kind)), kind);
    EXPECT_EQ(parseStrategyName("simulated-annealing"), std::nullopt);
    EXPECT_EQ(parseStrategyName(""), std::nullopt);
}

TEST(Strategy, GreedyMatchesReferenceOnEveryWorkload)
{
    // The two greedy implementations must agree candidate-for-candidate
    // on every workload (small budget: the reference is O(n*k)).
    for (const std::string &name : workloads::benchmarkNames()) {
        Program program = workloads::buildBenchmark(name);
        CompressorConfig config;
        config.scheme = Scheme::Nibble;
        PipelineContext ctx(program, config);
        ctx.greedy.maxEntries = 32;
        passEnumerate(ctx);

        auto fast = makeStrategy(StrategyKind::Greedy);
        auto slow = makeStrategy(StrategyKind::GreedyReference);
        SelectionResult a = fast->select(program.text.size(),
                                         ctx.candidates, ctx.greedy,
                                         config.scheme);
        SelectionResult b = slow->select(program.text.size(),
                                         ctx.candidates, ctx.greedy,
                                         config.scheme);
        EXPECT_EQ(a.dict.entries, b.dict.entries) << name;
        EXPECT_EQ(a.placements, b.placements) << name;
        EXPECT_EQ(a.useCount, b.useCount) << name;
    }
}

TEST(Strategy, RefitNeverLargerThanGreedyOnNibble)
{
    // The regression guarantee behind ISSUE acceptance: rank-aware
    // refit must never lose to plain greedy under the nibble scheme,
    // and must strictly win somewhere.
    size_t strictly_smaller = 0;
    for (const std::string &name : workloads::benchmarkNames()) {
        Program program = workloads::buildBenchmark(name);
        CompressedImage greedy =
            compressWith(program, Scheme::Nibble, StrategyKind::Greedy);
        CompressedImage refit = compressWith(program, Scheme::Nibble,
                                             StrategyKind::IterativeRefit);
        EXPECT_LE(refit.totalBytes(), greedy.totalBytes()) << name;
        if (refit.totalBytes() < greedy.totalBytes())
            ++strictly_smaller;
    }
    EXPECT_GT(strictly_smaller, 0u);
}

TEST(Strategy, RefitRoundsAreBoundedAndReported)
{
    Program program = workloads::buildBenchmark("go");
    CompressorConfig config;
    config.scheme = Scheme::Nibble;
    config.strategy = StrategyKind::IterativeRefit;
    config.refitMaxRounds = 2;
    PipelineStats stats;
    compressProgram(program, config, &stats);
    EXPECT_GE(stats.selectionRounds, 2u);
    EXPECT_LE(stats.selectionRounds, 3u); // round 0 + at most 2 refits
    const PassStats *select = stats.pass("Select");
    ASSERT_NE(select, nullptr);
    EXPECT_EQ(select->counter("rounds"), stats.selectionRounds);
}

TEST(Strategy, ImagesBitIdenticalAcrossJobCounts)
{
    // Determinism contract for every strategy: candidate enumeration
    // is the only parallel stage, so --jobs must never change the
    // output image, whichever selection policy runs on top.
    Program program = workloads::buildBenchmark("compress");
    for (StrategyKind strategy :
         {StrategyKind::Greedy, StrategyKind::GreedyReference,
          StrategyKind::IterativeRefit}) {
        CompressorConfig config;
        config.scheme = Scheme::Nibble;
        config.strategy = strategy;
        // Keep the O(n*k) reference tractable.
        if (strategy == StrategyKind::GreedyReference)
            config.maxEntries = 48;
        setGlobalJobs(1);
        CompressedImage serial = compressProgram(program, config);
        std::vector<uint8_t> serialBytes = saveImage(serial);
        for (unsigned jobs : {4u, 8u}) {
            setGlobalJobs(jobs);
            CompressedImage parallel = compressProgram(program, config);
            EXPECT_EQ(saveImage(parallel), serialBytes)
                << strategyName(strategy) << " jobs " << jobs;
        }
    }
    setGlobalJobs(0);
}

TEST(Strategy, EstimateMatchesCompositionWithoutStubs)
{
    // The analytic size estimate the refit loop minimizes must equal
    // the realized composition whenever no far-branch stub is inserted.
    Program program = workloads::buildBenchmark("li");
    CompressorConfig config;
    config.scheme = Scheme::Nibble;
    PipelineContext ctx(program, config);
    passEnumerate(ctx);
    passSelect(ctx);
    uint64_t estimate = estimateSelectionNibbles(
        ctx.selection, ctx.greedy, config.scheme, program.text.size());
    passRankAssign(ctx);
    passLayout(ctx);
    passBranchPatch(ctx);
    passEmit(ctx);
    ASSERT_EQ(ctx.image.farBranchExpansions, 0u);
    EXPECT_EQ(estimate, ctx.image.composition.totalNibbles());
}
