/**
 * @file
 * Property tests over the static analyses: coverage monotonicity,
 * count conservation, and cross-checks between independent analyses
 * across the whole benchmark suite.
 */

#include <gtest/gtest.h>

#include "analysis/analysis.hh"
#include "compress/compressor.hh"
#include "workloads/workloads.hh"

using namespace codecomp;
using namespace codecomp::analysis;

namespace {

class AnalysisProperties : public ::testing::TestWithParam<std::string>
{
  protected:
    Program program_ = workloads::buildBenchmark(GetParam());
};

TEST_P(AnalysisProperties, RedundancyCountsConserve)
{
    RedundancyProfile profile = profileRedundancy(program_);
    // Every instruction is either from a once-used encoding or a
    // repeated one.
    EXPECT_EQ(profile.usedOnce + profile.insnsFromRepeated,
              profile.totalInsns);
    EXPECT_EQ(profile.totalInsns, program_.text.size());
    EXPECT_LE(profile.distinctEncodings, profile.totalInsns);
    // countsDescending sums back to the program.
    uint64_t sum = 0;
    for (uint32_t count : profile.countsDescending)
        sum += count;
    EXPECT_EQ(sum, profile.totalInsns);
    // And is actually sorted.
    EXPECT_TRUE(std::is_sorted(profile.countsDescending.rbegin(),
                               profile.countsDescending.rend()));
}

TEST_P(AnalysisProperties, CoverageMonotoneInPercent)
{
    RedundancyProfile profile = profileRedundancy(program_);
    double prev = 0;
    for (double pct : {0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0}) {
        double coverage = profile.topEncodingCoverage(pct);
        EXPECT_GE(coverage, prev) << "at " << pct << "%";
        EXPECT_LE(coverage, 1.0 + 1e-12);
        prev = coverage;
    }
    EXPECT_DOUBLE_EQ(profile.topEncodingCoverage(100), 1.0);
}

TEST_P(AnalysisProperties, PrologueEpilogueWithinFunctionBodies)
{
    PrologueEpilogue stats = analyzePrologueEpilogue(program_);
    uint32_t body_insns = 0;
    for (const FunctionSymbol &fn : program_.functions)
        body_insns += fn.body.count;
    // Functions tile .text, so the template instructions are a strict
    // subset of the program.
    EXPECT_EQ(body_insns, stats.totalInsns);
    EXPECT_LT(stats.prologueInsns + stats.epilogueInsns,
              stats.totalInsns);
}

TEST_P(AnalysisProperties, DictionarySavingsConsistentWithImageSize)
{
    compress::CompressorConfig config;
    compress::CompressedImage image =
        compress::compressProgram(program_, config);
    DictionaryUsage usage = analyzeDictionaryUsage(image);

    // Savings attributed per length sum to the total.
    int64_t sum = 0;
    for (const auto &[len, saved] : usage.bytesSavedByLength)
        sum += saved;
    EXPECT_EQ(sum, usage.totalBytesSaved);

    // The analysis's total savings equals the size delta the image
    // reports (both sides count the dictionary overhead).
    int64_t size_delta =
        static_cast<int64_t>(image.originalTextBytes) -
        static_cast<int64_t>(image.totalBytes());
    EXPECT_NEAR(static_cast<double>(usage.totalBytesSaved),
                static_cast<double>(size_delta), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Suite, AnalysisProperties,
                         ::testing::Values("compress", "gcc", "go", "ijpeg",
                                           "li", "m88ksim", "perl",
                                           "vortex"));

} // namespace
