/**
 * @file
 * Tests for the support substrate: nibble/bit stream writers and
 * readers (the carrier of every compressed program) and the
 * deterministic RNG.
 */

#include <gtest/gtest.h>

#include "support/bitstream.hh"
#include "support/rng.hh"

using namespace codecomp;

namespace {

TEST(NibbleStream, SingleNibblesRoundTrip)
{
    NibbleWriter writer;
    for (unsigned v = 0; v < 16; ++v)
        writer.putNibble(static_cast<uint8_t>(v));
    EXPECT_EQ(writer.nibbleCount(), 16u);
    EXPECT_EQ(writer.sizeBytes(), 8u);

    NibbleReader reader(writer.bytes().data(), writer.nibbleCount());
    for (unsigned v = 0; v < 16; ++v)
        EXPECT_EQ(reader.getNibble(), v);
    EXPECT_TRUE(reader.atEnd());
}

TEST(NibbleStream, HighNibbleFirst)
{
    NibbleWriter writer;
    writer.putNibble(0xa);
    writer.putNibble(0x5);
    EXPECT_EQ(writer.bytes()[0], 0xa5);
    writer.putNibble(0xf); // odd count: low nibble of byte 1 is zero
    EXPECT_EQ(writer.bytes()[1], 0xf0);
    EXPECT_EQ(writer.sizeBytes(), 2u);
    EXPECT_EQ(writer.nibbleCount(), 3u);
}

TEST(NibbleStream, MultiNibbleValues)
{
    NibbleWriter writer;
    writer.putNibbles(0x123, 3);
    writer.putWord(0xdeadbeef);
    NibbleReader reader(writer.bytes().data(), writer.nibbleCount());
    EXPECT_EQ(reader.getNibbles(3), 0x123u);
    EXPECT_EQ(reader.getWord(), 0xdeadbeefu);
}

TEST(NibbleStream, SeekSupportsRandomAccess)
{
    NibbleWriter writer;
    for (int i = 0; i < 64; ++i)
        writer.putNibble(static_cast<uint8_t>(i % 16));
    NibbleReader reader(writer.bytes().data(), writer.nibbleCount());
    reader.seek(33);
    EXPECT_EQ(reader.getNibble(), 33 % 16);
    reader.seek(0);
    EXPECT_EQ(reader.getNibble(), 0u);
}

TEST(BitStream, MsbFirstAndRoundTrip)
{
    BitWriter writer;
    writer.putBits(0b101, 3);
    writer.putBits(0b0110, 4);
    writer.putBit(true);
    EXPECT_EQ(writer.bitCount(), 8u);
    EXPECT_EQ(writer.bytes()[0], 0b10101101);

    BitReader reader(writer.bytes().data(), writer.bitCount());
    EXPECT_EQ(reader.getBits(3), 0b101u);
    EXPECT_EQ(reader.getBits(4), 0b0110u);
    EXPECT_TRUE(reader.getBit());
    EXPECT_TRUE(reader.atEnd());
}

TEST(BitStream, CrossByteValues)
{
    BitWriter writer;
    writer.putBits(0x1ffff, 17);
    writer.putBits(0, 2);
    writer.putBits(0x3fff, 14);
    BitReader reader(writer.bytes().data(), writer.bitCount());
    EXPECT_EQ(reader.getBits(17), 0x1ffffu);
    EXPECT_EQ(reader.getBits(2), 0u);
    EXPECT_EQ(reader.getBits(14), 0x3fffu);
}

/** Write/read interleave property over random chunk sizes. */
class StreamProperty : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(StreamProperty, RandomChunksRoundTrip)
{
    Rng rng(GetParam());
    std::vector<std::pair<uint32_t, unsigned>> chunks;
    BitWriter bits;
    NibbleWriter nibbles;
    for (int i = 0; i < 500; ++i) {
        unsigned n = 1 + static_cast<unsigned>(rng.below(8));
        uint32_t value =
            static_cast<uint32_t>(rng.next()) & ((1u << (4 * n)) - 1);
        chunks.emplace_back(value, n);
        nibbles.putNibbles(value, n);
        bits.putBits(value, 4 * n);
    }
    NibbleReader nr(nibbles.bytes().data(), nibbles.nibbleCount());
    BitReader br(bits.bytes().data(), bits.bitCount());
    for (const auto &[value, n] : chunks) {
        EXPECT_EQ(nr.getNibbles(n), value);
        EXPECT_EQ(br.getBits(4 * n), value);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamProperty,
                         ::testing::Values(1, 7, 99, 12345));

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, RangeBoundsRespected)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        int64_t v = rng.range(-5, 17);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 17);
        EXPECT_LT(rng.below(8), 8u);
    }
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int differ = 0;
    for (int i = 0; i < 50; ++i)
        differ += a.next() != b.next();
    EXPECT_GT(differ, 45);
}

} // namespace
