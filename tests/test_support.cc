/**
 * @file
 * Tests for the support substrate: nibble/bit stream writers and
 * readers (the carrier of every compressed program), the worker pool
 * behind every parallel stage, the deterministic RNG, and the JSON
 * writer used for pipeline statistics and benchmark output.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>

#include "support/bitstream.hh"
#include "support/json.hh"
#include "support/rng.hh"
#include "support/thread_pool.hh"

using namespace codecomp;

namespace {

TEST(NibbleStream, SingleNibblesRoundTrip)
{
    NibbleWriter writer;
    for (unsigned v = 0; v < 16; ++v)
        writer.putNibble(static_cast<uint8_t>(v));
    EXPECT_EQ(writer.nibbleCount(), 16u);
    EXPECT_EQ(writer.sizeBytes(), 8u);

    NibbleReader reader(writer.bytes().data(), writer.nibbleCount());
    for (unsigned v = 0; v < 16; ++v)
        EXPECT_EQ(reader.getNibble(), v);
    EXPECT_TRUE(reader.atEnd());
}

TEST(NibbleStream, HighNibbleFirst)
{
    NibbleWriter writer;
    writer.putNibble(0xa);
    writer.putNibble(0x5);
    EXPECT_EQ(writer.bytes()[0], 0xa5);
    writer.putNibble(0xf); // odd count: low nibble of byte 1 is zero
    EXPECT_EQ(writer.bytes()[1], 0xf0);
    EXPECT_EQ(writer.sizeBytes(), 2u);
    EXPECT_EQ(writer.nibbleCount(), 3u);
}

TEST(NibbleStream, MultiNibbleValues)
{
    NibbleWriter writer;
    writer.putNibbles(0x123, 3);
    writer.putWord(0xdeadbeef);
    NibbleReader reader(writer.bytes().data(), writer.nibbleCount());
    EXPECT_EQ(reader.getNibbles(3), 0x123u);
    EXPECT_EQ(reader.getWord(), 0xdeadbeefu);
}

TEST(NibbleStream, SeekSupportsRandomAccess)
{
    NibbleWriter writer;
    for (int i = 0; i < 64; ++i)
        writer.putNibble(static_cast<uint8_t>(i % 16));
    NibbleReader reader(writer.bytes().data(), writer.nibbleCount());
    reader.seek(33);
    EXPECT_EQ(reader.getNibble(), 33 % 16);
    reader.seek(0);
    EXPECT_EQ(reader.getNibble(), 0u);
}

TEST(BitStream, MsbFirstAndRoundTrip)
{
    BitWriter writer;
    writer.putBits(0b101, 3);
    writer.putBits(0b0110, 4);
    writer.putBit(true);
    EXPECT_EQ(writer.bitCount(), 8u);
    EXPECT_EQ(writer.bytes()[0], 0b10101101);

    BitReader reader(writer.bytes().data(), writer.bitCount());
    EXPECT_EQ(reader.getBits(3), 0b101u);
    EXPECT_EQ(reader.getBits(4), 0b0110u);
    EXPECT_TRUE(reader.getBit());
    EXPECT_TRUE(reader.atEnd());
}

TEST(BitStream, CrossByteValues)
{
    BitWriter writer;
    writer.putBits(0x1ffff, 17);
    writer.putBits(0, 2);
    writer.putBits(0x3fff, 14);
    BitReader reader(writer.bytes().data(), writer.bitCount());
    EXPECT_EQ(reader.getBits(17), 0x1ffffu);
    EXPECT_EQ(reader.getBits(2), 0u);
    EXPECT_EQ(reader.getBits(14), 0x3fffu);
}

/** Write/read interleave property over random chunk sizes. */
class StreamProperty : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(StreamProperty, RandomChunksRoundTrip)
{
    Rng rng(GetParam());
    std::vector<std::pair<uint32_t, unsigned>> chunks;
    BitWriter bits;
    NibbleWriter nibbles;
    for (int i = 0; i < 500; ++i) {
        unsigned n = 1 + static_cast<unsigned>(rng.below(8));
        uint32_t value =
            static_cast<uint32_t>(rng.next()) & ((1u << (4 * n)) - 1);
        chunks.emplace_back(value, n);
        nibbles.putNibbles(value, n);
        bits.putBits(value, 4 * n);
    }
    NibbleReader nr(nibbles.bytes().data(), nibbles.nibbleCount());
    BitReader br(bits.bytes().data(), bits.bitCount());
    for (const auto &[value, n] : chunks) {
        EXPECT_EQ(nr.getNibbles(n), value);
        EXPECT_EQ(br.getBits(4 * n), value);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamProperty,
                         ::testing::Values(1, 7, 99, 12345));

// ---------------- thread pool ----------------

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce)
{
    for (unsigned threads : {1u, 2u, 4u}) {
        ThreadPool pool(threads);
        constexpr size_t n = 10000;
        std::vector<std::atomic<int>> visits(n);
        pool.parallelFor(n, [&visits](size_t i) { visits[i]++; });
        for (size_t i = 0; i < n; ++i)
            ASSERT_EQ(visits[i].load(), 1) << "threads " << threads
                                           << " index " << i;
    }
}

TEST(ThreadPool, RunBatchExecutesAllTasks)
{
    ThreadPool pool(4);
    std::atomic<int> sum{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 1; i <= 100; ++i)
        tasks.push_back([&sum, i] { sum += i; });
    pool.runBatch(std::move(tasks));
    EXPECT_EQ(sum.load(), 5050);
    pool.runBatch({}); // empty batch is a no-op
}

TEST(ThreadPool, PropagatesFirstException)
{
    ThreadPool pool(4);
    std::atomic<int> completed{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 100; ++i)
        tasks.push_back([&completed, i] {
            if (i == 37)
                throw std::runtime_error("task 37");
            completed++;
        });
    EXPECT_THROW(pool.runBatch(std::move(tasks)), std::runtime_error);
    // Every other task in the batch still ran to completion.
    EXPECT_EQ(completed.load(), 99);
}

TEST(ThreadPool, PoolIsReusableAfterException)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(
                     8, [](size_t) { throw std::runtime_error("x"); }),
                 std::runtime_error);
    std::atomic<int> count{0};
    pool.parallelFor(64, [&count](size_t) { count++; });
    EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    // A parallel stage may itself invoke a parallel stage (suite
    // fan-out -> per-program candidate sharding); the inner one must
    // run inline rather than deadlocking on the busy pool.
    setGlobalJobs(4);
    std::atomic<int> inner{0};
    globalPool().parallelFor(8, [&inner](size_t) {
        globalPool().parallelFor(16, [&inner](size_t) { inner++; });
    });
    EXPECT_EQ(inner.load(), 8 * 16);
    setGlobalJobs(0);
}

TEST(ThreadPool, ParallelMapPreservesIndexOrder)
{
    setGlobalJobs(4);
    std::vector<int> squares = parallelMap<int>(
        500, [](size_t i) { return static_cast<int>(i * i); });
    for (size_t i = 0; i < squares.size(); ++i)
        ASSERT_EQ(squares[i], static_cast<int>(i * i));
    setGlobalJobs(0);
}

TEST(ThreadPool, JobsKnobPriorities)
{
    // setGlobalJobs overrides everything; 0 restores the default,
    // which is at least 1 whatever the environment says.
    setGlobalJobs(3);
    EXPECT_EQ(globalJobs(), 3u);
    setGlobalJobs(0);
    EXPECT_GE(globalJobs(), 1u);
}

TEST(ThreadPool, EnvJobsRejectsTrailingGarbage)
{
    // CODECOMP_JOBS must be a whole positive integer; "8abc" used to
    // be silently accepted as 8 (strtol without an end check).
    ::unsetenv("CODECOMP_JOBS");
    unsigned fallback = defaultJobs();
    unsigned want = fallback == 7 ? 9u : 7u;

    ::setenv("CODECOMP_JOBS", std::to_string(want).c_str(), 1);
    EXPECT_EQ(defaultJobs(), want);

    std::string garbage = std::to_string(want) + "abc";
    ::setenv("CODECOMP_JOBS", garbage.c_str(), 1);
    EXPECT_EQ(defaultJobs(), fallback);

    for (const char *bad : {"abc", "-3", "0", ""}) {
        ::setenv("CODECOMP_JOBS", bad, 1);
        EXPECT_EQ(defaultJobs(), fallback) << "CODECOMP_JOBS=" << bad;
    }

    ::setenv("CODECOMP_JOBS", "9999", 1);
    EXPECT_EQ(defaultJobs(), 256u); // clamped, like setGlobalJobs
    ::unsetenv("CODECOMP_JOBS");
}

TEST(ThreadPool, NestedRunBatchRunsAllTasksThenRethrows)
{
    // The nested-inline path must have the same completion semantics
    // as the pooled path: every task runs, then the first exception is
    // rethrown. It used to stop at the first throwing task.
    ThreadPool pool(2);
    std::atomic<int> completed{0};
    bool innerThrew = false;
    pool.runBatch({[&pool, &completed, &innerThrew] {
        std::vector<std::function<void()>> inner;
        for (int i = 0; i < 8; ++i)
            inner.push_back([&completed, i] {
                if (i == 2)
                    throw std::runtime_error("inner task 2");
                completed++;
            });
        try {
            pool.runBatch(std::move(inner));
        } catch (const std::runtime_error &) {
            innerThrew = true;
        }
    }});
    EXPECT_TRUE(innerThrew);
    EXPECT_EQ(completed.load(), 7);
}

TEST(GlobalPool, ConcurrentAccessIsSerialized)
{
    // Many threads hitting globalPool() while it needs a rebuild: the
    // unique_ptr swap used to be unsynchronized (a data race and a
    // use-after-free under a sanitizer).
    setGlobalJobs(3);
    globalPool();
    setGlobalJobs(4); // the next access must rebuild, exactly once
    std::atomic<int> correct{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t)
        threads.emplace_back([&correct] {
            for (int i = 0; i < 200; ++i)
                if (globalPool().threadCount() == 4u)
                    correct++;
        });
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(correct.load(), 8 * 200);
    setGlobalJobs(0);
}

TEST(GlobalPool, ResizeWhileBusyIsCatchableFatal)
{
    // Rebuilding the pool out from under a draining batch would be a
    // use-after-free; it must refuse loudly instead.
    setGlobalJobs(2);
    globalPool();
    EXPECT_THROW(globalPool().parallelFor(
                     4,
                     [](size_t i) {
                         if (i == 0) {
                             setGlobalJobs(3);
                             globalPool();
                         }
                     }),
                 std::runtime_error);
    setGlobalJobs(0);
    EXPECT_GE(globalPool().threadCount(), 1u); // idle: rebuild is fine
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, RangeBoundsRespected)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        int64_t v = rng.range(-5, 17);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 17);
        EXPECT_LT(rng.below(8), 8u);
    }
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int differ = 0;
    for (int i = 0; i < 50; ++i)
        differ += a.next() != b.next();
    EXPECT_GT(differ, 45);
}

TEST(JsonWriter, ObjectsArraysAndValues)
{
    JsonWriter json;
    json.beginObject();
    json.member("name", "pipeline");
    json.member("count", static_cast<uint64_t>(42));
    json.member("delta", static_cast<int64_t>(-7));
    json.member("ratio", 0.5);
    json.member("ok", true);
    json.key("passes");
    json.beginArray();
    json.value("a");
    json.value("b");
    json.endArray();
    json.endObject();
    EXPECT_EQ(json.str(),
              "{\"name\":\"pipeline\",\"count\":42,\"delta\":-7,"
              "\"ratio\":0.5,\"ok\":true,\"passes\":[\"a\",\"b\"]}");
}

TEST(JsonWriter, NestedContainersSeparateCorrectly)
{
    JsonWriter json;
    json.beginArray();
    json.beginObject();
    json.member("x", 1);
    json.endObject();
    json.beginObject();
    json.member("y", 2);
    json.endObject();
    json.beginArray();
    json.endArray();
    json.endArray();
    EXPECT_EQ(json.str(), "[{\"x\":1},{\"y\":2},[]]");
}

TEST(JsonWriter, EscapesStrings)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(jsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
    EXPECT_EQ(jsonEscape(std::string("nul\x01")), "nul\\u0001");

    JsonWriter json;
    json.beginObject();
    json.member("k\"ey", "v\nal");
    json.endObject();
    EXPECT_EQ(json.str(), "{\"k\\\"ey\":\"v\\nal\"}");
}

TEST(JsonWriter, NonFiniteDoublesAreNull)
{
    // JSON has no inf/nan literals; "%g" used to emit them verbatim,
    // producing unparseable documents.
    JsonWriter json;
    json.beginArray();
    json.value(std::numeric_limits<double>::infinity());
    json.value(-std::numeric_limits<double>::infinity());
    json.value(std::numeric_limits<double>::quiet_NaN());
    json.value(1.5);
    json.endArray();
    EXPECT_EQ(json.str(), "[null,null,null,1.5]");
}

TEST(JsonWriter, DoublesRoundTripExactly)
{
    // Round-trip precision: parsing the emitted text recovers the
    // exact double (the old %.6g lost up to 11 significant digits).
    const double values[] = {0.1,
                             1.0 / 3.0,
                             6.62607015e-34,
                             1e300,
                             123456789.123456789,
                             -2.2250738585072014e-308};
    for (double v : values) {
        JsonWriter json;
        json.value(v);
        EXPECT_EQ(std::strtod(json.str().c_str(), nullptr), v)
            << json.str();
    }
    // Values that fit in fewer digits stay short.
    JsonWriter json;
    json.value(0.5);
    EXPECT_EQ(json.str(), "0.5");
}

TEST(JsonWriter, RawSplicesSerializedValues)
{
    JsonWriter inner;
    inner.beginObject();
    inner.member("x", 1);
    inner.endObject();

    JsonWriter json;
    json.beginObject();
    json.member("a", true);
    json.key("inner");
    json.raw(inner.str());
    json.member("b", 2);
    json.endObject();
    EXPECT_EQ(json.str(), "{\"a\":true,\"inner\":{\"x\":1},\"b\":2}");
}

} // namespace
