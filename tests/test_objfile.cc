/**
 * @file
 * Tests for the .ccp/.cci binary formats and the ByteSink/ByteSource
 * serialization substrate.
 */

#include <gtest/gtest.h>

#include "compress/compressor.hh"
#include "compress/objfile.hh"
#include "decompress/compressed_cpu.hh"
#include "decompress/cpu.hh"
#include "support/serialize.hh"
#include "workloads/workloads.hh"

using namespace codecomp;

namespace {

TEST(Serialize, PrimitivesRoundTrip)
{
    ByteSink sink;
    sink.put8(0xab);
    sink.put32(0x12345678);
    sink.put64(0xdeadbeefcafef00dull);
    sink.putString("hello");
    sink.putBlob({1, 2, 3});

    ByteSource source(sink.bytes());
    EXPECT_EQ(source.get8(), 0xabu);
    EXPECT_EQ(source.get32(), 0x12345678u);
    EXPECT_EQ(source.get64(), 0xdeadbeefcafef00dull);
    EXPECT_EQ(source.getString(), "hello");
    EXPECT_EQ(source.getBlob(), (std::vector<uint8_t>{1, 2, 3}));
    EXPECT_TRUE(source.atEnd());
}

TEST(Serialize, TruncationIsAnError)
{
    ByteSink sink;
    sink.put32(100); // string length claims 100 bytes
    std::vector<uint8_t> bytes = sink.take();
    ByteSource source(bytes);
    EXPECT_THROW(source.getString(), std::runtime_error);

    std::vector<uint8_t> empty;
    ByteSource short_source(empty);
    EXPECT_THROW(short_source.get32(), std::runtime_error);
}

TEST(ObjFile, ProgramRoundTripPreservesEverything)
{
    Program original = workloads::buildBenchmark("li");
    Program loaded = loadProgram(saveProgram(original));

    EXPECT_EQ(loaded.text, original.text);
    EXPECT_EQ(loaded.data, original.data);
    EXPECT_EQ(loaded.entryIndex, original.entryIndex);
    EXPECT_EQ(loaded.dataBase, original.dataBase);
    ASSERT_EQ(loaded.codeRelocs.size(), original.codeRelocs.size());
    for (size_t i = 0; i < loaded.codeRelocs.size(); ++i) {
        EXPECT_EQ(loaded.codeRelocs[i].dataOffset,
                  original.codeRelocs[i].dataOffset);
        EXPECT_EQ(loaded.codeRelocs[i].targetIndex,
                  original.codeRelocs[i].targetIndex);
    }
    ASSERT_EQ(loaded.functions.size(), original.functions.size());
    for (size_t i = 0; i < loaded.functions.size(); ++i) {
        EXPECT_EQ(loaded.functions[i].name, original.functions[i].name);
        EXPECT_EQ(loaded.functions[i].body, original.functions[i].body);
        EXPECT_EQ(loaded.functions[i].prologue,
                  original.functions[i].prologue);
        EXPECT_EQ(loaded.functions[i].epilogues,
                  original.functions[i].epilogues);
    }

    // And it still runs identically.
    EXPECT_EQ(runProgram(loaded), runProgram(original));
}

TEST(ObjFile, ImageRoundTripExecutes)
{
    Program program = workloads::buildBenchmark("compress");
    ExecResult reference = runProgram(program);

    for (compress::Scheme scheme : compress::allSchemes()) {
        compress::CompressorConfig config;
        config.scheme = scheme;
        compress::CompressedImage image =
            compress::compressProgram(program, config);
        compress::CompressedImage loaded = loadImage(saveImage(image));

        EXPECT_EQ(loaded.scheme, image.scheme);
        EXPECT_EQ(loaded.text, image.text);
        EXPECT_EQ(loaded.textNibbles, image.textNibbles);
        EXPECT_EQ(loaded.entriesByRank, image.entriesByRank);
        EXPECT_EQ(loaded.data, image.data);
        EXPECT_EQ(loaded.totalBytes(), image.totalBytes());

        ExecResult run = runCompressed(loaded);
        EXPECT_EQ(run.output, reference.output);
        EXPECT_EQ(run.exitCode, reference.exitCode);
    }
}

TEST(ObjFile, RejectsCorruptInput)
{
    Program program = workloads::buildBenchmark("compress");
    std::vector<uint8_t> good = saveProgram(program);

    // Wrong magic.
    std::vector<uint8_t> bad_magic = good;
    bad_magic[0] ^= 0xff;
    EXPECT_THROW(loadProgram(bad_magic), std::runtime_error);

    // Truncated.
    std::vector<uint8_t> truncated(good.begin(),
                                   good.begin() +
                                       static_cast<long>(good.size() / 2));
    EXPECT_THROW(loadProgram(truncated), std::runtime_error);

    // Trailing garbage.
    std::vector<uint8_t> trailing = good;
    trailing.push_back(0);
    EXPECT_THROW(loadProgram(trailing), std::runtime_error);

    // A .ccp is not a .cci.
    EXPECT_THROW(loadImage(good), std::runtime_error);
}

TEST(ObjFile, FileRoundTrip)
{
    Program program = workloads::buildBenchmark("compress");
    std::string path = ::testing::TempDir() + "/codecomp_test.ccp";
    writeFile(path, saveProgram(program));
    Program loaded = loadProgram(readFile(path));
    EXPECT_EQ(loaded.text, program.text);
    std::remove(path.c_str());

    EXPECT_THROW(readFile("/nonexistent/path/xyz.ccp"),
                 std::runtime_error);
}

} // namespace
