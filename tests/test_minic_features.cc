/**
 * @file
 * MiniC language-feature tests beyond the basics: literals, comments,
 * operator precedence and associativity, scoping rules, control-flow
 * corners, and the standardized-frames compile option.
 */

#include <gtest/gtest.h>

#include "codegen/codegen.hh"
#include "decompress/cpu.hh"

using namespace codecomp;

namespace {

ExecResult
run(const std::string &source)
{
    return runProgram(codegen::compile(source), 1ull << 26);
}

int32_t
evalExpr(const std::string &expr)
{
    return run("int main() { return " + expr + "; }").exitCode;
}

TEST(MiniCFeatures, HexAndCharLiterals)
{
    EXPECT_EQ(evalExpr("0x10"), 16);
    EXPECT_EQ(evalExpr("0xFF & 0x0f"), 15);
    EXPECT_EQ(evalExpr("'A'"), 65);
    EXPECT_EQ(evalExpr("'\\n'"), 10);
    EXPECT_EQ(evalExpr("'\\t'"), 9);
    EXPECT_EQ(evalExpr("'\\\\'"), 92);
    EXPECT_EQ(evalExpr("'\\0'"), 0);
}

TEST(MiniCFeatures, Comments)
{
    EXPECT_EQ(run(R"(
        // line comment with symbols: {}[]()+-*/
        int main() {
            /* block
               comment */
            return 5; // trailing
        }
    )").exitCode, 5);
}

TEST(MiniCFeatures, PrecedenceAndAssociativity)
{
    EXPECT_EQ(evalExpr("2 + 3 * 4"), 14);
    EXPECT_EQ(evalExpr("(2 + 3) * 4"), 20);
    EXPECT_EQ(evalExpr("20 - 8 - 4"), 8);         // left assoc
    EXPECT_EQ(evalExpr("64 / 8 / 2"), 4);          // left assoc
    EXPECT_EQ(evalExpr("1 << 3 + 1"), 16);         // shift below add
    EXPECT_EQ(evalExpr("7 & 3 | 4"), 7);           // & above |
    EXPECT_EQ(evalExpr("1 | 2 ^ 2"), 1);           // ^ above |
    EXPECT_EQ(evalExpr("5 & 1 == 1"), 1);          // == above &
    EXPECT_EQ(evalExpr("1 + 2 < 4 && 9 > 8"), 1);  // rel above &&
    EXPECT_EQ(evalExpr("0 && 0 || 1"), 1);         // && above ||
    EXPECT_EQ(evalExpr("-3 + 1"), -2);
    EXPECT_EQ(evalExpr("!!7"), 1);
    EXPECT_EQ(evalExpr("- -5"), 5);
}

TEST(MiniCFeatures, ModuloSemanticsMatchC)
{
    EXPECT_EQ(evalExpr("7 % 3"), 1);
    EXPECT_EQ(evalExpr("-7 % 3"), -1);
    EXPECT_EQ(evalExpr("7 % -3"), 1);
    EXPECT_EQ(evalExpr("-7 % -3"), -1);
}

TEST(MiniCFeatures, Overflow32BitWraps)
{
    EXPECT_EQ(evalExpr("0x7fffffff + 1"),
              static_cast<int32_t>(0x80000000u));
    EXPECT_EQ(evalExpr("0x40000000 * 4"), 0);
    EXPECT_EQ(run(R"(
        int main() {
            int x = 0x7fffffff;
            x = x + x;
            return x == -2;
        }
    )").exitCode, 1);
}

TEST(MiniCFeatures, LocalsShadowGlobals)
{
    EXPECT_EQ(run(R"(
        int x = 100;
        int probe() { return x; }
        int main() {
            int x = 5;
            return probe() * 10 + x;
        }
    )").exitCode, 1005);
}

TEST(MiniCFeatures, GlobalScalarInitializers)
{
    EXPECT_EQ(run(R"(
        int a = -3;
        int b = 0x20;
        int c;
        int main() { return a + b + c; }
    )").exitCode, 29);
}

TEST(MiniCFeatures, PartialArrayInitializerZeroFills)
{
    EXPECT_EQ(run(R"(
        int t[6] = {5, -2};
        int main() {
            return t[0] * 100 + (t[1] + 2) * 10 + t[2] + t[5];
        }
    )").exitCode, 500);
}

TEST(MiniCFeatures, NestedLoopsAndArrays2D)
{
    // 2-D indexing via manual row-major arithmetic.
    EXPECT_EQ(run(R"(
        int grid[36];
        int main() {
            int r;
            int c;
            for (r = 0; r < 6; r = r + 1)
                for (c = 0; c < 6; c = c + 1)
                    grid[r * 6 + c] = r * c;
            int total = 0;
            for (r = 0; r < 36; r = r + 1) total = total + grid[r];
            return total;
        }
    )").exitCode, 225);
}

TEST(MiniCFeatures, NestedSwitches)
{
    EXPECT_EQ(run(R"(
        int classify(int a, int b) {
            switch (a) {
              case 0:
                switch (b) {
                  case 0: return 1;
                  case 1: return 2;
                  default: return 3;
                }
              case 1: return 4;
              default: return 5;
            }
        }
        int main() {
            return classify(0, 0) * 10000 + classify(0, 1) * 1000 +
                   classify(0, 9) * 100 + classify(1, 0) * 10 +
                   classify(7, 7);
        }
    )").exitCode, 12345);
}

TEST(MiniCFeatures, SwitchWithNegativeCases)
{
    EXPECT_EQ(run(R"(
        int sign_name(int x) {
            switch (x) {
              case -1: return 100;
              case 0: return 200;
              case 1: return 300;
              default: return 400;
            }
        }
        int main() {
            return sign_name(-1) + sign_name(0) + sign_name(1) +
                   sign_name(5);
        }
    )").exitCode, 1000);
}

TEST(MiniCFeatures, SwitchWithoutDefaultFallsThrough)
{
    EXPECT_EQ(run(R"(
        int main() {
            int acc = 9;
            switch (42) {
              case 1: acc = 1;
              case 2: acc = 2;
            }
            return acc;
        }
    )").exitCode, 9);
}

TEST(MiniCFeatures, WhileZeroNeverRuns)
{
    EXPECT_EQ(run(R"(
        int main() {
            int n = 3;
            while (0) n = 99;
            for (; 0 ;) n = 98;
            return n;
        }
    )").exitCode, 3);
}

TEST(MiniCFeatures, ForWithEmptySections)
{
    EXPECT_EQ(run(R"(
        int main() {
            int i = 0;
            for (;;) {
                i = i + 1;
                if (i == 5) break;
            }
            return i;
        }
    )").exitCode, 5);
}

TEST(MiniCFeatures, DeepCallChains)
{
    EXPECT_EQ(run(R"(
        int f1(int x) { return x + 1; }
        int f2(int x) { return f1(x) + 1; }
        int f3(int x) { return f2(x) + 1; }
        int f4(int x) { return f3(x) + 1; }
        int f5(int x) { return f4(x) + 1; }
        int main() { return f5(f5(f5(0))); }
    )").exitCode, 15);
}

TEST(MiniCFeatures, MutualRecursion)
{
    EXPECT_EQ(run(R"(
        int is_even(int n) {
            if (n == 0) return 1;
            return is_odd(n - 1);
        }
        int is_odd(int n) {
            if (n == 0) return 0;
            return is_even(n - 1);
        }
        int main() { return is_even(10) * 10 + is_odd(7); }
    )").exitCode, 11);
}

TEST(MiniCFeatures, ExpressionTooDeepIsCompileError)
{
    // Nine nested calls-in-arguments exceed the 8-slot expression stack.
    std::string expr = "1";
    for (int i = 0; i < 9; ++i)
        expr = "rt_max(1, 1 + " + expr + ")";
    EXPECT_THROW(run("int main() { return (1+(2+(3+(4+(5+(6+(7+(8"
                     "+(9+(10+11)))))))))); }"),
                 std::runtime_error);
}

TEST(MiniCFeatures, StandardizedFramesPreserveSemantics)
{
    const char *source = R"(
        int fib(int n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        int main() {
            puti(fib(15));
            return fib(10);
        }
    )";
    codegen::CompileOptions plain;
    codegen::CompileOptions uniform;
    uniform.standardizedFrames = true;

    Program a = codegen::compile(source, plain);
    Program b = codegen::compile(source, uniform);
    ExecResult ra = runProgram(a);
    ExecResult rb = runProgram(b);
    EXPECT_EQ(ra.output, rb.output);
    EXPECT_EQ(ra.exitCode, rb.exitCode);
    // The standardized build is statically larger (full save set)...
    EXPECT_GT(b.text.size(), a.text.size());
    // ...and all its fitting prologues are byte-identical.
    std::vector<isa::Word> first;
    size_t identical = 0, checked = 0;
    for (const FunctionSymbol &fn : b.functions) {
        if (fn.name == "_start" || fn.prologue.count == 0)
            continue;
        std::vector<isa::Word> words(
            b.text.begin() + fn.prologue.first,
            b.text.begin() + fn.prologue.first + fn.prologue.count);
        if (first.empty())
            first = words;
        identical += words == first;
        ++checked;
    }
    EXPECT_EQ(identical, checked);
}

} // namespace
