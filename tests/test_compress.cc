/**
 * @file
 * Tests for the compression core: candidate enumeration, greedy
 * selection (including lazy-heap vs reference equivalence), codeword
 * encodings, layout/branch patching, and full execution equivalence of
 * compressed programs on the CompressedCpu.
 */

#include <gtest/gtest.h>

#include "codegen/codegen.hh"
#include "compress/compressor.hh"
#include "compress/greedy.hh"
#include "compress/objfile.hh"
#include "isa/builder.hh"
#include "decompress/compressed_cpu.hh"
#include "decompress/cpu.hh"
#include "support/rng.hh"
#include "support/thread_pool.hh"
#include "workloads/workloads.hh"

using namespace codecomp;
using namespace codecomp::compress;

namespace {

Program
smallProgram()
{
    return codegen::compile(R"(
        int table[16];
        int fill(int n) {
            int i;
            for (i = 0; i < 16; i = i + 1) table[i] = i * n + 3;
            return table[n & 15];
        }
        int sum() {
            int i;
            int acc = 0;
            for (i = 0; i < 16; i = i + 1) acc = acc + table[i];
            return acc;
        }
        int main() {
            int r = fill(5);
            r = r + fill(9);
            r = r + sum();
            puti(r);
            return r & 127;
        }
    )");
}

// ---------------- candidates ----------------

TEST(Candidates, EligibilityExcludesRelativeBranches)
{
    Program program = smallProgram();
    std::vector<bool> eligible = eligibilityMask(program);
    ASSERT_EQ(eligible.size(), program.text.size());
    for (size_t i = 0; i < program.text.size(); ++i) {
        isa::Inst inst = isa::decode(program.text[i]);
        EXPECT_EQ(eligible[i], !inst.isRelativeBranch()) << "index " << i;
    }
    // Sanity: the program does contain both kinds.
    EXPECT_NE(std::count(eligible.begin(), eligible.end(), false), 0);
    EXPECT_NE(std::count(eligible.begin(), eligible.end(), true), 0);
}

TEST(Candidates, SequencesStayInsideBlocks)
{
    Program program = smallProgram();
    Cfg cfg = Cfg::build(program);
    auto candidates = enumerateCandidates(program, cfg, 1, 4);
    EXPECT_FALSE(candidates.empty());
    for (const Candidate &cand : candidates) {
        for (uint32_t pos : cand.positions) {
            uint32_t block = cfg.blockOf(pos);
            EXPECT_EQ(cfg.blockOf(pos +
                                  static_cast<uint32_t>(cand.seq.size()) -
                                  1),
                      block);
            // Occurrence content matches the candidate key.
            for (size_t k = 0; k < cand.seq.size(); ++k)
                EXPECT_EQ(program.text[pos + k], cand.seq[k]);
        }
    }
}

TEST(Candidates, CountNonOverlapping)
{
    // Positions 0,1,2,10 with length 2: 0 and 2 overlap 1; max is 0,2,10.
    std::vector<uint32_t> pos = {0, 1, 2, 10};
    EXPECT_EQ(countNonOverlapping(pos, 2, {}), 3u);
    EXPECT_EQ(countNonOverlapping(pos, 1, {}), 4u);
    EXPECT_EQ(countNonOverlapping(pos, 9, {}), 2u);

    std::vector<bool> consumed(16, false);
    consumed[11] = true; // kills the occurrence at 10 for length 2
    EXPECT_EQ(countNonOverlapping(pos, 2, consumed), 2u);
}

// ---------------- greedy ----------------

TEST(Greedy, SavingsModel)
{
    GreedyConfig config; // 8 insn nibbles, 4 codeword nibbles, 8 dict
    // One occurrence of a single instruction: 8 - 4 - 8 < 0.
    EXPECT_LT(savingsNibbles(config, 1, 1), 0);
    // Three occurrences: 3*4 - 8 > 0.
    EXPECT_GT(savingsNibbles(config, 1, 3), 0);
    // Long sequences save more per occurrence.
    EXPECT_GT(savingsNibbles(config, 4, 2), savingsNibbles(config, 1, 2));
}

TEST(Greedy, PlacementsAreValid)
{
    Program program = smallProgram();
    GreedyConfig config;
    config.maxEntries = 64;
    SelectionResult sel = selectGreedy(program, config);
    EXPECT_FALSE(sel.dict.entries.empty());
    ASSERT_EQ(sel.useCount.size(), sel.dict.entries.size());

    std::vector<bool> covered(program.text.size(), false);
    std::vector<uint32_t> uses(sel.dict.entries.size(), 0);
    for (const Placement &p : sel.placements) {
        ASSERT_LT(p.entryId, sel.dict.entries.size());
        const auto &entry = sel.dict.entries[p.entryId];
        ASSERT_EQ(entry.size(), p.length);
        for (uint32_t k = 0; k < p.length; ++k) {
            EXPECT_EQ(program.text[p.start + k], entry[k]);
            EXPECT_FALSE(covered[p.start + k]) << "overlap at "
                                               << p.start + k;
            covered[p.start + k] = true;
        }
        ++uses[p.entryId];
    }
    EXPECT_EQ(uses, sel.useCount);
}

TEST(Greedy, LazyHeapMatchesReference)
{
    // The lazy heap must be *exactly* the greedy algorithm, not an
    // approximation (DESIGN.md section 5.2).
    Program program = smallProgram();
    for (uint32_t max_len : {1u, 2u, 4u, 8u}) {
        GreedyConfig config;
        config.maxEntries = 128;
        config.maxEntryLen = max_len;
        SelectionResult fast = selectGreedy(program, config);
        SelectionResult slow = selectGreedyReference(program, config);
        EXPECT_EQ(fast.dict.entries, slow.dict.entries)
            << "maxEntryLen=" << max_len;
        EXPECT_EQ(fast.placements, slow.placements);
        EXPECT_EQ(fast.useCount, slow.useCount);
    }
}

TEST(Greedy, StaleHeapReevaluationMatchesReference)
{
    // Dense prefix/suffix overlap between candidates: accepting any
    // top candidate destroys occurrences of many others, so the heap
    // repeatedly pops entries with stale cached savings and must
    // re-evaluate and re-push them. The lazy heap and the from-scratch
    // reference must still agree exactly, and acceptance (which shares
    // forEachNonOverlapping with re-evaluation) must never trip the
    // "no live occurrences" assert.
    Program program = workloads::buildBenchmark("compress");
    for (uint32_t max_len : {2u, 4u, 8u}) {
        GreedyConfig config;
        config.maxEntries = 48;
        config.maxEntryLen = max_len;
        SelectionResult fast = selectGreedy(program, config);
        SelectionResult slow = selectGreedyReference(program, config);
        EXPECT_EQ(fast.dict.entries, slow.dict.entries)
            << "maxEntryLen=" << max_len;
        EXPECT_EQ(fast.placements, slow.placements);
        EXPECT_EQ(fast.useCount, slow.useCount);
    }
}

TEST(Greedy, RespectsEntryBudget)
{
    Program program = workloads::buildBenchmark("compress");
    GreedyConfig config;
    config.maxEntries = 16;
    SelectionResult sel = selectGreedy(program, config);
    EXPECT_LE(sel.dict.entries.size(), 16u);
    EXPECT_EQ(sel.dict.entries.size(), 16u); // plenty of candidates exist
}

TEST(Greedy, RespectsLengthLimit)
{
    Program program = workloads::buildBenchmark("compress");
    GreedyConfig config;
    config.maxEntries = 256;
    config.maxEntryLen = 2;
    SelectionResult sel = selectGreedy(program, config);
    for (const auto &entry : sel.dict.entries)
        EXPECT_LE(entry.size(), 2u);
}

// ---------------- encodings ----------------

TEST(Encoding, SchemeParameters)
{
    EXPECT_EQ(schemeParams(Scheme::Baseline).maxCodewords, 8192u);
    EXPECT_EQ(schemeParams(Scheme::OneByte).maxCodewords, 32u);
    EXPECT_EQ(schemeParams(Scheme::Nibble).maxCodewords, 4680u);
    EXPECT_EQ(schemeParams(Scheme::Baseline).unitNibbles, 4u);
    EXPECT_EQ(schemeParams(Scheme::OneByte).unitNibbles, 2u);
    EXPECT_EQ(schemeParams(Scheme::Nibble).unitNibbles, 1u);
}

TEST(Encoding, NibbleCodewordLengthsByRank)
{
    EXPECT_EQ(codewordNibbles(Scheme::Nibble, 0), 1u);
    EXPECT_EQ(codewordNibbles(Scheme::Nibble, 7), 1u);
    EXPECT_EQ(codewordNibbles(Scheme::Nibble, 8), 2u);
    EXPECT_EQ(codewordNibbles(Scheme::Nibble, 71), 2u);
    EXPECT_EQ(codewordNibbles(Scheme::Nibble, 72), 3u);
    EXPECT_EQ(codewordNibbles(Scheme::Nibble, 583), 3u);
    EXPECT_EQ(codewordNibbles(Scheme::Nibble, 584), 4u);
    EXPECT_EQ(codewordNibbles(Scheme::Nibble, 4679), 4u);
}

class EncodingRoundTrip : public ::testing::TestWithParam<Scheme>
{};

TEST_P(EncodingRoundTrip, MixedStreamDecodes)
{
    Scheme scheme = GetParam();
    SchemeParams params = schemeParams(scheme);
    Rng rng(7);

    // Random interleaving of codewords and instructions.
    std::vector<std::optional<uint32_t>> expected;
    NibbleWriter writer;
    for (int i = 0; i < 500; ++i) {
        if (rng.chance(1, 2)) {
            uint32_t rank =
                static_cast<uint32_t>(rng.below(params.maxCodewords));
            emitCodeword(writer, scheme, rank);
            expected.push_back(rank);
        } else {
            isa::Word word = isa::encode(
                isa::addi(static_cast<uint8_t>(rng.below(32)),
                          static_cast<uint8_t>(rng.below(32)),
                          static_cast<int32_t>(rng.range(-100, 100))));
            emitInstruction(writer, scheme, word);
            expected.push_back(std::nullopt);
        }
    }

    NibbleReader reader(writer.bytes().data(), writer.nibbleCount());
    for (const auto &want : expected) {
        auto got = decodeCodeword(reader, scheme);
        EXPECT_EQ(got.has_value(), want.has_value());
        if (want && got) {
            EXPECT_EQ(*got, *want);
        } else if (!want) {
            reader.getWord(); // consume the instruction
        }
    }
    EXPECT_TRUE(reader.atEnd());
}

INSTANTIATE_TEST_SUITE_P(Schemes, EncodingRoundTrip,
                         ::testing::ValuesIn(allSchemes()),
                         [](const auto &info) {
                             return schemeTestName(info.param);
                         });

TEST(Encoding, BaselineEscapeBytesUseIllegalOpcodes)
{
    // Every codeword's first byte must decode as an illegal opcode and
    // every legal instruction's first byte must not (the paper's
    // backward-compatibility property, section 4.1).
    for (uint32_t rank : {0u, 255u, 256u, 4095u, 8191u}) {
        NibbleWriter writer;
        emitCodeword(writer, Scheme::Baseline, rank);
        uint8_t first = writer.bytes()[0];
        EXPECT_TRUE(isa::isIllegalPrimOp(first >> 2)) << rank;
    }
}

// ---------------- end-to-end compression ----------------

TEST(Compressor, SmallProgramShrinksAndRuns)
{
    Program program = smallProgram();
    ExecResult original = runProgram(program);

    CompressorConfig config;
    CompressedImage image = compressProgram(program, config);

    EXPECT_LT(image.compressionRatio(), 1.0);
    EXPECT_GT(image.compressionRatio(), 0.2);
    EXPECT_EQ(image.originalTextBytes, program.textBytes());

    ExecResult compressed = runCompressed(image);
    EXPECT_EQ(compressed.output, original.output);
    EXPECT_EQ(compressed.exitCode, original.exitCode);
}

TEST(Compressor, CompositionSumsToImageSize)
{
    Program program = workloads::buildBenchmark("compress");
    for (Scheme scheme : allSchemes()) {
        CompressorConfig config;
        config.scheme = scheme;
        CompressedImage image = compressProgram(program, config);
        EXPECT_EQ(image.composition.totalNibbles(),
                  image.textNibbles + image.dictionaryBytes() * 2)
            << schemeName(scheme);
        if (scheme == Scheme::Baseline) {
            // 2-byte codewords: escape and index bytes are equal.
            EXPECT_EQ(image.composition.escapeNibbles,
                      image.composition.codewordNibbles);
        }
    }
}

TEST(Compressor, AddressMapIsMonotoneAndComplete)
{
    Program program = workloads::buildBenchmark("li");
    CompressorConfig config;
    CompressedImage image = compressProgram(program, config);

    // Every branch target and jump-table target resolves.
    for (uint32_t i = 0; i < program.text.size(); ++i) {
        isa::Inst inst = isa::decode(program.text[i]);
        if (inst.isRelativeBranch()) {
            EXPECT_TRUE(
                image.addrMap.count(program.branchTargetIndex(i)));
        }
    }
    for (const CodeReloc &reloc : program.codeRelocs) {
        EXPECT_TRUE(image.addrMap.count(reloc.targetIndex));
    }

    // Monotone in original index.
    uint32_t prev = 0;
    bool first = true;
    for (uint32_t i = 0; i < program.text.size(); ++i) {
        auto it = image.addrMap.find(i);
        if (it == image.addrMap.end())
            continue;
        if (!first) {
            EXPECT_GT(it->second, prev) << "at index " << i;
        }
        prev = it->second;
        first = false;
    }
}

TEST(Compressor, MoreCodewordsNeverHurt)
{
    Program program = workloads::buildBenchmark("ijpeg");
    double prev_ratio = 1.0;
    for (uint32_t budget : {16u, 64u, 256u, 1024u, 8192u}) {
        CompressorConfig config;
        config.maxEntries = budget;
        CompressedImage image = compressProgram(program, config);
        EXPECT_LE(image.compressionRatio(), prev_ratio + 1e-9)
            << "budget " << budget;
        prev_ratio = image.compressionRatio();
    }
    EXPECT_LT(prev_ratio, 0.85); // meaningful compression at 8192
}

// ---------------- parallel determinism ----------------

TEST(Candidates, EnumerationIdenticalAcrossJobCounts)
{
    Program program = workloads::buildBenchmark("compress");
    Cfg cfg = Cfg::build(program);
    setGlobalJobs(1);
    auto serial = enumerateCandidates(program, cfg, 1, 4);
    for (unsigned jobs : {2u, 3u, 8u}) {
        setGlobalJobs(jobs);
        auto parallel = enumerateCandidates(program, cfg, 1, 4);
        ASSERT_EQ(parallel.size(), serial.size()) << "jobs " << jobs;
        for (size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(parallel[i].seq, serial[i].seq)
                << "jobs " << jobs << " candidate " << i;
            EXPECT_EQ(parallel[i].positions, serial[i].positions)
                << "jobs " << jobs << " candidate " << i;
        }
    }
    setGlobalJobs(0);
}

TEST(Compressor, ImageBitIdenticalAcrossJobCounts)
{
    // The determinism contract of the parallel pipeline: for every
    // scheme, --jobs 1/2/8 must produce byte-for-byte identical
    // compressed images, down to the serialized .cci file.
    Program program = workloads::buildBenchmark("li");
    for (Scheme scheme : allSchemes()) {
        CompressorConfig config;
        config.scheme = scheme;
        setGlobalJobs(1);
        CompressedImage serial = compressProgram(program, config);
        std::vector<uint8_t> serialBytes = saveImage(serial);
        for (unsigned jobs : {2u, 8u}) {
            setGlobalJobs(jobs);
            CompressedImage parallel = compressProgram(program, config);
            EXPECT_EQ(parallel.text, serial.text)
                << schemeName(scheme) << " jobs " << jobs;
            EXPECT_EQ(parallel.textNibbles, serial.textNibbles);
            EXPECT_EQ(parallel.entriesByRank, serial.entriesByRank);
            EXPECT_EQ(parallel.data, serial.data);
            EXPECT_EQ(parallel.entryPointNibble,
                      serial.entryPointNibble);
            EXPECT_EQ(saveImage(parallel), serialBytes)
                << schemeName(scheme) << " jobs " << jobs;
        }
    }
    setGlobalJobs(0);
}

/** Every benchmark x every scheme: compressed execution must match. */
class CompressedExecution
    : public ::testing::TestWithParam<std::tuple<std::string, Scheme>>
{};

TEST_P(CompressedExecution, MatchesOriginal)
{
    const auto &[name, scheme] = GetParam();
    Program program = workloads::buildBenchmark(name);
    ExecResult original = runProgram(program);

    CompressorConfig config;
    config.scheme = scheme;
    CompressedImage image = compressProgram(program, config);
    EXPECT_LT(image.compressionRatio(), 1.0) << "no compression achieved";

    ExecResult compressed = runCompressed(image);
    EXPECT_EQ(compressed.output, original.output);
    EXPECT_EQ(compressed.exitCode, original.exitCode);
    // Without far-branch stubs the dynamic instruction streams are
    // identical, down to the count.
    if (image.farBranchExpansions == 0)
        EXPECT_EQ(compressed.instCount, original.instCount);
    else
        EXPECT_GE(compressed.instCount, original.instCount);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, CompressedExecution,
    ::testing::Combine(::testing::Values("compress", "li", "ijpeg", "go"),
                       ::testing::ValuesIn(allSchemes())),
    [](const auto &info) {
        return std::get<0>(info.param) + std::string("_") +
               schemeTestName(std::get<1>(info.param));
    });

} // namespace
