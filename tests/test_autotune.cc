/**
 * @file
 * Tests for the profile-guided memory-budget autotuner (src/autotune)
 * and the hot/cold layout machinery it searches over: search-space
 * enumeration and pruning, frontier/winner invariants, end-to-end
 * determinism of the JSON artifact across job counts and cache
 * settings, execution equivalence of hot/cold images, and the job-spec
 * plumbing that carries the layout through the farm.
 *
 * Every suite name carries the Autotune prefix: the `autotune` ctest
 * label and test preset select on it (and no other partition filter --
 * Timing, Farm, Strategy, ... -- matches it).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "autotune/autotune.hh"
#include "compress/codec.hh"
#include "compress/objfile.hh"
#include "decompress/compressed_cpu.hh"
#include "decompress/cpu.hh"
#include "farm/farm.hh"
#include "farm/jobspec.hh"
#include "support/thread_pool.hh"
#include "timing/timing.hh"
#include "workloads/workloads.hh"

using namespace codecomp;
using namespace codecomp::autotune;

namespace {

/** A small spec that keeps tests fast: one scheme, one strategy, two
 *  dictionary shares, two geometries. */
BudgetSpec
smallSpec()
{
    BudgetSpec spec;
    spec.budgets = {2048, 65536};
    spec.cacheGeometries = {{1024, 32, 1}, {2048, 32, 1}};
    spec.schemes = {compress::Scheme::Nibble};
    spec.strategies = {compress::StrategyKind::Greedy};
    spec.dictCaps = {16, 64};
    spec.model.frontendWidth = 1;
    spec.model.missPenaltyCycles = 10;
    spec.model.memoryCyclesPerWord = 1;
    spec.model.expansionCyclesPerWord = 1;
    spec.model.redirectPenaltyCycles = 2;
    return spec;
}

TEST(AutotuneSearchSpace, EnumeratesSchemesStrategiesCapsLayouts)
{
    BudgetSpec spec = smallSpec();
    SearchSpace space(spec);
    // 1 scheme x 1 strategy x 2 caps x 2 layouts, nothing pruned.
    EXPECT_EQ(space.enumerated(), 4u);
    EXPECT_EQ(space.pruned(), 0u);
    EXPECT_EQ(space.points().size(), 4u);
    EXPECT_EQ(space.geometries().size(), 2u);
    EXPECT_EQ(space.points()[0].label, "nibble/greedy/d16/linear");
    EXPECT_EQ(space.points()[1].label, "nibble/greedy/d16/hotcold");

    // Defaults: every registered scheme, {greedy, refit}, 5 caps --
    // except that caps clip to each scheme's codeword budget and then
    // deduplicate (onebyte's 32-codeword space keeps only {16, 32}).
    BudgetSpec defaulted = smallSpec();
    defaulted.schemes.clear();
    defaulted.strategies.clear();
    defaulted.dictCaps.clear();
    defaulted.tryHotCold = false;
    SearchSpace wide(defaulted);
    size_t expected = 0;
    for (compress::Scheme scheme : compress::allSchemes()) {
        std::set<uint32_t> caps;
        for (uint32_t cap : {16u, 64u, 256u, 1024u, 4096u})
            caps.insert(std::min(
                cap, compress::schemeParams(scheme).maxCodewords));
        expected += 2 * caps.size();
    }
    EXPECT_EQ(wide.enumerated(), expected);

    // Identical specs enumerate identically (label-for-label).
    SearchSpace again(spec);
    ASSERT_EQ(again.points().size(), space.points().size());
    for (size_t i = 0; i < space.points().size(); ++i)
        EXPECT_EQ(again.points()[i].label, space.points()[i].label);
}

TEST(AutotuneSearchSpace, PrunesGeometriesAndDictionaryCaps)
{
    // A geometry larger than every budget can never be feasible.
    BudgetSpec spec = smallSpec();
    spec.budgets = {2048};
    spec.cacheGeometries = {{1024, 32, 1}, {4096, 32, 2}};
    SearchSpace space(spec);
    EXPECT_EQ(space.geometries().size(), 1u);
    EXPECT_EQ(space.prunedGeometries(), 1u);

    // Analytic dictionary cutoff: 4 bytes/entry of ROM beside the
    // smallest kept cache (1024) leaves 1024 bytes of headroom, so a
    // 4096-entry cap (>= 16KB of ROM) is dropped before compression.
    spec.dictCaps = {16, 4096};
    SearchSpace pruned(spec);
    EXPECT_EQ(pruned.enumerated(), 4u);
    EXPECT_EQ(pruned.pruned(), 2u);
    for (const SearchPoint &point : pruned.points())
        EXPECT_EQ(point.config.maxEntries, 16u);

    // Caps clip to the scheme's codeword budget and deduplicate.
    BudgetSpec clipped = smallSpec();
    clipped.budgets = {1u << 20};
    clipped.dictCaps = {1u << 20, 1u << 21};
    clipped.tryHotCold = false;
    SearchSpace one(clipped);
    EXPECT_EQ(one.points().size(), 1u);
    EXPECT_EQ(one.points()[0].config.maxEntries,
              compress::schemeParams(compress::Scheme::Nibble)
                  .maxCodewords);

    // Invalid specs are catchable fatals naming the reason.
    BudgetSpec bad = smallSpec();
    bad.budgets.clear();
    EXPECT_THROW(SearchSpace{bad}, std::runtime_error);
    bad = smallSpec();
    bad.budgets = {512}; // below every geometry
    EXPECT_THROW(SearchSpace{bad}, std::runtime_error);
    bad = smallSpec();
    bad.model.l2 = {512, 32, 1}; // L2 below the candidate L1s
    EXPECT_NE(budgetSpecError(bad), "");
}

TEST(AutotuneEndToEnd, FrontierAndWinnersAreConsistent)
{
    AutotuneResult result = autotune::autotune({"compress"}, smallSpec());
    ASSERT_EQ(result.workloads.size(), 1u);
    const WorkloadResult &wr = result.workloads[0];
    EXPECT_EQ(result.failedJobs, 0u);

    // 2 native points + 4 configs x 2 geometries.
    EXPECT_EQ(wr.points.size(), 2u + 4u * 2u);
    ASSERT_FALSE(wr.frontier.empty());

    // The frontier ascends in bytes, strictly descends in cycles, and
    // no point anywhere dominates a frontier point.
    for (size_t i = 1; i < wr.frontier.size(); ++i) {
        const CandidatePoint &prev = wr.points[wr.frontier[i - 1]];
        const CandidatePoint &next = wr.points[wr.frontier[i]];
        EXPECT_GE(next.onChipBytes, prev.onChipBytes);
        EXPECT_LT(next.cycles(), prev.cycles());
    }
    for (uint32_t index : wr.frontier)
        for (const CandidatePoint &other : wr.points)
            EXPECT_FALSE(other.onChipBytes <=
                             wr.points[index].onChipBytes &&
                         other.cycles() < wr.points[index].cycles())
                << other.id << " dominates " << wr.points[index].id;

    // Winners: the fewest-cycle point that fits each budget.
    ASSERT_EQ(wr.winners.size(), result.budgets.size());
    for (size_t b = 0; b < wr.winners.size(); ++b) {
        const BudgetWinner &winner = wr.winners[b];
        EXPECT_EQ(winner.budget, result.budgets[b]);
        ASSERT_GE(winner.point, 0);
        const CandidatePoint &best =
            wr.points[static_cast<size_t>(winner.point)];
        EXPECT_LE(best.onChipBytes, winner.budget);
        for (const CandidatePoint &other : wr.points)
            if (other.onChipBytes <= winner.budget)
                EXPECT_LE(best.cycles(), other.cycles()) << other.id;
    }
    // The roomy budget admits every point, so its winner is the global
    // cycle minimum; the tight budget's winner can only be slower.
    EXPECT_GE(wr.winners[0].point >= 0
                  ? wr.points[static_cast<size_t>(wr.winners[0].point)]
                        .cycles()
                  : UINT64_MAX,
              wr.points[static_cast<size_t>(wr.winners[1].point)]
                  .cycles());
}

TEST(AutotuneEndToEnd, ArtifactIsByteIdenticalAcrossJobsAndCache)
{
    BudgetSpec spec = smallSpec();

    setGlobalJobs(1);
    AutotuneOptions nocache;
    nocache.cache = false;
    std::string serial =
        autotune::autotune({"compress"}, spec, nocache).toJson();

    setGlobalJobs(4);
    std::string parallel = autotune::autotune({"compress"}, spec).toJson();

    EXPECT_EQ(serial, parallel);
    // The artifact names its own shape.
    for (const char *field :
         {"\"budgets\"", "\"workloads\"", "\"points\"", "\"frontier\"",
          "\"winners\"", "\"on_chip_bytes\"", "\"stall_l2_miss\"",
          "\"nibble/greedy/d16/linear@1024:32:1\""})
        EXPECT_NE(serial.find(field), std::string::npos) << field;
}

TEST(AutotuneEndToEnd, UnknownWorkloadIsACatchableFatal)
{
    EXPECT_THROW(autotune::autotune({"no-such-benchmark"}, smallSpec()),
                 std::runtime_error);
}

/** Compress @p program hot/cold with a real profile. */
compress::CompressedImage
compressHotCold(const Program &program)
{
    compress::CompressorConfig config;
    config.scheme = compress::Scheme::Nibble;
    config.layout = compress::LayoutMode::HotCold;
    config.trafficProfile = timing::profileExecutionCounts(program);
    return compress::compressProgram(program, config);
}

TEST(AutotuneHotColdExecution, ReorderedImageRunsIdentically)
{
    for (const char *name : {"compress", "li"}) {
        Program program = workloads::buildBenchmark(name);
        ExecResult native = Cpu(program).run();

        compress::CompressedImage hot = compressHotCold(program);
        ExecResult reordered = CompressedCpu(hot).run();
        EXPECT_EQ(reordered.output, native.output) << name;
        EXPECT_EQ(reordered.exitCode, native.exitCode) << name;

        // Same bytes on a recompress: the layout pass is deterministic.
        EXPECT_EQ(saveImage(hot), saveImage(compressHotCold(program)))
            << name;

        // The reorder actually changes the image (the hot chains of
        // these workloads are not already first).
        compress::CompressorConfig linear;
        linear.scheme = compress::Scheme::Nibble;
        EXPECT_NE(saveImage(hot),
                  saveImage(compress::compressProgram(program, linear)))
            << name;
    }
}

TEST(AutotuneHotColdExecution, HotColdWithoutProfileIsAFatal)
{
    Program program = workloads::buildBenchmark("compress");
    compress::CompressorConfig config;
    config.scheme = compress::Scheme::Nibble;
    config.layout = compress::LayoutMode::HotCold;
    EXPECT_THROW(compress::compressProgram(program, config),
                 std::runtime_error);
    config.trafficProfile.assign(3, 1); // wrong length
    EXPECT_THROW(compress::compressProgram(program, config),
                 std::runtime_error);
}

TEST(AutotuneSpecLayout, JobSpecRoundTripsLayout)
{
    farm::FarmJob job;
    job.workload = "compress";
    job.config.scheme = compress::Scheme::Nibble;
    job.config.layout = compress::LayoutMode::HotCold;
    std::string spec = farm::writeJobSpec({job});
    EXPECT_NE(spec.find("\"layout\":\"hotcold\""), std::string::npos);

    std::vector<farm::FarmJob> parsed = farm::parseJobSpec(spec);
    ASSERT_EQ(parsed.size(), 1u);
    EXPECT_EQ(parsed[0].config.layout, compress::LayoutMode::HotCold);

    // Linear is the default and stays off the wire.
    job.config.layout = compress::LayoutMode::Linear;
    std::string linear = farm::writeJobSpec({job});
    EXPECT_EQ(linear.find("\"layout\""), std::string::npos);
    EXPECT_EQ(farm::parseJobSpec(linear)[0].config.layout,
              compress::LayoutMode::Linear);

    // An unknown layout value is a catchable fatal naming the field.
    EXPECT_THROW(
        farm::parseJobSpec("{\"jobs\":[{\"workload\":\"compress\","
                           "\"layout\":\"shuffled\"}]}"),
        std::runtime_error);
}

TEST(AutotuneSpecLayout, FarmAutoProfilesHotColdJobs)
{
    // A hot/cold farm job without a caller-supplied profile gets the
    // plain-processor execution counts filled in by the farm -- the
    // result must be bit-identical to compressing with the profile
    // supplied by hand.
    Program program = workloads::buildBenchmark("compress");
    std::vector<uint8_t> direct = saveImage(compressHotCold(program));

    farm::FarmJob job;
    job.id = "hotcold-autoprofile";
    job.workload = "compress";
    job.config.scheme = compress::Scheme::Nibble;
    job.config.layout = compress::LayoutMode::HotCold;
    farm::FarmReport report = farm::runFarm({job});
    ASSERT_EQ(report.results.size(), 1u);
    ASSERT_TRUE(report.results[0].ok()) << report.results[0].error;
    EXPECT_EQ(report.results[0].imageBytes, direct);
}

} // namespace
