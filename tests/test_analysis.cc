/**
 * @file
 * Tests for the static analyses behind the paper's characterization
 * figures (Fig 1, Table 1, Table 3, Figs 6/7).
 */

#include <gtest/gtest.h>

#include "analysis/analysis.hh"
#include "codegen/codegen.hh"
#include "compress/compressor.hh"
#include "isa/builder.hh"
#include "workloads/workloads.hh"

using namespace codecomp;
using namespace codecomp::analysis;

namespace {

TEST(Redundancy, HandComputedProfile)
{
    Program p;
    isa::Word a = isa::encode(isa::addi(3, 3, 1));
    isa::Word b = isa::encode(isa::addi(4, 4, 1));
    isa::Word c = isa::encode(isa::blr());
    // a x3, b x1, c x2
    p.text = {a, b, a, c, a, c};
    p.entryIndex = 0;
    p.finalize();

    RedundancyProfile profile = profileRedundancy(p);
    EXPECT_EQ(profile.totalInsns, 6u);
    EXPECT_EQ(profile.distinctEncodings, 3u);
    EXPECT_EQ(profile.usedOnce, 1u);
    EXPECT_EQ(profile.insnsFromRepeated, 5u);
    EXPECT_DOUBLE_EQ(profile.fractionSingleUse(), 1.0 / 6.0);
    EXPECT_DOUBLE_EQ(profile.fractionRepeated(), 5.0 / 6.0);
    // Top 33% of 3 encodings: ceil(0.99) = 1 encoding: 3/6.
    EXPECT_DOUBLE_EQ(profile.topEncodingCoverage(33), 0.5);
    EXPECT_DOUBLE_EQ(profile.topEncodingCoverage(100), 1.0);
}

TEST(Redundancy, BenchmarksMatchPaperShape)
{
    // Paper Fig 1: on average < 20% of instructions have encodings used
    // exactly once. Our SDTS output must reproduce that shape.
    double total_single = 0;
    for (const auto &name : workloads::benchmarkNames()) {
        Program p = workloads::buildBenchmark(name);
        RedundancyProfile profile = profileRedundancy(p);
        EXPECT_LT(profile.fractionSingleUse(), 0.35) << name;
        EXPECT_GT(profile.fractionRepeated(), 0.6) << name;
        total_single += profile.fractionSingleUse();
    }
    EXPECT_LT(total_single / 8, 0.20);
}

TEST(BranchOffsets, HandComputed)
{
    // A bc with displacement field value d covers byte distance 4*d
    // architecturally; at 2-byte granularity the field must hold 2*d.
    Program p;
    p.text.push_back(isa::encode(isa::bc(isa::Bo::Always, 0, 5000)));
    for (int i = 0; i < 5000; ++i)
        p.text.push_back(isa::encode(isa::nop()));
    p.text.push_back(isa::encode(isa::blr()));
    p.entryIndex = 0;
    p.finalize();

    BranchOffsetUsage usage = analyzeBranchOffsets(p);
    EXPECT_EQ(usage.pcRelativeBranches, 1u);
    // 5000 insns -> 20000 bytes. 14-bit field: +/-8191.
    // 2-byte units: 10000 > 8191 -> lacks. 1-byte: 20000 -> lacks.
    // 4-bit: 40000 -> lacks.
    EXPECT_EQ(usage.lack2Byte, 1u);
    EXPECT_EQ(usage.lack1Byte, 1u);
    EXPECT_EQ(usage.lack4Bit, 1u);

    Program q;
    q.text.push_back(isa::encode(isa::bc(isa::Bo::Always, 0, 2)));
    q.text.push_back(isa::encode(isa::nop()));
    q.text.push_back(isa::encode(isa::blr()));
    q.entryIndex = 0;
    q.finalize();
    usage = analyzeBranchOffsets(q);
    EXPECT_EQ(usage.pcRelativeBranches, 1u);
    EXPECT_EQ(usage.lack2Byte, 0u);
    EXPECT_EQ(usage.lack4Bit, 0u);
}

TEST(BranchOffsets, ShapeAcrossSuite)
{
    // Table 1 shape: the share of branches lacking headroom grows as
    // the granularity gets finer, and stays a small minority.
    for (const auto &name : workloads::benchmarkNames()) {
        Program p = workloads::buildBenchmark(name);
        BranchOffsetUsage usage = analyzeBranchOffsets(p);
        EXPECT_GT(usage.pcRelativeBranches, 100u) << name;
        EXPECT_LE(usage.lack2Byte, usage.lack1Byte) << name;
        EXPECT_LE(usage.lack1Byte, usage.lack4Bit) << name;
        EXPECT_LT(static_cast<double>(usage.lack4Bit) /
                      usage.pcRelativeBranches,
                  0.25)
            << name;
    }
}

TEST(PrologueEpilogue, HandComputed)
{
    Program p = codegen::compile(R"(
        int f(int x) { return x + 1; }
        int main() { return f(1); }
    )");
    PrologueEpilogue stats = analyzePrologueEpilogue(p);
    EXPECT_EQ(stats.totalInsns, p.text.size());
    EXPECT_GT(stats.prologueInsns, 0u);
    EXPECT_GT(stats.epilogueInsns, stats.prologueInsns); // + blr etc.
}

TEST(PrologueEpilogue, SuiteMatchesTable3Shape)
{
    // Paper Table 3: prologue ~4-8%, epilogue ~4-10% of static insns.
    for (const auto &name : workloads::benchmarkNames()) {
        Program p = workloads::buildBenchmark(name);
        PrologueEpilogue stats = analyzePrologueEpilogue(p);
        EXPECT_GT(stats.prologueFraction(), 0.01) << name;
        EXPECT_LT(stats.prologueFraction(), 0.15) << name;
        EXPECT_GT(stats.epilogueFraction(), 0.01) << name;
        EXPECT_LT(stats.epilogueFraction(), 0.20) << name;
    }
}

TEST(DictionaryUsage, ConsistentWithSelection)
{
    Program p = workloads::buildBenchmark("ijpeg");
    compress::CompressorConfig config;
    config.maxEntryLen = 8;
    compress::CompressedImage image = compress::compressProgram(p, config);
    DictionaryUsage usage = analyzeDictionaryUsage(image);

    EXPECT_EQ(usage.totalEntries, image.entriesByRank.size());
    uint32_t sum = 0;
    for (const auto &[len, count] : usage.entriesByLength) {
        EXPECT_GE(len, 1u);
        EXPECT_LE(len, 8u);
        sum += count;
    }
    EXPECT_EQ(sum, usage.totalEntries);
    EXPECT_GT(usage.totalBytesSaved, 0);
    // Paper Fig 6: single-instruction entries are 48-80% of the
    // dictionary; Fig 7: they contribute roughly half the savings.
    double single_frac =
        static_cast<double>(usage.entriesByLength.at(1)) /
        usage.totalEntries;
    EXPECT_GT(single_frac, 0.3);
    double single_savings =
        static_cast<double>(usage.bytesSavedByLength.at(1)) /
        usage.totalBytesSaved;
    EXPECT_GT(single_savings, 0.25);
}

} // namespace
