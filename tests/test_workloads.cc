/**
 * @file
 * Tests for the synthetic CINT95 substitute suite: determinism,
 * executability, SPEC-like relative sizing, and scaling.
 */

#include <gtest/gtest.h>

#include "codegen/codegen.hh"
#include "decompress/cpu.hh"
#include "workloads/generator.hh"
#include "workloads/workloads.hh"

using namespace codecomp;
using namespace codecomp::workloads;

namespace {

TEST(Workloads, EightBenchmarksInPaperOrder)
{
    const auto &names = benchmarkNames();
    ASSERT_EQ(names.size(), 8u);
    EXPECT_EQ(names.front(), "compress");
    EXPECT_EQ(names[1], "gcc");
    EXPECT_EQ(names.back(), "vortex");
}

TEST(Workloads, UnknownNameIsAnError)
{
    EXPECT_THROW(benchmarkSource("espresso"), std::runtime_error);
}

TEST(Workloads, SourceGenerationIsDeterministic)
{
    for (const std::string &name : benchmarkNames())
        EXPECT_EQ(benchmarkSource(name), benchmarkSource(name)) << name;
}

TEST(Workloads, GccIsLargestCompressIsSmallest)
{
    // Mirrors CINT95's size ordering (and paper Table 2's extremes).
    size_t compress_size = buildBenchmark("compress").text.size();
    size_t gcc_size = buildBenchmark("gcc").text.size();
    for (const std::string &name : benchmarkNames()) {
        size_t size = buildBenchmark(name).text.size();
        EXPECT_GE(size, compress_size) << name;
        EXPECT_LE(size, gcc_size) << name;
    }
    EXPECT_GT(gcc_size, 4 * compress_size);
}

TEST(Workloads, ScaleGrowsPrograms)
{
    Program one = buildBenchmark("li", 1);
    Program two = buildBenchmark("li", 2);
    EXPECT_GT(two.text.size(), one.text.size() * 3 / 2);
    // Scaled programs still run.
    ExecResult r = runProgram(two, 1ull << 26);
    EXPECT_EQ(r.exitCode, 0);
}

TEST(Workloads, BigLoopFunctionCompilesAndSpans)
{
    std::string src = bigLoopFunction("huge", 600, 42) +
                      "int main() { return huge(3) & 127; }\n";
    Program p = codegen::compile(src);
    EXPECT_GT(p.text.size(), 1200u); // ~2 insns per statement
    ExecResult r = runProgram(p, 1 << 22);
    EXPECT_EQ(r.instCount, runProgram(p, 1 << 22).instCount);
}

/** Each benchmark executes, produces output, and is reproducible. */
class WorkloadExecution : public ::testing::TestWithParam<std::string>
{};

TEST_P(WorkloadExecution, DeterministicRun)
{
    Program p = buildBenchmark(GetParam());
    ExecResult a = runProgram(p, 1ull << 26);
    EXPECT_EQ(a.exitCode, 0) << GetParam();
    EXPECT_FALSE(a.output.empty());
    // Output ends with the checksum line.
    EXPECT_EQ(a.output.back(), '\n');

    ExecResult b = runProgram(p, 1ull << 26);
    EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Suite, WorkloadExecution,
                         ::testing::Values("compress", "gcc", "go", "ijpeg",
                                           "li", "m88ksim", "perl",
                                           "vortex"));

TEST(Generator, FillerIsSelfContained)
{
    GenSpec spec;
    spec.seed = 99;
    spec.leafFuncs = 3;
    spec.midFuncs = 3;
    spec.dispatchFuncs = 1;
    spec.switchCases = 4;
    FillerCode filler = generateFiller(spec, "tst", 5);
    std::string src = filler.definitions;
    src += "int main() {\n    int acc = 1;\n    int tst_it;\n";
    src += filler.mainStmts;
    src += "    return acc & 127;\n}\n";
    Program p = codegen::compile(src);
    ExecResult r = runProgram(p, 1 << 24);
    EXPECT_GE(r.exitCode, 0);
}

} // namespace
