/**
 * @file
 * Tests for the lockstep differential-execution harness: full workload
 * sweeps under every scheme, far-branch stub handling, the
 * indirect-branch alignment invariant, the per-instruction step
 * budget, and seeded fault injection (every mutation kind must be
 * reported as a divergence).
 */

#include <gtest/gtest.h>

#include "codegen/codegen.hh"
#include "compress/compressor.hh"
#include "decompress/compressed_cpu.hh"
#include "decompress/cpu.hh"
#include "decompress/fault.hh"
#include "isa/builder.hh"
#include "verify/fault.hh"
#include "verify/lockstep.hh"
#include "workloads/generator.hh"
#include "workloads/workloads.hh"

using namespace codecomp;
using namespace codecomp::compress;

namespace {

CompressedImage
compressScheme(const Program &p, Scheme scheme)
{
    CompressorConfig config;
    config.scheme = scheme;
    return compressProgram(p, config);
}

// ---------------- full workload sweep ----------------

class LockstepWorkloads
    : public ::testing::TestWithParam<std::tuple<std::string, Scheme>>
{};

TEST_P(LockstepWorkloads, VerifiesWithZeroDivergences)
{
    const auto &[name, scheme] = GetParam();
    Program p = workloads::buildBenchmark(name);
    CompressedImage image = compressScheme(p, scheme);

    verify::LockstepResult result = verify::runLockstep(p, image);
    EXPECT_TRUE(result.ok()) << verify::formatReport(result);
    EXPECT_TRUE(result.nativeHalted);
    EXPECT_TRUE(result.compressedHalted);
    // Every native instruction was paired: stub traversals pair one
    // native branch with a group of synthetic compressed retires, all
    // other pairings are one-to-one.
    EXPECT_EQ(result.verifiedInsts, result.native.instCount);
    EXPECT_EQ(result.verifiedInsts + result.syntheticInsts,
              result.compressed.instCount + result.stubTraversals);
    EXPECT_EQ(result.native.output, result.compressed.output);
    EXPECT_EQ(result.native.exitCode, result.compressed.exitCode);
    EXPECT_GE(result.fullStateChecks, 2u); // entry + exit
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, LockstepWorkloads,
    ::testing::Combine(
        ::testing::ValuesIn(workloads::benchmarkNames()),
        ::testing::ValuesIn(allSchemes())),
    [](const auto &info) {
        return std::get<0>(info.param) + "_" +
               std::string(schemeCliName(std::get<1>(info.param)));
    });

// The IterativeRefit strategy picks a different dictionary than plain
// greedy; lockstep every workload under it too so the rank-aware
// selection gets the same differential coverage.
class LockstepRefitWorkloads
    : public ::testing::TestWithParam<std::tuple<std::string, Scheme>>
{};

TEST_P(LockstepRefitWorkloads, VerifiesWithZeroDivergences)
{
    const auto &[name, scheme] = GetParam();
    Program p = workloads::buildBenchmark(name);
    CompressorConfig config;
    config.scheme = scheme;
    config.strategy = StrategyKind::IterativeRefit;
    CompressedImage image = compressProgram(p, config);

    verify::LockstepResult result = verify::runLockstep(p, image);
    EXPECT_TRUE(result.ok()) << verify::formatReport(result);
    EXPECT_TRUE(result.nativeHalted);
    EXPECT_TRUE(result.compressedHalted);
    EXPECT_EQ(result.verifiedInsts, result.native.instCount);
    EXPECT_EQ(result.native.output, result.compressed.output);
    EXPECT_EQ(result.native.exitCode, result.compressed.exitCode);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, LockstepRefitWorkloads,
    ::testing::Combine(
        ::testing::ValuesIn(workloads::benchmarkNames()),
        ::testing::ValuesIn(allSchemes())),
    [](const auto &info) {
        return std::get<0>(info.param) + "_" +
               std::string(schemeCliName(std::get<1>(info.param)));
    });

// ---------------- far-branch stubs ----------------

TEST(LockstepFarBranch, SyntheticStubInstructionsAreVerified)
{
    // A conditional branch spanning a > 4 KiB loop body loses offset
    // range at nibble granularity and runs through a stub: several
    // compressed instructions retire for one native branch.
    std::string src =
        workloads::bigLoopFunction("huge", 3000, 7) +
        "int main() { puti(huge(5)); return 0; }\n";
    Program p = codegen::compile(src);
    CompressedImage image = compressScheme(p, Scheme::Nibble);
    ASSERT_GE(image.farBranchExpansions, 1u)
        << "test needs at least one stub to be meaningful";

    verify::LockstepResult result = verify::runLockstep(p, image);
    EXPECT_TRUE(result.ok()) << verify::formatReport(result);
    EXPECT_GT(result.syntheticInsts, 0u);
    EXPECT_GE(result.stubTraversals, 1u);
    EXPECT_EQ(result.verifiedInsts, result.native.instCount);
}

// ---------------- indirect-branch alignment invariant ----------------

std::vector<isa::Inst>
badLrInsts()
{
    // Load a misaligned code address (native text base + 6) into LR by
    // literal, so both processors agree on every register value right
    // up until blr consumes the bad pointer.
    return {
        isa::lis(4, 1),     // 0: r4 = 0x00010000 (text base)
        isa::ori(4, 4, 6),  // 1: r4 = 0x00010006, not 4-aligned
        isa::mtlr(4),       // 2
        isa::blr(),         // 3
        isa::li(0, 0),      // 4: unreachable
        isa::sc(),          // 5
    };
}

Program
rawProgram(const std::vector<isa::Inst> &insns)
{
    Program p;
    for (const isa::Inst &inst : insns)
        p.text.push_back(isa::encode(inst));
    p.entryIndex = 0;
    p.finalize();
    return p;
}

TEST(LockstepBadLr, NativeCpuRefusesMisalignedIndirectTarget)
{
    // The native Cpu used to mask LR/CTR with ~3, silently repairing
    // exactly the corruption a lockstep run exists to expose. Under the
    // machine-check model the bad pointer raises a catchable fault.
    Program p = rawProgram(badLrInsts());
    try {
        runProgram(p, 1 << 20);
        FAIL() << "misaligned LR target went unnoticed";
    } catch (const MachineCheckError &error) {
        EXPECT_EQ(error.fault(), MachineFault::MisalignedPc);
        EXPECT_NE(std::string(error.what()).find("misaligned"),
                  std::string::npos);
    }
}

TEST(LockstepBadLr, HarnessReportsCorruptedLrAsDivergence)
{
    Program p = rawProgram(badLrInsts());
    CompressedImage image = compressScheme(p, Scheme::Nibble);

    verify::LockstepResult result = verify::runLockstep(p, image);
    ASSERT_FALSE(result.ok());
    // Both processors validate the pointer at the taken blr itself; the
    // compressed side steps first, so its machine check surfaces as a
    // reported divergence attributed to the branch (the literal 0x10006
    // is below the compressed text base), not a process abort at some
    // later fetch.
    EXPECT_NE(result.divergences[0].kind.find("fault"), std::string::npos)
        << verify::formatReport(result);
    EXPECT_NE(result.divergences[0].detail.find("branch target"),
              std::string::npos)
        << verify::formatReport(result);
}

// ---------------- per-instruction step budget ----------------

TEST(CompressedCpuBudget, MaxStepsEnforcedInsideDictionaryEntries)
{
    // Hand-build a program where instructions 1..4 compress into one
    // four-instruction dictionary entry, so a budget landing inside
    // the expansion can only be honored per expanded instruction.
    std::vector<isa::Inst> insns = {
        isa::li(3, 0),       // 0
        isa::addi(3, 3, 1),  // 1: first of one four-inst codeword
        isa::addi(3, 3, 1),  // 2
        isa::addi(3, 3, 1),  // 3
        isa::addi(3, 3, 1),  // 4: last of the codeword
        isa::li(0, 0),       // 5
        isa::sc(),           // 6
    };
    Program p = rawProgram(insns);

    SelectionResult selection;
    selection.dict.entries = {{
        isa::encode(isa::addi(3, 3, 1)), isa::encode(isa::addi(3, 3, 1)),
        isa::encode(isa::addi(3, 3, 1)), isa::encode(isa::addi(3, 3, 1)),
    }};
    selection.placements = {{1, 4, 0}};
    selection.useCount = {1};
    CompressorConfig config;
    CompressedImage image = compressWithSelection(p, config, selection);

    // Budget expires after 3 instructions: mid-expansion. The old
    // between-items check let the whole entry retire (5 instructions)
    // before noticing.
    {
        CompressedCpu cpu(image);
        EXPECT_THROW(cpu.run(3), std::runtime_error);
        EXPECT_LE(cpu.instCount(), 3u);
    }
    // One short of the full dynamic count still throws, without
    // overshooting.
    {
        CompressedCpu cpu(image);
        EXPECT_THROW(cpu.run(6), std::runtime_error);
        EXPECT_LE(cpu.instCount(), 6u);
    }
    // The exact dynamic count completes.
    {
        CompressedCpu cpu(image);
        ExecResult r{};
        EXPECT_NO_THROW(r = cpu.run(7));
        EXPECT_EQ(r.instCount, 7u);
        EXPECT_EQ(r.exitCode, 4);
    }
}

TEST(CompressedCpuBudget, BudgetDoesNotOutliveEscapedFatal)
{
    // Same hand-built image as above: a four-instruction dictionary
    // entry guarantees the budget trips mid-expansion.
    std::vector<isa::Inst> insns = {
        isa::li(3, 0),       // 0
        isa::addi(3, 3, 1),  // 1
        isa::addi(3, 3, 1),  // 2
        isa::addi(3, 3, 1),  // 3
        isa::addi(3, 3, 1),  // 4
        isa::li(0, 0),       // 5
        isa::sc(),           // 6
    };
    Program p = rawProgram(insns);

    SelectionResult selection;
    selection.dict.entries = {{
        isa::encode(isa::addi(3, 3, 1)), isa::encode(isa::addi(3, 3, 1)),
        isa::encode(isa::addi(3, 3, 1)), isa::encode(isa::addi(3, 3, 1)),
    }};
    selection.placements = {{1, 4, 0}};
    selection.useCount = {1};
    CompressorConfig config;
    CompressedImage image = compressWithSelection(p, config, selection);

    CompressedCpu cpu(image);
    EXPECT_THROW(cpu.run(3), std::runtime_error);
    // run() used to leave step_limit_ == 3 behind when the watchdog
    // fatal escaped, so this manual step() -- outside any run() budget
    // -- would immediately re-trip the stale limit. The RAII guard
    // restores the unbudgeted default on unwind.
    EXPECT_NO_THROW(cpu.step());
    while (cpu.step()) {
    }
    EXPECT_TRUE(cpu.machine().halted());
}

TEST(IndirectBranchCheck, CompressedAttributesCorruptLrAtTheBranch)
{
    // The literal 0x10006 is a native text address; in the compressed
    // space it sits below the nibble base, so the blr consumes a wild
    // pointer. The fault must carry the branch's target and fire on
    // the branch step itself -- not on the following fetch, where the
    // faulting PC would no longer name the culprit.
    Program p = rawProgram(badLrInsts());
    CompressedImage image = compressScheme(p, Scheme::Nibble);
    CompressedCpu cpu(image);
    try {
        while (cpu.step()) {
        }
        FAIL() << "corrupt LR went unnoticed at the branch";
    } catch (const MachineCheckError &error) {
        EXPECT_EQ(error.fault(), MachineFault::FetchOutOfText);
        EXPECT_EQ(error.addr(), 0x00010006u);
        EXPECT_NE(std::string(error.what()).find("branch target"),
                  std::string::npos)
            << error.what();
    }
    // lis, ori, mtlr retired, then the blr itself (counted before its
    // target check); nothing after the branch ran.
    EXPECT_EQ(cpu.instCount(), 4u);
}

// ---------------- fault injection ----------------

class FaultInjectionKinds
    : public ::testing::TestWithParam<
          std::tuple<verify::FaultKind, uint64_t>>
{};

TEST_P(FaultInjectionKinds, SeededFaultIsReportedAsDivergence)
{
    const auto &[kind, seed] = GetParam();
    Program p = workloads::buildBenchmark("compress");
    CompressedImage image = compressScheme(p, Scheme::Nibble);

    verify::FaultInjection fault =
        verify::injectFault(p, image, kind, seed);
    EXPECT_FALSE(fault.description.empty());

    verify::LockstepResult result =
        verify::runLockstep(p, fault.image);
    ASSERT_FALSE(result.ok())
        << "undetected fault: " << fault.description;
    // The report must carry disassembled context from both sides.
    const verify::Divergence &d = result.divergences.front();
    EXPECT_FALSE(d.kind.empty());
    EXPECT_FALSE(d.detail.empty());
    EXPECT_FALSE(d.compressedWindow.empty());
    std::string report = verify::formatReport(result);
    EXPECT_NE(report.find("compressed window"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSeeds, FaultInjectionKinds,
    ::testing::Combine(
        ::testing::Values(verify::FaultKind::DictEntryWord,
                          verify::FaultKind::CodewordRank,
                          verify::FaultKind::BranchDisp),
        ::testing::Values(uint64_t{1}, uint64_t{2})),
    [](const auto &info) {
        std::string kind;
        switch (std::get<0>(info.param)) {
          case verify::FaultKind::DictEntryWord:
            kind = "DictEntryWord";
            break;
          case verify::FaultKind::CodewordRank:
            kind = "CodewordRank";
            break;
          case verify::FaultKind::BranchDisp:
            kind = "BranchDisp";
            break;
        }
        return kind + "Seed" + std::to_string(std::get<1>(info.param));
    });

TEST(FaultInjectionDeterminism, SameSeedSameMutation)
{
    Program p = workloads::buildBenchmark("compress");
    CompressedImage image = compressScheme(p, Scheme::Nibble);
    verify::FaultInjection a = verify::injectFault(
        p, image, verify::FaultKind::DictEntryWord, 42);
    verify::FaultInjection b = verify::injectFault(
        p, image, verify::FaultKind::DictEntryWord, 42);
    EXPECT_EQ(a.description, b.description);
    EXPECT_EQ(a.image.entriesByRank, b.image.entriesByRank);
}

TEST(LockstepReport, DivergenceCountAndWindowsAreBounded)
{
    Program p = workloads::buildBenchmark("compress");
    CompressedImage image = compressScheme(p, Scheme::Nibble);
    verify::FaultInjection fault = verify::injectFault(
        p, image, verify::FaultKind::DictEntryWord, 3);

    verify::LockstepConfig config;
    config.maxDivergences = 4;
    config.window = 5;
    verify::LockstepResult result =
        verify::runLockstep(p, fault.image, config);
    ASSERT_FALSE(result.ok());
    EXPECT_LE(result.divergences.size(), 4u);
    for (const verify::Divergence &d : result.divergences) {
        EXPECT_LE(d.nativeWindow.size(), 5u);
        EXPECT_LE(d.compressedWindow.size(), 5u);
    }
}

} // namespace
