/**
 * @file
 * Shared command-line scaffolding: every tool reports errors through
 * one documented exit-code contract so scripts and the test suite can
 * tell failure classes apart:
 *
 *   0  success
 *   1  user/input error: bad usage, unreadable files, malformed or
 *      corrupt input rejected at load
 *   2  verification finding: a lockstep divergence, an undetected
 *      injected fault, a corruption-hardening failure, or a machine
 *      check surfacing from simulated execution
 *   3  internal panic (a library invariant tripped -- a bug)
 *
 * ccrun is the documented exception: on a clean run it passes the
 * simulated program's own exit code through, so only its error paths
 * follow the table above.
 */

#ifndef CODECOMP_TOOLS_TOOL_COMMON_HH
#define CODECOMP_TOOLS_TOOL_COMMON_HH

#include <cstdio>
#include <exception>

#include "decompress/fault.hh"
#include "support/logging.hh"
#include "support/serialize.hh"

namespace codecomp::tools {

enum ExitCode : int {
    exitOk = 0,
    exitUserError = 1,
    exitFinding = 2,
    exitPanic = 3,
};

/**
 * Run a tool body under the exit-code contract. Panics on the calling
 * thread are trapped (so a library bug exits 3 with a message instead
 * of aborting), machine checks exit 2, and load failures -- like any
 * other user-level error -- exit 1.
 */
template <typename Body>
int
runTool(const char *name, Body &&body)
{
    try {
        PanicTrap trap;
        return body();
    } catch (const MachineCheckError &error) {
        std::fprintf(stderr, "%s: %s\n", name, error.what());
        return exitFinding;
    } catch (const PanicError &error) {
        std::fprintf(stderr, "%s: %s\n", name, error.what());
        return exitPanic;
    } catch (const std::exception &error) {
        std::fprintf(stderr, "%s: %s\n", name, error.what());
        return exitUserError;
    }
}

} // namespace codecomp::tools

#endif // CODECOMP_TOOLS_TOOL_COMMON_HH
