/**
 * @file
 * minicc -- compile MiniC source (or generate a suite benchmark) into
 * a linked .ccp program file.
 *
 *   minicc input.mc -o prog.ccp [--standard-frames] [--no-runtime]
 *   minicc --benchmark gcc -o gcc.ccp [--scale N]
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "codegen/codegen.hh"
#include "compress/objfile.hh"
#include "link/object.hh"
#include "support/serialize.hh"
#include "tool_common.hh"
#include "workloads/workloads.hh"

using namespace codecomp;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: minicc <input.mc> -o <out.ccp> [--standard-frames]"
                 " [--no-runtime]\n"
                 "       minicc -c <input.mc> -o <out.cco>   (separate "
                 "compilation)\n"
                 "       minicc --benchmark <name> -o <out.ccp> "
                 "[--scale N]\n");
    return tools::exitUserError;
}

int
run(int argc, char **argv)
{
    std::string input;
    std::string benchmark;
    std::string output;
    int scale = 1;
    bool compile_only = false;
    codegen::CompileOptions options;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "-o" && i + 1 < argc) {
            output = argv[++i];
        } else if (arg == "--benchmark" && i + 1 < argc) {
            benchmark = argv[++i];
        } else if (arg == "--scale" && i + 1 < argc) {
            scale = std::atoi(argv[++i]);
        } else if (arg == "-c") {
            compile_only = true;
        } else if (arg == "--standard-frames") {
            options.standardizedFrames = true;
        } else if (arg == "--no-runtime") {
            options.includeRuntime = false;
        } else if (!arg.empty() && arg[0] != '-') {
            input = arg;
        } else {
            return usage();
        }
    }
    if (output.empty() || (input.empty() == benchmark.empty()))
        return usage();

    std::string source;
    if (!benchmark.empty()) {
        source = workloads::benchmarkSource(benchmark, scale);
    } else {
        std::vector<uint8_t> bytes = readFile(input);
        source.assign(bytes.begin(), bytes.end());
    }
    std::string label = benchmark.empty() ? input : benchmark;
    if (compile_only) {
        link::ObjectModule module =
            codegen::compileModule(source, label, options);
        writeFile(output, link::saveModule(module));
        std::printf("%s: %zu instructions, %zu bytes .data, %zu "
                    "functions, %zu calls to resolve -> %s\n",
                    label.c_str(), module.text.size(),
                    module.data.size(), module.functions.size(),
                    module.calls.size(), output.c_str());
    } else {
        Program program = codegen::compile(source, options);
        writeFile(output, saveProgram(program));
        std::printf("%s: %zu instructions (%u bytes .text), %zu bytes "
                    ".data, %zu functions -> %s\n",
                    label.c_str(), program.text.size(),
                    program.textBytes(), program.data.size(),
                    program.functions.size(), output.c_str());
    }
    return tools::exitOk;
}

} // namespace

int
main(int argc, char **argv)
{
    return tools::runTool("minicc", [&] { return run(argc, argv); });
}
