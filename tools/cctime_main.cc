/**
 * @file
 * cctime -- the size-vs-speed instrument: run a native .ccp program and
 * its compressed .cci image through the cycle-approximate timing model
 * (src/timing) and print the two verdicts side by side.
 *
 *   cctime prog.ccp prog.cci [--width N] [--icache CAP:LINE:WAYS]
 *          [--l2 CAP:LINE:WAYS] [--l2-hit N] [--l2-cycles N]
 *          [--miss-penalty N] [--mem-cycles N] [--expand-cycles N]
 *          [--redirect-penalty N] [--decoded-cache N] [--max-steps N]
 *          [--json <file>]
 *
 * The two runs must produce identical program output and exit code
 * (they are the same program); a mismatch is reported as a verification
 * finding (exit 2). Bad flags and malformed inputs exit 1, per the
 * contract in tool_common.hh. --json writes both TimingReports plus the
 * config AND the input identity (paths, scheme, image sizes) through
 * support/json, so a sidecar is self-describing without re-parsing the
 * command line.
 */

#include <cstdio>
#include <string>

#include "compress/objfile.hh"
#include "decompress/compressed_cpu.hh"
#include "decompress/cpu.hh"
#include "support/json.hh"
#include "support/serialize.hh"
#include "timing/timing.hh"
#include "tool_common.hh"

using namespace codecomp;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: cctime <prog.ccp> <prog.cci> [--width N] "
        "[--icache CAP:LINE:WAYS] [--l2 CAP:LINE:WAYS] [--l2-hit N] "
        "[--l2-cycles N] [--miss-penalty N] [--mem-cycles N] "
        "[--expand-cycles N] [--redirect-penalty N] [--decoded-cache N] "
        "[--max-steps N] [--json <file>]\n");
    return tools::exitUserError;
}

/** Parse "CAP:LINE:WAYS" (e.g. 2048:32:2); false on malformed input. */
bool
parseCacheSpec(const std::string &spec, cache::CacheConfig &config)
{
    unsigned cap = 0, line = 0, ways = 0;
    char tail = 0;
    if (std::sscanf(spec.c_str(), "%u:%u:%u%c", &cap, &line, &ways,
                    &tail) != 3)
        return false;
    config = {cap, line, ways};
    return true;
}

void
printReport(const char *label, const timing::TimingReport &report)
{
    std::printf("%-10s %12llu cycles  CPI %5.3f  (%llu insts, "
                "%llu fetched bytes)\n",
                label,
                static_cast<unsigned long long>(report.cycles()),
                report.cpi(),
                static_cast<unsigned long long>(report.instructions),
                static_cast<unsigned long long>(report.fetchedBytes));
    std::printf("           stalls: icache-miss %llu, l2-miss %llu, "
                "expansion %llu (%llu decode-cache hits), redirect %llu; "
                "icache %llu/%llu miss (%.2f%%), %llu evictions\n",
                static_cast<unsigned long long>(report.stallIcacheMiss),
                static_cast<unsigned long long>(report.stallL2Miss),
                static_cast<unsigned long long>(report.stallExpansion),
                static_cast<unsigned long long>(report.expansionCacheHits),
                static_cast<unsigned long long>(report.stallRedirect),
                static_cast<unsigned long long>(report.icache.misses),
                static_cast<unsigned long long>(report.icache.accesses),
                report.icache.missRate() * 100,
                static_cast<unsigned long long>(report.icache.evictions));
    if (report.l2.accesses)
        std::printf("           l2: %llu/%llu miss (%.2f%%), "
                    "%llu evictions\n",
                    static_cast<unsigned long long>(report.l2.misses),
                    static_cast<unsigned long long>(report.l2.accesses),
                    report.l2.missRate() * 100,
                    static_cast<unsigned long long>(report.l2.evictions));
}

int
run(int argc, char **argv)
{
    std::string programPath, imagePath, jsonPath;
    timing::TimingConfig config;
    uint64_t max_steps = 1ull << 28;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--width" && i + 1 < argc) {
            config.frontendWidth =
                static_cast<uint32_t>(std::atol(argv[++i]));
        } else if (arg == "--icache" && i + 1 < argc) {
            if (!parseCacheSpec(argv[++i], config.icache)) {
                std::fprintf(stderr,
                             "cctime: --icache wants CAP:LINE:WAYS "
                             "(e.g. 2048:32:2)\n");
                return tools::exitUserError;
            }
        } else if (arg == "--l2" && i + 1 < argc) {
            if (!parseCacheSpec(argv[++i], config.l2)) {
                std::fprintf(stderr,
                             "cctime: --l2 wants CAP:LINE:WAYS "
                             "(e.g. 8192:32:2)\n");
                return tools::exitUserError;
            }
        } else if (arg == "--l2-hit" && i + 1 < argc) {
            config.l2HitPenaltyCycles =
                static_cast<uint32_t>(std::atol(argv[++i]));
        } else if (arg == "--l2-cycles" && i + 1 < argc) {
            config.l2CyclesPerWord =
                static_cast<uint32_t>(std::atol(argv[++i]));
        } else if (arg == "--miss-penalty" && i + 1 < argc) {
            config.missPenaltyCycles =
                static_cast<uint32_t>(std::atol(argv[++i]));
        } else if (arg == "--mem-cycles" && i + 1 < argc) {
            config.memoryCyclesPerWord =
                static_cast<uint32_t>(std::atol(argv[++i]));
        } else if (arg == "--expand-cycles" && i + 1 < argc) {
            config.expansionCyclesPerWord =
                static_cast<uint32_t>(std::atol(argv[++i]));
        } else if (arg == "--redirect-penalty" && i + 1 < argc) {
            config.redirectPenaltyCycles =
                static_cast<uint32_t>(std::atol(argv[++i]));
        } else if (arg == "--decoded-cache" && i + 1 < argc) {
            config.decodedCacheRanks =
                static_cast<uint32_t>(std::atol(argv[++i]));
        } else if (arg == "--max-steps" && i + 1 < argc) {
            max_steps = static_cast<uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--json" && i + 1 < argc) {
            jsonPath = argv[++i];
        } else if (!arg.empty() && arg[0] != '-') {
            if (programPath.empty())
                programPath = arg;
            else if (imagePath.empty())
                imagePath = arg;
            else
                return usage();
        } else {
            return usage();
        }
    }
    if (programPath.empty() || imagePath.empty())
        return usage();
    // Reject a bad model up front as a usage error with the reason,
    // rather than letting FetchTimer's catchable fatal surface raw.
    std::string config_error = timing::timingConfigError(config);
    if (!config_error.empty()) {
        std::fprintf(stderr, "cctime: %s\n", config_error.c_str());
        return tools::exitUserError;
    }

    Program program = loadProgram(readFile(programPath));
    compress::CompressedImage image = loadImage(readFile(imagePath));

    timing::FetchTimer nativeTimer(config);
    Cpu cpu(program);
    cpu.setFetchHook(nativeTimer.hook());
    ExecResult nativeResult = cpu.run(max_steps);

    timing::FetchTimer compressedTimer(config);
    CompressedCpu ccpu(image);
    ccpu.setFetchHook(compressedTimer.hook());
    ExecResult compressedResult = ccpu.run(max_steps);

    if (nativeResult.output != compressedResult.output ||
        nativeResult.exitCode != compressedResult.exitCode) {
        std::fprintf(stderr,
                     "cctime: native and compressed runs diverge "
                     "(exit %d vs %d, %zu vs %zu output bytes)\n",
                     nativeResult.exitCode, compressedResult.exitCode,
                     nativeResult.output.size(),
                     compressedResult.output.size());
        return tools::exitFinding;
    }

    timing::TimingReport native = nativeTimer.report();
    timing::TimingReport compressed = compressedTimer.report();

    std::printf("model: width %u, icache %u:%u:%u, fill %llu cycles, "
                "expand %u/word, redirect %u, decoded-cache %u ranks\n",
                config.frontendWidth, config.icache.capacityBytes,
                config.icache.lineBytes, config.icache.ways,
                static_cast<unsigned long long>(config.lineFillCycles()),
                config.expansionCyclesPerWord,
                config.redirectPenaltyCycles, config.decodedCacheRanks);
    if (config.hasL2())
        std::printf("       l2: %u:%u:%u, fill-from-l2 %llu cycles\n",
                    config.l2.capacityBytes, config.l2.lineBytes,
                    config.l2.ways,
                    static_cast<unsigned long long>(
                        config.l2FillCycles()));
    printReport("native", native);
    printReport("compressed", compressed);
    double speedup = compressed.cycles() == 0
                         ? 0.0
                         : static_cast<double>(native.cycles()) /
                               static_cast<double>(compressed.cycles());
    std::printf("compressed/native cycles: %.4f (speedup %.3fx)\n",
                speedup == 0.0 ? 0.0 : 1.0 / speedup, speedup);

    if (!jsonPath.empty()) {
        JsonWriter json;
        json.beginObject()
            .member("width", config.frontendWidth)
            .member("icache_capacity", config.icache.capacityBytes)
            .member("icache_line", config.icache.lineBytes)
            .member("icache_ways", config.icache.ways)
            .member("l2_capacity", config.l2.capacityBytes)
            .member("l2_line", config.l2.lineBytes)
            .member("l2_ways", config.l2.ways)
            .member("l2_hit_penalty", config.l2HitPenaltyCycles)
            .member("l2_cycles_per_word", config.l2CyclesPerWord)
            .member("miss_penalty", config.missPenaltyCycles)
            .member("mem_cycles_per_word", config.memoryCyclesPerWord)
            .member("expand_cycles_per_word", config.expansionCyclesPerWord)
            .member("redirect_penalty", config.redirectPenaltyCycles)
            .member("decoded_cache_ranks", config.decodedCacheRanks)
            .endObject();
        // Identity of the measured inputs, so downstream consumers
        // (autotune frontier tables, plot scripts) never re-parse argv.
        JsonWriter identity;
        identity.beginObject()
            .member("program", programPath)
            .member("image", imagePath)
            .member("scheme", compress::schemeCliName(image.scheme))
            .member("total_bytes", image.totalBytes())
            .member("text_bytes", image.compressedTextBytes())
            .member("dict_bytes", image.dictionaryBytes())
            .member("entries",
                    static_cast<uint64_t>(image.entriesByRank.size()))
            .member("ratio", image.compressionRatio())
            .member("far_branch_expansions", image.farBranchExpansions)
            .member("max_steps", max_steps)
            .endObject();
        // TimingReport::toJson returns complete objects; compose the
        // document from the closed pieces.
        char ratio[32];
        std::snprintf(ratio, sizeof(ratio), "%.6f",
                      speedup == 0.0 ? 0.0 : 1.0 / speedup);
        std::string doc = "{\"config\":" + json.str() +
                          ",\"identity\":" + identity.str() +
                          ",\"native\":" + native.toJson() +
                          ",\"compressed\":" + compressed.toJson() +
                          ",\"cycle_ratio\":" + ratio + "}\n";
        writeFile(jsonPath,
                  std::vector<uint8_t>(doc.begin(), doc.end()));
    }
    return tools::exitOk;
}

} // namespace

int
main(int argc, char **argv)
{
    return tools::runTool("cctime", [&] { return run(argc, argv); });
}
