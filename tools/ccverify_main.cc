/**
 * @file
 * ccverify -- lockstep differential verification of the compressed-
 * program processor against the plain processor, over the same source
 * program. Compresses the program internally (the .cci format does not
 * carry the address map the verifier needs), runs both processors
 * instruction for instruction, and reports any divergence with a
 * disassembled window of recent history from both sides.
 *
 *   ccverify <prog.ccp> [options]
 *   ccverify --benchmark <name> [options]
 *
 * Options:
 *   --scheme <name>|all  scheme(s) to verify (all); names come from
 *                        the codec registry (ccompress --list-schemes)
 *   --strategy greedy|reference|refit   selection strategy (greedy)
 *   --max-steps N        instruction budget per run
 *   --window N           retired instructions of history per side
 *   --max-divergences N  stop after N divergences
 *   --check-interval N   full joint state walk every N instructions
 *   --inject dict|rank|disp|all   fault-injection self-test mode:
 *                        mutate the image and expect a divergence
 *   --corrupt N          corruption-campaign mode: N seeded byte-level
 *                        mutants of the serialized image (plus the
 *                        structural mutant set) per scheme, each of
 *                        which must be load-rejected, machine-check
 *                        trapped, or provably behavior-preserving
 *   --checksum           golden-checksum mode: build the image with the
 *                        fast table-driven decoder and the reference
 *                        decoder, compare the item tables and the
 *                        FNV-1a64 digests of the expanded streams
 *   --seed N             fault-injection / corruption seed
 *
 * Exit status follows tool_common.hh: 0 all verified (with --inject,
 * every fault detected; with --corrupt, every mutant contained;
 * with --checksum, both decoders agree); 1 usage or input error;
 * 2 a verification finding (divergence, undetected fault, corruption-
 * hardening failure, or decoder disagreement); 3 internal panic.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "compress/compressor.hh"
#include "compress/objfile.hh"
#include "decompress/engine.hh"
#include "support/serialize.hh"
#include "tool_common.hh"
#include "verify/fault.hh"
#include "verify/lockstep.hh"
#include "workloads/workloads.hh"

using namespace codecomp;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: ccverify <prog.ccp> | --benchmark <name>\n"
        "  [--scheme %s|all]\n"
        "  [--strategy greedy|reference|refit] [--max-steps N]\n"
        "  [--window N] [--max-divergences N] [--check-interval N]\n"
        "  [--inject dict|rank|disp|all] [--corrupt N] [--checksum]\n"
        "  [--seed N]\n",
        compress::schemeCliNames().c_str());
    return tools::exitUserError;
}

bool
hasMagic(const std::vector<uint8_t> &bytes, const char *magic)
{
    return bytes.size() >= 4 && bytes[0] == magic[0] &&
           bytes[1] == magic[1] && bytes[2] == magic[2] &&
           bytes[3] == magic[3];
}

/** One clean lockstep run; returns true if it verified. */
bool
verifyScheme(const Program &program, compress::Scheme scheme,
             compress::StrategyKind strategy,
             const verify::LockstepConfig &config)
{
    compress::CompressorConfig cc;
    cc.scheme = scheme;
    cc.strategy = strategy;
    compress::CompressedImage image =
        compress::compressProgram(program, cc);
    verify::LockstepResult result =
        verify::runLockstep(program, image, config);
    std::printf("[%s/%s] %s", compress::schemeName(scheme),
                compress::strategyName(strategy),
                verify::formatReport(result).c_str());
    return result.ok();
}

/** Fault-injection self-test: the run must diverge and say why. */
bool
verifyInjected(const Program &program, compress::Scheme scheme,
               compress::StrategyKind strategy, verify::FaultKind kind,
               uint64_t seed, const verify::LockstepConfig &config)
{
    compress::CompressorConfig cc;
    cc.scheme = scheme;
    cc.strategy = strategy;
    compress::CompressedImage image =
        compress::compressProgram(program, cc);
    verify::FaultInjection fault =
        verify::injectFault(program, image, kind, seed);
    verify::LockstepResult result =
        verify::runLockstep(program, fault.image, config);
    std::printf("[%s/%s] injected: %s\n", compress::schemeName(scheme),
                verify::faultKindName(kind), fault.description.c_str());
    if (result.ok()) {
        std::printf("FAULT NOT DETECTED after %llu verified "
                    "instructions\n",
                    static_cast<unsigned long long>(result.verifiedInsts));
        return false;
    }
    std::printf("fault detected: %s", verify::formatReport(result).c_str());
    return true;
}

/** Golden-checksum mode: the fast table-driven decoder and the
 *  reference decoder must agree item-for-item and on the digest of the
 *  fully expanded instruction stream. */
bool
verifyChecksum(const Program &program, compress::Scheme scheme,
               compress::StrategyKind strategy)
{
    compress::CompressorConfig cc;
    cc.scheme = scheme;
    cc.strategy = strategy;
    compress::CompressedImage image =
        compress::compressProgram(program, cc);
    DecompressionEngine fast(image, DecodePath::Fast);
    DecompressionEngine reference(image, DecodePath::Reference);

    bool items_equal = fast.items() == reference.items();
    uint64_t fast_digest = fast.expandedStreamDigest();
    uint64_t reference_digest = reference.expandedStreamDigest();
    std::printf("[%s/%s] checksum: %zu items, expanded-stream digest "
                "%016llx (fast) vs %016llx (reference): %s\n",
                compress::schemeName(scheme),
                compress::strategyName(strategy), fast.items().size(),
                static_cast<unsigned long long>(fast_digest),
                static_cast<unsigned long long>(reference_digest),
                items_equal && fast_digest == reference_digest
                    ? "match"
                    : "MISMATCH");
    return items_equal && fast_digest == reference_digest;
}

/** Corruption campaign: every mutant must be contained. */
bool
verifyCorrupt(const Program &program, compress::Scheme scheme,
              compress::StrategyKind strategy, uint64_t count,
              uint64_t seed, uint64_t max_steps)
{
    compress::CompressorConfig cc;
    cc.scheme = scheme;
    cc.strategy = strategy;
    compress::CompressedImage image =
        compress::compressProgram(program, cc);
    verify::CorruptionCampaign campaign =
        verify::runCorruptionCampaign(program, image, count, seed,
                                      max_steps);
    std::printf("[%s] corruption: %llu mutants: %llu load-rejected, "
                "%llu trapped, %llu ran identical, %zu FAILURES\n",
                compress::schemeName(scheme),
                static_cast<unsigned long long>(campaign.total),
                static_cast<unsigned long long>(campaign.loadRejected),
                static_cast<unsigned long long>(campaign.trapped),
                static_cast<unsigned long long>(campaign.ranIdentical),
                campaign.failures.size());
    for (const verify::MutantReport &failure : campaign.failures)
        std::printf("  %s: %s\n    %s\n",
                    verify::mutantOutcomeName(failure.outcome),
                    failure.description.c_str(), failure.detail.c_str());
    return campaign.ok();
}

int
run(int argc, char **argv)
{
    std::string input, benchmark, scheme_arg = "all", inject_arg;
    compress::StrategyKind strategy = compress::StrategyKind::Greedy;
    uint64_t seed = 1, corrupt_count = 0;
    bool checksum = false;
    verify::LockstepConfig config;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--benchmark" && i + 1 < argc) {
            benchmark = argv[++i];
        } else if (arg == "--scheme" && i + 1 < argc) {
            scheme_arg = argv[++i];
        } else if (arg == "--strategy" && i + 1 < argc) {
            auto kind = compress::parseStrategyName(argv[++i]);
            if (!kind)
                return usage();
            strategy = *kind;
        } else if (arg == "--max-steps" && i + 1 < argc) {
            config.maxSteps =
                static_cast<uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--window" && i + 1 < argc) {
            config.window = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (arg == "--max-divergences" && i + 1 < argc) {
            config.maxDivergences =
                static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (arg == "--check-interval" && i + 1 < argc) {
            config.fullCheckInterval =
                static_cast<uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--inject" && i + 1 < argc) {
            inject_arg = argv[++i];
        } else if (arg == "--corrupt" && i + 1 < argc) {
            corrupt_count = static_cast<uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--checksum") {
            checksum = true;
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = static_cast<uint64_t>(std::atoll(argv[++i]));
        } else if (!arg.empty() && arg[0] != '-') {
            input = arg;
        } else {
            return usage();
        }
    }
    if (input.empty() == benchmark.empty())
        return usage();
    if (config.maxDivergences == 0 || config.window == 0)
        return usage();

    std::vector<compress::Scheme> schemes;
    if (scheme_arg == "all") {
        schemes = compress::allSchemes();
    } else if (auto parsed = compress::parseSchemeName(scheme_arg)) {
        schemes = {*parsed};
    } else {
        return usage();
    }

    std::vector<verify::FaultKind> kinds;
    if (inject_arg == "all") {
        kinds = {verify::FaultKind::DictEntryWord,
                 verify::FaultKind::CodewordRank,
                 verify::FaultKind::BranchDisp};
    } else if (inject_arg == "dict") {
        kinds = {verify::FaultKind::DictEntryWord};
    } else if (inject_arg == "rank") {
        kinds = {verify::FaultKind::CodewordRank};
    } else if (inject_arg == "disp") {
        kinds = {verify::FaultKind::BranchDisp};
    } else if (!inject_arg.empty()) {
        return usage();
    }

    Program program;
    if (!benchmark.empty()) {
        program = workloads::buildBenchmark(benchmark);
    } else {
        std::vector<uint8_t> bytes = readFile(input);
        if (!hasMagic(bytes, "CCPR")) {
            std::fprintf(stderr, "ccverify: %s is not a .ccp program\n",
                         input.c_str());
            return tools::exitUserError;
        }
        program = loadProgram(bytes);
    }

    bool ok = true;
    for (compress::Scheme scheme : schemes) {
        if (checksum) {
            ok = verifyChecksum(program, scheme, strategy) && ok;
        } else if (corrupt_count > 0) {
            ok = verifyCorrupt(program, scheme, strategy, corrupt_count,
                               seed, config.maxSteps) &&
                 ok;
        } else if (kinds.empty()) {
            ok = verifyScheme(program, scheme, strategy, config) && ok;
        } else {
            for (verify::FaultKind kind : kinds)
                ok = verifyInjected(program, scheme, strategy, kind, seed,
                                    config) &&
                     ok;
        }
    }
    return ok ? tools::exitOk : tools::exitFinding;
}

} // namespace

int
main(int argc, char **argv)
{
    return tools::runTool("ccverify", [&] { return run(argc, argv); });
}
