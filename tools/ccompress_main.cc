/**
 * @file
 * ccompress -- compress linked .ccp programs into .cci images.
 *
 *   ccompress prog.ccp -o prog.cci [--scheme <name>]
 *             [--strategy greedy|reference|refit] [--max-entries N]
 *             [--max-len N] [--jobs N] [--stats] [--stats-json file]
 *   ccompress a.ccp b.ccp ... -o outdir/ [options]
 *   ccompress --list-schemes
 *   ccompress --list-strategies
 *
 * The scheme names come from the codec registry (compress/codec.hh);
 * --list-schemes prints the registered codecs with their parameters
 * (this output is the source of README.md's scheme table), and
 * --list-strategies does the same for the selection strategies
 * (compress/strategy.hh).
 *
 * With several inputs the output names an existing directory (or a
 * path ending in '/'), each program is written there as <stem>.cci,
 * and the compressions run concurrently on the worker pool. --jobs N
 * (default: CODECOMP_JOBS, then hardware_concurrency) caps the pool;
 * the compressed bytes are identical for every job count and every
 * strategy is deterministic.
 *
 * --stats-json writes a JSON array with one record per input: sizes,
 * ratio, and the pipeline's per-pass wall time and counters.
 */

#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/analysis.hh"
#include "compress/compressor.hh"
#include "compress/objfile.hh"
#include "compress/pipeline.hh"
#include "support/json.hh"
#include "support/serialize.hh"
#include "support/thread_pool.hh"
#include "tool_common.hh"

using namespace codecomp;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: ccompress <in.ccp>... -o <out.cci | outdir/> "
                 "[--scheme %s] "
                 "[--strategy greedy|reference|refit] [--max-entries N] "
                 "[--max-len N] [--jobs N] [--stats] "
                 "[--stats-json <file>]\n"
                 "       ccompress --list-schemes | --list-strategies\n",
                 compress::schemeCliNames().c_str());
    return tools::exitUserError;
}

/** Print the registered codecs as a markdown table (README source). */
int
listSchemes()
{
    std::printf("| scheme | codewords | unit | summary |\n");
    std::printf("|--------|-----------|------|---------|\n");
    for (const compress::SchemeCodec *codec : compress::allCodecs()) {
        const compress::SchemeParams &params = codec->params();
        std::printf("| `%s` | %u | %u nibble%s | %s |\n",
                    std::string(codec->cliName()).c_str(),
                    params.maxCodewords, params.unitNibbles,
                    params.unitNibbles == 1 ? "" : "s",
                    std::string(codec->summary()).c_str());
    }
    return tools::exitOk;
}

/** Same shape for the selection strategies (README source). */
int
listStrategies()
{
    std::printf("| strategy | summary |\n");
    std::printf("|----------|---------|\n");
    for (compress::StrategyKind kind : compress::allStrategyKinds())
        std::printf("| `%s` | %s |\n", compress::strategyName(kind),
                    compress::strategySummary(kind));
    return tools::exitOk;
}

int
badArg(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::fputs("ccompress: ", stderr);
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
    va_end(args);
    return tools::exitUserError;
}

/** "dir/prog.ccp" -> "prog". */
std::string
stemOf(const std::string &path)
{
    size_t slash = path.find_last_of('/');
    std::string name =
        slash == std::string::npos ? path : path.substr(slash + 1);
    size_t dot = name.find_last_of('.');
    return dot == std::string::npos ? name : name.substr(0, dot);
}

/** Report for one input, assembled off-thread, printed in order. */
struct CompressReport
{
    std::string text;
    std::string json; //!< one --stats-json record, "" on failure
    bool failed = false;
};

void
appendSummary(CompressReport &report, const std::string &input,
              const std::string &output,
              const compress::CompressedImage &image, bool stats)
{
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "%s: %u -> %zu bytes (text %zu + dict %zu), ratio "
                  "%.1f%%, %zu codewords, %u far-branch stubs -> %s\n",
                  input.c_str(), image.originalTextBytes,
                  image.totalBytes(), image.compressedTextBytes(),
                  image.dictionaryBytes(), image.compressionRatio() * 100,
                  image.entriesByRank.size(), image.farBranchExpansions,
                  output.c_str());
    report.text += buf;
    if (!stats)
        return;
    const compress::Composition &comp = image.composition;
    double total = static_cast<double>(comp.totalNibbles());
    std::snprintf(buf, sizeof(buf),
                  "composition: insns %.1f%%, codewords %.1f%%, "
                  "escapes %.1f%%, dictionary %.1f%%\n",
                  100 * comp.insnNibbles / total,
                  100 * comp.codewordNibbles / total,
                  100 * comp.escapeNibbles / total,
                  100 * comp.dictNibbles / total);
    report.text += buf;
    analysis::DictionaryUsage usage =
        analysis::analyzeDictionaryUsage(image);
    for (const auto &[len, count] : usage.entriesByLength) {
        std::snprintf(
            buf, sizeof(buf),
            "  %u-instruction entries: %u (%.1f%% of savings)\n", len,
            count,
            100.0 *
                static_cast<double>(usage.bytesSavedByLength.at(len)) /
                static_cast<double>(usage.totalBytesSaved));
        report.text += buf;
    }
}

/** One --stats-json record; the pipeline stats are already JSON. */
std::string
jsonRecord(const std::string &input, const std::string &output,
           const compress::CompressedImage &image,
           const compress::PipelineStats &stats)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "\"total_bytes\":%zu,\"text_bytes\":%zu,"
                  "\"dict_bytes\":%zu,\"ratio\":%.6f,"
                  "\"far_branch_expansions\":%u,",
                  image.totalBytes(), image.compressedTextBytes(),
                  image.dictionaryBytes(), image.compressionRatio(),
                  image.farBranchExpansions);
    return "{\"input\":\"" + jsonEscape(input) + "\",\"output\":\"" +
           jsonEscape(output) + "\"," + buf +
           "\"pipeline\":" + stats.toJson() + "}";
}

int
run(int argc, char **argv)
{
    std::vector<std::string> inputs;
    std::string output;
    std::string statsJsonPath;
    bool stats = false;
    long maxEntriesArg = -1; // unset; validated against the scheme below
    compress::CompressorConfig config;
    config.scheme = compress::Scheme::Nibble;
    config.maxEntries = 4680;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "-o" && i + 1 < argc) {
            output = argv[++i];
        } else if (arg == "--scheme" && i + 1 < argc) {
            std::string scheme = argv[++i];
            auto kind = compress::parseSchemeName(scheme);
            if (!kind)
                return badArg("unknown scheme '%s' (expected %s)",
                              scheme.c_str(),
                              compress::schemeCliNames(", ").c_str());
            config.scheme = *kind;
        } else if (arg == "--list-schemes") {
            return listSchemes();
        } else if (arg == "--list-strategies") {
            return listStrategies();
        } else if (arg == "--strategy" && i + 1 < argc) {
            // The shared parser's catchable fatal names the registry's
            // strategies; runTool turns it into a usage-error exit.
            config.strategy =
                compress::parseStrategyNameOrFatal(argv[++i]);
        } else if (arg == "--max-entries" && i + 1 < argc) {
            maxEntriesArg = std::atol(argv[++i]);
        } else if (arg == "--max-len" && i + 1 < argc) {
            long len = std::atol(argv[++i]);
            if (len < 1)
                return badArg("--max-len must be at least 1");
            config.maxEntryLen = static_cast<uint32_t>(len);
        } else if (arg == "--jobs" && i + 1 < argc) {
            int jobs = std::atoi(argv[++i]);
            if (jobs < 1)
                return badArg("--jobs must be at least 1");
            setGlobalJobs(static_cast<unsigned>(jobs));
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg == "--stats-json" && i + 1 < argc) {
            statsJsonPath = argv[++i];
        } else if (!arg.empty() && arg[0] != '-') {
            inputs.push_back(arg);
        } else {
            return usage();
        }
    }
    if (inputs.empty() || output.empty())
        return usage();
    // --max-entries is validated against the final scheme (the flags
    // may come in any order) rather than silently clipped.
    if (maxEntriesArg != -1) {
        long max = compress::schemeParams(config.scheme).maxCodewords;
        if (maxEntriesArg < 1 || maxEntriesArg > max)
            return badArg("--max-entries %ld out of range for scheme "
                          "%s (1..%ld)",
                          maxEntriesArg,
                          compress::schemeName(config.scheme), max);
        config.maxEntries = static_cast<uint32_t>(maxEntriesArg);
    }
    bool outdir = output.back() == '/';
    if (inputs.size() > 1 && !outdir) {
        std::fprintf(stderr,
                     "ccompress: several inputs need a directory "
                     "output (end it with '/')\n");
        return tools::exitUserError;
    }

    // Each input is an independent compress; fan the batch out across
    // the pool and print reports in input order.
    bool wantJson = !statsJsonPath.empty();
    std::vector<CompressReport> reports = parallelMap<CompressReport>(
        inputs.size(), [&](size_t i) {
            const std::string &input = inputs[i];
            std::string out = outdir
                                  ? output + stemOf(input) + ".cci"
                                  : output;
            CompressReport report;
            try {
                Program program = loadProgram(readFile(input));
                compress::PipelineStats pipeStats;
                compress::CompressedImage image =
                    compress::compressProgram(program, config,
                                              &pipeStats);
                writeFile(out, saveImage(image));
                appendSummary(report, input, out, image, stats);
                if (wantJson)
                    report.json = jsonRecord(input, out, image, pipeStats);
            } catch (const std::exception &error) {
                report.text = std::string("ccompress: ") + input + ": " +
                              error.what() + "\n";
                report.failed = true;
            }
            return report;
        });

    int status = tools::exitOk;
    std::string jsonOut = "[";
    for (const CompressReport &report : reports) {
        std::fputs(report.text.c_str(),
                   report.failed ? stderr : stdout);
        if (report.failed)
            status = tools::exitUserError;
        if (!report.json.empty()) {
            if (jsonOut.size() > 1)
                jsonOut += ",";
            jsonOut += report.json;
        }
    }
    jsonOut += "]\n";
    if (wantJson && status == tools::exitOk)
        writeFile(statsJsonPath,
                  std::vector<uint8_t>(jsonOut.begin(), jsonOut.end()));
    return status;
}

} // namespace

int
main(int argc, char **argv)
{
    return tools::runTool("ccompress", [&] { return run(argc, argv); });
}
