/**
 * @file
 * ccompress -- compress linked .ccp programs into .cci images.
 *
 *   ccompress prog.ccp -o prog.cci [--scheme baseline|onebyte|nibble]
 *             [--max-entries N] [--max-len N] [--jobs N] [--stats]
 *   ccompress a.ccp b.ccp ... -o outdir/ [options]
 *
 * With several inputs the output names an existing directory (or a
 * path ending in '/'), each program is written there as <stem>.cci,
 * and the compressions run concurrently on the worker pool. --jobs N
 * (default: CODECOMP_JOBS, then hardware_concurrency) caps the pool;
 * the compressed bytes are identical for every job count.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/analysis.hh"
#include "compress/compressor.hh"
#include "compress/objfile.hh"
#include "support/serialize.hh"
#include "support/thread_pool.hh"

using namespace codecomp;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: ccompress <in.ccp>... -o <out.cci | outdir/> "
                 "[--scheme baseline|onebyte|nibble] [--max-entries N] "
                 "[--max-len N] [--jobs N] [--stats]\n");
    return 2;
}

/** "dir/prog.ccp" -> "prog". */
std::string
stemOf(const std::string &path)
{
    size_t slash = path.find_last_of('/');
    std::string name =
        slash == std::string::npos ? path : path.substr(slash + 1);
    size_t dot = name.find_last_of('.');
    return dot == std::string::npos ? name : name.substr(0, dot);
}

/** Report for one input, assembled off-thread, printed in order. */
struct CompressReport
{
    std::string text;
    bool failed = false;
};

void
appendSummary(CompressReport &report, const std::string &input,
              const std::string &output,
              const compress::CompressedImage &image, bool stats)
{
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "%s: %u -> %zu bytes (text %zu + dict %zu), ratio "
                  "%.1f%%, %zu codewords, %u far-branch stubs -> %s\n",
                  input.c_str(), image.originalTextBytes,
                  image.totalBytes(), image.compressedTextBytes(),
                  image.dictionaryBytes(), image.compressionRatio() * 100,
                  image.entriesByRank.size(), image.farBranchExpansions,
                  output.c_str());
    report.text += buf;
    if (!stats)
        return;
    const compress::Composition &comp = image.composition;
    double total = static_cast<double>(comp.totalNibbles());
    std::snprintf(buf, sizeof(buf),
                  "composition: insns %.1f%%, codewords %.1f%%, "
                  "escapes %.1f%%, dictionary %.1f%%\n",
                  100 * comp.insnNibbles / total,
                  100 * comp.codewordNibbles / total,
                  100 * comp.escapeNibbles / total,
                  100 * comp.dictNibbles / total);
    report.text += buf;
    analysis::DictionaryUsage usage =
        analysis::analyzeDictionaryUsage(image);
    for (const auto &[len, count] : usage.entriesByLength) {
        std::snprintf(
            buf, sizeof(buf),
            "  %u-instruction entries: %u (%.1f%% of savings)\n", len,
            count,
            100.0 *
                static_cast<double>(usage.bytesSavedByLength.at(len)) /
                static_cast<double>(usage.totalBytesSaved));
        report.text += buf;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> inputs;
    std::string output;
    bool stats = false;
    compress::CompressorConfig config;
    config.scheme = compress::Scheme::Nibble;
    config.maxEntries = 4680;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "-o" && i + 1 < argc) {
            output = argv[++i];
        } else if (arg == "--scheme" && i + 1 < argc) {
            std::string scheme = argv[++i];
            if (scheme == "baseline")
                config.scheme = compress::Scheme::Baseline;
            else if (scheme == "onebyte")
                config.scheme = compress::Scheme::OneByte;
            else if (scheme == "nibble")
                config.scheme = compress::Scheme::Nibble;
            else
                return usage();
        } else if (arg == "--max-entries" && i + 1 < argc) {
            config.maxEntries =
                static_cast<uint32_t>(std::atoi(argv[++i]));
        } else if (arg == "--max-len" && i + 1 < argc) {
            config.maxEntryLen =
                static_cast<uint32_t>(std::atoi(argv[++i]));
        } else if (arg == "--jobs" && i + 1 < argc) {
            int jobs = std::atoi(argv[++i]);
            if (jobs < 1)
                return usage();
            setGlobalJobs(static_cast<unsigned>(jobs));
        } else if (arg == "--stats") {
            stats = true;
        } else if (!arg.empty() && arg[0] != '-') {
            inputs.push_back(arg);
        } else {
            return usage();
        }
    }
    if (inputs.empty() || output.empty())
        return usage();
    bool outdir = output.back() == '/';
    if (inputs.size() > 1 && !outdir) {
        std::fprintf(stderr,
                     "ccompress: several inputs need a directory "
                     "output (end it with '/')\n");
        return 2;
    }

    // Each input is an independent compress; fan the batch out across
    // the pool and print reports in input order.
    std::vector<CompressReport> reports = parallelMap<CompressReport>(
        inputs.size(), [&](size_t i) {
            const std::string &input = inputs[i];
            std::string out = outdir
                                  ? output + stemOf(input) + ".cci"
                                  : output;
            CompressReport report;
            try {
                Program program = loadProgram(readFile(input));
                compress::CompressedImage image =
                    compress::compressProgram(program, config);
                writeFile(out, saveImage(image));
                appendSummary(report, input, out, image, stats);
            } catch (const std::exception &error) {
                report.text = std::string("ccompress: ") + input + ": " +
                              error.what() + "\n";
                report.failed = true;
            }
            return report;
        });

    int status = 0;
    for (const CompressReport &report : reports) {
        std::fputs(report.text.c_str(),
                   report.failed ? stderr : stdout);
        if (report.failed)
            status = 1;
    }
    return status;
}
