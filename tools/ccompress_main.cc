/**
 * @file
 * ccompress -- compress a linked .ccp program into a .cci image.
 *
 *   ccompress prog.ccp -o prog.cci [--scheme baseline|onebyte|nibble]
 *             [--max-entries N] [--max-len N] [--stats]
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/analysis.hh"
#include "compress/compressor.hh"
#include "compress/objfile.hh"
#include "support/serialize.hh"

using namespace codecomp;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: ccompress <in.ccp> -o <out.cci> "
                 "[--scheme baseline|onebyte|nibble] [--max-entries N] "
                 "[--max-len N] [--stats]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string input;
    std::string output;
    bool stats = false;
    compress::CompressorConfig config;
    config.scheme = compress::Scheme::Nibble;
    config.maxEntries = 4680;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "-o" && i + 1 < argc) {
            output = argv[++i];
        } else if (arg == "--scheme" && i + 1 < argc) {
            std::string scheme = argv[++i];
            if (scheme == "baseline")
                config.scheme = compress::Scheme::Baseline;
            else if (scheme == "onebyte")
                config.scheme = compress::Scheme::OneByte;
            else if (scheme == "nibble")
                config.scheme = compress::Scheme::Nibble;
            else
                return usage();
        } else if (arg == "--max-entries" && i + 1 < argc) {
            config.maxEntries =
                static_cast<uint32_t>(std::atoi(argv[++i]));
        } else if (arg == "--max-len" && i + 1 < argc) {
            config.maxEntryLen =
                static_cast<uint32_t>(std::atoi(argv[++i]));
        } else if (arg == "--stats") {
            stats = true;
        } else if (!arg.empty() && arg[0] != '-') {
            input = arg;
        } else {
            return usage();
        }
    }
    if (input.empty() || output.empty())
        return usage();

    try {
        Program program = loadProgram(readFile(input));
        compress::CompressedImage image =
            compress::compressProgram(program, config);
        writeFile(output, saveImage(image));
        std::printf("%s: %u -> %zu bytes (text %zu + dict %zu), ratio "
                    "%.1f%%, %zu codewords, %u far-branch stubs -> %s\n",
                    input.c_str(), image.originalTextBytes,
                    image.totalBytes(), image.compressedTextBytes(),
                    image.dictionaryBytes(),
                    image.compressionRatio() * 100,
                    image.entriesByRank.size(),
                    image.farBranchExpansions, output.c_str());
        if (stats) {
            const compress::Composition &comp = image.composition;
            double total = static_cast<double>(comp.totalNibbles());
            std::printf("composition: insns %.1f%%, codewords %.1f%%, "
                        "escapes %.1f%%, dictionary %.1f%%\n",
                        100 * comp.insnNibbles / total,
                        100 * comp.codewordNibbles / total,
                        100 * comp.escapeNibbles / total,
                        100 * comp.dictNibbles / total);
            analysis::DictionaryUsage usage =
                analysis::analyzeDictionaryUsage(image);
            for (const auto &[len, count] : usage.entriesByLength)
                std::printf("  %u-instruction entries: %u (%.1f%% of "
                            "savings)\n",
                            len, count,
                            100.0 * static_cast<double>(
                                usage.bytesSavedByLength.at(len)) /
                                static_cast<double>(
                                    usage.totalBytesSaved));
        }
    } catch (const std::exception &error) {
        std::fprintf(stderr, "ccompress: %s\n", error.what());
        return 1;
    }
    return 0;
}
