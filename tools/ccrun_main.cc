/**
 * @file
 * ccrun -- execute a .ccp program (plain processor) or a .cci image
 * (compressed-program processor). Program output goes to stdout; the
 * simulated exit code becomes ccrun's exit code.
 *
 *   ccrun prog.ccp [--max-steps N] [--stats]
 *   ccrun prog.cci [--max-steps N] [--stats]
 *
 * --stats prints a human-readable line and a machine-readable
 * "CCRUN_JSON: {...}" line (same fields) to stderr, keeping stdout
 * byte-identical to the simulated program's output.
 *
 * Exit status: the simulated program's exit code on a clean run;
 * otherwise the contract in tool_common.hh (1 bad input, 2 machine
 * check during execution, 3 internal panic).
 */

#include <cstdio>
#include <string>

#include "compress/objfile.hh"
#include "decompress/compressed_cpu.hh"
#include "decompress/cpu.hh"
#include "support/json.hh"
#include "support/serialize.hh"
#include "tool_common.hh"

using namespace codecomp;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: ccrun <prog.ccp|prog.cci> [--max-steps N] "
                 "[--stats]\n");
    return tools::exitUserError;
}

bool
hasMagic(const std::vector<uint8_t> &bytes, const char *magic)
{
    return bytes.size() >= 4 && bytes[0] == magic[0] &&
           bytes[1] == magic[1] && bytes[2] == magic[2] &&
           bytes[3] == magic[3];
}

/** The --stats fields, machine-readable (support/json). */
std::string
statsJson(const char *kind, const ExecResult &result,
          const FetchStats &fetch)
{
    JsonWriter json;
    json.beginObject()
        .member("kind", kind)
        .member("instructions", result.instCount)
        .member("item_fetches", fetch.itemFetches)
        .member("codeword_fetches", fetch.codewordFetches)
        .member("expanded_insts", fetch.expandedInsts)
        .member("fetched_bytes", fetch.fetchedBytes)
        .member("taken_branches", fetch.takenBranches)
        .member("exit_code", result.exitCode)
        .endObject();
    return json.str();
}

int
run(int argc, char **argv)
{
    std::string input;
    uint64_t max_steps = 1ull << 28;
    bool stats = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--max-steps" && i + 1 < argc) {
            max_steps = static_cast<uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--stats") {
            stats = true;
        } else if (!arg.empty() && arg[0] != '-') {
            input = arg;
        } else {
            return usage();
        }
    }
    if (input.empty())
        return usage();

    std::vector<uint8_t> bytes = readFile(input);
    if (hasMagic(bytes, "CCPR")) {
        Program program = loadProgram(bytes);
        Cpu cpu(program);
        ExecResult result = cpu.run(max_steps);
        std::fputs(result.output.c_str(), stdout);
        if (stats) {
            std::fprintf(stderr, "ccrun: %llu instructions, exit %d\n",
                         static_cast<unsigned long long>(result.instCount),
                         result.exitCode);
            std::fprintf(stderr, "CCRUN_JSON: %s\n",
                         statsJson("ccp", result, cpu.fetchStats())
                             .c_str());
        }
        return result.exitCode & 0xff;
    }
    if (hasMagic(bytes, "CCIM")) {
        compress::CompressedImage image = loadImage(bytes);
        CompressedCpu cpu(image);
        ExecResult result = cpu.run(max_steps);
        std::fputs(result.output.c_str(), stdout);
        if (stats) {
            const FetchStats &fetch = cpu.fetchStats();
            std::fprintf(
                stderr,
                "ccrun: %llu instructions (%llu fetches, %llu "
                "codewords, %llu expanded), exit %d\n",
                static_cast<unsigned long long>(result.instCount),
                static_cast<unsigned long long>(fetch.itemFetches),
                static_cast<unsigned long long>(fetch.codewordFetches),
                static_cast<unsigned long long>(fetch.expandedInsts),
                result.exitCode);
            std::fprintf(stderr, "CCRUN_JSON: %s\n",
                         statsJson("cci", result, fetch).c_str());
        }
        return result.exitCode & 0xff;
    }
    std::fprintf(stderr, "ccrun: '%s' is neither .ccp nor .cci\n",
                 input.c_str());
    return tools::exitUserError;
}

} // namespace

int
main(int argc, char **argv)
{
    return tools::runTool("ccrun", [&] { return run(argc, argv); });
}
