/**
 * @file
 * ccdump -- inspect .ccp programs and .cci images.
 *
 *   ccdump prog.ccp [--disasm [function]]   symbol table / disassembly
 *   ccdump prog.cci [--dict] [--stream N]   header / dictionary / items
 */

#include <cstdio>
#include <string>

#include "compress/objfile.hh"
#include "decompress/engine.hh"
#include "isa/disasm.hh"
#include "support/serialize.hh"
#include "tool_common.hh"

using namespace codecomp;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: ccdump <prog.ccp> [--disasm [function]]\n"
                 "       ccdump <prog.cci> [--dict] [--stream N]\n");
    return tools::exitUserError;
}

bool
hasMagic(const std::vector<uint8_t> &bytes, const char *magic)
{
    return bytes.size() >= 4 && bytes[0] == magic[0] &&
           bytes[1] == magic[1] && bytes[2] == magic[2] &&
           bytes[3] == magic[3];
}

int
dumpProgram(const Program &program, bool disasm,
            const std::string &function)
{
    std::printf(".text: %zu instructions (%u bytes), entry 0x%08x\n",
                program.text.size(), program.textBytes(),
                program.addrOfIndex(program.entryIndex));
    std::printf(".data: %zu bytes at 0x%08x, %zu code relocations\n",
                program.data.size(), program.dataBase,
                program.codeRelocs.size());
    if (!disasm) {
        std::printf("%-28s %10s %8s\n", "function", "address", "insns");
        for (const FunctionSymbol &fn : program.functions)
            std::printf("%-28s 0x%08x %8u\n", fn.name.c_str(),
                        program.addrOfIndex(fn.body.first), fn.body.count);
        return 0;
    }
    for (const FunctionSymbol &fn : program.functions) {
        if (!function.empty() && fn.name != function)
            continue;
        std::printf("\n%s:\n", fn.name.c_str());
        for (uint32_t i = fn.body.first; i < fn.body.first + fn.body.count;
             ++i)
            std::printf("  0x%08x  %s\n", program.addrOfIndex(i),
                        isa::disassembleWord(program.text[i],
                                             program.addrOfIndex(i))
                            .c_str());
    }
    return 0;
}

int
dumpImage(const compress::CompressedImage &image, bool dict,
          size_t stream_items)
{
    std::printf("scheme: %s\n", compress::schemeName(image.scheme));
    std::printf("text: %zu nibbles (%zu bytes), dictionary: %zu entries "
                "(%zu bytes), total %zu bytes\n",
                image.textNibbles, image.compressedTextBytes(),
                image.entriesByRank.size(), image.dictionaryBytes(),
                image.totalBytes());
    std::printf("original: %u bytes -> ratio %.1f%%, far-branch stubs: "
                "%u\n",
                image.originalTextBytes, image.compressionRatio() * 100,
                image.farBranchExpansions);
    if (dict) {
        for (uint32_t rank = 0; rank < image.entriesByRank.size();
             ++rank) {
            std::printf("  #%-5u (%u nibbles):", rank,
                        compress::codewordNibbles(image.scheme, rank));
            for (isa::Word word : image.entriesByRank[rank])
                std::printf("  [%s]",
                            isa::disassembleWord(word).c_str());
            std::printf("\n");
        }
    }
    if (stream_items > 0) {
        DecompressionEngine engine(image);
        size_t shown = 0;
        for (const DecodedItem &item : engine.items()) {
            if (shown++ >= stream_items)
                break;
            if (item.isCodeword)
                std::printf("  +%06x  CODEWORD #%u\n", item.nibbleAddr,
                            item.rank);
            else
                std::printf("  +%06x  %s\n", item.nibbleAddr,
                            isa::disassembleWord(item.word).c_str());
        }
    }
    return 0;
}

int
run(int argc, char **argv)
{
    std::string input;
    std::string function;
    bool disasm = false;
    bool dict = false;
    size_t stream_items = 0;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--disasm") {
            disasm = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                function = argv[++i];
        } else if (arg == "--dict") {
            dict = true;
        } else if (arg == "--stream" && i + 1 < argc) {
            stream_items = static_cast<size_t>(std::atoll(argv[++i]));
        } else if (!arg.empty() && arg[0] != '-') {
            input = arg;
        } else {
            return usage();
        }
    }
    if (input.empty())
        return usage();

    std::vector<uint8_t> bytes = readFile(input);
    if (hasMagic(bytes, "CCPR"))
        return dumpProgram(loadProgram(bytes), disasm, function);
    if (hasMagic(bytes, "CCIM"))
        return dumpImage(loadImage(bytes), dict, stream_items);
    std::fprintf(stderr, "ccdump: unrecognized file format\n");
    return tools::exitUserError;
}

} // namespace

int
main(int argc, char **argv)
{
    return tools::runTool("ccdump", [&] { return run(argc, argv); });
}
