/**
 * @file
 * ccautotune -- search scheme x strategy x dictionary-share x layout x
 * cache-geometry configurations for the best cycle count within on-chip
 * byte budgets (src/autotune).
 *
 *   ccautotune --workload <name>[,<name>...]|all --budget N [--budget N]
 *              [--schemes a,b] [--strategies a,b] [--dict-caps N,N,...]
 *              [--cache-geoms CAP:LINE:WAYS,...] [--no-hotcold]
 *              [--width N] [--miss-penalty N] [--mem-cycles N]
 *              [--expand-cycles N] [--redirect-penalty N]
 *              [--l2 CAP:LINE:WAYS] [--l2-hit N] [--l2-cycles N]
 *              [--max-steps N] [--jobs N] [--isolate N]
 *              [--worker-binary <ccfarm>] [--no-cache] [--cache-dir D]
 *              [--json <file>] [--frontier]
 *
 * The compression sweep runs as farm jobs (shared pipeline cache;
 * --isolate forks ccfarm workers -- the default worker is the ccfarm
 * binary next to this executable). The human report prints the winner
 * table per workload; --frontier also prints every Pareto point.
 * --json writes AutotuneResult::toJson(), which is byte-identical for
 * any --jobs value and any cache setting. Exit codes follow
 * tool_common.hh: bad flags, unknown names, and invalid models exit 1.
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "autotune/autotune.hh"
#include "compress/codec.hh"
#include "support/serialize.hh"
#include "support/subprocess.hh"
#include "support/thread_pool.hh"
#include "tool_common.hh"
#include "workloads/workloads.hh"

using namespace codecomp;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: ccautotune --workload <name>[,...]|all --budget N "
        "[--budget N]...\n"
        "       [--schemes %s] [--strategies %s]\n"
        "       [--dict-caps N,N,...] [--cache-geoms CAP:LINE:WAYS,...] "
        "[--no-hotcold]\n"
        "       [--width N] [--miss-penalty N] [--mem-cycles N] "
        "[--expand-cycles N]\n"
        "       [--redirect-penalty N] [--l2 CAP:LINE:WAYS] [--l2-hit N] "
        "[--l2-cycles N]\n"
        "       [--max-steps N] [--jobs N] [--isolate N] "
        "[--worker-binary <ccfarm>]\n"
        "       [--no-cache] [--cache-dir D] [--json <file>] "
        "[--frontier]\n",
        compress::schemeCliNames(",").c_str(),
        compress::strategyCliNames(",").c_str());
    return tools::exitUserError;
}

int
badArg(const std::string &message)
{
    std::fprintf(stderr, "ccautotune: %s\n", message.c_str());
    return tools::exitUserError;
}

std::vector<std::string>
splitList(const std::string &arg)
{
    std::vector<std::string> items;
    size_t start = 0;
    while (start <= arg.size()) {
        size_t comma = arg.find(',', start);
        if (comma == std::string::npos)
            comma = arg.size();
        if (comma > start)
            items.push_back(arg.substr(start, comma - start));
        start = comma + 1;
    }
    return items;
}

/** Parse "CAP:LINE:WAYS" (e.g. 2048:32:2); false on malformed input. */
bool
parseCacheSpec(const std::string &spec, cache::CacheConfig &config)
{
    unsigned cap = 0, line = 0, ways = 0;
    char tail = 0;
    if (std::sscanf(spec.c_str(), "%u:%u:%u%c", &cap, &line, &ways,
                    &tail) != 3)
        return false;
    config = {cap, line, ways};
    return true;
}

void
printWorkload(const autotune::WorkloadResult &wr, bool frontier)
{
    std::printf("%s:\n", wr.workload.c_str());
    if (frontier) {
        std::printf("  frontier (%zu of %zu points):\n",
                    wr.frontier.size(), wr.points.size());
        for (uint32_t index : wr.frontier) {
            const autotune::CandidatePoint &point = wr.points[index];
            std::printf("    %8llu bytes %12llu cycles  %s\n",
                        static_cast<unsigned long long>(point.onChipBytes),
                        static_cast<unsigned long long>(point.cycles()),
                        point.id.c_str());
        }
    }
    for (const autotune::BudgetWinner &winner : wr.winners) {
        if (winner.point < 0) {
            std::printf("  budget %8llu: (nothing fits)\n",
                        static_cast<unsigned long long>(winner.budget));
            continue;
        }
        const autotune::CandidatePoint &point =
            wr.points[static_cast<size_t>(winner.point)];
        std::printf("  budget %8llu: %s  (%llu bytes, %llu cycles)\n",
                    static_cast<unsigned long long>(winner.budget),
                    point.id.c_str(),
                    static_cast<unsigned long long>(point.onChipBytes),
                    static_cast<unsigned long long>(point.cycles()));
    }
}

int
run(int argc, char **argv)
{
    std::vector<std::string> workloadNames;
    autotune::BudgetSpec spec;
    autotune::AutotuneOptions options;
    std::string jsonPath;
    bool frontier = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--workload" && i + 1 < argc) {
            for (const std::string &name : splitList(argv[++i])) {
                if (name == "all") {
                    workloadNames = workloads::benchmarkNames();
                    break;
                }
                workloadNames.push_back(name);
            }
        } else if (arg == "--budget" && i + 1 < argc) {
            long budget = std::atol(argv[++i]);
            if (budget < 1)
                return badArg("--budget must be at least 1");
            spec.budgets.push_back(static_cast<uint64_t>(budget));
        } else if (arg == "--schemes" && i + 1 < argc) {
            for (const std::string &name : splitList(argv[++i])) {
                auto scheme = compress::parseSchemeName(name);
                if (!scheme)
                    return badArg("unknown scheme \"" + name +
                                  "\" (expected " +
                                  compress::schemeCliNames(", ") + ")");
                spec.schemes.push_back(*scheme);
            }
        } else if (arg == "--strategies" && i + 1 < argc) {
            for (const std::string &name : splitList(argv[++i]))
                spec.strategies.push_back(
                    compress::parseStrategyNameOrFatal(name));
        } else if (arg == "--dict-caps" && i + 1 < argc) {
            for (const std::string &item : splitList(argv[++i])) {
                long cap = std::atol(item.c_str());
                if (cap < 1)
                    return badArg("--dict-caps entries must be >= 1");
                spec.dictCaps.push_back(static_cast<uint32_t>(cap));
            }
        } else if (arg == "--cache-geoms" && i + 1 < argc) {
            for (const std::string &item : splitList(argv[++i])) {
                cache::CacheConfig geometry;
                if (!parseCacheSpec(item, geometry))
                    return badArg("--cache-geoms wants CAP:LINE:WAYS "
                                  "entries (e.g. 2048:32:2)");
                spec.cacheGeometries.push_back(geometry);
            }
        } else if (arg == "--no-hotcold") {
            spec.tryHotCold = false;
        } else if (arg == "--width" && i + 1 < argc) {
            spec.model.frontendWidth =
                static_cast<uint32_t>(std::atol(argv[++i]));
        } else if (arg == "--miss-penalty" && i + 1 < argc) {
            spec.model.missPenaltyCycles =
                static_cast<uint32_t>(std::atol(argv[++i]));
        } else if (arg == "--mem-cycles" && i + 1 < argc) {
            spec.model.memoryCyclesPerWord =
                static_cast<uint32_t>(std::atol(argv[++i]));
        } else if (arg == "--expand-cycles" && i + 1 < argc) {
            spec.model.expansionCyclesPerWord =
                static_cast<uint32_t>(std::atol(argv[++i]));
        } else if (arg == "--redirect-penalty" && i + 1 < argc) {
            spec.model.redirectPenaltyCycles =
                static_cast<uint32_t>(std::atol(argv[++i]));
        } else if (arg == "--l2" && i + 1 < argc) {
            if (!parseCacheSpec(argv[++i], spec.model.l2))
                return badArg("--l2 wants CAP:LINE:WAYS "
                              "(e.g. 8192:32:2)");
        } else if (arg == "--l2-hit" && i + 1 < argc) {
            spec.model.l2HitPenaltyCycles =
                static_cast<uint32_t>(std::atol(argv[++i]));
        } else if (arg == "--l2-cycles" && i + 1 < argc) {
            spec.model.l2CyclesPerWord =
                static_cast<uint32_t>(std::atol(argv[++i]));
        } else if (arg == "--max-steps" && i + 1 < argc) {
            spec.maxSteps = static_cast<uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--jobs" && i + 1 < argc) {
            int jobs = std::atoi(argv[++i]);
            if (jobs < 1)
                return badArg("--jobs must be at least 1");
            setGlobalJobs(static_cast<unsigned>(jobs));
        } else if (arg == "--isolate" && i + 1 < argc) {
            int workers = std::atoi(argv[++i]);
            if (workers < 1)
                return badArg("--isolate must be at least 1");
            setGlobalJobs(static_cast<unsigned>(workers));
            options.isolate = true;
        } else if (arg == "--worker-binary" && i + 1 < argc) {
            options.workerBinary = argv[++i];
        } else if (arg == "--no-cache") {
            options.cache = false;
        } else if (arg == "--cache-dir" && i + 1 < argc) {
            options.cacheDir = argv[++i];
        } else if (arg == "--json" && i + 1 < argc) {
            jsonPath = argv[++i];
        } else if (arg == "--frontier") {
            frontier = true;
        } else {
            return usage();
        }
    }
    if (workloadNames.empty() || spec.budgets.empty())
        return usage();
    // The isolation worker is ccfarm in its hidden --worker mode;
    // default to the ccfarm built next to this executable.
    if (options.isolate && options.workerBinary.empty()) {
        std::filesystem::path self = selfExecutablePath();
        options.workerBinary = (self.parent_path() / "ccfarm").string();
        if (!std::filesystem::exists(options.workerBinary))
            return badArg("--isolate needs the ccfarm worker binary "
                          "(not found at " + options.workerBinary +
                          "; pass --worker-binary)");
    }
    // Reject a bad search spec up front with the reason, mirroring
    // cctime's model validation.
    std::string spec_error;
    if (spec.cacheGeometries.empty()) {
        for (uint32_t capacity : {1024u, 2048u, 4096u, 8192u})
            spec.cacheGeometries.push_back(
                {capacity, 32, capacity >= 4096 ? 2u : 1u});
    }
    spec_error = autotune::budgetSpecError(spec);
    if (!spec_error.empty())
        return badArg(spec_error);

    autotune::AutotuneResult result =
        autotune::autotune(workloadNames, spec, options);

    autotune::SearchSpace space(spec);
    std::printf("search: %llu candidate configs (%llu pruned), "
                "%zu geometries (%llu pruned), %zu workloads\n",
                static_cast<unsigned long long>(result.enumerated),
                static_cast<unsigned long long>(result.pruned),
                space.geometries().size(),
                static_cast<unsigned long long>(result.prunedGeometries),
                workloadNames.size());
    if (result.failedJobs)
        std::printf("warning: %llu compression jobs failed and were "
                    "skipped\n",
                    static_cast<unsigned long long>(result.failedJobs));
    for (const autotune::WorkloadResult &wr : result.workloads)
        printWorkload(wr, frontier);
    std::printf("pipeline cache: %llu enum hits, %llu select hits; "
                "%.0f ms\n",
                static_cast<unsigned long long>(
                    result.cacheStats.enumHits),
                static_cast<unsigned long long>(
                    result.cacheStats.selectHits),
                result.wallMillis);

    if (!jsonPath.empty()) {
        std::string doc = result.toJson() + "\n";
        writeFile(jsonPath,
                  std::vector<uint8_t>(doc.begin(), doc.end()));
    }
    return tools::exitOk;
}

} // namespace

int
main(int argc, char **argv)
{
    return tools::runTool("ccautotune", [&] { return run(argc, argv); });
}
