/**
 * @file
 * cclink -- the static linker: object modules (.cco) to an executable
 * program (.ccp). The runtime library is linked in automatically
 * unless --no-runtime is given.
 *
 *   cclink a.cco b.cco ... -o prog.ccp [--no-runtime]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "codegen/codegen.hh"
#include "compress/objfile.hh"
#include "link/linker.hh"
#include "support/serialize.hh"
#include "tool_common.hh"

using namespace codecomp;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: cclink <a.cco> [b.cco ...] -o <out.ccp> "
                 "[--no-runtime]\n");
    return tools::exitUserError;
}

int
run(int argc, char **argv)
{
    std::vector<std::string> inputs;
    std::string output;
    bool with_runtime = true;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "-o" && i + 1 < argc) {
            output = argv[++i];
        } else if (arg == "--no-runtime") {
            with_runtime = false;
        } else if (!arg.empty() && arg[0] != '-') {
            inputs.push_back(arg);
        } else {
            return usage();
        }
    }
    if (inputs.empty() || output.empty())
        return usage();

    std::vector<link::ObjectModule> modules;
    for (const std::string &path : inputs)
        modules.push_back(link::loadModule(readFile(path)));
    if (with_runtime)
        modules.push_back(codegen::runtimeModule());

    Program program = link::linkModules(modules);
    writeFile(output, saveProgram(program));
    std::printf("linked %zu module(s): %zu instructions (%u bytes "
                ".text), %zu bytes .data, %zu functions -> %s\n",
                modules.size(), program.text.size(),
                program.textBytes(), program.data.size(),
                program.functions.size(), output.c_str());
    return tools::exitOk;
}

} // namespace

int
main(int argc, char **argv)
{
    return tools::runTool("cclink", [&] { return run(argc, argv); });
}
