/**
 * @file
 * ccfarm -- run a queue of compression jobs as one batched, cached,
 * fault-tolerant parallel farm run and aggregate the results.
 *
 *   ccfarm [--spec jobs.json]
 *          [--workloads a,b,...] [--schemes x,y] [--strategies s,t]
 *          [--jobs N] [--isolate N] [--job-timeout MS] [--retries N]
 *          [--backoff MS] [--seed S]
 *          [--no-cache] [--cache-dir dir/] [--cache-cap N]
 *          [--report out.json] [--results out.json] [--images outdir/]
 *          [--inject crash|hang|corrupt-cache] [--list]
 *
 * Without --spec the queue is the starter corpus (all 8 workloads x
 * every registered scheme x {greedy, refit}), optionally narrowed by
 * the --workloads / --schemes / --strategies comma lists. With --spec
 * the queue comes from a job-spec JSON file (src/farm/jobspec.hh) and
 * the narrowing flags are rejected.
 *
 * --isolate N runs every job in a forked worker subprocess (this very
 * binary in its hidden --worker mode) on an N-wide pool: a crash,
 * hang, machine check, or OOM kill in one job becomes a classified
 * per-job failure instead of taking down the run. --job-timeout and
 * --retries add deadlines and retry-with-backoff on top.
 *
 * --cache-dir backs the pipeline cache with a crash-safe on-disk
 * store shared across runs and worker processes; a damaged store is
 * detected (checksums), quarantined, and silently recomputed --
 * results are never affected.
 *
 * --inject runs a seeded self-test campaign against the farm's own
 * fault tolerance: deliberately crash or hang a deterministic subset
 * of workers (or bit-flip the persistent cache between runs) and
 * verify every non-injected job's image is bit-identical to a clean
 * reference run while every injected fault is correctly attributed.
 * A violated expectation exits 2 (a finding), per the tool contract.
 *
 * --images writes each job's .cci image into the directory (job ids
 * with '/' becoming '-'); the images are bit-identical to what serial
 * ccompress produces for the same program and config, at any --jobs /
 * --isolate width, with retries, and with the cache off, on, or
 * persistent. --report writes the full aggregated JSON report;
 * --results writes just the deterministic results array (the
 * byte-identity surface the determinism tests compare); stdout always
 * carries a human summary.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "compress/encoding.hh"
#include "compress/strategy.hh"
#include "farm/farm.hh"
#include "farm/jobspec.hh"
#include "farm/worker.hh"
#include "support/rng.hh"
#include "support/serialize.hh"
#include "support/thread_pool.hh"
#include "workloads/workloads.hh"
#include "tool_common.hh"

using namespace codecomp;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: ccfarm [--spec jobs.json] [--workloads a,b,...] "
                 "[--schemes %s,...] "
                 "[--strategies greedy,reference,refit] [--jobs N] "
                 "[--isolate N] [--job-timeout MS] [--retries N] "
                 "[--backoff MS] [--seed S] [--no-cache] "
                 "[--cache-dir dir/] [--cache-cap N] [--report out.json] "
                 "[--results out.json] [--images outdir/] "
                 "[--inject crash|hang|corrupt-cache] [--list]\n",
                 compress::schemeCliNames(",").c_str());
    return tools::exitUserError;
}

int
badArg(const std::string &message)
{
    std::fprintf(stderr, "ccfarm: %s\n", message.c_str());
    return tools::exitUserError;
}

int
finding(const std::string &message)
{
    std::fprintf(stderr, "ccfarm: FINDING: %s\n", message.c_str());
    return tools::exitFinding;
}

std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> items;
    size_t start = 0;
    while (start <= text.size()) {
        size_t comma = text.find(',', start);
        if (comma == std::string::npos)
            comma = text.size();
        if (comma > start)
            items.push_back(text.substr(start, comma - start));
        start = comma + 1;
    }
    return items;
}

/** "gcc/nibble/refit" -> "gcc-nibble-refit.cci". */
std::string
imageFileName(const std::string &id)
{
    std::string name = id;
    for (char &c : name)
        if (c == '/')
            c = '-';
    return name + ".cci";
}

void
writeText(const std::string &path, const std::string &text)
{
    writeFile(path, std::vector<uint8_t>(text.begin(), text.end()));
}

/**
 * Hidden worker mode: execute exactly one job from a one-job spec
 * file and write the checksummed binary result (temp + atomic rename,
 * so a kill mid-write leaves no half-written file the parent could
 * mistake for a result). In-band job failures still exit 0 -- the
 * result file carries their FailureKind; only worker-level plumbing
 * failures (unreadable spec, unwritable result) exit nonzero.
 */
int
runWorker(int argc, char **argv)
{
    std::string specPath;
    std::string outPath;
    std::string cacheDir;
    bool keepImages = true;
    farm::InjectKind inject = farm::InjectKind::None;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--worker" && i + 1 < argc) {
            specPath = argv[++i];
        } else if (arg == "--worker-out" && i + 1 < argc) {
            outPath = argv[++i];
        } else if (arg == "--cache-dir" && i + 1 < argc) {
            cacheDir = argv[++i];
        } else if (arg == "--worker-no-images") {
            keepImages = false;
        } else if (arg == "--worker-inject" && i + 1 < argc) {
            std::string kind = argv[++i];
            if (kind == "crash")
                inject = farm::InjectKind::Crash;
            else if (kind == "hang")
                inject = farm::InjectKind::Hang;
            else
                return badArg("unknown --worker-inject '" + kind + "'");
        } else {
            return badArg("unknown worker-mode argument '" + arg + "'");
        }
    }
    if (specPath.empty() || outPath.empty())
        return badArg("--worker requires --worker-out");

    std::vector<uint8_t> bytes = readFile(specPath);
    std::vector<farm::FarmJob> jobs =
        farm::parseJobSpec(std::string(bytes.begin(), bytes.end()));
    if (jobs.size() != 1)
        return badArg("worker spec must contain exactly one job, got " +
                      std::to_string(jobs.size()));

    farm::WorkerResult result =
        farm::runWorkerJob(jobs[0], cacheDir, keepImages, inject);
    std::string tmpPath = outPath + ".tmp";
    writeFile(tmpPath, farm::serializeWorkerResult(result));
    std::filesystem::rename(tmpPath, outPath);
    return tools::exitOk;
}

// ---- the --inject self-test campaign ----

/** A seed whose injected subset is mixed (some jobs injected, some
 *  not), so both campaign assertions have teeth. Deterministic: scans
 *  forward from @p seed. */
uint64_t
mixedInjectionSeed(farm::FaultPlan plan, size_t jobCount)
{
    for (int tries = 0; tries < 1000; ++tries, ++plan.seed) {
        size_t injected = 0;
        for (size_t i = 0; i < jobCount; ++i)
            injected += farm::shouldInject(plan, i, 0) ? 1 : 0;
        if (injected >= 1 && (jobCount == 1 || injected < jobCount))
            return plan.seed;
    }
    return plan.seed;
}

/**
 * Crash/hang campaign: a clean inline reference run, then an isolated
 * run with hard faults injected into a seeded subset (those jobs must
 * fail with the right kind; everything else must be bit-identical),
 * then an isolated run with the same faults made transient (first
 * attempt only) and a retry budget (every job must recover).
 */
int
runFaultCampaign(const std::vector<farm::FarmJob> &jobs,
                 farm::FarmOptions options, farm::InjectKind kind)
{
    farm::FailureKind expected = kind == farm::InjectKind::Crash
                                     ? farm::FailureKind::Crash
                                     : farm::FailureKind::Timeout;
    // A hung worker is only detected by its deadline.
    if (kind == farm::InjectKind::Hang && options.jobTimeoutMs == 0)
        options.jobTimeoutMs = 2000;

    farm::FarmOptions reference = options;
    reference.isolate = false;
    reference.inject = farm::FaultPlan{};
    reference.keepImages = true;
    farm::FarmReport ref = farm::runFarm(jobs, reference);
    if (ref.failures())
        return finding("reference run failed (" +
                       std::to_string(ref.failures()) + " of " +
                       std::to_string(jobs.size()) + " jobs)");

    farm::FaultPlan plan;
    plan.kind = kind;
    plan.seed = options.seed;
    plan.seed = mixedInjectionSeed(plan, jobs.size());
    size_t injectedCount = 0;
    for (size_t i = 0; i < jobs.size(); ++i)
        injectedCount += farm::shouldInject(plan, i, 0) ? 1 : 0;
    std::printf("inject %s: seed %llu faults %zu of %zu jobs\n",
                kind == farm::InjectKind::Crash ? "crash" : "hang",
                static_cast<unsigned long long>(plan.seed),
                injectedCount, jobs.size());

    // Phase 1: hard faults. Injected jobs must fail -- attributed to
    // the right kind, with every attempt burned -- and must not
    // disturb any other job.
    farm::FarmOptions hard = options;
    hard.isolate = true;
    hard.keepImages = true;
    hard.inject = plan;
    farm::FarmReport hardReport = farm::runFarm(jobs, hard);
    for (size_t i = 0; i < jobs.size(); ++i) {
        const farm::FarmJobResult &got = hardReport.results[i];
        const farm::FarmJobResult &want = ref.results[i];
        if (farm::shouldInject(plan, i, 0)) {
            if (got.ok())
                return finding("injected job '" + got.id +
                               "' unexpectedly succeeded");
            if (got.failureKind != expected)
                return finding(
                    "injected job '" + got.id + "' classified as " +
                    farm::failureKindName(got.failureKind) +
                    ", expected " + farm::failureKindName(expected));
            uint32_t wantAttempts =
                1 + (jobs[i].retries >= 0
                         ? static_cast<uint32_t>(jobs[i].retries)
                         : options.retries);
            if (got.attempts != wantAttempts)
                return finding("injected job '" + got.id + "' made " +
                               std::to_string(got.attempts) +
                               " attempts, expected " +
                               std::to_string(wantAttempts));
        } else {
            if (!got.ok())
                return finding("non-injected job '" + got.id +
                               "' failed: " + got.error);
            if (got.imageBytes != want.imageBytes ||
                got.imageFnv64 != want.imageFnv64)
                return finding("non-injected job '" + got.id +
                               "' image differs from the reference");
        }
    }
    if (hardReport.failuresOfKind(expected) != injectedCount)
        return finding("failure-kind tally mismatch");

    // Phase 2: the same faults, transient. A retry budget must
    // recover every job bit-identically.
    farm::FarmOptions soft = hard;
    soft.inject.firstAttemptOnly = true;
    soft.retries = std::max(options.retries, 1u);
    farm::FarmReport softReport = farm::runFarm(jobs, soft);
    for (size_t i = 0; i < jobs.size(); ++i) {
        const farm::FarmJobResult &got = softReport.results[i];
        if (!got.ok())
            return finding("transient-fault job '" + got.id +
                           "' did not recover: " + got.error);
        if (got.imageBytes != ref.results[i].imageBytes)
            return finding("recovered job '" + got.id +
                           "' image differs from the reference");
        bool injected = farm::shouldInject(plan, i, 0);
        if (injected && got.attempts < 2)
            return finding("transient-fault job '" + got.id +
                           "' recorded no retry");
        if (!injected && got.attempts != 1)
            return finding("clean job '" + got.id +
                           "' recorded a spurious retry");
    }
    std::printf("inject %s: ok (%zu faults attributed, %zu recovered, "
                "%zu jobs undisturbed)\n",
                kind == farm::InjectKind::Crash ? "crash" : "hang",
                injectedCount, injectedCount,
                jobs.size() - injectedCount);
    return tools::exitOk;
}

/**
 * Corrupt-cache campaign: a cold run populates the persistent store, a
 * seeded damage pass bit-flips / truncates / version-skews every entry
 * file, and a warm run must detect and quarantine the damage while
 * producing bit-identical results.
 */
int
runCorruptCacheCampaign(const std::vector<farm::FarmJob> &jobs,
                        farm::FarmOptions options)
{
    std::filesystem::path dir =
        options.cacheDir.empty()
            ? std::filesystem::temp_directory_path() /
                  ("ccfarm-inject-" + std::to_string(::getpid()))
            : std::filesystem::path(options.cacheDir);
    bool scratchStore = options.cacheDir.empty();
    std::filesystem::create_directories(dir);

    farm::FarmOptions runOptions = options;
    runOptions.isolate = false;
    runOptions.inject = farm::FaultPlan{};
    runOptions.keepImages = true;
    runOptions.cache = true;
    runOptions.cacheDir = dir.string();

    farm::FarmReport cold = farm::runFarm(jobs, runOptions);
    if (cold.failures())
        return finding("cold run failed");
    if (cold.cacheStats.persistStores == 0)
        return finding("cold run stored nothing in the persistent "
                       "cache");

    // Damage every entry file, cycling through the three corruption
    // classes so one campaign exercises every detector.
    std::vector<std::filesystem::path> files;
    for (const auto &entry : std::filesystem::directory_iterator(dir))
        if (entry.path().extension() == ".cce")
            files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    if (files.empty())
        return finding("persistent store is empty after the cold run");
    Rng rng(options.seed);
    for (size_t i = 0; i < files.size(); ++i) {
        std::vector<uint8_t> bytes = readFile(files[i].string());
        switch (i % 3) {
          case 0: // flip one random bit somewhere in the file
            bytes[rng.below(bytes.size())] ^=
                static_cast<uint8_t>(1u << rng.below(8));
            break;
          case 1: // truncate mid-file
            bytes.resize(bytes.size() / 2);
            break;
          case 2: // version skew (the u16 after the 4-byte magic)
            bytes[5] ^= 0xff;
            break;
        }
        writeFile(files[i].string(), bytes);
    }
    std::printf("inject corrupt-cache: damaged %zu entry files\n",
                files.size());

    farm::FarmReport warm = farm::runFarm(jobs, runOptions);
    if (warm.failures())
        return finding("warm run failed after cache damage");
    for (size_t i = 0; i < jobs.size(); ++i)
        if (warm.results[i].imageBytes != cold.results[i].imageBytes)
            return finding("job '" + warm.results[i].id +
                           "' image changed after cache damage");
    if (warm.resultsJson() != cold.resultsJson())
        return finding("deterministic report half changed after cache "
                       "damage");
    if (warm.cacheStats.persistCorrupt == 0)
        return finding("no damaged entries were detected");

    size_t quarantined = 0;
    for (const auto &entry : std::filesystem::directory_iterator(dir))
        if (entry.path().extension() == ".quarantined")
            ++quarantined;
    if (quarantined == 0)
        return finding("no damaged entries were quarantined");
    std::printf("inject corrupt-cache: ok (%llu detected, %zu "
                "quarantined, results bit-identical)\n",
                static_cast<unsigned long long>(
                    warm.cacheStats.persistCorrupt),
                quarantined);
    if (scratchStore) {
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
    }
    return tools::exitOk;
}

int
run(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--worker")
            return runWorker(argc, argv);

    std::string specPath;
    std::string reportPath;
    std::string resultsPath;
    std::string imagesDir;
    std::vector<std::string> workloadFilter;
    std::vector<std::string> schemeFilter;
    std::vector<std::string> strategyFilter;
    bool list = false;
    farm::InjectKind campaign = farm::InjectKind::None;
    farm::FarmOptions options;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--spec" && i + 1 < argc) {
            specPath = argv[++i];
        } else if (arg == "--workloads" && i + 1 < argc) {
            workloadFilter = splitList(argv[++i]);
        } else if (arg == "--schemes" && i + 1 < argc) {
            schemeFilter = splitList(argv[++i]);
        } else if (arg == "--strategies" && i + 1 < argc) {
            strategyFilter = splitList(argv[++i]);
        } else if (arg == "--jobs" && i + 1 < argc) {
            int jobs = std::atoi(argv[++i]);
            if (jobs < 1)
                return badArg("--jobs must be at least 1");
            setGlobalJobs(static_cast<unsigned>(jobs));
        } else if (arg == "--isolate" && i + 1 < argc) {
            int workers = std::atoi(argv[++i]);
            if (workers < 1)
                return badArg("--isolate must be at least 1");
            setGlobalJobs(static_cast<unsigned>(workers));
            options.isolate = true;
        } else if (arg == "--job-timeout" && i + 1 < argc) {
            long ms = std::atol(argv[++i]);
            if (ms < 0)
                return badArg("--job-timeout must be >= 0");
            options.jobTimeoutMs = static_cast<uint64_t>(ms);
        } else if (arg == "--retries" && i + 1 < argc) {
            int n = std::atoi(argv[++i]);
            if (n < 0 || n > 100)
                return badArg("--retries must be in [0, 100]");
            options.retries = static_cast<uint32_t>(n);
        } else if (arg == "--backoff" && i + 1 < argc) {
            long ms = std::atol(argv[++i]);
            if (ms < 0)
                return badArg("--backoff must be >= 0");
            options.backoffBaseMs = static_cast<uint64_t>(ms);
        } else if (arg == "--seed" && i + 1 < argc) {
            options.seed = static_cast<uint64_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else if (arg == "--no-cache") {
            options.cache = false;
        } else if (arg == "--cache-dir" && i + 1 < argc) {
            options.cacheDir = argv[++i];
        } else if (arg == "--cache-cap" && i + 1 < argc) {
            long cap = std::atol(argv[++i]);
            if (cap < 1)
                return badArg("--cache-cap must be at least 1");
            options.cacheMaxEntries = static_cast<size_t>(cap);
        } else if (arg == "--report" && i + 1 < argc) {
            reportPath = argv[++i];
        } else if (arg == "--results" && i + 1 < argc) {
            resultsPath = argv[++i];
        } else if (arg == "--images" && i + 1 < argc) {
            imagesDir = argv[++i];
        } else if (arg == "--inject" && i + 1 < argc) {
            std::string kind = argv[++i];
            if (kind == "crash")
                campaign = farm::InjectKind::Crash;
            else if (kind == "hang")
                campaign = farm::InjectKind::Hang;
            else if (kind == "corrupt-cache")
                campaign = farm::InjectKind::CorruptCache;
            else
                return badArg("unknown --inject '" + kind +
                              "' (expected crash, hang, or "
                              "corrupt-cache)");
        } else if (arg == "--list") {
            list = true;
        } else {
            return usage();
        }
    }

    // Preflight every output destination before any job runs: an
    // unwritable report path must fail in milliseconds, not after the
    // whole corpus has been compressed.
    for (const std::string &path : {reportPath, resultsPath}) {
        if (path.empty())
            continue;
        std::filesystem::path parent =
            std::filesystem::path(path).parent_path();
        if (!parent.empty() && !std::filesystem::is_directory(parent))
            return badArg("output directory '" + parent.string() +
                          "' does not exist");
    }
    if (!imagesDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(imagesDir, ec);
        if (ec || !std::filesystem::is_directory(imagesDir))
            return badArg("cannot create image directory '" + imagesDir +
                          "'" + (ec ? ": " + ec.message() : ""));
    }

    // Assemble the queue: a spec file, or the (filtered) starter corpus.
    std::vector<farm::FarmJob> jobs;
    if (!specPath.empty()) {
        if (!workloadFilter.empty() || !schemeFilter.empty() ||
            !strategyFilter.empty())
            return badArg("--spec and the --workloads/--schemes/"
                          "--strategies filters are mutually exclusive");
        std::vector<uint8_t> bytes = readFile(specPath);
        jobs = farm::parseJobSpec(
            std::string(bytes.begin(), bytes.end()));
    } else {
        // Validate the filters up front so a typo is a usage error,
        // not an empty run.
        for (const std::string &name : schemeFilter)
            if (!compress::parseSchemeName(name))
                return badArg("unknown scheme '" + name +
                              "' (expected " +
                              compress::schemeCliNames(", ") + ")");
        // The shared parser's catchable fatal carries the registry's
        // strategy list; runTool maps it to the same usage exit.
        for (const std::string &name : strategyFilter)
            compress::parseStrategyNameOrFatal(name);
        const std::vector<std::string> &known =
            workloads::benchmarkNames();
        for (const std::string &name : workloadFilter)
            if (std::find(known.begin(), known.end(), name) ==
                known.end())
                return badArg("unknown workload '" + name + "'");
        auto keep = [](const std::vector<std::string> &filter,
                       const std::string &value) {
            return filter.empty() ||
                   std::find(filter.begin(), filter.end(), value) !=
                       filter.end();
        };
        for (farm::FarmJob &job : farm::starterCorpus()) {
            if (keep(workloadFilter, job.workload) &&
                keep(schemeFilter,
                     compress::schemeCliName(job.config.scheme)) &&
                keep(strategyFilter,
                     compress::strategyName(job.config.strategy)))
                jobs.push_back(std::move(job));
        }
    }
    if (jobs.empty())
        return badArg("the job queue is empty");

    if (list) {
        for (const farm::FarmJob &job : jobs)
            std::printf("%s\n", job.id.c_str());
        return tools::exitOk;
    }

    if (campaign == farm::InjectKind::Crash ||
        campaign == farm::InjectKind::Hang)
        return runFaultCampaign(jobs, options, campaign);
    if (campaign == farm::InjectKind::CorruptCache)
        return runCorruptCacheCampaign(jobs, options);

    options.keepImages = !imagesDir.empty();
    farm::FarmReport report = farm::runFarm(jobs, options);

    if (!imagesDir.empty()) {
        for (const farm::FarmJobResult &result : report.results)
            if (result.ok())
                writeFile((std::filesystem::path(imagesDir) /
                           imageFileName(result.id))
                              .string(),
                          result.imageBytes);
    }
    if (!reportPath.empty())
        writeText(reportPath, report.toJson() + "\n");
    if (!resultsPath.empty())
        writeText(resultsPath, report.resultsJson() + "\n");

    for (const farm::FarmJobResult &result : report.results) {
        if (!result.ok()) {
            std::fprintf(stderr,
                         "ccfarm: %s: [%s, %u attempt%s] %s\n",
                         result.id.c_str(),
                         farm::failureKindName(result.failureKind),
                         result.attempts,
                         result.attempts == 1 ? "" : "s",
                         result.error.c_str());
            continue;
        }
        std::printf("%-28s %8llu bytes  ratio %5.1f%%  %7.1f ms\n",
                    result.id.c_str(),
                    static_cast<unsigned long long>(result.totalBytes),
                    result.ratio * 100, result.millis);
    }
    const compress::PipelineCache::Stats &cs = report.cacheStats;
    std::printf("%zu jobs (%zu failed) on %u %s in %.1f ms "
                "(%.1f jobs/s)\n",
                report.results.size(), report.failures(),
                report.poolJobs,
                report.isolated ? "isolated workers" : "workers",
                report.wallMillis,
                report.compressMillis > 0.0
                    ? 1000.0 *
                          static_cast<double>(report.results.size()) /
                          report.compressMillis
                    : 0.0);
    std::printf("cache: %s, enumerate %llu hit / %llu miss, select "
                "%llu hit / %llu miss",
                report.cacheEnabled ? "on" : "off",
                static_cast<unsigned long long>(cs.enumHits),
                static_cast<unsigned long long>(cs.enumMisses),
                static_cast<unsigned long long>(cs.selectHits),
                static_cast<unsigned long long>(cs.selectMisses));
    if (cs.evictions)
        std::printf(", %llu evicted",
                    static_cast<unsigned long long>(cs.evictions));
    if (!options.cacheDir.empty())
        std::printf("; disk %llu hit / %llu store / %llu corrupt",
                    static_cast<unsigned long long>(cs.persistHits),
                    static_cast<unsigned long long>(cs.persistStores),
                    static_cast<unsigned long long>(cs.persistCorrupt));
    std::printf("\n");
    return report.failures() == 0 ? tools::exitOk
                                  : tools::exitUserError;
}

} // namespace

int
main(int argc, char **argv)
{
    return tools::runTool("ccfarm", [&] { return run(argc, argv); });
}
