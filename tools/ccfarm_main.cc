/**
 * @file
 * ccfarm -- run a queue of compression jobs as one batched, cached,
 * parallel farm run and aggregate the results into one report.
 *
 *   ccfarm [--spec jobs.json]
 *          [--workloads a,b,...] [--schemes x,y] [--strategies s,t]
 *          [--jobs N] [--no-cache] [--report out.json]
 *          [--images outdir/] [--list]
 *
 * Without --spec the queue is the starter corpus (all 8 workloads x
 * every registered scheme x {greedy, refit}), optionally narrowed by
 * the --workloads / --schemes / --strategies comma lists. With --spec the queue comes
 * from a job-spec JSON file (src/farm/jobspec.hh) and the narrowing
 * flags are rejected.
 *
 * --images writes each job's .cci image into the directory (job ids
 * with '/' becoming '-'); the images are bit-identical to what serial
 * ccompress produces for the same program and config, at any --jobs
 * and with the cache on or off. --report writes the full aggregated
 * JSON report; stdout always carries a human summary.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "compress/encoding.hh"
#include "compress/strategy.hh"
#include "farm/farm.hh"
#include "farm/jobspec.hh"
#include "support/serialize.hh"
#include "support/thread_pool.hh"
#include "workloads/workloads.hh"
#include "tool_common.hh"

using namespace codecomp;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: ccfarm [--spec jobs.json] [--workloads a,b,...] "
                 "[--schemes %s,...] "
                 "[--strategies greedy,reference,refit] [--jobs N] "
                 "[--no-cache] [--report out.json] [--images outdir/] "
                 "[--list]\n",
                 compress::schemeCliNames(",").c_str());
    return tools::exitUserError;
}

int
badArg(const std::string &message)
{
    std::fprintf(stderr, "ccfarm: %s\n", message.c_str());
    return tools::exitUserError;
}

std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> items;
    size_t start = 0;
    while (start <= text.size()) {
        size_t comma = text.find(',', start);
        if (comma == std::string::npos)
            comma = text.size();
        if (comma > start)
            items.push_back(text.substr(start, comma - start));
        start = comma + 1;
    }
    return items;
}

/** "gcc/nibble/refit" -> "gcc-nibble-refit.cci". */
std::string
imageFileName(const std::string &id)
{
    std::string name = id;
    for (char &c : name)
        if (c == '/')
            c = '-';
    return name + ".cci";
}

int
run(int argc, char **argv)
{
    std::string specPath;
    std::string reportPath;
    std::string imagesDir;
    std::vector<std::string> workloadFilter;
    std::vector<std::string> schemeFilter;
    std::vector<std::string> strategyFilter;
    bool list = false;
    farm::FarmOptions options;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--spec" && i + 1 < argc) {
            specPath = argv[++i];
        } else if (arg == "--workloads" && i + 1 < argc) {
            workloadFilter = splitList(argv[++i]);
        } else if (arg == "--schemes" && i + 1 < argc) {
            schemeFilter = splitList(argv[++i]);
        } else if (arg == "--strategies" && i + 1 < argc) {
            strategyFilter = splitList(argv[++i]);
        } else if (arg == "--jobs" && i + 1 < argc) {
            int jobs = std::atoi(argv[++i]);
            if (jobs < 1)
                return badArg("--jobs must be at least 1");
            setGlobalJobs(static_cast<unsigned>(jobs));
        } else if (arg == "--no-cache") {
            options.cache = false;
        } else if (arg == "--report" && i + 1 < argc) {
            reportPath = argv[++i];
        } else if (arg == "--images" && i + 1 < argc) {
            imagesDir = argv[++i];
        } else if (arg == "--list") {
            list = true;
        } else {
            return usage();
        }
    }

    // Assemble the queue: a spec file, or the (filtered) starter corpus.
    std::vector<farm::FarmJob> jobs;
    if (!specPath.empty()) {
        if (!workloadFilter.empty() || !schemeFilter.empty() ||
            !strategyFilter.empty())
            return badArg("--spec and the --workloads/--schemes/"
                          "--strategies filters are mutually exclusive");
        std::vector<uint8_t> bytes = readFile(specPath);
        jobs = farm::parseJobSpec(
            std::string(bytes.begin(), bytes.end()));
    } else {
        // Validate the filters up front so a typo is a usage error,
        // not an empty run.
        for (const std::string &name : schemeFilter)
            if (!compress::parseSchemeName(name))
                return badArg("unknown scheme '" + name +
                              "' (expected baseline, onebyte, or "
                              "nibble)");
        for (const std::string &name : strategyFilter)
            if (!compress::parseStrategyName(name))
                return badArg("unknown strategy '" + name +
                              "' (expected greedy, reference, or "
                              "refit)");
        const std::vector<std::string> &known =
            workloads::benchmarkNames();
        for (const std::string &name : workloadFilter)
            if (std::find(known.begin(), known.end(), name) ==
                known.end())
                return badArg("unknown workload '" + name + "'");
        auto keep = [](const std::vector<std::string> &filter,
                       const std::string &value) {
            return filter.empty() ||
                   std::find(filter.begin(), filter.end(), value) !=
                       filter.end();
        };
        for (farm::FarmJob &job : farm::starterCorpus()) {
            if (keep(workloadFilter, job.workload) &&
                keep(schemeFilter,
                     compress::schemeCliName(job.config.scheme)) &&
                keep(strategyFilter,
                     compress::strategyName(job.config.strategy)))
                jobs.push_back(std::move(job));
        }
    }
    if (jobs.empty())
        return badArg("the job queue is empty");

    if (list) {
        for (const farm::FarmJob &job : jobs)
            std::printf("%s\n", job.id.c_str());
        return tools::exitOk;
    }

    options.keepImages = !imagesDir.empty();
    farm::FarmReport report = farm::runFarm(jobs, options);

    if (!imagesDir.empty()) {
        std::filesystem::create_directories(imagesDir);
        for (const farm::FarmJobResult &result : report.results)
            if (result.ok())
                writeFile((std::filesystem::path(imagesDir) /
                           imageFileName(result.id))
                              .string(),
                          result.imageBytes);
    }
    if (!reportPath.empty()) {
        std::string json = report.toJson() + "\n";
        writeFile(reportPath,
                  std::vector<uint8_t>(json.begin(), json.end()));
    }

    for (const farm::FarmJobResult &result : report.results) {
        if (!result.ok()) {
            std::fprintf(stderr, "ccfarm: %s: %s\n", result.id.c_str(),
                         result.error.c_str());
            continue;
        }
        std::printf("%-28s %8llu bytes  ratio %5.1f%%  %7.1f ms\n",
                    result.id.c_str(),
                    static_cast<unsigned long long>(result.totalBytes),
                    result.ratio * 100, result.millis);
    }
    const compress::PipelineCache::Stats &cs = report.cacheStats;
    std::printf("%zu jobs (%zu failed) on %u workers in %.1f ms "
                "(%.1f jobs/s)\n",
                report.results.size(), report.failures(),
                report.poolJobs, report.wallMillis,
                report.compressMillis > 0.0
                    ? 1000.0 *
                          static_cast<double>(report.results.size()) /
                          report.compressMillis
                    : 0.0);
    std::printf("cache: %s, enumerate %llu hit / %llu miss, select "
                "%llu hit / %llu miss\n",
                report.cacheEnabled ? "on" : "off",
                static_cast<unsigned long long>(cs.enumHits),
                static_cast<unsigned long long>(cs.enumMisses),
                static_cast<unsigned long long>(cs.selectHits),
                static_cast<unsigned long long>(cs.selectMisses));
    return report.failures() == 0 ? tools::exitOk
                                  : tools::exitUserError;
}

} // namespace

int
main(int argc, char **argv)
{
    return tools::runTool("ccfarm", [&] { return run(argc, argv); });
}
