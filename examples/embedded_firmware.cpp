/**
 * @file
 * The paper's motivating scenario: control-oriented embedded firmware
 * whose ROM cost is dominated by instruction memory. A thermostat
 * controller (sensor filtering, hysteresis state machine, duty-cycle
 * control, fault handling) is compiled, compressed under all three
 * schemes, executed compressed, and the ROM budget table printed.
 */

#include <cstdio>

#include "codegen/codegen.hh"
#include "compress/compressor.hh"
#include "decompress/compressed_cpu.hh"
#include "decompress/cpu.hh"

using namespace codecomp;

namespace {

const char *firmware = R"(
int temp_log[64];
int duty_log[64];
int faults = 0;
int state = 0;   // 0 idle, 1 heating, 2 cooling, 3 fault

// Simulated sensor: a drifting triangle wave with injected glitches.
int read_sensor(int t) {
    int base = 180 + (t % 40) - 20;
    if (t % 17 == 0) return 999;          // glitch
    return base + (rt_rand() & 7) - 3;
}

int median3(int a, int b, int c) {
    // MiniC scopes locals per function, so each swap temp gets a name.
    int t0; int t1; int t2;
    if (a > b) { t0 = a; a = b; b = t0; }
    if (b > c) { t1 = b; b = c; c = t1; }
    if (a > b) { t2 = a; a = b; b = t2; }
    return b;
}

int plausible(int reading) {
    if (reading < 0) return 0;
    if (reading > 400) return 0;
    return 1;
}

int next_state(int current, int temperature) {
    switch (current) {
      case 0:
        if (temperature < 170) return 1;
        if (temperature > 190) return 2;
        return 0;
      case 1:
        if (temperature >= 182) return 0;
        return 1;
      case 2:
        if (temperature <= 178) return 0;
        return 2;
      default:
        return 3;
    }
}

int duty_for(int st, int temperature) {
    if (st == 1) return rt_clamp((182 - temperature) * 8, 10, 100);
    if (st == 2) return rt_clamp((temperature - 178) * 8, 10, 100);
    return 0;
}

int main() {
    int tick;
    int s0 = 180;
    int s1 = 180;
    int s2 = 180;
    rt_srand(7);
    for (tick = 0; tick < 64; tick = tick + 1) {
        int raw = read_sensor(tick);
        s2 = s1; s1 = s0; s0 = raw;
        int filtered = median3(s0, s1, s2);
        if (!plausible(raw)) faults = faults + 1;
        state = next_state(state, filtered);
        int duty = duty_for(state, filtered);
        temp_log[tick] = filtered;
        duty_log[tick] = duty;
    }
    int checksum = 0;
    for (tick = 0; tick < 64; tick = tick + 1) {
        checksum = rt_checksum(checksum, temp_log[tick]);
        checksum = rt_checksum(checksum, duty_log[tick]);
    }
    puti(faults);
    puti(checksum);
    return 0;
}
)";

} // namespace

int
main()
{
    Program program = codegen::compile(firmware);
    ExecResult reference = runProgram(program);
    std::printf("thermostat firmware: %zu instructions, %u bytes of ROM "
                "uncompressed\n",
                program.text.size(), program.textBytes());
    std::printf("reference run: faults+checksum = %s",
                reference.output.c_str());

    std::printf("\n%-16s %10s %10s %10s %8s %8s\n", "scheme", "text(B)",
                "dict(B)", "total(B)", "ratio", "verified");
    struct Row
    {
        const char *label;
        compress::Scheme scheme;
        uint32_t entries;
    };
    const Row rows[] = {
        {"baseline-2byte", compress::Scheme::Baseline, 8192},
        {"one-byte-32", compress::Scheme::OneByte, 32},
        {"nibble-aligned", compress::Scheme::Nibble, 4680},
    };
    for (const Row &row : rows) {
        compress::CompressorConfig config;
        config.scheme = row.scheme;
        config.maxEntries = row.entries;
        compress::CompressedImage image =
            compress::compressProgram(program, config);
        ExecResult run = runCompressed(image);
        bool ok = run.output == reference.output &&
                  run.exitCode == reference.exitCode;
        std::printf("%-16s %10zu %10zu %10zu %7.1f%% %8s\n", row.label,
                    image.compressedTextBytes(), image.dictionaryBytes(),
                    image.totalBytes(), image.compressionRatio() * 100,
                    ok ? "yes" : "NO");
        if (!ok)
            return 1;
    }
    std::printf("\nevery scheme executed the firmware bit-identically; "
                "pick by ROM budget vs decoder complexity.\n");
    return 0;
}
