/**
 * @file
 * CLI explorer: sweep compression parameters on any benchmark of the
 * suite and print the trade-off table. Usage:
 *
 *   explore_encodings [benchmark] [maxEntryLen]
 *
 * Defaults to ijpeg with 4-instruction entries. This is the tool a
 * system designer would use to size the dictionary memory of a
 * compressed-code part.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "compress/compressor.hh"
#include "decompress/compressed_cpu.hh"
#include "decompress/cpu.hh"
#include "workloads/workloads.hh"

using namespace codecomp;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "ijpeg";
    uint32_t max_len =
        argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 4;

    bool known = false;
    for (const std::string &candidate : workloads::benchmarkNames())
        known = known || candidate == name;
    if (!known || max_len < 1 || max_len > 16) {
        std::fprintf(stderr,
                     "usage: explore_encodings [benchmark] [maxEntryLen]\n"
                     "benchmarks:");
        for (const std::string &candidate : workloads::benchmarkNames())
            std::fprintf(stderr, " %s", candidate.c_str());
        std::fprintf(stderr, "\n");
        return 2;
    }

    Program program = workloads::buildBenchmark(name);
    ExecResult reference = runProgram(program);
    std::printf("%s: %zu instructions, %u bytes .text, entries up to %u "
                "instructions\n\n",
                name.c_str(), program.text.size(), program.textBytes(),
                max_len);
    std::printf("%-16s %9s %9s %9s %9s %8s %9s\n", "scheme", "entries",
                "text(B)", "dict(B)", "total(B)", "ratio", "verified");

    struct Point
    {
        const char *label;
        compress::Scheme scheme;
        uint32_t entries;
    };
    const Point points[] = {
        {"one-byte", compress::Scheme::OneByte, 8},
        {"one-byte", compress::Scheme::OneByte, 16},
        {"one-byte", compress::Scheme::OneByte, 32},
        {"baseline", compress::Scheme::Baseline, 256},
        {"baseline", compress::Scheme::Baseline, 1024},
        {"baseline", compress::Scheme::Baseline, 8192},
        {"nibble", compress::Scheme::Nibble, 256},
        {"nibble", compress::Scheme::Nibble, 1024},
        {"nibble", compress::Scheme::Nibble, 4680},
    };
    for (const Point &point : points) {
        compress::CompressorConfig config;
        config.scheme = point.scheme;
        config.maxEntries = point.entries;
        config.maxEntryLen = max_len;
        compress::CompressedImage image =
            compress::compressProgram(program, config);
        ExecResult run = runCompressed(image);
        bool ok = run.output == reference.output;
        std::printf("%-16s %9zu %9zu %9zu %9zu %7.1f%% %9s\n", point.label,
                    image.entriesByRank.size(),
                    image.compressedTextBytes(), image.dictionaryBytes(),
                    image.totalBytes(), image.compressionRatio() * 100,
                    ok ? "yes" : "NO");
        if (!ok)
            return 1;
    }
    return 0;
}
