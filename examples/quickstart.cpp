/**
 * @file
 * Quickstart: the whole pipeline on a small program, ending in a
 * Figure-2-style listing -- uncompressed code, compressed code, and
 * dictionary side by side -- plus proof that the compressed program
 * still runs.
 *
 *   MiniC source -> SDTS compiler -> Program
 *   Program -> greedy dictionary + baseline encoding -> CompressedImage
 *   CompressedImage -> CompressedCpu -> same output as the plain Cpu
 */

#include <cstdio>

#include "codegen/codegen.hh"
#include "compress/compressor.hh"
#include "decompress/compressed_cpu.hh"
#include "decompress/cpu.hh"
#include "isa/disasm.hh"

using namespace codecomp;

int
main()
{
    const char *source = R"(
        int history[8];
        int smooth(int sample, int previous) {
            return (sample * 3 + previous) / 4;
        }
        int main() {
            int i;
            int level = 100;
            for (i = 0; i < 8; i = i + 1) {
                level = smooth(level + i * 7, level);
                history[i] = level;
            }
            for (i = 0; i < 8; i = i + 1) puti(history[i]);
            return level;
        }
    )";

    std::printf("compiling MiniC source (%zu bytes)...\n",
                std::string(source).size());
    Program program = codegen::compile(source);
    std::printf("linked program: %zu instructions (%u bytes of .text), "
                "%zu functions\n\n",
                program.text.size(), program.textBytes(),
                program.functions.size());

    compress::CompressorConfig config; // baseline scheme, 2-byte codewords
    compress::CompressedImage image =
        compress::compressProgram(program, config);

    std::printf("compressed: %zu bytes text + %zu bytes dictionary = "
                "%zu bytes (ratio %.1f%%)\n\n",
                image.compressedTextBytes(), image.dictionaryBytes(),
                image.totalBytes(), image.compressionRatio() * 100);

    // Figure-2-style view of the start of main(): original instructions
    // on the left, the compressed item stream on the right.
    std::printf("--- paper Figure 2 view (first items of the stream) ---\n");
    DecompressionEngine engine(image);
    size_t shown = 0;
    for (const DecodedItem &item : engine.items()) {
        if (shown++ >= 16)
            break;
        if (item.isCodeword) {
            std::printf("  CODEWORD #%-3u  -> {", item.rank);
            for (isa::Word word : engine.entry(item.rank))
                std::printf(" %s;", isa::disassembleWord(word).c_str());
            std::printf(" }\n");
        } else {
            std::printf("  %s\n",
                        isa::disassembleWord(item.word).c_str());
        }
    }

    std::printf("\n--- dictionary head (by codeword rank) ---\n");
    for (uint32_t rank = 0; rank < 5 && rank < image.entriesByRank.size();
         ++rank) {
        std::printf("  #%u:", rank);
        for (isa::Word word : image.entriesByRank[rank])
            std::printf("  [%s]", isa::disassembleWord(word).c_str());
        std::printf("\n");
    }

    std::printf("\nrunning both processors...\n");
    ExecResult plain = runProgram(program);
    ExecResult compressed = runCompressed(image);
    std::printf("plain output:      %s", plain.output.c_str());
    std::printf("compressed output: %s", compressed.output.c_str());
    std::printf("outputs %s, exit codes %d/%d, dynamic instructions "
                "%llu/%llu\n",
                plain.output == compressed.output ? "MATCH" : "DIFFER",
                plain.exitCode, compressed.exitCode,
                static_cast<unsigned long long>(plain.instCount),
                static_cast<unsigned long long>(compressed.instCount));
    return plain.output == compressed.output ? 0 : 1;
}
