/**
 * @file
 * Disassembler / inspector for suite benchmarks. Usage:
 *
 *   disasm_tool [benchmark] [function-name|--list]
 *
 * With --list (default) prints the symbol table; with a function name
 * disassembles it, marking prologue and epilogue ranges -- handy for
 * eyeballing the SDTS templates the compressor exploits.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "isa/disasm.hh"
#include "program/cfg.hh"
#include "workloads/workloads.hh"

using namespace codecomp;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "compress";
    std::string what = argc > 2 ? argv[2] : "--list";

    Program program = workloads::buildBenchmark(name);
    if (what == "--list") {
        std::printf("%s: %zu instructions, %zu functions, entry at "
                    "0x%08x\n",
                    name.c_str(), program.text.size(),
                    program.functions.size(),
                    program.addrOfIndex(program.entryIndex));
        std::printf("%-28s %10s %8s\n", "function", "address", "insns");
        for (const FunctionSymbol &fn : program.functions)
            std::printf("%-28s 0x%08x %8u\n", fn.name.c_str(),
                        program.addrOfIndex(fn.body.first),
                        fn.body.count);
        return 0;
    }

    for (const FunctionSymbol &fn : program.functions) {
        if (fn.name != what)
            continue;
        Cfg cfg = Cfg::build(program);
        std::printf("%s (%u instructions):\n", fn.name.c_str(),
                    fn.body.count);
        for (uint32_t i = fn.body.first;
             i < fn.body.first + fn.body.count; ++i) {
            const char *tag = "";
            if (i >= fn.prologue.first &&
                i < fn.prologue.first + fn.prologue.count)
                tag = " ; prologue";
            for (const InstRange &ep : fn.epilogues)
                if (i >= ep.first && i < ep.first + ep.count)
                    tag = " ; epilogue";
            std::printf("  0x%08x%s  %s%s\n", program.addrOfIndex(i),
                        cfg.isLeader(i) ? ":" : " ",
                        isa::disassembleWord(program.text[i],
                                             program.addrOfIndex(i))
                            .c_str(),
                        tag);
        }
        return 0;
    }
    std::fprintf(stderr, "no function '%s' in %s (try --list)\n",
                 what.c_str(), name.c_str());
    return 2;
}
