#include "autotune/autotune.hh"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "compress/codec.hh"
#include "compress/objfile.hh"
#include "decompress/compressed_cpu.hh"
#include "decompress/cpu.hh"
#include "farm/farm.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/thread_pool.hh"
#include "workloads/workloads.hh"

namespace codecomp::autotune {

namespace {

using Clock = std::chrono::steady_clock;

std::string
geometryId(const cache::CacheConfig &geometry)
{
    return std::to_string(geometry.capacityBytes) + ":" +
           std::to_string(geometry.lineBytes) + ":" +
           std::to_string(geometry.ways);
}

/** Timers for one execution run: one per kept geometry, all fed from
 *  a single fetch hook so every geometry prices the same stream. */
std::vector<timing::FetchTimer>
makeTimers(const BudgetSpec &spec,
           const std::vector<cache::CacheConfig> &geometries)
{
    std::vector<timing::FetchTimer> timers;
    timers.reserve(geometries.size());
    for (const cache::CacheConfig &geometry : geometries) {
        timing::TimingConfig model = spec.model;
        model.icache = geometry;
        timers.emplace_back(model);
    }
    return timers;
}

template <typename AnyCpu>
void
runTimed(AnyCpu &cpu, std::vector<timing::FetchTimer> &timers,
         uint64_t max_steps)
{
    cpu.setFetchHook([&timers](const FetchEvent &event) {
        for (timing::FetchTimer &timer : timers)
            timer.onFetch(event);
    });
    cpu.run(max_steps);
}

/** Dominated-point elimination over (onChipBytes, cycles): ascending
 *  bytes, strictly descending cycles survive. Ties (equal bytes and
 *  cycles) resolve by id so the frontier is deterministic. */
void
computeFrontier(WorkloadResult &wr)
{
    std::vector<uint32_t> order(wr.points.size());
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&wr](uint32_t a, uint32_t b) {
        const CandidatePoint &pa = wr.points[a];
        const CandidatePoint &pb = wr.points[b];
        if (pa.onChipBytes != pb.onChipBytes)
            return pa.onChipBytes < pb.onChipBytes;
        if (pa.cycles() != pb.cycles())
            return pa.cycles() < pb.cycles();
        return pa.id < pb.id;
    });
    uint64_t best = UINT64_MAX;
    for (uint32_t index : order) {
        if (wr.points[index].cycles() < best) {
            wr.frontier.push_back(index);
            best = wr.points[index].cycles();
        }
    }
}

/** Winner at each budget: the last frontier point that fits (frontier
 *  cycles strictly decrease as bytes grow, so "last that fits" is
 *  "fewest cycles within budget"). */
void
computeWinners(WorkloadResult &wr, const std::vector<uint64_t> &budgets)
{
    for (uint64_t budget : budgets) {
        BudgetWinner winner;
        winner.budget = budget;
        for (uint32_t index : wr.frontier) {
            if (wr.points[index].onChipBytes > budget)
                break;
            winner.point = static_cast<int32_t>(index);
        }
        wr.winners.push_back(winner);
    }
}

} // namespace

std::string
budgetSpecError(const BudgetSpec &spec)
{
    if (spec.budgets.empty())
        return "need at least one budget";
    for (uint64_t budget : spec.budgets)
        if (budget == 0)
            return "budgets must be positive";
    if (spec.cacheGeometries.empty())
        return "need at least one cache geometry";
    for (const cache::CacheConfig &geometry : spec.cacheGeometries) {
        timing::TimingConfig model = spec.model;
        model.icache = geometry;
        std::string error = timing::timingConfigError(model);
        if (!error.empty())
            return "geometry " + geometryId(geometry) + ": " + error;
    }
    for (uint32_t cap : spec.dictCaps)
        if (cap == 0)
            return "dictionary caps must be >= 1";
    if (spec.maxSteps == 0)
        return "max steps must be >= 1";
    return "";
}

SearchSpace::SearchSpace(const BudgetSpec &spec)
{
    std::string error = budgetSpecError(spec);
    if (!error.empty())
        CC_FATAL("bad budget spec: ", error);

    uint64_t max_budget =
        *std::max_element(spec.budgets.begin(), spec.budgets.end());

    uint64_t min_geometry = UINT64_MAX;
    for (const cache::CacheConfig &geometry : spec.cacheGeometries) {
        if (geometry.capacityBytes > max_budget) {
            ++prunedGeometries_;
            continue;
        }
        geometries_.push_back(geometry);
        min_geometry = std::min<uint64_t>(min_geometry,
                                          geometry.capacityBytes);
    }
    if (geometries_.empty())
        CC_FATAL("bad budget spec: every cache geometry exceeds the "
                 "largest budget ", max_budget);

    std::vector<compress::Scheme> schemes =
        spec.schemes.empty() ? compress::allSchemes() : spec.schemes;
    std::vector<compress::StrategyKind> strategies =
        spec.strategies.empty()
            ? std::vector<compress::StrategyKind>{
                  compress::StrategyKind::Greedy,
                  compress::StrategyKind::IterativeRefit}
            : spec.strategies;
    std::vector<uint32_t> caps =
        spec.dictCaps.empty()
            ? std::vector<uint32_t>{16, 64, 256, 1024, 4096}
            : spec.dictCaps;

    // Dictionary ROM bytes the budget must still cover beside the
    // smallest kept cache; 4 bytes is the smallest possible entry, so
    // 4 * cap is the analytic lower bound once the cap is reached.
    uint64_t dict_headroom = max_budget - min_geometry;

    for (compress::Scheme scheme : schemes) {
        uint32_t max_codewords = compress::schemeParams(scheme).maxCodewords;
        std::vector<uint32_t> scheme_caps;
        for (uint32_t cap : caps)
            scheme_caps.push_back(std::min(cap, max_codewords));
        std::sort(scheme_caps.begin(), scheme_caps.end());
        scheme_caps.erase(
            std::unique(scheme_caps.begin(), scheme_caps.end()),
            scheme_caps.end());

        for (compress::StrategyKind strategy : strategies) {
            for (uint32_t cap : scheme_caps) {
                for (int hotcold = 0; hotcold <= (spec.tryHotCold ? 1 : 0);
                     ++hotcold) {
                    ++enumerated_;
                    if (4ull * cap > dict_headroom) {
                        ++pruned_;
                        continue;
                    }
                    SearchPoint point;
                    point.config.scheme = scheme;
                    point.config.strategy = strategy;
                    point.config.maxEntries = cap;
                    point.config.layout = hotcold
                                              ? compress::LayoutMode::HotCold
                                              : compress::LayoutMode::Linear;
                    point.label =
                        std::string(compress::schemeCliName(scheme)) + "/" +
                        compress::strategyName(strategy) + "/d" +
                        std::to_string(cap) + "/" +
                        compress::layoutModeName(point.config.layout);
                    points_.push_back(std::move(point));
                }
            }
        }
    }
}

AutotuneResult
autotune(const std::vector<std::string> &workloadNames,
         const BudgetSpec &spec, const AutotuneOptions &options)
{
    Clock::time_point start = Clock::now();

    const std::vector<std::string> &known = workloads::benchmarkNames();
    for (const std::string &name : workloadNames)
        if (std::find(known.begin(), known.end(), name) == known.end())
            CC_FATAL("unknown workload \"", name, "\"");

    SearchSpace space(spec);

    AutotuneResult result;
    result.budgets = spec.budgets;
    std::sort(result.budgets.begin(), result.budgets.end());
    result.budgets.erase(
        std::unique(result.budgets.begin(), result.budgets.end()),
        result.budgets.end());
    result.enumerated = space.enumerated();
    result.pruned = space.pruned();
    result.prunedGeometries = space.prunedGeometries();

    // Compress every candidate as a farm job: the shared PipelineCache
    // enumerates each workload once (enumeration keys are
    // scheme-independent) and --isolate fault tolerance comes free.
    std::vector<farm::FarmJob> jobs;
    jobs.reserve(workloadNames.size() * space.points().size());
    for (const std::string &name : workloadNames) {
        for (const SearchPoint &point : space.points()) {
            farm::FarmJob job;
            job.id = name + "/" + point.label;
            job.workload = name;
            job.config = point.config;
            jobs.push_back(std::move(job));
        }
    }
    farm::FarmOptions farm_options;
    farm_options.cache = options.cache;
    farm_options.cacheDir = options.cacheDir;
    farm_options.isolate = options.isolate;
    farm_options.workerBinary = options.workerBinary;
    farm_options.keepImages = true;
    farm::FarmReport report = farm::runFarm(jobs, farm_options);
    result.cacheStats = report.cacheStats;
    for (const farm::FarmJobResult &job : report.results)
        if (!job.ok())
            ++result.failedJobs;

    // Time every surviving image (and the native baseline) under every
    // kept geometry; one execution per image feeds all timers.
    size_t points_per_workload = space.points().size();
    result.workloads = parallelMap<WorkloadResult>(
        workloadNames.size(), [&](size_t w) {
            WorkloadResult wr;
            wr.workload = workloadNames[w];
            Program program = workloads::buildBenchmark(workloadNames[w]);
            const std::vector<cache::CacheConfig> &geometries =
                space.geometries();

            {
                std::vector<timing::FetchTimer> timers =
                    makeTimers(spec, geometries);
                Cpu cpu(program);
                runTimed(cpu, timers, spec.maxSteps);
                for (size_t g = 0; g < geometries.size(); ++g) {
                    CandidatePoint point;
                    point.id = "native@" + geometryId(geometries[g]);
                    point.scheme = "native";
                    point.geometry = geometries[g];
                    point.totalBytes = program.textBytes();
                    point.onChipBytes = geometries[g].capacityBytes;
                    point.native = true;
                    point.report = timers[g].report();
                    wr.points.push_back(std::move(point));
                }
            }

            for (size_t j = 0; j < points_per_workload; ++j) {
                const farm::FarmJobResult &job =
                    report.results[w * points_per_workload + j];
                if (!job.ok())
                    continue;
                const SearchPoint &searched = space.points()[j];
                compress::CompressedImage image = loadImage(job.imageBytes);
                std::vector<timing::FetchTimer> timers =
                    makeTimers(spec, geometries);
                CompressedCpu cpu(image);
                runTimed(cpu, timers, spec.maxSteps);
                for (size_t g = 0; g < geometries.size(); ++g) {
                    CandidatePoint point;
                    point.id =
                        searched.label + "@" + geometryId(geometries[g]);
                    point.scheme =
                        compress::schemeCliName(searched.config.scheme);
                    point.strategy =
                        compress::strategyName(searched.config.strategy);
                    point.layout =
                        compress::layoutModeName(searched.config.layout);
                    point.dictEntries = searched.config.maxEntries;
                    point.geometry = geometries[g];
                    point.dictBytes = job.dictBytes;
                    point.totalBytes = job.totalBytes;
                    point.onChipBytes =
                        geometries[g].capacityBytes + job.dictBytes;
                    point.report = timers[g].report();
                    wr.points.push_back(std::move(point));
                }
            }

            computeFrontier(wr);
            computeWinners(wr, result.budgets);
            return wr;
        });

    result.wallMillis = std::chrono::duration<double, std::milli>(
                            Clock::now() - start)
                            .count();
    return result;
}

std::string
AutotuneResult::toJson() const
{
    JsonWriter json;
    json.beginObject();
    json.key("budgets").beginArray();
    for (uint64_t budget : budgets)
        json.value(budget);
    json.endArray();
    json.member("enumerated", enumerated);
    json.member("pruned", pruned);
    json.member("pruned_geometries", prunedGeometries);
    json.member("failed_jobs", failedJobs);
    json.key("workloads").beginArray();
    for (const WorkloadResult &wr : workloads) {
        json.beginObject();
        json.member("workload", wr.workload);
        json.key("points").beginArray();
        for (const CandidatePoint &point : wr.points) {
            json.beginObject();
            json.member("id", point.id);
            json.member("scheme", point.scheme);
            if (!point.native) {
                json.member("strategy", point.strategy);
                json.member("layout", point.layout);
                json.member("dict_entries", point.dictEntries);
            }
            json.key("cache")
                .beginObject()
                .member("capacity", point.geometry.capacityBytes)
                .member("line", point.geometry.lineBytes)
                .member("ways", point.geometry.ways)
                .endObject();
            json.member("dict_bytes", point.dictBytes);
            json.member("total_bytes", point.totalBytes);
            json.member("on_chip_bytes", point.onChipBytes);
            json.member("cycles", point.cycles());
            json.member("stall_icache_miss", point.report.stallIcacheMiss);
            json.member("stall_l2_miss", point.report.stallL2Miss);
            json.member("stall_expansion", point.report.stallExpansion);
            json.member("stall_redirect", point.report.stallRedirect);
            json.endObject();
        }
        json.endArray();
        json.key("frontier").beginArray();
        for (uint32_t index : wr.frontier)
            json.value(wr.points[index].id);
        json.endArray();
        json.key("winners").beginArray();
        for (const BudgetWinner &winner : wr.winners) {
            json.beginObject();
            json.member("budget", winner.budget);
            if (winner.point >= 0) {
                const CandidatePoint &point =
                    wr.points[static_cast<size_t>(winner.point)];
                json.member("point", point.id);
                json.member("cycles", point.cycles());
                json.member("on_chip_bytes", point.onChipBytes);
            }
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }
    json.endArray();
    json.endObject();
    return json.str();
}

} // namespace codecomp::autotune
