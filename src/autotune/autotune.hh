/**
 * @file
 * Profile-guided memory-budget autotuner: the closed loop over the
 * paper's central trade. The measurement stack (cctime, ext_timing)
 * prices ONE configuration; this subsystem SEARCHES the configuration
 * space. Given on-chip byte budgets (I-cache capacity + dictionary
 * ROM), it enumerates scheme x strategy x dictionary-share x layout x
 * cache-geometry candidates, compresses them as farm jobs via
 * runFarm -- reusing the shared PipelineCache (enumeration keys are
 * scheme-independent, so the whole sweep enumerates each workload
 * once) and the farm's --isolate fault tolerance -- times every image
 * under every kept geometry with timing::FetchTimer, and reports the
 * Pareto frontier over (on-chip bytes, cycles) plus the winner at each
 * requested budget.
 *
 * Pruning keeps the sweep tractable (DESIGN.md section 14):
 *
 *  - geometry cutoff: a cache whose capacity alone exceeds the largest
 *    budget can never be feasible and is dropped up front;
 *  - analytic dictionary cutoff: a dictionary cap whose minimum ROM
 *    footprint (4 bytes per entry, the smallest possible entry) cannot
 *    fit beside the smallest kept cache is dropped -- a smaller cap
 *    subsumes it within budget;
 *  - dominated-point elimination: the frontier keeps only points no
 *    other point beats on both axes; budget winners read off it.
 *
 * Everything downstream of the (deterministic) farm is deterministic:
 * the same spec produces a byte-identical AutotuneResult::toJson() for
 * any --jobs value and any cache setting.
 */

#ifndef CODECOMP_AUTOTUNE_AUTOTUNE_HH
#define CODECOMP_AUTOTUNE_AUTOTUNE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/icache.hh"
#include "compress/cache.hh"
#include "compress/compressor.hh"
#include "compress/strategy.hh"
#include "timing/timing.hh"

namespace codecomp::autotune {

/** What to search, and under which machine model. */
struct BudgetSpec
{
    /** On-chip byte budgets to answer for (I-cache capacity +
     *  dictionary ROM; the timing model's L2, when configured, is a
     *  fixed backdrop and not counted). At least one required. */
    std::vector<uint64_t> budgets;

    /** Candidate L1 I-cache geometries; validated like any timing
     *  cache config. At least one required. */
    std::vector<cache::CacheConfig> cacheGeometries;

    /** Candidate schemes; empty = every registered codec. */
    std::vector<compress::Scheme> schemes;

    /** Candidate selection strategies; empty = {greedy, refit}. */
    std::vector<compress::StrategyKind> strategies;

    /** Candidate dictionary caps (CompressorConfig::maxEntries),
     *  clipped per scheme to its codeword budget and deduplicated;
     *  empty = {16, 64, 256, 1024, 4096}. */
    std::vector<uint32_t> dictCaps;

    /** Also try the profile-guided hot/cold layout for every
     *  candidate (doubles the compression space). */
    bool tryHotCold = true;

    /** Machine model shared by every candidate; the icache field is
     *  overridden by each candidate geometry. An l2 here applies to
     *  every point (native included) as a fixed backdrop. */
    timing::TimingConfig model;

    /** Execution step bound per timing run. */
    uint64_t maxSteps = 1ull << 27;
};

/** Human-readable reason @p spec cannot drive a search, or "". */
std::string budgetSpecError(const BudgetSpec &spec);

/** One compression configuration the search will evaluate. */
struct SearchPoint
{
    compress::CompressorConfig config;
    std::string label; //!< "nibble/refit/d256/hotcold"
};

/**
 * Deterministic candidate enumerator with the pre-measurement pruning
 * rules (geometry cutoff + analytic dictionary cutoff). Construction
 * raises a catchable fatal on an invalid spec.
 */
class SearchSpace
{
  public:
    explicit SearchSpace(const BudgetSpec &spec);

    /** Surviving compression candidates, in enumeration order. */
    const std::vector<SearchPoint> &points() const { return points_; }

    /** Geometries that fit the largest budget, in spec order. */
    const std::vector<cache::CacheConfig> &geometries() const
    {
        return geometries_;
    }

    uint64_t enumerated() const { return enumerated_; } //!< before pruning
    uint64_t pruned() const { return pruned_; }         //!< configs dropped
    uint64_t prunedGeometries() const { return prunedGeometries_; }

  private:
    std::vector<SearchPoint> points_;
    std::vector<cache::CacheConfig> geometries_;
    uint64_t enumerated_ = 0;
    uint64_t pruned_ = 0;
    uint64_t prunedGeometries_ = 0;
};

/** One evaluated (configuration, geometry) pair on the byte/cycle
 *  plane. Native baselines appear with scheme "native". */
struct CandidatePoint
{
    std::string id;       //!< "<label>@<cap>:<line>:<ways>"
    std::string scheme;   //!< codec CLI name, or "native"
    std::string strategy; //!< "" for native
    std::string layout;   //!< "" for native
    uint32_t dictEntries = 0; //!< configured cap (0 for native)

    cache::CacheConfig geometry;
    uint64_t dictBytes = 0;  //!< measured dictionary ROM
    uint64_t totalBytes = 0; //!< image total (text for native)
    uint64_t onChipBytes = 0; //!< geometry capacity + dictBytes
    bool native = false;

    timing::TimingReport report;

    uint64_t cycles() const { return report.cycles(); }
};

/** The winning point index for one requested budget (-1 = nothing
 *  feasible at that budget). */
struct BudgetWinner
{
    uint64_t budget = 0;
    int32_t point = -1;
};

/** Every point, the Pareto frontier, and per-budget winners for one
 *  workload. */
struct WorkloadResult
{
    std::string workload;
    std::vector<CandidatePoint> points;
    /** Indices into points, ascending onChipBytes, strictly descending
     *  cycles (dominated points eliminated). */
    std::vector<uint32_t> frontier;
    std::vector<BudgetWinner> winners; //!< one per requested budget
};

/** Farm plumbing for the evaluation jobs. */
struct AutotuneOptions
{
    bool cache = true;        //!< share a PipelineCache across the sweep
    std::string cacheDir;     //!< persistent cache directory ("" = none)
    bool isolate = false;     //!< run jobs in worker subprocesses
    std::string workerBinary; //!< worker executable when isolating
};

struct AutotuneResult
{
    std::vector<uint64_t> budgets; //!< sorted, deduplicated
    std::vector<WorkloadResult> workloads;

    uint64_t enumerated = 0;
    uint64_t pruned = 0;
    uint64_t prunedGeometries = 0;
    uint64_t failedJobs = 0; //!< farm jobs that produced no image

    /** Run-variant extras, for human output only -- deliberately NOT
     *  part of toJson() so the artifact stays byte-identical across
     *  --jobs and cache settings. */
    compress::PipelineCache::Stats cacheStats;
    double wallMillis = 0.0;

    /** The deterministic artifact: spec echo, every point, frontier
     *  ids, and the budget -> winner table. */
    std::string toJson() const;
};

/**
 * Run the search over @p workloadNames. Catchable fatal on an invalid
 * spec or unknown workload name (validated before any work starts).
 */
AutotuneResult autotune(const std::vector<std::string> &workloadNames,
                        const BudgetSpec &spec,
                        const AutotuneOptions &options = {});

} // namespace codecomp::autotune

#endif // CODECOMP_AUTOTUNE_AUTOTUNE_HH
