/**
 * @file
 * Linked-program representation: the unit the compressor operates on.
 *
 * A Program is the output of the SDTS compiler's linker: one .text
 * section of 32-bit instruction words, one .data section of bytes
 * (globals and jump tables), function symbols with prologue/epilogue
 * metadata (for the Table 3 analysis), and code-address relocations
 * marking .data words that hold code addresses (jump-table slots that
 * must be re-patched after compression, paper section 3.2.1).
 */

#ifndef CODECOMP_PROGRAM_PROGRAM_HH
#define CODECOMP_PROGRAM_PROGRAM_HH

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "isa/inst.hh"
#include "support/serialize.hh"

namespace codecomp {

/** A .data word that holds the address of an instruction. */
struct CodeReloc
{
    uint32_t dataOffset;  //!< byte offset of the 32-bit slot in .data
    uint32_t targetIndex; //!< instruction index in .text
};

/** An instruction-index range [first, first + count). */
struct InstRange
{
    uint32_t first = 0;
    uint32_t count = 0;

    bool operator==(const InstRange &) const = default;
};

/** A function symbol with the metadata the static analyses need. */
struct FunctionSymbol
{
    std::string name;
    InstRange body;                    //!< whole function
    InstRange prologue;                //!< register-save template
    std::vector<InstRange> epilogues;  //!< restore templates (>= 1)
};

/** A fully linked ppclite executable. */
struct Program
{
    /** Base byte address of .text in both address spaces. */
    static constexpr uint32_t textBase = 0x00010000;

    /** Alignment of the .data base above the end of .text. */
    static constexpr uint32_t dataAlign = 0x1000;

    std::vector<isa::Word> text;
    std::vector<uint8_t> data;
    uint32_t dataBase = 0;
    std::vector<CodeReloc> codeRelocs;
    std::vector<FunctionSymbol> functions;
    uint32_t entryIndex = 0; //!< instruction index where execution starts

    /** Size of the uncompressed .text in bytes; the denominator of every
     *  compression ratio in the paper. */
    uint32_t textBytes() const
    {
        return static_cast<uint32_t>(text.size()) * isa::instBytes;
    }

    /** Byte address of instruction @p index. */
    uint32_t addrOfIndex(uint32_t index) const
    {
        return textBase + index * isa::instBytes;
    }

    /** Instruction index of byte address @p addr (must be in .text). */
    uint32_t indexOfAddr(uint32_t addr) const;

    /** Compute dataBase from the text size (idempotent; also done by
     *  finalize). The linker needs it before relocation. */
    void computeDataBase();

    /** Compute dataBase from the text size and run sanity checks:
     *  every relative branch lands on a valid instruction, every code
     *  relocation points into .text, symbol ranges nest properly.
     *  Panics on violations -- for internally generated programs only;
     *  untrusted input goes through validate(). */
    void finalize();

    /**
     * Structural validation of untrusted program content: the same
     * invariants finalize() enforces, plus an address-space fit check,
     * reported as a typed LoadError instead of a panic. Returns
     * std::nullopt when the program is well formed. Does not require
     * (or set) dataBase.
     */
    std::optional<LoadError> validate() const;

    /** Target instruction index of the relative branch at @p index. */
    uint32_t branchTargetIndex(uint32_t index) const;
};

} // namespace codecomp

#endif // CODECOMP_PROGRAM_PROGRAM_HH
