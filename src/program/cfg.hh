/**
 * @file
 * Basic-block analysis over a linked Program.
 *
 * The compressor may only form dictionary entries from sequences that lie
 * entirely within one basic block (paper section 3.1.1): branches may
 * target codewords, but never the interior of an encoded sequence.
 * Block leaders are exactly the possible branch targets, so "sequence
 * within a block" implies "no branch lands mid-sequence".
 */

#ifndef CODECOMP_PROGRAM_CFG_HH
#define CODECOMP_PROGRAM_CFG_HH

#include <cstdint>
#include <vector>

#include "program/program.hh"

namespace codecomp {

/** Partition of .text into maximal single-entry straight-line runs. */
class Cfg
{
  public:
    /** Compute leaders and blocks for @p program. */
    static Cfg build(const Program &program);

    /** Block index ranges, in ascending order, covering all of .text. */
    const std::vector<InstRange> &blocks() const { return blocks_; }

    /** True if instruction @p index starts a basic block. */
    bool isLeader(uint32_t index) const { return leader_.at(index); }

    /** Index of the block containing instruction @p index. */
    uint32_t blockOf(uint32_t index) const { return block_of_.at(index); }

  private:
    std::vector<InstRange> blocks_;
    std::vector<bool> leader_;
    std::vector<uint32_t> block_of_;
};

} // namespace codecomp

#endif // CODECOMP_PROGRAM_CFG_HH
