#include "program/cfg.hh"

#include "support/logging.hh"

namespace codecomp {

Cfg
Cfg::build(const Program &program)
{
    Cfg cfg;
    size_t n = program.text.size();
    CC_ASSERT(n > 0, "empty program");
    cfg.leader_.assign(n, false);

    auto mark = [&cfg, n](uint32_t index) {
        CC_ASSERT(index < n, "leader out of range");
        cfg.leader_[index] = true;
    };

    mark(program.entryIndex);

    // Function entries are call targets; all are leaders.
    for (const FunctionSymbol &fn : program.functions)
        mark(fn.body.first);

    // Jump-table slots hold code addresses; their targets are leaders.
    for (const CodeReloc &reloc : program.codeRelocs)
        mark(reloc.targetIndex);

    for (uint32_t i = 0; i < n; ++i) {
        isa::Inst inst = isa::decode(program.text[i]);
        if (!inst.isBranch())
            continue;
        if (inst.isRelativeBranch())
            mark(program.branchTargetIndex(i));
        // The instruction after any branch starts a block (fall-through
        // of a conditional, or return point of a call).
        if (i + 1 < n)
            mark(i + 1);
    }
    cfg.leader_[0] = true;

    cfg.block_of_.assign(n, 0);
    for (uint32_t i = 0; i < n; ++i) {
        if (cfg.leader_[i])
            cfg.blocks_.push_back({i, 0});
        InstRange &blk = cfg.blocks_.back();
        ++blk.count;
        cfg.block_of_[i] = static_cast<uint32_t>(cfg.blocks_.size() - 1);
    }
    return cfg;
}

} // namespace codecomp
