#include "program/program.hh"

#include "support/logging.hh"

namespace codecomp {

uint32_t
Program::indexOfAddr(uint32_t addr) const
{
    CC_ASSERT(addr >= textBase && addr < textBase + textBytes(),
              "address not in .text: ", addr);
    CC_ASSERT(addr % isa::instBytes == 0, "misaligned text address");
    return (addr - textBase) / isa::instBytes;
}

uint32_t
Program::branchTargetIndex(uint32_t index) const
{
    isa::Inst inst = isa::decode(text.at(index));
    CC_ASSERT(inst.isRelativeBranch(), "not a relative branch at ", index);
    int64_t target;
    if (inst.aa) {
        // Absolute: byte address is disp * 4.
        target = (static_cast<int64_t>(inst.disp) * 4 - textBase) /
                 isa::instBytes;
    } else {
        target = static_cast<int64_t>(index) + inst.disp;
    }
    CC_ASSERT(target >= 0 && target < static_cast<int64_t>(text.size()),
              "branch target out of range at ", index);
    return static_cast<uint32_t>(target);
}

void
Program::computeDataBase()
{
    uint32_t text_end = textBase + textBytes();
    dataBase = (text_end + dataAlign - 1) / dataAlign * dataAlign;
}

void
Program::finalize()
{
    computeDataBase();
    if (std::optional<LoadError> error = validate())
        CC_PANIC("invalid program: ", error->message());
}

std::optional<LoadError>
Program::validate() const
{
    auto invalid = [](std::string detail) {
        return LoadError{LoadStatus::BadValue, 0, "program",
                         std::move(detail)};
    };

    // All size arithmetic in 64 bits: untrusted 32-bit counts must not
    // be allowed to wrap any of these comparisons.
    uint64_t text_count = text.size();
    uint64_t text_end = textBase + text_count * isa::instBytes;
    if (text_end > isa::addressSpaceBytes)
        return invalid(".text of " + std::to_string(text_count) +
                       " instructions does not fit the address space");
    uint64_t data_end = (text_end + dataAlign - 1) / dataAlign *
                            dataAlign +
                        data.size();
    if (data_end > isa::addressSpaceBytes)
        return invalid(".data of " + std::to_string(data.size()) +
                       " bytes does not fit the address space");

    if (entryIndex >= text_count)
        return invalid("entry point index " + std::to_string(entryIndex) +
                       " out of range");

    for (uint32_t i = 0; i < text.size(); ++i) {
        isa::Inst inst = isa::decode(text[i]);
        if (inst.op == isa::Op::Illegal)
            return invalid("illegal instruction in .text at index " +
                           std::to_string(i));
        if (!inst.isRelativeBranch())
            continue;
        int64_t target;
        if (inst.aa) {
            target = (static_cast<int64_t>(inst.disp) * 4 - textBase) /
                     isa::instBytes;
        } else {
            target = static_cast<int64_t>(i) + inst.disp;
        }
        if (target < 0 || target >= static_cast<int64_t>(text_count))
            return invalid("branch target out of range at index " +
                           std::to_string(i));
    }

    for (const CodeReloc &reloc : codeRelocs) {
        if (reloc.dataOffset > data.size() ||
            data.size() - reloc.dataOffset < 4)
            return invalid("code reloc outside .data at offset " +
                           std::to_string(reloc.dataOffset));
        if (reloc.targetIndex >= text_count)
            return invalid("code reloc target outside .text: index " +
                           std::to_string(reloc.targetIndex));
    }

    for (const FunctionSymbol &fn : functions) {
        if (static_cast<uint64_t>(fn.body.first) + fn.body.count >
            text_count)
            return invalid("function " + fn.name + " outside .text");
        auto inside = [&fn](const InstRange &r) {
            return r.first >= fn.body.first &&
                   static_cast<uint64_t>(r.first) + r.count <=
                       static_cast<uint64_t>(fn.body.first) +
                           fn.body.count;
        };
        if (fn.prologue.count != 0 && !inside(fn.prologue))
            return invalid("prologue outside function " + fn.name);
        for (const InstRange &ep : fn.epilogues)
            if (!inside(ep))
                return invalid("epilogue outside function " + fn.name);
    }
    return std::nullopt;
}

} // namespace codecomp
