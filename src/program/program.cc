#include "program/program.hh"

#include "support/logging.hh"

namespace codecomp {

uint32_t
Program::indexOfAddr(uint32_t addr) const
{
    CC_ASSERT(addr >= textBase && addr < textBase + textBytes(),
              "address not in .text: ", addr);
    CC_ASSERT(addr % isa::instBytes == 0, "misaligned text address");
    return (addr - textBase) / isa::instBytes;
}

uint32_t
Program::branchTargetIndex(uint32_t index) const
{
    isa::Inst inst = isa::decode(text.at(index));
    CC_ASSERT(inst.isRelativeBranch(), "not a relative branch at ", index);
    int64_t target;
    if (inst.aa) {
        // Absolute: byte address is disp * 4.
        target = (static_cast<int64_t>(inst.disp) * 4 - textBase) /
                 isa::instBytes;
    } else {
        target = static_cast<int64_t>(index) + inst.disp;
    }
    CC_ASSERT(target >= 0 && target < static_cast<int64_t>(text.size()),
              "branch target out of range at ", index);
    return static_cast<uint32_t>(target);
}

void
Program::computeDataBase()
{
    uint32_t text_end = textBase + textBytes();
    dataBase = (text_end + dataAlign - 1) / dataAlign * dataAlign;
}

void
Program::finalize()
{
    computeDataBase();

    CC_ASSERT(entryIndex < text.size(), "entry point out of range");

    for (uint32_t i = 0; i < text.size(); ++i) {
        isa::Inst inst = isa::decode(text[i]);
        CC_ASSERT(inst.op != isa::Op::Illegal,
                  "illegal instruction in .text at index ", i);
        if (inst.isRelativeBranch())
            branchTargetIndex(i); // asserts validity
    }

    for (const CodeReloc &reloc : codeRelocs) {
        CC_ASSERT(reloc.dataOffset + 4 <= data.size(),
                  "code reloc outside .data");
        CC_ASSERT(reloc.targetIndex < text.size(),
                  "code reloc target outside .text");
    }

    for (const FunctionSymbol &fn : functions) {
        CC_ASSERT(fn.body.first + fn.body.count <= text.size(),
                  "function ", fn.name, " outside .text");
        auto inside = [&fn](const InstRange &r) {
            return r.first >= fn.body.first &&
                   r.first + r.count <= fn.body.first + fn.body.count;
        };
        CC_ASSERT(fn.prologue.count == 0 || inside(fn.prologue),
                  "prologue outside function ", fn.name);
        for (const InstRange &ep : fn.epilogues)
            CC_ASSERT(inside(ep), "epilogue outside function ", fn.name);
    }
}

} // namespace codecomp
