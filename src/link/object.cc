#include "link/object.hh"

#include "support/serialize.hh"

namespace codecomp::link {

namespace {

constexpr uint32_t moduleMagic = 0x4343434f; // "CCCO"
constexpr uint32_t formatVersion = 1;

void
putRange(ByteSink &sink, const InstRange &range)
{
    sink.put32(range.first);
    sink.put32(range.count);
}

InstRange
getRange(ByteSource &source)
{
    InstRange range;
    range.first = source.get32();
    range.count = source.get32();
    return range;
}

} // namespace

std::vector<uint8_t>
saveModule(const ObjectModule &module)
{
    ByteSink sink;
    sink.put32(moduleMagic);
    sink.put32(formatVersion);
    sink.putString(module.name);

    sink.put32(static_cast<uint32_t>(module.text.size()));
    for (isa::Word word : module.text)
        sink.put32(word);
    sink.putBlob(module.data);

    sink.put32(static_cast<uint32_t>(module.functions.size()));
    for (const FunctionSymbol &fn : module.functions) {
        sink.putString(fn.name);
        putRange(sink, fn.body);
        putRange(sink, fn.prologue);
        sink.put32(static_cast<uint32_t>(fn.epilogues.size()));
        for (const InstRange &ep : fn.epilogues)
            putRange(sink, ep);
    }

    sink.put32(static_cast<uint32_t>(module.calls.size()));
    for (const CallReloc &reloc : module.calls) {
        sink.put32(reloc.textIndex);
        sink.putString(reloc.callee);
    }

    sink.put32(static_cast<uint32_t>(module.dataRefs.size()));
    for (const DataReloc &reloc : module.dataRefs) {
        sink.put32(reloc.textIndex);
        sink.put32(reloc.dataOffset);
        sink.put8(static_cast<uint8_t>(reloc.half));
    }

    sink.put32(static_cast<uint32_t>(module.tables.size()));
    for (const TableReloc &reloc : module.tables) {
        sink.put32(reloc.dataOffset);
        sink.put32(reloc.textIndex);
    }
    return sink.take();
}

ObjectModule
loadModule(const std::vector<uint8_t> &bytes)
{
    ByteSource source(bytes);
    if (source.get32() != moduleMagic)
        CC_FATAL("not a .cco object module");
    if (source.get32() != formatVersion)
        CC_FATAL("unsupported .cco version");

    ObjectModule module;
    module.name = source.getString();

    uint32_t text_count = source.get32();
    module.text.reserve(text_count);
    for (uint32_t i = 0; i < text_count; ++i)
        module.text.push_back(source.get32());
    module.data = source.getBlob();

    uint32_t fn_count = source.get32();
    for (uint32_t i = 0; i < fn_count; ++i) {
        FunctionSymbol fn;
        fn.name = source.getString();
        fn.body = getRange(source);
        fn.prologue = getRange(source);
        uint32_t ep_count = source.get32();
        for (uint32_t e = 0; e < ep_count; ++e)
            fn.epilogues.push_back(getRange(source));
        module.functions.push_back(std::move(fn));
    }

    uint32_t call_count = source.get32();
    for (uint32_t i = 0; i < call_count; ++i) {
        CallReloc reloc;
        reloc.textIndex = source.get32();
        reloc.callee = source.getString();
        module.calls.push_back(std::move(reloc));
    }

    uint32_t data_count = source.get32();
    for (uint32_t i = 0; i < data_count; ++i) {
        DataReloc reloc;
        reloc.textIndex = source.get32();
        reloc.dataOffset = source.get32();
        uint8_t half = source.get8();
        if (half > static_cast<uint8_t>(DataReloc::Half::Lo))
            CC_FATAL("bad data relocation kind in .cco");
        reloc.half = static_cast<DataReloc::Half>(half);
        module.dataRefs.push_back(reloc);
    }

    uint32_t table_count = source.get32();
    for (uint32_t i = 0; i < table_count; ++i) {
        TableReloc reloc;
        reloc.dataOffset = source.get32();
        reloc.textIndex = source.get32();
        module.tables.push_back(reloc);
    }
    if (!source.atEnd())
        CC_FATAL("trailing bytes in .cco file");
    return module;
}

} // namespace codecomp::link
