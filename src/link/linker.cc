#include "link/linker.hh"

#include <unordered_map>

#include "isa/builder.hh"
#include "support/logging.hh"

namespace codecomp::link {

namespace {

/** Number of instructions in the synthesized _start stub. */
constexpr uint32_t startInsns = 3;

int32_t
haHalf(uint32_t addr)
{
    return static_cast<int32_t>(
        static_cast<int16_t>(((addr + 0x8000u) >> 16) & 0xffff));
}

int32_t
loHalf(uint32_t addr)
{
    return static_cast<int32_t>(static_cast<int16_t>(addr & 0xffff));
}

void
patchImm(Program &program, uint32_t index, int32_t imm)
{
    isa::Inst inst = isa::decode(program.text[index]);
    inst.imm = imm;
    program.text[index] = isa::encode(inst);
}

void
patchDisp(Program &program, uint32_t index, int32_t disp)
{
    isa::Inst inst = isa::decode(program.text[index]);
    inst.disp = disp;
    program.text[index] = isa::encode(inst);
}

} // namespace

Program
linkModules(const std::vector<ObjectModule> &modules)
{
    if (modules.empty())
        CC_FATAL("nothing to link");

    Program program;

    // ---- _start stub ----
    program.text.push_back(isa::encode(isa::bl(0))); // patched below
    program.text.push_back(isa::encode(
        isa::li(0, static_cast<int32_t>(isa::Syscall::Exit))));
    program.text.push_back(isa::encode(isa::sc()));
    FunctionSymbol start_sym;
    start_sym.name = "_start";
    start_sym.body = {0, startInsns};
    program.functions.push_back(start_sym);
    program.entryIndex = 0;

    // ---- layout ----
    std::vector<uint32_t> text_base(modules.size());
    std::vector<uint32_t> data_base(modules.size());
    for (size_t m = 0; m < modules.size(); ++m) {
        text_base[m] = static_cast<uint32_t>(program.text.size());
        program.text.insert(program.text.end(), modules[m].text.begin(),
                            modules[m].text.end());
        // Word-align each module's data.
        while (program.data.size() % 4 != 0)
            program.data.push_back(0);
        data_base[m] = static_cast<uint32_t>(program.data.size());
        program.data.insert(program.data.end(), modules[m].data.begin(),
                            modules[m].data.end());
    }

    // ---- global function symbol table ----
    std::unordered_map<std::string, uint32_t> entry_of;
    for (size_t m = 0; m < modules.size(); ++m) {
        for (const FunctionSymbol &fn : modules[m].functions) {
            uint32_t entry = text_base[m] + fn.body.first;
            auto [it, inserted] = entry_of.emplace(fn.name, entry);
            if (!inserted)
                CC_FATAL("duplicate symbol '", fn.name, "' (modules ",
                         modules[m].name, " and earlier)");
            FunctionSymbol rebased = fn;
            rebased.body.first += text_base[m];
            if (rebased.prologue.count > 0)
                rebased.prologue.first += text_base[m];
            for (InstRange &ep : rebased.epilogues)
                ep.first += text_base[m];
            program.functions.push_back(std::move(rebased));
        }
    }

    // ---- relocation ----
    auto entry_index = [&entry_of](const std::string &symbol,
                                   const std::string &module) {
        auto it = entry_of.find(symbol);
        if (it == entry_of.end())
            CC_FATAL("unresolved symbol '", symbol, "' referenced from ",
                     module);
        return it->second;
    };

    // _start calls main.
    patchDisp(program, 0,
              static_cast<int32_t>(entry_index("main", "_start")));

    program.computeDataBase();

    for (size_t m = 0; m < modules.size(); ++m) {
        for (const CallReloc &reloc : modules[m].calls) {
            uint32_t site = text_base[m] + reloc.textIndex;
            uint32_t target = entry_index(reloc.callee, modules[m].name);
            patchDisp(program, site,
                      static_cast<int32_t>(target) -
                          static_cast<int32_t>(site));
        }
        for (const DataReloc &reloc : modules[m].dataRefs) {
            uint32_t site = text_base[m] + reloc.textIndex;
            uint32_t addr =
                program.dataBase + data_base[m] + reloc.dataOffset;
            patchImm(program, site,
                     reloc.half == DataReloc::Half::Ha ? haHalf(addr)
                                                       : loHalf(addr));
        }
        for (const TableReloc &reloc : modules[m].tables) {
            program.codeRelocs.push_back(
                {data_base[m] + reloc.dataOffset,
                 text_base[m] + reloc.textIndex});
        }
    }

    program.finalize();
    return program;
}

} // namespace codecomp::link
