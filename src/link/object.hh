/**
 * @file
 * Relocatable object modules: the output of separate compilation.
 *
 * The paper's binaries were compiled per translation unit and linked
 * statically (libraries included). This module reproduces that
 * pipeline: `minicc -c` turns one MiniC translation unit into an
 * ObjectModule whose function calls and data references are recorded
 * as relocations; the linker (link.hh) concatenates modules, resolves
 * symbols, lays out .data, and produces the executable Program the
 * compressor consumes.
 *
 * Scope: functions link across modules by name; globals are
 * module-private (early-linker semantics -- cross-module state flows
 * through calls), which keeps MiniC free of declaration syntax.
 */

#ifndef CODECOMP_LINK_OBJECT_HH
#define CODECOMP_LINK_OBJECT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "program/program.hh"

namespace codecomp::link {

/** A `bl` whose displacement awaits symbol resolution. */
struct CallReloc
{
    uint32_t textIndex;  //!< module-local instruction index of the bl
    std::string callee;  //!< function symbol name
};

/** A 16-bit immediate holding half of a module-local .data address. */
struct DataReloc
{
    enum class Half : uint8_t {
        Ha, //!< high-adjusted half (lis)
        Lo, //!< low half (addi/lwz/stw displacement)
    };
    uint32_t textIndex;  //!< instruction whose imm field gets patched
    uint32_t dataOffset; //!< module-local .data byte offset
    Half half;
};

/** A .data word that must receive the address of a text label. */
struct TableReloc
{
    uint32_t dataOffset; //!< module-local .data byte offset
    uint32_t textIndex;  //!< module-local instruction index
};

/** One relocatable translation unit. */
struct ObjectModule
{
    std::string name; //!< diagnostic label (source/benchmark name)

    std::vector<isa::Word> text; //!< module-local instruction stream
    std::vector<uint8_t> data;   //!< module-local initialized data

    /** Defined functions, with module-local ranges. */
    std::vector<FunctionSymbol> functions;

    std::vector<CallReloc> calls;
    std::vector<DataReloc> dataRefs;
    std::vector<TableReloc> tables;
};

/** @{ On-disk .cco format. */
std::vector<uint8_t> saveModule(const ObjectModule &module);
ObjectModule loadModule(const std::vector<uint8_t> &bytes);
/** @} */

} // namespace codecomp::link

#endif // CODECOMP_LINK_OBJECT_HH
