/**
 * @file
 * The static linker: ObjectModules -> executable Program.
 *
 * Layout: a synthesized `_start` stub (call main, exit syscall) at
 * instruction 0, then each module's .text in input order; .data is each
 * module's data concatenated with 4-byte alignment between modules.
 * Resolution: function symbols are global (duplicates and unresolved
 * references are user errors); data references and jump-table slots are
 * rebased into the final address space.
 */

#ifndef CODECOMP_LINK_LINKER_HH
#define CODECOMP_LINK_LINKER_HH

#include "link/object.hh"

namespace codecomp::link {

/**
 * Link @p modules into a runnable Program. Exactly one module must
 * define `main`. Fatal on duplicate or unresolved function symbols.
 */
Program linkModules(const std::vector<ObjectModule> &modules);

} // namespace codecomp::link

#endif // CODECOMP_LINK_LINKER_HH
