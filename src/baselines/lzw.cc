#include "baselines/lzw.hh"

#include <string>
#include <unordered_map>

#include "support/bitstream.hh"
#include "support/logging.hh"

namespace codecomp::baselines {

namespace {

constexpr unsigned minWidth = 9;
constexpr unsigned maxWidth = 16;
constexpr uint32_t firstFree = 256;
constexpr uint32_t maxCodes = 1u << maxWidth;

/** compress(1)-style 3-byte header: magic + max-bits flag. */
const uint8_t header[3] = {0x1f, 0x9d, 0x90};

} // namespace

std::vector<uint8_t>
lzwCompress(const std::vector<uint8_t> &input)
{
    std::vector<uint8_t> out(header, header + 3);
    if (input.empty())
        return out;

    std::unordered_map<uint32_t, uint32_t> dict;
    uint32_t next = firstFree;
    unsigned width = minWidth;
    BitWriter writer;

    uint32_t w = input[0];
    for (size_t i = 1; i < input.size(); ++i) {
        uint32_t key = (w << 8) | input[i];
        auto it = dict.find(key);
        if (it != dict.end()) {
            w = it->second;
            continue;
        }
        writer.putBits(w, width);
        if (next < maxCodes) {
            dict.emplace(key, next);
            ++next;
            if (next == (1u << width) && width < maxWidth)
                ++width;
        }
        w = input[i];
    }
    writer.putBits(w, width);

    out.insert(out.end(), writer.bytes().begin(), writer.bytes().end());
    return out;
}

std::vector<uint8_t>
lzwDecompress(const std::vector<uint8_t> &compressed)
{
    CC_ASSERT(compressed.size() >= 3 && compressed[0] == header[0] &&
                  compressed[1] == header[1],
              "bad LZW header");
    std::vector<uint8_t> out;
    if (compressed.size() == 3)
        return out;

    std::vector<std::string> table(256);
    for (unsigned s = 0; s < 256; ++s)
        table[s] = std::string(1, static_cast<char>(s));
    table.reserve(maxCodes);

    BitReader reader(compressed.data() + 3, (compressed.size() - 3) * 8);
    uint32_t next = firstFree;
    unsigned width = minWidth;

    uint32_t prev = reader.getBits(width);
    CC_ASSERT(prev < 256, "bad first code");
    out.push_back(static_cast<uint8_t>(prev));

    for (;;) {
        // Mirror the encoder: an entry was assigned after the previous
        // emission (unless the table is frozen), possibly widening.
        int64_t pending = -1;
        if (next < maxCodes) {
            pending = next;
            ++next;
            if (next == (1u << width) && width < maxWidth)
                ++width;
        }
        if (reader.size() - reader.pos() < width)
            break; // only byte padding (< 9 bits) remains
        uint32_t code = reader.getBits(width);
        std::string str;
        if (pending >= 0 && code == static_cast<uint32_t>(pending)) {
            // The KwKwK case: the entry being defined right now.
            str = table[prev] + table[prev][0];
        } else {
            CC_ASSERT(code < table.size(), "bad LZW code");
            str = table[code];
        }
        if (pending >= 0)
            table.push_back(table[prev] + str[0]);
        out.insert(out.end(), str.begin(), str.end());
        prev = code;
    }
    return out;
}

} // namespace codecomp::baselines
