#include "baselines/lzw.hh"

#include <string>
#include <unordered_map>

#include "support/bitstream.hh"
#include "support/logging.hh"

namespace codecomp::baselines {

namespace {

constexpr unsigned minWidth = 9;
constexpr unsigned maxWidth = 16;
constexpr uint32_t firstFree = 256;
constexpr uint32_t maxCodes = 1u << maxWidth;

/** compress(1)-style magic + max-bits flag; a fourth header byte
 *  carries the number of zero pad bits in the final payload byte, so
 *  the decompressor works from the exact bit count instead of assuming
 *  a byte-multiple stream (the same phantom-pad class of bug the
 *  NibbleReader and BitReader byte-vector constructors had). */
const uint8_t header[3] = {0x1f, 0x9d, 0x90};
constexpr size_t headerBytes = 4;

} // namespace

std::vector<uint8_t>
lzwCompress(const std::vector<uint8_t> &input)
{
    std::vector<uint8_t> out(header, header + 3);
    out.push_back(0); // pad-bit count, patched after encoding
    if (input.empty())
        return out;

    std::unordered_map<uint32_t, uint32_t> dict;
    uint32_t next = firstFree;
    unsigned width = minWidth;
    BitWriter writer;

    uint32_t w = input[0];
    for (size_t i = 1; i < input.size(); ++i) {
        uint32_t key = (w << 8) | input[i];
        auto it = dict.find(key);
        if (it != dict.end()) {
            w = it->second;
            continue;
        }
        writer.putBits(w, width);
        if (next < maxCodes) {
            dict.emplace(key, next);
            ++next;
            if (next == (1u << width) && width < maxWidth)
                ++width;
        }
        w = input[i];
    }
    writer.putBits(w, width);

    out[3] = static_cast<uint8_t>((8 - writer.bitCount() % 8) % 8);
    out.insert(out.end(), writer.bytes().begin(), writer.bytes().end());
    return out;
}

std::vector<uint8_t>
lzwDecompress(const std::vector<uint8_t> &compressed)
{
    CC_ASSERT(compressed.size() >= headerBytes &&
                  compressed[0] == header[0] &&
                  compressed[1] == header[1],
              "bad LZW header");
    uint8_t pad_bits = compressed[3];
    CC_ASSERT(pad_bits < 8, "bad LZW pad-bit count");
    std::vector<uint8_t> out;
    if (compressed.size() == headerBytes) {
        CC_ASSERT(pad_bits == 0, "padded empty LZW stream");
        return out;
    }

    std::vector<std::string> table(256);
    for (unsigned s = 0; s < 256; ++s)
        table[s] = std::string(1, static_cast<char>(s));
    table.reserve(maxCodes);

    BitReader reader(compressed.data() + headerBytes,
                     (compressed.size() - headerBytes) * 8 - pad_bits);
    uint32_t next = firstFree;
    unsigned width = minWidth;

    uint32_t prev = reader.getBits(width);
    CC_ASSERT(prev < 256, "bad first code");
    out.push_back(static_cast<uint8_t>(prev));

    for (;;) {
        // Mirror the encoder: an entry was assigned after the previous
        // emission (unless the table is frozen), possibly widening.
        int64_t pending = -1;
        if (next < maxCodes) {
            pending = next;
            ++next;
            if (next == (1u << width) && width < maxWidth)
                ++width;
        }
        // The bit count is exact (header pad byte), so the stream ends
        // precisely after the final code -- a short remainder is
        // corruption, not padding.
        if (reader.atEnd())
            break;
        CC_ASSERT(reader.size() - reader.pos() >= width,
                  "truncated LZW stream");
        uint32_t code = reader.getBits(width);
        std::string str;
        if (pending >= 0 && code == static_cast<uint32_t>(pending)) {
            // The KwKwK case: the entry being defined right now.
            str = table[prev] + table[prev][0];
        } else {
            CC_ASSERT(code < table.size(), "bad LZW code");
            str = table[code];
        }
        if (pending >= 0)
            table.push_back(table[prev] + str[0]);
        out.insert(out.end(), str.begin(), str.end());
        prev = code;
    }
    return out;
}

} // namespace codecomp::baselines
