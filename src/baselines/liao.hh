/**
 * @file
 * Liao's compression methods (paper sections 2.4 and 4.1.1).
 *
 * Software method: common sequences become "mini-subroutines" -- each
 * occurrence is replaced by a 1-word call, and the sequence is stored
 * once in .text with a 1-word return appended.
 *
 * Hardware method: a call-dictionary instruction of 1 or 2 instruction
 * words (location + length fields) replaces each occurrence; the
 * sequence is stored in a dictionary. Entries must be strictly longer
 * than the codeword or no compression results, which is why Liao cannot
 * compress single instructions -- the limitation the paper's scheme
 * removes.
 */

#ifndef CODECOMP_BASELINES_LIAO_HH
#define CODECOMP_BASELINES_LIAO_HH

#include "compress/selection.hh"
#include "program/program.hh"

namespace codecomp::baselines {

struct LiaoConfig
{
    /** Codeword size in instruction words (1 or 2). */
    uint32_t codewordWords = 1;
    /** Max sequence length in instructions. */
    uint32_t maxEntryLen = 8;
    /** Software (mini-subroutine) method instead of call-dictionary. */
    bool softwareMethod = false;
    /** Dictionary entry budget (bounded by the location field). */
    uint32_t maxEntries = 8192;
};

struct LiaoResult
{
    size_t originalBytes = 0;
    size_t compressedBytes = 0;
    uint32_t entries = 0;
    uint32_t replacements = 0;

    double
    compressionRatio() const
    {
        return static_cast<double>(compressedBytes) / originalBytes;
    }
};

/** Apply Liao's method to @p program's .text and account sizes. */
LiaoResult liaoCompress(const Program &program, const LiaoConfig &config);

} // namespace codecomp::baselines

#endif // CODECOMP_BASELINES_LIAO_HH
