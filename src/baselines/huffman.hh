/**
 * @file
 * Canonical Huffman coding over the byte alphabet -- the entropy-coding
 * substrate for the CCRP comparator (paper section 2.3) and for
 * entropy-bound analyses.
 */

#ifndef CODECOMP_BASELINES_HUFFMAN_HH
#define CODECOMP_BASELINES_HUFFMAN_HH

#include <array>
#include <cstdint>
#include <vector>

#include "support/bitstream.hh"

namespace codecomp::baselines {

/** A canonical Huffman code for bytes. */
class HuffmanCode
{
  public:
    /** Build from symbol frequencies (zeros allowed; at least one
     *  nonzero required). */
    static HuffmanCode build(const std::array<uint64_t, 256> &freq);

    /** Code length in bits for @p symbol (0 if never coded). */
    unsigned length(uint8_t symbol) const { return lengths_[symbol]; }

    /** Append the code for @p symbol. */
    void encode(BitWriter &writer, uint8_t symbol) const;

    /** Read one symbol. */
    uint8_t decode(BitReader &reader) const;

    /** Total bits to code @p bytes. */
    uint64_t measure(const std::vector<uint8_t> &bytes) const;

    /** Serialized table size in bytes (one length byte per symbol). */
    static constexpr size_t tableBytes = 256;

  private:
    std::array<uint8_t, 256> lengths_{};
    std::array<uint32_t, 256> codes_{};
    /** Canonical decoding acceleration: for each length, the first
     *  code value and the index of its first symbol. */
    std::array<uint32_t, 33> firstCode_{};
    std::array<uint32_t, 33> firstIndex_{};
    std::vector<uint8_t> symbolsByCode_;
};

/** Byte frequencies of @p bytes. */
std::array<uint64_t, 256> byteFrequencies(const std::vector<uint8_t> &bytes);

} // namespace codecomp::baselines

#endif // CODECOMP_BASELINES_HUFFMAN_HH
