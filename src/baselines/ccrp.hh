/**
 * @file
 * CCRP comparator (paper section 2.3): Wolfe & Chanin's Compressed
 * Code RISC Processor. Instruction memory is Huffman-compressed one
 * cache line at a time; compressed lines are byte-aligned so the cache
 * refill engine can start decoding anywhere, and a Line Address Table
 * (LAT) maps each line's original address to its compressed location.
 *
 * Overheads counted in the compressed size, per the paper's accounting
 * style: the byte-rounded compressed lines, one 4-byte LAT entry per
 * line, and the 256-byte canonical Huffman length table.
 */

#ifndef CODECOMP_BASELINES_CCRP_HH
#define CODECOMP_BASELINES_CCRP_HH

#include <cstddef>

#include "program/program.hh"

namespace codecomp::baselines {

struct CcrpResult
{
    size_t originalBytes = 0;
    size_t compressedLineBytes = 0; //!< byte-rounded Huffman lines
    size_t latBytes = 0;
    size_t tableBytes = 0;
    unsigned lineSize = 0;

    size_t
    totalBytes() const
    {
        return compressedLineBytes + latBytes + tableBytes;
    }

    double
    compressionRatio() const
    {
        return static_cast<double>(totalBytes()) / originalBytes;
    }
};

/** Compress @p program's .text in CCRP style; round-trips each line as
 *  a self-check. */
CcrpResult ccrpCompress(const Program &program, unsigned line_size = 32);

} // namespace codecomp::baselines

#endif // CODECOMP_BASELINES_CCRP_HH
