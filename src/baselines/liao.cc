#include "baselines/liao.hh"

#include "compress/greedy.hh"
#include "support/logging.hh"

namespace codecomp::baselines {

LiaoResult
liaoCompress(const Program &program, const LiaoConfig &config)
{
    CC_ASSERT(config.codewordWords == 1 || config.codewordWords == 2,
              "Liao codewords are 1 or 2 instruction words");

    compress::GreedyConfig greedy;
    greedy.maxEntries = config.maxEntries;
    greedy.maxEntryLen = config.maxEntryLen;
    greedy.insnNibbles = 8;
    if (config.softwareMethod) {
        // Occurrence -> 1-word call; entry costs its body + a return.
        greedy.codewordNibbles = 8;
        greedy.dictEntryNibbles = 8;
        greedy.dictEntryExtraNibbles = 8;
        greedy.minEntryLen = 2;
    } else {
        greedy.codewordNibbles = config.codewordWords * 8;
        greedy.dictEntryNibbles = 8;
        greedy.minEntryLen = config.codewordWords + 1;
    }

    compress::SelectionResult sel =
        compress::selectGreedy(program, greedy);

    LiaoResult result;
    result.originalBytes = program.textBytes();
    result.entries = static_cast<uint32_t>(sel.dict.entries.size());
    result.replacements = static_cast<uint32_t>(sel.placements.size());

    int64_t saved_nibbles = 0;
    for (uint32_t id = 0; id < sel.dict.entries.size(); ++id) {
        uint32_t length =
            static_cast<uint32_t>(sel.dict.entries[id].size());
        saved_nibbles +=
            compress::savingsNibbles(greedy, length, sel.useCount[id]);
    }
    CC_ASSERT(saved_nibbles >= 0, "negative total savings");
    result.compressedBytes =
        result.originalBytes - static_cast<size_t>(saved_nibbles / 2);
    return result;
}

} // namespace codecomp::baselines
