/**
 * @file
 * LZW compression in the style of Unix compress(1) (LZC): the adaptive
 * dictionary comparator of the paper's Figure 11.
 *
 * Codes grow from 9 to 16 bits; when the dictionary fills it is frozen
 * (compress(1) additionally resets on degradation in block mode; our
 * inputs are far smaller than the 65536-entry table, so the reset path
 * never triggers and is omitted). A 4-byte header mirrors compress(1)'s
 * magic + flags overhead and adds a pad-bit count, so the bit stream's
 * exact length survives byte packing and decompression never reads
 * phantom pad bits.
 */

#ifndef CODECOMP_BASELINES_LZW_HH
#define CODECOMP_BASELINES_LZW_HH

#include <cstdint>
#include <vector>

namespace codecomp::baselines {

/** Compress @p input; returns header + packed codes. */
std::vector<uint8_t> lzwCompress(const std::vector<uint8_t> &input);

/** Invert lzwCompress exactly. */
std::vector<uint8_t> lzwDecompress(const std::vector<uint8_t> &compressed);

} // namespace codecomp::baselines

#endif // CODECOMP_BASELINES_LZW_HH
