#include "baselines/huffman.hh"

#include <algorithm>
#include <queue>

#include "support/logging.hh"

namespace codecomp::baselines {

std::array<uint64_t, 256>
byteFrequencies(const std::vector<uint8_t> &bytes)
{
    std::array<uint64_t, 256> freq{};
    for (uint8_t byte : bytes)
        ++freq[byte];
    return freq;
}

HuffmanCode
HuffmanCode::build(const std::array<uint64_t, 256> &freq)
{
    struct Node
    {
        uint64_t weight;
        uint32_t id; //!< deterministic tie-break; also index
        int left = -1;
        int right = -1;
        uint8_t symbol = 0;
    };
    std::vector<Node> nodes;
    auto cmp = [&nodes](uint32_t a, uint32_t b) {
        if (nodes[a].weight != nodes[b].weight)
            return nodes[a].weight > nodes[b].weight;
        return nodes[a].id > nodes[b].id;
    };
    std::priority_queue<uint32_t, std::vector<uint32_t>, decltype(cmp)>
        heap(cmp);

    for (unsigned s = 0; s < 256; ++s) {
        if (freq[s] == 0)
            continue;
        nodes.push_back({freq[s], static_cast<uint32_t>(nodes.size()), -1,
                         -1, static_cast<uint8_t>(s)});
        heap.push(static_cast<uint32_t>(nodes.size() - 1));
    }
    CC_ASSERT(!nodes.empty(), "no symbols to code");

    HuffmanCode code;
    if (nodes.size() == 1) {
        code.lengths_[nodes[0].symbol] = 1;
    } else {
        while (heap.size() > 1) {
            uint32_t a = heap.top();
            heap.pop();
            uint32_t b = heap.top();
            heap.pop();
            nodes.push_back({nodes[a].weight + nodes[b].weight,
                             static_cast<uint32_t>(nodes.size()),
                             static_cast<int>(a), static_cast<int>(b), 0});
            heap.push(static_cast<uint32_t>(nodes.size() - 1));
        }
        // Depth-first traversal assigns lengths.
        std::vector<std::pair<uint32_t, unsigned>> stack = {
            {heap.top(), 0}};
        while (!stack.empty()) {
            auto [idx, depth] = stack.back();
            stack.pop_back();
            const Node &node = nodes[idx];
            if (node.left < 0) {
                CC_ASSERT(depth <= 32, "code too long");
                code.lengths_[node.symbol] =
                    static_cast<uint8_t>(depth);
            } else {
                stack.push_back(
                    {static_cast<uint32_t>(node.left), depth + 1});
                stack.push_back(
                    {static_cast<uint32_t>(node.right), depth + 1});
            }
        }
    }

    // Canonical assignment: sort symbols by (length, value).
    std::vector<uint8_t> symbols;
    for (unsigned s = 0; s < 256; ++s)
        if (code.lengths_[s] > 0)
            symbols.push_back(static_cast<uint8_t>(s));
    std::sort(symbols.begin(), symbols.end(),
              [&code](uint8_t a, uint8_t b) {
                  if (code.lengths_[a] != code.lengths_[b])
                      return code.lengths_[a] < code.lengths_[b];
                  return a < b;
              });
    uint32_t next = 0;
    unsigned prev_len = code.lengths_[symbols[0]];
    code.firstCode_.fill(UINT32_MAX);
    code.firstCode_[prev_len] = 0;
    code.firstIndex_[prev_len] = 0;
    for (size_t i = 0; i < symbols.size(); ++i) {
        unsigned len = code.lengths_[symbols[i]];
        if (len > prev_len) {
            next <<= (len - prev_len);
            code.firstCode_[len] = next;
            code.firstIndex_[len] = static_cast<uint32_t>(i);
            prev_len = len;
        }
        code.codes_[symbols[i]] = next++;
    }
    code.symbolsByCode_ = std::move(symbols);
    return code;
}

void
HuffmanCode::encode(BitWriter &writer, uint8_t symbol) const
{
    CC_ASSERT(lengths_[symbol] > 0, "symbol has no code");
    writer.putBits(codes_[symbol], lengths_[symbol]);
}

uint8_t
HuffmanCode::decode(BitReader &reader) const
{
    uint32_t value = 0;
    for (unsigned len = 1; len <= 32; ++len) {
        value = (value << 1) | (reader.getBit() ? 1u : 0u);
        if (firstCode_[len] == UINT32_MAX)
            continue;
        // Number of codes of this length = distance to next length's
        // first index.
        uint32_t index = firstIndex_[len] + (value - firstCode_[len]);
        if (value >= firstCode_[len] && index < symbolsByCode_.size()) {
            uint8_t symbol = symbolsByCode_[index];
            if (lengths_[symbol] == len)
                return symbol;
        }
    }
    CC_PANIC("bad Huffman stream");
}

uint64_t
HuffmanCode::measure(const std::vector<uint8_t> &bytes) const
{
    uint64_t bits = 0;
    for (uint8_t byte : bytes)
        bits += lengths_[byte];
    return bits;
}

} // namespace codecomp::baselines
