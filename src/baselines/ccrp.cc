#include "baselines/ccrp.hh"

#include "baselines/huffman.hh"
#include "support/logging.hh"

namespace codecomp::baselines {

namespace {

std::vector<uint8_t>
textBytes(const Program &program)
{
    std::vector<uint8_t> bytes;
    bytes.reserve(program.text.size() * 4);
    for (isa::Word word : program.text) {
        bytes.push_back(static_cast<uint8_t>(word >> 24));
        bytes.push_back(static_cast<uint8_t>(word >> 16));
        bytes.push_back(static_cast<uint8_t>(word >> 8));
        bytes.push_back(static_cast<uint8_t>(word));
    }
    return bytes;
}

} // namespace

CcrpResult
ccrpCompress(const Program &program, unsigned line_size)
{
    CC_ASSERT(line_size >= 4 && line_size % 4 == 0, "bad line size");
    std::vector<uint8_t> bytes = textBytes(program);

    CcrpResult result;
    result.originalBytes = bytes.size();
    result.lineSize = line_size;

    HuffmanCode code = HuffmanCode::build(byteFrequencies(bytes));
    result.tableBytes = HuffmanCode::tableBytes;

    size_t lines = (bytes.size() + line_size - 1) / line_size;
    result.latBytes = lines * 4;

    for (size_t line = 0; line < lines; ++line) {
        size_t begin = line * line_size;
        size_t end = std::min(bytes.size(), begin + line_size);
        BitWriter writer;
        for (size_t i = begin; i < end; ++i)
            code.encode(writer, bytes[i]);
        result.compressedLineBytes += writer.sizeBytes();

        // Self-check: the line decodes back exactly.
        BitReader reader(writer.bytes().data(), writer.bitCount());
        for (size_t i = begin; i < end; ++i)
            CC_ASSERT(code.decode(reader) == bytes[i],
                      "CCRP line round-trip failed");
    }
    return result;
}

} // namespace codecomp::baselines
