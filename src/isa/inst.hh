/**
 * @file
 * Decoded instruction representation, encoder, and decoder for ppclite.
 */

#ifndef CODECOMP_ISA_INST_HH
#define CODECOMP_ISA_INST_HH

#include <cstdint>

#include "isa/isa.hh"

namespace codecomp::isa {

/** Mnemonic-level operation, after primary/extended opcode resolution. */
enum class Op : uint8_t {
    // D-form arithmetic / logic with immediate
    Addi, Addis, Mulli, Ori, Oris, Xori, Andi,
    // D-form compares (crf destination)
    Cmpi, Cmpli,
    // D-form loads and stores
    Lwz, Lbz, Lhz, Stw, Stb, Sth,
    // branches
    B,       //!< I-form, PC-relative (or absolute if aa)
    Bc,      //!< B-form conditional, PC-relative (or absolute if aa)
    Bclr,    //!< XL-form, branch to LR
    Bcctr,   //!< XL-form, branch to CTR
    // rotate-and-mask
    Rlwinm,
    // X-form register-register
    Add, Subf, Neg, Mullw, Divw, And, Or, Xor, Slw, Srw, Sraw, Srawi,
    Cmp, Cmpl, Lwzx,
    // special-purpose register moves
    Mtspr, Mfspr,
    // system call
    Sc,
    // anything undecodable
    Illegal,
};

/**
 * A decoded ppclite instruction.
 *
 * Branch displacements are stored as the raw signed *field* value:
 * the architectural byte offset of a taken B/Bc is disp * 4 in the
 * uncompressed ISA. Compressed program layouts reinterpret the same
 * field at codeword granularity (paper section 3.2.2), which is why the
 * field value rather than the byte offset is the canonical form here.
 */
struct Inst
{
    Op op = Op::Illegal;

    uint8_t rt = 0;  //!< target register (or source for stores, rs)
    uint8_t ra = 0;
    uint8_t rb = 0;
    uint8_t crf = 0; //!< condition-register field for compares

    int32_t imm = 0; //!< immediate; sign- or zero-extended per op

    int32_t disp = 0; //!< branch displacement field (signed); B: 24-bit,
                      //!< Bc: 14-bit
    uint8_t bo = 0;  //!< branch condition operation
    uint8_t bi = 0;  //!< condition-register bit index (crf*4 + bit)
    bool aa = false; //!< absolute-address bit
    bool lk = false; //!< link bit

    uint8_t sh = 0;  //!< rlwinm shift
    uint8_t mb = 0;  //!< rlwinm mask begin (0 = MSB)
    uint8_t me = 0;  //!< rlwinm mask end

    uint16_t spr = 0; //!< SPR number for mtspr/mfspr

    uint32_t raw = 0; //!< original word, kept for Op::Illegal

    bool operator==(const Inst &other) const = default;

    /** True for B and Bc: branches whose target comes from an offset
     *  field and must therefore be patched after compression. */
    bool
    isRelativeBranch() const
    {
        return op == Op::B || op == Op::Bc;
    }

    /** True for branches through LR or CTR; these are compressible. */
    bool
    isIndirectBranch() const
    {
        return op == Op::Bclr || op == Op::Bcctr;
    }

    /** True for any control transfer (always a basic-block terminator). */
    bool
    isBranch() const
    {
        return isRelativeBranch() || isIndirectBranch();
    }

    /** True if this instruction writes the link register when taken. */
    bool isCall() const { return isBranch() && lk; }
};

/** Decode a 32-bit instruction word. Unknown encodings yield Op::Illegal
 *  with the raw word preserved. */
Inst decode(Word word);

/** Encode a decoded instruction back into a 32-bit word. Field values
 *  must be in range (checked); Op::Illegal re-emits the raw word. */
Word encode(const Inst &inst);

/** Sign-extend the low @p bits of @p value. */
constexpr int32_t
signExtend(uint32_t value, unsigned bits)
{
    uint32_t m = 1u << (bits - 1);
    return static_cast<int32_t>((value ^ m) - m);
}

/** True if @p value fits in a signed field of @p bits bits. */
constexpr bool
fitsSigned(int64_t value, unsigned bits)
{
    int64_t lo = -(1ll << (bits - 1));
    int64_t hi = (1ll << (bits - 1)) - 1;
    return value >= lo && value <= hi;
}

} // namespace codecomp::isa

#endif // CODECOMP_ISA_INST_HH
