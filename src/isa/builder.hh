/**
 * @file
 * Assembler-style factory functions for ppclite instructions.
 *
 * These are the "templates" the SDTS code generator instantiates; they
 * are also convenient in tests. All functions return a decoded Inst;
 * call isa::encode() to obtain the 32-bit word.
 */

#ifndef CODECOMP_ISA_BUILDER_HH
#define CODECOMP_ISA_BUILDER_HH

#include "isa/inst.hh"

namespace codecomp::isa {

inline Inst
makeDForm(Op op, uint8_t rt, uint8_t ra, int32_t imm)
{
    Inst i;
    i.op = op;
    i.rt = rt;
    i.ra = ra;
    i.imm = imm;
    return i;
}

inline Inst addi(uint8_t rt, uint8_t ra, int32_t imm)
{ return makeDForm(Op::Addi, rt, ra, imm); }

inline Inst addis(uint8_t rt, uint8_t ra, int32_t imm)
{ return makeDForm(Op::Addis, rt, ra, imm); }

/** li rt, imm == addi rt, 0, imm (ra = 0 reads as constant zero). */
inline Inst li(uint8_t rt, int32_t imm) { return addi(rt, 0, imm); }

/** lis rt, imm == addis rt, 0, imm. */
inline Inst lis(uint8_t rt, int32_t imm) { return addis(rt, 0, imm); }

inline Inst mulli(uint8_t rt, uint8_t ra, int32_t imm)
{ return makeDForm(Op::Mulli, rt, ra, imm); }

inline Inst ori(uint8_t rt, uint8_t ra, int32_t imm)
{ return makeDForm(Op::Ori, rt, ra, imm); }

inline Inst oris(uint8_t rt, uint8_t ra, int32_t imm)
{ return makeDForm(Op::Oris, rt, ra, imm); }

inline Inst xori(uint8_t rt, uint8_t ra, int32_t imm)
{ return makeDForm(Op::Xori, rt, ra, imm); }

inline Inst andi(uint8_t rt, uint8_t ra, int32_t imm)
{ return makeDForm(Op::Andi, rt, ra, imm); }

inline Inst lwz(uint8_t rt, int32_t disp, uint8_t ra)
{ return makeDForm(Op::Lwz, rt, ra, disp); }

inline Inst lbz(uint8_t rt, int32_t disp, uint8_t ra)
{ return makeDForm(Op::Lbz, rt, ra, disp); }

inline Inst lhz(uint8_t rt, int32_t disp, uint8_t ra)
{ return makeDForm(Op::Lhz, rt, ra, disp); }

inline Inst stw(uint8_t rs, int32_t disp, uint8_t ra)
{ return makeDForm(Op::Stw, rs, ra, disp); }

inline Inst stb(uint8_t rs, int32_t disp, uint8_t ra)
{ return makeDForm(Op::Stb, rs, ra, disp); }

inline Inst sth(uint8_t rs, int32_t disp, uint8_t ra)
{ return makeDForm(Op::Sth, rs, ra, disp); }

inline Inst
cmpi(uint8_t crf, uint8_t ra, int32_t simm)
{
    Inst i;
    i.op = Op::Cmpi;
    i.crf = crf;
    i.ra = ra;
    i.imm = simm;
    return i;
}

inline Inst
cmpli(uint8_t crf, uint8_t ra, int32_t uimm)
{
    Inst i;
    i.op = Op::Cmpli;
    i.crf = crf;
    i.ra = ra;
    i.imm = uimm;
    return i;
}

inline Inst
makeXForm(Op op, uint8_t rt, uint8_t ra, uint8_t rb)
{
    Inst i;
    i.op = op;
    i.rt = rt;
    i.ra = ra;
    i.rb = rb;
    return i;
}

inline Inst add(uint8_t rt, uint8_t ra, uint8_t rb)
{ return makeXForm(Op::Add, rt, ra, rb); }

/** subf rt, ra, rb computes rb - ra (PowerPC operand order). */
inline Inst subf(uint8_t rt, uint8_t ra, uint8_t rb)
{ return makeXForm(Op::Subf, rt, ra, rb); }

inline Inst neg(uint8_t rt, uint8_t ra)
{ return makeXForm(Op::Neg, rt, ra, 0); }

inline Inst mullw(uint8_t rt, uint8_t ra, uint8_t rb)
{ return makeXForm(Op::Mullw, rt, ra, rb); }

inline Inst divw(uint8_t rt, uint8_t ra, uint8_t rb)
{ return makeXForm(Op::Divw, rt, ra, rb); }

inline Inst and_(uint8_t rt, uint8_t ra, uint8_t rb)
{ return makeXForm(Op::And, rt, ra, rb); }

inline Inst or_(uint8_t rt, uint8_t ra, uint8_t rb)
{ return makeXForm(Op::Or, rt, ra, rb); }

inline Inst xor_(uint8_t rt, uint8_t ra, uint8_t rb)
{ return makeXForm(Op::Xor, rt, ra, rb); }

inline Inst slw(uint8_t rt, uint8_t ra, uint8_t rb)
{ return makeXForm(Op::Slw, rt, ra, rb); }

inline Inst srw(uint8_t rt, uint8_t ra, uint8_t rb)
{ return makeXForm(Op::Srw, rt, ra, rb); }

inline Inst sraw(uint8_t rt, uint8_t ra, uint8_t rb)
{ return makeXForm(Op::Sraw, rt, ra, rb); }

inline Inst lwzx(uint8_t rt, uint8_t ra, uint8_t rb)
{ return makeXForm(Op::Lwzx, rt, ra, rb); }

/** srawi ra, rs, n: arithmetic right shift by immediate. */
inline Inst
srawi(uint8_t ra, uint8_t rs, uint8_t n)
{
    Inst i;
    i.op = Op::Srawi;
    i.rt = rs;
    i.ra = ra;
    i.sh = n;
    return i;
}

/** mr rt, rs == or rt, rs, rs. */
inline Inst mr(uint8_t rt, uint8_t rs) { return or_(rt, rs, rs); }

inline Inst
cmp(uint8_t crf, uint8_t ra, uint8_t rb)
{
    Inst i;
    i.op = Op::Cmp;
    i.crf = crf;
    i.ra = ra;
    i.rb = rb;
    return i;
}

inline Inst
cmpl(uint8_t crf, uint8_t ra, uint8_t rb)
{
    Inst i;
    i.op = Op::Cmpl;
    i.crf = crf;
    i.ra = ra;
    i.rb = rb;
    return i;
}

inline Inst
rlwinm(uint8_t ra, uint8_t rs, uint8_t sh, uint8_t mb, uint8_t me)
{
    Inst i;
    i.op = Op::Rlwinm;
    i.rt = rs;
    i.ra = ra;
    i.sh = sh;
    i.mb = mb;
    i.me = me;
    return i;
}

/** slwi ra, rs, n == rlwinm ra, rs, n, 0, 31-n. */
inline Inst slwi(uint8_t ra, uint8_t rs, uint8_t n)
{ return rlwinm(ra, rs, n, 0, 31 - n); }

/** srwi ra, rs, n == rlwinm ra, rs, 32-n, n, 31. */
inline Inst srwi(uint8_t ra, uint8_t rs, uint8_t n)
{ return rlwinm(ra, rs, (32 - n) & 31, n, 31); }

/** clrlwi ra, rs, n == rlwinm ra, rs, 0, n, 31 (clear n high bits). */
inline Inst clrlwi(uint8_t ra, uint8_t rs, uint8_t n)
{ return rlwinm(ra, rs, 0, n, 31); }

inline Inst
b(int32_t disp, bool lk = false)
{
    Inst i;
    i.op = Op::B;
    i.disp = disp;
    i.lk = lk;
    return i;
}

inline Inst bl(int32_t disp) { return b(disp, true); }

inline Inst
bc(Bo bo, uint8_t bi, int32_t disp, bool lk = false)
{
    Inst i;
    i.op = Op::Bc;
    i.bo = static_cast<uint8_t>(bo);
    i.bi = bi;
    i.disp = disp;
    i.lk = lk;
    return i;
}

/** Condition-register bit index for field @p crf, bit @p bit. */
inline uint8_t
crBit(uint8_t crf, CrBit bit)
{
    return static_cast<uint8_t>(crf * 4 + static_cast<uint8_t>(bit));
}

inline Inst
bclr(Bo bo, uint8_t bi, bool lk = false)
{
    Inst i;
    i.op = Op::Bclr;
    i.bo = static_cast<uint8_t>(bo);
    i.bi = bi;
    i.lk = lk;
    return i;
}

inline Inst
bcctr(Bo bo, uint8_t bi, bool lk = false)
{
    Inst i;
    i.op = Op::Bcctr;
    i.bo = static_cast<uint8_t>(bo);
    i.bi = bi;
    i.lk = lk;
    return i;
}

inline Inst blr() { return bclr(Bo::Always, 0); }
inline Inst bctr() { return bcctr(Bo::Always, 0); }
inline Inst bctrl() { return bcctr(Bo::Always, 0, true); }

inline Inst
mtspr(Spr spr, uint8_t rs)
{
    Inst i;
    i.op = Op::Mtspr;
    i.rt = rs;
    i.spr = static_cast<uint16_t>(spr);
    return i;
}

inline Inst
mfspr(uint8_t rt, Spr spr)
{
    Inst i;
    i.op = Op::Mfspr;
    i.rt = rt;
    i.spr = static_cast<uint16_t>(spr);
    return i;
}

inline Inst mtlr(uint8_t rs) { return mtspr(Spr::LR, rs); }
inline Inst mflr(uint8_t rt) { return mfspr(rt, Spr::LR); }
inline Inst mtctr(uint8_t rs) { return mtspr(Spr::CTR, rs); }
inline Inst mfctr(uint8_t rt) { return mfspr(rt, Spr::CTR); }

inline Inst
sc()
{
    Inst i;
    i.op = Op::Sc;
    return i;
}

/** nop == ori r0, r0, 0. */
inline Inst nop() { return ori(0, 0, 0); }

} // namespace codecomp::isa

#endif // CODECOMP_ISA_BUILDER_HH
