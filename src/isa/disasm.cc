#include "isa/disasm.hh"

#include <cstdio>

namespace codecomp::isa {

namespace {

std::string
fmt(const char *pattern, auto... args)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), pattern, args...);
    return buf;
}

std::string
branchTarget(const Inst &inst, uint32_t pc)
{
    // Architectural target of an uncompressed relative branch:
    // pc + disp * 4 (or disp * 4 absolute when aa is set).
    int64_t byte_off = static_cast<int64_t>(inst.disp) * 4;
    if (inst.aa)
        return fmt("0x%08x", static_cast<uint32_t>(byte_off));
    if (pc == 0)
        return fmt(".%+lld", static_cast<long long>(byte_off));
    return fmt("0x%08x", static_cast<uint32_t>(pc + byte_off));
}

const char *
condSuffix(uint8_t bo, uint8_t bi)
{
    bool want_true = bo == static_cast<uint8_t>(Bo::IfTrue);
    switch (bi % 4) {
      case 0:
        return want_true ? "lt" : "ge";
      case 1:
        return want_true ? "gt" : "le";
      case 2:
        return want_true ? "eq" : "ne";
      default:
        return want_true ? "so" : "ns";
    }
}

} // namespace

std::string
disassemble(const Inst &inst, uint32_t pc)
{
    switch (inst.op) {
      case Op::Addi:
        if (inst.ra == 0)
            return fmt("li r%d,%d", inst.rt, inst.imm);
        return fmt("addi r%d,r%d,%d", inst.rt, inst.ra, inst.imm);
      case Op::Addis:
        if (inst.ra == 0)
            return fmt("lis r%d,%d", inst.rt, inst.imm);
        return fmt("addis r%d,r%d,%d", inst.rt, inst.ra, inst.imm);
      case Op::Mulli:
        return fmt("mulli r%d,r%d,%d", inst.rt, inst.ra, inst.imm);
      case Op::Ori:
        if (inst.rt == 0 && inst.ra == 0 && inst.imm == 0)
            return "nop";
        return fmt("ori r%d,r%d,%d", inst.rt, inst.ra, inst.imm);
      case Op::Oris:
        return fmt("oris r%d,r%d,%d", inst.rt, inst.ra, inst.imm);
      case Op::Xori:
        return fmt("xori r%d,r%d,%d", inst.rt, inst.ra, inst.imm);
      case Op::Andi:
        return fmt("andi. r%d,r%d,%d", inst.rt, inst.ra, inst.imm);
      case Op::Cmpi:
        return fmt("cmpwi cr%d,r%d,%d", inst.crf, inst.ra, inst.imm);
      case Op::Cmpli:
        return fmt("cmplwi cr%d,r%d,%d", inst.crf, inst.ra, inst.imm);
      case Op::Lwz:
        return fmt("lwz r%d,%d(r%d)", inst.rt, inst.imm, inst.ra);
      case Op::Lbz:
        return fmt("lbz r%d,%d(r%d)", inst.rt, inst.imm, inst.ra);
      case Op::Lhz:
        return fmt("lhz r%d,%d(r%d)", inst.rt, inst.imm, inst.ra);
      case Op::Stw:
        return fmt("stw r%d,%d(r%d)", inst.rt, inst.imm, inst.ra);
      case Op::Stb:
        return fmt("stb r%d,%d(r%d)", inst.rt, inst.imm, inst.ra);
      case Op::Sth:
        return fmt("sth r%d,%d(r%d)", inst.rt, inst.imm, inst.ra);
      case Op::B:
        return fmt("%s %s", inst.lk ? "bl" : "b",
                   branchTarget(inst, pc).c_str());
      case Op::Bc: {
        if (inst.bo == static_cast<uint8_t>(Bo::Always))
            return fmt("b%s %s", inst.lk ? "cl" : "c",
                       branchTarget(inst, pc).c_str());
        if (inst.bo == static_cast<uint8_t>(Bo::DecNz))
            return fmt("bdnz %s", branchTarget(inst, pc).c_str());
        return fmt("b%s%s cr%d,%s", condSuffix(inst.bo, inst.bi),
                   inst.lk ? "l" : "", inst.bi / 4,
                   branchTarget(inst, pc).c_str());
      }
      case Op::Bclr:
        if (inst.bo == static_cast<uint8_t>(Bo::Always))
            return inst.lk ? "blrl" : "blr";
        return fmt("b%slr cr%d", condSuffix(inst.bo, inst.bi), inst.bi / 4);
      case Op::Bcctr:
        if (inst.bo == static_cast<uint8_t>(Bo::Always))
            return inst.lk ? "bctrl" : "bctr";
        return fmt("b%sctr cr%d", condSuffix(inst.bo, inst.bi), inst.bi / 4);
      case Op::Rlwinm:
        if (inst.sh == 0 && inst.me == 31)
            return fmt("clrlwi r%d,r%d,%d", inst.ra, inst.rt, inst.mb);
        if (inst.mb == 0 && inst.me == 31 - inst.sh)
            return fmt("slwi r%d,r%d,%d", inst.ra, inst.rt, inst.sh);
        if (inst.me == 31 && inst.sh == ((32 - inst.mb) & 31))
            return fmt("srwi r%d,r%d,%d", inst.ra, inst.rt, inst.mb);
        return fmt("rlwinm r%d,r%d,%d,%d,%d", inst.ra, inst.rt, inst.sh,
                   inst.mb, inst.me);
      case Op::Add:
        return fmt("add r%d,r%d,r%d", inst.rt, inst.ra, inst.rb);
      case Op::Subf:
        return fmt("subf r%d,r%d,r%d", inst.rt, inst.ra, inst.rb);
      case Op::Neg:
        return fmt("neg r%d,r%d", inst.rt, inst.ra);
      case Op::Mullw:
        return fmt("mullw r%d,r%d,r%d", inst.rt, inst.ra, inst.rb);
      case Op::Divw:
        return fmt("divw r%d,r%d,r%d", inst.rt, inst.ra, inst.rb);
      case Op::And:
        return fmt("and r%d,r%d,r%d", inst.rt, inst.ra, inst.rb);
      case Op::Or:
        if (inst.ra == inst.rb)
            return fmt("mr r%d,r%d", inst.rt, inst.ra);
        return fmt("or r%d,r%d,r%d", inst.rt, inst.ra, inst.rb);
      case Op::Xor:
        return fmt("xor r%d,r%d,r%d", inst.rt, inst.ra, inst.rb);
      case Op::Slw:
        return fmt("slw r%d,r%d,r%d", inst.rt, inst.ra, inst.rb);
      case Op::Srw:
        return fmt("srw r%d,r%d,r%d", inst.rt, inst.ra, inst.rb);
      case Op::Sraw:
        return fmt("sraw r%d,r%d,r%d", inst.rt, inst.ra, inst.rb);
      case Op::Srawi:
        return fmt("srawi r%d,r%d,%d", inst.ra, inst.rt, inst.sh);
      case Op::Lwzx:
        return fmt("lwzx r%d,r%d,r%d", inst.rt, inst.ra, inst.rb);
      case Op::Cmp:
        return fmt("cmpw cr%d,r%d,r%d", inst.crf, inst.ra, inst.rb);
      case Op::Cmpl:
        return fmt("cmplw cr%d,r%d,r%d", inst.crf, inst.ra, inst.rb);
      case Op::Mtspr:
        if (inst.spr == static_cast<uint16_t>(Spr::LR))
            return fmt("mtlr r%d", inst.rt);
        if (inst.spr == static_cast<uint16_t>(Spr::CTR))
            return fmt("mtctr r%d", inst.rt);
        return fmt("mtspr %d,r%d", inst.spr, inst.rt);
      case Op::Mfspr:
        if (inst.spr == static_cast<uint16_t>(Spr::LR))
            return fmt("mflr r%d", inst.rt);
        if (inst.spr == static_cast<uint16_t>(Spr::CTR))
            return fmt("mfctr r%d", inst.rt);
        return fmt("mfspr r%d,%d", inst.rt, inst.spr);
      case Op::Sc:
        return "sc";
      case Op::Illegal:
        return fmt(".word 0x%08x", inst.raw);
    }
    return "<bad>";
}

std::string
disassembleWord(Word word, uint32_t pc)
{
    return disassemble(decode(word), pc);
}

} // namespace codecomp::isa
