/**
 * @file
 * Disassembler for ppclite instructions.
 */

#ifndef CODECOMP_ISA_DISASM_HH
#define CODECOMP_ISA_DISASM_HH

#include <string>

#include "isa/inst.hh"

namespace codecomp::isa {

/**
 * Render one instruction as assembly text.
 *
 * @param inst decoded instruction
 * @param pc   byte address of the instruction; used to print absolute
 *             targets for relative branches (pass 0 to print raw
 *             displacements instead)
 */
std::string disassemble(const Inst &inst, uint32_t pc = 0);

/** Convenience: decode then disassemble a raw word. */
std::string disassembleWord(Word word, uint32_t pc = 0);

} // namespace codecomp::isa

#endif // CODECOMP_ISA_DISASM_HH
