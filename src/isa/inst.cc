#include "isa/inst.hh"

#include "support/logging.hh"

namespace codecomp::isa {

namespace {

/** Field extraction helpers (bit 0 = LSB here, unlike PowerPC docs). */
constexpr uint8_t fieldRt(Word w) { return (w >> 21) & 0x1f; }
constexpr uint8_t fieldRa(Word w) { return (w >> 16) & 0x1f; }
constexpr uint8_t fieldRb(Word w) { return (w >> 11) & 0x1f; }
constexpr uint8_t fieldCrf(Word w) { return (w >> 23) & 0x7; }
constexpr uint16_t fieldUimm(Word w) { return w & 0xffff; }
constexpr int32_t fieldSimm(Word w) { return signExtend(w & 0xffff, 16); }
constexpr uint16_t fieldXo(Word w) { return (w >> 1) & 0x3ff; }
constexpr uint16_t fieldSpr(Word w) { return (w >> 11) & 0x3ff; }
constexpr uint8_t fieldSh(Word w) { return (w >> 11) & 0x1f; }
constexpr uint8_t fieldMb(Word w) { return (w >> 6) & 0x1f; }
constexpr uint8_t fieldMe(Word w) { return (w >> 1) & 0x1f; }
constexpr bool fieldAa(Word w) { return (w >> 1) & 1; }
constexpr bool fieldLk(Word w) { return w & 1; }

/** True if this op's 16-bit immediate is sign-extended. */
bool
immIsSigned(Op op)
{
    switch (op) {
      case Op::Addi:
      case Op::Addis:
      case Op::Mulli:
      case Op::Cmpi:
      case Op::Lwz:
      case Op::Lbz:
      case Op::Lhz:
      case Op::Stw:
      case Op::Stb:
      case Op::Sth:
        return true;
      default:
        return false;
    }
}

Inst
decodeDForm(Op op, Word w)
{
    Inst inst;
    inst.op = op;
    inst.rt = fieldRt(w);
    inst.ra = fieldRa(w);
    inst.imm = immIsSigned(op) ? fieldSimm(w)
                               : static_cast<int32_t>(fieldUimm(w));
    return inst;
}

Inst
decodeCmpImm(Op op, Word w)
{
    Inst inst;
    inst.op = op;
    inst.crf = fieldCrf(w);
    inst.ra = fieldRa(w);
    inst.imm = (op == Op::Cmpi) ? fieldSimm(w)
                                : static_cast<int32_t>(fieldUimm(w));
    return inst;
}

Inst
decodeOp19(Word w)
{
    Inst inst;
    switch (static_cast<Xo19>(fieldXo(w))) {
      case Xo19::Bclr:
        inst.op = Op::Bclr;
        break;
      case Xo19::Bcctr:
        inst.op = Op::Bcctr;
        break;
      default:
        inst.op = Op::Illegal;
        inst.raw = w;
        return inst;
    }
    inst.bo = fieldRt(w);
    inst.bi = fieldRa(w);
    inst.lk = fieldLk(w);
    return inst;
}

Inst
decodeOp31(Word w)
{
    Inst inst;
    uint16_t xo = fieldXo(w);
    switch (static_cast<Xo31>(xo)) {
      case Xo31::Cmp:
        inst.op = Op::Cmp;
        break;
      case Xo31::Cmpl:
        inst.op = Op::Cmpl;
        break;
      case Xo31::Lwzx:
        inst.op = Op::Lwzx;
        break;
      case Xo31::Slw:
        inst.op = Op::Slw;
        break;
      case Xo31::And:
        inst.op = Op::And;
        break;
      case Xo31::Subf:
        inst.op = Op::Subf;
        break;
      case Xo31::Neg:
        inst.op = Op::Neg;
        break;
      case Xo31::Mullw:
        inst.op = Op::Mullw;
        break;
      case Xo31::Add:
        inst.op = Op::Add;
        break;
      case Xo31::Xor:
        inst.op = Op::Xor;
        break;
      case Xo31::Mfspr:
        inst.op = Op::Mfspr;
        break;
      case Xo31::Or:
        inst.op = Op::Or;
        break;
      case Xo31::Mtspr:
        inst.op = Op::Mtspr;
        break;
      case Xo31::Divw:
        inst.op = Op::Divw;
        break;
      case Xo31::Srw:
        inst.op = Op::Srw;
        break;
      case Xo31::Sraw:
        inst.op = Op::Sraw;
        break;
      case Xo31::Srawi:
        inst.op = Op::Srawi;
        break;
      default:
        inst.op = Op::Illegal;
        inst.raw = w;
        return inst;
    }
    if (inst.op == Op::Srawi) {
        inst.rt = fieldRt(w);
        inst.ra = fieldRa(w);
        inst.sh = fieldRb(w);
        return inst;
    }
    if (inst.op == Op::Cmp || inst.op == Op::Cmpl) {
        inst.crf = fieldCrf(w);
        inst.ra = fieldRa(w);
        inst.rb = fieldRb(w);
    } else if (inst.op == Op::Mtspr || inst.op == Op::Mfspr) {
        inst.rt = fieldRt(w);
        inst.spr = fieldSpr(w);
    } else {
        inst.rt = fieldRt(w);
        inst.ra = fieldRa(w);
        // neg has no rb operand; its field is reserved and ignored.
        inst.rb = inst.op == Op::Neg ? 0 : fieldRb(w);
    }
    return inst;
}

} // namespace

Inst
decode(Word w)
{
    uint8_t primop = primOpOf(w);
    Inst inst;
    switch (primop) {
      case static_cast<uint8_t>(PrimOp::Mulli):
        return decodeDForm(Op::Mulli, w);
      case static_cast<uint8_t>(PrimOp::Cmpli):
        return decodeCmpImm(Op::Cmpli, w);
      case static_cast<uint8_t>(PrimOp::Cmpi):
        return decodeCmpImm(Op::Cmpi, w);
      case static_cast<uint8_t>(PrimOp::Addi):
        return decodeDForm(Op::Addi, w);
      case static_cast<uint8_t>(PrimOp::Addis):
        return decodeDForm(Op::Addis, w);
      case static_cast<uint8_t>(PrimOp::Bc):
        inst.op = Op::Bc;
        inst.bo = fieldRt(w);
        inst.bi = fieldRa(w);
        inst.disp = signExtend((w >> 2) & 0x3fff, 14);
        inst.aa = fieldAa(w);
        inst.lk = fieldLk(w);
        return inst;
      case static_cast<uint8_t>(PrimOp::Sc):
        inst.op = Op::Sc;
        return inst;
      case static_cast<uint8_t>(PrimOp::B):
        inst.op = Op::B;
        inst.disp = signExtend((w >> 2) & 0xffffff, 24);
        inst.aa = fieldAa(w);
        inst.lk = fieldLk(w);
        return inst;
      case static_cast<uint8_t>(PrimOp::Op19):
        return decodeOp19(w);
      case static_cast<uint8_t>(PrimOp::Rlwinm):
        inst.op = Op::Rlwinm;
        inst.rt = fieldRt(w);
        inst.ra = fieldRa(w);
        inst.sh = fieldSh(w);
        inst.mb = fieldMb(w);
        inst.me = fieldMe(w);
        return inst;
      case static_cast<uint8_t>(PrimOp::Ori):
        return decodeDForm(Op::Ori, w);
      case static_cast<uint8_t>(PrimOp::Oris):
        return decodeDForm(Op::Oris, w);
      case static_cast<uint8_t>(PrimOp::Xori):
        return decodeDForm(Op::Xori, w);
      case static_cast<uint8_t>(PrimOp::Andi):
        return decodeDForm(Op::Andi, w);
      case static_cast<uint8_t>(PrimOp::Op31):
        return decodeOp31(w);
      case static_cast<uint8_t>(PrimOp::Lwz):
        return decodeDForm(Op::Lwz, w);
      case static_cast<uint8_t>(PrimOp::Lbz):
        return decodeDForm(Op::Lbz, w);
      case static_cast<uint8_t>(PrimOp::Stw):
        return decodeDForm(Op::Stw, w);
      case static_cast<uint8_t>(PrimOp::Stb):
        return decodeDForm(Op::Stb, w);
      case static_cast<uint8_t>(PrimOp::Lhz):
        return decodeDForm(Op::Lhz, w);
      case static_cast<uint8_t>(PrimOp::Sth):
        return decodeDForm(Op::Sth, w);
      default:
        inst.op = Op::Illegal;
        inst.raw = w;
        return inst;
    }
}

namespace {

Word
encodeDForm(PrimOp primop, const Inst &inst)
{
    CC_ASSERT(inst.rt < numGprs && inst.ra < numGprs, "register range");
    uint32_t imm_field;
    if (immIsSigned(inst.op)) {
        CC_ASSERT(fitsSigned(inst.imm, 16), "signed immediate range");
        imm_field = static_cast<uint32_t>(inst.imm) & 0xffff;
    } else {
        CC_ASSERT(inst.imm >= 0 && inst.imm <= 0xffff,
                  "unsigned immediate range");
        imm_field = static_cast<uint32_t>(inst.imm);
    }
    return (static_cast<uint32_t>(primop) << 26) |
           (static_cast<uint32_t>(inst.rt) << 21) |
           (static_cast<uint32_t>(inst.ra) << 16) | imm_field;
}

Word
encodeCmpImm(PrimOp primop, const Inst &inst)
{
    CC_ASSERT(inst.crf < numCrFields && inst.ra < numGprs, "field range");
    uint32_t imm_field;
    if (inst.op == Op::Cmpi) {
        CC_ASSERT(fitsSigned(inst.imm, 16), "signed immediate range");
        imm_field = static_cast<uint32_t>(inst.imm) & 0xffff;
    } else {
        CC_ASSERT(inst.imm >= 0 && inst.imm <= 0xffff,
                  "unsigned immediate range");
        imm_field = static_cast<uint32_t>(inst.imm);
    }
    return (static_cast<uint32_t>(primop) << 26) |
           (static_cast<uint32_t>(inst.crf) << 23) |
           (static_cast<uint32_t>(inst.ra) << 16) | imm_field;
}

Word
encodeXForm(Xo31 xo, uint8_t f1, uint8_t f2, uint8_t f3)
{
    return (static_cast<uint32_t>(PrimOp::Op31) << 26) |
           (static_cast<uint32_t>(f1) << 21) |
           (static_cast<uint32_t>(f2) << 16) |
           (static_cast<uint32_t>(f3) << 11) |
           (static_cast<uint32_t>(xo) << 1);
}

} // namespace

Word
encode(const Inst &inst)
{
    switch (inst.op) {
      case Op::Addi:
        return encodeDForm(PrimOp::Addi, inst);
      case Op::Addis:
        return encodeDForm(PrimOp::Addis, inst);
      case Op::Mulli:
        return encodeDForm(PrimOp::Mulli, inst);
      case Op::Ori:
        return encodeDForm(PrimOp::Ori, inst);
      case Op::Oris:
        return encodeDForm(PrimOp::Oris, inst);
      case Op::Xori:
        return encodeDForm(PrimOp::Xori, inst);
      case Op::Andi:
        return encodeDForm(PrimOp::Andi, inst);
      case Op::Lwz:
        return encodeDForm(PrimOp::Lwz, inst);
      case Op::Lbz:
        return encodeDForm(PrimOp::Lbz, inst);
      case Op::Lhz:
        return encodeDForm(PrimOp::Lhz, inst);
      case Op::Stw:
        return encodeDForm(PrimOp::Stw, inst);
      case Op::Stb:
        return encodeDForm(PrimOp::Stb, inst);
      case Op::Sth:
        return encodeDForm(PrimOp::Sth, inst);
      case Op::Cmpi:
        return encodeCmpImm(PrimOp::Cmpi, inst);
      case Op::Cmpli:
        return encodeCmpImm(PrimOp::Cmpli, inst);
      case Op::B:
        CC_ASSERT(fitsSigned(inst.disp, 24), "B displacement range");
        return (static_cast<uint32_t>(PrimOp::B) << 26) |
               ((static_cast<uint32_t>(inst.disp) & 0xffffff) << 2) |
               (inst.aa ? 2u : 0u) | (inst.lk ? 1u : 0u);
      case Op::Bc:
        CC_ASSERT(fitsSigned(inst.disp, 14), "Bc displacement range");
        CC_ASSERT(inst.bo < 32 && inst.bi < 32, "bo/bi range");
        return (static_cast<uint32_t>(PrimOp::Bc) << 26) |
               (static_cast<uint32_t>(inst.bo) << 21) |
               (static_cast<uint32_t>(inst.bi) << 16) |
               ((static_cast<uint32_t>(inst.disp) & 0x3fff) << 2) |
               (inst.aa ? 2u : 0u) | (inst.lk ? 1u : 0u);
      case Op::Bclr:
      case Op::Bcctr: {
        Xo19 xo = (inst.op == Op::Bclr) ? Xo19::Bclr : Xo19::Bcctr;
        CC_ASSERT(inst.bo < 32 && inst.bi < 32, "bo/bi range");
        return (static_cast<uint32_t>(PrimOp::Op19) << 26) |
               (static_cast<uint32_t>(inst.bo) << 21) |
               (static_cast<uint32_t>(inst.bi) << 16) |
               (static_cast<uint32_t>(xo) << 1) | (inst.lk ? 1u : 0u);
      }
      case Op::Rlwinm:
        CC_ASSERT(inst.sh < 32 && inst.mb < 32 && inst.me < 32,
                  "rlwinm field range");
        return (static_cast<uint32_t>(PrimOp::Rlwinm) << 26) |
               (static_cast<uint32_t>(inst.rt) << 21) |
               (static_cast<uint32_t>(inst.ra) << 16) |
               (static_cast<uint32_t>(inst.sh) << 11) |
               (static_cast<uint32_t>(inst.mb) << 6) |
               (static_cast<uint32_t>(inst.me) << 1);
      case Op::Add:
        return encodeXForm(Xo31::Add, inst.rt, inst.ra, inst.rb);
      case Op::Subf:
        return encodeXForm(Xo31::Subf, inst.rt, inst.ra, inst.rb);
      case Op::Neg:
        return encodeXForm(Xo31::Neg, inst.rt, inst.ra, 0);
      case Op::Mullw:
        return encodeXForm(Xo31::Mullw, inst.rt, inst.ra, inst.rb);
      case Op::Divw:
        return encodeXForm(Xo31::Divw, inst.rt, inst.ra, inst.rb);
      case Op::And:
        return encodeXForm(Xo31::And, inst.rt, inst.ra, inst.rb);
      case Op::Or:
        return encodeXForm(Xo31::Or, inst.rt, inst.ra, inst.rb);
      case Op::Xor:
        return encodeXForm(Xo31::Xor, inst.rt, inst.ra, inst.rb);
      case Op::Slw:
        return encodeXForm(Xo31::Slw, inst.rt, inst.ra, inst.rb);
      case Op::Srw:
        return encodeXForm(Xo31::Srw, inst.rt, inst.ra, inst.rb);
      case Op::Sraw:
        return encodeXForm(Xo31::Sraw, inst.rt, inst.ra, inst.rb);
      case Op::Srawi:
        CC_ASSERT(inst.sh < 32, "srawi shift range");
        return encodeXForm(Xo31::Srawi, inst.rt, inst.ra, inst.sh);
      case Op::Lwzx:
        return encodeXForm(Xo31::Lwzx, inst.rt, inst.ra, inst.rb);
      case Op::Cmp:
      case Op::Cmpl: {
        Xo31 xo = (inst.op == Op::Cmp) ? Xo31::Cmp : Xo31::Cmpl;
        CC_ASSERT(inst.crf < numCrFields, "crf range");
        return (static_cast<uint32_t>(PrimOp::Op31) << 26) |
               (static_cast<uint32_t>(inst.crf) << 23) |
               (static_cast<uint32_t>(inst.ra) << 16) |
               (static_cast<uint32_t>(inst.rb) << 11) |
               (static_cast<uint32_t>(xo) << 1);
      }
      case Op::Mtspr:
      case Op::Mfspr: {
        Xo31 xo = (inst.op == Op::Mtspr) ? Xo31::Mtspr : Xo31::Mfspr;
        CC_ASSERT(inst.spr < 1024, "spr range");
        return (static_cast<uint32_t>(PrimOp::Op31) << 26) |
               (static_cast<uint32_t>(inst.rt) << 21) |
               (static_cast<uint32_t>(inst.spr) << 11) |
               (static_cast<uint32_t>(xo) << 1);
      }
      case Op::Sc:
        return static_cast<uint32_t>(PrimOp::Sc) << 26 | 2u;
      case Op::Illegal:
        return inst.raw;
    }
    CC_PANIC("unhandled op in encode");
}

} // namespace codecomp::isa
