/**
 * @file
 * Core definitions of the ppclite ISA: a 32-bit fixed-length,
 * PowerPC-style RISC instruction set.
 *
 * ppclite keeps the PowerPC properties that the compression study depends
 * on: a 6-bit primary opcode in the most significant bits of a big-endian
 * instruction word (so unused opcode values yield *escape bytes*), 24-bit
 * I-form and 14-bit B-form branch displacement fields, condition-register
 * fields, and indirect branches through the link and count registers.
 */

#ifndef CODECOMP_ISA_ISA_HH
#define CODECOMP_ISA_ISA_HH

#include <array>
#include <cstdint>

namespace codecomp::isa {

/** One 32-bit instruction word (stored big-endian in program memory). */
using Word = uint32_t;

/** Size of every uncompressed instruction in bytes. */
constexpr unsigned instBytes = 4;

/** Number of general-purpose registers. */
constexpr unsigned numGprs = 32;

/** Number of 4-bit condition-register fields. */
constexpr unsigned numCrFields = 8;

/**
 * Size of the implemented flat address space (text + data + stack).
 * Defined at the ISA layer so that loaders below the simulator can
 * validate that an untrusted image fits before anything is mapped;
 * Machine::memBytes aliases this value.
 */
constexpr uint32_t addressSpaceBytes = 8u << 20;

/** Primary (6-bit) opcode values; numbering follows PowerPC. */
enum class PrimOp : uint8_t {
    Mulli = 7,
    Cmpli = 10,
    Cmpi = 11,
    Addi = 14,
    Addis = 15,
    Bc = 16,
    Sc = 17,
    B = 18,
    Op19 = 19, //!< extended: bclr, bcctr
    Rlwinm = 21,
    Ori = 24,
    Oris = 25,
    Xori = 26,
    Andi = 28,
    Op31 = 31, //!< extended: register-register ALU, mtspr/mfspr, lwzx
    Lwz = 32,
    Lbz = 34,
    Stw = 36,
    Stb = 38,
    Lhz = 40,
    Sth = 44,
};

/** Extended (10-bit) opcodes under primary opcode 31. */
enum class Xo31 : uint16_t {
    Cmp = 0,
    Lwzx = 23,
    Slw = 24,
    And = 28,
    Cmpl = 32,
    Subf = 40,
    Neg = 104,
    Mullw = 235,
    Add = 266,
    Xor = 316,
    Mfspr = 339,
    Or = 444,
    Mtspr = 467,
    Divw = 491,
    Srw = 536,
    Sraw = 792,
    Srawi = 824,
};

/** Extended (10-bit) opcodes under primary opcode 19. */
enum class Xo19 : uint16_t {
    Bclr = 16,
    Bcctr = 528,
};

/** Special-purpose register numbers. */
enum class Spr : uint16_t {
    LR = 8,
    CTR = 9,
};

/**
 * The eight illegal primary opcodes. ppclite, like PowerPC, leaves
 * exactly eight 6-bit primary opcode values permanently unassigned; the
 * baseline compression scheme claims them as codeword escape bytes
 * (8 opcodes x 4 settings of the remaining 2 bits of the first byte
 * = 32 escape bytes).
 */
constexpr std::array<uint8_t, 8> illegalPrimOps = {0, 1, 2, 3, 4, 5, 57, 58};

/** True if @p primop is one of the eight permanently illegal values. */
constexpr bool
isIllegalPrimOp(uint8_t primop)
{
    for (uint8_t v : illegalPrimOps)
        if (v == primop)
            return true;
    return false;
}

/** Extract the 6-bit primary opcode from an instruction word. */
constexpr uint8_t
primOpOf(Word word)
{
    return static_cast<uint8_t>(word >> 26);
}

/** Condition-register bit positions within one 4-bit field. */
enum class CrBit : uint8_t {
    Lt = 0,
    Gt = 1,
    Eq = 2,
    So = 3,
};

/**
 * BO field values (branch-condition operation) supported by ppclite.
 * A subset of PowerPC's encodings, sufficient for compiled code.
 */
enum class Bo : uint8_t {
    IfFalse = 4,   //!< branch if CR bit BI is 0
    IfTrue = 12,   //!< branch if CR bit BI is 1
    DecNz = 16,    //!< decrement CTR; branch if CTR != 0
    Always = 20,   //!< branch unconditionally
};

/** System-call numbers (placed in r0 before `sc`). */
enum class Syscall : uint32_t {
    Exit = 0,    //!< terminate; exit code in r3
    PutChar = 1, //!< write one byte from r3 to the output stream
    PutInt = 2,  //!< write the decimal value of r3 plus a newline
};

} // namespace codecomp::isa

#endif // CODECOMP_ISA_ISA_HH
