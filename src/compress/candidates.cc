#include "compress/candidates.hh"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "support/logging.hh"

namespace codecomp::compress {

std::vector<bool>
eligibilityMask(const Program &program)
{
    std::vector<bool> eligible(program.text.size());
    for (size_t i = 0; i < program.text.size(); ++i) {
        isa::Inst inst = isa::decode(program.text[i]);
        eligible[i] = !inst.isRelativeBranch();
    }
    return eligible;
}

std::vector<Candidate>
enumerateCandidates(const Program &program, const Cfg &cfg, uint32_t minLen,
                    uint32_t maxLen)
{
    CC_ASSERT(minLen >= 1 && minLen <= maxLen, "bad candidate lengths");
    std::vector<bool> eligible = eligibilityMask(program);

    // Key sequences as UTF-32 strings: cheap hashing, no custom hasher.
    std::unordered_map<std::u32string, uint32_t> index;
    std::vector<Candidate> candidates;

    for (const InstRange &block : cfg.blocks()) {
        for (uint32_t start = block.first;
             start < block.first + block.count; ++start) {
            std::u32string key;
            for (uint32_t len = 1; len <= maxLen; ++len) {
                uint32_t pos = start + len - 1;
                if (pos >= block.first + block.count || !eligible[pos])
                    break;
                key.push_back(static_cast<char32_t>(program.text[pos]));
                if (len < minLen)
                    continue;
                auto [it, inserted] = index.try_emplace(
                    key, static_cast<uint32_t>(candidates.size()));
                if (inserted) {
                    Candidate cand;
                    cand.seq.assign(program.text.begin() + start,
                                    program.text.begin() + start + len);
                    candidates.push_back(std::move(cand));
                }
                candidates[it->second].positions.push_back(start);
            }
        }
    }
    // Blocks are visited in ascending order, so positions are sorted and
    // candidate order is already deterministic (first occurrence, then
    // length, because shorter prefixes insert first).
    return candidates;
}

uint32_t
countNonOverlapping(const std::vector<uint32_t> &positions, uint32_t length,
                    const std::vector<bool> &consumed)
{
    uint32_t count = 0;
    uint64_t next_free = 0;
    for (uint32_t pos : positions) {
        if (pos < next_free)
            continue;
        if (!consumed.empty()) {
            bool blocked = false;
            for (uint32_t i = pos; i < pos + length; ++i) {
                if (consumed[i]) {
                    blocked = true;
                    break;
                }
            }
            if (blocked)
                continue;
        }
        ++count;
        next_free = static_cast<uint64_t>(pos) + length;
    }
    return count;
}

} // namespace codecomp::compress
