#include "compress/candidates.hh"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "support/logging.hh"
#include "support/thread_pool.hh"

namespace codecomp::compress {

namespace {

/** Hash key for one instruction sequence: cheap hashing, no custom
 *  hasher. */
std::u32string
keyOf(const std::vector<isa::Word> &seq)
{
    std::u32string key;
    key.reserve(seq.size());
    for (isa::Word word : seq)
        key.push_back(static_cast<char32_t>(word));
    return key;
}

/**
 * Enumerate the candidates of blocks [firstBlock, endBlock) into a
 * private vector. Within one shard, candidates appear in serial scan
 * order and each position list is sorted ascending.
 */
std::vector<Candidate>
enumerateShard(const Program &program, const std::vector<bool> &eligible,
               const std::vector<InstRange> &blocks, size_t firstBlock,
               size_t endBlock, uint32_t minLen, uint32_t maxLen)
{
    std::unordered_map<std::u32string, uint32_t> index;
    std::vector<Candidate> candidates;

    for (size_t b = firstBlock; b < endBlock; ++b) {
        const InstRange &block = blocks[b];
        for (uint32_t start = block.first;
             start < block.first + block.count; ++start) {
            std::u32string key;
            for (uint32_t len = 1; len <= maxLen; ++len) {
                uint32_t pos = start + len - 1;
                if (pos >= block.first + block.count || !eligible[pos])
                    break;
                key.push_back(static_cast<char32_t>(program.text[pos]));
                if (len < minLen)
                    continue;
                auto [it, inserted] = index.try_emplace(
                    key, static_cast<uint32_t>(candidates.size()));
                if (inserted) {
                    Candidate cand;
                    cand.seq.assign(program.text.begin() + start,
                                    program.text.begin() + start + len);
                    candidates.push_back(std::move(cand));
                }
                candidates[it->second].positions.push_back(start);
            }
        }
    }
    return candidates;
}

/**
 * Partition blocks into at most @p jobs contiguous shards of roughly
 * equal instruction count. Shard boundaries fall on block boundaries,
 * so no candidate is split (sequences never cross blocks).
 */
std::vector<std::pair<size_t, size_t>>
shardBlocks(const std::vector<InstRange> &blocks, unsigned jobs)
{
    size_t total = 0;
    for (const InstRange &block : blocks)
        total += block.count;
    std::vector<std::pair<size_t, size_t>> shards;
    size_t target = (total + jobs - 1) / jobs;
    size_t begin = 0, weight = 0;
    for (size_t b = 0; b < blocks.size(); ++b) {
        weight += blocks[b].count;
        if (weight >= target || b + 1 == blocks.size()) {
            shards.emplace_back(begin, b + 1);
            begin = b + 1;
            weight = 0;
        }
    }
    return shards;
}

} // namespace

std::vector<bool>
eligibilityMask(const Program &program)
{
    std::vector<bool> eligible(program.text.size());
    for (size_t i = 0; i < program.text.size(); ++i) {
        isa::Inst inst = isa::decode(program.text[i]);
        eligible[i] = !inst.isRelativeBranch();
    }
    return eligible;
}

std::vector<Candidate>
enumerateCandidates(const Program &program, const Cfg &cfg, uint32_t minLen,
                    uint32_t maxLen)
{
    CC_ASSERT(minLen >= 1 && minLen <= maxLen, "bad candidate lengths");
    std::vector<bool> eligible = eligibilityMask(program);
    const std::vector<InstRange> &blocks = cfg.blocks();
    if (blocks.empty())
        return {};

    unsigned jobs = static_cast<unsigned>(
        std::min<size_t>(globalJobs(), blocks.size()));
    std::vector<std::pair<size_t, size_t>> shards =
        shardBlocks(blocks, std::max(jobs, 1u));

    std::vector<std::vector<Candidate>> local(shards.size());
    globalPool().parallelFor(shards.size(), [&](size_t s) {
        local[s] = enumerateShard(program, eligible, blocks,
                                  shards[s].first, shards[s].second,
                                  minLen, maxLen);
    });

    // Merge shard results in shard order. Shards cover ascending
    // instruction ranges, so appending position lists in shard order
    // keeps every candidate's positions sorted.
    std::unordered_map<std::u32string, uint32_t> index;
    std::vector<Candidate> merged;
    for (std::vector<Candidate> &shard : local) {
        for (Candidate &cand : shard) {
            auto [it, inserted] = index.try_emplace(
                keyOf(cand.seq), static_cast<uint32_t>(merged.size()));
            if (inserted) {
                merged.push_back(std::move(cand));
                continue;
            }
            std::vector<uint32_t> &positions =
                merged[it->second].positions;
            CC_ASSERT(positions.back() < cand.positions.front(),
                      "shard positions out of order");
            positions.insert(positions.end(), cand.positions.begin(),
                             cand.positions.end());
        }
    }

    // Restore the serial scan's candidate order -- ascending first
    // occurrence, then length -- so selection sees an identical input
    // (and produces identical output) for any job count. (first
    // occurrence, length) identifies a candidate uniquely, so this
    // order is total and needs no stable sort.
    std::sort(merged.begin(), merged.end(),
              [](const Candidate &a, const Candidate &b) {
                  if (a.positions.front() != b.positions.front())
                      return a.positions.front() < b.positions.front();
                  return a.seq.size() < b.seq.size();
              });
    return merged;
}

uint32_t
countNonOverlapping(const std::vector<uint32_t> &positions, uint32_t length,
                    const std::vector<bool> &consumed)
{
    return forEachNonOverlapping(positions, length, consumed,
                                 [](uint32_t) {});
}

} // namespace codecomp::compress
