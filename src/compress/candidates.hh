/**
 * @file
 * Enumeration of candidate dictionary sequences.
 *
 * A candidate is a sequence of 1..maxLen instruction words that
 * (a) lies entirely within one basic block and (b) contains no
 * relative branch (paper section 3.1.1: branch instructions with
 * offset fields are never compressed; indirect branches are fair
 * game). Occurrence lists are start indices in .text.
 */

#ifndef CODECOMP_COMPRESS_CANDIDATES_HH
#define CODECOMP_COMPRESS_CANDIDATES_HH

#include <vector>

#include "program/cfg.hh"
#include "program/program.hh"

namespace codecomp::compress {

/** A unique candidate sequence with all its occurrence positions. */
struct Candidate
{
    std::vector<isa::Word> seq;
    std::vector<uint32_t> positions; //!< sorted start indices
};

/** Per-instruction compressibility mask (false for relative branches). */
std::vector<bool> eligibilityMask(const Program &program);

/**
 * Enumerate all candidates with lengths in [minLen, maxLen].
 *
 * Runs sharded across CFG blocks on the global thread pool
 * (support/thread_pool.hh): each worker hashes the subsequences of a
 * contiguous block range into a private map, and the shards are merged
 * with a deterministic order key — first occurrence position, then
 * length — which is exactly the order a serial left-to-right scan
 * produces. Output is therefore byte-identical for any job count.
 */
std::vector<Candidate> enumerateCandidates(const Program &program,
                                           const Cfg &cfg, uint32_t minLen,
                                           uint32_t maxLen);

/**
 * Walk the maximal set of non-overlapping occurrences from the sorted
 * position list of a sequence of @p length, skipping any occurrence
 * whose span touches a true bit of @p consumed (pass an empty mask to
 * treat everything as live). Calls fn(pos) for each chosen occurrence
 * and returns how many were chosen.
 *
 * This is the single definition of "live occurrences": greedy
 * acceptance (greedy.cc) and savings re-evaluation
 * (countNonOverlapping) both walk through here, so the savings cached
 * in the selection heap can never disagree with the placements that
 * acceptance actually emits. fn may mark the chosen span in @p
 * consumed: chosen spans end before the next position considered, so
 * such marks never affect the remainder of the same walk.
 */
template <typename Fn>
uint32_t
forEachNonOverlapping(const std::vector<uint32_t> &positions, uint32_t length,
                      const std::vector<bool> &consumed, Fn &&fn)
{
    uint32_t count = 0;
    uint64_t next_free = 0;
    for (uint32_t pos : positions) {
        if (pos < next_free)
            continue;
        if (!consumed.empty()) {
            bool blocked = false;
            for (uint32_t i = pos; i < pos + length; ++i) {
                if (consumed[i]) {
                    blocked = true;
                    break;
                }
            }
            if (blocked)
                continue;
        }
        fn(pos);
        ++count;
        next_free = static_cast<uint64_t>(pos) + length;
    }
    return count;
}

/** forEachNonOverlapping with no per-occurrence action: just the count. */
uint32_t countNonOverlapping(const std::vector<uint32_t> &positions,
                             uint32_t length,
                             const std::vector<bool> &consumed);

} // namespace codecomp::compress

#endif // CODECOMP_COMPRESS_CANDIDATES_HH
