/**
 * @file
 * Enumeration of candidate dictionary sequences.
 *
 * A candidate is a sequence of 1..maxLen instruction words that
 * (a) lies entirely within one basic block and (b) contains no
 * relative branch (paper section 3.1.1: branch instructions with
 * offset fields are never compressed; indirect branches are fair
 * game). Occurrence lists are start indices in .text.
 */

#ifndef CODECOMP_COMPRESS_CANDIDATES_HH
#define CODECOMP_COMPRESS_CANDIDATES_HH

#include <vector>

#include "program/cfg.hh"
#include "program/program.hh"

namespace codecomp::compress {

/** A unique candidate sequence with all its occurrence positions. */
struct Candidate
{
    std::vector<isa::Word> seq;
    std::vector<uint32_t> positions; //!< sorted start indices
};

/** Per-instruction compressibility mask (false for relative branches). */
std::vector<bool> eligibilityMask(const Program &program);

/**
 * Enumerate all candidates with lengths in [minLen, maxLen].
 * Deterministic output order: by first occurrence, then by length.
 */
std::vector<Candidate> enumerateCandidates(const Program &program,
                                           const Cfg &cfg, uint32_t minLen,
                                           uint32_t maxLen);

/**
 * Maximum number of non-overlapping occurrences from a sorted position
 * list for a sequence of @p length, considering only positions where
 * @p live (indexed by instruction) is true for the whole span. Pass an
 * empty mask to treat everything as live.
 */
uint32_t countNonOverlapping(const std::vector<uint32_t> &positions,
                             uint32_t length,
                             const std::vector<bool> &consumed);

} // namespace codecomp::compress

#endif // CODECOMP_COMPRESS_CANDIDATES_HH
