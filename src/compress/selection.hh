/**
 * @file
 * Shared types for dictionary selection: dictionary entries, codeword
 * placements, and the greedy builder's configuration.
 */

#ifndef CODECOMP_COMPRESS_SELECTION_HH
#define CODECOMP_COMPRESS_SELECTION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/inst.hh"

namespace codecomp::compress {

/** One compressed occurrence: @p length instructions starting at
 *  original instruction index @p start map to dictionary entry
 *  @p entryId. */
struct Placement
{
    uint32_t start;
    uint32_t length;
    uint32_t entryId;

    bool operator==(const Placement &) const = default;
};

/** The instruction dictionary: entryId -> original instruction words. */
struct Dictionary
{
    std::vector<std::vector<isa::Word>> entries;

    /** Storage cost of the dictionary contents in bytes (the overhead
     *  the paper folds into every compressed program size). */
    uint32_t
    sizeBytes() const
    {
        uint32_t total = 0;
        for (const auto &entry : entries)
            total += static_cast<uint32_t>(entry.size()) * isa::instBytes;
        return total;
    }
};

/** Output of a selection algorithm. */
struct SelectionResult
{
    Dictionary dict;
    std::vector<Placement> placements; //!< sorted by start index
    std::vector<uint32_t> useCount;    //!< placements per entry
};

/**
 * Cost model and limits for greedy selection. Savings are computed in
 * nibbles:
 *
 *   savings(seq) = occ * (insnNibbles * len - codewordNibbles)
 *                - dictEntryNibbles * len
 *
 * where occ is the number of live non-overlapping occurrences. The
 * codeword cost is the scheme's true cost for fixed-length schemes and
 * an assumed cost for the nibble-aligned scheme, whose codeword lengths
 * depend on the final frequency ranking; the IterativeRefit strategy
 * replaces the assumption with rank-derived per-candidate costs
 * (DESIGN.md section 5.3).
 */
struct GreedyConfig
{
    uint32_t maxEntries = 8192;
    uint32_t maxEntryLen = 4;
    uint32_t minEntryLen = 1;
    uint32_t insnNibbles = 8;      //!< 9 under the nibble scheme (escape)
    uint32_t codewordNibbles = 4;  //!< 2-byte baseline codeword
    uint32_t dictEntryNibbles = 8; //!< dictionary stores raw words
    uint32_t dictEntryExtraNibbles = 0; //!< fixed per-entry overhead
                                        //!< (e.g. Liao's return insn)
};

/**
 * Human-readable reason @p config cannot drive a selection, or "" if
 * the config is valid. The selection entry points fatal() on a
 * non-empty answer; CLI front ends check it (and their own flag
 * ranges) first so the user gets a usage error, not an abort.
 */
std::string greedyConfigError(const GreedyConfig &config);

/** Frequency ranking: most-used entry gets rank 0 (shortest codeword
 *  under rank-aware encodings). Stable, so ties break toward the
 *  earlier-selected entry. */
std::vector<uint32_t> rankByUseCount(const SelectionResult &selection);

} // namespace codecomp::compress

#endif // CODECOMP_COMPRESS_SELECTION_HH
