#include "compress/greedy.hh"

#include <algorithm>
#include <queue>

#include "support/logging.hh"

namespace codecomp::compress {

namespace {

/** Heap entry: cached savings for a candidate. */
struct HeapEntry
{
    int64_t savings;
    uint32_t candId;
};

struct HeapLess
{
    bool
    operator()(const HeapEntry &a, const HeapEntry &b) const
    {
        // Max savings first; break ties toward the lower candidate id
        // (which is also "earliest first occurrence" by construction).
        if (a.savings != b.savings)
            return a.savings < b.savings;
        return a.candId > b.candId;
    }
};

/** Assumed codeword cost for candidate @p id under an optional
 *  per-candidate override. */
inline uint32_t
costOf(const GreedyConfig &config, const std::vector<uint32_t> &costs,
       uint32_t id)
{
    return costs.empty() ? config.codewordNibbles : costs[id];
}

/** Consume one accepted candidate: emit placements, mark slots. Walks
 *  the identical forEachNonOverlapping as countNonOverlapping, so the
 *  savings evaluated before acceptance always match what is placed. */
void
accept(const Candidate &cand, uint32_t entry_id, std::vector<bool> &consumed,
       SelectionResult &result)
{
    uint32_t length = static_cast<uint32_t>(cand.seq.size());
    uint32_t count = forEachNonOverlapping(
        cand.positions, length, consumed,
        [&](uint32_t pos) {
            for (uint32_t i = pos; i < pos + length; ++i)
                consumed[i] = true;
            result.placements.push_back({pos, length, entry_id});
        });
    CC_ASSERT(count > 0, "accepted candidate with no live occurrences");
    result.dict.entries.push_back(cand.seq);
    result.useCount.push_back(count);
}

SelectionResult
finish(SelectionResult result)
{
    std::sort(result.placements.begin(), result.placements.end(),
              [](const Placement &a, const Placement &b) {
                  return a.start < b.start;
              });
    return result;
}

void
checkConfig(const GreedyConfig &config)
{
    std::string error = greedyConfigError(config);
    if (!error.empty())
        CC_FATAL("invalid selection config: ", error);
}

void
checkInputs(const GreedyConfig &config,
            const std::vector<Candidate> &candidates,
            const std::vector<uint32_t> &codewordCosts)
{
    checkConfig(config);
    CC_ASSERT(codewordCosts.empty() ||
                  codewordCosts.size() == candidates.size(),
              "per-candidate cost vector length mismatch");
}

} // namespace

SelectionResult
selectGreedyFromCandidates(size_t textSize,
                           const std::vector<Candidate> &candidates,
                           const GreedyConfig &config,
                           const std::vector<uint32_t> &codewordCosts)
{
    checkInputs(config, candidates, codewordCosts);

    std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapLess> heap;
    for (uint32_t id = 0; id < candidates.size(); ++id) {
        uint32_t length =
            static_cast<uint32_t>(candidates[id].seq.size());
        uint32_t occ = countNonOverlapping(candidates[id].positions,
                                           length, {});
        int64_t savings = savingsNibbles(config, length, occ,
                                         costOf(config, codewordCosts, id));
        if (savings > 0)
            heap.push({savings, id});
    }

    SelectionResult result;
    std::vector<bool> consumed(textSize, false);

    while (!heap.empty() &&
           result.dict.entries.size() < config.maxEntries) {
        HeapEntry top = heap.top();
        heap.pop();
        const Candidate &cand = candidates[top.candId];
        uint32_t length = static_cast<uint32_t>(cand.seq.size());
        uint32_t occ =
            countNonOverlapping(cand.positions, length, consumed);
        int64_t savings =
            savingsNibbles(config, length, occ,
                           costOf(config, codewordCosts, top.candId));
        CC_ASSERT(savings <= top.savings,
                  "candidate savings increased; lazy heap invalid");
        if (savings <= 0)
            continue;
        if (savings < top.savings) {
            heap.push({savings, top.candId});
            continue;
        }
        accept(cand, static_cast<uint32_t>(result.dict.entries.size()),
               consumed, result);
    }
    return finish(std::move(result));
}

SelectionResult
selectGreedyReferenceFromCandidates(size_t textSize,
                                    const std::vector<Candidate> &candidates,
                                    const GreedyConfig &config,
                                    const std::vector<uint32_t> &codewordCosts)
{
    checkInputs(config, candidates, codewordCosts);

    SelectionResult result;
    std::vector<bool> consumed(textSize, false);

    while (result.dict.entries.size() < config.maxEntries) {
        int64_t best_savings = 0;
        uint32_t best_id = UINT32_MAX;
        for (uint32_t id = 0; id < candidates.size(); ++id) {
            uint32_t length =
                static_cast<uint32_t>(candidates[id].seq.size());
            uint32_t occ = countNonOverlapping(candidates[id].positions,
                                               length, consumed);
            int64_t savings =
                savingsNibbles(config, length, occ,
                               costOf(config, codewordCosts, id));
            if (savings > best_savings) {
                best_savings = savings;
                best_id = id;
            }
        }
        if (best_id == UINT32_MAX)
            break;
        accept(candidates[best_id],
               static_cast<uint32_t>(result.dict.entries.size()), consumed,
               result);
    }
    return finish(std::move(result));
}

SelectionResult
selectGreedy(const Program &program, const GreedyConfig &config)
{
    checkConfig(config); // before enumeration sees the bad lengths
    Cfg cfg = Cfg::build(program);
    std::vector<Candidate> candidates = enumerateCandidates(
        program, cfg, config.minEntryLen, config.maxEntryLen);
    return selectGreedyFromCandidates(program.text.size(), candidates,
                                      config);
}

SelectionResult
selectGreedyReference(const Program &program, const GreedyConfig &config)
{
    checkConfig(config);
    Cfg cfg = Cfg::build(program);
    std::vector<Candidate> candidates = enumerateCandidates(
        program, cfg, config.minEntryLen, config.maxEntryLen);
    return selectGreedyReferenceFromCandidates(program.text.size(),
                                               candidates, config);
}

} // namespace codecomp::compress
