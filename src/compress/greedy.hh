/**
 * @file
 * Greedy dictionary selection (paper section 3.1.1).
 *
 * Optimal dictionary choice is NP-complete [Storer77]; like the paper we
 * pick greedily by immediate savings. The production implementation uses
 * a lazy max-heap: replacing a sequence can only *destroy* occurrences of
 * other candidates (codeword tokens can never re-create an instruction
 * pattern), so a candidate's savings only ever decreases and lazy
 * revalidation at pop time is exact, not a heuristic. A naive reference
 * implementation is provided for differential testing.
 *
 * Both algorithms run over a pre-enumerated candidate list (the
 * pipeline's Enumerate pass), and both accept an optional per-candidate
 * codeword-cost vector so rank-aware strategies can replace the single
 * assumed cost of GreedyConfig::codewordNibbles with the true
 * rank-derived cost of each candidate (strategy.hh, IterativeRefit).
 */

#ifndef CODECOMP_COMPRESS_GREEDY_HH
#define CODECOMP_COMPRESS_GREEDY_HH

#include "compress/candidates.hh"
#include "compress/selection.hh"
#include "program/program.hh"

namespace codecomp::compress {

/**
 * Lazy-heap greedy selection over pre-enumerated @p candidates.
 * @p textSize is the instruction count of the program's .text (the
 * span of the consumed-slot mask). @p codewordCosts, when non-empty,
 * gives the assumed codeword cost in nibbles per candidate and must
 * have one element per candidate; empty means
 * config.codewordNibbles for every candidate.
 */
SelectionResult
selectGreedyFromCandidates(size_t textSize,
                           const std::vector<Candidate> &candidates,
                           const GreedyConfig &config,
                           const std::vector<uint32_t> &codewordCosts = {});

/** Reference implementation over pre-enumerated candidates: recompute
 *  every candidate's savings from scratch each round. Same tie-breaking
 *  rules as selectGreedyFromCandidates; O(candidates * selections). */
SelectionResult selectGreedyReferenceFromCandidates(
    size_t textSize, const std::vector<Candidate> &candidates,
    const GreedyConfig &config,
    const std::vector<uint32_t> &codewordCosts = {});

/** Enumerate + lazy-heap greedy selection over @p program. */
SelectionResult selectGreedy(const Program &program,
                             const GreedyConfig &config);

/** Enumerate + reference greedy selection over @p program; used by
 *  tests to prove the lazy heap exact. */
SelectionResult selectGreedyReference(const Program &program,
                                      const GreedyConfig &config);

/** Savings, in nibbles, of one candidate of @p length instructions
 *  with @p occ live non-overlapping occurrences, paying
 *  @p codeword_nibbles per occurrence. Negative values mean growth. */
inline int64_t
savingsNibbles(const GreedyConfig &config, uint32_t length, uint32_t occ,
               uint32_t codeword_nibbles)
{
    int64_t per_occurrence =
        static_cast<int64_t>(config.insnNibbles) * length -
        static_cast<int64_t>(codeword_nibbles);
    int64_t dict_cost =
        static_cast<int64_t>(config.dictEntryNibbles) * length +
        config.dictEntryExtraNibbles;
    return static_cast<int64_t>(occ) * per_occurrence - dict_cost;
}

/** savingsNibbles at the config's single assumed codeword cost. */
inline int64_t
savingsNibbles(const GreedyConfig &config, uint32_t length, uint32_t occ)
{
    return savingsNibbles(config, length, occ, config.codewordNibbles);
}

} // namespace codecomp::compress

#endif // CODECOMP_COMPRESS_GREEDY_HH
