/**
 * @file
 * Greedy dictionary selection (paper section 3.1.1).
 *
 * Optimal dictionary choice is NP-complete [Storer77]; like the paper we
 * pick greedily by immediate savings. The production implementation uses
 * a lazy max-heap: replacing a sequence can only *destroy* occurrences of
 * other candidates (codeword tokens can never re-create an instruction
 * pattern), so a candidate's savings only ever decreases and lazy
 * revalidation at pop time is exact, not a heuristic. A naive reference
 * implementation is provided for differential testing.
 */

#ifndef CODECOMP_COMPRESS_GREEDY_HH
#define CODECOMP_COMPRESS_GREEDY_HH

#include "compress/candidates.hh"
#include "compress/selection.hh"
#include "program/program.hh"

namespace codecomp::compress {

/** Greedy selection over @p program with the lazy-heap algorithm. */
SelectionResult selectGreedy(const Program &program,
                             const GreedyConfig &config);

/** O(candidates * iterations) reference implementation: recompute every
 *  candidate's savings from scratch each round. Same tie-breaking rules
 *  as selectGreedy; used by tests to prove the lazy heap exact. */
SelectionResult selectGreedyReference(const Program &program,
                                      const GreedyConfig &config);

/** Savings, in nibbles, of one candidate under @p config given @p occ
 *  live non-overlapping occurrences. Negative values mean growth. */
inline int64_t
savingsNibbles(const GreedyConfig &config, uint32_t length, uint32_t occ)
{
    int64_t per_occurrence =
        static_cast<int64_t>(config.insnNibbles) * length -
        static_cast<int64_t>(config.codewordNibbles);
    int64_t dict_cost =
        static_cast<int64_t>(config.dictEntryNibbles) * length +
        config.dictEntryExtraNibbles;
    return static_cast<int64_t>(occ) * per_occurrence - dict_cost;
}

} // namespace codecomp::compress

#endif // CODECOMP_COMPRESS_GREEDY_HH
