#include "compress/objfile.hh"

#include <cinttypes>
#include <cstdio>

#include "isa/inst.hh"
#include "support/serialize.hh"

namespace codecomp {

namespace {

constexpr uint32_t programMagic = 0x43435052;   // "CCPR"
constexpr uint32_t imageMagic = 0x4343494d;     // "CCIM"
// v2 wraps the payload in a 64-bit FNV-1a checksum; v1 files (no
// checksum) are no longer accepted -- nothing outside this repository
// ever produced them.
constexpr uint32_t formatVersion = 2;

void
putRange(ByteSink &sink, const InstRange &range)
{
    sink.put32(range.first);
    sink.put32(range.count);
}

InstRange
getRange(ByteSource &source)
{
    InstRange range;
    range.first = source.get32();
    range.count = source.get32();
    return range;
}

LoadError
badValue(const ByteSource &source, std::string detail)
{
    return LoadError{LoadStatus::BadValue, source.pos(), source.context(),
                     std::move(detail)};
}

std::string
hex64(uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, v);
    return buf;
}

/**
 * Parse and verify the common v2 container: magic, version, checksum,
 * payload blob, no trailing bytes. On success the checksummed payload
 * is left in @p payload.
 */
std::optional<LoadError>
openContainer(const std::vector<uint8_t> &bytes, uint32_t magic,
              const char *what, std::vector<uint8_t> &payload)
{
    ByteSource source(bytes);
    source.setContext(std::string(what) + " header");
    if (source.get32() != magic)
        return LoadError{LoadStatus::BadMagic, 0, source.context(),
                         std::string("not a ") + what + " file"};
    uint32_t version = source.get32();
    if (version != formatVersion)
        return LoadError{LoadStatus::BadVersion, 4, source.context(),
                         "unsupported " + std::string(what) + " version " +
                             std::to_string(version) + " (expected " +
                             std::to_string(formatVersion) + ")"};
    uint64_t stored = source.get64();
    payload = source.getBlob();
    if (!source.atEnd())
        return LoadError{LoadStatus::TrailingBytes, source.pos(),
                         source.context(),
                         std::to_string(source.remaining()) +
                             " byte(s) after the payload"};
    uint64_t computed = fnv1a64(payload);
    if (computed != stored)
        return LoadError{LoadStatus::BadChecksum, 8, source.context(),
                         "stored " + hex64(stored) + " != computed " +
                             hex64(computed)};
    return std::nullopt;
}

/** Wrap a finished payload in the v2 container. */
std::vector<uint8_t>
sealContainer(uint32_t magic, std::vector<uint8_t> payload)
{
    ByteSink sink;
    sink.put32(magic);
    sink.put32(formatVersion);
    sink.put64(fnv1a64(payload));
    sink.putBlob(payload);
    return sink.take();
}

} // namespace

std::vector<uint8_t>
saveProgram(const Program &program)
{
    ByteSink sink;
    sink.put32(static_cast<uint32_t>(program.text.size()));
    for (isa::Word word : program.text)
        sink.put32(word);

    sink.putBlob(program.data);

    sink.put32(static_cast<uint32_t>(program.codeRelocs.size()));
    for (const CodeReloc &reloc : program.codeRelocs) {
        sink.put32(reloc.dataOffset);
        sink.put32(reloc.targetIndex);
    }

    sink.put32(static_cast<uint32_t>(program.functions.size()));
    for (const FunctionSymbol &fn : program.functions) {
        sink.putString(fn.name);
        putRange(sink, fn.body);
        putRange(sink, fn.prologue);
        sink.put32(static_cast<uint32_t>(fn.epilogues.size()));
        for (const InstRange &ep : fn.epilogues)
            putRange(sink, ep);
    }

    sink.put32(program.entryIndex);
    return sealContainer(programMagic, sink.take());
}

Result<Program>
tryLoadProgram(const std::vector<uint8_t> &bytes)
{
    std::vector<uint8_t> payload;
    try {
        if (std::optional<LoadError> error =
                openContainer(bytes, programMagic, ".ccp program", payload))
            return *error;

        ByteSource source(payload);
        source.setContext(".ccp payload");

        Program program;
        uint32_t text_count = source.get32();
        // Bound declared counts by the remaining payload before any
        // reserve: a lying count must fail cleanly, not allocate.
        if (text_count > source.remaining() / 4)
            return badValue(source,
                            "declared " + std::to_string(text_count) +
                                " instructions exceed the payload");
        program.text.reserve(text_count);
        for (uint32_t i = 0; i < text_count; ++i)
            program.text.push_back(source.get32());

        program.data = source.getBlob();

        uint32_t reloc_count = source.get32();
        if (reloc_count > source.remaining() / 8)
            return badValue(source,
                            "declared " + std::to_string(reloc_count) +
                                " relocations exceed the payload");
        program.codeRelocs.reserve(reloc_count);
        for (uint32_t i = 0; i < reloc_count; ++i) {
            CodeReloc reloc;
            reloc.dataOffset = source.get32();
            reloc.targetIndex = source.get32();
            program.codeRelocs.push_back(reloc);
        }

        uint32_t fn_count = source.get32();
        for (uint32_t i = 0; i < fn_count; ++i) {
            FunctionSymbol fn;
            fn.name = source.getString();
            fn.body = getRange(source);
            fn.prologue = getRange(source);
            uint32_t ep_count = source.get32();
            if (ep_count > source.remaining() / 8)
                return badValue(source,
                                "declared " + std::to_string(ep_count) +
                                    " epilogues exceed the payload");
            fn.epilogues.reserve(ep_count);
            for (uint32_t e = 0; e < ep_count; ++e)
                fn.epilogues.push_back(getRange(source));
            program.functions.push_back(std::move(fn));
        }

        program.entryIndex = source.get32();
        if (!source.atEnd())
            return LoadError{LoadStatus::TrailingBytes, source.pos(),
                             source.context(),
                             std::to_string(source.remaining()) +
                                 " byte(s) after the program fields"};

        program.computeDataBase();
        if (std::optional<LoadError> error = program.validate())
            return *error;
        return program;
    } catch (const LoadFailure &failure) {
        return failure.error();
    }
}

Program
loadProgram(const std::vector<uint8_t> &bytes)
{
    Result<Program> result = tryLoadProgram(bytes);
    if (!result.ok())
        throw LoadFailure(result.error());
    return result.take();
}

std::vector<uint8_t>
saveImage(const compress::CompressedImage &image)
{
    ByteSink sink;
    sink.put8(static_cast<uint8_t>(image.scheme));
    sink.put64(image.textNibbles);
    sink.putBlob(image.text);

    sink.put32(static_cast<uint32_t>(image.entriesByRank.size()));
    compress::schemeCodec(image.scheme)
        .putDictionary(sink, image.entriesByRank);

    sink.putBlob(image.data);
    sink.put32(image.dataBase);
    sink.put32(image.entryPointNibble);
    sink.put32(image.originalTextBytes);
    sink.put32(image.farBranchExpansions);
    return sealContainer(imageMagic, sink.take());
}

Result<compress::CompressedImage>
tryLoadImage(const std::vector<uint8_t> &bytes)
{
    std::vector<uint8_t> payload;
    try {
        if (std::optional<LoadError> error =
                openContainer(bytes, imageMagic, ".cci image", payload))
            return *error;

        ByteSource source(payload);
        source.setContext(".cci payload");

        compress::CompressedImage image;
        uint8_t scheme = source.get8();
        const compress::SchemeCodec *codec =
            compress::findSchemeCodec(scheme);
        if (!codec)
            return badValue(source, "bad scheme byte " +
                                        std::to_string(scheme));
        image.scheme = codec->id();
        image.textNibbles = source.get64();
        image.text = source.getBlob();

        uint32_t entries = source.get32();
        if (entries > codec->params().maxCodewords)
            return badValue(
                source,
                std::to_string(entries) +
                    " dictionary entries exceed the scheme ceiling of " +
                    std::to_string(codec->params().maxCodewords));
        if (std::optional<std::string> detail = codec->getDictionary(
                source, entries, maxImageEntryWords, image.entriesByRank))
            return badValue(source, std::move(*detail));

        image.data = source.getBlob();
        image.dataBase = source.get32();
        image.entryPointNibble = source.get32();
        image.originalTextBytes = source.get32();
        image.farBranchExpansions = source.get32();
        if (!source.atEnd())
            return LoadError{LoadStatus::TrailingBytes, source.pos(),
                             source.context(),
                             std::to_string(source.remaining()) +
                                 " byte(s) after the image fields"};

        if (std::optional<LoadError> error = validateImage(image))
            return *error;
        return image;
    } catch (const LoadFailure &failure) {
        return failure.error();
    }
}

compress::CompressedImage
loadImage(const std::vector<uint8_t> &bytes)
{
    Result<compress::CompressedImage> result = tryLoadImage(bytes);
    if (!result.ok())
        throw LoadFailure(result.error());
    return result.take();
}

std::optional<LoadError>
validateImage(const compress::CompressedImage &image)
{
    auto invalid = [](std::string detail) {
        return LoadError{LoadStatus::BadValue, 0, "compressed image",
                         std::move(detail)};
    };

    const compress::SchemeCodec *codec =
        compress::findSchemeCodec(static_cast<uint8_t>(image.scheme));
    if (!codec)
        return invalid("bad scheme value " +
                       std::to_string(static_cast<int>(image.scheme)));
    const compress::SchemeParams params = codec->params();

    // The byte blob must match the declared nibble count exactly: at
    // most one pad nibble (in the last byte's low half). Anything else
    // would let phantom nibbles reach the decoder.
    if (image.text.size() != (image.textNibbles + 1) / 2)
        return invalid("nibble count " +
                       std::to_string(image.textNibbles) +
                       " does not match stream of " +
                       std::to_string(image.text.size()) + " bytes");
    if (image.textNibbles % 2 != 0 &&
        (image.text.back() & 0x0f) != 0)
        return invalid("nonzero pad nibble after an odd-length stream");

    // Dictionary: ceiling, entry lengths, and entry word legality. A
    // relative branch inside an entry can never execute correctly (the
    // expansion has no stream position of its own), so it is rejected
    // here rather than trapped later.
    if (image.entriesByRank.size() > params.maxCodewords)
        return invalid(std::to_string(image.entriesByRank.size()) +
                       " dictionary entries exceed the scheme ceiling of " +
                       std::to_string(params.maxCodewords));
    for (size_t rank = 0; rank < image.entriesByRank.size(); ++rank) {
        const std::vector<isa::Word> &entry = image.entriesByRank[rank];
        if (entry.empty() || entry.size() > maxImageEntryWords)
            return invalid("dictionary entry " + std::to_string(rank) +
                           " has " + std::to_string(entry.size()) +
                           " words (format allows 1.." +
                           std::to_string(maxImageEntryWords) + ")");
        for (size_t slot = 0; slot < entry.size(); ++slot) {
            isa::Inst inst = isa::decode(entry[slot]);
            if (inst.op == isa::Op::Illegal)
                return invalid("dictionary entry " + std::to_string(rank) +
                               " slot " + std::to_string(slot) +
                               " does not decode to a legal instruction");
            if (inst.isRelativeBranch())
                return invalid("dictionary entry " + std::to_string(rank) +
                               " slot " + std::to_string(slot) +
                               " is a relative branch");
        }
    }

    // Walk the stream exactly as the decompression engine's scan would,
    // but with explicit lookahead so malformed streams produce typed
    // errors instead of machine checks. Collect the item boundaries for
    // the branch-target and entry-point checks below.
    std::vector<bool> boundary(image.textNibbles, false);
    struct StreamBranch
    {
        uint32_t addr;
        int32_t disp;
    };
    std::vector<StreamBranch> branches;
    NibbleReader reader(image.text.data(), image.textNibbles);
    while (!reader.atEnd()) {
        uint32_t addr = static_cast<uint32_t>(reader.pos());
        if (!codec->peekItemNibbles(reader))
            return invalid("stream ends mid-item at nibble " +
                           std::to_string(addr));
        boundary[addr] = true;
        auto rank = codec->decodeCodeword(reader);
        if (rank) {
            if (*rank >= image.entriesByRank.size())
                return invalid("codeword at nibble " +
                               std::to_string(addr) + " names rank " +
                               std::to_string(*rank) +
                               " beyond the dictionary of " +
                               std::to_string(image.entriesByRank.size()) +
                               " entries");
            continue;
        }
        isa::Word word = reader.getWord();
        isa::Inst inst = isa::decode(word);
        if (inst.op == isa::Op::Illegal)
            return invalid("stream instruction at nibble " +
                           std::to_string(addr) +
                           " does not decode to a legal instruction");
        if (inst.isRelativeBranch())
            branches.push_back({addr, inst.disp});
    }

    if (image.entryPointNibble >= image.textNibbles ||
        !boundary[image.entryPointNibble])
        return invalid("entry point nibble " +
                       std::to_string(image.entryPointNibble) +
                       " is not an item boundary");

    for (const StreamBranch &branch : branches) {
        int64_t target = static_cast<int64_t>(branch.addr) +
                         static_cast<int64_t>(branch.disp) *
                             params.unitNibbles;
        if (target < 0 ||
            target >= static_cast<int64_t>(image.textNibbles) ||
            !boundary[static_cast<size_t>(target)])
            return invalid("branch at nibble " +
                           std::to_string(branch.addr) + " targets nibble " +
                           std::to_string(target) +
                           ", not an item boundary");
    }

    if (static_cast<uint64_t>(image.dataBase) + image.data.size() >
        isa::addressSpaceBytes)
        return invalid(".data of " + std::to_string(image.data.size()) +
                       " bytes at base " + std::to_string(image.dataBase) +
                       " does not fit the address space");

    return std::nullopt;
}

} // namespace codecomp
