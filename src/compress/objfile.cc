#include "compress/objfile.hh"

#include "support/serialize.hh"

namespace codecomp {

namespace {

constexpr uint32_t programMagic = 0x43435052;   // "CCPR"
constexpr uint32_t imageMagic = 0x4343494d;     // "CCIM"
constexpr uint32_t formatVersion = 1;

void
putRange(ByteSink &sink, const InstRange &range)
{
    sink.put32(range.first);
    sink.put32(range.count);
}

InstRange
getRange(ByteSource &source)
{
    InstRange range;
    range.first = source.get32();
    range.count = source.get32();
    return range;
}

} // namespace

std::vector<uint8_t>
saveProgram(const Program &program)
{
    ByteSink sink;
    sink.put32(programMagic);
    sink.put32(formatVersion);

    sink.put32(static_cast<uint32_t>(program.text.size()));
    for (isa::Word word : program.text)
        sink.put32(word);

    sink.putBlob(program.data);

    sink.put32(static_cast<uint32_t>(program.codeRelocs.size()));
    for (const CodeReloc &reloc : program.codeRelocs) {
        sink.put32(reloc.dataOffset);
        sink.put32(reloc.targetIndex);
    }

    sink.put32(static_cast<uint32_t>(program.functions.size()));
    for (const FunctionSymbol &fn : program.functions) {
        sink.putString(fn.name);
        putRange(sink, fn.body);
        putRange(sink, fn.prologue);
        sink.put32(static_cast<uint32_t>(fn.epilogues.size()));
        for (const InstRange &ep : fn.epilogues)
            putRange(sink, ep);
    }

    sink.put32(program.entryIndex);
    return sink.take();
}

Program
loadProgram(const std::vector<uint8_t> &bytes)
{
    ByteSource source(bytes);
    if (source.get32() != programMagic)
        CC_FATAL("not a .ccp program file");
    if (source.get32() != formatVersion)
        CC_FATAL("unsupported .ccp version");

    Program program;
    uint32_t text_count = source.get32();
    program.text.reserve(text_count);
    for (uint32_t i = 0; i < text_count; ++i)
        program.text.push_back(source.get32());

    program.data = source.getBlob();

    uint32_t reloc_count = source.get32();
    for (uint32_t i = 0; i < reloc_count; ++i) {
        CodeReloc reloc;
        reloc.dataOffset = source.get32();
        reloc.targetIndex = source.get32();
        program.codeRelocs.push_back(reloc);
    }

    uint32_t fn_count = source.get32();
    for (uint32_t i = 0; i < fn_count; ++i) {
        FunctionSymbol fn;
        fn.name = source.getString();
        fn.body = getRange(source);
        fn.prologue = getRange(source);
        uint32_t ep_count = source.get32();
        for (uint32_t e = 0; e < ep_count; ++e)
            fn.epilogues.push_back(getRange(source));
        program.functions.push_back(std::move(fn));
    }

    program.entryIndex = source.get32();
    if (!source.atEnd())
        CC_FATAL("trailing bytes in .ccp file");
    program.finalize(); // validates everything and sets dataBase
    return program;
}

std::vector<uint8_t>
saveImage(const compress::CompressedImage &image)
{
    ByteSink sink;
    sink.put32(imageMagic);
    sink.put32(formatVersion);

    sink.put8(static_cast<uint8_t>(image.scheme));
    sink.put64(image.textNibbles);
    sink.putBlob(image.text);

    sink.put32(static_cast<uint32_t>(image.entriesByRank.size()));
    for (const auto &entry : image.entriesByRank) {
        sink.put32(static_cast<uint32_t>(entry.size()));
        for (isa::Word word : entry)
            sink.put32(word);
    }

    sink.putBlob(image.data);
    sink.put32(image.dataBase);
    sink.put32(image.entryPointNibble);
    sink.put32(image.originalTextBytes);
    sink.put32(image.farBranchExpansions);
    return sink.take();
}

compress::CompressedImage
loadImage(const std::vector<uint8_t> &bytes)
{
    ByteSource source(bytes);
    if (source.get32() != imageMagic)
        CC_FATAL("not a .cci image file");
    if (source.get32() != formatVersion)
        CC_FATAL("unsupported .cci version");

    compress::CompressedImage image;
    uint8_t scheme = source.get8();
    if (scheme > static_cast<uint8_t>(compress::Scheme::Nibble))
        CC_FATAL("bad scheme in .cci file");
    image.scheme = static_cast<compress::Scheme>(scheme);
    image.textNibbles = source.get64();
    image.text = source.getBlob();
    // The byte blob must match the declared nibble count exactly: at
    // most one pad nibble (in the last byte's low half). Anything else
    // would let phantom nibbles reach the decoder.
    if (image.text.size() != (image.textNibbles + 1) / 2)
        CC_FATAL("nibble count does not match stream size in .cci file");

    uint32_t entries = source.get32();
    if (entries > compress::schemeParams(image.scheme).maxCodewords)
        CC_FATAL("too many dictionary entries in .cci file");
    image.entriesByRank.resize(entries);
    for (auto &entry : image.entriesByRank) {
        uint32_t length = source.get32();
        if (length == 0 || length > 64)
            CC_FATAL("bad dictionary entry length in .cci file");
        entry.reserve(length);
        for (uint32_t k = 0; k < length; ++k)
            entry.push_back(source.get32());
    }

    image.data = source.getBlob();
    image.dataBase = source.get32();
    image.entryPointNibble = source.get32();
    image.originalTextBytes = source.get32();
    image.farBranchExpansions = source.get32();
    if (!source.atEnd())
        CC_FATAL("trailing bytes in .cci file");
    return image;
}

} // namespace codecomp
