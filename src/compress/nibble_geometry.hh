/**
 * @file
 * The 4/8/12/16-bit nibble-aligned codeword geometry of paper
 * Figure 10, factored out of the nibble codec so stream-compatible
 * backends (the operand-factored codec) can reuse it: first-nibble
 * classes 0-7 -> 4-bit codeword (8 ranks), 8-11 -> 8-bit (64),
 * 12-13 -> 12-bit (512), 14 -> 16-bit (4096), 15 -> escape preceding
 * an uncompressed 32-bit instruction; 4680 codewords total.
 *
 * Everything here is geometry only -- what the codewords look like on
 * the stream. What a rank *means* (which dictionary, how it is stored)
 * stays with the codec that embeds this header.
 */

#ifndef CODECOMP_COMPRESS_NIBBLE_GEOMETRY_HH
#define CODECOMP_COMPRESS_NIBBLE_GEOMETRY_HH

#include "compress/codec.hh"
#include "support/logging.hh"

namespace codecomp::compress::nibgeom {

/** Rank boundaries of the codeword classes. */
constexpr uint32_t class4Count = 8;
constexpr uint32_t class8Count = 4 * 16;    // first nibble 8..11
constexpr uint32_t class12Count = 2 * 256;  // first nibble 12..13
constexpr uint32_t class16Count = 1 * 4096; // first nibble 14
constexpr uint32_t totalCodewords =
    class4Count + class8Count + class12Count + class16Count; // 4680
constexpr uint8_t escapeNibble = 15;

/** The first nibble alone classifies the item (Figure 10); entries
 *  16..255 are unreachable (a 1-nibble prefix can only index 0..15).
 *  @p insnNibbles is the full escaped-instruction item length (9). */
constexpr DecodeTables
buildTables(uint8_t insnNibbles)
{
    DecodeTables tables{};
    tables.prefixNibbles = 1;
    for (uint32_t n0 = 0; n0 < 16; ++n0) {
        ItemClass &cls = tables.classes[n0];
        if (n0 < 8) {
            cls = {1, 1, 0, 0, n0};
        } else if (n0 < 12) {
            cls = {2, 1, 1, 0, class4Count + (n0 - 8) * 16};
        } else if (n0 < 14) {
            cls = {3, 1, 2, 0,
                   class4Count + class8Count + (n0 - 12) * 256};
        } else if (n0 == 14) {
            cls = {4, 1, 3, 0, class4Count + class8Count + class12Count};
        } else {
            // Escape: the nibble is consumed, an 8-nibble instruction
            // follows (no rewind -- decodeCodeword eats the escape).
            cls = {insnNibbles, 0, 0, 0, 0};
        }
    }
    return tables;
}

inline unsigned
codewordNibbles(uint32_t rank)
{
    if (rank < class4Count)
        return 1;
    if (rank < class4Count + class8Count)
        return 2;
    if (rank < class4Count + class8Count + class12Count)
        return 3;
    CC_ASSERT(rank < totalCodewords, "nibble-class rank range");
    return 4;
}

inline void
emitCodeword(NibbleWriter &writer, uint32_t rank)
{
    if (rank < class4Count) {
        writer.putNibble(static_cast<uint8_t>(rank));
        return;
    }
    if (rank < class4Count + class8Count) {
        uint32_t v = rank - class4Count;
        writer.putNibble(static_cast<uint8_t>(8 + v / 16));
        writer.putNibble(static_cast<uint8_t>(v % 16));
        return;
    }
    if (rank < class4Count + class8Count + class12Count) {
        uint32_t v = rank - class4Count - class8Count;
        writer.putNibble(static_cast<uint8_t>(12 + v / 256));
        writer.putNibbles(v % 256, 2);
        return;
    }
    CC_ASSERT(rank < totalCodewords, "nibble-class rank range");
    uint32_t v = rank - class4Count - class8Count - class12Count;
    writer.putNibble(14);
    writer.putNibbles(v, 3);
}

inline void
emitInstruction(NibbleWriter &writer, isa::Word word)
{
    writer.putNibble(escapeNibble);
    writer.putWord(word);
}

/** The original cascaded-branch decoder, kept as the checkable
 *  reference for the table-driven fast path. */
inline std::optional<uint32_t>
referenceDecodeCodeword(NibbleReader &reader)
{
    uint8_t n0 = reader.getNibble();
    if (n0 < 8)
        return n0;
    if (n0 < 12)
        return class4Count + (n0 - 8u) * 16 + reader.getNibble();
    if (n0 < 14)
        return class4Count + class8Count + (n0 - 12u) * 256 +
               reader.getNibbles(2);
    if (n0 == 14)
        return class4Count + class8Count + class12Count +
               reader.getNibbles(3);
    return std::nullopt; // escape: instruction follows
}

inline std::optional<unsigned>
referencePeekItemNibbles(NibbleReader reader)
{
    size_t remaining = reader.size() - reader.pos();
    if (remaining < 1)
        return std::nullopt;
    auto fits = [&](unsigned need) -> std::optional<unsigned> {
        if (need > remaining)
            return std::nullopt;
        return need;
    };
    uint8_t n0 = reader.getNibble();
    if (n0 < 8)
        return fits(1);
    if (n0 < 12)
        return fits(2);
    if (n0 < 14)
        return fits(3);
    if (n0 == 14)
        return fits(4);
    return fits(9); // escape nibble + 8-nibble instruction
}

} // namespace codecomp::compress::nibgeom

#endif // CODECOMP_COMPRESS_NIBBLE_GEOMETRY_HH
