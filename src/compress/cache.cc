#include "compress/cache.hh"

#include "compress/objfile.hh"
#include "support/serialize.hh"

namespace codecomp::compress {

namespace {

/** Fold @p fields into @p seed with FNV-1a64 over their bytes. */
uint64_t
hashFields(uint64_t seed, const std::vector<uint64_t> &fields)
{
    ByteSink sink;
    sink.put64(seed);
    for (uint64_t field : fields)
        sink.put64(field);
    return fnv1a64(sink.bytes());
}

} // namespace

uint64_t
PipelineCache::programHash(const Program &program)
{
    // The serialized form covers everything a compression can read:
    // text, data, relocations, symbols, entry point.
    return fnv1a64(saveProgram(program));
}

uint64_t
PipelineCache::enumerateKey(uint64_t programHash,
                            const CompressorConfig &config)
{
    // Enumeration walks basic blocks collecting sequences of
    // 1..maxEntryLen instructions; nothing else in the config matters.
    // (minEntryLen is a GreedyConfig field the context derives as 1;
    // keyed here so a future knob cannot silently alias.)
    return hashFields(programHash, {1u, config.maxEntryLen});
}

uint64_t
PipelineCache::selectKey(uint64_t programHash,
                         const CompressorConfig &config)
{
    return hashFields(programHash,
                      {static_cast<uint64_t>(config.scheme),
                       config.maxEntries, config.maxEntryLen,
                       config.assumedCodewordNibbles,
                       static_cast<uint64_t>(config.strategy),
                       config.refitMaxRounds});
}

std::shared_ptr<const PipelineCache::CandidateList>
PipelineCache::findCandidates(uint64_t key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = candidates_.find(key);
    if (it == candidates_.end()) {
        ++stats_.enumMisses;
        return nullptr;
    }
    ++stats_.enumHits;
    return it->second;
}

std::shared_ptr<const CachedSelection>
PipelineCache::findSelection(uint64_t key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = selections_.find(key);
    if (it == selections_.end()) {
        ++stats_.selectMisses;
        return nullptr;
    }
    ++stats_.selectHits;
    return it->second;
}

void
PipelineCache::storeCandidates(
    uint64_t key, std::shared_ptr<const CandidateList> candidates)
{
    std::lock_guard<std::mutex> lock(mutex_);
    candidates_.emplace(key, std::move(candidates));
}

void
PipelineCache::storeSelection(
    uint64_t key, std::shared_ptr<const CachedSelection> selection)
{
    std::lock_guard<std::mutex> lock(mutex_);
    selections_.emplace(key, std::move(selection));
}

PipelineCache::Stats
PipelineCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace codecomp::compress
