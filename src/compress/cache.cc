#include "compress/cache.hh"

#include <cstdio>
#include <filesystem>
#include <system_error>

#include <unistd.h>

#include "compress/objfile.hh"
#include "support/logging.hh"
#include "support/serialize.hh"

namespace codecomp::compress {

namespace {

/** Fold @p fields into @p seed with FNV-1a64 over their bytes. */
uint64_t
hashFields(uint64_t seed, const std::vector<uint64_t> &fields)
{
    ByteSink sink;
    sink.put64(seed);
    for (uint64_t field : fields)
        sink.put64(field);
    return fnv1a64(sink.bytes());
}

/**
 * Persistent entry file layout (big-endian, support/serialize.hh):
 *
 *   u32  magic   "CCCH"
 *   u16  version (kStoreVersion; bumped when the payload shape changes)
 *   u8   kind    (1 = Enumerate, 2 = Select)
 *   u64  key     (must match the file's own name)
 *   blob payload (serializeCandidates / serializeSelection)
 *   u64  checksum = fnv1a64(payload)
 *
 * Anything that deviates -- magic, version, kind, key, checksum,
 * truncation, trailing bytes, or a payload that fails structural
 * parsing -- quarantines the file and reads as a miss.
 */
constexpr uint32_t kStoreMagic = 0x43434348; // "CCCH"
constexpr uint16_t kStoreVersion = 1;

uint64_t
approxCandidateBytes(const PipelineCache::CandidateList &candidates)
{
    uint64_t bytes = 4;
    for (const Candidate &c : candidates)
        bytes += 8 + 4 * (c.seq.size() + c.positions.size());
    return bytes;
}

uint64_t
approxSelectionBytes(const CachedSelection &cached)
{
    uint64_t bytes = 16;
    for (const auto &entry : cached.selection.dict.entries)
        bytes += 4 + 4 * entry.size();
    bytes += 12 * cached.selection.placements.size();
    bytes += 4 * cached.selection.useCount.size();
    return bytes;
}

PipelineCache::CandidateList
parseCandidates(ByteSource &source)
{
    source.setContext("cached candidate list");
    PipelineCache::CandidateList candidates(source.get32());
    for (Candidate &c : candidates) {
        c.seq.resize(source.get32());
        for (isa::Word &word : c.seq)
            word = source.get32();
        c.positions.resize(source.get32());
        for (uint32_t &pos : c.positions)
            pos = source.get32();
    }
    return candidates;
}

CachedSelection
parseSelection(ByteSource &source)
{
    source.setContext("cached selection");
    CachedSelection cached;
    cached.selection.dict.entries.resize(source.get32());
    for (auto &entry : cached.selection.dict.entries) {
        entry.resize(source.get32());
        for (isa::Word &word : entry)
            word = source.get32();
    }
    cached.selection.placements.resize(source.get32());
    for (Placement &p : cached.selection.placements) {
        p.start = source.get32();
        p.length = source.get32();
        p.entryId = source.get32();
    }
    cached.selection.useCount.resize(source.get32());
    for (uint32_t &count : cached.selection.useCount)
        count = source.get32();
    cached.rounds = source.get32();
    return cached;
}

} // namespace

std::vector<uint8_t>
serializeCandidates(const PipelineCache::CandidateList &candidates)
{
    ByteSink sink;
    sink.put32(static_cast<uint32_t>(candidates.size()));
    for (const Candidate &c : candidates) {
        sink.put32(static_cast<uint32_t>(c.seq.size()));
        for (isa::Word word : c.seq)
            sink.put32(word);
        sink.put32(static_cast<uint32_t>(c.positions.size()));
        for (uint32_t pos : c.positions)
            sink.put32(pos);
    }
    return sink.take();
}

std::vector<uint8_t>
serializeSelection(const CachedSelection &cached)
{
    ByteSink sink;
    sink.put32(
        static_cast<uint32_t>(cached.selection.dict.entries.size()));
    for (const auto &entry : cached.selection.dict.entries) {
        sink.put32(static_cast<uint32_t>(entry.size()));
        for (isa::Word word : entry)
            sink.put32(word);
    }
    sink.put32(static_cast<uint32_t>(cached.selection.placements.size()));
    for (const Placement &p : cached.selection.placements) {
        sink.put32(p.start);
        sink.put32(p.length);
        sink.put32(p.entryId);
    }
    sink.put32(static_cast<uint32_t>(cached.selection.useCount.size()));
    for (uint32_t count : cached.selection.useCount)
        sink.put32(count);
    sink.put32(cached.rounds);
    return sink.take();
}

uint64_t
PipelineCache::programHash(const Program &program)
{
    // The serialized form covers everything a compression can read:
    // text, data, relocations, symbols, entry point.
    return fnv1a64(saveProgram(program));
}

uint64_t
PipelineCache::enumerateKey(uint64_t programHash,
                            const CompressorConfig &config)
{
    // Enumeration walks basic blocks collecting sequences of
    // 1..maxEntryLen instructions; nothing else in the config matters.
    // (minEntryLen is a GreedyConfig field the context derives as 1;
    // keyed here so a future knob cannot silently alias.)
    return hashFields(programHash, {1u, config.maxEntryLen});
}

uint64_t
PipelineCache::selectKey(uint64_t programHash,
                         const CompressorConfig &config)
{
    return hashFields(programHash,
                      {static_cast<uint64_t>(config.scheme),
                       config.maxEntries, config.maxEntryLen,
                       config.assumedCodewordNibbles,
                       static_cast<uint64_t>(config.strategy),
                       config.refitMaxRounds});
}

std::shared_ptr<const PipelineCache::CandidateList>
PipelineCache::findCandidates(uint64_t key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    EntryKey entryKey{static_cast<uint8_t>(Kind::Enumerate), key};
    auto it = entries_.find(entryKey);
    if (it != entries_.end()) {
        ++stats_.enumHits;
        touchLocked(it->second, entryKey);
        return it->second.candidates;
    }
    Entry loaded;
    if (loadFromDiskLocked(Kind::Enumerate, key, loaded)) {
        ++stats_.enumHits;
        std::shared_ptr<const CandidateList> product = loaded.candidates;
        insertLocked(Kind::Enumerate, key, std::move(loaded));
        return product;
    }
    ++stats_.enumMisses;
    return nullptr;
}

std::shared_ptr<const CachedSelection>
PipelineCache::findSelection(uint64_t key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    EntryKey entryKey{static_cast<uint8_t>(Kind::Select), key};
    auto it = entries_.find(entryKey);
    if (it != entries_.end()) {
        ++stats_.selectHits;
        touchLocked(it->second, entryKey);
        return it->second.selection;
    }
    Entry loaded;
    if (loadFromDiskLocked(Kind::Select, key, loaded)) {
        ++stats_.selectHits;
        std::shared_ptr<const CachedSelection> product = loaded.selection;
        insertLocked(Kind::Select, key, std::move(loaded));
        return product;
    }
    ++stats_.selectMisses;
    return nullptr;
}

void
PipelineCache::storeCandidates(
    uint64_t key, std::shared_ptr<const CandidateList> candidates)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Entry entry;
    entry.bytes = approxCandidateBytes(*candidates);
    entry.candidates = std::move(candidates);
    persistLocked(Kind::Enumerate, key, entry);
    insertLocked(Kind::Enumerate, key, std::move(entry));
}

void
PipelineCache::storeSelection(
    uint64_t key, std::shared_ptr<const CachedSelection> selection)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Entry entry;
    entry.bytes = approxSelectionBytes(*selection);
    entry.selection = std::move(selection);
    persistLocked(Kind::Select, key, entry);
    insertLocked(Kind::Select, key, std::move(entry));
}

void
PipelineCache::setCapacity(size_t maxEntries, uint64_t maxBytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    maxEntries_ = maxEntries;
    maxBytes_ = maxBytes;
    evictLocked();
}

bool
PipelineCache::setDiskStore(const std::string &dir)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec || !std::filesystem::is_directory(dir)) {
        CC_WARN("cache store '", dir, "' unusable (",
                ec ? ec.message() : "not a directory",
                "); persistence disabled");
        diskDir_.clear();
        return false;
    }
    diskDir_ = dir;
    return true;
}

size_t
PipelineCache::entryCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

PipelineCache::Stats
PipelineCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
PipelineCache::insertLocked(Kind kind, uint64_t key, Entry entry)
{
    EntryKey entryKey{static_cast<uint8_t>(kind), key};
    auto [it, inserted] = entries_.emplace(entryKey, std::move(entry));
    if (!inserted)
        return; // first store wins; concurrent fills are identical
    lru_.push_front(entryKey);
    it->second.lruIt = lru_.begin();
    totalBytes_ += it->second.bytes;
    evictLocked();
}

void
PipelineCache::touchLocked(Entry &entry, EntryKey entryKey)
{
    lru_.erase(entry.lruIt);
    lru_.push_front(entryKey);
    entry.lruIt = lru_.begin();
}

void
PipelineCache::evictLocked()
{
    while (!lru_.empty() &&
           ((maxEntries_ && entries_.size() > maxEntries_) ||
            (maxBytes_ && totalBytes_ > maxBytes_))) {
        auto it = entries_.find(lru_.back());
        CC_ASSERT(it != entries_.end(), "LRU list out of sync");
        totalBytes_ -= it->second.bytes;
        entries_.erase(it);
        lru_.pop_back();
        ++stats_.evictions;
    }
}

std::string
PipelineCache::entryPath(Kind kind, uint64_t key) const
{
    char name[40];
    std::snprintf(name, sizeof(name), "%s-%016llx.cce",
                  kind == Kind::Enumerate ? "enum" : "sel",
                  static_cast<unsigned long long>(key));
    return (std::filesystem::path(diskDir_) / name).string();
}

void
PipelineCache::persistLocked(Kind kind, uint64_t key, const Entry &entry)
{
    if (diskDir_.empty())
        return;
    std::string path = entryPath(kind, key);
    std::error_code ec;
    if (std::filesystem::exists(path, ec))
        return; // an identical product is already on disk

    ByteSink sink;
    sink.put32(kStoreMagic);
    sink.put16(kStoreVersion);
    sink.put8(static_cast<uint8_t>(kind));
    sink.put64(key);
    std::vector<uint8_t> payload =
        kind == Kind::Enumerate ? serializeCandidates(*entry.candidates)
                                : serializeSelection(*entry.selection);
    uint64_t checksum = fnv1a64(payload);
    sink.putBlob(payload);
    sink.put64(checksum);

    // Temp-file + rename: a crash mid-write leaves a .tmp file (ignored
    // by readers), never a half-written entry under the real name.
    std::string temp = path + ".tmp" + std::to_string(::getpid());
    if (tryWriteFile(temp, sink.bytes())) {
        CC_WARN("cache store write failed for '", temp,
                "'; entry not persisted");
        return;
    }
    std::filesystem::rename(temp, path, ec);
    if (ec) {
        CC_WARN("cache store rename failed for '", path, "': ",
                ec.message());
        std::filesystem::remove(temp, ec);
        return;
    }
    ++stats_.persistStores;
}

bool
PipelineCache::loadFromDiskLocked(Kind kind, uint64_t key, Entry &out)
{
    if (diskDir_.empty())
        return false;
    std::string path = entryPath(kind, key);
    Result<std::vector<uint8_t>> bytes = tryReadFile(path);
    if (!bytes.ok()) {
        ++stats_.persistMisses;
        return false;
    }
    try {
        ByteSource source(bytes.value());
        source.setContext("cache entry header");
        if (source.get32() != kStoreMagic)
            throw LoadFailure({LoadStatus::BadMagic, 0,
                               "cache entry header", path});
        if (source.get16() != kStoreVersion)
            throw LoadFailure({LoadStatus::BadVersion, 4,
                               "cache entry header", path});
        if (source.get8() != static_cast<uint8_t>(kind) ||
            source.get64() != key)
            throw LoadFailure({LoadStatus::BadValue, 6,
                               "cache entry header",
                               "kind/key mismatch: " + path});
        std::vector<uint8_t> payload = source.getBlob();
        uint64_t checksum = source.get64();
        if (!source.atEnd())
            throw LoadFailure({LoadStatus::TrailingBytes, source.pos(),
                               "cache entry", path});
        if (fnv1a64(payload) != checksum)
            throw LoadFailure({LoadStatus::BadChecksum, 0,
                               "cache entry payload", path});
        ByteSource body(payload);
        if (kind == Kind::Enumerate) {
            out.candidates = std::make_shared<const CandidateList>(
                parseCandidates(body));
            out.bytes = approxCandidateBytes(*out.candidates);
        } else {
            out.selection = std::make_shared<const CachedSelection>(
                parseSelection(body));
            out.bytes = approxSelectionBytes(*out.selection);
        }
        if (!body.atEnd())
            throw LoadFailure({LoadStatus::TrailingBytes, body.pos(),
                               "cache entry payload", path});
    } catch (const std::exception &) {
        // Damaged entry (LoadFailure, or bad_alloc from an absurd
        // declared count): quarantine it so the slot recomputes
        // cleanly (and the file stays inspectable), count it, miss.
        quarantineLocked(path);
        ++stats_.persistCorrupt;
        return false;
    }
    ++stats_.persistHits;
    return true;
}

void
PipelineCache::quarantineLocked(const std::string &path)
{
    std::error_code ec;
    std::filesystem::rename(path, path + ".quarantined", ec);
    if (ec)
        std::filesystem::remove(path, ec);
}

} // namespace codecomp::compress
