/**
 * @file
 * The operand-factored codec (after *MIPS Code Compression*,
 * PAPERS.md): the compressed stream keeps the nibble-aligned codeword
 * geometry of the nibble scheme (nibble_geometry.hh), but the
 * dictionary is stored factored into per-stream tables instead of flat
 * instruction words.
 *
 * Every ppclite word splits, by primary-opcode format, into three
 * fields:
 *
 *   skeleton -- the word with its register and immediate fields zeroed
 *               (primary opcode, extended opcode, Rc/AA/LK bits);
 *   regs     -- the contiguous register-operand field block (rt/ra for
 *               D-forms and branches, rt/ra/rb for X-forms) as one
 *               packed value;
 *   imm      -- the immediate/displacement field value.
 *
 * Dictionary-worthy code reuses a handful of skeletons (~26 across
 * every benchmark), so the serialized dictionary stores a
 * unique-skeleton table once and then, per word, a bit-packed record:
 * a ~5-bit skeleton index plus the register and immediate fields raw
 * at their exact widths. X-form words shrink from 32 to ~20 bits and
 * D-forms to ~31; entry boundaries (length bytes) are structural
 * metadata, priced at zero like the flat layout's. A register-tuple
 * dictionary was tried first and measured out: real selections have
 * hundreds of distinct tuples, so the table costs more than the
 * index stream saves (EXPERIMENTS.md).
 *
 * Factoring is bijective (fuseWord inverts factorWord exactly), and the
 * loader enforces canonical form: a skeleton with operand bits set, an
 * over-wide register tuple, or an over-wide immediate is rejected as a
 * BadValue before any word reaches the processors.
 */

#ifndef CODECOMP_COMPRESS_OPFAC_HH
#define CODECOMP_COMPRESS_OPFAC_HH

#include "compress/codec.hh"

namespace codecomp::compress {

/** Operand field geometry of one primary opcode: bit positions and
 *  widths of the contiguous register block and the immediate field
 *  (width 0 = the format has no such field). */
struct OperandFields
{
    uint8_t regShift = 0;
    uint8_t regBits = 0;
    uint8_t immShift = 0;
    uint8_t immBits = 0;

    uint32_t regMask() const { return ((1u << regBits) - 1) << regShift; }
    uint32_t
    immMask() const
    {
        return (immBits ? (1u << immBits) - 1 : 0u) << immShift;
    }

    /** Bytes the immediate field occupies in the serialized stream. */
    unsigned immBytes() const { return (immBits + 7u) / 8u; }
};

/** Field geometry for @p primop (the word's top six bits). Unknown
 *  opcodes get empty fields: the whole word is skeleton, so factoring
 *  stays total and bijective even over illegal words. */
OperandFields operandFields(uint8_t primop);

/** One word split into its three streams. */
struct FactoredWord
{
    isa::Word skeleton = 0;
    uint16_t regs = 0;
    uint32_t imm = 0;

    bool
    operator==(const FactoredWord &other) const
    {
        return skeleton == other.skeleton && regs == other.regs &&
               imm == other.imm;
    }
};

/** Split @p word by its primary opcode's field geometry. */
FactoredWord factorWord(isa::Word word);

/** Exact inverse of factorWord for canonical inputs. */
isa::Word fuseWord(const FactoredWord &factored);

/** True when the triple is its own factoring: the skeleton carries no
 *  operand bits and both fields fit their widths. Loader-side guard
 *  against crafted dictionaries. */
bool isCanonicalFactoring(const FactoredWord &factored);

/** The operand-factored codec singleton (registered in codec.cc). */
const SchemeCodec &operandFactoredCodec();

} // namespace codecomp::compress

#endif // CODECOMP_COMPRESS_OPFAC_HH
