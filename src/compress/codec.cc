#include "compress/codec.hh"

#include <cctype>

#include "compress/encoding.hh"
#include "compress/opfac.hh"
#include "support/logging.hh"

namespace codecomp::compress {

// ---- generic table-driven decode ----

std::optional<uint32_t>
SchemeCodec::decodeCodeword(NibbleReader &reader) const
{
    const DecodeTables &t = tables();
    const ItemClass &cls = t.classes[reader.getNibbles(t.prefixNibbles)];
    if (!cls.isCodeword) {
        reader.seek(reader.pos() - cls.rewindNibbles);
        return std::nullopt;
    }
    uint32_t index =
        cls.indexNibbles ? reader.getNibbles(cls.indexNibbles) : 0;
    return cls.rankBase + index;
}

std::optional<unsigned>
SchemeCodec::peekItemNibbles(NibbleReader reader) const
{
    const DecodeTables &t = tables();
    size_t remaining = reader.size() - reader.pos();
    if (remaining < t.prefixNibbles)
        return std::nullopt;
    const ItemClass &cls = t.classes[reader.getNibbles(t.prefixNibbles)];
    if (cls.nibbles > remaining)
        return std::nullopt;
    return cls.nibbles;
}

// ---- default accounting ----

EmitAccounting
SchemeCodec::instructionAccounting() const
{
    // Every scheme spends the 8 word nibbles; anything beyond that in
    // the item length is escape overhead (the nibble schemes' escape
    // nibble; the byte schemes have none).
    EmitAccounting accounting;
    accounting.insnNibbles = 2 * isa::instBytes;
    accounting.escapeNibbles = params().insnNibbles - accounting.insnNibbles;
    return accounting;
}

EmitAccounting
SchemeCodec::codewordAccounting(uint32_t rank) const
{
    EmitAccounting accounting;
    accounting.codewordNibbles = codewordNibbles(rank);
    return accounting;
}

// ---- default (flat) dictionary form ----

size_t
SchemeCodec::dictionaryBytes(const std::vector<DictEntry> &entries) const
{
    size_t total = 0;
    for (const DictEntry &entry : entries)
        total += entry.size() * isa::instBytes;
    return total;
}

void
SchemeCodec::putDictionary(ByteSink &sink,
                           const std::vector<DictEntry> &entries) const
{
    for (const DictEntry &entry : entries) {
        sink.put32(static_cast<uint32_t>(entry.size()));
        for (isa::Word word : entry)
            sink.put32(word);
    }
}

std::optional<std::string>
SchemeCodec::getDictionary(ByteSource &source, uint32_t entryCount,
                           uint32_t maxEntryWords,
                           std::vector<DictEntry> &entries) const
{
    entries.resize(entryCount);
    for (DictEntry &entry : entries) {
        uint32_t length = source.get32();
        if (length == 0 || length > maxEntryWords)
            return "dictionary entry length " + std::to_string(length) +
                   " outside 1.." + std::to_string(maxEntryWords);
        if (length > source.remaining() / 4)
            return "dictionary entry of " + std::to_string(length) +
                   " words exceeds the payload";
        entry.reserve(length);
        for (uint32_t k = 0; k < length; ++k)
            entry.push_back(source.get32());
    }
    return std::nullopt;
}

// ---- registry ----

const std::vector<const SchemeCodec *> &
allCodecs()
{
    // The one list every consumer iterates. A new backend adds its
    // accessor here (and its enum member in codec.hh); nothing else in
    // the tree enumerates schemes.
    static const std::vector<const SchemeCodec *> registry = {
        &baselineCodec(),
        &oneByteCodec(),
        &nibbleCodec(),
        &operandFactoredCodec(),
    };
    return registry;
}

std::vector<Scheme>
allSchemes()
{
    std::vector<Scheme> schemes;
    for (const SchemeCodec *codec : allCodecs())
        schemes.push_back(codec->id());
    return schemes;
}

const SchemeCodec &
schemeCodec(Scheme scheme)
{
    for (const SchemeCodec *codec : allCodecs())
        if (codec->id() == scheme)
            return *codec;
    CC_PANIC("bad scheme");
}

const SchemeCodec *
findSchemeCodec(uint8_t id)
{
    for (const SchemeCodec *codec : allCodecs())
        if (static_cast<uint8_t>(codec->id()) == id)
            return codec;
    return nullptr;
}

// ---- registry-backed wrappers ----

SchemeParams
schemeParams(Scheme scheme)
{
    return schemeCodec(scheme).params();
}

unsigned
codewordNibbles(Scheme scheme, uint32_t rank)
{
    return schemeCodec(scheme).codewordNibbles(rank);
}

void
emitCodeword(NibbleWriter &writer, Scheme scheme, uint32_t rank)
{
    schemeCodec(scheme).emitCodeword(writer, rank);
}

void
emitInstruction(NibbleWriter &writer, Scheme scheme, uint32_t word)
{
    schemeCodec(scheme).emitInstruction(writer, word);
}

const DecodeTables &
decodeTables(Scheme scheme)
{
    return schemeCodec(scheme).tables();
}

std::optional<uint32_t>
decodeCodeword(NibbleReader &reader, Scheme scheme)
{
    return schemeCodec(scheme).decodeCodeword(reader);
}

std::optional<unsigned>
peekItemNibbles(NibbleReader reader, Scheme scheme)
{
    return schemeCodec(scheme).peekItemNibbles(reader);
}

std::optional<uint32_t>
referenceDecodeCodeword(NibbleReader &reader, Scheme scheme)
{
    return schemeCodec(scheme).referenceDecodeCodeword(reader);
}

std::optional<unsigned>
referencePeekItemNibbles(NibbleReader reader, Scheme scheme)
{
    return schemeCodec(scheme).referencePeekItemNibbles(reader);
}

const char *
schemeName(Scheme scheme)
{
    return schemeCodec(scheme).name();
}

const char *
schemeCliName(Scheme scheme)
{
    return schemeCodec(scheme).cliName();
}

std::optional<Scheme>
parseSchemeName(std::string_view name)
{
    for (const SchemeCodec *codec : allCodecs())
        if (name == codec->cliName())
            return codec->id();
    return std::nullopt;
}

std::string
schemeTestName(Scheme scheme)
{
    std::string token;
    bool upper = true;
    for (const char *p = schemeCliName(scheme); *p; ++p) {
        if (!std::isalnum(static_cast<unsigned char>(*p))) {
            upper = true;
            continue;
        }
        token += upper ? static_cast<char>(
                             std::toupper(static_cast<unsigned char>(*p)))
                       : *p;
        upper = false;
    }
    return token;
}

std::string
schemeCliNames(std::string_view separator)
{
    std::string names;
    for (const SchemeCodec *codec : allCodecs()) {
        if (!names.empty())
            names += separator;
        names += codec->cliName();
    }
    return names;
}

} // namespace codecomp::compress
