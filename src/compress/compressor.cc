#include "compress/compressor.hh"

#include "compress/pipeline.hh"

namespace codecomp::compress {

CompressedImage
compressProgram(const Program &program, const CompressorConfig &config)
{
    return compressProgram(program, config, nullptr);
}

CompressedImage
compressProgram(const Program &program, const CompressorConfig &config,
                PipelineStats *stats)
{
    PipelineContext ctx(program, config);
    PipelineStats run = Pipeline::standard().run(ctx);
    if (stats)
        *stats = std::move(run);
    return std::move(ctx.image);
}

CompressedImage
compressWithSelection(const Program &program, const CompressorConfig &config,
                      SelectionResult selection)
{
    PipelineContext ctx(program, config);
    ctx.selection = std::move(selection);
    Pipeline::fromSelection().run(ctx);
    return std::move(ctx.image);
}

} // namespace codecomp::compress
