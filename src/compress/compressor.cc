#include "compress/compressor.hh"

#include <algorithm>
#include <numeric>

#include "compress/greedy.hh"
#include "isa/builder.hh"
#include "support/logging.hh"

namespace codecomp::compress {

namespace {

/** One slot of the compressed layout. */
struct LayoutItem
{
    enum class Kind : uint8_t {
        Insn,     //!< original instruction (branches patched at emission)
        Codeword, //!< dictionary reference
        SynFixed, //!< synthetic instruction emitted verbatim
        SynLis,   //!< lis r2, hi16(pointer to targetIndex)
        SynOri,   //!< ori r2, r2, lo16(pointer to targetIndex)
    };

    Kind kind;
    isa::Word word = 0;
    uint32_t entryId = 0;
    uint32_t origIndex = UINT32_MAX;   //!< set on items that begin at an
                                       //!< original instruction
    uint32_t targetIndex = UINT32_MAX; //!< branch/pointer target
};

constexpr uint8_t regFar = 2; //!< reserved for far-branch stubs

/** Field width of a relative branch's displacement. */
unsigned
dispBits(const isa::Inst &inst)
{
    return inst.op == isa::Op::B ? 24 : 14;
}

class Layout
{
  public:
    Layout(const Program &program, const SchemeParams &params,
           Scheme scheme, const SelectionResult &selection,
           const std::vector<uint32_t> &rank_of_entry)
        : program_(program), params_(params), scheme_(scheme),
          rankOfEntry_(rank_of_entry)
    {
        buildItems(selection);
    }

    /** Iterate address assignment + far-branch expansion to fixpoint. */
    uint32_t
    fixpoint()
    {
        uint32_t expansions = 0;
        for (;;) {
            assignAddresses();
            std::vector<size_t> far = findFarBranches();
            if (far.empty())
                return expansions;
            expansions += static_cast<uint32_t>(far.size());
            expand(far);
        }
    }

    const std::vector<LayoutItem> &items() const { return items_; }
    const std::vector<uint32_t> &itemAddr() const { return item_addr_; }
    const std::unordered_map<uint32_t, uint32_t> &addrMap() const
    {
        return addr_map_;
    }

    /** Patched displacement (in units) for the branch item at @p i. */
    int32_t
    branchDisp(size_t i) const
    {
        const LayoutItem &item = items_[i];
        uint32_t target_nib = addr_map_.at(item.targetIndex);
        int64_t delta = static_cast<int64_t>(target_nib) -
                        static_cast<int64_t>(item_addr_[i]);
        CC_ASSERT(delta % params_.unitNibbles == 0,
                  "branch target not unit-aligned");
        return static_cast<int32_t>(delta / params_.unitNibbles);
    }

  private:
    void
    buildItems(const SelectionResult &selection)
    {
        size_t placement = 0;
        uint32_t index = 0;
        uint32_t n = static_cast<uint32_t>(program_.text.size());
        while (index < n) {
            if (placement < selection.placements.size() &&
                selection.placements[placement].start == index) {
                const Placement &p = selection.placements[placement];
                LayoutItem item;
                item.kind = LayoutItem::Kind::Codeword;
                item.entryId = p.entryId;
                item.origIndex = index;
                items_.push_back(item);
                index += p.length;
                ++placement;
                continue;
            }
            LayoutItem item;
            item.kind = LayoutItem::Kind::Insn;
            item.word = program_.text[index];
            item.origIndex = index;
            isa::Inst inst = isa::decode(item.word);
            if (inst.isRelativeBranch())
                item.targetIndex = program_.branchTargetIndex(index);
            items_.push_back(item);
            ++index;
        }
        CC_ASSERT(placement == selection.placements.size(),
                  "placements misaligned with text walk");
    }

    unsigned
    itemNibbles(const LayoutItem &item) const
    {
        if (item.kind == LayoutItem::Kind::Codeword)
            return codewordNibbles(scheme_,
                                   rankOfEntry_[item.entryId]);
        return params_.insnNibbles;
    }

    void
    assignAddresses()
    {
        item_addr_.resize(items_.size());
        addr_map_.clear();
        uint32_t addr = 0;
        for (size_t i = 0; i < items_.size(); ++i) {
            item_addr_[i] = addr;
            if (items_[i].origIndex != UINT32_MAX)
                addr_map_.emplace(items_[i].origIndex, addr);
            addr += itemNibbles(items_[i]);
        }
        total_nibbles_ = addr;
    }

    std::vector<size_t>
    findFarBranches() const
    {
        std::vector<size_t> far;
        for (size_t i = 0; i < items_.size(); ++i) {
            const LayoutItem &item = items_[i];
            if (item.kind != LayoutItem::Kind::Insn ||
                item.targetIndex == UINT32_MAX)
                continue;
            isa::Inst inst = isa::decode(item.word);
            if (!isa::fitsSigned(branchDisp(i), dispBits(inst)))
                far.push_back(i);
        }
        return far;
    }

    void
    expand(const std::vector<size_t> &far)
    {
        std::vector<LayoutItem> next;
        next.reserve(items_.size() + far.size() * 6);
        size_t far_pos = 0;
        for (size_t i = 0; i < items_.size(); ++i) {
            if (far_pos >= far.size() || far[far_pos] != i) {
                next.push_back(items_[i]);
                continue;
            }
            ++far_pos;
            const LayoutItem &item = items_[i];
            isa::Inst inst = isa::decode(item.word);
            CC_ASSERT(!inst.isCall() || inst.op == isa::Op::B,
                      "cannot far-expand a linking conditional branch");

            auto syn = [](isa::Word word) {
                LayoutItem s;
                s.kind = LayoutItem::Kind::SynFixed;
                s.word = word;
                return s;
            };
            auto ptr_pair = [&item](LayoutItem::Kind kind) {
                LayoutItem s;
                s.kind = kind;
                s.targetIndex = item.targetIndex;
                return s;
            };

            size_t first = next.size();
            if (inst.op == isa::Op::Bc) {
                CC_ASSERT(inst.bo !=
                              static_cast<uint8_t>(isa::Bo::DecNz),
                          "cannot far-expand a CTR-decrementing branch");
                CC_ASSERT(!inst.lk, "cannot far-expand bcl");
                // bc cond -> trampoline (two instructions ahead);
                // b -> past the stub (five instructions ahead).
                int32_t two = static_cast<int32_t>(
                    2 * params_.insnNibbles / params_.unitNibbles);
                int32_t five = static_cast<int32_t>(
                    5 * params_.insnNibbles / params_.unitNibbles);
                next.push_back(syn(isa::encode(isa::bc(
                    static_cast<isa::Bo>(inst.bo), inst.bi, two))));
                next.push_back(syn(isa::encode(isa::b(five))));
            }
            next.push_back(ptr_pair(LayoutItem::Kind::SynLis));
            next.push_back(ptr_pair(LayoutItem::Kind::SynOri));
            next.push_back(syn(isa::encode(isa::mtctr(regFar))));
            next.push_back(syn(isa::encode(
                inst.lk ? isa::bctrl() : isa::bctr())));
            // The stub inherits the original instruction's identity so
            // branches targeting it still resolve.
            next[first].origIndex = item.origIndex;
        }
        items_ = std::move(next);
    }

    const Program &program_;
    SchemeParams params_;
    Scheme scheme_;
    const std::vector<uint32_t> &rankOfEntry_;
    std::vector<LayoutItem> items_;
    std::vector<uint32_t> item_addr_;
    std::unordered_map<uint32_t, uint32_t> addr_map_;
    uint32_t total_nibbles_ = 0;
};

/** Frequency ranking: most-used entry gets rank 0 (shortest codeword). */
std::vector<uint32_t>
rankEntries(const SelectionResult &selection)
{
    std::vector<uint32_t> order(selection.dict.entries.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&selection](uint32_t a, uint32_t b) {
                         return selection.useCount[a] >
                                selection.useCount[b];
                     });
    std::vector<uint32_t> rank_of_entry(order.size());
    for (uint32_t rank = 0; rank < order.size(); ++rank)
        rank_of_entry[order[rank]] = rank;
    return rank_of_entry;
}

void
accountInstruction(Composition &comp, Scheme scheme)
{
    if (scheme == Scheme::Nibble)
        comp.escapeNibbles += 1;
    comp.insnNibbles += 8;
}

void
accountCodeword(Composition &comp, Scheme scheme, unsigned nibbles)
{
    if (scheme == Scheme::Baseline) {
        comp.escapeNibbles += 2;
        comp.codewordNibbles += 2;
    } else {
        comp.codewordNibbles += nibbles;
    }
}

} // namespace

CompressedImage
compressWithSelection(const Program &program, const CompressorConfig &config,
                      SelectionResult selection)
{
    CC_ASSERT(program.dataBase != 0, "program not finalized");
    SchemeParams params = schemeParams(config.scheme);

    CompressedImage image;
    image.scheme = config.scheme;
    image.originalTextBytes = program.textBytes();
    image.dataBase = program.dataBase;
    image.rankOfEntry = rankEntries(selection);
    image.entriesByRank.resize(selection.dict.entries.size());
    for (uint32_t id = 0; id < selection.dict.entries.size(); ++id)
        image.entriesByRank[image.rankOfEntry[id]] =
            selection.dict.entries[id];

    Layout layout(program, params, config.scheme, selection,
                  image.rankOfEntry);
    image.farBranchExpansions = layout.fixpoint();
    image.selection = std::move(selection);

    // ---- emission ----
    NibbleWriter writer;
    const auto &items = layout.items();
    for (size_t i = 0; i < items.size(); ++i) {
        const LayoutItem &item = items[i];
        CC_ASSERT(writer.nibbleCount() == layout.itemAddr()[i],
                  "emission drifted from layout");
        switch (item.kind) {
          case LayoutItem::Kind::Insn: {
            isa::Word word = item.word;
            if (item.targetIndex != UINT32_MAX) {
                isa::Inst inst = isa::decode(word);
                inst.disp = layout.branchDisp(i);
                inst.aa = false;
                word = isa::encode(inst);
            }
            emitInstruction(writer, config.scheme, word);
            accountInstruction(image.composition, config.scheme);
            break;
          }
          case LayoutItem::Kind::SynFixed:
            emitInstruction(writer, config.scheme, item.word);
            accountInstruction(image.composition, config.scheme);
            break;
          case LayoutItem::Kind::SynLis:
          case LayoutItem::Kind::SynOri: {
            uint32_t pointer = CompressedImage::nibbleBase +
                               layout.addrMap().at(item.targetIndex);
            isa::Inst inst =
                item.kind == LayoutItem::Kind::SynLis
                    ? isa::lis(regFar,
                               static_cast<int32_t>(static_cast<int16_t>(
                                   pointer >> 16)))
                    : isa::ori(regFar, regFar,
                               static_cast<int32_t>(pointer & 0xffff));
            emitInstruction(writer, config.scheme, isa::encode(inst));
            accountInstruction(image.composition, config.scheme);
            break;
          }
          case LayoutItem::Kind::Codeword: {
            uint32_t rank = image.rankOfEntry[item.entryId];
            emitCodeword(writer, config.scheme, rank);
            accountCodeword(image.composition, config.scheme,
                            codewordNibbles(config.scheme, rank));
            break;
          }
        }
    }
    image.textNibbles = writer.nibbleCount();
    image.text = writer.bytes();
    image.addrMap = layout.addrMap();
    image.entryPointNibble = image.addrMap.at(program.entryIndex);
    image.composition.dictNibbles = image.dictionaryBytes() * 2;

    // The two size accountings must agree (DESIGN.md section 7).
    CC_ASSERT(image.composition.totalNibbles() ==
                  image.textNibbles + image.dictionaryBytes() * 2,
              "composition does not sum to image size");

    // ---- jump-table re-patch ----
    image.data = program.data;
    for (const CodeReloc &reloc : program.codeRelocs) {
        uint32_t pointer = image.codePointer(reloc.targetIndex);
        image.data[reloc.dataOffset] = static_cast<uint8_t>(pointer >> 24);
        image.data[reloc.dataOffset + 1] =
            static_cast<uint8_t>(pointer >> 16);
        image.data[reloc.dataOffset + 2] =
            static_cast<uint8_t>(pointer >> 8);
        image.data[reloc.dataOffset + 3] = static_cast<uint8_t>(pointer);
    }
    return image;
}

CompressedImage
compressProgram(const Program &program, const CompressorConfig &config)
{
    SchemeParams params = schemeParams(config.scheme);
    GreedyConfig greedy;
    greedy.maxEntries = std::min(config.maxEntries, params.maxCodewords);
    greedy.maxEntryLen = config.maxEntryLen;
    greedy.insnNibbles = params.insnNibbles;
    greedy.codewordNibbles =
        config.assumedCodewordNibbles
            ? config.assumedCodewordNibbles
            : params.defaultAssumedCodewordNibbles;
    return compressWithSelection(program, config,
                                 selectGreedy(program, greedy));
}

} // namespace codecomp::compress
