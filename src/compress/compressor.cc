#include "compress/compressor.hh"

#include "compress/pipeline.hh"

namespace codecomp::compress {

const char *
layoutModeName(LayoutMode mode)
{
    switch (mode) {
    case LayoutMode::Linear: return "linear";
    case LayoutMode::HotCold: return "hotcold";
    }
    return "?";
}

std::optional<LayoutMode>
parseLayoutModeName(std::string_view name)
{
    if (name == "linear")
        return LayoutMode::Linear;
    if (name == "hotcold")
        return LayoutMode::HotCold;
    return std::nullopt;
}

CompressedImage
compressProgram(const Program &program, const CompressorConfig &config)
{
    return compressProgram(program, config, nullptr);
}

CompressedImage
compressProgram(const Program &program, const CompressorConfig &config,
                PipelineStats *stats)
{
    PipelineContext ctx(program, config);
    PipelineStats run = Pipeline::standard().run(ctx);
    if (stats)
        *stats = std::move(run);
    return std::move(ctx.image);
}

CompressedImage
compressWithSelection(const Program &program, const CompressorConfig &config,
                      SelectionResult selection)
{
    PipelineContext ctx(program, config);
    ctx.selection = std::move(selection);
    Pipeline::fromSelection().run(ctx);
    return std::move(ctx.image);
}

} // namespace codecomp::compress
