#include "compress/encoding.hh"

#include <array>

#include "compress/nibble_geometry.hh"
#include "isa/isa.hh"
#include "support/logging.hh"

namespace codecomp::compress {

namespace {

/** Escape byte for 5-bit codeword group @p group (0..31): the high six
 *  bits are one of the eight illegal primary opcodes. */
constexpr uint8_t
escapeByte(uint32_t group)
{
    uint8_t primop = isa::illegalPrimOps[group / 4];
    return static_cast<uint8_t>((primop << 2) | (group % 4));
}

/** The eight illegal primary opcodes must be pairwise distinct, or two
 *  escape bytes would alias one group and decode would be ambiguous. */
constexpr bool
illegalPrimOpsDistinct()
{
    for (size_t i = 0; i < isa::illegalPrimOps.size(); ++i)
        for (size_t j = i + 1; j < isa::illegalPrimOps.size(); ++j)
            if (isa::illegalPrimOps[i] == isa::illegalPrimOps[j])
                return false;
    return true;
}
static_assert(illegalPrimOpsDistinct(),
              "illegal primary opcodes alias: escape bytes ambiguous");

/** 256-entry inverse of escapeByte: group for a byte, -1 if legal.
 *  Replaces a linear scan of illegalPrimOps on the per-byte decode hot
 *  path. */
constexpr std::array<int8_t, 256>
buildEscapeGroupTable()
{
    std::array<int8_t, 256> table{};
    for (auto &slot : table)
        slot = -1;
    for (uint32_t group = 0; group < 32; ++group)
        table[escapeByte(group)] = static_cast<int8_t>(group);
    return table;
}
constexpr std::array<int8_t, 256> escapeGroupTable =
    buildEscapeGroupTable();

/** Group for an escape byte, or nullopt if the byte is a legal opcode
 *  byte (one table lookup). */
inline std::optional<uint32_t>
escapeGroup(uint8_t byte)
{
    int8_t group = escapeGroupTable[byte];
    if (group < 0)
        return std::nullopt;
    return static_cast<uint32_t>(group);
}

/** Baseline / OneByte: the first byte classifies -- an illegal primary
 *  opcode marks a codeword, any legal byte begins a plain instruction
 *  (which decodeCodeword pushes back whole, hence the 2-nibble
 *  rewind). */
constexpr DecodeTables
buildByteEscapeTables(bool baseline)
{
    DecodeTables tables{};
    tables.prefixNibbles = 2;
    for (uint32_t byte = 0; byte < 256; ++byte) {
        ItemClass &cls = tables.classes[byte];
        int8_t group = escapeGroupTable[byte];
        if (group < 0)
            cls = {8, 0, 0, 2, 0};
        else if (baseline)
            cls = {4, 1, 2, 0, static_cast<uint32_t>(group) * 256};
        else
            cls = {2, 1, 0, 0, static_cast<uint32_t>(group)};
    }
    return tables;
}

constexpr DecodeTables nibbleTables =
    nibgeom::buildTables(/*insnNibbles=*/9);
constexpr DecodeTables baselineTables = buildByteEscapeTables(true);
constexpr DecodeTables oneByteTables = buildByteEscapeTables(false);

/** Shared by Baseline and OneByte: a plain instruction is emitted
 *  verbatim, so its first byte must not alias an escape byte. */
void
emitByteSchemeInstruction(NibbleWriter &writer, isa::Word word)
{
    CC_ASSERT(!isa::isIllegalPrimOp(isa::primOpOf(word)),
              "illegal opcode would alias an escape byte");
    writer.putWord(word);
}

class BaselineCodec final : public SchemeCodec
{
  public:
    Scheme id() const override { return Scheme::Baseline; }
    const char *name() const override { return "baseline-2byte"; }
    const char *cliName() const override { return "baseline"; }
    const char *
    summary() const override
    {
        return "2-byte escape+index codewords, up to 8192 entries "
               "(paper 4.1)";
    }

    SchemeParams
    params() const override
    {
        // Codewords are 2-byte aligned; instructions cost 8 nibbles.
        return {4, 8, 8192, 4};
    }

    const DecodeTables &tables() const override { return baselineTables; }

    unsigned
    codewordNibbles(uint32_t rank) const override
    {
        CC_ASSERT(rank < 8192, "baseline rank range");
        return 4;
    }

    void
    emitCodeword(NibbleWriter &writer, uint32_t rank) const override
    {
        CC_ASSERT(rank < 8192, "baseline rank range");
        writer.putNibbles(escapeByte(rank / 256), 2);
        writer.putNibbles(rank % 256, 2);
    }

    void
    emitInstruction(NibbleWriter &writer, isa::Word word) const override
    {
        emitByteSchemeInstruction(writer, word);
    }

    std::optional<uint32_t>
    referenceDecodeCodeword(NibbleReader &reader) const override
    {
        uint8_t first = static_cast<uint8_t>(reader.getNibbles(2));
        auto group = escapeGroup(first);
        if (!group) {
            reader.seek(reader.pos() - 2); // plain instruction
            return std::nullopt;
        }
        uint32_t index = reader.getNibbles(2);
        return *group * 256 + index;
    }

    std::optional<unsigned>
    referencePeekItemNibbles(NibbleReader reader) const override
    {
        size_t remaining = reader.size() - reader.pos();
        if (remaining < 2)
            return std::nullopt;
        uint8_t first = static_cast<uint8_t>(reader.getNibbles(2));
        unsigned need = escapeGroup(first) ? 4u : 8u;
        if (need > remaining)
            return std::nullopt;
        return need;
    }

    EmitAccounting
    codewordAccounting(uint32_t) const override
    {
        // The escape byte is overhead, the index byte is payload.
        EmitAccounting accounting;
        accounting.escapeNibbles = 2;
        accounting.codewordNibbles = 2;
        return accounting;
    }
};

class OneByteCodec final : public SchemeCodec
{
  public:
    Scheme id() const override { return Scheme::OneByte; }
    const char *name() const override { return "one-byte"; }
    const char *cliName() const override { return "onebyte"; }
    const char *
    summary() const override
    {
        return "1-byte escape-only codewords, up to 32 entries "
               "(paper 4.1.2)";
    }

    SchemeParams params() const override { return {2, 8, 32, 2}; }

    const DecodeTables &tables() const override { return oneByteTables; }

    unsigned
    codewordNibbles(uint32_t rank) const override
    {
        CC_ASSERT(rank < 32, "one-byte rank range");
        return 2;
    }

    void
    emitCodeword(NibbleWriter &writer, uint32_t rank) const override
    {
        CC_ASSERT(rank < 32, "one-byte rank range");
        writer.putNibbles(escapeByte(rank), 2);
    }

    void
    emitInstruction(NibbleWriter &writer, isa::Word word) const override
    {
        emitByteSchemeInstruction(writer, word);
    }

    std::optional<uint32_t>
    referenceDecodeCodeword(NibbleReader &reader) const override
    {
        uint8_t first = static_cast<uint8_t>(reader.getNibbles(2));
        auto group = escapeGroup(first);
        if (!group) {
            reader.seek(reader.pos() - 2);
            return std::nullopt;
        }
        return *group;
    }

    std::optional<unsigned>
    referencePeekItemNibbles(NibbleReader reader) const override
    {
        size_t remaining = reader.size() - reader.pos();
        if (remaining < 2)
            return std::nullopt;
        uint8_t first = static_cast<uint8_t>(reader.getNibbles(2));
        unsigned need = escapeGroup(first) ? 2u : 8u;
        if (need > remaining)
            return std::nullopt;
        return need;
    }
};

class NibbleCodec final : public SchemeCodec
{
  public:
    Scheme id() const override { return Scheme::Nibble; }
    const char *name() const override { return "nibble-aligned"; }
    const char *cliName() const override { return "nibble"; }
    const char *
    summary() const override
    {
        return "4/8/12/16-bit nibble-aligned codewords, up to 4680 "
               "entries (paper 4.1.3)";
    }

    SchemeParams
    params() const override
    {
        // Everything is nibble-aligned; instructions pay a 1-nibble
        // escape, and the assumed selection cost is 2 nibbles.
        return {1, 9, nibgeom::totalCodewords, 2};
    }

    const DecodeTables &tables() const override { return nibbleTables; }

    unsigned
    codewordNibbles(uint32_t rank) const override
    {
        return nibgeom::codewordNibbles(rank);
    }

    void
    emitCodeword(NibbleWriter &writer, uint32_t rank) const override
    {
        nibgeom::emitCodeword(writer, rank);
    }

    void
    emitInstruction(NibbleWriter &writer, isa::Word word) const override
    {
        nibgeom::emitInstruction(writer, word);
    }

    std::optional<uint32_t>
    referenceDecodeCodeword(NibbleReader &reader) const override
    {
        return nibgeom::referenceDecodeCodeword(reader);
    }

    std::optional<unsigned>
    referencePeekItemNibbles(NibbleReader reader) const override
    {
        return nibgeom::referencePeekItemNibbles(reader);
    }
};

} // namespace

const SchemeCodec &
baselineCodec()
{
    static const BaselineCodec codec;
    return codec;
}

const SchemeCodec &
oneByteCodec()
{
    static const OneByteCodec codec;
    return codec;
}

const SchemeCodec &
nibbleCodec()
{
    static const NibbleCodec codec;
    return codec;
}

} // namespace codecomp::compress
