#include "compress/encoding.hh"

#include <array>

#include "isa/isa.hh"
#include "support/logging.hh"

namespace codecomp::compress {

namespace {

/** Rank boundaries for the nibble scheme's codeword classes. */
constexpr uint32_t nib4Count = 8;
constexpr uint32_t nib8Count = 4 * 16;         // first nibble 8..11
constexpr uint32_t nib12Count = 2 * 256;       // first nibble 12..13
constexpr uint32_t nib16Count = 1 * 4096;      // first nibble 14
constexpr uint32_t nibTotal =
    nib4Count + nib8Count + nib12Count + nib16Count; // 4680
constexpr uint8_t nibEscape = 15;

/** Escape byte for 5-bit codeword group @p group (0..31): the high six
 *  bits are one of the eight illegal primary opcodes. */
constexpr uint8_t
escapeByte(uint32_t group)
{
    uint8_t primop = isa::illegalPrimOps[group / 4];
    return static_cast<uint8_t>((primop << 2) | (group % 4));
}

/** The eight illegal primary opcodes must be pairwise distinct, or two
 *  escape bytes would alias one group and decode would be ambiguous. */
constexpr bool
illegalPrimOpsDistinct()
{
    for (size_t i = 0; i < isa::illegalPrimOps.size(); ++i)
        for (size_t j = i + 1; j < isa::illegalPrimOps.size(); ++j)
            if (isa::illegalPrimOps[i] == isa::illegalPrimOps[j])
                return false;
    return true;
}
static_assert(illegalPrimOpsDistinct(),
              "illegal primary opcodes alias: escape bytes ambiguous");

/** 256-entry inverse of escapeByte: group for a byte, -1 if legal.
 *  Replaces a linear scan of illegalPrimOps on the per-byte decode hot
 *  path. */
constexpr std::array<int8_t, 256>
buildEscapeGroupTable()
{
    std::array<int8_t, 256> table{};
    for (auto &slot : table)
        slot = -1;
    for (uint32_t group = 0; group < 32; ++group)
        table[escapeByte(group)] = static_cast<int8_t>(group);
    return table;
}
constexpr std::array<int8_t, 256> escapeGroupTable =
    buildEscapeGroupTable();

/** Group for an escape byte, or nullopt if the byte is a legal opcode
 *  byte (one table lookup). */
inline std::optional<uint32_t>
escapeGroup(uint8_t byte)
{
    int8_t group = escapeGroupTable[byte];
    if (group < 0)
        return std::nullopt;
    return static_cast<uint32_t>(group);
}

/** Nibble scheme: the first nibble alone classifies the item
 *  (Figure 10); entries 16..255 are unreachable (a 1-nibble prefix
 *  can only index 0..15). */
constexpr DecodeTables
buildNibbleTables()
{
    DecodeTables tables{};
    tables.prefixNibbles = 1;
    for (uint32_t n0 = 0; n0 < 16; ++n0) {
        ItemClass &cls = tables.classes[n0];
        if (n0 < 8) {
            cls = {1, 1, 0, 0, n0};
        } else if (n0 < 12) {
            cls = {2, 1, 1, 0, nib4Count + (n0 - 8) * 16};
        } else if (n0 < 14) {
            cls = {3, 1, 2, 0, nib4Count + nib8Count + (n0 - 12) * 256};
        } else if (n0 == 14) {
            cls = {4, 1, 3, 0, nib4Count + nib8Count + nib12Count};
        } else {
            // Escape: the nibble is consumed, an 8-nibble instruction
            // follows (no rewind -- decodeCodeword eats the escape).
            cls = {9, 0, 0, 0, 0};
        }
    }
    return tables;
}

/** Baseline / OneByte: the first byte classifies -- an illegal primary
 *  opcode marks a codeword, any legal byte begins a plain instruction
 *  (which decodeCodeword pushes back whole, hence the 2-nibble
 *  rewind). */
constexpr DecodeTables
buildByteEscapeTables(bool baseline)
{
    DecodeTables tables{};
    tables.prefixNibbles = 2;
    for (uint32_t byte = 0; byte < 256; ++byte) {
        ItemClass &cls = tables.classes[byte];
        int8_t group = escapeGroupTable[byte];
        if (group < 0)
            cls = {8, 0, 0, 2, 0};
        else if (baseline)
            cls = {4, 1, 2, 0, static_cast<uint32_t>(group) * 256};
        else
            cls = {2, 1, 0, 0, static_cast<uint32_t>(group)};
    }
    return tables;
}

constexpr DecodeTables nibbleTables = buildNibbleTables();
constexpr DecodeTables baselineTables = buildByteEscapeTables(true);
constexpr DecodeTables oneByteTables = buildByteEscapeTables(false);

} // namespace

const DecodeTables &
decodeTables(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Baseline:
        return baselineTables;
      case Scheme::OneByte:
        return oneByteTables;
      case Scheme::Nibble:
        return nibbleTables;
    }
    CC_PANIC("bad scheme");
}

SchemeParams
schemeParams(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Baseline:
        // Codewords are 2-byte aligned; instructions cost 8 nibbles.
        return {4, 8, 8192, 4};
      case Scheme::OneByte:
        return {2, 8, 32, 2};
      case Scheme::Nibble:
        // Everything is nibble-aligned; instructions pay a 1-nibble
        // escape, and the assumed selection cost is 2 nibbles.
        return {1, 9, nibTotal, 2};
    }
    CC_PANIC("bad scheme");
}

unsigned
codewordNibbles(Scheme scheme, uint32_t rank)
{
    switch (scheme) {
      case Scheme::Baseline:
        CC_ASSERT(rank < 8192, "baseline rank range");
        return 4;
      case Scheme::OneByte:
        CC_ASSERT(rank < 32, "one-byte rank range");
        return 2;
      case Scheme::Nibble:
        if (rank < nib4Count)
            return 1;
        if (rank < nib4Count + nib8Count)
            return 2;
        if (rank < nib4Count + nib8Count + nib12Count)
            return 3;
        CC_ASSERT(rank < nibTotal, "nibble rank range");
        return 4;
    }
    CC_PANIC("bad scheme");
}

void
emitCodeword(NibbleWriter &writer, Scheme scheme, uint32_t rank)
{
    switch (scheme) {
      case Scheme::Baseline: {
        CC_ASSERT(rank < 8192, "baseline rank range");
        writer.putNibbles(escapeByte(rank / 256), 2);
        writer.putNibbles(rank % 256, 2);
        return;
      }
      case Scheme::OneByte:
        CC_ASSERT(rank < 32, "one-byte rank range");
        writer.putNibbles(escapeByte(rank), 2);
        return;
      case Scheme::Nibble: {
        if (rank < nib4Count) {
            writer.putNibble(static_cast<uint8_t>(rank));
            return;
        }
        if (rank < nib4Count + nib8Count) {
            uint32_t v = rank - nib4Count;
            writer.putNibble(static_cast<uint8_t>(8 + v / 16));
            writer.putNibble(static_cast<uint8_t>(v % 16));
            return;
        }
        if (rank < nib4Count + nib8Count + nib12Count) {
            uint32_t v = rank - nib4Count - nib8Count;
            writer.putNibble(static_cast<uint8_t>(12 + v / 256));
            writer.putNibbles(v % 256, 2);
            return;
        }
        CC_ASSERT(rank < nibTotal, "nibble rank range");
        uint32_t v = rank - nib4Count - nib8Count - nib12Count;
        writer.putNibble(14);
        writer.putNibbles(v, 3);
        return;
      }
    }
    CC_PANIC("bad scheme");
}

void
emitInstruction(NibbleWriter &writer, Scheme scheme, uint32_t word)
{
    if (scheme == Scheme::Nibble)
        writer.putNibble(nibEscape);
    else
        CC_ASSERT(!isa::isIllegalPrimOp(isa::primOpOf(word)),
                  "illegal opcode would alias an escape byte");
    writer.putWord(word);
}

std::optional<uint32_t>
decodeCodeword(NibbleReader &reader, Scheme scheme)
{
    const DecodeTables &tables = decodeTables(scheme);
    const ItemClass &cls =
        tables.classes[reader.getNibbles(tables.prefixNibbles)];
    if (!cls.isCodeword) {
        reader.seek(reader.pos() - cls.rewindNibbles);
        return std::nullopt;
    }
    uint32_t index =
        cls.indexNibbles ? reader.getNibbles(cls.indexNibbles) : 0;
    return cls.rankBase + index;
}

std::optional<unsigned>
peekItemNibbles(NibbleReader reader, Scheme scheme)
{
    const DecodeTables &tables = decodeTables(scheme);
    size_t remaining = reader.size() - reader.pos();
    if (remaining < tables.prefixNibbles)
        return std::nullopt;
    const ItemClass &cls =
        tables.classes[reader.getNibbles(tables.prefixNibbles)];
    if (cls.nibbles > remaining)
        return std::nullopt;
    return cls.nibbles;
}

std::optional<uint32_t>
referenceDecodeCodeword(NibbleReader &reader, Scheme scheme)
{
    switch (scheme) {
      case Scheme::Baseline: {
        uint8_t first = static_cast<uint8_t>(reader.getNibbles(2));
        auto group = escapeGroup(first);
        if (!group) {
            reader.seek(reader.pos() - 2); // plain instruction
            return std::nullopt;
        }
        uint32_t index = reader.getNibbles(2);
        return *group * 256 + index;
      }
      case Scheme::OneByte: {
        uint8_t first = static_cast<uint8_t>(reader.getNibbles(2));
        auto group = escapeGroup(first);
        if (!group) {
            reader.seek(reader.pos() - 2);
            return std::nullopt;
        }
        return *group;
      }
      case Scheme::Nibble: {
        uint8_t n0 = reader.getNibble();
        if (n0 < 8)
            return n0;
        if (n0 < 12)
            return nib4Count + (n0 - 8u) * 16 + reader.getNibble();
        if (n0 < 14)
            return nib4Count + nib8Count + (n0 - 12u) * 256 +
                   reader.getNibbles(2);
        if (n0 == 14)
            return nib4Count + nib8Count + nib12Count +
                   reader.getNibbles(3);
        return std::nullopt; // escape: instruction follows
      }
    }
    CC_PANIC("bad scheme");
}

std::optional<unsigned>
referencePeekItemNibbles(NibbleReader reader, Scheme scheme)
{
    size_t remaining = reader.size() - reader.pos();
    auto fits = [&](unsigned need) -> std::optional<unsigned> {
        if (need > remaining)
            return std::nullopt;
        return need;
    };
    switch (scheme) {
      case Scheme::Baseline: {
        if (remaining < 2)
            return std::nullopt;
        uint8_t first = static_cast<uint8_t>(reader.getNibbles(2));
        return fits(escapeGroup(first) ? 4u : 8u);
      }
      case Scheme::OneByte: {
        if (remaining < 2)
            return std::nullopt;
        uint8_t first = static_cast<uint8_t>(reader.getNibbles(2));
        return fits(escapeGroup(first) ? 2u : 8u);
      }
      case Scheme::Nibble: {
        if (remaining < 1)
            return std::nullopt;
        uint8_t n0 = reader.getNibble();
        if (n0 < 8)
            return fits(1);
        if (n0 < 12)
            return fits(2);
        if (n0 < 14)
            return fits(3);
        if (n0 == 14)
            return fits(4);
        return fits(9); // escape nibble + 8-nibble instruction
      }
    }
    CC_PANIC("bad scheme");
}

const char *
schemeName(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Baseline:
        return "baseline-2byte";
      case Scheme::OneByte:
        return "one-byte";
      case Scheme::Nibble:
        return "nibble-aligned";
    }
    return "?";
}

const char *
schemeCliName(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Baseline:
        return "baseline";
      case Scheme::OneByte:
        return "onebyte";
      case Scheme::Nibble:
        return "nibble";
    }
    return "?";
}

std::optional<Scheme>
parseSchemeName(std::string_view name)
{
    if (name == "baseline")
        return Scheme::Baseline;
    if (name == "onebyte")
        return Scheme::OneByte;
    if (name == "nibble")
        return Scheme::Nibble;
    return std::nullopt;
}

} // namespace codecomp::compress
