/**
 * @file
 * The compressor entry points: thin wrappers over the pass pipeline
 * (pipeline.hh) that runs selection + codeword assignment + layout with
 * branch patching (paper section 3).
 *
 * Branch handling follows section 3.2: relative branches are never
 * compressed; after layout their offset fields are reinterpreted at
 * codeword granularity (the scheme's unit) and re-patched. Branches
 * whose target no longer fits the offset field are rewritten through an
 * absolute-target stub (lis/ori/mtctr/bctr on the reserved register r2),
 * the moral equivalent of the paper's jump-table fallback; conditional
 * branches get a short skip/trampoline pair so no condition needs
 * inverting. Jump tables in .data are re-patched with compressed-space
 * code pointers.
 */

#ifndef CODECOMP_COMPRESS_COMPRESSOR_HH
#define CODECOMP_COMPRESS_COMPRESSOR_HH

#include <optional>
#include <string_view>
#include <vector>

#include "compress/image.hh"
#include "compress/strategy.hh"

namespace codecomp::compress {

struct PipelineStats;

/**
 * Code-placement policy applied by the Layout pass.
 *
 * Linear keeps the original instruction order. HotCold reorders
 * fall-through chains (maximal item runs that can only be entered at
 * the top and left by a branch at the bottom) by descending traffic
 * density, so the hottest code packs into the fewest cache lines;
 * cold chains keep their original relative order. Requires a traffic
 * profile (CompressorConfig::trafficProfile) and is semantics-
 * preserving: chains are broken only after instructions that cannot
 * fall through, and branch patching is address-map driven, so the
 * reordered image executes identically.
 */
enum class LayoutMode : uint8_t {
    Linear,
    HotCold,
};

/** CLI name of @p mode: "linear" or "hotcold". */
const char *layoutModeName(LayoutMode mode);

/** Inverse of layoutModeName; nullopt for unknown names. */
std::optional<LayoutMode> parseLayoutModeName(std::string_view name);

struct CompressorConfig
{
    Scheme scheme = Scheme::Baseline;

    /** Codeword budget; clipped to the scheme's maximum. */
    uint32_t maxEntries = 8192;

    /** Dictionary entry length limit in instructions (paper Fig 4). */
    uint32_t maxEntryLen = 4;

    /** Codeword cost assumed during greedy selection, in nibbles;
     *  0 means the scheme default (true cost for fixed-length schemes,
     *  2 nibbles for the nibble scheme). */
    uint32_t assumedCodewordNibbles = 0;

    /** Dictionary selection policy (strategy.hh). */
    StrategyKind strategy = StrategyKind::Greedy;

    /** Refit iteration bound when strategy == IterativeRefit. */
    uint32_t refitMaxRounds = 6;

    /** Code-placement policy for the Layout pass. */
    LayoutMode layout = LayoutMode::Linear;

    /** Per-instruction execution counts (index = original instruction
     *  index), e.g. from timing::profileExecutionCounts. Required to
     *  cover the whole program when layout == HotCold (catchable fatal
     *  otherwise); ignored under Linear. Not part of the selection
     *  cache key: layout runs after Select, so profile-guided sweeps
     *  still share cached enumeration/selection work. */
    std::vector<uint64_t> trafficProfile;
};

/** Compress @p program; the result is executable on CompressedCpu. */
CompressedImage compressProgram(const Program &program,
                                const CompressorConfig &config);

/** compressProgram, also reporting per-pass timing and counters into
 *  @p stats when non-null. */
CompressedImage compressProgram(const Program &program,
                                const CompressorConfig &config,
                                PipelineStats *stats);

/** Compress with a pre-computed selection (used by ablation benches);
 *  runs the pipeline from the RankAssign pass on. */
CompressedImage compressWithSelection(const Program &program,
                                      const CompressorConfig &config,
                                      SelectionResult selection);

} // namespace codecomp::compress

#endif // CODECOMP_COMPRESS_COMPRESSOR_HH
