/**
 * @file
 * The compressor entry points: thin wrappers over the pass pipeline
 * (pipeline.hh) that runs selection + codeword assignment + layout with
 * branch patching (paper section 3).
 *
 * Branch handling follows section 3.2: relative branches are never
 * compressed; after layout their offset fields are reinterpreted at
 * codeword granularity (the scheme's unit) and re-patched. Branches
 * whose target no longer fits the offset field are rewritten through an
 * absolute-target stub (lis/ori/mtctr/bctr on the reserved register r2),
 * the moral equivalent of the paper's jump-table fallback; conditional
 * branches get a short skip/trampoline pair so no condition needs
 * inverting. Jump tables in .data are re-patched with compressed-space
 * code pointers.
 */

#ifndef CODECOMP_COMPRESS_COMPRESSOR_HH
#define CODECOMP_COMPRESS_COMPRESSOR_HH

#include "compress/image.hh"
#include "compress/strategy.hh"

namespace codecomp::compress {

struct PipelineStats;

struct CompressorConfig
{
    Scheme scheme = Scheme::Baseline;

    /** Codeword budget; clipped to the scheme's maximum. */
    uint32_t maxEntries = 8192;

    /** Dictionary entry length limit in instructions (paper Fig 4). */
    uint32_t maxEntryLen = 4;

    /** Codeword cost assumed during greedy selection, in nibbles;
     *  0 means the scheme default (true cost for fixed-length schemes,
     *  2 nibbles for the nibble scheme). */
    uint32_t assumedCodewordNibbles = 0;

    /** Dictionary selection policy (strategy.hh). */
    StrategyKind strategy = StrategyKind::Greedy;

    /** Refit iteration bound when strategy == IterativeRefit. */
    uint32_t refitMaxRounds = 6;
};

/** Compress @p program; the result is executable on CompressedCpu. */
CompressedImage compressProgram(const Program &program,
                                const CompressorConfig &config);

/** compressProgram, also reporting per-pass timing and counters into
 *  @p stats when non-null. */
CompressedImage compressProgram(const Program &program,
                                const CompressorConfig &config,
                                PipelineStats *stats);

/** Compress with a pre-computed selection (used by ablation benches);
 *  runs the pipeline from the RankAssign pass on. */
CompressedImage compressWithSelection(const Program &program,
                                      const CompressorConfig &config,
                                      SelectionResult selection);

} // namespace codecomp::compress

#endif // CODECOMP_COMPRESS_COMPRESSOR_HH
