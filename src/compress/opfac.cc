#include "compress/opfac.hh"

#include <unordered_map>
#include <unordered_set>

#include "compress/nibble_geometry.hh"
#include "support/logging.hh"

namespace codecomp::compress {

OperandFields
operandFields(uint8_t primop)
{
    using isa::PrimOp;
    switch (static_cast<PrimOp>(primop)) {
      // D-forms: rt/ra (or crf/ra) in bits 16..25, 16-bit immediate in
      // the low half.
      case PrimOp::Mulli:
      case PrimOp::Cmpli:
      case PrimOp::Cmpi:
      case PrimOp::Addi:
      case PrimOp::Addis:
      case PrimOp::Ori:
      case PrimOp::Oris:
      case PrimOp::Xori:
      case PrimOp::Andi:
      case PrimOp::Lwz:
      case PrimOp::Lbz:
      case PrimOp::Stw:
      case PrimOp::Stb:
      case PrimOp::Lhz:
      case PrimOp::Sth:
        return {16, 10, 0, 16};
      // Bc: bo/bi in the rt/ra fields, 14-bit displacement at bit 2
      // (AA/LK stay in the skeleton).
      case PrimOp::Bc:
        return {16, 10, 2, 14};
      // B: no register block, 24-bit displacement at bit 2.
      case PrimOp::B:
        return {0, 0, 2, 24};
      // bclr/bcctr: bo/bi only; the XO and LK stay in the skeleton.
      case PrimOp::Op19:
        return {16, 10, 0, 0};
      // rlwinm: rt/ra are registers; sh/mb/me are immediate-like and
      // contiguous in bits 1..15 (Rc at bit 0 stays in the skeleton).
      case PrimOp::Rlwinm:
        return {16, 10, 1, 15};
      // X-forms: rt/ra/rb (or crf/ra/rb, rt/spr) in bits 11..25; the
      // XO and Rc stay in the skeleton.
      case PrimOp::Op31:
        return {11, 15, 0, 0};
      // sc and anything illegal: the whole word is skeleton.
      default:
        return {0, 0, 0, 0};
    }
}

FactoredWord
factorWord(isa::Word word)
{
    OperandFields fields = operandFields(isa::primOpOf(word));
    FactoredWord factored;
    factored.skeleton = word & ~(fields.regMask() | fields.immMask());
    factored.regs = static_cast<uint16_t>(
        (word & fields.regMask()) >> fields.regShift);
    factored.imm = (word & fields.immMask()) >> fields.immShift;
    return factored;
}

isa::Word
fuseWord(const FactoredWord &factored)
{
    OperandFields fields =
        operandFields(isa::primOpOf(factored.skeleton));
    return factored.skeleton |
           ((static_cast<uint32_t>(factored.regs) << fields.regShift) &
            fields.regMask()) |
           ((factored.imm << fields.immShift) & fields.immMask());
}

bool
isCanonicalFactoring(const FactoredWord &factored)
{
    OperandFields fields =
        operandFields(isa::primOpOf(factored.skeleton));
    if (factored.skeleton & (fields.regMask() | fields.immMask()))
        return false;
    if (fields.regBits < 16 && (factored.regs >> fields.regBits) != 0)
        return false;
    if (fields.immBits < 32 && (factored.imm >> fields.immBits) != 0)
        return false;
    return factorWord(fuseWord(factored)) == factored;
}

namespace {

constexpr DecodeTables opfacTables =
    nibgeom::buildTables(/*insnNibbles=*/9);

/** The dictionary factored into its serialized streams: the unique
 *  skeleton table in first-appearance order plus one skeleton index
 *  per word, entry-major. Register and immediate fields stay with the
 *  word (raw, bit-packed at their exact widths): the tuple tables this
 *  started with cost more than they saved -- real selections have
 *  ~26 unique skeletons but hundreds of distinct register tuples, so
 *  only the opcode stream's dictionary pays its way (EXPERIMENTS.md). */
struct FactoredDict
{
    std::vector<isa::Word> skeletons;
    std::vector<uint32_t> skelIdx; //!< one per word, entry-major
    std::vector<FactoredWord> words;
};

/** Bits needed to index a table of @p count entries; 0 for a single
 *  entry (the index is implicit). */
unsigned
indexBits(uint32_t count)
{
    unsigned bits = 0;
    while ((1u << bits) < count)
        ++bits;
    return bits;
}

FactoredDict
factorDictionary(const std::vector<DictEntry> &entries)
{
    FactoredDict dict;
    std::unordered_map<isa::Word, uint32_t> skeletonOf;
    for (const DictEntry &entry : entries) {
        for (isa::Word word : entry) {
            FactoredWord factored = factorWord(word);
            auto [it, isNew] = skeletonOf.emplace(
                factored.skeleton,
                static_cast<uint32_t>(dict.skeletons.size()));
            if (isNew)
                dict.skeletons.push_back(factored.skeleton);
            dict.skelIdx.push_back(it->second);
            dict.words.push_back(factored);
        }
    }
    return dict;
}

/** MSB-first bit packer over a ByteSink. */
class BitWriter
{
  public:
    explicit BitWriter(ByteSink &sink) : sink_(sink) {}

    void
    put(uint32_t value, unsigned bits)
    {
        CC_ASSERT(bits <= 32 && (bits == 32 || (value >> bits) == 0),
                  "bit-packed value wider than its field");
        acc_ = (acc_ << bits) | value;
        count_ += bits;
        while (count_ >= 8) {
            count_ -= 8;
            sink_.put8(static_cast<uint8_t>(acc_ >> count_));
        }
    }

    /** Pad the final byte with zero bits. */
    void
    flush()
    {
        if (count_ > 0)
            put(0, 8 - count_);
    }

  private:
    ByteSink &sink_;
    uint64_t acc_ = 0;
    unsigned count_ = 0;
};

/** MSB-first bit reader over a ByteSource; truncation surfaces as the
 *  source's LoadFailure. */
class BitReader
{
  public:
    explicit BitReader(ByteSource &source) : source_(source) {}

    uint32_t
    get(unsigned bits)
    {
        while (count_ < bits) {
            acc_ = (acc_ << 8) | source_.get8();
            count_ += 8;
        }
        count_ -= bits;
        uint32_t value = static_cast<uint32_t>(
            (acc_ >> count_) & ((bits == 32 ? 0 : (1ull << bits)) - 1));
        return bits == 0 ? 0 : value;
    }

    /** True when the unread remainder of the current byte is all zero
     *  (the canonical pad). */
    bool padIsZero() const
    {
        return (acc_ & ((1ull << count_) - 1)) == 0;
    }

  private:
    ByteSource &source_;
    uint64_t acc_ = 0;
    unsigned count_ = 0;
};

class OperandFactoredCodec final : public SchemeCodec
{
  public:
    Scheme id() const override { return Scheme::OperandFactored; }
    const char *name() const override { return "operand-factored"; }
    const char *cliName() const override { return "opfac"; }
    const char *
    summary() const override
    {
        return "nibble-aligned stream with an operand-factored "
               "dictionary (skeleton/register/immediate streams)";
    }

    SchemeParams
    params() const override
    {
        // Stream geometry matches the nibble scheme. A factored
        // dictionary word costs skelBits (~5) + regBits + immBits:
        // ~31 bits for a D-form, ~20 for an X-form, averaging ~27
        // bits (~7 nibbles) on real selections. Entry boundaries are
        // structural (priced at zero, like the flat layout's).
        return {1, 9, nibgeom::totalCodewords, 2, 7, 0};
    }

    const DecodeTables &tables() const override { return opfacTables; }

    unsigned
    codewordNibbles(uint32_t rank) const override
    {
        return nibgeom::codewordNibbles(rank);
    }

    void
    emitCodeword(NibbleWriter &writer, uint32_t rank) const override
    {
        nibgeom::emitCodeword(writer, rank);
    }

    void
    emitInstruction(NibbleWriter &writer, isa::Word word) const override
    {
        nibgeom::emitInstruction(writer, word);
    }

    std::optional<uint32_t>
    referenceDecodeCodeword(NibbleReader &reader) const override
    {
        return nibgeom::referenceDecodeCodeword(reader);
    }

    std::optional<unsigned>
    referencePeekItemNibbles(NibbleReader reader) const override
    {
        return nibgeom::referencePeekItemNibbles(reader);
    }

    size_t
    dictionaryBytes(const std::vector<DictEntry> &entries) const override
    {
        // Serialize-and-measure, minus the structural metadata (the
        // u32 skeleton count and the per-entry length bytes). The flat
        // layout's dictionaryBytes likewise prices only instruction
        // words and leaves entry boundaries to the decoder, so the ROM
        // comparison stays apples-to-apples.
        ByteSink sink;
        putDictionary(sink, entries);
        return sink.bytes().size() - 4 - entries.size();
    }

    void
    putDictionary(ByteSink &sink,
                  const std::vector<DictEntry> &entries) const override
    {
        FactoredDict dict = factorDictionary(entries);
        sink.put32(static_cast<uint32_t>(dict.skeletons.size()));
        for (isa::Word skeleton : dict.skeletons)
            sink.put32(skeleton);
        for (const DictEntry &entry : entries) {
            CC_ASSERT(!entry.empty() && entry.size() <= 255,
                      "factored dictionary entry length must fit a byte");
            sink.put8(static_cast<uint8_t>(entry.size()));
        }
        unsigned skelBits =
            indexBits(static_cast<uint32_t>(dict.skeletons.size()));
        BitWriter writer(sink);
        for (size_t i = 0; i < dict.words.size(); ++i) {
            const FactoredWord &word = dict.words[i];
            OperandFields fields =
                operandFields(isa::primOpOf(word.skeleton));
            writer.put(dict.skelIdx[i], skelBits);
            writer.put(word.regs, fields.regBits);
            writer.put(word.imm, fields.immBits);
        }
        writer.flush();
    }

    std::optional<std::string>
    getDictionary(ByteSource &source, uint32_t entryCount,
                  uint32_t maxEntryWords,
                  std::vector<DictEntry> &entries) const override
    {
        uint32_t skeletonCount = source.get32();
        if (skeletonCount > source.remaining() / 4)
            return "declared " + std::to_string(skeletonCount) +
                   " skeletons exceed the payload";
        std::vector<isa::Word> skeletons;
        std::unordered_set<isa::Word> seenSkeletons;
        skeletons.reserve(skeletonCount);
        for (uint32_t i = 0; i < skeletonCount; ++i) {
            isa::Word skeleton = source.get32();
            OperandFields fields =
                operandFields(isa::primOpOf(skeleton));
            if (skeleton & (fields.regMask() | fields.immMask()))
                return "skeleton " + std::to_string(i) +
                       " carries operand bits (not canonical)";
            if (!seenSkeletons.insert(skeleton).second)
                return "skeleton " + std::to_string(i) +
                       " duplicates an earlier table entry";
            skeletons.push_back(skeleton);
        }

        std::vector<uint8_t> lengths;
        lengths.reserve(entryCount);
        size_t totalWords = 0;
        for (uint32_t i = 0; i < entryCount; ++i) {
            uint8_t length = source.get8();
            if (length == 0 || length > maxEntryWords)
                return "dictionary entry length " +
                       std::to_string(length) + " outside 1.." +
                       std::to_string(maxEntryWords);
            lengths.push_back(length);
            totalWords += length;
        }
        if (totalWords > 0 && skeletonCount == 0)
            return "factored dictionary has words but no skeletons";

        unsigned skelBits = indexBits(skeletonCount);
        BitReader reader(source);
        entries.clear();
        entries.resize(entryCount);
        size_t word = 0;
        for (uint32_t e = 0; e < entryCount; ++e) {
            entries[e].reserve(lengths[e]);
            for (uint8_t k = 0; k < lengths[e]; ++k, ++word) {
                uint32_t index = reader.get(skelBits);
                if (index >= skeletonCount)
                    return "skeleton index " + std::to_string(index) +
                           " out of range for " +
                           std::to_string(skeletonCount) + " skeletons";
                FactoredWord factored;
                factored.skeleton = skeletons[index];
                OperandFields fields =
                    operandFields(isa::primOpOf(factored.skeleton));
                factored.regs =
                    static_cast<uint16_t>(reader.get(fields.regBits));
                factored.imm = reader.get(fields.immBits);
                // A canonical skeleton plus in-range raw fields fuses
                // and refactors bijectively by construction, so no
                // per-word canonicality recheck is needed.
                entries[e].push_back(fuseWord(factored));
            }
        }
        if (!reader.padIsZero())
            return "nonzero pad bits after the factored word stream";
        return std::nullopt;
    }
};

} // namespace

const SchemeCodec &
operandFactoredCodec()
{
    static const OperandFactoredCodec codec;
    return codec;
}

} // namespace codecomp::compress
