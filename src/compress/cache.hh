/**
 * @file
 * Content-addressed cache of the pipeline's Enumerate and Select
 * products, shared by concurrent compressions of a job corpus.
 *
 * The farm (src/farm) compresses many (program, config) pairs at once;
 * sweeps revisit the same program under several schemes and strategies,
 * and generated corpora contain outright duplicate programs. Both
 * stages are deterministic pure functions of their keys, so caching
 * their results cannot change any output image:
 *
 *   candidates = f(program bytes, minEntryLen, maxEntryLen)
 *   selection  = f(program bytes, full compressor config)
 *
 * Keys are FNV-1a64 over the program's serialized bytes combined with
 * the config fields the stage depends on. Candidate enumeration is
 * scheme-independent, so one enumeration serves all schemes and
 * strategies of a program -- the common sweep shape. Values are
 * shared_ptr-to-const: readers on any thread hold the product alive
 * without copying it; lookups and stores take one mutex (the products
 * are large and computed rarely, so contention is negligible next to
 * the work saved).
 *
 * A PipelineCache is attached to a compression through
 * PipelineContext::cache (pipeline.hh); a null cache leaves the
 * pipeline exactly as before.
 */

#ifndef CODECOMP_COMPRESS_CACHE_HH
#define CODECOMP_COMPRESS_CACHE_HH

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "compress/candidates.hh"
#include "compress/compressor.hh"
#include "compress/selection.hh"

namespace codecomp::compress {

/** A cached Select product: the selection plus the strategy's round
 *  count (so cached stats report the rounds the original run took). */
struct CachedSelection
{
    SelectionResult selection;
    uint32_t rounds = 1;
};

class PipelineCache
{
  public:
    /** Hit/miss counters per cached stage (monotonic; thread-safe). */
    struct Stats
    {
        uint64_t enumHits = 0;
        uint64_t enumMisses = 0;
        uint64_t selectHits = 0;
        uint64_t selectMisses = 0;
    };

    using CandidateList = std::vector<Candidate>;

    /** FNV-1a64 over the program's serialized bytes -- the
     *  content-identity half of every cache key. */
    static uint64_t programHash(const Program &program);

    /** Key of the Enumerate product: program content plus the entry
     *  length window (the only config enumeration reads). */
    static uint64_t enumerateKey(uint64_t programHash,
                                 const CompressorConfig &config);

    /** Key of the Select product: program content plus every config
     *  field that can steer selection. */
    static uint64_t selectKey(uint64_t programHash,
                              const CompressorConfig &config);

    /** Cached candidates for @p key, or null on a miss (counted). */
    std::shared_ptr<const CandidateList> findCandidates(uint64_t key);

    /** Cached selection for @p key, or null on a miss (counted). */
    std::shared_ptr<const CachedSelection> findSelection(uint64_t key);

    /** Store a product; the first store for a key wins and later ones
     *  are dropped (concurrent fills compute identical values). */
    void storeCandidates(uint64_t key,
                         std::shared_ptr<const CandidateList> candidates);
    void storeSelection(uint64_t key,
                        std::shared_ptr<const CachedSelection> selection);

    Stats stats() const;

  private:
    mutable std::mutex mutex_;
    std::unordered_map<uint64_t, std::shared_ptr<const CandidateList>>
        candidates_;
    std::unordered_map<uint64_t, std::shared_ptr<const CachedSelection>>
        selections_;
    Stats stats_;
};

} // namespace codecomp::compress

#endif // CODECOMP_COMPRESS_CACHE_HH
