/**
 * @file
 * Content-addressed cache of the pipeline's Enumerate and Select
 * products, shared by concurrent compressions of a job corpus.
 *
 * The farm (src/farm) compresses many (program, config) pairs at once;
 * sweeps revisit the same program under several schemes and strategies,
 * and generated corpora contain outright duplicate programs. Both
 * stages are deterministic pure functions of their keys, so caching
 * their results cannot change any output image:
 *
 *   candidates = f(program bytes, minEntryLen, maxEntryLen)
 *   selection  = f(program bytes, full compressor config)
 *
 * Keys are FNV-1a64 over the program's serialized bytes combined with
 * the config fields the stage depends on. Candidate enumeration is
 * scheme-independent, so one enumeration serves all schemes and
 * strategies of a program -- the common sweep shape. Values are
 * shared_ptr-to-const: readers on any thread hold the product alive
 * without copying it; lookups and stores take one mutex (the products
 * are large and computed rarely, so contention is negligible next to
 * the work saved).
 *
 * Two robustness layers sit on top of the in-memory map:
 *
 *  - a bounded footprint: setCapacity() caps the entry count and/or
 *    approximate byte size, with least-recently-used eviction (the
 *    Stats::evictions counter reports how often the cap bit);
 *  - a crash-safe persistent backing store: setDiskStore() points the
 *    cache at a directory where every product is also written as one
 *    file -- temp-file + atomic rename, a versioned header, and an
 *    FNV-1a64 payload checksum. In-memory misses fall back to disk,
 *    so a warm directory survives process restarts (and is how the
 *    farm's isolated workers share work). A corrupt, truncated, or
 *    version-skewed file is detected by the checksum/structure checks,
 *    quarantined (renamed *.quarantined), and silently recomputed:
 *    damage can degrade throughput but can never alter a result.
 *
 * A PipelineCache is attached to a compression through
 * PipelineContext::cache (pipeline.hh); a null cache leaves the
 * pipeline exactly as before.
 */

#ifndef CODECOMP_COMPRESS_CACHE_HH
#define CODECOMP_COMPRESS_CACHE_HH

#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "compress/candidates.hh"
#include "compress/compressor.hh"
#include "compress/selection.hh"

namespace codecomp::compress {

/** A cached Select product: the selection plus the strategy's round
 *  count (so cached stats report the rounds the original run took). */
struct CachedSelection
{
    SelectionResult selection;
    uint32_t rounds = 1;
};

class PipelineCache
{
  public:
    /** Hit/miss counters per cached stage (monotonic; thread-safe). */
    struct Stats
    {
        uint64_t enumHits = 0;
        uint64_t enumMisses = 0;
        uint64_t selectHits = 0;
        uint64_t selectMisses = 0;
        uint64_t evictions = 0;      //!< in-memory entries dropped by cap
        uint64_t persistHits = 0;    //!< memory misses served from disk
        uint64_t persistMisses = 0;  //!< misses disk could not serve
        uint64_t persistStores = 0;  //!< entry files written
        uint64_t persistCorrupt = 0; //!< damaged files quarantined
    };

    using CandidateList = std::vector<Candidate>;

    /** FNV-1a64 over the program's serialized bytes -- the
     *  content-identity half of every cache key. */
    static uint64_t programHash(const Program &program);

    /** Key of the Enumerate product: program content plus the entry
     *  length window (the only config enumeration reads). */
    static uint64_t enumerateKey(uint64_t programHash,
                                 const CompressorConfig &config);

    /** Key of the Select product: program content plus every config
     *  field that can steer selection. */
    static uint64_t selectKey(uint64_t programHash,
                              const CompressorConfig &config);

    /** Cached candidates for @p key, or null on a miss (counted). */
    std::shared_ptr<const CandidateList> findCandidates(uint64_t key);

    /** Cached selection for @p key, or null on a miss (counted). */
    std::shared_ptr<const CachedSelection> findSelection(uint64_t key);

    /** Store a product; the first store for a key wins and later ones
     *  are dropped (concurrent fills compute identical values). */
    void storeCandidates(uint64_t key,
                         std::shared_ptr<const CandidateList> candidates);
    void storeSelection(uint64_t key,
                        std::shared_ptr<const CachedSelection> selection);

    /**
     * Bound the in-memory footprint: at most @p maxEntries products
     * and/or @p maxBytes approximate payload bytes (0 = unlimited).
     * When a store exceeds a cap the least-recently-used products are
     * evicted (Stats::evictions). Disk copies are never evicted, so a
     * capped cache backed by a store degrades to disk reads, not to
     * recomputation.
     */
    void setCapacity(size_t maxEntries, uint64_t maxBytes);

    /**
     * Back the cache with directory @p dir (created if absent). Every
     * store is also written as one checksummed file via temp-file +
     * atomic rename; misses fall back to disk. If the directory cannot
     * be created or written the store is disabled with a warning --
     * persistence failures never fail a compression. Returns whether
     * the store is usable.
     */
    bool setDiskStore(const std::string &dir);

    const std::string &diskDir() const { return diskDir_; }

    /** In-memory product count (after eviction), for tests. */
    size_t entryCount() const;

    Stats stats() const;

  private:
    enum class Kind : uint8_t { Enumerate = 1, Select = 2 };
    using EntryKey = std::pair<uint8_t, uint64_t>; //!< (Kind, key)

    struct Entry
    {
        std::shared_ptr<const CandidateList> candidates;
        std::shared_ptr<const CachedSelection> selection;
        uint64_t bytes = 0;
        std::list<EntryKey>::iterator lruIt;
    };

    /** Insert (or refresh) under the lock, applying the caps. */
    void insertLocked(Kind kind, uint64_t key, Entry entry);
    void touchLocked(Entry &entry, EntryKey entryKey);
    void evictLocked();

    /** Disk-store paths and I/O; all called under the lock. */
    std::string entryPath(Kind kind, uint64_t key) const;
    void persistLocked(Kind kind, uint64_t key, const Entry &entry);
    bool loadFromDiskLocked(Kind kind, uint64_t key, Entry &out);
    void quarantineLocked(const std::string &path);

    mutable std::mutex mutex_;
    std::map<EntryKey, Entry> entries_;
    std::list<EntryKey> lru_; //!< front = most recently used
    uint64_t totalBytes_ = 0;
    size_t maxEntries_ = 0;  //!< 0 = unlimited
    uint64_t maxBytes_ = 0;  //!< 0 = unlimited
    std::string diskDir_;    //!< "" = no persistent store
    Stats stats_;
};

/** @{ Serialized form of the cached products -- the payload of the
 *  persistent store's entry files (format in cache.cc). Exposed for
 *  the corruption tests, which build damaged payloads on purpose. */
std::vector<uint8_t>
serializeCandidates(const PipelineCache::CandidateList &candidates);
std::vector<uint8_t> serializeSelection(const CachedSelection &selection);
/** @} */

} // namespace codecomp::compress

#endif // CODECOMP_COMPRESS_CACHE_HH
