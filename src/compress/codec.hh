/**
 * @file
 * The scheme-codec layer: one descriptor object per compression scheme
 * plus a registry, replacing the hand-rolled `switch (scheme)` dispatch
 * that used to live in encoding.cc and its consumers.
 *
 * A SchemeCodec owns everything that varies per scheme -- codeword
 * widths, stream emission, the constexpr decode tables the engine's
 * fast path indexes, the reference decoders the golden-checksum suite
 * cross-checks, the Composition accounting split, the dictionary's
 * serialized form and ROM cost, and the CLI/display names. Every other
 * layer (pipeline, engine, objfile, verify, timing, farm, tools,
 * benches) either queries one codec or iterates allCodecs(); none of
 * them enumerates `{Scheme::Nibble, ...}` literals.
 *
 * Adding a backend is therefore: implement the interface in its own
 * .hh/.cc pair, add the enum member, and add one line to the registry
 * list in codec.cc (see DESIGN.md section 12 for the checklist). The
 * operand-factored scheme (opfac.hh) is the existence proof.
 *
 * The original free functions (schemeParams, emitCodeword, ...) remain
 * as thin registry-backed wrappers so call sites that already hold a
 * Scheme value stay terse; hot paths hold a `const SchemeCodec &` and
 * skip the per-call lookup.
 */

#ifndef CODECOMP_COMPRESS_CODEC_HH
#define CODECOMP_COMPRESS_CODEC_HH

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "isa/isa.hh"
#include "support/bitstream.hh"
#include "support/serialize.hh"

namespace codecomp::compress {

/** Stable on-disk scheme identities (.cci scheme byte). Append only;
 *  the registry order in codec.cc mirrors this order. */
enum class Scheme : uint8_t {
    Baseline,        //!< 2-byte escape + index codewords
    OneByte,         //!< 1-byte escape-only codewords
    Nibble,          //!< 4/8/12/16-bit nibble-aligned codewords
    OperandFactored, //!< nibble stream + operand-factored dictionary
};

/** Static parameters of one scheme. */
struct SchemeParams
{
    unsigned unitNibbles;  //!< branch-target granularity (paper 3.2.2)
    unsigned insnNibbles;  //!< stream cost of an uncompressed instruction
    unsigned maxCodewords;
    unsigned defaultAssumedCodewordNibbles; //!< greedy cost model input

    /** Greedy/refit cost-model price of one dictionary word and the
     *  fixed per-entry overhead, in nibbles. The flat schemes store
     *  4 bytes per word (8 nibbles, no framing); codecs with cheaper
     *  dictionary encodings lower these so selection admits the extra
     *  entries their dictionaries can afford. */
    unsigned dictEntryNibbles = 8;
    unsigned dictEntryExtraNibbles = 0;
};

/**
 * Classification of one stream item by its leading prefix nibbles.
 * Every decode decision of a scheme -- item length, codeword vs raw
 * instruction, and where the rank index sits -- is a pure function of
 * the first prefixNibbles of the item, so it can be precomputed into a
 * 256-entry table and the decoder reduced to one indexed load plus
 * shift/mask field extraction (DESIGN.md section 10).
 */
struct ItemClass
{
    uint8_t nibbles;       //!< total item length, escape included
    uint8_t isCodeword;    //!< 1 = codeword, 0 = uncompressed inst
    uint8_t indexNibbles;  //!< rank-index nibbles after the prefix
    uint8_t rewindNibbles; //!< nibbles to push back for non-codewords
    uint32_t rankBase;     //!< rank = rankBase + index
};

/** Per-scheme decode tables: the item class for every possible value
 *  of the leading prefix (one nibble or one byte; single-nibble
 *  prefixes use entries 0..15). */
struct DecodeTables
{
    unsigned prefixNibbles;
    std::array<ItemClass, 256> classes;
};

/** How one emitted item splits across the Composition buckets
 *  (paper Fig 9): raw instruction nibbles, escape overhead, and
 *  codeword index nibbles. */
struct EmitAccounting
{
    unsigned insnNibbles = 0;
    unsigned escapeNibbles = 0;
    unsigned codewordNibbles = 0;
};

/** One dictionary entry: the instruction words a codeword expands to. */
using DictEntry = std::vector<isa::Word>;

/**
 * Everything one compression scheme knows about itself. Implementations
 * are stateless singletons registered in codec.cc; all methods are
 * thread-safe by construction.
 */
class SchemeCodec
{
  public:
    virtual ~SchemeCodec() = default;

    virtual Scheme id() const = 0;

    /** Descriptive display name, e.g. "nibble-aligned" (stats output
     *  and figures). */
    virtual const char *name() const = 0;

    /** CLI / job-spec name, e.g. "nibble". Parse/print must be a
     *  bijection over the registry (CodecRegistry tests). */
    virtual const char *cliName() const = 0;

    /** One-line description for `ccompress --list-schemes` and the
     *  README scheme table. */
    virtual const char *summary() const = 0;

    virtual SchemeParams params() const = 0;

    /** The precomputed (constexpr) decode tables; the engine's fast
     *  scan and the generic decodeCodeword/peekItemNibbles below index
     *  these directly. */
    virtual const DecodeTables &tables() const = 0;

    /** Size in nibbles of the codeword for dictionary rank @p rank. */
    virtual unsigned codewordNibbles(uint32_t rank) const = 0;

    /** Append the codeword for @p rank. */
    virtual void emitCodeword(NibbleWriter &writer, uint32_t rank) const = 0;

    /** Append one uncompressed instruction (escape included). */
    virtual void emitInstruction(NibbleWriter &writer,
                                 isa::Word word) const = 0;

    /**
     * The cascaded-branch reference decoders the table-driven fast path
     * is verified against (golden-checksum suite, DecodePath::Reference
     * engine scans). Semantically identical to decodeCodeword /
     * peekItemNibbles by contract.
     */
    virtual std::optional<uint32_t>
    referenceDecodeCodeword(NibbleReader &reader) const = 0;
    virtual std::optional<unsigned>
    referencePeekItemNibbles(NibbleReader reader) const = 0;

    /**
     * Decode the item at the reader's cursor: a codeword rank, or
     * std::nullopt for an uncompressed instruction (whose 32-bit word
     * is then read with reader.getWord()). Table-driven off tables();
     * shared by all codecs.
     */
    std::optional<uint32_t> decodeCodeword(NibbleReader &reader) const;

    /**
     * Nibble length of the item starting at @p reader's cursor (escape
     * included), or std::nullopt if the remaining stream cannot hold
     * the whole item. Pure lookahead (the reader is taken by value).
     */
    std::optional<unsigned> peekItemNibbles(NibbleReader reader) const;

    /** Composition split of one emitted uncompressed instruction. The
     *  default derives the escape overhead from params().insnNibbles
     *  (everything beyond the 8 word nibbles is escape). */
    virtual EmitAccounting instructionAccounting() const;

    /** Composition split of the codeword for @p rank. The default
     *  charges the whole width to the codeword bucket; Baseline
     *  overrides to split its escape byte out. */
    virtual EmitAccounting codewordAccounting(uint32_t rank) const;

    /**
     * ROM cost of the rank-ordered dictionary in bytes; feeds
     * CompressedImage::totalBytes and the Composition invariant. The
     * default is the flat array layout (4 bytes per word, no framing);
     * codecs with their own serialized form return that form's size.
     */
    virtual size_t dictionaryBytes(const std::vector<DictEntry> &entries) const;

    /** Serialize the dictionary body into a .cci payload (the entry
     *  count is written by the caller). The default matches the
     *  historical flat format: per entry a u32 length then the words. */
    virtual void putDictionary(ByteSink &sink,
                               const std::vector<DictEntry> &entries) const;

    /**
     * Deserialize @p entryCount entries written by putDictionary,
     * validating counts against the remaining payload and every entry
     * length against 1..maxEntryWords before allocating. Returns an
     * error description on malformed input (mapped to a BadValue
     * LoadError by the caller); truncation surfaces as the source's
     * LoadFailure.
     */
    virtual std::optional<std::string>
    getDictionary(ByteSource &source, uint32_t entryCount,
                  uint32_t maxEntryWords,
                  std::vector<DictEntry> &entries) const;
};

/** Every registered codec, in Scheme enum order (stable across runs;
 *  the registry list lives in codec.cc). */
const std::vector<const SchemeCodec *> &allCodecs();

/** The Scheme of every registered codec, for parameterized tests and
 *  sweep loops. */
std::vector<Scheme> allSchemes();

/** The codec for @p scheme; fatal on a value outside the registry
 *  (callers validating untrusted bytes use findSchemeCodec). */
const SchemeCodec &schemeCodec(Scheme scheme);

/** The codec whose enum value is @p id, or nullptr -- the loader-side
 *  lookup for an untrusted .cci scheme byte. */
const SchemeCodec *findSchemeCodec(uint8_t id);

/** @{ Registry-backed wrappers preserving the original encoding.hh
 *  free-function surface. */
SchemeParams schemeParams(Scheme scheme);
unsigned codewordNibbles(Scheme scheme, uint32_t rank);
void emitCodeword(NibbleWriter &writer, Scheme scheme, uint32_t rank);
void emitInstruction(NibbleWriter &writer, Scheme scheme, uint32_t word);
const DecodeTables &decodeTables(Scheme scheme);
std::optional<uint32_t> decodeCodeword(NibbleReader &reader, Scheme scheme);
std::optional<unsigned> peekItemNibbles(NibbleReader reader, Scheme scheme);
std::optional<uint32_t> referenceDecodeCodeword(NibbleReader &reader,
                                                Scheme scheme);
std::optional<unsigned> referencePeekItemNibbles(NibbleReader reader,
                                                 Scheme scheme);
const char *schemeName(Scheme scheme);
const char *schemeCliName(Scheme scheme);
/** @} */

/** Inverse of schemeCliName over the registry; nullopt for an unknown
 *  name. */
std::optional<Scheme> parseSchemeName(std::string_view name);

/** Every registered CLI name joined by @p separator -- the single
 *  source for tool usage strings and error messages. */
std::string schemeCliNames(std::string_view separator = "|");

/** The cliName as an identifier-safe PascalCase token ("baseline" ->
 *  "Baseline"), for parameterized-test labels. */
std::string schemeTestName(Scheme scheme);

} // namespace codecomp::compress

#endif // CODECOMP_COMPRESS_CODEC_HH
