#include "compress/selection.hh"

#include <algorithm>
#include <numeric>

namespace codecomp::compress {

std::string
greedyConfigError(const GreedyConfig &config)
{
    if (config.maxEntryLen == 0)
        return "maxEntryLen must be at least 1";
    if (config.minEntryLen == 0)
        return "minEntryLen must be at least 1";
    if (config.minEntryLen > config.maxEntryLen)
        return "minEntryLen (" + std::to_string(config.minEntryLen) +
               ") exceeds maxEntryLen (" +
               std::to_string(config.maxEntryLen) + ")";
    // maxEntries == 0 is deliberately legal: an empty budget means
    // pass-through (no compression), which tests and ablations rely on.
    return "";
}

std::vector<uint32_t>
rankByUseCount(const SelectionResult &selection)
{
    std::vector<uint32_t> order(selection.dict.entries.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&selection](uint32_t a, uint32_t b) {
                         return selection.useCount[a] >
                                selection.useCount[b];
                     });
    std::vector<uint32_t> rank_of_entry(order.size());
    for (uint32_t rank = 0; rank < order.size(); ++rank)
        rank_of_entry[order[rank]] = rank;
    return rank_of_entry;
}

} // namespace codecomp::compress
