/**
 * @file
 * Codeword encodings for compressed programs.
 *
 * Three schemes from the paper:
 *
 *  - Baseline (section 4.1): 2-byte codewords. The first byte is an
 *    escape byte built from one of the 8 illegal primary opcodes plus
 *    the remaining 2 bits of the byte (32 escape bytes); the second
 *    byte indexes 256 entries per escape, for up to 8192 codewords.
 *    Original programs remain executable on a baseline processor.
 *
 *  - OneByte (section 4.1.2, Figure 8): 1-byte codewords formed from
 *    the 32 escape bytes alone; dictionaries of 8/16/32 entries.
 *
 *  - Nibble (section 4.1.3, Figure 10): variable-length codewords of
 *    4/8/12/16 bits, 4-bit aligned. First-nibble classes: 0-7 ->
 *    4-bit codeword (8), 8-11 -> 8-bit (64), 12-13 -> 12-bit (512),
 *    14 -> 16-bit (4096), 15 -> escape preceding an uncompressed
 *    32-bit instruction. 4680 codewords total; the most frequent
 *    entries get the shortest codewords.
 *
 * Codewords address dictionary entries by *rank* (frequency order).
 */

#ifndef CODECOMP_COMPRESS_ENCODING_HH
#define CODECOMP_COMPRESS_ENCODING_HH

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

#include "support/bitstream.hh"

namespace codecomp::compress {

enum class Scheme : uint8_t {
    Baseline, //!< 2-byte escape + index codewords
    OneByte,  //!< 1-byte escape-only codewords
    Nibble,   //!< 4/8/12/16-bit nibble-aligned codewords
};

/** Static parameters of one scheme. */
struct SchemeParams
{
    unsigned unitNibbles;  //!< branch-target granularity (paper 3.2.2)
    unsigned insnNibbles;  //!< stream cost of an uncompressed instruction
    unsigned maxCodewords;
    unsigned defaultAssumedCodewordNibbles; //!< greedy cost model input
};

SchemeParams schemeParams(Scheme scheme);

/** Size in nibbles of the codeword for dictionary rank @p rank. */
unsigned codewordNibbles(Scheme scheme, uint32_t rank);

/** Append the codeword for @p rank. */
void emitCodeword(NibbleWriter &writer, Scheme scheme, uint32_t rank);

/** Append one uncompressed instruction (with escape under Nibble). */
void emitInstruction(NibbleWriter &writer, Scheme scheme, uint32_t word);

/**
 * Classification of one stream item by its leading prefix nibbles.
 * Every decode decision of a scheme -- item length, codeword vs raw
 * instruction, and where the rank index sits -- is a pure function of
 * the first prefixNibbles of the item, so it can be precomputed into a
 * 256-entry table and the decoder reduced to one indexed load plus
 * shift/mask field extraction (DESIGN.md section 10).
 */
struct ItemClass
{
    uint8_t nibbles;       //!< total item length, escape included
    uint8_t isCodeword;    //!< 1 = codeword, 0 = uncompressed inst
    uint8_t indexNibbles;  //!< rank-index nibbles after the prefix
    uint8_t rewindNibbles; //!< nibbles to push back for non-codewords
    uint32_t rankBase;     //!< rank = rankBase + index
};

/** Per-scheme decode tables: the item class for every possible value
 *  of the leading prefix (one nibble under Nibble, one byte under
 *  Baseline/OneByte; single-nibble prefixes use entries 0..15). */
struct DecodeTables
{
    unsigned prefixNibbles;
    std::array<ItemClass, 256> classes;
};

/** The precomputed (constexpr) decode tables for @p scheme. */
const DecodeTables &decodeTables(Scheme scheme);

/**
 * Decode the item at the reader's cursor: a codeword rank, or
 * std::nullopt for an uncompressed instruction (whose 32-bit word is
 * then read with reader.getWord()). Mirrors the hardware decode rule:
 * under Baseline/OneByte an illegal primary opcode in the first byte
 * marks a codeword; under Nibble the first nibble classifies.
 * Table-driven; referenceDecodeCodeword is the checkable original.
 */
std::optional<uint32_t> decodeCodeword(NibbleReader &reader, Scheme scheme);

/**
 * Nibble length of the item starting at @p reader's cursor (escape
 * included), or std::nullopt if the remaining stream cannot hold the
 * whole item. Pure lookahead (the reader is taken by value); the image
 * validator and the engine's scan use it to classify truncated streams
 * before decodeCodeword would read off the end.
 */
std::optional<unsigned> peekItemNibbles(NibbleReader reader, Scheme scheme);

/**
 * The original cascaded-branch decoders, kept verbatim as the reference
 * the table-driven fast path is verified against (golden-checksum
 * suite, DecodePath::Reference engine scans). Semantically identical to
 * decodeCodeword / peekItemNibbles by contract.
 */
std::optional<uint32_t> referenceDecodeCodeword(NibbleReader &reader,
                                                Scheme scheme);
std::optional<unsigned> referencePeekItemNibbles(NibbleReader reader,
                                                 Scheme scheme);

/** Descriptive display name: "baseline-2byte", "one-byte",
 *  "nibble-aligned" (stats output and figures). */
const char *schemeName(Scheme scheme);

/** CLI / job-spec name: "baseline", "onebyte", "nibble". */
const char *schemeCliName(Scheme scheme);

/** Inverse of schemeCliName; nullopt for an unknown name. */
std::optional<Scheme> parseSchemeName(std::string_view name);

} // namespace codecomp::compress

#endif // CODECOMP_COMPRESS_ENCODING_HH
