/**
 * @file
 * The paper's three codeword encodings, as registered codecs
 * (compress/codec.hh):
 *
 *  - Baseline (section 4.1): 2-byte codewords. The first byte is an
 *    escape byte built from one of the 8 illegal primary opcodes plus
 *    the remaining 2 bits of the byte (32 escape bytes); the second
 *    byte indexes 256 entries per escape, for up to 8192 codewords.
 *    Original programs remain executable on a baseline processor.
 *
 *  - OneByte (section 4.1.2, Figure 8): 1-byte codewords formed from
 *    the 32 escape bytes alone; dictionaries of 8/16/32 entries.
 *
 *  - Nibble (section 4.1.3, Figure 10): variable-length codewords of
 *    4/8/12/16 bits, 4-bit aligned (geometry in nibble_geometry.hh).
 *    4680 codewords total; the most frequent entries get the shortest
 *    codewords.
 *
 * Codewords address dictionary entries by *rank* (frequency order).
 * The Scheme enum, SchemeParams, decode-table types, and the
 * registry-backed free functions all live in compress/codec.hh.
 */

#ifndef CODECOMP_COMPRESS_ENCODING_HH
#define CODECOMP_COMPRESS_ENCODING_HH

#include "compress/codec.hh"

namespace codecomp::compress {

/** @{ The paper-scheme codec singletons (registered in codec.cc). */
const SchemeCodec &baselineCodec();
const SchemeCodec &oneByteCodec();
const SchemeCodec &nibbleCodec();
/** @} */

} // namespace codecomp::compress

#endif // CODECOMP_COMPRESS_ENCODING_HH
