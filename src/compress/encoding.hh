/**
 * @file
 * Codeword encodings for compressed programs.
 *
 * Three schemes from the paper:
 *
 *  - Baseline (section 4.1): 2-byte codewords. The first byte is an
 *    escape byte built from one of the 8 illegal primary opcodes plus
 *    the remaining 2 bits of the byte (32 escape bytes); the second
 *    byte indexes 256 entries per escape, for up to 8192 codewords.
 *    Original programs remain executable on a baseline processor.
 *
 *  - OneByte (section 4.1.2, Figure 8): 1-byte codewords formed from
 *    the 32 escape bytes alone; dictionaries of 8/16/32 entries.
 *
 *  - Nibble (section 4.1.3, Figure 10): variable-length codewords of
 *    4/8/12/16 bits, 4-bit aligned. First-nibble classes: 0-7 ->
 *    4-bit codeword (8), 8-11 -> 8-bit (64), 12-13 -> 12-bit (512),
 *    14 -> 16-bit (4096), 15 -> escape preceding an uncompressed
 *    32-bit instruction. 4680 codewords total; the most frequent
 *    entries get the shortest codewords.
 *
 * Codewords address dictionary entries by *rank* (frequency order).
 */

#ifndef CODECOMP_COMPRESS_ENCODING_HH
#define CODECOMP_COMPRESS_ENCODING_HH

#include <cstdint>
#include <optional>

#include "support/bitstream.hh"

namespace codecomp::compress {

enum class Scheme : uint8_t {
    Baseline, //!< 2-byte escape + index codewords
    OneByte,  //!< 1-byte escape-only codewords
    Nibble,   //!< 4/8/12/16-bit nibble-aligned codewords
};

/** Static parameters of one scheme. */
struct SchemeParams
{
    unsigned unitNibbles;  //!< branch-target granularity (paper 3.2.2)
    unsigned insnNibbles;  //!< stream cost of an uncompressed instruction
    unsigned maxCodewords;
    unsigned defaultAssumedCodewordNibbles; //!< greedy cost model input
};

SchemeParams schemeParams(Scheme scheme);

/** Size in nibbles of the codeword for dictionary rank @p rank. */
unsigned codewordNibbles(Scheme scheme, uint32_t rank);

/** Append the codeword for @p rank. */
void emitCodeword(NibbleWriter &writer, Scheme scheme, uint32_t rank);

/** Append one uncompressed instruction (with escape under Nibble). */
void emitInstruction(NibbleWriter &writer, Scheme scheme, uint32_t word);

/**
 * Decode the item at the reader's cursor: a codeword rank, or
 * std::nullopt for an uncompressed instruction (whose 32-bit word is
 * then read with reader.getWord()). Mirrors the hardware decode rule:
 * under Baseline/OneByte an illegal primary opcode in the first byte
 * marks a codeword; under Nibble the first nibble classifies.
 */
std::optional<uint32_t> decodeCodeword(NibbleReader &reader, Scheme scheme);

/**
 * Nibble length of the item starting at @p reader's cursor (escape
 * included), or std::nullopt if the remaining stream cannot hold the
 * whole item. Pure lookahead (the reader is taken by value); the image
 * validator and the engine's scan use it to classify truncated streams
 * before decodeCodeword would read off the end.
 */
std::optional<unsigned> peekItemNibbles(NibbleReader reader, Scheme scheme);

const char *schemeName(Scheme scheme);

} // namespace codecomp::compress

#endif // CODECOMP_COMPRESS_ENCODING_HH
