/**
 * @file
 * The result of compressing a program: the nibble-granular compressed
 * .text stream, the rank-ordered dictionary, the patched .data image,
 * and the address map from original instruction indices to compressed
 * nibble offsets.
 *
 * Code pointers in the compressed address space are absolute nibble
 * addresses: nibbleBase + offset, where nibbleBase = 2 * textBase.
 * Jump tables, LR, and CTR all hold such pointers when a program runs
 * on the CompressedCpu.
 */

#ifndef CODECOMP_COMPRESS_IMAGE_HH
#define CODECOMP_COMPRESS_IMAGE_HH

#include <unordered_map>

#include "compress/encoding.hh"
#include "compress/selection.hh"
#include "program/program.hh"

namespace codecomp::compress {

/** Size breakdown of a compressed program, in nibbles (paper Fig 9). */
struct Composition
{
    size_t insnNibbles = 0;     //!< uncompressed instruction words
    size_t escapeNibbles = 0;   //!< escape bytes / escape nibbles
    size_t codewordNibbles = 0; //!< codeword index portions
    size_t dictNibbles = 0;     //!< dictionary contents

    size_t
    totalNibbles() const
    {
        return insnNibbles + escapeNibbles + codewordNibbles + dictNibbles;
    }
};

struct CompressedImage
{
    /** Absolute nibble address of compressed-text offset 0. */
    static constexpr uint32_t nibbleBase = Program::textBase * 2;

    Scheme scheme = Scheme::Baseline;

    /** The raw selection (entry order = selection order); retained for
     *  the dictionary-usage analyses (paper Figs 6 and 7). */
    SelectionResult selection;

    /** Dictionary reordered so index == codeword rank. */
    std::vector<std::vector<isa::Word>> entriesByRank;
    std::vector<uint32_t> rankOfEntry; //!< selection entryId -> rank

    std::vector<uint8_t> text; //!< compressed stream (nibble-packed)
    size_t textNibbles = 0;

    std::vector<uint8_t> data; //!< .data with jump tables re-patched
    uint32_t dataBase = 0;

    /** Original instruction index -> nibble offset of the item that
     *  begins there (instruction, codeword, or far-branch stub). */
    std::unordered_map<uint32_t, uint32_t> addrMap;

    uint32_t entryPointNibble = 0;
    Composition composition;
    uint32_t originalTextBytes = 0;
    uint32_t farBranchExpansions = 0;

    /** Absolute code pointer for original instruction @p index. */
    uint32_t
    codePointer(uint32_t index) const
    {
        return nibbleBase + addrMap.at(index);
    }

    size_t compressedTextBytes() const { return (textNibbles + 1) / 2; }

    /** ROM cost of the dictionary in the scheme's own serialized form
     *  (flat words for the paper schemes, factored streams for
     *  operand-factored). */
    size_t
    dictionaryBytes() const
    {
        return schemeCodec(scheme).dictionaryBytes(entriesByRank);
    }

    /** Compressed program size: text plus dictionary overhead. */
    size_t
    totalBytes() const
    {
        return compressedTextBytes() + dictionaryBytes();
    }

    /** compressed size / original size (paper Eq. 1); < 1 is smaller. */
    double
    compressionRatio() const
    {
        return static_cast<double>(totalBytes()) / originalTextBytes;
    }
};

} // namespace codecomp::compress

#endif // CODECOMP_COMPRESS_IMAGE_HH
