/**
 * @file
 * Pluggable dictionary-selection strategies for the compression
 * pipeline's Select pass.
 *
 * The paper's compressor selects greedily with a *fixed assumed*
 * codeword cost, even though the nibble scheme's true cost is 4/8/12/16
 * bits depending on the entry's final frequency rank (DESIGN.md section
 * 5.3). A strategy object turns that choice into a policy:
 *
 *  - Greedy:          the production lazy-heap greedy at the scheme's
 *                     assumed cost (exact greedy, fast).
 *  - GreedyReference: the O(candidates x selections) oracle with the
 *                     same tie-breaking; differential-testing anchor.
 *  - IterativeRefit:  re-runs greedy selection with corrected codeword
 *                     costs -- first the alternative uniform widths the
 *                     scheme can produce, then per-candidate costs
 *                     derived from the best round's frequency ranking
 *                     -- keeping the best selection by estimated
 *                     compressed size, until the estimate stops
 *                     improving or a bounded round count is hit.
 *                     Round 0 equals Greedy, so refit never estimates
 *                     worse than greedy.
 *
 * Strategies are stateless between select() calls except for
 * per-invocation statistics (rounds), so one instance per compression
 * is the intended lifetime (PipelineContext owns it).
 */

#ifndef CODECOMP_COMPRESS_STRATEGY_HH
#define CODECOMP_COMPRESS_STRATEGY_HH

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "compress/candidates.hh"
#include "compress/encoding.hh"
#include "compress/selection.hh"

namespace codecomp::compress {

enum class StrategyKind : uint8_t {
    Greedy,          //!< lazy-heap greedy, assumed codeword cost
    GreedyReference, //!< naive from-scratch greedy oracle
    IterativeRefit,  //!< rank-aware cost refit loop around greedy
};

/** CLI name of @p kind: "greedy", "reference", "refit". */
const char *strategyName(StrategyKind kind);

/** Inverse of strategyName; nullopt for an unknown name. */
std::optional<StrategyKind> parseStrategyName(std::string_view name);

/** Every registered strategy kind, in CLI-listing order. */
const std::vector<StrategyKind> &allStrategyKinds();

/** The CLI names of every strategy joined by @p sep, for usage text
 *  and error messages ("greedy, reference, refit"). */
std::string strategyCliNames(const char *sep = ", ");

/** One-line description of @p kind (ccompress --list-strategies). */
const char *strategySummary(StrategyKind kind);

/** parseStrategyName that raises a catchable fatal naming the valid
 *  set on an unknown name; the shared parse path of ccfarm/ccautotune
 *  and the job-spec reader. */
StrategyKind parseStrategyNameOrFatal(std::string_view name);

class SelectionStrategy
{
  public:
    virtual ~SelectionStrategy() = default;

    virtual const char *name() const = 0;

    /** Select a dictionary over pre-enumerated @p candidates.
     *  @p textSize is program.text.size(); @p scheme feeds rank-aware
     *  cost models (ignored by the fixed-cost strategies). */
    virtual SelectionResult select(size_t textSize,
                                   const std::vector<Candidate> &candidates,
                                   const GreedyConfig &config,
                                   Scheme scheme) = 0;

    /** Selection rounds the last select() ran (1 for single-pass). */
    virtual uint32_t rounds() const { return 1; }
};

struct RefitOptions
{
    /** Refit iterations after the initial greedy round (uniform-width
     *  bias rounds plus rank-derived rounds); the rank-derived loop
     *  also stops as soon as the estimated size stops improving. */
    uint32_t maxRounds = 6;
};

std::unique_ptr<SelectionStrategy> makeStrategy(StrategyKind kind,
                                                const RefitOptions &refit = {});

/**
 * Traffic-weighted greedy selection: maximize *dynamic* fetch nibbles
 * saved instead of static nibbles. Each occurrence of a candidate is
 * worth (insnNibbles * len - codewordNibbles) nibbles of fetch traffic
 * per execution; a candidate lies within one basic block, so the
 * execution count of an occurrence is the count of its first
 * instruction. @p execCount holds per-instruction execution counts
 * indexed by original instruction index (timing::profileExecutionCounts
 * produces one from a profiling run) and must cover program.text.
 *
 * This is the static-vs-traffic objective split of bench/ext_profile,
 * promoted into the library so the timing subsystem and future
 * profile-guided strategies share one definition. Catchable fatal on an
 * invalid config or a mis-sized profile.
 */
SelectionResult selectByTraffic(const Program &program,
                                const std::vector<uint64_t> &execCount,
                                const GreedyConfig &config);

/**
 * Estimated compressed size, in nibbles, of @p selection: codewords at
 * their rank-derived width + uncompressed instructions + dictionary
 * contents. Equals Composition::totalNibbles() of the realized image
 * whenever layout inserts no far-branch stubs (the overwhelmingly
 * common case; see ext_ablations A3). The refit loop minimizes this.
 */
uint64_t estimateSelectionNibbles(const SelectionResult &selection,
                                  const GreedyConfig &config, Scheme scheme,
                                  size_t textSize);

} // namespace codecomp::compress

#endif // CODECOMP_COMPRESS_STRATEGY_HH
