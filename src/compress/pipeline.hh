/**
 * @file
 * The compression pipeline: an explicit sequence of named passes over a
 * shared PipelineContext, with per-pass wall time and counters.
 *
 * The passes, in order (Pipeline::standard()):
 *
 *   Enumerate   - CFG construction + candidate enumeration (the only
 *                 parallel stage; deterministic for any job count)
 *   Select      - dictionary selection through the configured
 *                 SelectionStrategy (strategy.hh)
 *   RankAssign  - frequency ranking, rank-ordered dictionary
 *   Layout      - compressed-stream item list + initial addresses
 *   BranchPatch - far-branch stub expansion to fixpoint
 *   Emit        - nibble-stream emission + jump-table re-patching
 *
 * compressProgram()/compressWithSelection() (compressor.hh) are thin
 * wrappers over Pipeline::standard()/Pipeline::fromSelection(); callers
 * that want the per-pass breakdown run the pipeline directly or use the
 * stats-returning compressProgram overload.
 */

#ifndef CODECOMP_COMPRESS_PIPELINE_HH
#define CODECOMP_COMPRESS_PIPELINE_HH

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "compress/cache.hh"
#include "compress/candidates.hh"
#include "compress/compressor.hh"
#include "compress/strategy.hh"
#include "program/cfg.hh"

namespace codecomp::compress {

struct LayoutWork;

/** Timing and counters for one executed pass. */
struct PassStats
{
    std::string name;
    double millis = 0.0;

    /** Pass-specific counts (candidates, entries, expansions, ...),
     *  in insertion order. */
    std::vector<std::pair<std::string, uint64_t>> counters;

    /** Counter value by name; 0 if the pass never set it. */
    uint64_t counter(std::string_view key) const;
};

/** Run record of one pipeline execution. */
struct PipelineStats
{
    std::string strategy; //!< SelectionStrategy name, "" if preselected
    std::string scheme;
    uint32_t selectionRounds = 1;
    std::vector<PassStats> passes;

    double totalMillis() const;

    /** Stats of the pass named @p name, or nullptr if it did not run. */
    const PassStats *pass(std::string_view name) const;

    /** Serialize to a JSON object (support/json.hh). */
    std::string toJson() const;
};

/**
 * Everything the passes share. Constructing a context validates the
 * derived selection config (fatal on nonsense like minEntryLen >
 * maxEntryLen) and instantiates the configured strategy.
 */
struct PipelineContext
{
    PipelineContext(const Program &program, const CompressorConfig &config);
    ~PipelineContext();
    PipelineContext(const PipelineContext &) = delete;
    PipelineContext &operator=(const PipelineContext &) = delete;

    const Program &program;
    CompressorConfig config;
    SchemeParams params;
    GreedyConfig greedy; //!< derived: clipped maxEntries, scheme costs

    std::unique_ptr<SelectionStrategy> strategy;

    /**
     * Optional Enumerate/Select result cache (cache.hh), shared across
     * compressions (the farm attaches one per corpus run). When set,
     * @p programHash must hold PipelineCache::programHash(program);
     * products land in sharedCandidates / cachedSelection instead of
     * being recomputed. Null leaves the pipeline byte-for-byte as
     * before -- and cached runs produce bit-identical images anyway,
     * because both cached stages are deterministic in the key.
     */
    PipelineCache *cache = nullptr;
    uint64_t programHash = 0;

    // ---- pass products ----
    std::optional<Cfg> cfg;            //!< Enumerate
    std::vector<Candidate> candidates; //!< Enumerate
    /** Enumerate product when served by (or stored into) the cache. */
    std::shared_ptr<const PipelineCache::CandidateList> sharedCandidates;
    /** Select product when the cache already held it (set during
     *  Enumerate, consumed by Select). */
    std::shared_ptr<const CachedSelection> cachedSelection;
    /** Rounds to report when Select was served from cache (0 = ask the
     *  strategy, as before). */
    uint32_t selectionRoundsOverride = 0;
    SelectionResult selection;         //!< Select (or seeded by caller)
    std::unique_ptr<LayoutWork> layout; //!< Layout..Emit
    CompressedImage image;             //!< RankAssign..Emit

    /** The enumerated candidates, wherever they live. */
    const std::vector<Candidate> &
    candidateList() const
    {
        return sharedCandidates ? *sharedCandidates : candidates;
    }

    /** Record a counter on the pass currently running (no-op when the
     *  pass functions are called outside Pipeline::run). */
    void counter(std::string name, uint64_t value);

    PassStats *activePass = nullptr;
};

/** An ordered list of named passes. */
class Pipeline
{
  public:
    using PassFn = std::function<void(PipelineContext &)>;

    Pipeline &addPass(std::string name, PassFn fn);

    /** Run every pass in order, timing each; ctx.image holds the
     *  compressed program afterwards. */
    PipelineStats run(PipelineContext &ctx) const;

    /** The full six-pass compression pipeline. */
    static Pipeline standard();

    /** RankAssign..Emit only, for a caller-seeded ctx.selection. */
    static Pipeline fromSelection();

  private:
    struct Pass
    {
        std::string name;
        PassFn fn;
    };

    std::vector<Pass> passes_;
};

// The standard passes, exposed individually for tests.
void passEnumerate(PipelineContext &ctx);
void passSelect(PipelineContext &ctx);
void passRankAssign(PipelineContext &ctx);
void passLayout(PipelineContext &ctx);
void passBranchPatch(PipelineContext &ctx);
void passEmit(PipelineContext &ctx);

} // namespace codecomp::compress

#endif // CODECOMP_COMPRESS_PIPELINE_HH
