/**
 * @file
 * On-disk formats for linked programs (.ccp) and compressed images
 * (.cci) -- the interchange between the minicc, ccompress, and ccrun
 * command-line tools.
 *
 * The compressed-image format stores exactly what a compressed-code
 * part would hold in ROM: the scheme, the nibble stream, the
 * rank-ordered dictionary, the patched .data image, and the entry
 * point. Analysis-only fields of CompressedImage (the raw selection,
 * address map, composition) are not persisted; a loaded image
 * executes, but the dictionary-usage analyses require the in-memory
 * result of compressProgram().
 */

#ifndef CODECOMP_COMPRESS_OBJFILE_HH
#define CODECOMP_COMPRESS_OBJFILE_HH

#include "compress/image.hh"
#include "program/program.hh"

namespace codecomp {

/** @{ Program (.ccp) serialization. */
std::vector<uint8_t> saveProgram(const Program &program);
Program loadProgram(const std::vector<uint8_t> &bytes);
/** @} */

/** @{ Compressed image (.cci) serialization. */
std::vector<uint8_t> saveImage(const compress::CompressedImage &image);
compress::CompressedImage loadImage(const std::vector<uint8_t> &bytes);
/** @} */

} // namespace codecomp

#endif // CODECOMP_COMPRESS_OBJFILE_HH
