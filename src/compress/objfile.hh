/**
 * @file
 * On-disk formats for linked programs (.ccp) and compressed images
 * (.cci) -- the interchange between the minicc, ccompress, and ccrun
 * command-line tools.
 *
 * The compressed-image format stores exactly what a compressed-code
 * part would hold in ROM: the scheme, the nibble stream, the
 * rank-ordered dictionary, the patched .data image, and the entry
 * point. Analysis-only fields of CompressedImage (the raw selection,
 * address map, composition) are not persisted; a loaded image
 * executes, but the dictionary-usage analyses require the in-memory
 * result of compressProgram().
 *
 * Format v2 wraps the payload of both file types in an FNV-1a64
 * whole-payload checksum, so any byte-level corruption of a stored
 * file is rejected at load with a BadChecksum diagnostic. Loaded
 * payloads are then structurally validated (validateImage /
 * Program::validate) so that even a payload with a freshly recomputed
 * checksum -- or an in-memory image -- cannot reach the processors
 * with out-of-range dictionary indices, truncated streams, or branch
 * targets off item boundaries. The tryLoad* entry points report all of
 * this as typed LoadErrors; loadProgram/loadImage are thin throwing
 * wrappers.
 */

#ifndef CODECOMP_COMPRESS_OBJFILE_HH
#define CODECOMP_COMPRESS_OBJFILE_HH

#include "compress/image.hh"
#include "program/program.hh"
#include "support/serialize.hh"

namespace codecomp {

/** @{ Program (.ccp) serialization. */
std::vector<uint8_t> saveProgram(const Program &program);
Result<Program> tryLoadProgram(const std::vector<uint8_t> &bytes);
Program loadProgram(const std::vector<uint8_t> &bytes);
/** @} */

/** @{ Compressed image (.cci) serialization. */
std::vector<uint8_t> saveImage(const compress::CompressedImage &image);
Result<compress::CompressedImage>
tryLoadImage(const std::vector<uint8_t> &bytes);
compress::CompressedImage loadImage(const std::vector<uint8_t> &bytes);
/** @} */

/** Largest dictionary entry the file format accepts, in words. */
constexpr uint32_t maxImageEntryWords = 64;

/**
 * Full structural validation of a compressed image, as a hardware
 * loader would perform before handing the ROM to the fetch stage:
 *
 *  - the byte blob matches the declared nibble count, with a zero pad
 *    nibble when the count is odd;
 *  - the dictionary fits the scheme's codeword ceiling, every entry
 *    has 1..maxImageEntryWords words, every word decodes to a legal
 *    ppclite instruction, and no entry contains a relative branch;
 *  - the stream parses end to end (no item runs off the end), every
 *    codeword's rank indexes the dictionary, and every uncompressed
 *    word decodes;
 *  - every relative branch in the stream (and the entry point) lands
 *    on an item boundary inside the text;
 *  - the .data image fits the address space.
 *
 * Returns std::nullopt when valid. tryLoadImage runs this on every
 * loaded image; callers constructing images in memory (or mutating
 * them) can invoke it directly.
 */
std::optional<LoadError>
validateImage(const compress::CompressedImage &image);

} // namespace codecomp

#endif // CODECOMP_COMPRESS_OBJFILE_HH
