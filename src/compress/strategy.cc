#include "compress/strategy.hh"

#include <algorithm>
#include <functional>
#include <string>
#include <unordered_map>

#include "compress/greedy.hh"
#include "support/logging.hh"

namespace codecomp::compress {

namespace {

/** Hash key for one instruction sequence (same scheme as the candidate
 *  index in candidates.cc: no custom hasher needed). */
std::u32string
keyOf(const std::vector<isa::Word> &seq)
{
    std::u32string key;
    key.reserve(seq.size());
    for (isa::Word word : seq)
        key.push_back(static_cast<char32_t>(word));
    return key;
}

class GreedyStrategy : public SelectionStrategy
{
  public:
    const char *name() const override { return "greedy"; }

    SelectionResult
    select(size_t textSize, const std::vector<Candidate> &candidates,
           const GreedyConfig &config, Scheme) override
    {
        return selectGreedyFromCandidates(textSize, candidates, config);
    }
};

class GreedyReferenceStrategy : public SelectionStrategy
{
  public:
    const char *name() const override { return "reference"; }

    SelectionResult
    select(size_t textSize, const std::vector<Candidate> &candidates,
           const GreedyConfig &config, Scheme) override
    {
        return selectGreedyReferenceFromCandidates(textSize, candidates,
                                                   config);
    }
};

/**
 * Rank-aware cost refit. Greedy selection prices every codeword at one
 * assumed width, but the nibble scheme's true width is rank-dependent
 * (1..4 nibbles), so the assumption is wrong in two ways:
 *
 *  1. A global bias: the scheme default (2 nibbles) underestimates the
 *     width of most of the dictionary (every entry past rank 72 costs
 *     3-4 nibbles), so greedy over-admits marginal entries -- and each
 *     extra entry also pushes later entries across the 8/72/584 rank
 *     boundaries, widening *their* codewords.
 *  2. Per-candidate error: the most frequent entries cost only 1-2
 *     nibbles, less than a pessimistic global assumption would charge.
 *
 * The refit loop attacks both, keeping the selection with the smallest
 * estimated compressed size (estimateSelectionNibbles) throughout:
 *
 *  - Round 0 is plain greedy at the configured assumed cost --
 *    identical to the Greedy strategy, so refit can never end up with
 *    a worse estimate than greedy.
 *  - Bias rounds re-run greedy once per alternative uniform codeword
 *    width the scheme can produce (for the nibble scheme: 1, 3, and 4
 *    when the default 2 is configured). Fixed-width schemes have no
 *    alternative widths, so these rounds vanish there.
 *  - Rank rounds then re-run greedy with true per-candidate costs
 *    derived from the best selection so far: a previously selected
 *    candidate is priced at its actual rank's width, any other
 *    candidate at the width of the rank its standalone occurrence
 *    count would earn in that ranking. The loop stops when a round
 *    fails to improve the estimate or the round budget is exhausted.
 */
class IterativeRefitStrategy : public SelectionStrategy
{
  public:
    explicit IterativeRefitStrategy(const RefitOptions &options)
        : options_(options)
    {}

    const char *name() const override { return "refit"; }

    uint32_t rounds() const override { return rounds_; }

    SelectionResult
    select(size_t textSize, const std::vector<Candidate> &candidates,
           const GreedyConfig &config, Scheme scheme) override
    {
        SelectionResult best =
            selectGreedyFromCandidates(textSize, candidates, config);
        uint64_t best_estimate =
            estimateSelectionNibbles(best, config, scheme, textSize);
        rounds_ = 1;
        uint32_t budget = options_.maxRounds;

        for (unsigned width : alternativeWidths(config, scheme)) {
            if (budget == 0)
                break;
            GreedyConfig biased = config;
            biased.codewordNibbles = width;
            SelectionResult result =
                selectGreedyFromCandidates(textSize, candidates, biased);
            uint64_t estimate =
                estimateSelectionNibbles(result, config, scheme, textSize);
            ++rounds_;
            --budget;
            if (estimate < best_estimate) {
                best = std::move(result);
                best_estimate = estimate;
            }
        }

        while (budget > 0) {
            std::vector<uint32_t> costs =
                rankDerivedCosts(candidates, best, scheme);
            SelectionResult result = selectGreedyFromCandidates(
                textSize, candidates, config, costs);
            uint64_t estimate =
                estimateSelectionNibbles(result, config, scheme, textSize);
            ++rounds_;
            --budget;
            if (estimate >= best_estimate)
                break;
            best = std::move(result);
            best_estimate = estimate;
        }
        return best;
    }

  private:
    /** Every uniform codeword width the scheme's encoding can produce,
     *  except the width greedy already assumed in round 0. */
    static std::vector<unsigned>
    alternativeWidths(const GreedyConfig &config, Scheme scheme)
    {
        std::vector<unsigned> widths;
        unsigned max = schemeParams(scheme).maxCodewords;
        for (uint32_t rank = 0; rank < max; ++rank) {
            unsigned width = codewordNibbles(scheme, rank);
            if (width != config.codewordNibbles &&
                (widths.empty() || widths.back() != width))
                widths.push_back(width);
        }
        return widths;
    }

    /** True per-candidate codeword costs under @p previous's frequency
     *  ranking: actual rank width for previously selected sequences,
     *  predicted rank width (by standalone occurrence count) for the
     *  rest. */
    static std::vector<uint32_t>
    rankDerivedCosts(const std::vector<Candidate> &candidates,
                     const SelectionResult &previous, Scheme scheme)
    {
        std::vector<uint32_t> rank_of_entry = rankByUseCount(previous);
        std::unordered_map<std::u32string, uint32_t> rank_of_seq;
        rank_of_seq.reserve(previous.dict.entries.size());
        for (uint32_t id = 0; id < previous.dict.entries.size(); ++id)
            rank_of_seq.emplace(keyOf(previous.dict.entries[id]),
                                rank_of_entry[id]);

        // useCount sorted descending IS the rank order; an unselected
        // candidate with occ occurrences would slot in after every
        // entry used more than occ times.
        std::vector<uint32_t> by_rank = previous.useCount;
        std::sort(by_rank.begin(), by_rank.end(), std::greater<>());

        std::vector<uint32_t> costs(candidates.size());
        for (uint32_t id = 0; id < candidates.size(); ++id) {
            const Candidate &cand = candidates[id];
            uint32_t rank;
            auto it = rank_of_seq.find(keyOf(cand.seq));
            if (it != rank_of_seq.end()) {
                rank = it->second;
            } else {
                uint32_t occ = countNonOverlapping(
                    cand.positions,
                    static_cast<uint32_t>(cand.seq.size()), {});
                rank = static_cast<uint32_t>(
                    std::upper_bound(by_rank.begin(), by_rank.end(), occ,
                                     std::greater<>()) -
                    by_rank.begin());
                // A full dictionary predicts one-past-the-last rank;
                // price it like the widest real codeword.
                rank = std::min(rank, schemeParams(scheme).maxCodewords - 1);
            }
            costs[id] = codewordNibbles(scheme, rank);
        }
        return costs;
    }

    RefitOptions options_;
    uint32_t rounds_ = 1;
};

} // namespace

const char *
strategyName(StrategyKind kind)
{
    switch (kind) {
      case StrategyKind::Greedy:
        return "greedy";
      case StrategyKind::GreedyReference:
        return "reference";
      case StrategyKind::IterativeRefit:
        return "refit";
    }
    CC_PANIC("bad strategy kind");
}

std::optional<StrategyKind>
parseStrategyName(std::string_view name)
{
    if (name == "greedy")
        return StrategyKind::Greedy;
    if (name == "reference")
        return StrategyKind::GreedyReference;
    if (name == "refit")
        return StrategyKind::IterativeRefit;
    return std::nullopt;
}

const std::vector<StrategyKind> &
allStrategyKinds()
{
    static const std::vector<StrategyKind> kinds = {
        StrategyKind::Greedy,
        StrategyKind::GreedyReference,
        StrategyKind::IterativeRefit,
    };
    return kinds;
}

std::string
strategyCliNames(const char *sep)
{
    std::string names;
    for (StrategyKind kind : allStrategyKinds()) {
        if (!names.empty())
            names += sep;
        names += strategyName(kind);
    }
    return names;
}

const char *
strategySummary(StrategyKind kind)
{
    switch (kind) {
      case StrategyKind::Greedy:
        return "lazy-heap greedy at the scheme's assumed codeword cost";
      case StrategyKind::GreedyReference:
        return "naive from-scratch greedy oracle (differential anchor)";
      case StrategyKind::IterativeRefit:
        return "rank-aware cost refit loop around greedy";
    }
    CC_PANIC("bad strategy kind");
}

StrategyKind
parseStrategyNameOrFatal(std::string_view name)
{
    std::optional<StrategyKind> kind = parseStrategyName(name);
    if (!kind)
        CC_FATAL("unknown strategy \"", std::string(name),
                 "\" (expected ", strategyCliNames(", "), ")");
    return *kind;
}

std::unique_ptr<SelectionStrategy>
makeStrategy(StrategyKind kind, const RefitOptions &refit)
{
    switch (kind) {
      case StrategyKind::Greedy:
        return std::make_unique<GreedyStrategy>();
      case StrategyKind::GreedyReference:
        return std::make_unique<GreedyReferenceStrategy>();
      case StrategyKind::IterativeRefit:
        return std::make_unique<IterativeRefitStrategy>(refit);
    }
    CC_PANIC("bad strategy kind");
}

SelectionResult
selectByTraffic(const Program &program,
                const std::vector<uint64_t> &execCount,
                const GreedyConfig &config)
{
    std::string config_error = greedyConfigError(config);
    if (!config_error.empty())
        CC_FATAL("bad selection config: ", config_error);
    if (execCount.size() != program.text.size())
        CC_FATAL("profile covers ", execCount.size(),
                 " instructions, program has ", program.text.size());

    Cfg cfg = Cfg::build(program);
    std::vector<Candidate> candidates = enumerateCandidates(
        program, cfg, config.minEntryLen, config.maxEntryLen);

    // Dynamic nibbles saved by one occurrence per execution; the whole
    // sequence executes together (single basic block), so its count is
    // the count of its first instruction.
    auto traffic_savings = [&](const Candidate &cand,
                               const std::vector<bool> &consumed) {
        uint32_t length = static_cast<uint32_t>(cand.seq.size());
        int64_t per_exec =
            static_cast<int64_t>(config.insnNibbles) * length -
            static_cast<int64_t>(config.codewordNibbles);
        int64_t total = 0;
        forEachNonOverlapping(cand.positions, length, consumed,
                              [&](uint32_t pos) {
                                  total += per_exec *
                                           static_cast<int64_t>(
                                               execCount[pos]);
                              });
        return total;
    };

    SelectionResult result;
    std::vector<bool> consumed(program.text.size(), false);
    while (result.dict.entries.size() < config.maxEntries) {
        int64_t best = 0;
        uint32_t best_id = UINT32_MAX;
        for (uint32_t id = 0; id < candidates.size(); ++id) {
            int64_t savings = traffic_savings(candidates[id], consumed);
            if (savings > best) {
                best = savings;
                best_id = id;
            }
        }
        if (best_id == UINT32_MAX)
            break;
        const Candidate &cand = candidates[best_id];
        uint32_t length = static_cast<uint32_t>(cand.seq.size());
        uint32_t entry_id =
            static_cast<uint32_t>(result.dict.entries.size());
        uint32_t uses = forEachNonOverlapping(
            cand.positions, length, consumed, [&](uint32_t pos) {
                for (uint32_t i = pos; i < pos + length; ++i)
                    consumed[i] = true;
                result.placements.push_back({pos, length, entry_id});
            });
        result.dict.entries.push_back(cand.seq);
        result.useCount.push_back(uses);
    }
    std::sort(result.placements.begin(), result.placements.end(),
              [](const Placement &a, const Placement &b) {
                  return a.start < b.start;
              });
    return result;
}

uint64_t
estimateSelectionNibbles(const SelectionResult &selection,
                         const GreedyConfig &config, Scheme scheme,
                         size_t textSize)
{
    std::vector<uint32_t> rank_of_entry = rankByUseCount(selection);
    uint64_t stream = 0;
    uint64_t covered = 0;
    for (const Placement &p : selection.placements) {
        stream += codewordNibbles(scheme, rank_of_entry[p.entryId]);
        covered += p.length;
    }
    CC_ASSERT(covered <= textSize, "placements exceed text");
    stream += (textSize - covered) * config.insnNibbles;
    uint64_t dict = 0;
    for (const auto &entry : selection.dict.entries)
        dict += entry.size() * config.dictEntryNibbles +
                config.dictEntryExtraNibbles;
    return stream + dict;
}

} // namespace codecomp::compress
