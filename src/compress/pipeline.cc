#include "compress/pipeline.hh"

#include <algorithm>
#include <chrono>

#include "isa/builder.hh"
#include "support/json.hh"
#include "support/logging.hh"

namespace codecomp::compress {

namespace {

constexpr uint8_t regFar = 2; //!< reserved for far-branch stubs

/** Field width of a relative branch's displacement. */
unsigned
dispBits(const isa::Inst &inst)
{
    return inst.op == isa::Op::B ? 24 : 14;
}

/** True when execution can continue past @p word into the next
 *  sequential instruction. Conservative: anything that is not an
 *  unconditional non-linking branch is assumed to fall through. */
bool
canFallThrough(isa::Word word)
{
    isa::Inst inst = isa::decode(word);
    if (inst.lk)
        return true; // calls resume at the next sequential address
    if (inst.op == isa::Op::B)
        return false;
    if ((inst.op == isa::Op::Bc || inst.op == isa::Op::Bclr ||
         inst.op == isa::Op::Bcctr) &&
        inst.bo == static_cast<uint8_t>(isa::Bo::Always))
        return false;
    return true;
}

/** True when the far-branch expander (LayoutWork::expand) can rewrite
 *  @p inst through an absolute-target stub. */
bool
farExpandable(const isa::Inst &inst)
{
    if (inst.op == isa::Op::B)
        return true;
    return inst.op == isa::Op::Bc && !inst.lk &&
           inst.bo != static_cast<uint8_t>(isa::Bo::DecNz);
}

} // namespace

/** One slot of the compressed layout. */
struct LayoutItem
{
    enum class Kind : uint8_t {
        Insn,     //!< original instruction (branches patched at emission)
        Codeword, //!< dictionary reference
        SynFixed, //!< synthetic instruction emitted verbatim
        SynLis,   //!< lis r2, hi16(pointer to targetIndex)
        SynOri,   //!< ori r2, r2, lo16(pointer to targetIndex)
    };

    Kind kind;
    isa::Word word = 0;
    uint32_t entryId = 0;
    uint32_t origIndex = UINT32_MAX;   //!< set on items that begin at an
                                       //!< original instruction
    uint32_t targetIndex = UINT32_MAX; //!< branch/pointer target
};

/**
 * Working state shared by the Layout, BranchPatch, and Emit passes: the
 * item list, its nibble addresses, and the original-index -> nibble
 * address map. References the context's program and image.rankOfEntry,
 * both of which outlive it.
 */
struct LayoutWork
{
    LayoutWork(const Program &program, const SchemeParams &params,
               Scheme scheme, const SelectionResult &selection,
               const std::vector<uint32_t> &rank_of_entry)
        : program_(program), params_(params),
          codec_(schemeCodec(scheme)), rankOfEntry_(rank_of_entry)
    {
        buildItems(selection);
    }

    /** One far-branch expansion round: rewrite every branch whose
     *  displacement no longer fits through an absolute-target stub and
     *  reassign addresses. Returns the number of branches expanded;
     *  0 means addresses are at fixpoint. */
    uint32_t
    expandFarBranches()
    {
        std::vector<size_t> far = findFarBranches();
        if (far.empty())
            return 0;
        expand(far);
        assignAddresses();
        return static_cast<uint32_t>(far.size());
    }

    const std::vector<LayoutItem> &items() const { return items_; }
    const std::vector<uint32_t> &itemAddr() const { return item_addr_; }
    const std::unordered_map<uint32_t, uint32_t> &addrMap() const
    {
        return addr_map_;
    }

    /** Patched displacement (in units) for the branch item at @p i. */
    int32_t
    branchDisp(size_t i) const
    {
        const LayoutItem &item = items_[i];
        uint32_t target_nib = addr_map_.at(item.targetIndex);
        int64_t delta = static_cast<int64_t>(target_nib) -
                        static_cast<int64_t>(item_addr_[i]);
        CC_ASSERT(delta % params_.unitNibbles == 0,
                  "branch target not unit-aligned");
        return static_cast<int32_t>(delta / params_.unitNibbles);
    }

    void
    assignAddresses()
    {
        item_addr_.resize(items_.size());
        addr_map_.clear();
        uint32_t addr = 0;
        for (size_t i = 0; i < items_.size(); ++i) {
            item_addr_[i] = addr;
            if (items_[i].origIndex != UINT32_MAX)
                addr_map_.emplace(items_[i].origIndex, addr);
            addr += itemNibbles(items_[i]);
        }
        total_nibbles_ = addr;
    }

    /**
     * Profile-guided hot/cold reordering (LayoutMode::HotCold): split
     * the item list into fall-through chains -- maximal runs broken
     * only after instructions that cannot fall through -- sort the hot
     * chains by descending traffic density so the hottest code packs
     * into the fewest cache lines, and append the cold chains in their
     * original order. Execution never crosses a chain boundary
     * sequentially and branch patching is address-map driven, so the
     * reordered image runs identically.
     *
     * If the new placement would strand a branch the far expander
     * cannot rewrite (bcl, bdnz) out of displacement range, the whole
     * reorder is abandoned and the original order restored
     * (@p reverted). Returns the number of chains that moved.
     */
    uint32_t
    reorderHotCold(const SelectionResult &selection,
                   const std::vector<uint64_t> &profile, bool *reverted)
    {
        *reverted = false;
        if (items_.empty())
            return 0;
        uint32_t n = static_cast<uint32_t>(program_.text.size());

        struct Chain
        {
            size_t first = 0, last = 0; //!< inclusive item range
            unsigned __int128 traffic = 0;
            uint64_t nibbles = 0;
            bool fallsThrough = false;
        };
        std::vector<Chain> chains;
        Chain current;
        current.first = 0;
        for (size_t i = 0; i < items_.size(); ++i) {
            const LayoutItem &item = items_[i];
            uint32_t cover_end =
                i + 1 < items_.size() ? items_[i + 1].origIndex : n;
            for (uint32_t j = item.origIndex; j < cover_end; ++j)
                current.traffic += profile[j];
            current.nibbles += itemNibbles(item);
            current.last = i;
            // A codeword can only end a chain through its entry's final
            // instruction (candidates never span block boundaries, so a
            // terminator can only be the last word).
            isa::Word last_word =
                item.kind == LayoutItem::Kind::Codeword
                    ? selection.dict.entries[item.entryId].back()
                    : item.word;
            bool falls = canFallThrough(last_word);
            if (!falls || i + 1 == items_.size()) {
                current.fallsThrough = falls;
                chains.push_back(current);
                current = Chain{};
                current.first = i + 1;
            }
        }
        if (chains.size() < 2)
            return 0;

        // Only the text-final chain can end with a fall-through (e.g. a
        // halting syscall); pin it last so nothing lands after it.
        size_t pinned = chains.back().fallsThrough
                            ? chains.size() - 1
                            : SIZE_MAX;
        std::vector<size_t> hot, cold;
        for (size_t c = 0; c < chains.size(); ++c) {
            if (c == pinned)
                continue;
            (chains[c].traffic > 0 ? hot : cold).push_back(c);
        }
        std::stable_sort(hot.begin(), hot.end(),
                         [&chains](size_t a, size_t b) {
                             return chains[a].traffic * chains[b].nibbles >
                                    chains[b].traffic * chains[a].nibbles;
                         });
        std::vector<size_t> order;
        order.reserve(chains.size());
        order.insert(order.end(), hot.begin(), hot.end());
        order.insert(order.end(), cold.begin(), cold.end());
        if (pinned != SIZE_MAX)
            order.push_back(pinned);

        uint32_t moved = 0;
        for (size_t k = 0; k < order.size(); ++k)
            moved += order[k] != k;
        if (moved == 0)
            return 0;

        std::vector<LayoutItem> original = items_;
        std::vector<LayoutItem> next;
        next.reserve(items_.size());
        for (size_t chain_index : order) {
            const Chain &chain = chains[chain_index];
            for (size_t i = chain.first; i <= chain.last; ++i)
                next.push_back(original[i]);
        }
        items_ = std::move(next);
        assignAddresses();

        // Trial-expand to fixpoint on a scratch copy: prove the far
        // expander can reach every stranded branch before committing.
        std::vector<LayoutItem> placed = items_;
        bool ok = true;
        for (;;) {
            std::vector<size_t> far = findFarBranches();
            if (far.empty())
                break;
            for (size_t i : far)
                if (!farExpandable(isa::decode(items_[i].word))) {
                    ok = false;
                    break;
                }
            if (!ok)
                break;
            expand(far);
            assignAddresses();
        }
        if (!ok) {
            *reverted = true;
            items_ = std::move(original);
            assignAddresses();
            return 0;
        }
        items_ = std::move(placed);
        assignAddresses();
        return moved;
    }

  private:
    void
    buildItems(const SelectionResult &selection)
    {
        size_t placement = 0;
        uint32_t index = 0;
        uint32_t n = static_cast<uint32_t>(program_.text.size());
        while (index < n) {
            if (placement < selection.placements.size() &&
                selection.placements[placement].start == index) {
                const Placement &p = selection.placements[placement];
                LayoutItem item;
                item.kind = LayoutItem::Kind::Codeword;
                item.entryId = p.entryId;
                item.origIndex = index;
                items_.push_back(item);
                index += p.length;
                ++placement;
                continue;
            }
            LayoutItem item;
            item.kind = LayoutItem::Kind::Insn;
            item.word = program_.text[index];
            item.origIndex = index;
            isa::Inst inst = isa::decode(item.word);
            if (inst.isRelativeBranch())
                item.targetIndex = program_.branchTargetIndex(index);
            items_.push_back(item);
            ++index;
        }
        CC_ASSERT(placement == selection.placements.size(),
                  "placements misaligned with text walk");
    }

    unsigned
    itemNibbles(const LayoutItem &item) const
    {
        if (item.kind == LayoutItem::Kind::Codeword)
            return codec_.codewordNibbles(rankOfEntry_[item.entryId]);
        return params_.insnNibbles;
    }

    std::vector<size_t>
    findFarBranches() const
    {
        std::vector<size_t> far;
        for (size_t i = 0; i < items_.size(); ++i) {
            const LayoutItem &item = items_[i];
            if (item.kind != LayoutItem::Kind::Insn ||
                item.targetIndex == UINT32_MAX)
                continue;
            isa::Inst inst = isa::decode(item.word);
            if (!isa::fitsSigned(branchDisp(i), dispBits(inst)))
                far.push_back(i);
        }
        return far;
    }

    void
    expand(const std::vector<size_t> &far)
    {
        std::vector<LayoutItem> next;
        next.reserve(items_.size() + far.size() * 6);
        size_t far_pos = 0;
        for (size_t i = 0; i < items_.size(); ++i) {
            if (far_pos >= far.size() || far[far_pos] != i) {
                next.push_back(items_[i]);
                continue;
            }
            ++far_pos;
            const LayoutItem &item = items_[i];
            isa::Inst inst = isa::decode(item.word);
            CC_ASSERT(!inst.isCall() || inst.op == isa::Op::B,
                      "cannot far-expand a linking conditional branch");

            auto syn = [](isa::Word word) {
                LayoutItem s;
                s.kind = LayoutItem::Kind::SynFixed;
                s.word = word;
                return s;
            };
            auto ptr_pair = [&item](LayoutItem::Kind kind) {
                LayoutItem s;
                s.kind = kind;
                s.targetIndex = item.targetIndex;
                return s;
            };

            size_t first = next.size();
            if (inst.op == isa::Op::Bc) {
                CC_ASSERT(inst.bo !=
                              static_cast<uint8_t>(isa::Bo::DecNz),
                          "cannot far-expand a CTR-decrementing branch");
                CC_ASSERT(!inst.lk, "cannot far-expand bcl");
                // bc cond -> trampoline (two instructions ahead);
                // b -> past the stub (five instructions ahead).
                int32_t two = static_cast<int32_t>(
                    2 * params_.insnNibbles / params_.unitNibbles);
                int32_t five = static_cast<int32_t>(
                    5 * params_.insnNibbles / params_.unitNibbles);
                next.push_back(syn(isa::encode(isa::bc(
                    static_cast<isa::Bo>(inst.bo), inst.bi, two))));
                next.push_back(syn(isa::encode(isa::b(five))));
            }
            next.push_back(ptr_pair(LayoutItem::Kind::SynLis));
            next.push_back(ptr_pair(LayoutItem::Kind::SynOri));
            next.push_back(syn(isa::encode(isa::mtctr(regFar))));
            next.push_back(syn(isa::encode(
                inst.lk ? isa::bctrl() : isa::bctr())));
            // The stub inherits the original instruction's identity so
            // branches targeting it still resolve.
            next[first].origIndex = item.origIndex;
        }
        items_ = std::move(next);
    }

    const Program &program_;
    SchemeParams params_;
    const SchemeCodec &codec_;
    const std::vector<uint32_t> &rankOfEntry_;
    std::vector<LayoutItem> items_;
    std::vector<uint32_t> item_addr_;
    std::unordered_map<uint32_t, uint32_t> addr_map_;
    uint32_t total_nibbles_ = 0;
};

// ---- stats ----

uint64_t
PassStats::counter(std::string_view key) const
{
    for (const auto &[name, value] : counters)
        if (name == key)
            return value;
    return 0;
}

double
PipelineStats::totalMillis() const
{
    double total = 0.0;
    for (const PassStats &pass : passes)
        total += pass.millis;
    return total;
}

const PassStats *
PipelineStats::pass(std::string_view name) const
{
    for (const PassStats &pass : passes)
        if (pass.name == name)
            return &pass;
    return nullptr;
}

std::string
PipelineStats::toJson() const
{
    JsonWriter json;
    json.beginObject();
    json.member("strategy", strategy);
    json.member("scheme", scheme);
    json.member("selection_rounds", selectionRounds);
    json.member("total_millis", totalMillis());
    json.key("passes");
    json.beginArray();
    for (const PassStats &pass : passes) {
        json.beginObject();
        json.member("name", pass.name);
        json.member("millis", pass.millis);
        json.key("counters");
        json.beginObject();
        for (const auto &[name, value] : pass.counters)
            json.member(name, value);
        json.endObject();
        json.endObject();
    }
    json.endArray();
    json.endObject();
    return json.str();
}

// ---- context ----

PipelineContext::PipelineContext(const Program &prog,
                                 const CompressorConfig &cfg)
    : program(prog), config(cfg), params(schemeParams(cfg.scheme))
{
    greedy.maxEntries = std::min(config.maxEntries, params.maxCodewords);
    greedy.maxEntryLen = config.maxEntryLen;
    greedy.insnNibbles = params.insnNibbles;
    greedy.dictEntryNibbles = params.dictEntryNibbles;
    greedy.dictEntryExtraNibbles = params.dictEntryExtraNibbles;
    greedy.codewordNibbles =
        config.assumedCodewordNibbles
            ? config.assumedCodewordNibbles
            : params.defaultAssumedCodewordNibbles;
    std::string error = greedyConfigError(greedy);
    if (!error.empty())
        CC_FATAL("invalid compressor config: ", error);
    strategy = makeStrategy(config.strategy,
                            RefitOptions{config.refitMaxRounds});
}

PipelineContext::~PipelineContext() = default;

void
PipelineContext::counter(std::string name, uint64_t value)
{
    if (activePass)
        activePass->counters.emplace_back(std::move(name), value);
}

// ---- passes ----

void
passEnumerate(PipelineContext &ctx)
{
    if (ctx.cache) {
        // A cached Select product supersedes enumeration: nothing
        // downstream of Select reads the candidates.
        ctx.cachedSelection = ctx.cache->findSelection(
            PipelineCache::selectKey(ctx.programHash, ctx.config));
        if (ctx.cachedSelection) {
            ctx.counter("select_cache_hit", 1);
            return;
        }
        uint64_t key =
            PipelineCache::enumerateKey(ctx.programHash, ctx.config);
        ctx.sharedCandidates = ctx.cache->findCandidates(key);
        if (ctx.sharedCandidates) {
            ctx.counter("enumerate_cache_hit", 1);
            ctx.counter("candidates", ctx.sharedCandidates->size());
            return;
        }
    }
    ctx.cfg = Cfg::build(ctx.program);
    ctx.candidates =
        enumerateCandidates(ctx.program, *ctx.cfg, ctx.greedy.minEntryLen,
                            ctx.greedy.maxEntryLen);
    ctx.counter("blocks", ctx.cfg->blocks().size());
    ctx.counter("candidates", ctx.candidates.size());
    if (ctx.cache) {
        auto computed = std::make_shared<PipelineCache::CandidateList>(
            std::move(ctx.candidates));
        ctx.candidates.clear();
        ctx.sharedCandidates = computed;
        ctx.cache->storeCandidates(
            PipelineCache::enumerateKey(ctx.programHash, ctx.config),
            std::move(computed));
    }
}

void
passSelect(PipelineContext &ctx)
{
    if (ctx.cachedSelection) {
        ctx.selection = ctx.cachedSelection->selection;
        ctx.selectionRoundsOverride = ctx.cachedSelection->rounds;
    } else {
        ctx.selection = ctx.strategy->select(ctx.program.text.size(),
                                             ctx.candidateList(),
                                             ctx.greedy,
                                             ctx.config.scheme);
        if (ctx.cache) {
            auto computed = std::make_shared<CachedSelection>();
            computed->selection = ctx.selection;
            computed->rounds = ctx.strategy->rounds();
            ctx.cache->storeSelection(
                PipelineCache::selectKey(ctx.programHash, ctx.config),
                std::move(computed));
        }
    }
    ctx.counter("entries", ctx.selection.dict.entries.size());
    ctx.counter("placements", ctx.selection.placements.size());
    ctx.counter("rounds", ctx.selectionRoundsOverride
                              ? ctx.selectionRoundsOverride
                              : ctx.strategy->rounds());
}

void
passRankAssign(PipelineContext &ctx)
{
    CC_ASSERT(ctx.program.dataBase != 0, "program not finalized");
    CompressedImage &image = ctx.image;
    image.scheme = ctx.config.scheme;
    image.originalTextBytes = ctx.program.textBytes();
    image.dataBase = ctx.program.dataBase;
    image.rankOfEntry = rankByUseCount(ctx.selection);
    image.entriesByRank.resize(ctx.selection.dict.entries.size());
    for (uint32_t id = 0; id < ctx.selection.dict.entries.size(); ++id)
        image.entriesByRank[image.rankOfEntry[id]] =
            ctx.selection.dict.entries[id];
    ctx.counter("entries", image.entriesByRank.size());
}

void
passLayout(PipelineContext &ctx)
{
    ctx.layout = std::make_unique<LayoutWork>(ctx.program, ctx.params,
                                              ctx.config.scheme,
                                              ctx.selection,
                                              ctx.image.rankOfEntry);
    ctx.layout->assignAddresses();
    if (ctx.config.layout == LayoutMode::HotCold) {
        if (ctx.config.trafficProfile.size() != ctx.program.text.size())
            CC_FATAL("hotcold layout needs a traffic profile covering "
                     "the program (got ",
                     ctx.config.trafficProfile.size(), " counts for ",
                     ctx.program.text.size(),
                     " instructions); run "
                     "timing::profileExecutionCounts first");
        bool reverted = false;
        uint32_t moved = ctx.layout->reorderHotCold(
            ctx.selection, ctx.config.trafficProfile, &reverted);
        ctx.counter("layout_chains_moved", moved);
        if (reverted)
            ctx.counter("layout_reverted", 1);
    }
    ctx.counter("items", ctx.layout->items().size());
}

void
passBranchPatch(PipelineContext &ctx)
{
    uint32_t expansions = 0;
    for (;;) {
        uint32_t expanded = ctx.layout->expandFarBranches();
        if (expanded == 0)
            break;
        expansions += expanded;
    }
    ctx.image.farBranchExpansions = expansions;
    ctx.counter("far_branch_expansions", expansions);
}

void
passEmit(PipelineContext &ctx)
{
    CompressedImage &image = ctx.image;
    const LayoutWork &layout = *ctx.layout;
    const SchemeCodec &codec = schemeCodec(ctx.config.scheme);
    image.selection = std::move(ctx.selection);

    auto account = [&image](const EmitAccounting &accounting) {
        image.composition.insnNibbles += accounting.insnNibbles;
        image.composition.escapeNibbles += accounting.escapeNibbles;
        image.composition.codewordNibbles += accounting.codewordNibbles;
    };
    auto accountInstruction = [&account, &codec]() {
        account(codec.instructionAccounting());
    };

    NibbleWriter writer;
    const auto &items = layout.items();
    for (size_t i = 0; i < items.size(); ++i) {
        const LayoutItem &item = items[i];
        CC_ASSERT(writer.nibbleCount() == layout.itemAddr()[i],
                  "emission drifted from layout");
        switch (item.kind) {
          case LayoutItem::Kind::Insn: {
            isa::Word word = item.word;
            if (item.targetIndex != UINT32_MAX) {
                isa::Inst inst = isa::decode(word);
                inst.disp = layout.branchDisp(i);
                inst.aa = false;
                word = isa::encode(inst);
            }
            codec.emitInstruction(writer, word);
            accountInstruction();
            break;
          }
          case LayoutItem::Kind::SynFixed:
            codec.emitInstruction(writer, item.word);
            accountInstruction();
            break;
          case LayoutItem::Kind::SynLis:
          case LayoutItem::Kind::SynOri: {
            uint32_t pointer = CompressedImage::nibbleBase +
                               layout.addrMap().at(item.targetIndex);
            isa::Inst inst =
                item.kind == LayoutItem::Kind::SynLis
                    ? isa::lis(regFar,
                               static_cast<int32_t>(static_cast<int16_t>(
                                   pointer >> 16)))
                    : isa::ori(regFar, regFar,
                               static_cast<int32_t>(pointer & 0xffff));
            codec.emitInstruction(writer, isa::encode(inst));
            accountInstruction();
            break;
          }
          case LayoutItem::Kind::Codeword: {
            uint32_t rank = image.rankOfEntry[item.entryId];
            codec.emitCodeword(writer, rank);
            account(codec.codewordAccounting(rank));
            break;
          }
        }
    }
    image.textNibbles = writer.nibbleCount();
    image.text = writer.bytes();
    image.addrMap = layout.addrMap();
    image.entryPointNibble = image.addrMap.at(ctx.program.entryIndex);
    image.composition.dictNibbles = image.dictionaryBytes() * 2;

    // The two size accountings must agree (DESIGN.md section 7).
    CC_ASSERT(image.composition.totalNibbles() ==
                  image.textNibbles + image.dictionaryBytes() * 2,
              "composition does not sum to image size");

    // ---- jump-table re-patch ----
    image.data = ctx.program.data;
    for (const CodeReloc &reloc : ctx.program.codeRelocs) {
        uint32_t pointer = image.codePointer(reloc.targetIndex);
        image.data[reloc.dataOffset] = static_cast<uint8_t>(pointer >> 24);
        image.data[reloc.dataOffset + 1] =
            static_cast<uint8_t>(pointer >> 16);
        image.data[reloc.dataOffset + 2] =
            static_cast<uint8_t>(pointer >> 8);
        image.data[reloc.dataOffset + 3] = static_cast<uint8_t>(pointer);
    }
    ctx.counter("text_nibbles", image.textNibbles);
    ctx.counter("code_relocs", ctx.program.codeRelocs.size());
}

// ---- pipeline ----

Pipeline &
Pipeline::addPass(std::string name, PassFn fn)
{
    passes_.push_back({std::move(name), std::move(fn)});
    return *this;
}

PipelineStats
Pipeline::run(PipelineContext &ctx) const
{
    PipelineStats stats;
    stats.scheme = schemeName(ctx.config.scheme);
    stats.passes.reserve(passes_.size());
    for (const Pass &pass : passes_) {
        PassStats &record = stats.passes.emplace_back();
        record.name = pass.name;
        ctx.activePass = &record;
        auto start = std::chrono::steady_clock::now();
        pass.fn(ctx);
        auto end = std::chrono::steady_clock::now();
        ctx.activePass = nullptr;
        record.millis =
            std::chrono::duration<double, std::milli>(end - start).count();
    }
    if (ctx.strategy) {
        stats.strategy = ctx.strategy->name();
        stats.selectionRounds = ctx.selectionRoundsOverride
                                    ? ctx.selectionRoundsOverride
                                    : ctx.strategy->rounds();
    }
    return stats;
}

Pipeline
Pipeline::standard()
{
    Pipeline pipeline;
    pipeline.addPass("Enumerate", passEnumerate)
        .addPass("Select", passSelect)
        .addPass("RankAssign", passRankAssign)
        .addPass("Layout", passLayout)
        .addPass("BranchPatch", passBranchPatch)
        .addPass("Emit", passEmit);
    return pipeline;
}

Pipeline
Pipeline::fromSelection()
{
    Pipeline pipeline;
    pipeline.addPass("RankAssign", passRankAssign)
        .addPass("Layout", passLayout)
        .addPass("BranchPatch", passBranchPatch)
        .addPass("Emit", passEmit);
    return pipeline;
}

} // namespace codecomp::compress
