/**
 * @file
 * Static program analyses backing the paper's characterization tables
 * and figures: instruction-encoding redundancy (Fig 1), branch-offset
 * field usage (Table 1), prologue/epilogue fractions (Table 3), and
 * dictionary-usage breakdowns (Figs 6, 7, 9).
 */

#ifndef CODECOMP_ANALYSIS_ANALYSIS_HH
#define CODECOMP_ANALYSIS_ANALYSIS_HH

#include <cstdint>
#include <map>
#include <vector>

#include "compress/image.hh"
#include "program/program.hh"

namespace codecomp::analysis {

/** Figure 1: how often distinct instruction encodings repeat. */
struct RedundancyProfile
{
    uint32_t totalInsns = 0;
    uint32_t distinctEncodings = 0;
    uint32_t usedOnce = 0;       //!< encodings appearing exactly once
    uint32_t insnsFromRepeated = 0; //!< instructions whose encoding repeats

    /** Fraction of the program made of once-used encodings. */
    double fractionSingleUse() const
    {
        return static_cast<double>(usedOnce) / totalInsns;
    }

    /** Fraction of the program made of repeated encodings. */
    double fractionRepeated() const
    {
        return static_cast<double>(insnsFromRepeated) / totalInsns;
    }

    /**
     * Cumulative coverage: fraction of program size accounted for by
     * the most frequent @p percent of distinct instruction words (the
     * paper's "1% of the most frequent instruction words account for
     * 30% of the program size" statistic for go).
     */
    double topEncodingCoverage(double percent) const;

    std::vector<uint32_t> countsDescending; //!< per distinct encoding
};

RedundancyProfile profileRedundancy(const Program &program);

/** Table 1: PC-relative branch offset field headroom. */
struct BranchOffsetUsage
{
    uint32_t pcRelativeBranches = 0;
    /** Branches whose offset field is too narrow to address targets at
     *  2-byte / 1-byte / 4-bit granularity. */
    uint32_t lack2Byte = 0;
    uint32_t lack1Byte = 0;
    uint32_t lack4Bit = 0;
};

BranchOffsetUsage analyzeBranchOffsets(const Program &program);

/** Table 3: static prologue/epilogue instruction fractions. */
struct PrologueEpilogue
{
    uint32_t totalInsns = 0;
    uint32_t prologueInsns = 0;
    uint32_t epilogueInsns = 0;

    double prologueFraction() const
    {
        return static_cast<double>(prologueInsns) / totalInsns;
    }
    double epilogueFraction() const
    {
        return static_cast<double>(epilogueInsns) / totalInsns;
    }
};

PrologueEpilogue analyzePrologueEpilogue(const Program &program);

/** Figures 6 and 7: dictionary composition and savings by entry
 *  length, computed from a compression result. */
struct DictionaryUsage
{
    /** entry length (instructions) -> number of dictionary entries. */
    std::map<uint32_t, uint32_t> entriesByLength;
    /** entry length -> bytes removed from the program by entries of
     *  that length (occurrences * (entry bytes - codeword bytes)). */
    std::map<uint32_t, int64_t> bytesSavedByLength;
    uint32_t totalEntries = 0;
    int64_t totalBytesSaved = 0;
};

DictionaryUsage analyzeDictionaryUsage(const compress::CompressedImage &img);

} // namespace codecomp::analysis

#endif // CODECOMP_ANALYSIS_ANALYSIS_HH
