#include "analysis/analysis.hh"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "support/logging.hh"

namespace codecomp::analysis {

RedundancyProfile
profileRedundancy(const Program &program)
{
    RedundancyProfile profile;
    profile.totalInsns = static_cast<uint32_t>(program.text.size());

    std::unordered_map<isa::Word, uint32_t> counts;
    for (isa::Word word : program.text)
        ++counts[word];

    profile.distinctEncodings = static_cast<uint32_t>(counts.size());
    for (const auto &[word, count] : counts) {
        profile.countsDescending.push_back(count);
        if (count == 1)
            ++profile.usedOnce;
        else
            profile.insnsFromRepeated += count;
    }
    std::sort(profile.countsDescending.begin(),
              profile.countsDescending.end(), std::greater<uint32_t>());
    return profile;
}

double
RedundancyProfile::topEncodingCoverage(double percent) const
{
    CC_ASSERT(percent > 0 && percent <= 100, "percent range");
    size_t take = static_cast<size_t>(
        std::ceil(countsDescending.size() * percent / 100.0));
    take = std::min(take, countsDescending.size());
    uint64_t covered = 0;
    for (size_t i = 0; i < take; ++i)
        covered += countsDescending[i];
    return static_cast<double>(covered) / totalInsns;
}

BranchOffsetUsage
analyzeBranchOffsets(const Program &program)
{
    BranchOffsetUsage usage;
    for (uint32_t i = 0; i < program.text.size(); ++i) {
        isa::Inst inst = isa::decode(program.text[i]);
        if (!inst.isRelativeBranch() || inst.aa)
            continue;
        ++usage.pcRelativeBranches;
        unsigned bits = inst.op == isa::Op::B ? 24 : 14;
        // Byte distance to the target in the uncompressed program; at
        // granularity g bytes the field must hold distance / g.
        int64_t byte_delta =
            (static_cast<int64_t>(program.branchTargetIndex(i)) -
             static_cast<int64_t>(i)) *
            isa::instBytes;
        if (!isa::fitsSigned(byte_delta / 2, bits))
            ++usage.lack2Byte;
        if (!isa::fitsSigned(byte_delta, bits))
            ++usage.lack1Byte;
        if (!isa::fitsSigned(byte_delta * 2, bits))
            ++usage.lack4Bit;
    }
    return usage;
}

PrologueEpilogue
analyzePrologueEpilogue(const Program &program)
{
    PrologueEpilogue stats;
    stats.totalInsns = static_cast<uint32_t>(program.text.size());
    for (const FunctionSymbol &fn : program.functions) {
        stats.prologueInsns += fn.prologue.count;
        for (const InstRange &ep : fn.epilogues)
            stats.epilogueInsns += ep.count;
    }
    return stats;
}

DictionaryUsage
analyzeDictionaryUsage(const compress::CompressedImage &image)
{
    DictionaryUsage usage;
    const compress::SelectionResult &sel = image.selection;
    unsigned insn_nibbles =
        compress::schemeParams(image.scheme).insnNibbles;

    for (uint32_t id = 0; id < sel.dict.entries.size(); ++id) {
        uint32_t length =
            static_cast<uint32_t>(sel.dict.entries[id].size());
        uint32_t rank = image.rankOfEntry[id];
        unsigned cw_nibbles =
            compress::codewordNibbles(image.scheme, rank);
        int64_t saved_nibbles =
            static_cast<int64_t>(sel.useCount[id]) *
                (static_cast<int64_t>(insn_nibbles) * length -
                 cw_nibbles) -
            8ll * length; // dictionary storage cost
        ++usage.entriesByLength[length];
        usage.bytesSavedByLength[length] += saved_nibbles / 2;
        ++usage.totalEntries;
        usage.totalBytesSaved += saved_nibbles / 2;
    }
    return usage;
}

} // namespace codecomp::analysis
