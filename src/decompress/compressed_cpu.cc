#include "decompress/compressed_cpu.hh"

#include "support/logging.hh"

namespace codecomp {

CompressedCpu::CompressedCpu(const compress::CompressedImage &image)
    : image_(image), engine_(image),
      unitNibbles_(compress::schemeParams(image.scheme).unitNibbles),
      pc_(compress::CompressedImage::nibbleBase + image.entryPointNibble)
{
    machine_.loadImage(image.dataBase, image.data);
}

void
CompressedCpu::execBranch(const isa::Inst &inst, uint32_t next_pc,
                          uint32_t self_pc)
{
    bool taken;
    uint32_t target = 0;
    switch (inst.op) {
      case isa::Op::B:
        taken = true;
        target = self_pc + static_cast<uint32_t>(inst.disp) * unitNibbles_;
        break;
      case isa::Op::Bc:
        taken = machine_.evalCond(inst.bo, inst.bi);
        target = self_pc + static_cast<uint32_t>(inst.disp) * unitNibbles_;
        break;
      case isa::Op::Bclr:
        taken = machine_.evalCond(inst.bo, inst.bi);
        target = machine_.lr();
        break;
      case isa::Op::Bcctr:
        taken = machine_.evalCond(inst.bo, inst.bi);
        target = machine_.ctr();
        break;
      default:
        CC_PANIC("not a branch");
    }
    if (inst.lk)
        machine_.setLr(next_pc);
    if (taken) {
        pc_ = target;
        redirected_ = true;
    }
}

bool
CompressedCpu::step()
{
    if (machine_.halted())
        return false;

    uint32_t base = compress::CompressedImage::nibbleBase;
    if (pc_ < base)
        throw MachineCheckError(MachineFault::FetchOutOfText, pc_,
                                "compressed PC below text base");
    const DecodedItem &item = engine_.itemAt(pc_ - base);
    uint32_t first_byte = pc_ / 2;
    uint32_t last_byte = (pc_ + item.nibbles - 1) / 2;
    // One event per item, fired after its effects land so the retired
    // count and redirect flag are final (fetch.hh) -- a redirect can cut
    // a dictionary expansion short, and the halting Sc still counts.
    FetchEvent event{first_byte, last_byte - first_byte + 1, 0,
                     item.isCodeword, false};
    uint32_t next_pc = pc_ + item.nibbles;
    uint32_t self_pc = pc_;
    redirected_ = false;
    bool halted = false;

    if (item.isCodeword) {
        const std::vector<isa::Word> &entry = engine_.entry(item.rank);
        for (unsigned slot = 0; slot < entry.size(); ++slot) {
            // The budget is per expanded architectural instruction, not
            // per fetch slot: a multi-instruction dictionary entry must
            // not overshoot a limit that falls mid-expansion.
            if (inst_count_ >= step_limit_)
                CC_FATAL("compressed program exceeded ", step_limit_,
                         " steps");
            isa::Inst inst = isa::decode(entry[slot]);
            ++inst_count_;
            ++event.retired;
            // The loader's validator rejects such dictionaries on disk;
            // in-memory corruption still must trap, not misexecute.
            if (inst.isRelativeBranch())
                throw MachineCheckError(
                    MachineFault::IllegalInstruction, self_pc,
                    "relative branch inside dictionary entry rank " +
                        std::to_string(item.rank));
            if (inst.isBranch()) {
                execBranch(inst, next_pc, self_pc);
                if (retire_hook_)
                    retire_hook_(inst, self_pc, slot);
                if (redirected_)
                    break;
            } else {
                machine_.execute(inst);
                if (retire_hook_)
                    retire_hook_(inst, self_pc, slot);
                if (machine_.halted()) {
                    halted = true;
                    break;
                }
            }
        }
    } else {
        if (inst_count_ >= step_limit_)
            CC_FATAL("compressed program exceeded ", step_limit_,
                     " steps");
        isa::Inst inst = isa::decode(item.word);
        ++inst_count_;
        ++event.retired;
        if (inst.isBranch()) {
            execBranch(inst, next_pc, self_pc);
            if (retire_hook_)
                retire_hook_(inst, self_pc, 0);
        } else {
            machine_.execute(inst);
            if (retire_hook_)
                retire_hook_(inst, self_pc, 0);
            halted = machine_.halted();
        }
    }
    event.taken = redirected_;
    stats_.record(event);
    if (fetch_hook_)
        fetch_hook_(event);
    if (halted)
        return false;
    if (!redirected_)
        pc_ = next_pc;
    return true;
}

ExecResult
CompressedCpu::run(uint64_t max_steps)
{
    // The limit is enforced inside step() before every expanded
    // instruction; checking between items here would let a
    // multi-instruction dictionary entry overshoot the budget.
    step_limit_ = max_steps;
    while (!machine_.halted())
        step();
    step_limit_ = UINT64_MAX;
    return {machine_.output(), machine_.exitCode(), inst_count_};
}

ExecResult
runCompressed(const compress::CompressedImage &image, uint64_t max_steps)
{
    CompressedCpu cpu(image);
    return cpu.run(max_steps);
}

} // namespace codecomp
