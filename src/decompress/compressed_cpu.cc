#include "decompress/compressed_cpu.hh"

#include "support/logging.hh"

namespace codecomp {

CompressedCpu::CompressedCpu(const compress::CompressedImage &image)
    : image_(image), engine_(image),
      unitNibbles_(compress::schemeParams(image.scheme).unitNibbles),
      pc_(compress::CompressedImage::nibbleBase + image.entryPointNibble)
{
    machine_.loadImage(image.dataBase, image.data);
}

/**
 * A taken indirect branch must land on an item boundary of the
 * compressed text. Validating here attributes a corrupt LR/CTR to the
 * branch that consumed it -- matching the plain Cpu's
 * check-at-the-branch behaviour -- instead of to the next fetch, where
 * the faulting PC no longer names the culprit.
 */
void
CompressedCpu::checkIndirectTarget(uint32_t target, const char *reg) const
{
    uint32_t base = compress::CompressedImage::nibbleBase;
    if (target < base)
        throw MachineCheckError(MachineFault::FetchOutOfText, target,
                                std::string(reg) +
                                    " as indirect branch target below "
                                    "compressed text");
    try {
        engine_.itemIndexAt(target - base);
    } catch (const MachineCheckError &e) {
        throw MachineCheckError(e.fault(), target,
                                std::string(reg) +
                                    " as indirect branch target: " +
                                    e.what());
    }
}

void
CompressedCpu::execBranch(const isa::Inst &inst, uint32_t next_pc,
                          uint32_t self_pc)
{
    bool taken;
    uint32_t target = 0;
    switch (inst.op) {
      case isa::Op::B:
        taken = true;
        target = self_pc + static_cast<uint32_t>(inst.disp) * unitNibbles_;
        break;
      case isa::Op::Bc:
        taken = machine_.evalCond(inst.bo, inst.bi);
        target = self_pc + static_cast<uint32_t>(inst.disp) * unitNibbles_;
        break;
      case isa::Op::Bclr:
        taken = machine_.evalCond(inst.bo, inst.bi);
        target = machine_.lr();
        if (taken)
            checkIndirectTarget(target, "LR");
        break;
      case isa::Op::Bcctr:
        taken = machine_.evalCond(inst.bo, inst.bi);
        target = machine_.ctr();
        if (taken)
            checkIndirectTarget(target, "CTR");
        break;
      default:
        CC_PANIC("not a branch");
    }
    if (inst.lk)
        machine_.setLr(next_pc);
    if (taken) {
        pc_ = target;
        redirected_ = true;
    }
}

bool
CompressedCpu::step()
{
    if (machine_.halted())
        return false;

    uint32_t base = compress::CompressedImage::nibbleBase;
    if (pc_ < base)
        throw MachineCheckError(MachineFault::FetchOutOfText, pc_,
                                "compressed PC below text base");
    const DecodedItem &item = engine_.itemAt(pc_ - base);
    uint32_t first_byte = pc_ / 2;
    uint32_t last_byte = (pc_ + item.nibbles - 1) / 2;
    // One event per item, fired after its effects land so the retired
    // count and redirect flag are final (fetch.hh) -- a redirect can cut
    // a dictionary expansion short, and the halting Sc still counts.
    FetchEvent event{first_byte, last_byte - first_byte + 1, 0,
                     item.isCodeword, false};
    uint32_t next_pc = pc_ + item.nibbles;
    uint32_t self_pc = pc_;
    redirected_ = false;
    bool halted = false;

    if (item.isCodeword) {
        // Expansion walks the engine's pre-decoded entry cache: the
        // entry's words went through isa::decode once at engine
        // construction, so the hot loop is a walk over the cache's
        // contiguous arena.
        DecodedEntry entry = engine_.decodedEntry(item.rank);
        event.rank = item.rank;
        for (unsigned slot = 0; slot < entry.size(); ++slot) {
            // The budget is per expanded architectural instruction, not
            // per fetch slot: a multi-instruction dictionary entry must
            // not overshoot a limit that falls mid-expansion.
            if (inst_count_ >= step_limit_)
                CC_FATAL("compressed program exceeded ", step_limit_,
                         " steps");
            const isa::Inst &inst = entry[slot];
            ++inst_count_;
            ++event.retired;
            // The loader's validator rejects such dictionaries on disk;
            // in-memory corruption still must trap, not misexecute.
            if (inst.isRelativeBranch())
                throw MachineCheckError(
                    MachineFault::IllegalInstruction, self_pc,
                    "relative branch inside dictionary entry rank " +
                        std::to_string(item.rank));
            if (inst.isBranch()) {
                execBranch(inst, next_pc, self_pc);
                if (retire_hook_)
                    retire_hook_(inst, self_pc, slot);
                if (redirected_)
                    break;
            } else {
                machine_.execute(inst);
                if (retire_hook_)
                    retire_hook_(inst, self_pc, slot);
                if (machine_.halted()) {
                    halted = true;
                    break;
                }
            }
        }
    } else {
        if (inst_count_ >= step_limit_)
            CC_FATAL("compressed program exceeded ", step_limit_,
                     " steps");
        isa::Inst inst = isa::decode(item.word);
        ++inst_count_;
        ++event.retired;
        if (inst.isBranch()) {
            execBranch(inst, next_pc, self_pc);
            if (retire_hook_)
                retire_hook_(inst, self_pc, 0);
        } else {
            machine_.execute(inst);
            if (retire_hook_)
                retire_hook_(inst, self_pc, 0);
            halted = machine_.halted();
        }
    }
    event.taken = redirected_;
    stats_.record(event);
    if (fetch_hook_)
        fetch_hook_(event);
    if (halted)
        return false;
    if (!redirected_)
        pc_ = next_pc;
    return true;
}

ExecResult
CompressedCpu::run(uint64_t max_steps)
{
    // The limit is enforced inside step() before every expanded
    // instruction; checking between items here would let a
    // multi-instruction dictionary entry overshoot the budget. The
    // guard restores the unbudgeted default even when a machine check
    // or fatal escapes mid-run, so a caught fault does not leave a
    // stale budget behind for later step()/run() calls.
    struct BudgetGuard
    {
        uint64_t &limit;
        ~BudgetGuard() { limit = UINT64_MAX; }
    } guard{step_limit_};
    step_limit_ = max_steps;
    while (!machine_.halted())
        step();
    return {machine_.output(), machine_.exitCode(), inst_count_};
}

ExecResult
runCompressed(const compress::CompressedImage &image, uint64_t max_steps)
{
    CompressedCpu cpu(image);
    return cpu.run(max_steps);
}

} // namespace codecomp
