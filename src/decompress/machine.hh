/**
 * @file
 * Architectural state and instruction semantics shared by the plain Cpu
 * and the CompressedCpu.
 *
 * The two processors differ only in their fetch stage and in the unit of
 * their code pointers (byte addresses vs nibble-granular addresses), so
 * all data-path semantics live here. Code pointers (LR, CTR values that
 * refer to .text) are treated as opaque 32-bit values by the data path.
 */

#ifndef CODECOMP_DECOMPRESS_MACHINE_HH
#define CODECOMP_DECOMPRESS_MACHINE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "isa/inst.hh"

namespace codecomp {

/** Result of running a program to completion. */
struct ExecResult
{
    std::string output;      //!< bytes written via PutChar/PutInt
    int32_t exitCode = 0;
    uint64_t instCount = 0;  //!< dynamic count of architectural insts

    bool operator==(const ExecResult &) const = default;
};

/** Registers, memory, and the semantics of every non-control op. */
class Machine
{
  public:
    /** Flat memory size; covers .text/.data images and the stack. */
    static constexpr uint32_t memBytes = isa::addressSpaceBytes;

    /** Initial stack pointer (r1), growing downward. */
    static constexpr uint32_t stackTop = memBytes - 64;

    Machine();

    /** @{ Big-endian memory accessors. */
    uint32_t loadWord(uint32_t addr) const;
    uint16_t loadHalf(uint32_t addr) const;
    uint8_t loadByte(uint32_t addr) const;
    void storeWord(uint32_t addr, uint32_t value);
    void storeHalf(uint32_t addr, uint16_t value);
    void storeByte(uint32_t addr, uint8_t value);
    /** @} */

    /** Copy a byte image into memory at @p base. */
    void loadImage(uint32_t base, const std::vector<uint8_t> &bytes);

    /**
     * Execute one non-branch instruction (asserts !inst.isBranch()).
     * Sc may set halted().
     */
    void execute(const isa::Inst &inst);

    /**
     * Evaluate a branch condition; performs the CTR decrement side
     * effect of Bo::DecNz. Shared by Bc/Bclr/Bcctr handling.
     */
    bool evalCond(uint8_t bo, uint8_t bi);

    /** @{ Register file access. */
    uint32_t gpr(unsigned n) const { return gpr_[n]; }
    void setGpr(unsigned n, uint32_t v) { gpr_[n] = v; }
    uint32_t lr() const { return lr_; }
    void setLr(uint32_t v) { lr_ = v; }
    uint32_t ctr() const { return ctr_; }
    void setCtr(uint32_t v) { ctr_ = v; }
    uint32_t cr() const { return cr_; }
    /** @} */

    bool halted() const { return halted_; }
    int32_t exitCode() const { return exit_code_; }
    const std::string &output() const { return output_; }

    /**
     * Observe every architectural store (address, size in bytes, value).
     * Called after the bytes land in memory; loadImage is not a store.
     * The lockstep verifier uses this to compare the write streams of
     * the two processors instruction by instruction.
     */
    using StoreHook = std::function<void(uint32_t addr, unsigned bytes,
                                         uint32_t value)>;
    void setStoreHook(StoreHook hook) { store_hook_ = std::move(hook); }

    /** Read-only view of the flat memory (differential state walks). */
    const std::vector<uint8_t> &memory() const { return mem_; }

    /** FNV-1a hash of registers + memory; used by equivalence tests. */
    uint64_t stateHash() const;

    /** FNV-1a hash of the memory bytes in [@p begin, @p end) only. */
    uint64_t memHash(uint32_t begin, uint32_t end) const;

  private:
    /** Set condition-register field @p crf from a three-way compare. */
    void setCrField(uint8_t crf, bool lt, bool gt, bool eq);

    void doSyscall();

    std::vector<uint8_t> mem_;
    uint32_t gpr_[isa::numGprs] = {};
    uint32_t lr_ = 0;
    uint32_t ctr_ = 0;
    uint32_t cr_ = 0; //!< bit 31-i holds CR bit i (PowerPC numbering)
    bool halted_ = false;
    int32_t exit_code_ = 0;
    std::string output_;
    StoreHook store_hook_;
};

} // namespace codecomp

#endif // CODECOMP_DECOMPRESS_MACHINE_HH
