/**
 * @file
 * Decompression engine: the decode-stage dictionary expander of the
 * compressed-program processor (paper Figure 3).
 *
 * The engine works from the raw compressed byte stream exactly as the
 * hardware would: it distinguishes codewords from uncompressed
 * instructions by the escape rule of the encoding (illegal primary
 * opcodes under Baseline/OneByte, the first-nibble class under Nibble)
 * and expands codewords through the rank-ordered dictionary. A one-time
 * sequential scan builds the random-access item table that the fetch
 * stage consults.
 */

#ifndef CODECOMP_DECOMPRESS_ENGINE_HH
#define CODECOMP_DECOMPRESS_ENGINE_HH

#include <vector>

#include "compress/image.hh"
#include "decompress/fault.hh"
#include "support/logging.hh"

namespace codecomp {

/** One decoded slot of the compressed stream. */
struct DecodedItem
{
    uint32_t nibbleAddr;  //!< offset within the compressed text
    uint8_t nibbles;      //!< total size including any escape
    bool isCodeword;
    uint32_t rank = 0;    //!< dictionary rank (codewords)
    isa::Word word = 0;   //!< instruction word (non-codewords)
};

class DecompressionEngine
{
  public:
    explicit DecompressionEngine(const compress::CompressedImage &image);

    /** Item starting at compressed-text nibble offset @p nibble_addr;
     *  raises a machine check if the address is not an item boundary (a
     *  real processor would fetch garbage -- only corrupt code pointers
     *  get here). */
    const DecodedItem &
    itemAt(uint32_t nibble_addr) const
    {
        return items_[itemIndexAt(nibble_addr)];
    }

    /**
     * Index into items() of the item starting at @p nibble_addr. This is
     * the fetch-stage hot path: a dense per-nibble table makes it a
     * single indexed load, with no hashing on the hottest loop. Throws
     * MachineCheckError (FetchOutOfText / MisalignedPc) on addresses no
     * item starts at.
     */
    uint32_t
    itemIndexAt(uint32_t nibble_addr) const
    {
        if (nibble_addr >= indexByAddr_.size())
            throw MachineCheckError(MachineFault::FetchOutOfText,
                                    nibble_addr,
                                    "fetch beyond compressed text");
        uint32_t index = indexByAddr_[nibble_addr];
        if (index == noItem)
            throw MachineCheckError(MachineFault::MisalignedPc, nibble_addr,
                                    "fetch from mid-item compressed "
                                    "address");
        return index;
    }

    /** Dictionary entry for codeword rank @p rank. */
    const std::vector<isa::Word> &
    entry(uint32_t rank) const
    {
        return image_.entriesByRank.at(rank);
    }

    const std::vector<DecodedItem> &items() const { return items_; }
    const compress::CompressedImage &image() const { return image_; }

  private:
    /** indexByAddr_ sentinel for nibbles inside (not starting) an item. */
    static constexpr uint32_t noItem = UINT32_MAX;

    const compress::CompressedImage &image_;
    std::vector<DecodedItem> items_;
    std::vector<uint32_t> indexByAddr_; //!< nibble addr -> items_ index
};

} // namespace codecomp

#endif // CODECOMP_DECOMPRESS_ENGINE_HH
