/**
 * @file
 * Decompression engine: the decode-stage dictionary expander of the
 * compressed-program processor (paper Figure 3).
 *
 * The engine works from the raw compressed byte stream exactly as the
 * hardware would: it distinguishes codewords from uncompressed
 * instructions by the escape rule of the encoding (illegal primary
 * opcodes under Baseline/OneByte, the first-nibble class under Nibble)
 * and expands codewords through the rank-ordered dictionary. A one-time
 * sequential scan builds the random-access item table that the fetch
 * stage consults.
 */

#ifndef CODECOMP_DECOMPRESS_ENGINE_HH
#define CODECOMP_DECOMPRESS_ENGINE_HH

#include <unordered_map>
#include <vector>

#include "compress/image.hh"

namespace codecomp {

/** One decoded slot of the compressed stream. */
struct DecodedItem
{
    uint32_t nibbleAddr;  //!< offset within the compressed text
    uint8_t nibbles;      //!< total size including any escape
    bool isCodeword;
    uint32_t rank = 0;    //!< dictionary rank (codewords)
    isa::Word word = 0;   //!< instruction word (non-codewords)
};

class DecompressionEngine
{
  public:
    explicit DecompressionEngine(const compress::CompressedImage &image);

    /** Item starting at compressed-text nibble offset @p nibble_addr;
     *  panics if the address is not an item boundary (a real processor
     *  would fetch garbage -- our programs never do this). */
    const DecodedItem &itemAt(uint32_t nibble_addr) const;

    /** Dictionary entry for codeword rank @p rank. */
    const std::vector<isa::Word> &
    entry(uint32_t rank) const
    {
        return image_.entriesByRank.at(rank);
    }

    const std::vector<DecodedItem> &items() const { return items_; }
    const compress::CompressedImage &image() const { return image_; }

  private:
    const compress::CompressedImage &image_;
    std::vector<DecodedItem> items_;
    std::unordered_map<uint32_t, uint32_t> byAddr_;
};

} // namespace codecomp

#endif // CODECOMP_DECOMPRESS_ENGINE_HH
