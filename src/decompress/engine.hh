/**
 * @file
 * Decompression engine: the decode-stage dictionary expander of the
 * compressed-program processor (paper Figure 3).
 *
 * The engine works from the raw compressed byte stream exactly as the
 * hardware would: it distinguishes codewords from uncompressed
 * instructions by the escape rule of the encoding (illegal primary
 * opcodes under Baseline/OneByte, the first-nibble class under Nibble)
 * and expands codewords through the rank-ordered dictionary. A one-time
 * sequential scan builds the random-access item table that the fetch
 * stage consults.
 *
 * Two scan implementations exist (DESIGN.md section 10). The fast path
 * (default) loads the stream a 64-bit window -- a 16-nibble slice of a
 * fetch line -- at a time and classifies each item with one indexed
 * load from the scheme's precomputed decode tables, extracting the
 * rank index and instruction word by shift/mask with no per-nibble
 * branching. The reference path is the original nibble-at-a-time
 * decoder; the golden-checksum suite proves the two produce identical
 * item tables and expanded instruction streams on every image.
 *
 * The engine also pre-decodes every dictionary entry into isa::Inst
 * form at construction, so the execution core expands hot codewords
 * without re-running isa::decode per slot. The cache never needs
 * invalidation: images are immutable once loaded (the loader validates
 * and then only the engine reads them), and isa::decode is total, so
 * eager decoding cannot fault where lazy decoding would not.
 */

#ifndef CODECOMP_DECOMPRESS_ENGINE_HH
#define CODECOMP_DECOMPRESS_ENGINE_HH

#include <algorithm>
#include <vector>

#include "compress/image.hh"
#include "decompress/fault.hh"
#include "isa/inst.hh"
#include "support/logging.hh"

namespace codecomp {

/** One decoded slot of the compressed stream. */
struct DecodedItem
{
    uint32_t nibbleAddr;  //!< offset within the compressed text
    uint8_t nibbles;      //!< total size including any escape
    bool isCodeword;
    uint32_t rank = 0;    //!< dictionary rank (codewords)
    isa::Word word = 0;   //!< instruction word (non-codewords)

    bool operator==(const DecodedItem &) const = default;
};

/** Contiguous view of one pre-decoded dictionary entry. The engine
 *  packs every entry's decoded instructions into a single arena, so an
 *  expansion walks cache-dense memory and engine construction makes
 *  one allocation for the whole cache instead of one per entry. */
struct DecodedEntry
{
    const isa::Inst *data;
    uint32_t count;

    const isa::Inst *begin() const { return data; }
    const isa::Inst *end() const { return data + count; }
    size_t size() const { return count; }
    const isa::Inst &operator[](size_t slot) const { return data[slot]; }

    bool
    operator==(const DecodedEntry &other) const
    {
        return count == other.count &&
               std::equal(begin(), end(), other.begin());
    }
};

/** Which stream-scan implementation an engine uses; both must agree
 *  bit-for-bit on every valid and every corrupt image. */
enum class DecodePath : uint8_t {
    Fast,      //!< table-driven 64-bit-window scan
    Reference, //!< original nibble-at-a-time decoder
};

class DecompressionEngine
{
  public:
    explicit DecompressionEngine(const compress::CompressedImage &image,
                                 DecodePath path = DecodePath::Fast);

    /** Item starting at compressed-text nibble offset @p nibble_addr;
     *  raises a machine check if the address is not an item boundary (a
     *  real processor would fetch garbage -- only corrupt code pointers
     *  get here). */
    const DecodedItem &
    itemAt(uint32_t nibble_addr) const
    {
        return items_[itemIndexAt(nibble_addr)];
    }

    /**
     * Index into items() of the item starting at @p nibble_addr. This is
     * the fetch-stage hot path: a dense per-nibble table makes it a
     * single indexed load, with no hashing on the hottest loop. Throws
     * MachineCheckError (FetchOutOfText / MisalignedPc) on addresses no
     * item starts at.
     */
    uint32_t
    itemIndexAt(uint32_t nibble_addr) const
    {
        if (nibble_addr >= indexByAddr_.size())
            throw MachineCheckError(MachineFault::FetchOutOfText,
                                    nibble_addr,
                                    "fetch beyond compressed text");
        uint32_t index = indexByAddr_[nibble_addr];
        if (index == noItem)
            throw MachineCheckError(MachineFault::MisalignedPc, nibble_addr,
                                    "fetch from mid-item compressed "
                                    "address");
        return index;
    }

    /** Dictionary entry for codeword rank @p rank. */
    const std::vector<isa::Word> &
    entry(uint32_t rank) const
    {
        return image_.entriesByRank.at(rank);
    }

    /** Pre-decoded dictionary entry for codeword rank @p rank: the
     *  entry's words run through isa::decode once at construction, so
     *  the execution core's expansion loop is a cache walk, not a
     *  decoder. Index-validated by the same scan that bounds item
     *  ranks, so @p rank from a decoded item is always in range. */
    DecodedEntry
    decodedEntry(uint32_t rank) const
    {
        uint32_t begin = entryOffsets_[rank];
        return {decodedPool_.data() + begin,
                entryOffsets_[rank + 1] - begin};
    }

    const std::vector<DecodedItem> &items() const { return items_; }
    const compress::CompressedImage &image() const { return image_; }
    DecodePath path() const { return path_; }

    /** FNV-1a64 digest of the fully expanded instruction stream (every
     *  item in address order, codewords expanded through the
     *  dictionary, each word hashed big-endian). Two engines over the
     *  same image must agree regardless of DecodePath -- the
     *  golden-checksum contract (DESIGN.md section 10). */
    uint64_t expandedStreamDigest() const;

  private:
    /** indexByAddr_ sentinel for nibbles inside (not starting) an item. */
    static constexpr uint32_t noItem = UINT32_MAX;

    void scanFast();
    void scanReference();
    void predecodeEntries();

    const compress::CompressedImage &image_;
    DecodePath path_;
    std::vector<DecodedItem> items_;
    std::vector<uint32_t> indexByAddr_; //!< nibble addr -> items_ index
    std::vector<isa::Inst> decodedPool_;  //!< all entries, rank order
    std::vector<uint32_t> entryOffsets_;  //!< rank -> pool offset, +1 end
};

} // namespace codecomp

#endif // CODECOMP_DECOMPRESS_ENGINE_HH
