/**
 * @file
 * The uniform fetch stream of both processors.
 *
 * Cpu and CompressedCpu used to expose different ad-hoc surfaces (a
 * bare (addr, bytes) hook on one side, FetchStats counters on the
 * other). Every consumer -- cache models, the timing subsystem, the
 * traffic profiler -- actually wants the same thing: one event per
 * fetch-unit item carrying its memory footprint and what it retired.
 * Both processors now emit FetchEvent; FetchStats is just the default
 * accumulator over that stream.
 */

#ifndef CODECOMP_DECOMPRESS_FETCH_HH
#define CODECOMP_DECOMPRESS_FETCH_HH

#include <cstdint>
#include <functional>

namespace codecomp {

/**
 * One fetch-unit item, uniform across processors. For the plain Cpu an
 * item is a 4-byte instruction; for the CompressedCpu it is one slot of
 * the compressed stream (an uncompressed instruction or a codeword),
 * with the nibble footprint rounded outward to whole bytes.
 */
struct FetchEvent
{
    uint32_t addr;      //!< byte address of the item's first byte
    uint32_t bytes;     //!< memory footprint of the item
    uint32_t retired;   //!< architectural instructions this item retired
    bool isCodeword;    //!< dictionary codeword (CompressedCpu only)
    bool taken;         //!< item ended in a taken branch (redirect)
    /** Dictionary rank of a codeword item (0 otherwise). Lets timing
     *  consumers model a pre-expanded decode cache over the hottest
     *  (lowest-rank) entries without re-decoding the stream. */
    uint32_t rank = 0;
};

/** Observe every fetch-unit item; fires after the item's effects land
 *  (so @p retired and @p taken are final), including the halting Sc. */
using FetchHook = std::function<void(const FetchEvent &event)>;

/** Fetch-path statistics (decode-efficiency discussion, paper 2.1),
 *  accumulated from the event stream. */
struct FetchStats
{
    uint64_t itemFetches = 0;     //!< slots fetched from the stream
    uint64_t codewordFetches = 0; //!< slots that were codewords
    uint64_t expandedInsts = 0;   //!< instructions produced by expansion
    uint64_t fetchedBytes = 0;    //!< bytes moved by the fetch unit
    uint64_t takenBranches = 0;   //!< front-end redirects

    void
    record(const FetchEvent &event)
    {
        ++itemFetches;
        fetchedBytes += event.bytes;
        takenBranches += event.taken;
        if (event.isCodeword) {
            ++codewordFetches;
            expandedInsts += event.retired;
        }
    }

    void reset() { *this = FetchStats{}; }

    bool operator==(const FetchStats &) const = default;
};

} // namespace codecomp

#endif // CODECOMP_DECOMPRESS_FETCH_HH
