#include "decompress/engine.hh"

#include "support/logging.hh"

namespace codecomp {

DecompressionEngine::DecompressionEngine(
    const compress::CompressedImage &image)
    : image_(image)
{
    NibbleReader reader(image.text.data(), image.textNibbles);
    while (!reader.atEnd()) {
        DecodedItem item;
        item.nibbleAddr = static_cast<uint32_t>(reader.pos());
        auto rank = compress::decodeCodeword(reader, image.scheme);
        if (rank) {
            item.isCodeword = true;
            item.rank = *rank;
            CC_ASSERT(item.rank < image.entriesByRank.size(),
                      "codeword rank beyond dictionary: ", item.rank);
        } else {
            item.isCodeword = false;
            item.word = reader.getWord();
        }
        item.nibbles =
            static_cast<uint8_t>(reader.pos() - item.nibbleAddr);
        byAddr_.emplace(item.nibbleAddr,
                        static_cast<uint32_t>(items_.size()));
        items_.push_back(item);
    }
}

const DecodedItem &
DecompressionEngine::itemAt(uint32_t nibble_addr) const
{
    auto it = byAddr_.find(nibble_addr);
    CC_ASSERT(it != byAddr_.end(),
              "fetch from mid-item compressed address ", nibble_addr);
    return items_[it->second];
}

} // namespace codecomp
