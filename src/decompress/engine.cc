#include "decompress/engine.hh"

#include "compress/encoding.hh"

namespace codecomp {

namespace {

/** Load the 16-nibble big-endian window starting at nibble @p pos from
 *  @p padded (a text copy with >= 8 trailing zero bytes, so the 8-byte
 *  load never runs off the buffer). The item being decoded starts at
 *  the window's most significant nibble; an odd @p pos shifts the
 *  half-byte away, leaving 15 valid nibbles -- still more than the
 *  9-nibble worst-case item. */
inline uint64_t
windowAt(const uint8_t *padded, size_t pos)
{
    const uint8_t *p = padded + pos / 2;
    uint64_t window = (static_cast<uint64_t>(p[0]) << 56) |
                      (static_cast<uint64_t>(p[1]) << 48) |
                      (static_cast<uint64_t>(p[2]) << 40) |
                      (static_cast<uint64_t>(p[3]) << 32) |
                      (static_cast<uint64_t>(p[4]) << 24) |
                      (static_cast<uint64_t>(p[5]) << 16) |
                      (static_cast<uint64_t>(p[6]) << 8) |
                      static_cast<uint64_t>(p[7]);
    return (pos & 1) ? window << 4 : window;
}

[[noreturn]] void
throwTruncated(size_t pos)
{
    throw MachineCheckError(MachineFault::BadCodeword,
                            static_cast<uint32_t>(pos),
                            "compressed stream ends mid-item");
}

[[noreturn]] void
throwBadRank(uint32_t pos, uint32_t rank, size_t dict_size)
{
    throw MachineCheckError(MachineFault::DictIndexOutOfRange, pos,
                            "codeword rank " + std::to_string(rank) +
                                " beyond dictionary of " +
                                std::to_string(dict_size) + " entries");
}

} // namespace

DecompressionEngine::DecompressionEngine(
    const compress::CompressedImage &image, DecodePath path)
    : image_(image), path_(path)
{
    indexByAddr_.assign(image.textNibbles, noItem);
    // Every item is at least two nibbles except Nibble's one-nibble
    // codewords; half the nibble count is a tight upper bound in
    // practice and spares the scans their reallocation copies.
    items_.reserve(image.textNibbles / 2 + 1);
    if (path == DecodePath::Fast)
        scanFast();
    else
        scanReference();
    predecodeEntries();
}

/**
 * Table-driven scan: one decode-table load classifies each item from
 * the leading nibbles of a 64-bit window, and the rank index and
 * instruction word fall out as shift/mask extractions. The only
 * per-item branches are the two machine-check guards, never taken on a
 * valid image. Faults (kind, address, message) match scanReference
 * exactly -- the corruption campaign runs over both paths.
 */
void
DecompressionEngine::scanFast()
{
    const compress::DecodeTables &tables =
        compress::schemeCodec(image_.scheme).tables();
    const unsigned prefix_nibbles = tables.prefixNibbles;
    const uint32_t dict_size =
        static_cast<uint32_t>(image_.entriesByRank.size());
    const size_t text_nibbles = image_.textNibbles;

    std::vector<uint8_t> padded(image_.text);
    padded.resize(padded.size() + 8, 0);
    const uint8_t *data = padded.data();

    size_t pos = 0;
    while (pos < text_nibbles) {
        uint64_t window = windowAt(data, pos);
        const compress::ItemClass &cls =
            tables.classes[window >> (64 - 4 * prefix_nibbles)];
        // A truncated final item (including a lone trailing prefix
        // fragment classified against pad nibbles) always overruns the
        // stream, because an item is at least as long as its prefix.
        if (pos + cls.nibbles > text_nibbles)
            throwTruncated(pos);

        unsigned used = prefix_nibbles + cls.indexNibbles;
        uint32_t index = static_cast<uint32_t>(window >> (64 - 4 * used)) &
                         ((1u << (4 * cls.indexNibbles)) - 1u);
        uint32_t word =
            static_cast<uint32_t>(window >> (64 - 4 * cls.nibbles));
        uint32_t cw_mask = -static_cast<uint32_t>(cls.isCodeword);

        DecodedItem item;
        item.nibbleAddr = static_cast<uint32_t>(pos);
        item.nibbles = cls.nibbles;
        item.isCodeword = cls.isCodeword != 0;
        item.rank = (cls.rankBase + index) & cw_mask;
        item.word = word & ~cw_mask;
        if (item.isCodeword && item.rank >= dict_size)
            throwBadRank(item.nibbleAddr, item.rank, dict_size);

        indexByAddr_[pos] = static_cast<uint32_t>(items_.size());
        items_.push_back(item);
        pos += cls.nibbles;
    }
}

void
DecompressionEngine::scanReference()
{
    const compress::SchemeCodec &codec =
        compress::schemeCodec(image_.scheme);
    NibbleReader reader(image_.text.data(), image_.textNibbles);
    while (!reader.atEnd()) {
        DecodedItem item;
        item.nibbleAddr = static_cast<uint32_t>(reader.pos());
        // Classify the item length before decoding: a truncated stream
        // must surface as a machine check, not a read past the end.
        if (!codec.referencePeekItemNibbles(reader))
            throwTruncated(item.nibbleAddr);
        auto rank = codec.referenceDecodeCodeword(reader);
        if (rank) {
            item.isCodeword = true;
            item.rank = *rank;
            if (item.rank >= image_.entriesByRank.size())
                throwBadRank(item.nibbleAddr, item.rank,
                             image_.entriesByRank.size());
        } else {
            item.isCodeword = false;
            item.word = reader.getWord();
        }
        item.nibbles =
            static_cast<uint8_t>(reader.pos() - item.nibbleAddr);
        indexByAddr_[item.nibbleAddr] =
            static_cast<uint32_t>(items_.size());
        items_.push_back(item);
    }
}

void
DecompressionEngine::predecodeEntries()
{
    size_t total = 0;
    for (const std::vector<isa::Word> &entry : image_.entriesByRank)
        total += entry.size();
    decodedPool_.reserve(total);
    entryOffsets_.reserve(image_.entriesByRank.size() + 1);
    entryOffsets_.push_back(0);
    for (const std::vector<isa::Word> &entry : image_.entriesByRank) {
        for (isa::Word word : entry)
            decodedPool_.push_back(isa::decode(word));
        entryOffsets_.push_back(
            static_cast<uint32_t>(decodedPool_.size()));
    }
}

uint64_t
DecompressionEngine::expandedStreamDigest() const
{
    // Incremental FNV-1a64 over the big-endian bytes of every expanded
    // word, matching fnv1a64 over the same byte sequence.
    uint64_t hash = 14695981039346656037ull;
    auto mix = [&hash](isa::Word word) {
        for (int shift = 24; shift >= 0; shift -= 8) {
            hash ^= static_cast<uint8_t>(word >> shift);
            hash *= 1099511628211ull;
        }
    };
    for (const DecodedItem &item : items_) {
        if (item.isCodeword) {
            for (isa::Word word : image_.entriesByRank[item.rank])
                mix(word);
        } else {
            mix(item.word);
        }
    }
    return hash;
}

} // namespace codecomp
