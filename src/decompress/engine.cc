#include "decompress/engine.hh"

namespace codecomp {

DecompressionEngine::DecompressionEngine(
    const compress::CompressedImage &image)
    : image_(image)
{
    indexByAddr_.assign(image.textNibbles, noItem);
    NibbleReader reader(image.text.data(), image.textNibbles);
    while (!reader.atEnd()) {
        DecodedItem item;
        item.nibbleAddr = static_cast<uint32_t>(reader.pos());
        // Classify the item length before decoding: a truncated stream
        // must surface as a machine check, not a read past the end.
        if (!compress::peekItemNibbles(reader, image.scheme))
            throw MachineCheckError(MachineFault::BadCodeword,
                                    item.nibbleAddr,
                                    "compressed stream ends mid-item");
        auto rank = compress::decodeCodeword(reader, image.scheme);
        if (rank) {
            item.isCodeword = true;
            item.rank = *rank;
            if (item.rank >= image.entriesByRank.size())
                throw MachineCheckError(
                    MachineFault::DictIndexOutOfRange, item.nibbleAddr,
                    "codeword rank " + std::to_string(item.rank) +
                        " beyond dictionary of " +
                        std::to_string(image.entriesByRank.size()) +
                        " entries");
        } else {
            item.isCodeword = false;
            item.word = reader.getWord();
        }
        item.nibbles =
            static_cast<uint8_t>(reader.pos() - item.nibbleAddr);
        indexByAddr_[item.nibbleAddr] =
            static_cast<uint32_t>(items_.size());
        items_.push_back(item);
    }
}

} // namespace codecomp
