#include "decompress/engine.hh"

namespace codecomp {

DecompressionEngine::DecompressionEngine(
    const compress::CompressedImage &image)
    : image_(image)
{
    indexByAddr_.assign(image.textNibbles, noItem);
    NibbleReader reader(image.text.data(), image.textNibbles);
    while (!reader.atEnd()) {
        DecodedItem item;
        item.nibbleAddr = static_cast<uint32_t>(reader.pos());
        auto rank = compress::decodeCodeword(reader, image.scheme);
        if (rank) {
            item.isCodeword = true;
            item.rank = *rank;
            CC_ASSERT(item.rank < image.entriesByRank.size(),
                      "codeword rank beyond dictionary: ", item.rank);
        } else {
            item.isCodeword = false;
            item.word = reader.getWord();
        }
        item.nibbles =
            static_cast<uint8_t>(reader.pos() - item.nibbleAddr);
        indexByAddr_[item.nibbleAddr] =
            static_cast<uint32_t>(items_.size());
        items_.push_back(item);
    }
}

} // namespace codecomp
