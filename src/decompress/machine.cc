#include "decompress/machine.hh"

#include "decompress/fault.hh"
#include "support/logging.hh"

namespace codecomp {

Machine::Machine() : mem_(memBytes, 0)
{
    gpr_[1] = stackTop;
}

uint32_t
Machine::loadWord(uint32_t addr) const
{
    // Compare without addr + 4, which wraps for addresses near 2^32 and
    // would let a wild access through the check.
    if (addr > memBytes - 4)
        throw MachineCheckError(MachineFault::MemoryOutOfRange, addr,
                                "load word outside the address space");
    return (static_cast<uint32_t>(mem_[addr]) << 24) |
           (static_cast<uint32_t>(mem_[addr + 1]) << 16) |
           (static_cast<uint32_t>(mem_[addr + 2]) << 8) |
           static_cast<uint32_t>(mem_[addr + 3]);
}

uint16_t
Machine::loadHalf(uint32_t addr) const
{
    if (addr > memBytes - 2)
        throw MachineCheckError(MachineFault::MemoryOutOfRange, addr,
                                "load half outside the address space");
    return static_cast<uint16_t>((mem_[addr] << 8) | mem_[addr + 1]);
}

uint8_t
Machine::loadByte(uint32_t addr) const
{
    if (addr >= memBytes)
        throw MachineCheckError(MachineFault::MemoryOutOfRange, addr,
                                "load byte outside the address space");
    return mem_[addr];
}

void
Machine::storeWord(uint32_t addr, uint32_t value)
{
    if (addr > memBytes - 4)
        throw MachineCheckError(MachineFault::MemoryOutOfRange, addr,
                                "store word outside the address space");
    mem_[addr] = static_cast<uint8_t>(value >> 24);
    mem_[addr + 1] = static_cast<uint8_t>(value >> 16);
    mem_[addr + 2] = static_cast<uint8_t>(value >> 8);
    mem_[addr + 3] = static_cast<uint8_t>(value);
    if (store_hook_)
        store_hook_(addr, 4, value);
}

void
Machine::storeHalf(uint32_t addr, uint16_t value)
{
    if (addr > memBytes - 2)
        throw MachineCheckError(MachineFault::MemoryOutOfRange, addr,
                                "store half outside the address space");
    mem_[addr] = static_cast<uint8_t>(value >> 8);
    mem_[addr + 1] = static_cast<uint8_t>(value);
    if (store_hook_)
        store_hook_(addr, 2, value);
}

void
Machine::storeByte(uint32_t addr, uint8_t value)
{
    if (addr >= memBytes)
        throw MachineCheckError(MachineFault::MemoryOutOfRange, addr,
                                "store byte outside the address space");
    mem_[addr] = value;
    if (store_hook_)
        store_hook_(addr, 1, value);
}

void
Machine::loadImage(uint32_t base, const std::vector<uint8_t> &bytes)
{
    if (static_cast<uint64_t>(base) + bytes.size() > memBytes)
        throw MachineCheckError(MachineFault::MemoryOutOfRange, base,
                                "image of " +
                                    std::to_string(bytes.size()) +
                                    " bytes does not fit memory");
    std::copy(bytes.begin(), bytes.end(), mem_.begin() + base);
}

void
Machine::setCrField(uint8_t crf, bool lt, bool gt, bool eq)
{
    uint32_t field = (lt ? 8u : 0) | (gt ? 4u : 0) | (eq ? 2u : 0);
    unsigned shift = 28 - crf * 4;
    cr_ = (cr_ & ~(0xfu << shift)) | (field << shift);
}

bool
Machine::evalCond(uint8_t bo, uint8_t bi)
{
    switch (static_cast<isa::Bo>(bo)) {
      case isa::Bo::Always:
        return true;
      case isa::Bo::IfTrue:
        return (cr_ >> (31 - bi)) & 1;
      case isa::Bo::IfFalse:
        return !((cr_ >> (31 - bi)) & 1);
      case isa::Bo::DecNz:
        --ctr_;
        return ctr_ != 0;
    }
    throw MachineCheckError(MachineFault::BadCondition, bo,
                            "unsupported BO value " +
                                std::to_string(int(bo)));
}

void
Machine::doSyscall()
{
    switch (static_cast<isa::Syscall>(gpr_[0])) {
      case isa::Syscall::Exit:
        halted_ = true;
        exit_code_ = static_cast<int32_t>(gpr_[3]);
        return;
      case isa::Syscall::PutChar:
        output_.push_back(static_cast<char>(gpr_[3] & 0xff));
        return;
      case isa::Syscall::PutInt:
        output_ += std::to_string(static_cast<int32_t>(gpr_[3]));
        output_.push_back('\n');
        return;
    }
    throw MachineCheckError(MachineFault::BadSyscall, gpr_[0],
                            "unknown syscall " +
                                std::to_string(gpr_[0]));
}

namespace {

/** rlwinm mask with PowerPC bit numbering (bit 0 = MSB). */
uint32_t
maskMbMe(unsigned mb, unsigned me)
{
    uint32_t lo = 0xffffffffu >> mb;           // bits mb..31 set
    uint32_t hi = 0xffffffffu << (31 - me);    // bits 0..me set
    return (mb <= me) ? (lo & hi) : (lo | hi);
}

uint32_t
rotl32(uint32_t value, unsigned n)
{
    return n == 0 ? value : (value << n) | (value >> (32 - n));
}

} // namespace

void
Machine::execute(const isa::Inst &inst)
{
    using isa::Op;
    CC_ASSERT(!inst.isBranch(), "branches are handled by the fetch loop");

    auto reg_or_zero = [this](uint8_t r) { return r == 0 ? 0u : gpr_[r]; };
    auto ea = [&]() {
        return reg_or_zero(inst.ra) + static_cast<uint32_t>(inst.imm);
    };

    switch (inst.op) {
      case Op::Addi:
        gpr_[inst.rt] = reg_or_zero(inst.ra) +
                        static_cast<uint32_t>(inst.imm);
        return;
      case Op::Addis:
        gpr_[inst.rt] = reg_or_zero(inst.ra) +
                        (static_cast<uint32_t>(inst.imm) << 16);
        return;
      case Op::Mulli:
        gpr_[inst.rt] = gpr_[inst.ra] * static_cast<uint32_t>(inst.imm);
        return;
      case Op::Ori:
        gpr_[inst.rt] = gpr_[inst.ra] | static_cast<uint32_t>(inst.imm);
        return;
      case Op::Oris:
        gpr_[inst.rt] = gpr_[inst.ra] |
                        (static_cast<uint32_t>(inst.imm) << 16);
        return;
      case Op::Xori:
        gpr_[inst.rt] = gpr_[inst.ra] ^ static_cast<uint32_t>(inst.imm);
        return;
      case Op::Andi: {
        uint32_t res = gpr_[inst.ra] & static_cast<uint32_t>(inst.imm);
        gpr_[inst.rt] = res;
        // andi. always records the result in cr0 (PowerPC semantics).
        int32_t s = static_cast<int32_t>(res);
        setCrField(0, s < 0, s > 0, s == 0);
        return;
      }
      case Op::Cmpi: {
        int32_t a = static_cast<int32_t>(gpr_[inst.ra]);
        setCrField(inst.crf, a < inst.imm, a > inst.imm, a == inst.imm);
        return;
      }
      case Op::Cmpli: {
        uint32_t a = gpr_[inst.ra];
        uint32_t b = static_cast<uint32_t>(inst.imm);
        setCrField(inst.crf, a < b, a > b, a == b);
        return;
      }
      case Op::Cmp: {
        int32_t a = static_cast<int32_t>(gpr_[inst.ra]);
        int32_t b = static_cast<int32_t>(gpr_[inst.rb]);
        setCrField(inst.crf, a < b, a > b, a == b);
        return;
      }
      case Op::Cmpl: {
        uint32_t a = gpr_[inst.ra];
        uint32_t b = gpr_[inst.rb];
        setCrField(inst.crf, a < b, a > b, a == b);
        return;
      }
      case Op::Lwz:
        gpr_[inst.rt] = loadWord(ea());
        return;
      case Op::Lbz:
        gpr_[inst.rt] = loadByte(ea());
        return;
      case Op::Lhz:
        gpr_[inst.rt] = loadHalf(ea());
        return;
      case Op::Stw:
        storeWord(ea(), gpr_[inst.rt]);
        return;
      case Op::Stb:
        storeByte(ea(), static_cast<uint8_t>(gpr_[inst.rt]));
        return;
      case Op::Sth:
        storeHalf(ea(), static_cast<uint16_t>(gpr_[inst.rt]));
        return;
      case Op::Lwzx:
        gpr_[inst.rt] = loadWord(reg_or_zero(inst.ra) + gpr_[inst.rb]);
        return;
      case Op::Add:
        gpr_[inst.rt] = gpr_[inst.ra] + gpr_[inst.rb];
        return;
      case Op::Subf:
        gpr_[inst.rt] = gpr_[inst.rb] - gpr_[inst.ra];
        return;
      case Op::Neg:
        gpr_[inst.rt] = 0u - gpr_[inst.ra];
        return;
      case Op::Mullw:
        gpr_[inst.rt] = gpr_[inst.ra] * gpr_[inst.rb];
        return;
      case Op::Divw: {
        int32_t a = static_cast<int32_t>(gpr_[inst.ra]);
        int32_t b = static_cast<int32_t>(gpr_[inst.rb]);
        // Architecturally undefined cases are pinned to 0 so that both
        // processors (and all hosts) agree bit-for-bit.
        if (b == 0 || (a == INT32_MIN && b == -1))
            gpr_[inst.rt] = 0;
        else
            gpr_[inst.rt] = static_cast<uint32_t>(a / b);
        return;
      }
      case Op::And:
        gpr_[inst.rt] = gpr_[inst.ra] & gpr_[inst.rb];
        return;
      case Op::Or:
        gpr_[inst.rt] = gpr_[inst.ra] | gpr_[inst.rb];
        return;
      case Op::Xor:
        gpr_[inst.rt] = gpr_[inst.ra] ^ gpr_[inst.rb];
        return;
      case Op::Slw: {
        uint32_t n = gpr_[inst.rb] & 0x3f;
        gpr_[inst.rt] = n >= 32 ? 0 : gpr_[inst.ra] << n;
        return;
      }
      case Op::Srw: {
        uint32_t n = gpr_[inst.rb] & 0x3f;
        gpr_[inst.rt] = n >= 32 ? 0 : gpr_[inst.ra] >> n;
        return;
      }
      case Op::Sraw: {
        uint32_t n = gpr_[inst.rb] & 0x3f;
        int32_t a = static_cast<int32_t>(gpr_[inst.ra]);
        if (n >= 32)
            gpr_[inst.rt] = static_cast<uint32_t>(a < 0 ? -1 : 0);
        else
            gpr_[inst.rt] = static_cast<uint32_t>(a >> n);
        return;
      }
      case Op::Srawi: {
        int32_t a = static_cast<int32_t>(gpr_[inst.rt]);
        gpr_[inst.ra] = static_cast<uint32_t>(a >> inst.sh);
        return;
      }
      case Op::Rlwinm:
        gpr_[inst.ra] = rotl32(gpr_[inst.rt], inst.sh) &
                        maskMbMe(inst.mb, inst.me);
        return;
      case Op::Mtspr:
        if (inst.spr == static_cast<uint16_t>(isa::Spr::LR))
            lr_ = gpr_[inst.rt];
        else if (inst.spr == static_cast<uint16_t>(isa::Spr::CTR))
            ctr_ = gpr_[inst.rt];
        else
            throw MachineCheckError(MachineFault::BadSpr, inst.spr,
                                    "mtspr to unknown spr " +
                                        std::to_string(inst.spr));
        return;
      case Op::Mfspr:
        if (inst.spr == static_cast<uint16_t>(isa::Spr::LR))
            gpr_[inst.rt] = lr_;
        else if (inst.spr == static_cast<uint16_t>(isa::Spr::CTR))
            gpr_[inst.rt] = ctr_;
        else
            throw MachineCheckError(MachineFault::BadSpr, inst.spr,
                                    "mfspr from unknown spr " +
                                        std::to_string(inst.spr));
        return;
      case Op::Sc:
        doSyscall();
        return;
      default:
        throw MachineCheckError(MachineFault::IllegalInstruction, 0,
                                "instruction word does not decode to an "
                                "executable op");
    }
}

namespace {

constexpr uint64_t fnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t fnvPrime = 0x100000001b3ull;

uint64_t
fnvMix(uint64_t h, uint8_t byte)
{
    return (h ^ byte) * fnvPrime;
}

} // namespace

uint64_t
Machine::stateHash() const
{
    uint64_t h = fnvOffset;
    for (uint32_t r : gpr_)
        for (int i = 0; i < 4; ++i)
            h = fnvMix(h, static_cast<uint8_t>(r >> (8 * i)));
    for (int i = 0; i < 4; ++i)
        h = fnvMix(h, static_cast<uint8_t>(cr_ >> (8 * i)));
    // Note: LR/CTR are deliberately excluded -- they hold code pointers,
    // which legitimately differ between address spaces.
    for (uint8_t byte : mem_)
        h = fnvMix(h, byte);
    return h;
}

uint64_t
Machine::memHash(uint32_t begin, uint32_t end) const
{
    CC_ASSERT(begin <= end && end <= memBytes, "bad memHash range");
    uint64_t h = fnvOffset;
    for (uint32_t addr = begin; addr < end; ++addr)
        h = fnvMix(h, mem_[addr]);
    return h;
}

} // namespace codecomp
