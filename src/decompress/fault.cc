#include "decompress/fault.hh"

#include <cstdio>

namespace codecomp {

const char *
machineFaultName(MachineFault fault)
{
    switch (fault) {
      case MachineFault::BadCodeword:
        return "bad-codeword";
      case MachineFault::DictIndexOutOfRange:
        return "dict-index-out-of-range";
      case MachineFault::MisalignedPc:
        return "misaligned-pc";
      case MachineFault::FetchOutOfText:
        return "fetch-out-of-text";
      case MachineFault::IllegalInstruction:
        return "illegal-instruction";
      case MachineFault::MemoryOutOfRange:
        return "memory-out-of-range";
      case MachineFault::BadSyscall:
        return "bad-syscall";
      case MachineFault::BadSpr:
        return "bad-spr";
      case MachineFault::BadCondition:
        return "bad-condition";
    }
    return "unknown";
}

namespace {

std::string
formatMachineCheck(MachineFault fault, uint32_t addr,
                   const std::string &detail)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), " at 0x%08x", addr);
    std::string text = "machine check [";
    text += machineFaultName(fault);
    text += "]";
    text += buf;
    if (!detail.empty())
        text += ": " + detail;
    return text;
}

} // namespace

MachineCheckError::MachineCheckError(MachineFault fault, uint32_t addr,
                                     const std::string &detail)
    : std::runtime_error(formatMachineCheck(fault, addr, detail)),
      fault_(fault), addr_(addr)
{}

} // namespace codecomp
