/**
 * @file
 * Machine-check fault model: the deterministic, catchable trap an
 * executing processor raises when residual corruption slips past the
 * image loader (or when a program computes a wild code/data pointer).
 *
 * A real decompression core sits in the fetch path and must surface a
 * bad codeword or an out-of-range dictionary index as a precise machine
 * check, not undefined behaviour. Here that is an exception deriving
 * std::runtime_error: tools report it and exit with the corruption
 * status; the verifier records it as a divergence; tests assert on the
 * fault kind. The faults replace what used to be CC_PANIC aborts on the
 * execution paths -- CC_PANIC remains for genuine library bugs only.
 */

#ifndef CODECOMP_DECOMPRESS_FAULT_HH
#define CODECOMP_DECOMPRESS_FAULT_HH

#include <cstdint>
#include <stdexcept>
#include <string>

namespace codecomp {

/** Precise cause of a machine check. */
enum class MachineFault : uint8_t {
    BadCodeword,         //!< stream ends mid-item / undecodable slot
    DictIndexOutOfRange, //!< codeword rank beyond the dictionary
    MisalignedPc,        //!< fetch from mid-item / non-instruction PC
    FetchOutOfText,      //!< PC outside the text image
    IllegalInstruction,  //!< fetched word does not decode
    MemoryOutOfRange,    //!< data access outside the address space
    BadSyscall,          //!< unknown syscall number reached sc
    BadSpr,              //!< mtspr/mfspr names an unknown register
    BadCondition,        //!< unsupported BO field reached a branch
};

const char *machineFaultName(MachineFault fault);

/** Catchable, deterministic machine check: fault kind + faulting
 *  address (PC, nibble offset, or effective address as appropriate). */
class MachineCheckError : public std::runtime_error
{
  public:
    MachineCheckError(MachineFault fault, uint32_t addr,
                      const std::string &detail);

    MachineFault fault() const { return fault_; }
    uint32_t addr() const { return addr_; }

  private:
    MachineFault fault_;
    uint32_t addr_;
};

} // namespace codecomp

#endif // CODECOMP_DECOMPRESS_FAULT_HH
