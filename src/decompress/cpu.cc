#include "decompress/cpu.hh"

#include "decompress/fault.hh"
#include "support/logging.hh"

namespace codecomp {

namespace {

std::vector<uint8_t>
textImage(const Program &program)
{
    std::vector<uint8_t> bytes;
    bytes.reserve(program.text.size() * 4);
    for (isa::Word w : program.text) {
        bytes.push_back(static_cast<uint8_t>(w >> 24));
        bytes.push_back(static_cast<uint8_t>(w >> 16));
        bytes.push_back(static_cast<uint8_t>(w >> 8));
        bytes.push_back(static_cast<uint8_t>(w));
    }
    return bytes;
}

} // namespace

/** Validate a taken indirect branch target at the branch itself, so a
 *  corrupt LR/CTR is attributed to the branch that consumed it (range
 *  first, then alignment -- the same order the CompressedCpu's
 *  item-boundary check fails in). */
void
Cpu::checkIndirectTarget(uint32_t target, const char *reg) const
{
    uint32_t text_end = Program::textBase + program_.textBytes();
    if (target < Program::textBase || target >= text_end)
        throw MachineCheckError(MachineFault::FetchOutOfText, target,
                                std::string(reg) +
                                    " as branch target outside .text");
    if ((target & 3u) != 0)
        throw MachineCheckError(MachineFault::MisalignedPc, target,
                                std::string("misaligned ") + reg +
                                    " as branch target");
}

Cpu::Cpu(const Program &program) : program_(program)
{
    CC_ASSERT(program.dataBase != 0, "program not finalized");
    machine_.loadImage(Program::textBase, textImage(program));

    // Patch jump-table slots with byte addresses of their targets, then
    // load .data.
    std::vector<uint8_t> data = program.data;
    for (const CodeReloc &reloc : program.codeRelocs) {
        uint32_t addr = program.addrOfIndex(reloc.targetIndex);
        data[reloc.dataOffset] = static_cast<uint8_t>(addr >> 24);
        data[reloc.dataOffset + 1] = static_cast<uint8_t>(addr >> 16);
        data[reloc.dataOffset + 2] = static_cast<uint8_t>(addr >> 8);
        data[reloc.dataOffset + 3] = static_cast<uint8_t>(addr);
    }
    machine_.loadImage(program.dataBase, data);

    pc_ = program.addrOfIndex(program.entryIndex);
    // A return from the entry function with an empty call stack would
    // jump to LR = 0; the entry code always exits via syscall instead.
}

bool
Cpu::step()
{
    if (machine_.halted())
        return false;

    // Fetch-stage machine checks: a corrupt code pointer (jump table,
    // LR, CTR) must trap precisely, never index .text out of bounds.
    uint32_t text_end = Program::textBase + program_.textBytes();
    if (pc_ < Program::textBase || pc_ >= text_end)
        throw MachineCheckError(MachineFault::FetchOutOfText, pc_,
                                "PC outside .text");
    if (pc_ % isa::instBytes != 0)
        throw MachineCheckError(MachineFault::MisalignedPc, pc_,
                                "PC not instruction aligned");
    uint32_t index = (pc_ - Program::textBase) / isa::instBytes;
    isa::Inst inst = isa::decode(program_.text[index]);
    ++inst_count_;

    // The fetch event fires after the instruction's effects land so the
    // taken flag is final (fetch.hh); the halting Sc still counts.
    FetchEvent event{pc_, isa::instBytes, 1, false, false};

    if (!inst.isBranch()) {
        machine_.execute(inst);
        stats_.record(event);
        if (fetch_hook_)
            fetch_hook_(event);
        pc_ += isa::instBytes;
        return !machine_.halted();
    }

    uint32_t next_pc = pc_ + isa::instBytes;
    bool taken;
    uint32_t target = 0;
    switch (inst.op) {
      case isa::Op::B:
        taken = true;
        target = inst.aa ? static_cast<uint32_t>(inst.disp) * 4
                         : pc_ + static_cast<uint32_t>(inst.disp) * 4;
        break;
      case isa::Op::Bc:
        taken = machine_.evalCond(inst.bo, inst.bi);
        target = inst.aa ? static_cast<uint32_t>(inst.disp) * 4
                         : pc_ + static_cast<uint32_t>(inst.disp) * 4;
        break;
      // Indirect targets are used raw, not masked to word alignment:
      // the CompressedCpu cannot mask (its nibble-granular code pointers
      // are legitimately odd), so masking here would hide on the native
      // side exactly the corrupt-LR/CTR bugs a lockstep comparison
      // exists to catch. The invariant is that code pointers entering
      // LR/CTR are always 4-byte aligned in the native space; raise a
      // machine check instead of silently repairing a violation. Only a
      // *taken* branch consumes the pointer -- both processors validate
      // at that point and nowhere earlier, so lockstep fault
      // attribution is symmetric (a stale garbage LR under an untaken
      // bclr is dead data, not a fault).
      case isa::Op::Bclr:
        taken = machine_.evalCond(inst.bo, inst.bi);
        target = machine_.lr();
        if (taken)
            checkIndirectTarget(target, "LR");
        break;
      case isa::Op::Bcctr:
        taken = machine_.evalCond(inst.bo, inst.bi);
        target = machine_.ctr();
        if (taken)
            checkIndirectTarget(target, "CTR");
        break;
      default:
        CC_PANIC("unexpected branch op");
    }
    if (inst.lk)
        machine_.setLr(next_pc);
    pc_ = taken ? target : next_pc;
    event.taken = taken;
    stats_.record(event);
    if (fetch_hook_)
        fetch_hook_(event);
    return true;
}

ExecResult
Cpu::run(uint64_t max_steps)
{
    while (!machine_.halted()) {
        if (inst_count_ >= max_steps)
            CC_FATAL("program exceeded ", max_steps, " steps");
        step();
    }
    return {machine_.output(), machine_.exitCode(), inst_count_};
}

ExecResult
runProgram(const Program &program, uint64_t max_steps)
{
    Cpu cpu(program);
    return cpu.run(max_steps);
}

} // namespace codecomp
