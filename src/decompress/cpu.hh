/**
 * @file
 * Reference processor: executes an uncompressed Program directly.
 */

#ifndef CODECOMP_DECOMPRESS_CPU_HH
#define CODECOMP_DECOMPRESS_CPU_HH

#include <functional>
#include <memory>

#include "decompress/fetch.hh"
#include "decompress/machine.hh"
#include "program/program.hh"

namespace codecomp {

/**
 * Interpreter for uncompressed ppclite programs. Code pointers (PC, LR,
 * CTR, jump-table entries) are plain byte addresses.
 */
class Cpu
{
  public:
    static constexpr uint64_t defaultMaxSteps = 1ull << 28;

    /** Load .text and .data images and point the PC at the entry. */
    explicit Cpu(const Program &program);

    /** Run until exit; fatal if @p max_steps elapse first. */
    ExecResult run(uint64_t max_steps = defaultMaxSteps);

    /** Execute a single instruction; returns false once halted. */
    bool step();

    const Machine &machine() const { return machine_; }
    /** Mutable access for harnesses that install Machine hooks. */
    Machine &machine() { return machine_; }
    uint32_t pc() const { return pc_; }
    uint64_t instCount() const { return inst_count_; }
    const FetchStats &fetchStats() const { return stats_; }

    /** Observe the fetch stream (fetch.hh); drives cache and timing
     *  models. Every event has bytes == 4 and retired == 1 here. */
    void setFetchHook(FetchHook hook) { fetch_hook_ = std::move(hook); }

  private:
    /** Machine-check a taken indirect branch target (@p reg names the
     *  source register for the fault message). */
    void checkIndirectTarget(uint32_t target, const char *reg) const;

    const Program &program_;
    Machine machine_;
    uint32_t pc_;
    uint64_t inst_count_ = 0;
    FetchStats stats_;
    FetchHook fetch_hook_;
};

/** Convenience wrapper: construct, run, return the result. */
ExecResult runProgram(const Program &program,
                      uint64_t max_steps = Cpu::defaultMaxSteps);

} // namespace codecomp

#endif // CODECOMP_DECOMPRESS_CPU_HH
