/**
 * @file
 * The compressed-program processor (paper Figure 3): a ppclite core
 * whose fetch stage runs the DecompressionEngine. The program counter
 * and all code pointers (LR, CTR, jump-table entries) are absolute
 * nibble addresses in the compressed space.
 */

#ifndef CODECOMP_DECOMPRESS_COMPRESSED_CPU_HH
#define CODECOMP_DECOMPRESS_COMPRESSED_CPU_HH

#include <functional>

#include "decompress/engine.hh"
#include "decompress/fetch.hh"
#include "decompress/machine.hh"

namespace codecomp {

class CompressedCpu
{
  public:
    static constexpr uint64_t defaultMaxSteps = 1ull << 28;

    explicit CompressedCpu(const compress::CompressedImage &image);

    ExecResult run(uint64_t max_steps = defaultMaxSteps);

    /** Execute one fetch slot (a whole codeword expansion counts as
     *  one slot); returns false once halted. */
    bool step();

    const Machine &machine() const { return machine_; }
    /** Mutable access for harnesses that install Machine hooks. */
    Machine &machine() { return machine_; }
    const FetchStats &fetchStats() const { return stats_; }
    uint32_t pc() const { return pc_; }

    /** Observe the fetch stream (fetch.hh): one event per item, as a
     *  byte-granular access into the compressed image (nibble addresses
     *  round outward to bytes), with the retired-instruction count and
     *  redirect flag of the whole item. */
    void setFetchHook(FetchHook hook) { fetch_hook_ = std::move(hook); }

    /**
     * Observe every retired architectural instruction: the decoded
     * instruction, the absolute nibble PC of the item it came from, and
     * its slot within that item (0 for uncompressed instructions,
     * 0..n-1 through a dictionary-entry expansion). Fires after the
     * instruction's effects land, including the halting Sc.
     */
    using RetireHook = std::function<void(const isa::Inst &inst,
                                          uint32_t item_pc, unsigned slot)>;
    void setRetireHook(RetireHook hook) { retire_hook_ = std::move(hook); }

    const DecompressionEngine &engine() const { return engine_; }
    uint64_t instCount() const { return inst_count_; }

  private:
    /** Shared branch handling; @p next_pc is the fall-through pointer. */
    void execBranch(const isa::Inst &inst, uint32_t next_pc,
                    uint32_t self_pc);

    /** Machine-check a taken indirect branch target (@p reg names the
     *  source register for the fault message). */
    void checkIndirectTarget(uint32_t target, const char *reg) const;

    const compress::CompressedImage &image_;
    DecompressionEngine engine_;
    Machine machine_;
    unsigned unitNibbles_;
    uint32_t pc_;
    bool redirected_ = false;
    uint64_t inst_count_ = 0;
    uint64_t step_limit_ = UINT64_MAX; //!< budget per expanded inst
    FetchStats stats_;
    FetchHook fetch_hook_;
    RetireHook retire_hook_;
};

/** Convenience: run a compressed image to completion. */
ExecResult runCompressed(const compress::CompressedImage &image,
                         uint64_t max_steps =
                             CompressedCpu::defaultMaxSteps);

} // namespace codecomp

#endif // CODECOMP_DECOMPRESS_COMPRESSED_CPU_HH
