/**
 * @file
 * Instruction-cache model.
 *
 * The paper motivates compression partly through the memory system:
 * "Reducing program size is one way to reduce instruction cache misses
 * and achieve higher performance [Chen97b]". This set-associative,
 * LRU, configurable-line cache model is driven by the fetch streams of
 * both processors (Cpu fetches 4-byte instructions; CompressedCpu
 * fetches variable-size items from the compressed image), so the
 * locality benefit of compressed code can be measured directly
 * (bench/ext_icache) and priced in cycles (src/timing).
 */

#ifndef CODECOMP_CACHE_ICACHE_HH
#define CODECOMP_CACHE_ICACHE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace codecomp::cache {

struct CacheConfig
{
    uint32_t capacityBytes = 1024;
    uint32_t lineBytes = 32;
    uint32_t ways = 1; //!< 1 = direct-mapped

    /** Only meaningful for a valid config (see cacheConfigError):
     *  validation rejects geometries where this division truncates. */
    uint32_t numSets() const
    {
        return capacityBytes / (lineBytes * ways);
    }
};

/**
 * Human-readable reason @p config cannot describe a cache, or "" if it
 * is valid: power-of-two line size >= 4, at least one way, a capacity
 * that is a whole (power-of-two, non-zero) number of sets. ICache
 * raises a catchable fatal on a non-empty answer; CLI front ends check
 * it first so the user gets a usage error, not an abort.
 */
std::string cacheConfigError(const CacheConfig &config);

/** CC_FATAL (catchable) unless cacheConfigError(config) is empty. */
void validateCacheConfig(const CacheConfig &config);

struct CacheStats
{
    uint64_t accesses = 0;
    uint64_t misses = 0;
    uint64_t lineFills = 0;  //!< lines brought in (== misses here)
    uint64_t evictions = 0;  //!< fills that displaced a resident line

    double
    missRate() const
    {
        return accesses == 0
                   ? 0.0
                   : static_cast<double>(misses) / accesses;
    }

    void reset() { *this = CacheStats{}; }

    bool operator==(const CacheStats &) const = default;
};

/** Set-associative LRU instruction cache. */
class ICache
{
  public:
    /** Catchable fatal if the geometry is invalid (cacheConfigError). */
    explicit ICache(const CacheConfig &config);

    /**
     * Access @p bytes bytes starting at @p addr (an access that spans
     * a line boundary touches both lines, like a real fetch unit's
     * sequential refill). Returns the number of lines missed (0..2 for
     * any fetch no larger than a line), so timing models can charge
     * each fill.
     */
    unsigned access(uint32_t addr, uint32_t bytes);

    /** Probe a single line containing @p addr; true on a hit. */
    bool touch(uint32_t addr);

    const CacheStats &stats() const { return stats_; }
    const CacheConfig &config() const { return config_; }
    void reset();

  private:
    struct Way
    {
        uint64_t tag = invalidTag;
        uint64_t lastUse = 0;
    };

    /** 32-bit addresses make every real tag < 2^32, so this sentinel
     *  can never collide with a resident line. */
    static constexpr uint64_t invalidTag = UINT64_MAX;

    CacheConfig config_;
    std::vector<Way> ways_; //!< numSets * ways, row-major by set
    CacheStats stats_;
    uint64_t tick_ = 0;
};

} // namespace codecomp::cache

#endif // CODECOMP_CACHE_ICACHE_HH
