/**
 * @file
 * Instruction-cache model.
 *
 * The paper motivates compression partly through the memory system:
 * "Reducing program size is one way to reduce instruction cache misses
 * and achieve higher performance [Chen97b]". This set-associative,
 * LRU, configurable-line cache model is driven by the fetch streams of
 * both processors (Cpu fetches 4-byte instructions; CompressedCpu
 * fetches variable-size items from the compressed image), so the
 * locality benefit of compressed code can be measured directly
 * (bench/ext_icache).
 */

#ifndef CODECOMP_CACHE_ICACHE_HH
#define CODECOMP_CACHE_ICACHE_HH

#include <cstdint>
#include <vector>

namespace codecomp::cache {

struct CacheConfig
{
    uint32_t capacityBytes = 1024;
    uint32_t lineBytes = 32;
    uint32_t ways = 1; //!< 1 = direct-mapped

    uint32_t numSets() const
    {
        return capacityBytes / (lineBytes * ways);
    }
};

struct CacheStats
{
    uint64_t accesses = 0;
    uint64_t misses = 0;

    double
    missRate() const
    {
        return accesses == 0
                   ? 0.0
                   : static_cast<double>(misses) / accesses;
    }
};

/** Set-associative LRU instruction cache. */
class ICache
{
  public:
    explicit ICache(const CacheConfig &config);

    /**
     * Access @p bytes bytes starting at @p addr (an access that spans
     * a line boundary touches both lines, like a real fetch unit's
     * sequential refill).
     */
    void access(uint32_t addr, uint32_t bytes);

    /** Probe a single line containing @p addr. */
    void touch(uint32_t addr);

    const CacheStats &stats() const { return stats_; }
    const CacheConfig &config() const { return config_; }
    void reset();

  private:
    struct Way
    {
        uint64_t tag = UINT64_MAX;
        uint64_t lastUse = 0;
    };

    CacheConfig config_;
    std::vector<Way> ways_; //!< numSets * ways, row-major by set
    CacheStats stats_;
    uint64_t tick_ = 0;
};

} // namespace codecomp::cache

#endif // CODECOMP_CACHE_ICACHE_HH
