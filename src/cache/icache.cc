#include "cache/icache.hh"

#include "support/logging.hh"

namespace codecomp::cache {

namespace {

bool
isPowerOfTwo(uint32_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

} // namespace

std::string
cacheConfigError(const CacheConfig &config)
{
    if (!isPowerOfTwo(config.lineBytes) || config.lineBytes < 4)
        return "line size must be a power of two >= 4 (got " +
               std::to_string(config.lineBytes) + ")";
    if (config.ways < 1)
        return "need at least one way";
    // numSets() would silently truncate here, dropping capacity on the
    // floor; reject instead of modelling a cache the user didn't ask for.
    if (config.capacityBytes % (config.lineBytes * config.ways) != 0)
        return "capacity " + std::to_string(config.capacityBytes) +
               " is not a whole number of sets of " +
               std::to_string(config.lineBytes * config.ways) + " bytes";
    uint32_t sets = config.numSets();
    if (sets == 0)
        return "capacity " + std::to_string(config.capacityBytes) +
               " holds no complete set";
    if (!isPowerOfTwo(sets))
        return "set count " + std::to_string(sets) +
               " must be a power of two";
    return "";
}

void
validateCacheConfig(const CacheConfig &config)
{
    std::string error = cacheConfigError(config);
    if (!error.empty())
        CC_FATAL("bad cache config: ", error);
}

ICache::ICache(const CacheConfig &config) : config_(config)
{
    validateCacheConfig(config);
    ways_.resize(static_cast<size_t>(config.numSets()) * config.ways);
}

void
ICache::reset()
{
    std::fill(ways_.begin(), ways_.end(), Way{});
    stats_.reset();
    tick_ = 0;
}

bool
ICache::touch(uint32_t addr)
{
    uint32_t line = addr / config_.lineBytes;
    uint32_t set = line & (config_.numSets() - 1);
    uint64_t tag = line / config_.numSets();

    Way *base = &ways_[static_cast<size_t>(set) * config_.ways];
    ++stats_.accesses;
    ++tick_;

    Way *victim = base;
    for (uint32_t w = 0; w < config_.ways; ++w) {
        if (base[w].tag == tag) {
            base[w].lastUse = tick_;
            return true; // hit
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    ++stats_.misses;
    ++stats_.lineFills;
    if (victim->tag != invalidTag)
        ++stats_.evictions;
    victim->tag = tag;
    victim->lastUse = tick_;
    return false;
}

unsigned
ICache::access(uint32_t addr, uint32_t bytes)
{
    CC_ASSERT(bytes >= 1, "empty access");
    uint32_t first_line = addr / config_.lineBytes;
    uint32_t last_line = (addr + bytes - 1) / config_.lineBytes;
    unsigned missed = 0;
    for (uint32_t line = first_line; line <= last_line; ++line)
        missed += !touch(line * config_.lineBytes);
    return missed;
}

} // namespace codecomp::cache
