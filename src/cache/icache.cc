#include "cache/icache.hh"

#include "support/logging.hh"

namespace codecomp::cache {

namespace {

bool
isPowerOfTwo(uint32_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

} // namespace

ICache::ICache(const CacheConfig &config) : config_(config)
{
    CC_ASSERT(isPowerOfTwo(config.lineBytes) && config.lineBytes >= 4,
              "line size must be a power of two >= 4");
    CC_ASSERT(config.ways >= 1, "need at least one way");
    CC_ASSERT(config.capacityBytes % (config.lineBytes * config.ways) == 0,
              "capacity must be a whole number of sets");
    CC_ASSERT(isPowerOfTwo(config.numSets()), "set count power of two");
    ways_.resize(static_cast<size_t>(config.numSets()) * config.ways);
}

void
ICache::reset()
{
    std::fill(ways_.begin(), ways_.end(), Way{});
    stats_ = CacheStats{};
    tick_ = 0;
}

void
ICache::touch(uint32_t addr)
{
    uint32_t line = addr / config_.lineBytes;
    uint32_t set = line & (config_.numSets() - 1);
    uint64_t tag = line / config_.numSets();

    Way *base = &ways_[static_cast<size_t>(set) * config_.ways];
    ++stats_.accesses;
    ++tick_;

    Way *victim = base;
    for (uint32_t w = 0; w < config_.ways; ++w) {
        if (base[w].tag == tag) {
            base[w].lastUse = tick_;
            return; // hit
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    ++stats_.misses;
    victim->tag = tag;
    victim->lastUse = tick_;
}

void
ICache::access(uint32_t addr, uint32_t bytes)
{
    CC_ASSERT(bytes >= 1, "empty access");
    uint32_t first_line = addr / config_.lineBytes;
    uint32_t last_line = (addr + bytes - 1) / config_.lineBytes;
    for (uint32_t line = first_line; line <= last_line; ++line)
        touch(line * config_.lineBytes);
}

} // namespace codecomp::cache
