/**
 * @file
 * The farm's worker protocol: how an isolated job crosses the process
 * boundary.
 *
 * The parent writes a one-job spec file (jobspec.hh), spawns the
 * ccfarm binary in --worker mode, and reads back a checksummed binary
 * result file. The result file carries everything jobRecordJson needs
 * -- sizes, the image bytes and digest, the full PipelineStats, the
 * worker's cache counters -- with doubles transported as raw bits so
 * the deterministic report half is byte-identical to an inline run.
 *
 * The file is written temp + atomic rename by the worker; the parent
 * treats it as untrusted (a worker may have been killed mid-write):
 * magic, version, whole-payload FNV-1a64 checksum, and structural
 * parsing all gate acceptance, and any deviation is a classified
 * per-job LoadError failure, never a parent crash.
 */

#ifndef CODECOMP_FARM_WORKER_HH
#define CODECOMP_FARM_WORKER_HH

#include <string>
#include <vector>

#include "farm/farm.hh"
#include "support/serialize.hh"
#include "support/subprocess.hh"

namespace codecomp::farm {

/** What a worker subprocess reports back: the job result plus its
 *  own PipelineCache counters (aggregated into the farm report). */
struct WorkerResult
{
    FarmJobResult result;
    compress::PipelineCache::Stats cacheStats;
};

/** Serialize @p result into the worker result-file format. */
std::vector<uint8_t> serializeWorkerResult(const WorkerResult &result);

/** Parse an untrusted worker result file; every structural problem is
 *  a typed LoadError, never an abort. */
Result<WorkerResult> parseWorkerResult(const std::vector<uint8_t> &bytes);

/**
 * Execute one job in this process on behalf of --worker mode: build
 * the program, optionally attach a persistent cache at @p cacheDir,
 * run the pipeline, and capture any catchable failure in-band (with
 * its FailureKind) so the parent can distinguish a deterministic
 * SpecError from retryable faults. @p inject deliberately crashes
 * (abort) or hangs (sleep forever) mid-job for the fault-injection
 * campaign.
 */
WorkerResult runWorkerJob(const FarmJob &job, const std::string &cacheDir,
                          bool keepImages,
                          InjectKind inject = InjectKind::None);

/**
 * Classify a finished worker subprocess: @p spawn outcome/exit code x
 * whether the result file parsed (@p resultOk) and carried an in-band
 * failure. Returns FailureKind::None only for a clean, parsed,
 * error-free result.
 */
FailureKind classifyWorkerOutcome(const SubprocessResult &spawn,
                                  bool resultOk,
                                  const WorkerResult &result);

} // namespace codecomp::farm

#endif // CODECOMP_FARM_WORKER_HH
