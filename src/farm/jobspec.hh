/**
 * @file
 * Job-spec files: a JSON description of a farm job queue, the
 * expansion point beyond the built-in starter corpus.
 *
 *   {
 *     "jobs": [
 *       { "workload": "gcc",                 // required
 *         "scale": 1,                        // generator scale, >= 1
 *         "scheme": "nibble",                // baseline|onebyte|nibble
 *         "strategy": "refit",               // greedy|reference|refit
 *         "layout": "hotcold",               // linear|hotcold
 *         "max_entries": 4680,
 *         "max_len": 4,
 *         "assumed_codeword_nibbles": 0,
 *         "refit_max_rounds": 6,
 *         "repeat": 2,                       // enqueue N copies
 *         "id": "gcc-tuned" }                // default: wl/scheme/strat
 *     ]
 *   }
 *
 * Every field except "workload" is optional; defaults match the
 * ccompress CLI (nibble scheme, greedy strategy, 4680 entries).
 * "repeat" duplicates the job -- duplicated (program, config) pairs
 * are exactly what the selection cache deduplicates, so repeat is the
 * cheap way to model a corpus with identical members. Malformed JSON,
 * unknown fields' *values* (schemes, strategies), and out-of-range
 * numbers are catchable fatals carrying the byte offset or job index;
 * unrecognized keys are fatals too, so a typo cannot silently become a
 * default. The parser is a self-contained subset-of-JSON reader (no
 * third-party dependency); support/json.hh remains write-only.
 */

#ifndef CODECOMP_FARM_JOBSPEC_HH
#define CODECOMP_FARM_JOBSPEC_HH

#include <string>
#include <vector>

#include "farm/farm.hh"

namespace codecomp::farm {

/** Parse a job-spec JSON document into a job queue (catchable fatal
 *  on any structural or value error). */
std::vector<FarmJob> parseJobSpec(const std::string &text);

/** Serialize @p jobs as a job-spec document that parseJobSpec accepts
 *  and that reproduces the queue exactly (the farm's worker protocol
 *  ships one-job specs across the process boundary this way).
 *  "timeout_ms"/"retries" are emitted only when set (>= 0). */
std::string writeJobSpec(const std::vector<FarmJob> &jobs);

} // namespace codecomp::farm

#endif // CODECOMP_FARM_JOBSPEC_HH
